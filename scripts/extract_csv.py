#!/usr/bin/env python3
"""Split the figure-regeneration output into per-exhibit CSV files.

Every bench binary prints, alongside its human-readable table,
machine-greppable lines of the form

    fig3,CXL,load,8,20.6

This script collects those lines from a captured run (by default
``bench_output.txt`` at the repository root, i.e. the output of
``for b in build/bench/*; do $b; done``) and writes one
``<exhibit>.csv`` per figure into an output directory, ready for any
plotting tool.

Usage:
    scripts/extract_csv.py [bench_output.txt] [-o csv/]
"""

import argparse
import collections
import pathlib
import re
import sys

# Exhibit tag -> column header for the CSV it produces.
HEADERS = {
    "fig2": "target,instr,ns",
    "fig2wss": "target,wss_bytes,ns",
    "fig3": "target,instr,threads,gbps",
    "fig4a": "path,threads,gbps",
    "fig4b": "method,path,gbps",
    "fig5": "target,instr,block_bytes,threads,gbps",
    "fig6": "series,qps,p99_read_us,p99_update_us",
    "fig7": "workload,cxl_percent,max_qps",
    "fig8": "series,threads,inferences_per_s",
    "fig8norm": "series,normalized",
    "fig9": "series,threads,inferences_per_s",
    "fig10": "workload,qps,p99_ddr5_ms,p99_cxl_ms",
    "fig10mem": "component,bytes",
    "loaded": "target,threads,ns",
}

TAG_RE = re.compile(r"^(fig\w+|loaded),")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("input", nargs="?", default="bench_output.txt")
    ap.add_argument("-o", "--outdir", default="csv")
    args = ap.parse_args()

    text = pathlib.Path(args.input).read_text(errors="replace")
    rows = collections.defaultdict(list)
    for line in text.splitlines():
        m = TAG_RE.match(line)
        if not m:
            continue
        tag = m.group(1)
        rows[tag].append(line[len(tag) + 1:])

    if not rows:
        print(f"no CSV lines found in {args.input}", file=sys.stderr)
        return 1

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    for tag, lines in sorted(rows.items()):
        path = outdir / f"{tag}.csv"
        header = HEADERS.get(tag)
        with path.open("w") as f:
            if header:
                f.write(header + "\n")
            f.write("\n".join(lines) + "\n")
        print(f"wrote {path} ({len(lines)} rows)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
