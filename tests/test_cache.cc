/**
 * @file
 * Tests for the set-associative cache and the three-level hierarchy:
 * hit/miss behaviour, LRU, RFO semantics, writeback traffic,
 * inclusivity, flush instructions and the stream prefetcher.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "mem/request.hh"
#include "numa/numa.hh"
#include "sim/event_queue.hh"

namespace cxlmemo
{
namespace
{

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache c({"c", 4 * kiB, 4, ticksFromNs(1.0)});
    EXPECT_EQ(c.find(100), nullptr);
    c.insert(100, LineState::Exclusive, 0);
    ASSERT_NE(c.find(100), nullptr);
    EXPECT_EQ(c.find(100)->state, LineState::Exclusive);
}

TEST(SetAssocCache, LruEvictsOldest)
{
    // 4-way cache: fill one set with 4 lines, insert a 5th.
    SetAssocCache c({"c", 4 * kiB, 4, ticksFromNs(1.0)});
    const std::uint32_t sets = c.numSets();
    std::vector<std::uint64_t> addrs;
    // Lines mapping to the same set: the index hash is
    // (la ^ (la >> 17)) & mask; for small la (< 2^17) it is identity,
    // so stride by `sets`.
    for (std::uint64_t i = 0; i < 5; ++i)
        addrs.push_back(7 + i * sets);
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(c.insert(addrs[i], LineState::Exclusive, 0));
    // Touch line 0 to refresh it; then line 1 is the LRU victim.
    EXPECT_NE(c.find(addrs[0]), nullptr);
    auto victim = c.insert(addrs[4], LineState::Exclusive, 0);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->lineAddr, addrs[1]);
    EXPECT_NE(c.find(addrs[0]), nullptr);
    EXPECT_EQ(c.find(addrs[1]), nullptr);
}

TEST(SetAssocCache, InvalidateReturnsPriorState)
{
    SetAssocCache c({"c", 4 * kiB, 4, ticksFromNs(1.0)});
    c.insert(42, LineState::Modified, 3);
    EXPECT_EQ(c.invalidate(42), LineState::Modified);
    EXPECT_EQ(c.invalidate(42), LineState::Invalid);
    EXPECT_EQ(c.find(42), nullptr);
}

TEST(SetAssocCache, ReinsertMergesState)
{
    SetAssocCache c({"c", 4 * kiB, 4, ticksFromNs(1.0)});
    c.insert(42, LineState::Exclusive, 0);
    EXPECT_FALSE(c.insert(42, LineState::Modified, 0).has_value());
    EXPECT_EQ(c.find(42)->state, LineState::Modified);
}

TEST(SetAssocCache, FlushAllEmptiesEverything)
{
    SetAssocCache c({"c", 4 * kiB, 4, ticksFromNs(1.0)});
    for (std::uint64_t i = 0; i < 64; ++i)
        c.insert(i, LineState::Exclusive, 0);
    c.flushAll();
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(c.find(i), nullptr);
}

/** Device that counts per-command traffic and completes after 50 ns. */
class CountingDevice : public MemoryDevice
{
  public:
    explicit CountingDevice(EventQueue &eq) : eq_(eq) {}

    void
    access(MemRequest req) override
    {
        if (req.cmd == MemCmd::Read || req.cmd == MemCmd::Prefetch)
            ++reads;
        else
            ++writes;
        const Tick done = eq_.curTick() + ticksFromNs(50.0);
        if (req.onComplete) {
            eq_.schedule(done,
                         [cb = std::move(req.onComplete), done] {
                cb(done);
            });
        }
    }

    const std::string &name() const override { return name_; }

    int reads = 0;
    int writes = 0;

  private:
    EventQueue &eq_;
    std::string name_ = "counting";
};

class HierarchyTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dev = std::make_unique<CountingDevice>(eq);
        node = numa.addNode("mem", dev.get(), 1 * giB);
        HierarchyParams p;
        p.numCores = 2;
        p.l1 = {"l1", 4 * kiB, 4, ticksFromNs(2.0)};
        p.l2 = {"l2", 32 * kiB, 8, ticksFromNs(8.0)};
        p.llc = {"llc", 256 * kiB, 8, ticksFromNs(20.0)};
        p.uncoreLatency = ticksFromNs(10.0);
        hier = std::make_unique<CacheHierarchy>(eq, numa, p);
        buf = numa.alloc(16 * miB, MemPolicy::membind(node));
    }

    Addr a(std::uint64_t off) { return buf.translate(off); }

    EventQueue eq;
    NumaSpace numa;
    std::unique_ptr<CountingDevice> dev;
    NodeId node = 0;
    std::unique_ptr<CacheHierarchy> hier;
    NumaBuffer buf;
};

TEST_F(HierarchyTest, ColdLoadMissesToMemory)
{
    Tick done = 0;
    auto hit = hier->load(0, a(0), 0, [&](Tick t) { done = t; });
    EXPECT_FALSE(hit.has_value());
    eq.run();
    EXPECT_EQ(dev->reads, 1);
    // l1 2 + l2 8 + llc 20 + uncore 10 + device 50 = 90 ns.
    EXPECT_EQ(done, ticksFromNs(90.0));
}

TEST_F(HierarchyTest, SecondLoadHitsInL1)
{
    hier->load(0, a(0), 0, [](Tick) {});
    eq.run();
    auto hit = hier->load(0, a(0), eq.curTick(), nullptr);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit - eq.curTick(), ticksFromNs(2.0));
    EXPECT_EQ(dev->reads, 1);
}

TEST_F(HierarchyTest, OtherCoreHitsInLlc)
{
    hier->load(0, a(0), 0, [](Tick) {});
    eq.run();
    // Core 1 misses its private L1/L2 but hits the shared LLC.
    auto hit = hier->load(1, a(0), eq.curTick(), nullptr);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit - eq.curTick(), ticksFromNs(30.0));
    EXPECT_EQ(dev->reads, 1);
}

TEST_F(HierarchyTest, StoreMissPerformsRfoRead)
{
    Tick done = 0;
    auto hit = hier->store(0, a(64), 0, [&](Tick t) { done = t; });
    EXPECT_FALSE(hit.has_value());
    eq.run();
    EXPECT_EQ(dev->reads, 1);  // ownership fill
    EXPECT_EQ(dev->writes, 0); // nothing written back yet
}

TEST_F(HierarchyTest, StoreHitIsCheap)
{
    hier->store(0, a(64), 0, [](Tick) {});
    eq.run();
    auto hit = hier->store(0, a(64), eq.curTick(), nullptr);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit - eq.curTick(), ticksFromNs(2.0));
}

TEST_F(HierarchyTest, DirtyEvictionsWriteBack)
{
    // Dirty many lines, then stream far past every level's capacity;
    // evicted dirty lines must reach memory as writes.
    for (std::uint64_t i = 0; i < 64; ++i) {
        hier->store(0, a(i * cachelineBytes), eq.curTick(), nullptr);
        eq.run();
    }
    for (std::uint64_t i = 0; i < 16384; ++i) {
        hier->load(0, a(1 * miB + i * cachelineBytes), eq.curTick(),
                   nullptr);
        eq.run();
    }
    EXPECT_GT(dev->writes, 32);
}

TEST_F(HierarchyTest, NtStoreBypassesAndInvalidates)
{
    hier->store(0, a(0), 0, nullptr);
    eq.run();
    const int reads_before = dev->reads;
    Tick accepted = 0;
    Tick drained = 0;
    hier->ntStore(0, a(0), eq.curTick(),
                  [&](Tick t) { accepted = t; },
                  [&](Tick t) { drained = t; });
    eq.run();
    EXPECT_EQ(dev->reads, reads_before); // no fill
    EXPECT_EQ(dev->writes, 1);
    EXPECT_GT(drained, 0u);
    // The cached copy must be gone: the next load misses to memory.
    auto hit = hier->load(0, a(0), eq.curTick(), [](Tick) {});
    EXPECT_FALSE(hit.has_value());
    eq.run();
    (void)accepted;
}

TEST_F(HierarchyTest, FlushCleanLineIsLocal)
{
    hier->load(0, a(0), 0, nullptr);
    eq.run();
    auto done = hier->flush(0, a(0), eq.curTick(), nullptr);
    ASSERT_TRUE(done.has_value()); // no dirty data: resolves locally
    EXPECT_EQ(dev->writes, 0);
}

TEST_F(HierarchyTest, FlushDirtyLineWritesBack)
{
    hier->store(0, a(0), 0, nullptr);
    eq.run();
    Tick done = 0;
    auto local = hier->flush(0, a(0), eq.curTick(),
                             [&](Tick t) { done = t; });
    EXPECT_FALSE(local.has_value());
    eq.run();
    EXPECT_EQ(dev->writes, 1);
    EXPECT_GT(done, 0u);
    // Line invalidated: next load misses.
    EXPECT_FALSE(hier->load(0, a(0), eq.curTick(), [](Tick) {})
                     .has_value());
    eq.run();
}

TEST_F(HierarchyTest, ClwbKeepsACleanCopy)
{
    hier->store(0, a(0), 0, nullptr);
    eq.run();
    hier->clwb(0, a(0), eq.curTick(), [](Tick) {});
    eq.run();
    EXPECT_EQ(dev->writes, 1);
    // Unlike clflush, the line stays cached.
    auto hit = hier->load(0, a(0), eq.curTick(), nullptr);
    EXPECT_TRUE(hit.has_value());
}

TEST_F(HierarchyTest, FlushedLinePaysHandshakeOnDram)
{
    hier->load(0, a(0), 0, nullptr);
    eq.run();
    hier->flush(0, a(0), eq.curTick(), nullptr);
    eq.run();
    Tick done = 0;
    const Tick t0 = eq.curTick();
    hier->load(0, a(0), t0, [&](Tick t) { done = t; });
    eq.run();
    // 90 ns miss + 70 ns flush handshake (default penalty).
    EXPECT_EQ(done - t0, ticksFromNs(160.0));
}

TEST_F(HierarchyTest, HandshakeSkippedWhenNodeOptsOut)
{
    numa.setScatterFrames(node, true);
    // Mark the node as CXL-like: no flush handshake.
    const_cast<NumaNode &>(numa.node(node)).flushHandshake = false;
    hier->load(0, a(0), 0, nullptr);
    eq.run();
    hier->flush(0, a(0), eq.curTick(), nullptr);
    eq.run();
    Tick done = 0;
    const Tick t0 = eq.curTick();
    hier->load(0, a(0), t0, [&](Tick t) { done = t; });
    eq.run();
    EXPECT_EQ(done - t0, ticksFromNs(90.0));
}

TEST_F(HierarchyTest, InclusiveLlcBackInvalidatesOwner)
{
    // Fill the LLC far past capacity from core 0; early lines must
    // disappear from core 0's L1/L2 as well (inclusive back-inval).
    hier->load(0, a(0), 0, nullptr);
    eq.run();
    for (std::uint64_t i = 1; i < 8192; ++i) {
        hier->load(0, a(i * cachelineBytes), eq.curTick(), nullptr);
        eq.run();
    }
    const int reads_before = dev->reads;
    hier->load(0, a(0), eq.curTick(), [](Tick) {});
    eq.run();
    EXPECT_EQ(dev->reads, reads_before + 1); // full miss again
}

TEST_F(HierarchyTest, PrefetcherFetchesAheadOnStreams)
{
    hier->setPrefetch(true);
    for (std::uint64_t i = 0; i < 64; ++i) {
        hier->load(0, a(512 * kiB + i * cachelineBytes), eq.curTick(),
                   [](Tick) {});
        eq.run();
    }
    EXPECT_GT(hier->prefetchStats().issued, 32u);
    EXPECT_GT(hier->prefetchStats().usefulHits, 16u);
    // Demand reads + prefetches both reached memory, but far fewer
    // than 2x demand (prefetched lines were not re-fetched).
    EXPECT_LT(dev->reads, 64 + 80);
}

TEST_F(HierarchyTest, PrimeLlcDirtyMakesFillsEvictDirty)
{
    NumaBuffer prime = numa.alloc(512 * kiB, MemPolicy::membind(node));
    hier->primeLlcDirty(prime, 0);
    const int writes_before = dev->writes;
    for (std::uint64_t i = 0; i < 512; ++i) {
        hier->load(0, a(2 * miB + i * cachelineBytes), eq.curTick(),
                   nullptr);
        eq.run();
    }
    EXPECT_GT(dev->writes - writes_before, 256);
}

} // namespace
} // namespace cxlmemo
