/**
 * @file
 * Tests for the CXL link direction model and the logging/assert
 * plumbing it depends on.
 */

#include <gtest/gtest.h>

#include "cxl/link.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace cxlmemo
{
namespace
{

CxlLinkParams
testLink()
{
    CxlLinkParams p;
    p.rawGBps = 64.0;
    p.flitEfficiency = 0.5; // effective 32 GB/s: easy arithmetic
    p.propagation = ticksFromNs(10.0);
    return p;
}

TEST(CxlLink, SingleMessageLatency)
{
    EventQueue eq;
    CxlLinkDirection dir(eq, testLink());
    // 64 B at 32 GB/s = 2 ns serialization + 10 ns propagation.
    EXPECT_EQ(dir.transmit(64), ticksFromNs(12.0));
    EXPECT_EQ(dir.bytesMoved(), 64u);
}

TEST(CxlLink, BackToBackMessagesSerialize)
{
    EventQueue eq;
    CxlLinkDirection dir(eq, testLink());
    const Tick first = dir.transmit(64);
    const Tick second = dir.transmit(64);
    // The second message queues behind the first on the wire but the
    // propagation overlaps: arrivals are pipelined 2 ns apart.
    EXPECT_EQ(second - first, ticksFromNs(2.0));
}

TEST(CxlLink, IdleLinkRestartsFromNow)
{
    EventQueue eq;
    CxlLinkDirection dir(eq, testLink());
    dir.transmit(64);
    eq.schedule(ticksFromNs(100.0), [] {});
    eq.run();
    // At t=100 the wire has long been free: full latency again.
    EXPECT_EQ(dir.transmit(64), ticksFromNs(112.0));
}

TEST(CxlLink, ThroughputMatchesEffectiveRate)
{
    EventQueue eq;
    CxlLinkDirection dir(eq, testLink());
    Tick last = 0;
    for (int i = 0; i < 1000; ++i)
        last = dir.transmit(68);
    // 1000 x 68 B at 32 GB/s effective = 2.125 us + 10 ns propagation.
    EXPECT_NEAR(nsFromTicks(last), 68.0 * 1000 / 32.0 + 10.0, 2.0);
    EXPECT_EQ(dir.bytesMoved(), 68000u);
}

TEST(CxlLink, ResetStatsClearsBytes)
{
    EventQueue eq;
    CxlLinkDirection dir(eq, testLink());
    dir.transmit(100);
    dir.resetStats();
    EXPECT_EQ(dir.bytesMoved(), 0u);
}

TEST(Logging, FormatHandlesArguments)
{
    using logging_detail::format;
    EXPECT_EQ(format("plain"), "plain");
    EXPECT_EQ(format("x=%d y=%s", 7, "ok"), "x=7 y=ok");
    EXPECT_EQ(format(""), "");
}

TEST(LoggingDeathTest, AssertMessageKeepsPercentLiterals)
{
    // Conditions containing '%' must not be treated as a format
    // string (regression test for the printf-injection bug).
    auto boom = [] {
        const int rowBytes = 3;
        CXLMEMO_ASSERT(rowBytes % 2 == 0);
    };
    EXPECT_DEATH(boom(), "rowBytes % 2 == 0");
}

} // namespace
} // namespace cxlmemo
