/**
 * @file
 * Tests for the YCSB generator and the Redis-like KV store model.
 */

#include <gtest/gtest.h>

#include "apps/kvstore/kvstore.hh"

namespace cxlmemo
{
namespace kv
{
namespace
{

TEST(Ycsb, WorkloadMixesMatchDefinitions)
{
    EXPECT_DOUBLE_EQ(YcsbWorkload::a().read, 0.5);
    EXPECT_DOUBLE_EQ(YcsbWorkload::a().update, 0.5);
    EXPECT_DOUBLE_EQ(YcsbWorkload::b().read, 0.95);
    EXPECT_DOUBLE_EQ(YcsbWorkload::c().read, 1.0);
    EXPECT_DOUBLE_EQ(YcsbWorkload::d().insert, 0.05);
    EXPECT_EQ(YcsbWorkload::d().dist, KeyDist::Latest);
    EXPECT_DOUBLE_EQ(YcsbWorkload::f().rmw, 0.5);
}

TEST(Ycsb, MixProportionsObserved)
{
    YcsbGenerator gen(YcsbWorkload::a(), 10000, 10000, 1);
    int reads = 0;
    int updates = 0;
    for (int i = 0; i < 20000; ++i) {
        const YcsbRequest r = gen.next();
        reads += r.op == YcsbOp::Read;
        updates += r.op == YcsbOp::Update;
    }
    EXPECT_NEAR(reads, 10000, 400);
    EXPECT_NEAR(updates, 10000, 400);
}

TEST(Ycsb, InsertsGrowTheKeyspace)
{
    YcsbGenerator gen(YcsbWorkload::d(), 1000, 2000, 2);
    for (int i = 0; i < 5000; ++i)
        gen.next();
    EXPECT_GT(gen.keyCount(), 1100u);
    EXPECT_LE(gen.keyCount(), 2000u);
}

TEST(Ycsb, LatestDistributionFavoursRecentKeys)
{
    YcsbGenerator gen(YcsbWorkload::d(KeyDist::Latest), 100000, 120000,
                      3);
    std::uint64_t recent = 0;
    std::uint64_t total_reads = 0;
    for (int i = 0; i < 20000; ++i) {
        const YcsbRequest r = gen.next();
        if (r.op != YcsbOp::Read)
            continue;
        ++total_reads;
        if (r.key + 1000 >= gen.keyCount())
            ++recent;
    }
    // The newest 1% of keys draws a large share of reads.
    EXPECT_GT(recent, total_reads / 4);
}

TEST(Ycsb, UniformCoversKeySpace)
{
    YcsbGenerator gen(YcsbWorkload::c(), 1000, 1000, 4);
    std::vector<int> histo(10, 0);
    for (int i = 0; i < 20000; ++i)
        histo[gen.next().key / 100]++;
    for (int b = 0; b < 10; ++b)
        EXPECT_NEAR(histo[b], 2000, 300);
}

TEST(Ycsb, KeysStayBelowCount)
{
    for (KeyDist d :
         {KeyDist::Uniform, KeyDist::Zipfian, KeyDist::Latest}) {
        YcsbGenerator gen(YcsbWorkload::a(d), 5000, 5000, 5);
        for (int i = 0; i < 5000; ++i)
            ASSERT_LT(gen.next().key, gen.keyCount());
    }
}

TEST(KvStore, FootprintScalesWithKeys)
{
    Machine m(Testbed::SingleSocketCxl);
    KvStoreParams p;
    p.numKeys = 100'000;
    p.insertHeadroom = 0;
    KvStore store(m, p, MemPolicy::membind(m.localNode()));
    // 8 B bucket + 128 B entry + 1 KiB value per key, page-padded.
    EXPECT_NEAR(static_cast<double>(store.footprintBytes()),
                100'000.0 * (8 + 128 + 1024), 2.0 * pageBytes * 3);
}

TEST(KvStore, OpsReflectRequestType)
{
    Machine m(Testbed::SingleSocketCxl);
    KvStoreParams p;
    p.numKeys = 10'000;
    p.insertHeadroom = 100;
    KvStore store(m, p, MemPolicy::membind(m.localNode()));
    std::vector<MemOp> ops;

    store.buildOps({YcsbOp::Read, 5}, ops);
    int dep = 0;
    int st = 0;
    for (const MemOp &op : ops) {
        dep += op.kind == MemOp::Kind::DependentLoad;
        st += op.kind == MemOp::Kind::Store;
    }
    EXPECT_GT(dep, 10); // lookup walk + field walk
    EXPECT_EQ(st, 0);   // pure read

    store.buildOps({YcsbOp::Update, 5}, ops);
    st = 0;
    for (const MemOp &op : ops)
        st += op.kind == MemOp::Kind::Store;
    EXPECT_EQ(st, 20); // 10 fields x 2 lines

    store.buildOps({YcsbOp::Insert, 10'000}, ops);
    st = 0;
    for (const MemOp &op : ops)
        st += op.kind == MemOp::Kind::Store;
    EXPECT_GT(st, 20); // value + dict linkage
}

TEST(KvStore, ServiceSlowerOnCxl)
{
    KvStoreParams p;
    p.numKeys = 200'000;
    const double dram = maxSustainableQps(YcsbWorkload::a(), 0.0, 0.05,
                                          p);
    const double cxl = maxSustainableQps(YcsbWorkload::a(), 1.0, 0.05,
                                         p);
    EXPECT_GT(dram, cxl * 1.1);
}

TEST(KvStore, InterleaveSitsBetweenExtremes)
{
    KvStoreParams p;
    p.numKeys = 200'000;
    const double dram = maxSustainableQps(YcsbWorkload::a(), 0.0, 0.05,
                                          p);
    const double half = maxSustainableQps(YcsbWorkload::a(), 0.5, 0.05,
                                          p);
    const double cxl = maxSustainableQps(YcsbWorkload::a(), 1.0, 0.05,
                                         p);
    EXPECT_GT(dram, half);
    EXPECT_GT(half, cxl);
}

TEST(KvStore, OpenLoopKeepsUpBelowSaturation)
{
    KvStoreParams p;
    p.numKeys = 200'000;
    const KvRunResult r = runYcsb(YcsbWorkload::a(), 0.0, 20'000, 0.05,
                                  p);
    EXPECT_NEAR(r.achievedQps, 20'000, 3'000);
    EXPECT_GT(r.p99ReadUs, 0.0);
    EXPECT_GT(r.p99UpdateUs, 0.0);
}

TEST(KvStore, TailLatencyGapAtLowLoad)
{
    KvStoreParams p;
    p.numKeys = 200'000;
    const KvRunResult dram = runYcsb(YcsbWorkload::a(), 0.0, 20'000,
                                     0.08, p);
    const KvRunResult cxl = runYcsb(YcsbWorkload::a(), 1.0, 20'000,
                                    0.08, p);
    // Paper Fig. 6: a visible constant p99 gap well below saturation.
    EXPECT_GT(cxl.p99ReadUs, dram.p99ReadUs * 1.1);
}

TEST(KvStore, WorkloadDLatestIsLessSensitive)
{
    // Reads of fresh inserts hit cached lines: the CXL penalty on
    // max QPS shrinks vs the uniform variant (paper Fig. 7, D-lat).
    KvStoreParams p;
    p.numKeys = 200'000;
    p.insertHeadroom = 50'000;
    const double d_lat_cxl = maxSustainableQps(
        YcsbWorkload::d(KeyDist::Latest), 1.0, 0.05, p);
    const double d_uni_cxl = maxSustainableQps(
        YcsbWorkload::d(KeyDist::Uniform), 1.0, 0.05, p);
    EXPECT_GT(d_lat_cxl, d_uni_cxl);
}

} // namespace
} // namespace kv
} // namespace cxlmemo
