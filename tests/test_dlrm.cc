/**
 * @file
 * Tests for the DLRM embedding-reduction model.
 */

#include <gtest/gtest.h>

#include "apps/dlrm/dlrm.hh"

namespace cxlmemo
{
namespace dlrm
{
namespace
{

DlrmParams
smallModel()
{
    DlrmParams p;
    p.tables = 4;
    p.rowsPerTable = 100'000;
    p.pooling = 8;
    return p;
}

TEST(Dlrm, StreamEmitsWholeInferences)
{
    Machine m(Testbed::SingleSocketCxl);
    DlrmParams p = smallModel();
    DlrmModel model(m, p, MemPolicy::membind(m.localNode()));
    std::uint64_t count = 0;
    auto stream = model.makeWorkerStream(0, &count);
    MemOp op;
    int loads = 0;
    // Drain exactly one inference: counter flips at its MLP block.
    while (count == 0 && stream->next(op)) {
        if (op.kind == MemOp::Kind::Load)
            ++loads;
    }
    // tables * pooling rows * 4 lines per 256 B row.
    EXPECT_EQ(loads, 4 * 8 * 4);
}

TEST(Dlrm, FootprintMatchesGeometry)
{
    Machine m(Testbed::SingleSocketCxl);
    DlrmParams p = smallModel();
    DlrmModel model(m, p, MemPolicy::membind(m.localNode()));
    EXPECT_EQ(model.footprintBytes(),
              std::uint64_t(4) * 100'000 * 256);
}

TEST(Dlrm, ThroughputScalesWithThreadsOnDram)
{
    DlrmParams p = smallModel();
    p.rowsPerTable = 500'000;
    Machine m1(Testbed::SingleSocketCxl);
    const double t1 = runInferenceThroughput(
        m1, p, MemPolicy::membind(m1.localNode()), 1, 30, 150);
    Machine m8(Testbed::SingleSocketCxl);
    const double t8 = runInferenceThroughput(
        m8, p, MemPolicy::membind(m8.localNode()), 8, 30, 150);
    EXPECT_GT(t8, 6.0 * t1);
}

TEST(Dlrm, CxlSaturatesEarly)
{
    DlrmParams p;
    p.rowsPerTable = 1'000'000;
    Machine m8(Testbed::SingleSocketCxl);
    const double c8 = runInferenceThroughput(
        m8, p, MemPolicy::membind(m8.cxlNode()), 8, 30, 200);
    Machine m32(Testbed::SingleSocketCxl);
    const double c32 = runInferenceThroughput(
        m32, p, MemPolicy::membind(m32.cxlNode()), 32, 30, 200);
    // Random-bandwidth bound: 4x the threads buys < 2x throughput.
    EXPECT_LT(c32, 2.0 * c8);
}

TEST(Dlrm, InterleaveOrderingHolds)
{
    DlrmParams p;
    p.rowsPerTable = 1'000'000;
    auto at32 = [&](double frac) {
        Machine m(Testbed::SingleSocketCxl);
        return runInferenceThroughput(
            m, p,
            MemPolicy::splitDramCxl(m.localNode(), m.cxlNode(), frac),
            32, 30, 200);
    };
    const double dram = at32(0.0);
    const double half = at32(0.5);
    const double cxl = at32(1.0);
    EXPECT_GT(dram, half);
    EXPECT_GT(half, cxl);
}

TEST(Dlrm, SncBenefitsFromCxlInterleaveAtHighThreads)
{
    // Fig. 9's headline effect: bandwidth-bound SNC + CXL interleave.
    DlrmParams p;
    p.rowsPerTable = 1'000'000;
    Machine snc(Testbed::SncQuadrantCxl);
    const double snc_only = runInferenceThroughput(
        snc, p, MemPolicy::membind(snc.localNode()), 32, 30, 250);
    Machine mixed(Testbed::SncQuadrantCxl);
    const double with_cxl = runInferenceThroughput(
        mixed, p,
        MemPolicy::splitDramCxl(mixed.localNode(), mixed.cxlNode(), 0.2),
        32, 30, 250);
    EXPECT_GT(with_cxl, snc_only * 1.03);
}

TEST(Dlrm, DeterministicAcrossRuns)
{
    DlrmParams p = smallModel();
    auto run = [&] {
        Machine m(Testbed::SingleSocketCxl);
        return runInferenceThroughput(
            m, p, MemPolicy::membind(m.localNode()), 4, 20, 100);
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

} // namespace
} // namespace dlrm
} // namespace cxlmemo
