/**
 * @file
 * Tests for testbed assembly (Table 1 machines).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "system/machine.hh"

namespace cxlmemo
{
namespace
{

TEST(Machine, SingleSocketHasLocalAndCxl)
{
    Machine m(Testbed::SingleSocketCxl);
    EXPECT_EQ(m.numa().numNodes(), 2u);
    EXPECT_FALSE(m.hasRemote());
    ASSERT_TRUE(m.hasCxl());
    EXPECT_EQ(m.numCores(), 32u);
    EXPECT_EQ(m.localMem().numChannels(), 8u);
    EXPECT_TRUE(m.numa().node(m.localNode()).hasCpu);
    EXPECT_FALSE(m.numa().node(m.cxlNode()).hasCpu);
    EXPECT_EQ(m.numa().node(m.cxlNode()).capacityBytes, 16 * giB);
    // The home-agent flushed-line handshake applies to HDM too.
    EXPECT_TRUE(m.numa().node(m.cxlNode()).flushHandshake);
}

TEST(Machine, DualSocketAddsRemoteNode)
{
    Machine m(Testbed::DualSocket);
    EXPECT_TRUE(m.hasRemote());
    EXPECT_EQ(m.numa().numNodes(), 3u);
    EXPECT_EQ(m.numCores(), 40u);
    EXPECT_EQ(m.caches().params().llc.sizeBytes, 105 * miB);
    EXPECT_EQ(m.remoteMem().params().numChannels, 1u);
}

TEST(Machine, SncQuadrantShrinksLlcAndChannels)
{
    Machine m(Testbed::SncQuadrantCxl);
    EXPECT_EQ(m.localMem().numChannels(), 2u);
    EXPECT_EQ(m.caches().params().llc.sizeBytes, 15 * miB);
    EXPECT_TRUE(m.hasCxl());
}

TEST(Machine, OptionsOverridePreset)
{
    MachineOptions o;
    o.numCores = 8;
    o.localChannels = 4;
    o.prefetchEnabled = true;
    Machine m(Testbed::SingleSocketCxl, o);
    EXPECT_EQ(m.numCores(), 8u);
    EXPECT_EQ(m.localMem().numChannels(), 4u);
    EXPECT_TRUE(m.caches().prefetchEnabled());
}

TEST(Machine, ConfigStringMentionsAllNodes)
{
    Machine m(Testbed::DualSocket);
    const std::string s = m.configString();
    EXPECT_NE(s.find("local-ddr5"), std::string::npos);
    EXPECT_NE(s.find("remote-ddr5"), std::string::npos);
    EXPECT_NE(s.find("cxl-dram"), std::string::npos);
    EXPECT_NE(s.find("CPU-less"), std::string::npos);
}

TEST(Machine, MakeThreadRespectsCoreBound)
{
    Machine m(Testbed::SingleSocketCxl);
    auto t = m.makeThread(31);
    EXPECT_EQ(t->core(), 31);
    EXPECT_DEATH(m.makeThread(32), "beyond testbed");
}

TEST(Machine, CxlNodeAccessorsFatalWhenAbsent)
{
    Machine m(Testbed::SingleSocketCxl);
    EXPECT_DEATH(m.remoteNode(), "no remote socket");
}

TEST(Machine, DsaIsAvailable)
{
    Machine m(Testbed::SingleSocketCxl);
    EXPECT_EQ(m.dsa().params().numEngines, 4u);
}

TEST(Machine, StatsReportReflectsTraffic)
{
    Machine m(Testbed::SingleSocketCxl);
    NumaBuffer buf =
        m.numa().alloc(16 * miB, MemPolicy::membind(m.cxlNode()));
    for (int i = 0; i < 64; ++i) {
        m.caches().load(0, buf.translate(std::uint64_t(i) * 4096),
                        m.eq().curTick(), nullptr);
        m.eq().run();
    }
    const std::string s = m.statsString();
    EXPECT_NE(s.find("cxl-dram"), std::string::npos);
    EXPECT_NE(s.find("reads 64"), std::string::npos);
    EXPECT_NE(s.find("llc"), std::string::npos);
    EXPECT_NE(s.find("link bytes"), std::string::npos);
}

TEST(Machine, DisabledFaultSpecIsZeroCost)
{
    // A default (all-zero) FaultSpec must not even build an injector:
    // the machine behaves bit-identically to one that never heard of
    // faults.
    MachineOptions o;
    EXPECT_FALSE(o.faults.enabled());
    Machine plain(Testbed::SingleSocketCxl);
    Machine specd(Testbed::SingleSocketCxl, o);
    EXPECT_EQ(specd.faults(), nullptr);
    EXPECT_EQ(specd.rasStats(), nullptr);

    auto drive = [](Machine &m) {
        NumaBuffer buf =
            m.numa().alloc(4 * miB, MemPolicy::membind(m.cxlNode()));
        for (int i = 0; i < 64; ++i) {
            m.caches().load(0, buf.translate(std::uint64_t(i) * 4096),
                            m.eq().curTick(), nullptr);
            m.eq().run();
        }
        return m.statsString();
    };
    EXPECT_EQ(drive(plain), drive(specd));
    EXPECT_EQ(drive(plain).find("ras:"), std::string::npos);
}

TEST(Machine, FaultSpecValidatedAtConstruction)
{
    MachineOptions o;
    o.faults.crcPerFlit = 7.0; // not a probability
    EXPECT_THROW(Machine(Testbed::SingleSocketCxl, o),
                 std::invalid_argument);
}

TEST(Machine, ResetStatsClearsDeviceCounters)
{
    Machine m(Testbed::SingleSocketCxl);
    NumaBuffer buf =
        m.numa().alloc(1 * miB, MemPolicy::membind(m.localNode()));
    m.caches().load(0, buf.translate(0), 0, nullptr);
    m.eq().run();
    EXPECT_GT(m.localMem().stats().reads, 0u);
    m.resetStats();
    EXPECT_EQ(m.localMem().stats().reads, 0u);
}

} // namespace
} // namespace cxlmemo
