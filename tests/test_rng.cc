/**
 * @file
 * Tests for the deterministic RNG and the YCSB-style distribution
 * generators, including statistical property checks.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "sim/rng.hh"

namespace cxlmemo
{
namespace
{

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(42);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 10; ++i)
        first.push_back(a.next());
    a.reseed(42);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL,
                                (1ULL << 40) + 17}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng r(7);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowIsApproximatelyUniform)
{
    Rng r(99);
    constexpr std::uint64_t buckets = 10;
    constexpr int draws = 100000;
    std::vector<int> histo(buckets, 0);
    for (int i = 0; i < draws; ++i)
        histo[r.below(buckets)]++;
    for (std::uint64_t b = 0; b < buckets; ++b) {
        EXPECT_NEAR(histo[b], draws / buckets, draws / buckets * 0.1);
    }
}

TEST(Rng, BetweenInclusive)
{
    Rng r(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = r.between(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng r(13);
    const double mean = 250.0;
    double sum = 0.0;
    constexpr int draws = 200000;
    for (int i = 0; i < draws; ++i)
        sum += r.exponential(mean);
    EXPECT_NEAR(sum / draws, mean, mean * 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(17);
    int hits = 0;
    constexpr int draws = 100000;
    for (int i = 0; i < draws; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / static_cast<double>(draws), 0.3, 0.01);
}

TEST(Zipfian, StaysInDomain)
{
    Rng r(3);
    ZipfianGenerator z(1000);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(z.next(r), 1000u);
}

TEST(Zipfian, ItemZeroIsHottest)
{
    Rng r(23);
    ZipfianGenerator z(10000, 0.99);
    std::map<std::uint64_t, int> histo;
    for (int i = 0; i < 100000; ++i)
        histo[z.next(r)]++;
    // With theta=0.99 over 10k items, the hottest item draws a large
    // share, and popularity decays with rank.
    EXPECT_GT(histo[0], histo[1]);
    EXPECT_GT(histo[0], 100000 / 50);
    EXPECT_GT(histo[1], histo[10]);
}

TEST(Zipfian, SkewConcentratesMass)
{
    Rng r(29);
    ZipfianGenerator z(100000, 0.99);
    int in_top_100 = 0;
    constexpr int draws = 50000;
    for (int i = 0; i < draws; ++i)
        in_top_100 += z.next(r) < 100;
    // YCSB zipfian 0.99: the top 0.1% of items draw >30% of accesses.
    EXPECT_GT(in_top_100, draws * 3 / 10);
}

TEST(ScrambledZipfian, SpreadsHotItemsAcrossKeySpace)
{
    Rng r(31);
    ScrambledZipfianGenerator z(100000);
    std::map<std::uint64_t, int> histo;
    for (int i = 0; i < 50000; ++i)
        histo[z.next(r)]++;
    // The hottest items should NOT be the lowest ids once scrambled:
    // count draws landing in the first 100 ids -- should be tiny.
    int low = 0;
    for (const auto &[k, v] : histo)
        if (k < 100)
            low += v;
    EXPECT_LT(low, 50000 / 20);
}

TEST(SplitMix, IsDeterministicAndMixes)
{
    EXPECT_EQ(splitMix64(1), splitMix64(1));
    std::set<std::uint64_t> outs;
    for (std::uint64_t i = 0; i < 1000; ++i)
        outs.insert(splitMix64(i));
    EXPECT_EQ(outs.size(), 1000u); // no collisions on consecutive ints
}

} // namespace
} // namespace cxlmemo
