/**
 * @file
 * Tests for the flight-recorder subsystem: log-bucket latency
 * histograms, request-lifecycle tracing, the interval-metrics
 * registry, mergeable running stats, and the machine-level wiring
 * (including the watchdog post-mortem integration).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "cpu/streams.hh"
#include "interconnect/switch.hh"
#include "memo/memo.hh"
#include "sim/chaos.hh"
#include "sim/fabric_attrib.hh"
#include "sim/histogram.hh"
#include "sim/metrics.hh"
#include "sim/stats.hh"
#include "sim/statmerge.hh"
#include "sim/sweep.hh"
#include "sim/trace.hh"
#include "sim/watchdog.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace
{

/* ------------------------- LatencyHistogram ---------------------- */

TEST(LatencyHistogram, SmallValuesAreExact)
{
    LatencyHistogram h;
    for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
        EXPECT_EQ(LatencyHistogram::bucketOf(v), v);
        EXPECT_DOUBLE_EQ(LatencyHistogram::bucketMidpoint(
                             LatencyHistogram::bucketOf(v)),
                         static_cast<double>(v));
    }
    h.record(7);
    EXPECT_DOUBLE_EQ(h.p50(), 7.0);
    EXPECT_DOUBLE_EQ(h.p99(), 7.0);
}

TEST(LatencyHistogram, RelativeErrorBounded)
{
    // Above the linear region the bucket midpoint must be within
    // 1/2^kSubBits of the recorded value.
    const double bound = 1.0 / (1u << LatencyHistogram::kSubBits);
    for (std::uint64_t v : {37ull, 1000ull, 123456ull, 987654321ull,
                            (1ull << 40) + 12345ull}) {
        const double mid = LatencyHistogram::bucketMidpoint(
            LatencyHistogram::bucketOf(v));
        EXPECT_LE(std::abs(mid - static_cast<double>(v)),
                  bound * static_cast<double>(v))
            << "value " << v;
    }
}

TEST(LatencyHistogram, ExactStatsAndApproxPercentiles)
{
    LatencyHistogram h;
    std::uint64_t sum = 0;
    for (std::uint64_t v = 1; v <= 1000; ++v) {
        h.record(v);
        sum += v;
    }
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.sum(), sum);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(sum) / 1000.0);
    // ~3% relative error bound on interior percentiles.
    EXPECT_NEAR(h.p50(), 500.0, 500.0 * 0.04);
    EXPECT_NEAR(h.p99(), 990.0, 990.0 * 0.04);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 1000.0);
}

TEST(LatencyHistogram, MergeIsAssociative)
{
    auto fill = [](LatencyHistogram &h, std::uint64_t seed, int n) {
        std::uint64_t x = seed;
        for (int i = 0; i < n; ++i) {
            x = x * 6364136223846793005ull + 1442695040888963407ull;
            h.record(x >> 40);
        }
    };
    LatencyHistogram a, b, c;
    fill(a, 1, 500);
    fill(b, 2, 300);
    fill(c, 3, 700);

    // (a + b) + c
    LatencyHistogram left = a;
    left.merge(b);
    left.merge(c);
    // a + (b + c)
    LatencyHistogram bc = b;
    bc.merge(c);
    LatencyHistogram right = a;
    right.merge(bc);

    EXPECT_EQ(left.count(), right.count());
    EXPECT_EQ(left.sum(), right.sum());
    EXPECT_EQ(left.min(), right.min());
    EXPECT_EQ(left.max(), right.max());
    for (double p : {1.0, 25.0, 50.0, 75.0, 99.0})
        EXPECT_DOUBLE_EQ(left.percentile(p), right.percentile(p));

    // Merging equals recording everything into one histogram.
    LatencyHistogram all;
    fill(all, 1, 500);
    fill(all, 2, 300);
    fill(all, 3, 700);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_EQ(left.sum(), all.sum());
    EXPECT_DOUBLE_EQ(left.p99(), all.p99());
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity)
{
    LatencyHistogram a, empty;
    a.record(42);
    LatencyHistogram m = a;
    m.merge(empty);
    EXPECT_EQ(m.count(), 1u);
    EXPECT_EQ(m.min(), 42u);
    EXPECT_EQ(m.max(), 42u);
    LatencyHistogram e2 = empty;
    e2.merge(a);
    EXPECT_EQ(e2.count(), 1u);
    EXPECT_EQ(e2.min(), 42u);
}

/* --------------------- RunningStats::merge ----------------------- */

TEST(RunningStats, MergeMatchesSingleAccumulation)
{
    RunningStats a, b, all;
    std::uint64_t x = 99;
    for (int i = 0; i < 1000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const double v = static_cast<double>(x >> 32) / 1e6;
        (i < 400 ? a : b).record(v);
        all.record(v);
    }
    RunningStats merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.count(), all.count());
    EXPECT_DOUBLE_EQ(merged.min(), all.min());
    EXPECT_DOUBLE_EQ(merged.max(), all.max());
    EXPECT_NEAR(merged.mean(), all.mean(),
                1e-9 * std::abs(all.mean()));
    EXPECT_NEAR(merged.variance(), all.variance(),
                1e-6 * all.variance());
}

TEST(RunningStats, SweepMapMergeIndependentOfJobs)
{
    auto run = [](unsigned jobs) {
        SweepRunner pool(jobs);
        return pool.mapMerge(8, [](std::size_t i) {
            RunningStats s;
            for (int k = 0; k < 100; ++k)
                s.record(static_cast<double>(i * 1000 + k));
            return s;
        });
    };
    const RunningStats one = run(1);
    const RunningStats four = run(4);
    EXPECT_EQ(one.count(), four.count());
    EXPECT_DOUBLE_EQ(one.min(), four.min());
    EXPECT_DOUBLE_EQ(one.max(), four.max());
    EXPECT_DOUBLE_EQ(one.mean(), four.mean());
    EXPECT_DOUBLE_EQ(one.variance(), four.variance());
}

/* ------------------------- RequestTracer ------------------------- */

TEST(RequestTracer, SamplesExactlyOneInN)
{
    RequestTracer tr(4);
    int sampled = 0;
    for (int i = 0; i < 64; ++i) {
        TraceSpan *s = tr.maybeStart(0, MemCmd::Read, 0x1000 + i, i);
        if (s) {
            ++sampled;
            tr.finish(s, i + 10);
        }
    }
    EXPECT_EQ(sampled, 16);
    EXPECT_EQ(tr.seen(), 64u);
    EXPECT_EQ(tr.completedCount(), 16u);
    EXPECT_EQ(tr.openCount(), 0u);
}

TEST(RequestTracer, DisabledTracerNeverSamples)
{
    RequestTracer tr(0);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(tr.maybeStart(0, MemCmd::Read, 0, i), nullptr);
}

TEST(RequestTracer, RingKeepsLastN)
{
    RequestTracer tr(1, /*ringCap=*/4);
    for (int i = 0; i < 10; ++i) {
        TraceSpan *s = tr.maybeStart(0, MemCmd::Read, i, i);
        ASSERT_NE(s, nullptr);
        tr.finish(s, i + 1);
    }
    EXPECT_EQ(tr.completedCount(), 10u);
    ASSERT_EQ(tr.ring().size(), 4u);
    // The ring holds the four most recent completions.
    EXPECT_EQ(tr.ring().front().id, 6u);
    EXPECT_EQ(tr.ring().back().id, 9u);
}

TEST(RequestTracer, PostMortemNamesStuckStage)
{
    RequestTracer tr(1);
    TraceSpan *s = tr.maybeStart(3, MemCmd::Read, 0xdead, 0);
    ASSERT_NE(s, nullptr);
    RequestTracer::mark(s, TraceStage::Cache, 100);
    RequestTracer::mark(s, TraceStage::CxlIngress, 2000);
    const std::string pm = tr.postMortem(ticksFromNs(500.0));
    EXPECT_NE(pm.find("flight recorder"), std::string::npos);
    EXPECT_NE(pm.find("in-flight spans: 1"), std::string::npos);
    EXPECT_NE(pm.find("stuck_in=cxl_ingress"), std::string::npos);
    EXPECT_NE(pm.find("addr=0xdead"), std::string::npos);
}

TEST(RequestTracer, JsonFragmentIsWellFormed)
{
    RequestTracer tr(1);
    TraceSpan *s = tr.maybeStart(1, MemCmd::Read, 64, 0);
    RequestTracer::mark(s, TraceStage::Issue, 0);
    RequestTracer::mark(s, TraceStage::Cache, 50);
    tr.finish(s, 300);

    std::string out;
    bool first = true;
    tr.appendTraceEvents(out, /*pid=*/7, first);
    EXPECT_FALSE(first);
    // Parent slice + one child per mark.
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.front(), '{');
    EXPECT_EQ(out.back(), '}');
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"pid\":7"), std::string::npos);
    EXPECT_NE(out.find("\"stage\":\"span\""), std::string::npos);
    EXPECT_NE(out.find("\"stage\":\"cache\""), std::string::npos);
    // Three events -> two separators; braces balance.
    int depth = 0, events = 1;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i] == '{')
            ++depth;
        else if (out[i] == '}')
            --depth;
        else if (out[i] == ',' && depth == 0)
            ++events;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(events, 3);
}

/* ------------------------- MetricsRegistry ----------------------- */

/** Parse long-format rows into (metric, kind) -> summed value. */
std::map<std::pair<std::string, std::string>, double>
sumRows(const std::string &rows)
{
    std::map<std::pair<std::string, std::string>, double> out;
    std::istringstream is(rows);
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string t, name, kind, value;
        std::getline(ls, t, ',');
        std::getline(ls, name, ',');
        std::getline(ls, kind, ',');
        std::getline(ls, value, ',');
        out[{name, kind}] += std::stod(value);
    }
    return out;
}

TEST(MetricsRegistry, DeltasConserveTotals)
{
    MetricsRegistry r;
    std::uint64_t v = 0;
    r.addCounter("x.count", [&v] { return v; });
    double g = 1.5;
    r.addGauge("x.level", [&g] { return g; });

    v = 5;
    r.snapshot(ticksFromNs(1000.0));
    v = 12;
    g = 2.5;
    r.snapshot(ticksFromNs(2000.0));
    r.flush(ticksFromNs(3000.0));

    const auto sums = sumRows(r.rows());
    EXPECT_DOUBLE_EQ(sums.at({"x.count", "delta"}), 12.0);
    EXPECT_DOUBLE_EQ(sums.at({"x.count", "total"}), 12.0);
    // The timeline is a change log: the gauge is emitted at its
    // first sample and whenever it moves, so the unchanged flush
    // sample (2.5 again) is elided -- 1.5 + 2.5.
    EXPECT_DOUBLE_EQ(sums.at({"x.level", "gauge"}), 4.0);
    EXPECT_EQ(r.snapshots(), 3u);
}

TEST(MetricsRegistry, FlushIsIdempotent)
{
    MetricsRegistry r;
    std::uint64_t v = 7;
    r.addCounter("c", [&v] { return v; });
    r.flush(ticksFromNs(100.0));
    const std::string once = r.rows();
    r.flush(ticksFromNs(200.0));
    EXPECT_EQ(r.rows(), once);
}

TEST(MetricsSampler, StandsDownAtQuiesce)
{
    EventQueue eq;
    MetricsRegistry r;
    std::uint64_t v = 0;
    r.addCounter("c", [&v] { return v; });
    MetricsSampler sampler(eq, r, ticksFromNs(100.0));
    // Activity for 1 us -> ~10 snapshots, then the queue drains and
    // the sampler must not keep it alive.
    for (int i = 1; i <= 10; ++i)
        eq.scheduleIn(ticksFromNs(95.0 * i), [&v] { ++v; });
    sampler.arm();
    eq.run();
    EXPECT_FALSE(sampler.armed());
    EXPECT_GE(r.snapshots(), 5u);
}

/* --------------------- machine-level wiring ---------------------- */

TEST(MachineObservability, DefaultBuildsNoObservers)
{
    Machine m(Testbed::SingleSocketCxl);
    EXPECT_EQ(m.tracer(), nullptr);
    EXPECT_EQ(m.metrics(), nullptr);
    EXPECT_EQ(m.localMem().latencyHistogram(), nullptr);
    EXPECT_EQ(m.cxlDev().latencyHistogram(), nullptr);
}

TEST(MachineObservability, HistogramsRecordDeviceLatency)
{
    memo::Options opts;
    opts.obs.latencyHistograms = true;
    std::uint64_t devSamples = 0;
    double p99ns = 0.0;
    opts.onMachineDone = [&](Machine &m) {
        const LatencyHistogram *h = m.cxlDev().latencyHistogram();
        ASSERT_NE(h, nullptr);
        devSamples = h->count();
        p99ns = h->p99() / tickPerNs;
    };
    memo::runSeqBandwidth(memo::Target::Cxl, MemOp::Kind::Load, 1,
                          opts);
    EXPECT_GT(devSamples, 100u);
    // CXL device access latency must be in a plausible range.
    EXPECT_GT(p99ns, 50.0);
    EXPECT_LT(p99ns, 5000.0);
}

TEST(MachineObservability, MetricsConservationOnRealRun)
{
    memo::Options opts;
    opts.obs.metricsInterval = ticksFromNs(500.0);
    std::string rows;
    opts.onMachineDone = [&rows](Machine &m) {
        m.flushMetrics();
        rows = m.metrics()->rows();
    };
    memo::runSeqBandwidth(memo::Target::Cxl, MemOp::Kind::Load, 1,
                          opts);
    ASSERT_FALSE(rows.empty());

    std::map<std::string, std::uint64_t> delta, total;
    std::istringstream is(rows);
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string t, name, kind, value;
        std::getline(ls, t, ',');
        std::getline(ls, name, ',');
        std::getline(ls, kind, ',');
        std::getline(ls, value, ',');
        if (kind == "delta")
            delta[name] += std::stoull(value);
        else if (kind == "total")
            total[name] = std::stoull(value);
    }
    ASSERT_FALSE(total.empty());
    for (const auto &[name, tot] : total)
        EXPECT_EQ(delta[name], tot) << "metric " << name;
    // The timeline must actually contain interval samples, not just
    // the final flush.
    EXPECT_GT(delta.at("eq.events"), 0u);
}

TEST(MachineObservability, TraceCollectionDeterministicAcrossJobs)
{
    auto run = [](unsigned jobs) {
        SweepRunner pool(jobs);
        auto frags = pool.map(3, [](std::size_t i) {
            memo::Options o;
            o.obs.traceSampleEvery = 16;
            std::string json;
            o.onMachineDone = [&json, i](Machine &m) {
                bool first = true;
                m.tracer()->appendTraceEvents(
                    json, static_cast<int>(i), first);
            };
            memo::runLoadedLatency(memo::Target::Cxl,
                                   1 + static_cast<std::uint32_t>(i),
                                   o);
            return json;
        });
        std::string all;
        for (const std::string &f : frags)
            all += f;
        return all;
    };
    const std::string one = run(1);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, run(4));
}

/* --------------------- shared merge helpers ---------------------- */

/** The two statmerge rules every mergeable stats struct is built
 *  from. Counters fold with +=, one-shot timestamps with max; both
 *  are associative with identity 0, so any member list composed of
 *  them merges associatively -- the per-struct tests below then only
 *  need to exercise representative real structs. */
TEST(StatMerge, CounterAndTimestampRulesAreAssociative)
{
    struct S
    {
        std::uint64_t n = 0;
        Tick at = 0;
    };
    const auto merge = [](S into, const S &from) {
        mergeCounters(into, from, &S::n);
        mergeTimestamps(into, from, &S::at);
        return into;
    };
    const S a{3, 100}, b{5, 0}, c{7, 250};
    const S left = merge(merge(a, b), c);
    const S right = merge(a, merge(b, c));
    EXPECT_EQ(left.n, 15u);
    EXPECT_EQ(left.at, 250u);
    EXPECT_EQ(left.n, right.n);
    EXPECT_EQ(left.at, right.at);
    // Identity: merging a default S changes nothing.
    const S id = merge(a, S{});
    EXPECT_EQ(id.n, a.n);
    EXPECT_EQ(id.at, a.at);
}

TEST(StatMerge, SwitchPortStatsMergeIsAssociative)
{
    auto mk = [](std::uint64_t k, Tick down, Tick fence) {
        SwitchPortStats s;
        s.reqs = k;
        s.reads = k / 2;
        s.writes = k - k / 2;
        s.reqBytes = 64 * k;
        s.responses = k;
        s.poisoned = k / 7;
        s.aborted = k / 5;
        s.abortedInFlight = k / 11;
        s.droppedResponses = k / 13;
        s.creditStalls = 2 * k;
        s.creditStallTicks = 17 * k;
        s.heldWhileDown = k / 3;
        s.downs = k > 0 ? 1 : 0;
        s.retrains = k > 1 ? 1 : 0;
        s.downAt = down;
        s.upAt = down ? down + 500 : 0;
        s.fencedAt = fence;
        return s;
    };
    const SwitchPortStats a = mk(40, 1000, 0);
    const SwitchPortStats b = mk(7, 0, 9000);
    const SwitchPortStats c = mk(23, 4000, 0);

    SwitchPortStats left = a;
    left.merge(b);
    left.merge(c);
    SwitchPortStats bc = b;
    bc.merge(c);
    SwitchPortStats right = a;
    right.merge(bc);

    EXPECT_EQ(left.reqs, 70u);
    EXPECT_EQ(left.reqBytes, 64u * 70u);
    EXPECT_EQ(left.downAt, 4000u);  // later outage wins
    EXPECT_EQ(left.fencedAt, 9000u);
    for (auto m :
         {&SwitchPortStats::reqs, &SwitchPortStats::reads,
          &SwitchPortStats::writes, &SwitchPortStats::reqBytes,
          &SwitchPortStats::responses, &SwitchPortStats::poisoned,
          &SwitchPortStats::aborted, &SwitchPortStats::abortedInFlight,
          &SwitchPortStats::droppedResponses,
          &SwitchPortStats::creditStalls,
          &SwitchPortStats::creditStallTicks,
          &SwitchPortStats::heldWhileDown, &SwitchPortStats::downs,
          &SwitchPortStats::retrains})
        EXPECT_EQ(left.*m, right.*m);
    EXPECT_EQ(left.downAt, right.downAt);
    EXPECT_EQ(left.upAt, right.upAt);
    EXPECT_EQ(left.fencedAt, right.fencedAt);
}

TEST(StatMerge, ChaosStatsMergeIsAssociative)
{
    auto mk = [](std::uint64_t k, Tick at) {
        ChaosStats s;
        s.linkDowns = k;
        s.retrains = k;
        s.blockedMsgs = 3 * k;
        s.abortedReads = k / 2;
        s.poisonEvents = k / 3;
        s.pagesOfflined = k / 4;
        s.dataAtRiskBytes = 4096 * k;
        s.linkDownAt = at;
        s.removeAt = at ? at + 10 : 0;
        return s;
    };
    const ChaosStats a = mk(5, 700), b = mk(2, 0), c = mk(9, 300);
    ChaosStats left = a;
    left.merge(b);
    left.merge(c);
    ChaosStats bc = b;
    bc.merge(c);
    ChaosStats right = a;
    right.merge(bc);
    EXPECT_EQ(left.linkDowns, right.linkDowns);
    EXPECT_EQ(left.blockedMsgs, right.blockedMsgs);
    EXPECT_EQ(left.dataAtRiskBytes, right.dataAtRiskBytes);
    EXPECT_EQ(left.linkDownAt, right.linkDownAt);
    EXPECT_EQ(left.linkDownAt, 700u);
    EXPECT_EQ(left.removeAt, right.removeAt);
}

/** Drive a FabricBoard with synthetic accounting so the snapshot has
 *  every integer field populated. */
FabricSnapshot
fabricShard(std::uint64_t seed, Tick horizon)
{
    FabricBoard b(2, 1, 0);
    std::uint64_t x = seed;
    for (int i = 0; i < 20; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint32_t port = static_cast<std::uint32_t>(x & 1);
        const Tick t0 = (x >> 8) % (horizon / 2);
        const Tick q = (x >> 24) % 50;
        const Tick s = 10 + (x >> 32) % 40;
        b.beginRequest(port, t0);
        b.station(port, FabricStation::VoqWait)
            .passThrough(q, 0, 0, true, t0 + q);
        b.station(port, FabricStation::DevService)
            .passThrough(0, s, s, true, t0 + q + s);
        b.completeRequest(port, t0, t0 + q + s);
    }
    return b.snapshot(horizon);
}

void
expectSnapEq(const FabricSnapshot &l, const FabricSnapshot &r)
{
    ASSERT_EQ(l.ports.size(), r.ports.size());
    EXPECT_EQ(l.elapsed, r.elapsed);
    for (std::size_t p = 0; p < l.ports.size(); ++p) {
        EXPECT_EQ(l.ports[p].reqCount, r.ports[p].reqCount);
        EXPECT_EQ(l.ports[p].totalTicks, r.ports[p].totalTicks);
        for (std::size_t i = 0; i < numFabricStations; ++i) {
            const StationSnap &a = l.ports[p].st[i];
            const StationSnap &b = r.ports[p].st[i];
            EXPECT_EQ(a.enters, b.enters) << "port " << p << " st " << i;
            EXPECT_EQ(a.exits, b.exits);
            EXPECT_EQ(a.queueTicks, b.queueTicks);
            EXPECT_EQ(a.serviceTicks, b.serviceTicks);
            EXPECT_EQ(a.busyTicks, b.busyTicks);
            EXPECT_EQ(a.occIntegral, b.occIntegral);
            EXPECT_EQ(a.stackQueueTicks, b.stackQueueTicks);
            EXPECT_EQ(a.stackServiceTicks, b.stackServiceTicks);
        }
    }
}

TEST(StatMerge, FabricSnapshotMergeIsExactAndAssociative)
{
    const FabricSnapshot a = fabricShard(1, 10000);
    const FabricSnapshot b = fabricShard(2, 8000);
    const FabricSnapshot c = fabricShard(3, 12000);

    FabricSnapshot left = a;
    left.merge(b);
    left.merge(c);
    FabricSnapshot bc = b;
    bc.merge(c);
    FabricSnapshot right = a;
    right.merge(bc);
    expectSnapEq(left, right);
    EXPECT_EQ(left.elapsed, 30000u); // shard windows add

    // The cluster-wide roll-up is the same merge applied across
    // ports, so it distributes over the shard merge.
    FabricPortSnap roll = a.cluster();
    roll.merge(b.cluster());
    roll.merge(c.cluster());
    const FabricPortSnap whole = left.cluster();
    EXPECT_EQ(roll.reqCount, whole.reqCount);
    EXPECT_EQ(roll.totalTicks, whole.totalTicks);
    EXPECT_EQ(roll.stackTicks(), whole.stackTicks());
    EXPECT_TRUE(whole.decompositionExact());
}

/** Minimal wedged progress source used to trip the watchdog. */
class StuckSource : public ProgressSource
{
  public:
    std::string progressName() const override { return "stuck-dev"; }
    std::uint64_t progressRetired() const override { return 0; }
    std::uint64_t progressOutstanding() const override { return 1; }
    std::string progressDiagnosis() const override
    {
        return "    wedged\n";
    }
};

TEST(MachineObservability, WatchdogPostMortemIncludesFlightRecorder)
{
    MachineOptions mo;
    mo.obs.traceSampleEvery = 1;
    mo.watchdogInterval = ticksFromUs(1.0);
    Machine m(Testbed::SingleSocketCxl, mo);

    // Run a real stream so completed spans populate the ring.
    {
        auto t = m.makeThread(0);
        NumaBuffer buf =
            m.numa().alloc(64 * kiB, MemPolicy::membind(m.cxlNode()));
        t->start(std::make_unique<SequentialStream>(
                     buf, 0, 64 * kiB, 64 * kiB, MemOp::Kind::Load),
                 m.eq().curTick(), [](Tick, Tick) {});
        m.rearmWatchdog();
        m.eq().run();
        ASSERT_TRUE(t->finished());
    }
    ASSERT_NE(m.tracer(), nullptr);
    ASSERT_GT(m.tracer()->completedCount(), 0u);

    // Wedge the machine: outstanding work that can never retire trips
    // the deadlock detector once the queue drains.
    StuckSource stuck;
    m.watchdog()->watch(&stuck);
    std::string report;
    m.watchdog()->setOnTrip(
        [&report](const std::string &r) { report = r; });
    m.watchdog()->arm();
    m.eq().run();

    ASSERT_TRUE(m.watchdog()->tripped());
    EXPECT_NE(report.find("stuck-dev"), std::string::npos);
    // The flight recorder's last-N spans ride along in the report,
    // naming each request's last stage.
    EXPECT_NE(report.find("flight recorder"), std::string::npos);
    EXPECT_NE(report.find("done id="), std::string::npos);
    EXPECT_NE(report.find("last="), std::string::npos);
}

} // namespace
} // namespace cxlmemo
