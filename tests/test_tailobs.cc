/**
 * @file
 * Tests for the tail-forensics layer: worst-K outlier capture
 * (ordering, bounding, exact associative merges, stage-stack
 * exactness, regime classification), the exact-bucket windowed
 * quantile extractor and its metrics wiring, machine-level
 * determinism of `--tail-trace` across engines and job counts, and
 * the `memo diff` differential regression verdicts on pinned fixture
 * CSVs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "memo/diff.hh"
#include "memo/memo.hh"
#include "sim/histogram.hh"
#include "sim/metrics.hh"
#include "sim/sweep.hh"
#include "sim/tailcap.hh"
#include "sim/trace.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace
{

/* --------------------------- TailCapture ------------------------- */

TraceSpan
mkSpan(std::uint64_t id, Tick start, Tick end,
       std::vector<StageMark> marks = {}, std::uint16_t source = 0)
{
    TraceSpan s;
    s.id = id;
    s.source = source;
    s.cmd = MemCmd::Read;
    s.addr = 0x1000 + id * 64;
    s.start = start;
    s.end = end;
    s.marks = std::move(marks);
    return s;
}

TEST(TailWorse, StrictTotalOrder)
{
    TailSpan a, b;
    a.start = b.start = 100;
    a.end = 300;
    b.end = 200; // a has higher latency -> worse
    EXPECT_TRUE(tailWorse(a, b));
    EXPECT_FALSE(tailWorse(b, a));

    // Equal latency: earlier start is worse (stable, deterministic).
    b.start = 200;
    b.end = 400;
    EXPECT_TRUE(tailWorse(a, b));

    // Equal latency and start: lower id wins, then lower source.
    b.start = 100;
    b.end = 300;
    a.id = 1;
    b.id = 2;
    EXPECT_TRUE(tailWorse(a, b));
    b.id = 1;
    a.source = 0;
    b.source = 1;
    EXPECT_TRUE(tailWorse(a, b));
    b.source = 0;
    // Fully equal keys: irreflexive.
    EXPECT_FALSE(tailWorse(a, b));
    EXPECT_FALSE(tailWorse(b, a));
}

TEST(TailCapture, DisabledConsidersNothing)
{
    TailCapture tc; // k == 0
    tc.consider(mkSpan(1, 0, 100));
    EXPECT_EQ(tc.considered(), 0u);
    EXPECT_EQ(tc.held(), 0u);
    EXPECT_EQ(tc.summary().regime, "none");
}

TEST(TailCapture, KeepsWorstKPerClassAnyInsertionOrder)
{
    // 100 local reads with latencies 1..100, inserted in two very
    // different orders: the retained set must be identical (the set's
    // top-K, not the stream's).
    std::vector<TraceSpan> spans;
    for (std::uint64_t i = 0; i < 100; ++i)
        spans.push_back(mkSpan(i, 1000 + i, 1000 + i + (i + 1)));

    TailCapture fwd(8), rev(8);
    for (const TraceSpan &s : spans)
        fwd.consider(s);
    for (auto it = spans.rbegin(); it != spans.rend(); ++it)
        rev.consider(*it);

    ASSERT_EQ(fwd.held(), 8u);
    ASSERT_EQ(rev.held(), 8u);
    const auto &f = fwd.regimeSpans(TailRegime::Local);
    const auto &r = rev.regimeSpans(TailRegime::Local);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(f[i].id, r[i].id);
        EXPECT_EQ(f[i].latency(), r[i].latency());
        // Worse-first: latencies 100, 99, ...
        EXPECT_EQ(f[i].latency(), Tick(100 - i));
    }
    EXPECT_EQ(fwd.considered(), 100u);
}

TEST(TailCapture, MergeIsExactAssociativeTopKUnion)
{
    std::vector<TraceSpan> spans;
    std::uint64_t x = 12345;
    for (std::uint64_t i = 0; i < 200; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        spans.push_back(mkSpan(i, 10 * i, 10 * i + 50 + (x >> 56)));
    }

    // One capture sees everything...
    TailCapture all(6);
    for (const TraceSpan &s : spans)
        all.consider(s);

    // ...three shards split it, merged in both groupings.
    TailCapture a(6), b(6), c(6);
    for (std::size_t i = 0; i < spans.size(); ++i)
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).consider(spans[i]);

    TailCapture left(6);
    left.merge(a);
    left.merge(b);
    left.merge(c);
    TailCapture bc(6);
    bc.merge(b);
    bc.merge(c);
    TailCapture right; // k == 0: adopts depth from the first merge
    right.merge(a);
    right.merge(bc);

    EXPECT_EQ(right.k(), 6u);
    ASSERT_EQ(left.held(), all.held());
    ASSERT_EQ(right.held(), all.held());
    EXPECT_EQ(left.considered(), all.considered());
    EXPECT_EQ(right.considered(), all.considered());
    const auto &la = left.regimeSpans(TailRegime::Local);
    const auto &ra = right.regimeSpans(TailRegime::Local);
    const auto &aa = all.regimeSpans(TailRegime::Local);
    for (std::size_t i = 0; i < aa.size(); ++i) {
        EXPECT_EQ(la[i].id, aa[i].id);
        EXPECT_EQ(ra[i].id, aa[i].id);
    }
}

TEST(TailCapture, ClassifiesRegimesFromStages)
{
    auto regime = [](std::vector<StageMark> marks) {
        return TailCapture::classify(mkSpan(1, 0, 100,
                                            std::move(marks)));
    };
    EXPECT_EQ(regime({}), TailRegime::Local);
    EXPECT_EQ(regime({{TraceStage::Cache, 10}, {TraceStage::Dram, 20}}),
              TailRegime::Local);
    EXPECT_EQ(regime({{TraceStage::Cache, 10}, {TraceStage::Upi, 20}}),
              TailRegime::Remote);
    // Device back-end DRAM marks as Dram, but the CXL link stages
    // pin the regime.
    EXPECT_EQ(regime({{TraceStage::CxlM2s, 10},
                      {TraceStage::Dram, 40}}),
              TailRegime::Cxl);
    // Any switch stage wins over CXL stages.
    EXPECT_EQ(regime({{TraceStage::CxlM2s, 10},
                      {TraceStage::SwVoq, 30}}),
              TailRegime::Fabric);
}

TEST(TailCapture, StageBreakdownTelescopesExactly)
{
    // Stage marks at arbitrary (even out-of-order) ticks: the signed
    // telescoped contributions must sum exactly to end - start.
    TailSpan s;
    s.start = 1000;
    s.end = 1777;
    s.marks = {{TraceStage::Cache, 1100},
               {TraceStage::CxlM2s, 1090}, // out of order on purpose
               {TraceStage::CxlIngress, 1500}};
    const auto stages = TailCapture::stageBreakdown(s);
    std::int64_t sum = 0;
    for (const TailStage &st : stages)
        sum += st.ticks;
    EXPECT_EQ(sum, std::int64_t(s.end - s.start));
    EXPECT_TRUE(TailCapture::stackExact(s));
    // Leading Issue gap: start -> first mark.
    ASSERT_FALSE(stages.empty());
    EXPECT_EQ(stages.front().stage, TraceStage::Issue);
    EXPECT_EQ(stages.front().ticks, 100);

    // Mark-less span: one Issue entry covering the whole latency.
    TailSpan bare;
    bare.start = 10;
    bare.end = 60;
    const auto only = TailCapture::stageBreakdown(bare);
    ASSERT_EQ(only.size(), 1u);
    EXPECT_EQ(only[0].stage, TraceStage::Issue);
    EXPECT_EQ(only[0].ticks, 50);
    EXPECT_TRUE(TailCapture::stackExact(bare));
}

TEST(TailCapture, SummaryAndTableNameTheWorstRead)
{
    TailCapture tc(4);
    tc.consider(mkSpan(7, 0, ticksFromNs(900.0),
                       {{TraceStage::CxlM2s, ticksFromNs(100.0)},
                        {TraceStage::CxlIngress,
                         ticksFromNs(200.0)}}));
    tc.consider(mkSpan(8, 0, ticksFromNs(100.0)));
    const TailSummary sum = tc.summary();
    EXPECT_EQ(sum.k, 4u);
    EXPECT_EQ(sum.held, 2u);
    EXPECT_EQ(sum.considered, 2u);
    EXPECT_NEAR(sum.worstNs, 900.0, 1e-6);
    EXPECT_EQ(sum.regime, "cxl");
    // Dominant stage: cxl_ingress covers 200ns..900ns of the bracket.
    EXPECT_EQ(sum.stage, "cxl_ingress");
    EXPECT_NEAR(sum.stageNs, 700.0, 1e-6);
    EXPECT_TRUE(sum.stackExact);
    // kth: with K=4 and only 2 held, the kth is the last held one.
    EXPECT_NEAR(sum.kthNs, 100.0, 1e-6);

    const std::string table = tc.table();
    EXPECT_NE(table.find("worst-K"), std::string::npos);
    EXPECT_NE(table.find("cxl_ingress"), std::string::npos);
}

TEST(TailCapture, TraceEventsExportOnTailTrack)
{
    TailCapture tc(2);
    tc.consider(mkSpan(3, ticksFromNs(10.0), ticksFromNs(400.0),
                       {{TraceStage::Dram, ticksFromNs(50.0)}}));
    std::string out;
    bool first = true;
    tc.appendTraceEvents(out, /*pid=*/1, first);
    EXPECT_FALSE(first);
    EXPECT_NE(out.find("tail:local"), std::string::npos);
    EXPECT_NE(out.find("\"tid\":999"), std::string::npos);
    EXPECT_NE(out.find("dram"), std::string::npos);
}

/* ------------------- windowed quantile extraction ---------------- */

TEST(QuantilesFromBuckets, MatchesPercentileOracle)
{
    // The batch extractor must agree with LatencyHistogram's own
    // nearest-rank percentile() for every quantile, on an awkward
    // multi-modal distribution.
    LatencyHistogram h;
    std::uint64_t x = 99;
    for (int i = 0; i < 5000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t v =
            (i % 10 == 0) ? 5000 + (x >> 52) : 100 + (x >> 58);
        h.record(v);
    }
    const double qs[] = {1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9};
    double out[7];
    LatencyHistogram::quantilesFromBuckets(h.bucketCounts(), h.count(),
                                           qs, out, 7);
    // percentile() additionally clamps to the exact min/max; apply
    // the same clamp so only the rank/bucket walk is under test.
    for (std::size_t i = 0; i < 7; ++i) {
        const double clamped =
            std::clamp(out[i], static_cast<double>(h.min()),
                       static_cast<double>(h.max()));
        EXPECT_DOUBLE_EQ(clamped, h.percentile(qs[i]))
            << "q " << qs[i];
    }
}

TEST(QuantilesFromBuckets, EmptyWindowYieldsZeros)
{
    std::array<std::uint64_t, LatencyHistogram::kBuckets> counts{};
    const double qs[] = {50.0, 99.0};
    double out[2] = {-1.0, -1.0};
    LatencyHistogram::quantilesFromBuckets(counts, 0, qs, out, 2);
    EXPECT_DOUBLE_EQ(out[0], 0.0);
    EXPECT_DOUBLE_EQ(out[1], 0.0);
}

TEST(MetricsRegistry, WindowedPercentilesAreDeltasNotCumulative)
{
    LatencyHistogram h;
    MetricsRegistry m;
    m.addHistogram("lat.dev", [&h] { return &h; }, 1.0);

    // Interval 1: slow samples only.
    for (int i = 0; i < 100; ++i)
        h.record(1000);
    m.snapshot(ticksFromNs(100.0));
    // Interval 2: fast samples only -- a cumulative extractor would
    // still report ~1000 at p50; the windowed one must say 10.
    for (int i = 0; i < 100; ++i)
        h.record(10);
    m.snapshot(ticksFromNs(200.0));

    std::map<std::string, std::vector<double>> rows;
    std::istringstream is(m.rows());
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string t, name, kind, value;
        std::getline(ls, t, ',');
        std::getline(ls, name, ',');
        std::getline(ls, kind, ',');
        std::getline(ls, value, ',');
        if (kind == "pctl")
            rows[name].push_back(std::stod(value));
    }
    ASSERT_EQ(rows.at("lat.dev.p50").size(), 2u);
    EXPECT_NEAR(rows.at("lat.dev.p50")[0], 1000.0, 1000.0 * 0.04);
    EXPECT_NEAR(rows.at("lat.dev.p50")[1], 10.0, 10.0 * 0.04);
    ASSERT_EQ(rows.at("lat.dev.p999").size(), 2u);
    // The companion count makes the windows auditable.
    EXPECT_NE(m.rows().find("lat.dev.n,"), std::string::npos);
}

TEST(MetricsRegistry, QuietWindowEmitsNoPercentileRows)
{
    LatencyHistogram h;
    MetricsRegistry m;
    m.addHistogram("lat.dev", [&h] { return &h; }, 1.0);
    h.record(100);
    m.snapshot(ticksFromNs(100.0));
    m.snapshot(ticksFromNs(200.0)); // no new samples
    std::size_t pctlRows = 0;
    std::istringstream is(m.rows());
    std::string line;
    while (std::getline(is, line))
        if (line.find(",pctl,") != std::string::npos)
            ++pctlRows;
    // 4 quantiles for the active window, none for the quiet one.
    EXPECT_EQ(pctlRows, 4u);
}

/* ------------------------ machine wiring ------------------------- */

TEST(MachineTailObs, CapturesEveryDemandReadWithExactStacks)
{
    memo::Options opts;
    opts.obs.tailK = 8;
    TailSummary sum;
    std::vector<Tick> lats;
    opts.onMachineDone = [&](Machine &m) {
        TailCapture *tc = m.tailCapture();
        ASSERT_NE(tc, nullptr);
        sum = tc->summary();
        for (const TailSpan *s : tc->worstFirst())
            lats.push_back(s->latency());
    };
    memo::runLoadedLatency(memo::Target::Cxl, 2, opts);
    EXPECT_GT(sum.considered, 1000u);
    EXPECT_GT(sum.held, 0u);
    EXPECT_LE(sum.held, 8u * numTailRegimes);
    EXPECT_TRUE(sum.stackExact);
    EXPECT_GT(sum.worstNs, 0.0);
    EXPECT_NE(sum.regime, "none");
    // The worst read really is the worst retained one.
    ASSERT_FALSE(lats.empty());
    EXPECT_DOUBLE_EQ(sum.worstNs,
                     nsFromTicks(*std::max_element(lats.begin(),
                                                   lats.end())));
}

TEST(MachineTailObs, SamplingOffByDefaultWhenOnlyTailArmed)
{
    memo::Options opts;
    opts.obs.tailK = 4;
    std::uint64_t ringSpans = 0;
    opts.onMachineDone = [&](Machine &m) {
        ASSERT_NE(m.tracer(), nullptr);
        ringSpans = m.tracer()->completedCount();
    };
    memo::runLoadedLatency(memo::Target::Cxl, 1, opts);
    // Tail-only spans are recycled, never exported as samples.
    EXPECT_EQ(ringSpans, 0u);
}

TEST(MachineTailObs, ByteIdenticalAcrossSimThreadCounts)
{
    auto run = [](std::uint32_t simThreads) {
        memo::Options opts;
        opts.obs.tailK = 8;
        opts.simThreads = simThreads;
        std::string table;
        opts.onMachineDone = [&table](Machine &m) {
            table = m.tailCapture()->table();
        };
        memo::runLoadedLatency(memo::Target::Cxl, 4, opts);
        return table;
    };
    const std::string classic = run(0);
    EXPECT_FALSE(classic.empty());
    EXPECT_EQ(classic, run(1));
    EXPECT_EQ(classic, run(2));
    EXPECT_EQ(classic, run(8));
}

TEST(MachineTailObs, ByteIdenticalAcrossJobs)
{
    auto run = [](unsigned jobs) {
        SweepRunner pool(jobs);
        auto tables = pool.map(3, [](std::size_t i) {
            memo::Options o;
            o.obs.tailK = 4;
            std::string t;
            o.onMachineDone = [&t](Machine &m) {
                t = m.tailCapture()->table();
            };
            memo::runLoadedLatency(memo::Target::Cxl,
                                   1 + static_cast<std::uint32_t>(i),
                                   o);
            return t;
        });
        std::string all;
        for (const std::string &t : tables)
            all += t;
        return all;
    };
    const std::string one = run(1);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, run(4));
}

/* --------------------------- memo diff --------------------------- */

/** Minimal attribution-tier CSV: identity + the three columns the
 *  diff needs per station it should name, plus the basis columns. */
std::string
fixtureCsv(double backendQ, double backendS, double ingressS,
           double totalNs, double p99)
{
    std::ostringstream os;
    os << "target,op,threads,attrib_cxl_ingress_q_ns,"
          "attrib_cxl_ingress_s_ns,attrib_cxl_backend_q_ns,"
          "attrib_cxl_backend_s_ns,attrib_total_ns,lat_p99_ns\n";
    os << "CXL,load,8,0.05," << ingressS << "," << backendQ << ","
       << backendS << "," << totalNs << "," << p99 << "\n";
    return os.str();
}

TEST(MemoDiff, BackendSlowdownNamesCxlBackendService)
{
    // B: the device's service time grew 40%, queueing unchanged ->
    // "got slower, not more contended".
    const std::string a = fixtureCsv(30.0, 100.0, 80.0, 360.0, 500.0);
    const std::string b = fixtureCsv(30.0, 140.0, 80.0, 400.0, 690.0);
    memo::DiffOptions opts;
    const memo::DiffReport r = memo::diffRuns(a, b, opts);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.rows, 1u);
    EXPECT_EQ(r.basis, "p99");
    EXPECT_EQ(r.regime, "regression");
    ASSERT_FALSE(r.stations.empty());
    EXPECT_EQ(r.stations.front().station, "cxl.backend");
    EXPECT_NE(r.verdict.find("cxl.backend"), std::string::npos);
    EXPECT_NE(r.verdict.find("service"), std::string::npos);
    EXPECT_NE(r.verdict.find("not more contended"),
              std::string::npos);
    // The backend explains 100% of the stack delta here.
    EXPECT_NE(r.verdict.find("100%"), std::string::npos);

    const std::string text = memo::diffReportText(r);
    EXPECT_NE(text.find("regression"), std::string::npos);
    const std::string json = memo::diffReportJson(r);
    EXPECT_NE(json.find("\"regime\":\"regression\""),
              std::string::npos);
    EXPECT_NE(json.find("\"top_station\":\"cxl.backend\""),
              std::string::npos);
}

TEST(MemoDiff, ContentionRegimeNamesQueueing)
{
    // B: the same station's queueing exploded while service held ->
    // "more contended, not slower".
    const std::string a = fixtureCsv(30.0, 100.0, 80.0, 360.0, 500.0);
    const std::string b = fixtureCsv(150.0, 102.0, 80.0, 480.0, 760.0);
    memo::DiffOptions opts;
    const memo::DiffReport r = memo::diffRuns(a, b, opts);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.regime, "regression");
    EXPECT_EQ(r.stations.front().station, "cxl.backend");
    EXPECT_NE(r.verdict.find("more contended"), std::string::npos);
}

TEST(MemoDiff, ImprovementAndNoChangeRegimes)
{
    const std::string a = fixtureCsv(30.0, 100.0, 80.0, 360.0, 500.0);
    const std::string faster =
        fixtureCsv(30.0, 60.0, 80.0, 320.0, 400.0);
    const std::string same =
        fixtureCsv(30.0, 101.0, 80.0, 361.0, 502.0);
    memo::DiffOptions opts;
    EXPECT_EQ(memo::diffRuns(a, faster, opts).regime, "improvement");
    EXPECT_EQ(memo::diffRuns(a, same, opts).regime, "no-change");
    // A tighter threshold turns the same pair into a verdict.
    opts.thresholdPct = 0.1;
    EXPECT_EQ(memo::diffRuns(a, same, opts).regime, "regression");
}

TEST(MemoDiff, ErrorsAreDiagnosed)
{
    memo::DiffOptions opts;
    const std::string a = fixtureCsv(30.0, 100.0, 80.0, 360.0, 500.0);

    EXPECT_FALSE(memo::diffRuns("", a, opts).ok);

    // No attribution tier.
    const std::string bare = "target,op,threads,gbps\nCXL,load,8,12\n";
    const memo::DiffReport r1 = memo::diffRuns(bare, bare, opts);
    EXPECT_FALSE(r1.ok);
    EXPECT_NE(r1.error.find("attribution"), std::string::npos);

    // Mismatched headers.
    EXPECT_FALSE(memo::diffRuns(a, bare, opts).ok);

    // Disjoint identity keys.
    std::string other = a;
    const std::size_t at = other.find("CXL,load,8");
    ASSERT_NE(at, std::string::npos);
    other.replace(at, 10, "CXL,load,4");
    const memo::DiffReport r2 = memo::diffRuns(a, other, opts);
    EXPECT_FALSE(r2.ok);
    EXPECT_NE(r2.error.find("matching"), std::string::npos);
}

TEST(MemoDiff, AveragesRepeatedKeysAndUsesFabricTier)
{
    // Pool-style fabric tier, two rows per host key in one file:
    // means, not sums, feed the deltas.
    const auto poolCsv = [](double devS) {
        std::ostringstream os;
        os << "host,port,role,sw_dev_service_q_ns,"
              "sw_dev_service_s_ns,fabric_total_ns,read_p99_ns\n";
        os << "0,0,normal,10," << devS << "," << (200.0 + devS)
           << "," << (300.0 + devS) << "\n";
        os << "1,1,normal,10," << devS << "," << (200.0 + devS)
           << "," << (300.0 + devS) << "\n";
        return os.str();
    };
    memo::DiffOptions opts;
    const memo::DiffReport r =
        memo::diffRuns(poolCsv(100.0), poolCsv(160.0), opts);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.rows, 2u);
    EXPECT_EQ(r.basis, "p99");
    EXPECT_EQ(r.regime, "regression");
    EXPECT_EQ(r.stations.front().station, "sw.dev_service");
    EXPECT_NEAR(r.stations.front().deltaS, 60.0, 1e-9);
}

} // namespace
} // namespace cxlmemo
