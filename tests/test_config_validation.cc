/**
 * @file
 * Parameter-validation tests: every hardware-parameter struct rejects
 * out-of-range values with std::invalid_argument at construction
 * time, so a bad testbed override fails loudly instead of simulating
 * nonsense.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "cxl/device.hh"
#include "cxl/link.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"

namespace cxlmemo
{
namespace
{

/* --------------------------- link -------------------------------- */

TEST(ConfigValidation, DefaultLinkParamsAreValid)
{
    EXPECT_NO_THROW(CxlLinkParams{}.validate());
}

TEST(ConfigValidation, LinkRejectsBadRates)
{
    CxlLinkParams p;
    p.rawGBps = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = CxlLinkParams{};
    p.rawGBps = -1.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = CxlLinkParams{};
    p.flitEfficiency = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = CxlLinkParams{};
    p.flitEfficiency = 1.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ConfigValidation, LinkRejectsZeroMessageCostsAndRetryBuffer)
{
    CxlLinkParams p;
    p.headerBytes = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = CxlLinkParams{};
    p.dataBytes = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = CxlLinkParams{};
    p.retryBufferFlits = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ConfigValidation, LinkDirectionValidatesAtConstruction)
{
    EventQueue eq;
    CxlLinkParams p;
    p.rawGBps = 0.0;
    EXPECT_THROW(CxlLinkDirection(eq, p), std::invalid_argument);
}

/* --------------------------- device ------------------------------ */

TEST(ConfigValidation, DefaultDeviceParamsAreValid)
{
    EXPECT_NO_THROW(CxlDeviceParams{}.validate());
}

TEST(ConfigValidation, DeviceRejectsZeroQueues)
{
    CxlDeviceParams p;
    p.readQueueEntries = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = CxlDeviceParams{};
    p.writeBufferEntries = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = CxlDeviceParams{};
    p.hostPostedEntries = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = CxlDeviceParams{};
    p.backendChannels = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ConfigValidation, DeviceValidatesNestedLinkAndBackend)
{
    CxlDeviceParams p;
    p.link.flitEfficiency = 2.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = CxlDeviceParams{};
    p.backend.numBanks = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ConfigValidation, DeviceCtorValidates)
{
    EventQueue eq;
    CxlDeviceParams p;
    p.readQueueEntries = 0;
    EXPECT_THROW(CxlMemDevice(eq, p), std::invalid_argument);
}

/* ---------------------------- DRAM ------------------------------- */

TEST(ConfigValidation, DefaultDramParamsAreValid)
{
    EXPECT_NO_THROW(DramChannelParams{}.validate());
}

TEST(ConfigValidation, DramRejectsEachBadClause)
{
    DramChannelParams p;
    p.numBanks = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = DramChannelParams{};
    p.peakGBps = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = DramChannelParams{};
    p.busEfficiency = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = DramChannelParams{};
    p.busEfficiency = 1.1;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = DramChannelParams{};
    p.writeEfficiency = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = DramChannelParams{};
    p.rowBytes = cachelineBytes / 2;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = DramChannelParams{};
    p.bankStripeBytes = cachelineBytes / 2;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = DramChannelParams{};
    p.rowBytes = 8 * kiB;
    p.bankStripeBytes = 3 * kiB; // row is not a whole number of stripes
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = DramChannelParams{};
    p.scanDepth = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = DramChannelParams{};
    p.maxHitRun = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = DramChannelParams{};
    p.maxDirectionRun = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = DramChannelParams{};
    p.ntPostedEntries = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ConfigValidation, DramChannelCtorValidates)
{
    EventQueue eq;
    DramChannelParams p;
    p.busEfficiency = 0.0;
    EXPECT_THROW(DramChannel(eq, p), std::invalid_argument);
}

TEST(ConfigValidation, InterleavedMemoryRejectsZeroChannels)
{
    EventQueue eq;
    EXPECT_THROW(
        InterleavedMemory(eq, "mem", DramChannelParams{}, 0, 256),
        std::invalid_argument);
}

/* ------------------------- event queue --------------------------- */

TEST(ConfigValidation, ScheduleInRejectsNegativeAndOverflowingDelays)
{
    // Same throwing style as the parameter structs: a delay that wraps
    // the tick counter (which is what a negative delay looks like once
    // cast to the unsigned Tick) is a caller bug, reported eagerly.
    EventQueue eq;
    eq.schedule(1000, [] {});
    eq.run();
    EXPECT_THROW(eq.scheduleIn(static_cast<Tick>(-1), [] {}),
                 std::invalid_argument);
    EXPECT_THROW(eq.scheduleIn(maxTick, [] {}), std::invalid_argument);
    EXPECT_NO_THROW(eq.scheduleIn(0, [] {}));
}

/* -------------------------- fault spec --------------------------- */

TEST(ConfigValidation, FaultSpecDefaultIsValid)
{
    EXPECT_NO_THROW(FaultSpec{}.validate());
}

TEST(ConfigValidation, FaultSpecRejectsBadProbabilitiesAndRetries)
{
    FaultSpec s;
    s.dramStallRate = 1.0001;
    EXPECT_THROW(s.validate(), std::invalid_argument);
    s = FaultSpec{};
    s.timeoutRate = -0.5;
    EXPECT_THROW(s.validate(), std::invalid_argument);
    s = FaultSpec{};
    s.maxHostRetries = 17;
    EXPECT_THROW(s.validate(), std::invalid_argument);
    s = FaultSpec{};
    s.requestTimeout = 0;
    EXPECT_THROW(s.validate(), std::invalid_argument);
    s = FaultSpec{};
    s.backoffBase = 0;
    EXPECT_THROW(s.validate(), std::invalid_argument);
}

} // namespace
} // namespace cxlmemo
