/**
 * @file
 * Tests for SweepRunner: positional determinism, worker pooling,
 * exception propagation -- and the contract the figure benches rely
 * on: a sweep's rendered output is byte-identical for every job count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "memo/memo.hh"
#include "sim/sweep.hh"

namespace cxlmemo
{
namespace
{

TEST(SweepRunner, SerialMapReturnsResultsInIndexOrder)
{
    SweepRunner pool(1);
    const auto r = pool.map(5, [](std::size_t i) {
        return static_cast<int>(i * i);
    });
    EXPECT_EQ(r, (std::vector<int>{0, 1, 4, 9, 16}));
}

TEST(SweepRunner, ParallelMapReturnsResultsInIndexOrder)
{
    SweepRunner pool(4);
    const auto r = pool.map(100, [](std::size_t i) {
        return static_cast<int>(i) * 3;
    });
    ASSERT_EQ(r.size(), 100u);
    for (std::size_t i = 0; i < r.size(); ++i)
        EXPECT_EQ(r[i], static_cast<int>(i) * 3);
}

TEST(SweepRunner, EveryIndexRunsExactlyOnce)
{
    SweepRunner pool(8);
    std::vector<std::atomic<int>> hits(64);
    pool.forEach(64, [&](std::size_t i) { ++hits[i]; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, SerialModeRunsOnCallingThread)
{
    SweepRunner pool(1);
    const auto caller = std::this_thread::get_id();
    pool.forEach(3, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(SweepRunner, ZeroJobsMeansHardwareConcurrency)
{
    SweepRunner pool(0);
    EXPECT_GE(pool.jobs(), 1u);
}

TEST(SweepRunner, MorePointsThanJobsAllComplete)
{
    SweepRunner pool(3);
    std::atomic<int> total{0};
    pool.forEach(57, [&](std::size_t) { ++total; });
    EXPECT_EQ(total.load(), 57);
}

TEST(SweepRunner, MoreJobsThanPointsAllComplete)
{
    SweepRunner pool(16);
    const auto r = pool.map(2, [](std::size_t i) {
        return static_cast<int>(i) + 1;
    });
    EXPECT_EQ(r, (std::vector<int>{1, 2}));
}

TEST(SweepRunner, EmptySweepReturnsEmpty)
{
    SweepRunner pool(4);
    const auto r = pool.map(0, [](std::size_t) { return 1; });
    EXPECT_TRUE(r.empty());
}

TEST(SweepRunner, ExceptionsPropagateToCaller)
{
    SweepRunner pool(4);
    EXPECT_THROW(pool.forEach(32,
                              [](std::size_t i) {
                                  if (i == 7)
                                      throw std::runtime_error("point 7");
                              }),
                 std::runtime_error);
}

TEST(SweepRunner, SerialExceptionsPropagateToCaller)
{
    SweepRunner pool(1);
    EXPECT_THROW(pool.forEach(3,
                              [](std::size_t) {
                                  throw std::runtime_error("boom");
                              }),
                 std::runtime_error);
}

TEST(SweepRunner, NonTrivialResultsSurviveTheHandoff)
{
    SweepRunner pool(4);
    const auto r = pool.map(20, [](std::size_t i) {
        return std::string(i, 'x');
    });
    for (std::size_t i = 0; i < r.size(); ++i)
        EXPECT_EQ(r[i].size(), i);
}

/**
 * The contract the memo CLI and figure benches build on: running the
 * same simulated sweep with different job counts produces the same
 * result vector, so a CSV rendered from it is byte-identical.
 */
TEST(SweepRunner, SimulatedSweepIsDeterministicAcrossJobCounts)
{
    memo::Options opts;
    opts.warmupUs = 5.0;
    opts.measureUs = 20.0;
    const std::vector<std::uint32_t> threads = {1, 2};

    auto point = [&](std::size_t i) {
        return memo::runSeqBandwidth(memo::Target::Ddr5Local,
                                     MemOp::Kind::Load, threads[i],
                                     opts);
    };

    auto renderCsv = [&](const std::vector<double> &bws) {
        std::string csv = "target,op,threads,gbps\n";
        for (std::size_t i = 0; i < bws.size(); ++i) {
            char line[128];
            std::snprintf(line, sizeof(line), "%s,%s,%u,%.2f\n",
                          memo::targetName(memo::Target::Ddr5Local),
                          "load", threads[i], bws[i]);
            csv += line;
        }
        return csv;
    };

    SweepRunner serial(1);
    SweepRunner wide(4);
    const std::string csv1 =
        renderCsv(serial.map(threads.size(), point));
    const std::string csv4 = renderCsv(wide.map(threads.size(), point));
    EXPECT_EQ(csv1, csv4);
    EXPECT_NE(csv1.find("DDR5-L8,load,1,"), std::string::npos);
}

/**
 * Fault injection keeps that contract: every sweep point builds its
 * own Machine whose injector is seeded from the spec, so the fault
 * sequence -- and therefore both the figure values and the RAS
 * counters -- is identical for any job count.
 */
TEST(SweepRunner, FaultSweepIsDeterministicAcrossJobCounts)
{
    memo::Options opts;
    opts.warmupUs = 5.0;
    opts.measureUs = 20.0;
    opts.faults.crcPerFlit = 1e-3;
    opts.faults.readPoisonRate = 1e-4;
    const std::vector<std::uint32_t> threads = {1, 2, 4};

    auto point = [&](std::size_t i) {
        RasStats ras;
        const double bw = memo::runSeqBandwidth(
            memo::Target::Cxl, MemOp::Kind::Load, threads[i], opts,
            &ras);
        char line[512];
        std::snprintf(line, sizeof(line), "%u,%.3f,%s\n", threads[i],
                      bw, ras.summary().c_str());
        return std::string(line);
    };

    SweepRunner serial(1);
    SweepRunner wide(4);
    const auto rows1 = serial.map(threads.size(), point);
    const auto rows4 = wide.map(threads.size(), point);
    EXPECT_EQ(rows1, rows4);
    // Faults actually fired: the rendered rows carry nonzero CRC
    // counts, not an all-zero summary.
    EXPECT_EQ(rows1[0].find("crc-errors=0 "), std::string::npos);
}

} // namespace
} // namespace cxlmemo
