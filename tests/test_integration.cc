/**
 * @file
 * Cross-module integration tests: whole-machine conservation laws and
 * end-to-end invariants that no single module test can cover.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/streams.hh"
#include "sim/rng.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace
{

/** Mixed op stream across an interleaved DRAM+CXL buffer. */
class MixedStream : public AccessStream
{
  public:
    MixedStream(const NumaBuffer &buf, std::uint64_t count,
                std::uint64_t seed)
        : buf_(buf), remaining_(count), rng_(seed)
    {}

    bool
    next(MemOp &op) override
    {
        if (remaining_ == 0)
            return false;
        --remaining_;
        const std::uint64_t line =
            rng_.below(buf_.size() / cachelineBytes);
        op.paddr = buf_.translate(line * cachelineBytes);
        switch (rng_.below(5)) {
          case 0:
            op.kind = MemOp::Kind::Load;
            break;
          case 1:
            op.kind = MemOp::Kind::DependentLoad;
            break;
          case 2:
            op.kind = MemOp::Kind::Store;
            break;
          case 3:
            op.kind = MemOp::Kind::NtStore;
            break;
          default:
            op.kind = MemOp::Kind::Flush;
            break;
        }
        return true;
    }

  private:
    const NumaBuffer &buf_;
    std::uint64_t remaining_;
    Rng rng_;
};

TEST(Integration, MixedTrafficDrainsCompletely)
{
    Machine m(Testbed::SingleSocketCxl);
    NumaBuffer buf = m.numa().alloc(
        64 * miB,
        MemPolicy::splitDramCxl(m.localNode(), m.cxlNode(), 0.5));
    std::vector<std::unique_ptr<HwThread>> pool;
    std::uint32_t finished = 0;
    for (std::uint32_t t = 0; t < 8; ++t) {
        pool.push_back(m.makeThread(static_cast<std::uint16_t>(t)));
        pool.back()->start(
            std::make_unique<MixedStream>(buf, 5000, 100 + t), 0,
            [&finished](Tick, Tick) { ++finished; });
    }
    m.eq().run();
    EXPECT_EQ(finished, 8u);
    for (auto &t : pool)
        EXPECT_TRUE(t->finished());
    // Both devices saw traffic.
    EXPECT_GT(m.localMem().stats().reads, 0u);
    EXPECT_GT(m.cxlDev().backendStats().reads, 0u);
    // The event queue fully drained (no stuck transactions).
    EXPECT_EQ(m.eq().pending(), 0u);
}

TEST(Integration, WholeMachineIsDeterministic)
{
    auto run = [] {
        Machine m(Testbed::SingleSocketCxl);
        NumaBuffer buf = m.numa().alloc(
            32 * miB,
            MemPolicy::splitDramCxl(m.localNode(), m.cxlNode(), 0.25));
        auto t = m.makeThread(0);
        Tick end = 0;
        t->start(std::make_unique<MixedStream>(buf, 20000, 9), 0,
                 [&end](Tick, Tick e) { end = e; });
        m.eq().run();
        return std::make_pair(end, m.eq().eventsExecuted());
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST(Integration, InterleavedTrafficSplitsByPolicyWeight)
{
    Machine m(Testbed::SingleSocketCxl);
    NumaBuffer buf = m.numa().alloc(
        128 * miB,
        MemPolicy::splitDramCxl(m.localNode(), m.cxlNode(), 0.25));
    auto t = m.makeThread(0);
    t->start(std::make_unique<SequentialStream>(
                 buf, 0, 128 * miB, 64 * miB, MemOp::Kind::Load),
             0, nullptr);
    m.eq().run();
    const double local =
        static_cast<double>(m.localMem().stats().reads);
    const double cxl =
        static_cast<double>(m.cxlDev().backendStats().reads);
    EXPECT_NEAR(cxl / (local + cxl), 0.25, 0.02);
}

TEST(Integration, RemoteSocketCarriesItsNodesTraffic)
{
    Machine m(Testbed::DualSocket);
    NumaBuffer buf = m.numa().alloc(
        16 * miB, MemPolicy::membind(m.remoteNode()));
    auto t = m.makeThread(0);
    t->start(std::make_unique<SequentialStream>(
                 buf, 0, 16 * miB, 4 * miB, MemOp::Kind::Load),
             0, nullptr);
    m.eq().run();
    EXPECT_EQ(m.remoteMem().stats().reads, 4 * miB / cachelineBytes);
    EXPECT_EQ(m.localMem().stats().reads, 0u);
    EXPECT_GT(m.remoteMem().bytesUp(),
              m.remoteMem().bytesDown()); // read-dominated
}

TEST(Integration, CacheFiltersRepeatTraffic)
{
    Machine m(Testbed::SingleSocketCxl);
    NumaBuffer buf = m.numa().alloc(
        1 * miB, MemPolicy::membind(m.cxlNode()));
    auto t = m.makeThread(0);
    // Sweep a cache-resident set four times.
    t->start(std::make_unique<SequentialStream>(
                 buf, 0, 1 * miB, 4 * miB, MemOp::Kind::Load),
             0, nullptr);
    m.eq().run();
    // Only the first sweep misses; the device sees ~1 MiB of reads.
    EXPECT_NEAR(
        static_cast<double>(m.cxlDev().backendStats().bytesRead),
        static_cast<double>(1 * miB), static_cast<double>(64 * kiB));
}

TEST(Integration, SfenceOrdersNtStoresAcrossDevices)
{
    Machine m(Testbed::SingleSocketCxl);
    NumaBuffer buf = m.numa().alloc(
        1 * miB, MemPolicy::splitDramCxl(m.localNode(), m.cxlNode(),
                                         0.5));
    std::vector<MemOp> ops;
    for (int i = 0; i < 64; ++i)
        ops.push_back({MemOp::Kind::NtStore,
                       buf.translate(std::uint64_t(i) * pageBytes / 4),
                       0, 0});
    ops.push_back({MemOp::Kind::Sfence, 0, 0, 0});
    auto t = m.makeThread(0);
    Tick end = 0;
    t->start(std::make_unique<ListStream>(std::move(ops)), 0,
             [&end](Tick, Tick e) { end = e; });
    m.eq().run();
    // After the fence, every NT write has fully drained to a device.
    const auto local = m.localMem().stats();
    const auto cxl = m.cxlDev().backendStats();
    EXPECT_EQ(local.writes + cxl.writes, 64u);
    EXPECT_GT(end, 0u);
}

} // namespace
} // namespace cxlmemo
