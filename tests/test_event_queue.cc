/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, same-tick FIFO
 * semantics, runUntil boundaries and reset.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace cxlmemo
{
namespace
{

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.eventsExecuted(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.curTick(), 40u);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(50, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.schedule(101, [&] { ++fired; });
    const bool drained = eq.runUntil(100);
    EXPECT_FALSE(drained);
    EXPECT_EQ(fired, 2);        // the event exactly at the limit runs
    EXPECT_EQ(eq.curTick(), 100u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilReturnsTrueWhenDrained)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    EXPECT_TRUE(eq.runUntil(1000));
}

TEST(EventQueue, RunUntilAdvancesClockToLimitWhenStopped)
{
    EventQueue eq;
    eq.schedule(500, [] {});
    eq.runUntil(200);
    EXPECT_EQ(eq.curTick(), 200u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick observed = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(25, [&] { observed = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(observed, 125u);
}

TEST(EventQueue, ResetDropsPendingEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.reset();
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.curTick(), 0u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 7u);
}

// --- Calendar-queue structure tests: the wheel covers ~2 us in ~4 ns
// windows; later events spill to a heap. These cross those seams.

TEST(EventQueue, SameTickFifoAcrossManyWindows)
{
    EventQueue eq;
    std::vector<int> order;
    // Interleave two ticks that land in different wheel windows, then
    // check each tick's callbacks run in scheduling order.
    const Tick early = ticksFromNs(10);
    const Tick late = ticksFromNs(500); // different window
    for (int i = 0; i < 8; ++i) {
        eq.schedule(late, [&order, i] { order.push_back(100 + i); });
        eq.schedule(early, [&order, i] { order.push_back(i); });
    }
    eq.run();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(order[i], i);
        EXPECT_EQ(order[8 + i], 100 + i);
    }
}

TEST(EventQueue, FarHorizonEventsRunInOrder)
{
    EventQueue eq;
    std::vector<int> order;
    // Far beyond the ~2 us wheel horizon: these take the spill heap.
    eq.schedule(ticksFromUs(50), [&] { order.push_back(2); });
    eq.schedule(ticksFromUs(5), [&] { order.push_back(1); });
    eq.schedule(ticksFromNs(3), [&] { order.push_back(0); });
    eq.schedule(ticksFromUs(500), [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.curTick(), ticksFromUs(500));
}

TEST(EventQueue, FarHorizonSameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(ticksFromUs(100), [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ReentrantSchedulingIntoCurrentWindow)
{
    // A callback scheduling zero/short-delay follow-ups lands in the
    // window that is already sorted and executing; ordering must hold.
    EventQueue eq;
    std::vector<Tick> at;
    eq.schedule(100, [&] {
        eq.scheduleIn(0, [&] { at.push_back(eq.curTick()); });
        eq.scheduleIn(1, [&] { at.push_back(eq.curTick()); });
        eq.scheduleIn(7, [&] { at.push_back(eq.curTick()); });
    });
    eq.schedule(104, [&] { at.push_back(eq.curTick()); });
    eq.run();
    EXPECT_EQ(at, (std::vector<Tick>{100, 101, 104, 107}));
}

TEST(EventQueue, ZeroDelayChainsPreserveFifoWithPending)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] {
        order.push_back(0);
        eq.scheduleIn(0, [&] { order.push_back(2); });
    });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, RunUntilMidWindowThenResume)
{
    EventQueue eq;
    std::vector<int> order;
    // All three land in the same ~4 ns wheel window.
    eq.schedule(1000, [&] { order.push_back(1); });
    eq.schedule(1010, [&] { order.push_back(2); });
    eq.schedule(1020, [&] { order.push_back(3); });
    EXPECT_FALSE(eq.runUntil(1010));
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.pending(), 1u);
    // New events may arrive between the runUntil calls.
    eq.schedule(1015, [&] { order.push_back(9); });
    EXPECT_TRUE(eq.runUntil(2000));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 9, 3}));
}

TEST(EventQueue, WheelWrapsAcrossManyLaps)
{
    // March time forward over several wheel laps (each lap ~2 us) with
    // a self-rescheduling event; window indices wrap modulo the wheel.
    EventQueue eq;
    int fired = 0;
    std::function<void()> step = [&] {
        if (++fired < 1000)
            eq.scheduleIn(ticksFromNs(10), step);
    };
    eq.schedule(0, step);
    eq.run();
    EXPECT_EQ(fired, 1000);
    EXPECT_EQ(eq.curTick(), 999 * ticksFromNs(10));
}

TEST(EventQueue, RandomizedOrderMatchesStableSortReference)
{
    // Property check: any mix of near/far/duplicate ticks executes in
    // exactly stable-sort-by-tick order (i.e. (tick, seq)).
    EventQueue eq;
    Rng rng(1234);
    const int n = 5000;
    std::vector<std::pair<Tick, int>> ref; // (when, id)
    std::vector<int> got;
    for (int i = 0; i < n; ++i) {
        // Bias toward the wheel, with a far tail and many collisions.
        Tick when = rng.below(4) == 0 ? ticksFromUs(3 + rng.below(40))
                                      : rng.below(2000) * 8;
        ref.emplace_back(when, i);
        eq.schedule(when, [&got, i] { got.push_back(i); });
    }
    eq.run();
    std::stable_sort(ref.begin(), ref.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    ASSERT_EQ(got.size(), ref.size());
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(got[i], ref[i].second) << "at position " << i;
    EXPECT_EQ(eq.eventsExecuted(), static_cast<std::uint64_t>(n));
}

TEST(EventQueue, RandomizedInterleavedRunUntil)
{
    // Same property, but consumed through stuttering runUntil windows
    // with fresh events injected between them.
    EventQueue eq;
    Rng rng(99);
    std::vector<std::pair<Tick, int>> ref;
    std::vector<int> got;
    int id = 0;
    Tick limit = 0;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 100; ++i) {
            const Tick when = eq.curTick() + rng.below(ticksFromUs(3));
            ref.emplace_back(when, id);
            eq.schedule(when, [&got, id] { got.push_back(id); });
            ++id;
        }
        limit += ticksFromNs(700 + rng.below(900));
        eq.runUntil(limit);
    }
    eq.run();
    std::stable_sort(ref.begin(), ref.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(got[i], ref[i].second) << "at position " << i;
}

TEST(EventQueue, ResetAfterPartialRunRestartsClean)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        eq.schedule(i * 100, [&] { ++fired; });
    eq.schedule(ticksFromUs(10), [&] { ++fired; }); // far heap
    eq.runUntil(500);
    eq.reset();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.curTick(), 0u);
    // The queue must be fully reusable, including same-tick FIFO.
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(0); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueueDeathTest, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduling into the past");
}

TEST(EventQueue, ScheduleInRejectsOverflowingDelay)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    ASSERT_EQ(eq.curTick(), 100u);
    // A delay that would wrap the tick counter -- including any
    // negative delay a caller cast to the unsigned Tick -- must throw
    // instead of silently wrapping into the past.
    EXPECT_THROW(eq.scheduleIn(maxTick - 50, [] {}),
                 std::invalid_argument);
    EXPECT_THROW(eq.scheduleIn(static_cast<Tick>(-5), [] {}),
                 std::invalid_argument);
    // The exact boundary still schedules.
    EXPECT_NO_THROW(eq.scheduleIn(maxTick - eq.curTick(), [] {}));
    EXPECT_EQ(eq.pending(), 1u);
}

/* ------------------------- peekNextTick -------------------------- */

TEST(EventQueue, PeekNextTickEmptyQueueReportsMaxTick)
{
    EventQueue eq;
    EXPECT_EQ(eq.peekNextTick(), maxTick);
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_EQ(eq.peekNextTick(), maxTick);
}

TEST(EventQueue, PeekNextTickSeesWheelFarAndActiveWindow)
{
    EventQueue eq;
    // Wheel event (near future).
    eq.schedule(ticksFromNs(40), [] {});
    EXPECT_EQ(eq.peekNextTick(), ticksFromNs(40));
    // An out-of-order earlier event in the same unsorted bucket must
    // win the peek: the scan takes the bucket min, not the first entry.
    eq.schedule(ticksFromNs(39), [] {});
    EXPECT_EQ(eq.peekNextTick(), ticksFromNs(39));
    // Far-heap event beyond the wheel horizon does not hide the wheel.
    eq.schedule(ticksFromUs(100), [] {});
    EXPECT_EQ(eq.peekNextTick(), ticksFromNs(39));
    // Drain the wheel: only the far event remains.
    eq.runUntil(ticksFromNs(50));
    EXPECT_EQ(eq.peekNextTick(), ticksFromUs(100));
}

TEST(EventQueue, PeekNextTickSeesRemainderOfSortedWindow)
{
    EventQueue eq;
    // Both land in one ~4 ns window; stop mid-window so the second
    // sits in the already-sorted active window.
    eq.schedule(1000, [] {});
    eq.schedule(1020, [] {});
    eq.runUntil(1005);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_EQ(eq.peekNextTick(), 1020u);
}

TEST(EventQueue, PeekNextTickMatchesExecutionUnderRandomLoad)
{
    EventQueue eq;
    Rng rng(7);
    for (int i = 0; i < 2000; ++i)
        eq.schedule(rng.below(ticksFromUs(5)), [] {});
    while (eq.pending() > 0) {
        const Tick peek = eq.peekNextTick();
        const std::uint64_t before = eq.eventsExecuted();
        eq.runUntil(peek);
        // At least one event must sit exactly at the peeked tick.
        EXPECT_GT(eq.eventsExecuted(), before);
        EXPECT_EQ(eq.curTick(), peek);
    }
}

/* ------------------------ external drive ------------------------- */

TEST(EventQueue, ExternalDriveAllowsSchedulingAndAdvance)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    eq.beginExternalDrive();
    eq.schedule(150, [] {});
    eq.endExternalDrive();
    eq.advanceTo(120);
    EXPECT_EQ(eq.curTick(), 120u);
    eq.run();
    EXPECT_EQ(eq.curTick(), 150u);
}

TEST(EventQueueDeathTest, ResetFromStagedCallbackPanics)
{
    // A staged cross-window callback runs under an external drive, not
    // inside runUntil; reset() must refuse there exactly as it does
    // from an ordinary callback.
    EventQueue eq;
    eq.beginExternalDrive();
    EXPECT_DEATH(eq.reset(), "reset called from a callback");
}

TEST(EventQueueDeathTest, RunUntilFromStagedCallbackPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.beginExternalDrive();
    EXPECT_DEATH(eq.runUntil(100), "runUntil called from a callback");
}

TEST(EventQueueDeathTest, ResetFromOrdinaryCallbackPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] { eq.reset(); });
    EXPECT_DEATH(eq.run(), "reset called from a callback");
}

/* ------------------------- callback pool ------------------------- */

TEST(Pool, ReusesFreedCells)
{
    const std::uint64_t a0 = poolAllocCount();
    void *p = poolAlloc(96);
    poolFree(p, 96);
    void *q = poolAlloc(96); // same 128 B size class -> same cell back
    EXPECT_EQ(q, p);
    poolFree(q, 96);
    EXPECT_GE(poolAllocCount() - a0, 2u);
    EXPECT_GE(poolReuseCount(), 1u);
}

TEST(Pool, LargeAllocationsFallBackToOperatorNew)
{
    const std::uint64_t f0 = poolFallbackCount();
    void *p = poolAlloc(64 * kiB);
    EXPECT_NE(p, nullptr);
    poolFree(p, 64 * kiB);
    EXPECT_EQ(poolFallbackCount(), f0 + 1);
}

TEST(Pool, SpilledCallbacksRoundTripThroughThePool)
{
    // A capture bigger than the inline buffer spills to a pool cell;
    // scheduling and running many such events must recycle cells, and
    // the callback must still see its payload intact.
    struct Big
    {
        std::uint64_t payload[12]; // 96 B > 48 B inline buffer
    };
    EventQueue eq;
    const std::uint64_t a0 = poolAllocCount();
    std::uint64_t sum = 0;
    for (int round = 0; round < 4; ++round) {
        for (std::uint64_t i = 0; i < 8; ++i) {
            Big big{};
            big.payload[11] = i;
            eq.scheduleIn(10 + i, [big, &sum] { sum += big.payload[11]; });
        }
        eq.run();
    }
    EXPECT_EQ(sum, 4u * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
    EXPECT_GE(poolAllocCount() - a0, 32u);
    EXPECT_GE(poolReuseCount(), 1u);
}

TEST(Types, TickConversionsRoundTrip)
{
    EXPECT_EQ(ticksFromNs(1.0), tickPerNs);
    EXPECT_EQ(ticksFromUs(1.0), 1000 * tickPerNs);
    EXPECT_EQ(ticksFromMs(1.0), 1000000 * tickPerNs);
    EXPECT_DOUBLE_EQ(nsFromTicks(ticksFromNs(123.0)), 123.0);
    EXPECT_DOUBLE_EQ(usFromTicks(ticksFromUs(7.0)), 7.0);
}

TEST(Types, BandwidthHelpers)
{
    // 64 bytes in 1 ns = 64 GB/s.
    EXPECT_NEAR(gbPerSec(64, ticksFromNs(1.0)), 64.0, 1e-9);
    // Serialization of 64 B at 64 GB/s = 1 ns.
    EXPECT_EQ(serializationTicks(64, 64.0), ticksFromNs(1.0));
    EXPECT_EQ(gbPerSec(100, 0), 0.0);
}

} // namespace
} // namespace cxlmemo
