/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, same-tick FIFO
 * semantics, runUntil boundaries and reset.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace cxlmemo
{
namespace
{

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.eventsExecuted(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.curTick(), 40u);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(50, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.schedule(101, [&] { ++fired; });
    const bool drained = eq.runUntil(100);
    EXPECT_FALSE(drained);
    EXPECT_EQ(fired, 2);        // the event exactly at the limit runs
    EXPECT_EQ(eq.curTick(), 100u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilReturnsTrueWhenDrained)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    EXPECT_TRUE(eq.runUntil(1000));
}

TEST(EventQueue, RunUntilAdvancesClockToLimitWhenStopped)
{
    EventQueue eq;
    eq.schedule(500, [] {});
    eq.runUntil(200);
    EXPECT_EQ(eq.curTick(), 200u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick observed = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(25, [&] { observed = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(observed, 125u);
}

TEST(EventQueue, ResetDropsPendingEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.reset();
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.curTick(), 0u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 7u);
}

TEST(EventQueueDeathTest, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduling into the past");
}

TEST(Types, TickConversionsRoundTrip)
{
    EXPECT_EQ(ticksFromNs(1.0), tickPerNs);
    EXPECT_EQ(ticksFromUs(1.0), 1000 * tickPerNs);
    EXPECT_EQ(ticksFromMs(1.0), 1000000 * tickPerNs);
    EXPECT_DOUBLE_EQ(nsFromTicks(ticksFromNs(123.0)), 123.0);
    EXPECT_DOUBLE_EQ(usFromTicks(ticksFromUs(7.0)), 7.0);
}

TEST(Types, BandwidthHelpers)
{
    // 64 bytes in 1 ns = 64 GB/s.
    EXPECT_NEAR(gbPerSec(64, ticksFromNs(1.0)), 64.0, 1e-9);
    // Serialization of 64 B at 64 GB/s = 1 ns.
    EXPECT_EQ(serializationTicks(64, 64.0), ticksFromNs(1.0));
    EXPECT_EQ(gbPerSec(100, 0), 0.0);
}

} // namespace
} // namespace cxlmemo
