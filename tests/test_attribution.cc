/**
 * @file
 * Tests for exhaustive latency accounting and bottleneck attribution:
 * station arithmetic, exact/associative snapshot merging, the two
 * built-in invariants (exact decomposition, Little's law) on real
 * runs, the bottleneck verdict's three regimes, and the off-by-default
 * contract (no board, bit-identical results).
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "memo/memo.hh"
#include "sim/attribution.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace
{

memo::Options
fastOpts()
{
    memo::Options o;
    o.warmupUs = 20.0;
    o.measureUs = 60.0;
    return o;
}

/* ------------------------ AccountedStation ----------------------- */

TEST(AccountedStation, PassThroughAccumulatesAndCreditsOccupancy)
{
    AccountedStation s;
    s.passThrough(/*queued=*/10, /*service=*/30, /*busy=*/30,
                  /*stack=*/true, /*end=*/40);
    s.passThrough(5, 15, 0, false, 60);
    EXPECT_EQ(s.enters, 2u);
    EXPECT_EQ(s.exits, 2u);
    EXPECT_EQ(s.queueTicks, 15u);
    EXPECT_EQ(s.serviceTicks, 45u);
    EXPECT_EQ(s.busyTicks, 30u);
    EXPECT_EQ(s.occIntegral, 60u); // residency-credited
    EXPECT_EQ(s.stackQueueTicks, 10u);
    EXPECT_EQ(s.stackServiceTicks, 30u);
    EXPECT_EQ(s.intervalEnd, 60u);
}

TEST(AccountedStation, EnterExitIntegratesOccupancy)
{
    AccountedStation s;
    s.enter(100);
    s.enter(100);
    s.exitNow(150); // 2 occupants for 50 ticks
    s.exitNow(200); // 1 occupant for 50 ticks
    EXPECT_EQ(s.occIntegral, 150u);
    // Out-of-order (stale) transition is a no-op, never a rollback.
    s.enter(150);
    EXPECT_EQ(s.occIntegral, 150u);
    EXPECT_EQ(s.lastOcc, 200u);
}

TEST(AccountedStation, ResetKeepsLiveOccupancy)
{
    AccountedStation s;
    s.enter(10);
    s.account(5, 7, 7, true, 20);
    s.reset(100);
    EXPECT_EQ(s.queueTicks, 0u);
    EXPECT_EQ(s.stackServiceTicks, 0u);
    EXPECT_EQ(s.occupancy, 1u); // still in-station
    EXPECT_EQ(s.lastOcc, 100u);
    EXPECT_EQ(s.intervalEnd, 100u);
    s.exitNow(150);
    EXPECT_EQ(s.occIntegral, 50u); // integrates from the reset point
}

/* ------------------------- snapshot merge ------------------------ */

AttribSnapshot
syntheticSnap(std::uint64_t seed)
{
    AttribSnapshot s;
    s.elapsed = 1000 * seed;
    s.reqCount = 10 * seed;
    s.totalTicks = 5000 * seed;
    s.devReads = 7 * seed;
    s.devWrites = 3 * seed;
    for (std::size_t i = 0; i < numStations; ++i) {
        StationSnap &st = s.st[i];
        st.enters = seed + i;
        st.exits = seed + i;
        st.queueTicks = 11 * seed + i;
        st.serviceTicks = 13 * seed + 2 * i;
        st.busyTicks = 7 * seed + i;
        st.occIntegral = 17 * seed + 3 * i;
        st.stackQueueTicks = 2 * seed;
        st.stackServiceTicks = 3 * seed;
    }
    return s;
}

bool
snapEqual(const AttribSnapshot &a, const AttribSnapshot &b)
{
    if (a.elapsed != b.elapsed || a.reqCount != b.reqCount
        || a.totalTicks != b.totalTicks || a.devReads != b.devReads
        || a.devWrites != b.devWrites) {
        return false;
    }
    for (std::size_t i = 0; i < numStations; ++i) {
        const StationSnap &x = a.st[i];
        const StationSnap &y = b.st[i];
        if (x.enters != y.enters || x.exits != y.exits
            || x.queueTicks != y.queueTicks
            || x.serviceTicks != y.serviceTicks
            || x.busyTicks != y.busyTicks
            || x.occIntegral != y.occIntegral
            || x.stackQueueTicks != y.stackQueueTicks
            || x.stackServiceTicks != y.stackServiceTicks) {
            return false;
        }
    }
    return true;
}

TEST(AttribSnapshot, MergeIsExactAndAssociative)
{
    // (a + b) + c == a + (b + c), field for field: integer sums only,
    // so `--jobs` parallel sweeps merge deterministically.
    AttribSnapshot left = syntheticSnap(1);
    AttribSnapshot bc = syntheticSnap(2);
    left.merge(syntheticSnap(2));
    left.merge(syntheticSnap(3));
    bc.merge(syntheticSnap(3));
    AttribSnapshot right = syntheticSnap(1);
    right.merge(bc);
    EXPECT_TRUE(snapEqual(left, right));
    // ...and commutative.
    AttribSnapshot ba = syntheticSnap(2);
    ba.merge(syntheticSnap(1));
    AttribSnapshot ab = syntheticSnap(1);
    ab.merge(syntheticSnap(2));
    EXPECT_TRUE(snapEqual(ab, ba));
}

TEST(AttribSnapshot, DerivedFiguresComputedFromMergedSums)
{
    AttribSnapshot a = syntheticSnap(2);
    const double beforeTotal = a.avgTotalNs();
    a.merge(syntheticSnap(2));
    // Identical halves: averages are unchanged, sums double.
    EXPECT_DOUBLE_EQ(a.avgTotalNs(), beforeTotal);
    EXPECT_EQ(a.reqCount, 40u);
    EXPECT_EQ(a.totalTicks, 20000u);
}

/* ------------------------- board bracket ------------------------- */

TEST(AttributionBoard, StackBoundedWhileRequestsAreInFlight)
{
    AttributionBoard b(0);
    // A retired request and a still-live one that already accumulated
    // stack contributions past the snapshot tick.
    b.beginRequest(100);
    b.completeRequest(100, 400);
    b.beginRequest(500);
    b.station(StationId::CxlBackend)
        .account(/*queued=*/50, /*service=*/150, /*busy=*/150,
                 /*stack=*/true, /*end=*/900);
    const AttribSnapshot s = b.snapshot(600);
    EXPECT_EQ(s.reqCount, 2u);
    // live bracket charged up to the horizon (900), not `now` (600)
    EXPECT_EQ(s.totalTicks, 300u + (900u - 500u));
    EXPECT_TRUE(s.decompositionExact());
    EXPECT_EQ(s.stackTicks() + s.otherTicks(), s.totalTicks);
}

TEST(AttributionBoard, WindowResetKeepsLiveBrackets)
{
    AttributionBoard b(0);
    b.beginRequest(100);
    b.beginWindow(1000);
    b.completeRequest(100, 1200); // straddles the reset
    const AttribSnapshot s = b.snapshot(2000);
    EXPECT_EQ(s.reqCount, 1u);
    EXPECT_EQ(s.totalTicks, 1100u); // true start, not clamped
    EXPECT_EQ(s.elapsed, 1000u);
}

/* ----------------------- bottleneck verdict ---------------------- */

AttribSnapshot
regimeBase()
{
    AttribSnapshot s;
    s.elapsed = 1000;
    for (std::size_t i = 0; i < numStations; ++i) {
        s.st[i].servers = 1;
        s.st[i].enters = 1;
        s.st[i].exits = 1;
    }
    return s;
}

TEST(Bottleneck, WriteFloodBlamesIngressNotBackend)
{
    AttribSnapshot s = regimeBase();
    s.devWrites = 100;
    s.devReads = 2;
    // The drain path is busiest, but posted writes are acknowledged at
    // the ingress buffer: the verdict must stay on the host-visible
    // path (the paper's nt-store overload narrative).
    s.st[static_cast<std::size_t>(StationId::CxlBackend)].busyTicks = 990;
    auto &ing = s.st[static_cast<std::size_t>(StationId::CxlIngress)];
    ing.buffer = true;
    ing.occIntegral = 950;
    EXPECT_EQ(s.bottleneck(), StationId::CxlIngress);
}

TEST(Bottleneck, SaturatedServerOutranksFullBuffer)
{
    AttribSnapshot s = regimeBase();
    s.devReads = 100;
    // The ingress tracker is pegged (full buffer), but only because
    // the backend behind it is saturated: blame the root cause.
    auto &ing = s.st[static_cast<std::size_t>(StationId::CxlIngress)];
    ing.buffer = true;
    ing.occIntegral = 1000;
    s.st[static_cast<std::size_t>(StationId::CxlBackend)].busyTicks = 900;
    EXPECT_EQ(s.bottleneck(), StationId::CxlBackend);
}

TEST(Bottleneck, LatencyBoundNamesLargestStackContributor)
{
    AttribSnapshot s = regimeBase();
    s.devReads = 100;
    s.reqCount = 10;
    s.totalTicks = 1000;
    // Nothing is utilized; the verdict falls back to the latency
    // stack's biggest component.
    s.st[static_cast<std::size_t>(StationId::CxlEgress)]
        .stackServiceTicks = 500;
    s.st[static_cast<std::size_t>(StationId::Cache)].stackServiceTicks =
        200;
    EXPECT_EQ(s.bottleneck(), StationId::CxlEgress);
}

/* ----------------------- machine-level runs ---------------------- */

TEST(MachineAttribution, DefaultBuildsNoBoard)
{
    Machine m(Testbed::SingleSocketCxl);
    EXPECT_EQ(m.attribution(), nullptr);
}

TEST(MachineAttribution, DisabledModeIsBitIdentical)
{
    // Enabling attribution must never change simulated timing: the
    // measured bandwidth agrees to the last bit.
    memo::Options off = fastOpts();
    memo::Options on = fastOpts();
    on.obs.attribution = true;
    const double gbpsOff = memo::runSeqBandwidth(
        memo::Target::Cxl, MemOp::Kind::Load, 8, off);
    const double gbpsOn = memo::runSeqBandwidth(
        memo::Target::Cxl, MemOp::Kind::Load, 8, on);
    EXPECT_EQ(gbpsOff, gbpsOn);
}

AttribSnapshot
snapFromRun(memo::Target target, MemOp::Kind op, std::uint32_t threads)
{
    memo::Options opts = fastOpts();
    opts.obs.attribution = true;
    AttribSnapshot snap;
    opts.onMachineDone = [&snap](Machine &m) {
        ASSERT_NE(m.attribution(), nullptr);
        snap.merge(m.attribution()->snapshot(m.eq().curTick()));
    };
    memo::runSeqBandwidth(target, op, threads, opts);
    return snap;
}

TEST(MachineAttribution, ExactDecompositionOnRealRun)
{
    for (std::uint32_t threads : {1u, 8u, 24u}) {
        const AttribSnapshot s =
            snapFromRun(memo::Target::Cxl, MemOp::Kind::Load, threads);
        EXPECT_GT(s.reqCount, 100u) << threads << " threads";
        EXPECT_TRUE(s.decompositionExact()) << threads << " threads";
        // total == sum(components) + residual, exactly, in ticks.
        EXPECT_EQ(s.stackTicks() + s.otherTicks(), s.totalTicks)
            << threads << " threads";
    }
}

TEST(MachineAttribution, LittlesLawOpenAndClosedLoop)
{
    // Closed loop: one thread, LFB-limited. Open-ish loop: enough
    // threads that device queues really build up.
    const AttribSnapshot closed =
        snapFromRun(memo::Target::Cxl, MemOp::Kind::Load, 1);
    EXPECT_TRUE(closed.littleOk());
    const AttribSnapshot open =
        snapFromRun(memo::Target::Cxl, MemOp::Kind::Load, 16);
    EXPECT_TRUE(open.littleOk());
    // ...and on the host-local path too.
    const AttribSnapshot local =
        snapFromRun(memo::Target::Ddr5Local, MemOp::Kind::Load, 8);
    EXPECT_TRUE(local.littleOk());
}

TEST(MachineAttribution, BackendIsTheReadBandwidthBottleneck)
{
    // Paper Fig. 3: the CXL read-bandwidth knee comes from the
    // device's DDR back-end, not the link.
    const AttribSnapshot s =
        snapFromRun(memo::Target::Cxl, MemOp::Kind::Load, 16);
    EXPECT_EQ(s.bottleneck(), StationId::CxlBackend);
    EXPECT_GT(s.util(StationId::CxlBackend), 0.5);
}

TEST(MachineAttribution, NtStoreFloodBlamesControllerIngress)
{
    // Paper SS5.2: nt-store floods overload the CXL controller; writes
    // are acknowledged at ingress, so that is where the verdict lands.
    const AttribSnapshot s =
        snapFromRun(memo::Target::Cxl, MemOp::Kind::NtStore, 16);
    EXPECT_GT(s.devWrites, 3 * s.devReads);
    EXPECT_EQ(s.bottleneck(), StationId::CxlIngress);
}

TEST(MachineAttribution, MergeAcrossMachinesMatchesJobSplit)
{
    // Two half-length windows merged must yield the same derived
    // figures as accumulating both runs into one snapshot in either
    // order (what `--jobs` does with out-of-order completions).
    AttribSnapshot a =
        snapFromRun(memo::Target::Cxl, MemOp::Kind::Load, 4);
    AttribSnapshot b =
        snapFromRun(memo::Target::Cxl, MemOp::Kind::Load, 8);
    AttribSnapshot ab = a;
    ab.merge(b);
    AttribSnapshot ba = b;
    ba.merge(a);
    EXPECT_TRUE(snapEqual(ab, ba));
    EXPECT_EQ(ab.stackTicks(), a.stackTicks() + b.stackTicks());
    EXPECT_EQ(ab.totalTicks, a.totalTicks + b.totalTicks);
    EXPECT_TRUE(ab.decompositionExact());
}

TEST(MachineAttribution, StatsStringCarriesAttribLines)
{
    memo::Options opts = fastOpts();
    opts.obs.attribution = true;
    std::string stats;
    opts.onMachineDone = [&stats](Machine &m) {
        stats = m.statsString();
    };
    memo::runSeqBandwidth(memo::Target::Cxl, MemOp::Kind::Load, 4,
                          opts);
    EXPECT_NE(stats.find("attrib: "), std::string::npos);
    EXPECT_NE(stats.find("bottleneck="), std::string::npos);
}

} // namespace
} // namespace cxlmemo
