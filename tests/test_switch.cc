/**
 * @file
 * Tests for the multi-host pooling fabric: the PoolManager ownership
 * ledger (grant/translate/quarantine/scrub conservation, exclusive
 * windows, the litmus alias hook) and the CxlSwitch (deterministic
 * VOQ arbitration, per-port credit pools with a leak-checked ledger,
 * port outage/retrain hold-and-release, host fencing under both
 * containment policies, and the watchdog diagnosis naming the stuck
 * port).
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "interconnect/poolmgr.hh"
#include "interconnect/switch.hh"
#include "sim/event_queue.hh"

namespace cxlmemo
{
namespace
{

/* --------------------------- PoolManager ------------------------- */

TEST(PoolManager, GrantTranslateQuarantineCycleConserves)
{
    PoolManager pm(2, 8 * miB, miB); // 16 segments total
    EXPECT_TRUE(pm.ledgerOk());
    EXPECT_EQ(pm.totalBytes(), 16 * miB);

    EXPECT_EQ(pm.grant(0, 4 * miB), 4 * miB);
    EXPECT_EQ(pm.grant(1, 4 * miB), 4 * miB);
    EXPECT_TRUE(pm.ledgerOk());
    EXPECT_EQ(pm.grantedBytes(0), 4 * miB);
    EXPECT_EQ(pm.freeBytes(), 8 * miB);

    // Windows are exclusive: host 0 owns its window, not host 1's.
    EXPECT_TRUE(pm.owns(0, 0));
    EXPECT_TRUE(pm.owns(0, 4 * miB - 1));
    EXPECT_FALSE(pm.owns(0, 4 * miB));

    // Translation lands on a real device-local segment, and host 0's
    // and host 1's first segments are different physical locations.
    const auto l0 = pm.translate(0, 0);
    const auto l1 = pm.translate(1, 0);
    EXPECT_TRUE(l0.dev != l1.dev || l0.addr != l1.addr);

    // Fence host 0: its capacity quarantines, then scrubs back free.
    EXPECT_EQ(pm.quarantine(0), 4 * miB);
    EXPECT_TRUE(pm.ledgerOk());
    EXPECT_EQ(pm.grantedBytes(0), 0u);
    EXPECT_EQ(pm.quarantinedBytes(), 4 * miB);
    EXPECT_FALSE(pm.owns(0, 0));

    // Quarantined capacity is not grantable yet.
    EXPECT_EQ(pm.grant(1, 12 * miB), 0u); // all-or-nothing reject
    EXPECT_EQ(pm.stats().rejects, 1u);

    EXPECT_EQ(pm.releaseQuarantined(), 4 * miB);
    EXPECT_TRUE(pm.ledgerOk());
    EXPECT_EQ(pm.quarantinedBytes(), 0u);
    EXPECT_EQ(pm.grant(1, 12 * miB), 12 * miB);
    EXPECT_TRUE(pm.ledgerOk());
    EXPECT_EQ(pm.freeBytes(), 0u);
    EXPECT_EQ(pm.stats().quarantines, 1u);
    EXPECT_EQ(pm.stats().scrubbedBytes, 4 * miB);
    EXPECT_NE(pm.summary().find("ledger=ok"), std::string::npos);
}

TEST(PoolManager, StripesWindowsAcrossDevices)
{
    PoolManager pm(4, 4 * miB, miB);
    ASSERT_EQ(pm.grant(0, 4 * miB), 4 * miB);
    // Round-robin striping: consecutive window segments hit
    // consecutive devices starting at the host's home device.
    std::vector<std::uint32_t> devs;
    for (std::uint64_t s = 0; s < 4; ++s)
        devs.push_back(pm.translate(0, s * miB).dev);
    for (std::size_t i = 1; i < devs.size(); ++i)
        EXPECT_NE(devs[i], devs[i - 1]);
}

TEST(PoolManager, AliasResolvesThroughOwnersWindow)
{
    PoolManager pm(1, 8 * miB, miB);
    ASSERT_EQ(pm.grant(0, 2 * miB), 2 * miB);
    pm.setAlias(1, 0);
    // Host 1 sees host 0's window (visibility), but ownership
    // accounting is untouched.
    const auto through0 = pm.translate(0, miB + 64);
    const auto through1 = pm.translate(1, miB + 64);
    EXPECT_EQ(through0.dev, through1.dev);
    EXPECT_EQ(through0.addr, through1.addr);
    EXPECT_EQ(pm.grantedBytes(1), 0u);
    EXPECT_TRUE(pm.ledgerOk());
}

/* ----------------------- switch test fixture --------------------- */

/** Fixed-latency functional device: completes every access a
 *  constant delay after it arrives, in arrival order. */
class FixedDevice : public MemoryDevice
{
  public:
    FixedDevice(EventQueue &eq, Tick latency, std::string name)
        : eq_(eq), latency_(latency), name_(std::move(name))
    {}

    void
    access(MemRequest req) override
    {
        ++accesses_;
        auto done = std::move(req.onComplete);
        eq_.schedule(eq_.curTick() + latency_,
                     [cb = std::move(done), &eq = eq_]() mutable {
                         if (cb)
                             cb(eq.curTick());
                     });
    }

    const std::string &name() const override { return name_; }
    std::uint64_t accesses() const { return accesses_; }

  private:
    EventQueue &eq_;
    Tick latency_;
    std::string name_;
    std::uint64_t accesses_ = 0;
};

struct Completion
{
    std::uint32_t port;
    std::uint64_t id;
    Tick at;
    CxlSwitch::Status status;
    std::uint64_t value;
};

struct Fabric
{
    EventQueue eq;
    std::vector<std::unique_ptr<FixedDevice>> devs;
    std::unique_ptr<CxlSwitch> sw;
    std::vector<Completion> log;

    explicit Fabric(CxlSwitchParams p, std::uint32_t devices = 1,
                    Tick devLatency = ticksFromNs(100.0))
    {
        std::vector<MemoryDevice *> ptrs;
        for (std::uint32_t d = 0; d < devices; ++d) {
            devs.push_back(std::make_unique<FixedDevice>(
                eq, devLatency, "fd" + std::to_string(d)));
            ptrs.push_back(devs.back().get());
        }
        sw = std::make_unique<CxlSwitch>(eq, p, std::move(ptrs));
    }

    /** Submit at @p when; completion appended to the log. */
    void
    submit(Tick when, std::uint32_t port, std::uint32_t dev,
           std::uint64_t id, MemCmd cmd = MemCmd::Read, Addr addr = 0,
           std::uint64_t value = 0)
    {
        eq.schedule(when, [this, port, dev, id, cmd, addr, value]() {
            CxlSwitch::Op op;
            op.addr = addr;
            op.cmd = cmd;
            op.value = value;
            op.done = [this, port, id](Tick t, CxlSwitch::Status s,
                                       std::uint64_t v) {
                log.push_back({port, id, t, s, v});
            };
            sw->submit(port, dev, std::move(op));
        });
    }
};

/* ---------------------------- data path -------------------------- */

TEST(CxlSwitch, ParamsValidateRejectsNonsense)
{
    CxlSwitchParams p;
    p.ports = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.portGBps = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    EXPECT_NO_THROW(p.validate());
}

TEST(CxlSwitch, ReadCompletesThroughDataHook)
{
    Fabric f(CxlSwitchParams{});
    f.sw->setDataHook([](std::uint32_t, MemCmd cmd, Addr addr,
                         std::uint64_t) -> std::uint64_t {
        return cmd == MemCmd::Read ? 0x1000 + addr : 0;
    });
    f.submit(0, 0, 0, 1, MemCmd::Read, 64);
    f.eq.run();
    ASSERT_EQ(f.log.size(), 1u);
    EXPECT_EQ(f.log[0].status, CxlSwitch::Status::Ok);
    EXPECT_EQ(f.log[0].value, 0x1000u + 64u);
    // Delivery includes forward pipeline, device time and the
    // upstream port latency.
    const CxlSwitchParams p;
    EXPECT_GE(f.log[0].at, p.forwardLatency + ticksFromNs(100.0)
                               + p.portLatency);
    EXPECT_EQ(f.sw->portStats(0).responses, 1u);
    EXPECT_EQ(f.sw->progressRetired(), 1u);
    EXPECT_EQ(f.sw->progressOutstanding(), 0u);
}

TEST(CxlSwitch, ArbitrationIsDeterministic)
{
    auto runOnce = []() {
        Fabric f(CxlSwitchParams{}, 1);
        for (std::uint64_t i = 0; i < 32; ++i)
            f.submit(0, i % 2, 0, i,
                     i % 3 == 0 ? MemCmd::Write : MemCmd::Read,
                     64 * i);
        f.eq.run();
        std::vector<std::pair<std::uint32_t, std::uint64_t>> order;
        for (const auto &c : f.log)
            order.emplace_back(c.port, c.id);
        return order;
    };
    const auto a = runOnce();
    const auto b = runOnce();
    EXPECT_EQ(a.size(), 32u);
    EXPECT_EQ(a, b);
}

TEST(CxlSwitch, FixedArbitrationFavorsLowPorts)
{
    CxlSwitchParams p;
    p.ports = 2;
    p.arb = CxlSwitchParams::Arb::Fixed;
    p.portGBps = 1.0; // crossbar serialization dominates
    Fabric f(p, 1, ticksFromNs(1.0));
    // Both ports pile up 8 writes at the same tick; under fixed
    // priority port 0's batch crosses the crossbar ahead of port
    // 1's, so every port-0 completion precedes the first port-1 one.
    for (std::uint64_t i = 0; i < 8; ++i) {
        f.submit(0, 0, 0, i, MemCmd::Write, 64 * i, i);
        f.submit(0, 1, 0, 100 + i, MemCmd::Write, 64 * i, i);
    }
    f.eq.run();
    ASSERT_EQ(f.log.size(), 16u);
    Tick lastPort0 = 0, firstPort1 = maxTick;
    for (const auto &c : f.log) {
        if (c.port == 0)
            lastPort0 = std::max(lastPort0, c.at);
        else
            firstPort1 = std::min(firstPort1, c.at);
    }
    EXPECT_LT(lastPort0, firstPort1);
}

TEST(CxlSwitch, RoundRobinInterleavesPorts)
{
    CxlSwitchParams p;
    p.ports = 2;
    Fabric f(p, 1);
    for (std::uint64_t i = 0; i < 8; ++i) {
        f.submit(0, 0, 0, i);
        f.submit(0, 1, 0, 100 + i);
    }
    f.eq.run();
    ASSERT_EQ(f.log.size(), 16u);
    // Round-robin: the first half of completions contains both ports.
    std::uint32_t port1InFirstHalf = 0;
    for (std::size_t i = 0; i < 8; ++i)
        if (f.log[i].port == 1)
            ++port1InFirstHalf;
    EXPECT_GT(port1InFirstHalf, 0u);
}

/* ----------------------------- credits --------------------------- */

TEST(CxlSwitch, CreditGateBoundsOccupancyAndLedgerHolds)
{
    CxlSwitchParams p;
    p.rdCredits = 2;
    p.wrCredits = 2;
    Fabric f(p, 1);
    for (std::uint64_t i = 0; i < 16; ++i)
        f.submit(0, 0, 0, i);
    f.eq.run();
    EXPECT_EQ(f.log.size(), 16u);
    EXPECT_GT(f.sw->portStats(0).creditStalls, 0u);
    EXPECT_GT(f.sw->portStats(0).creditStallTicks, 0u);
    EXPECT_TRUE(f.sw->creditLedgerOk());
    ASSERT_NE(f.sw->portCredits(0), nullptr);
    EXPECT_EQ(f.sw->portCredits(0)->rd.available(), 2u);
    const auto g = f.sw->gauges();
    EXPECT_EQ(g.creditWait + g.voq + g.inFlight + g.held, 0u);
}

TEST(CxlSwitch, CreditsIsolatePerPort)
{
    CxlSwitchParams p;
    p.rdCredits = 1;
    p.wrCredits = 1;
    Fabric f(p, 1);
    // Port 0 floods; port 1 sends one read. Port 1 never waits for
    // credits -- pools are per port.
    for (std::uint64_t i = 0; i < 32; ++i)
        f.submit(0, 0, 0, i);
    f.submit(0, 1, 0, 999);
    f.eq.run();
    EXPECT_EQ(f.sw->portStats(1).creditStalls, 0u);
    EXPECT_EQ(f.sw->portStats(1).responses, 1u);
}

/* ------------------------- outage / retrain ---------------------- */

TEST(CxlSwitch, PortDownHoldsThenRetrainReleasesInOrder)
{
    Fabric f(CxlSwitchParams{}, 1);
    const Tick retrain = ticksFromNs(5000.0);
    f.eq.schedule(ticksFromNs(10.0),
                  [&f, retrain]() { f.sw->portDown(0, retrain); });
    for (std::uint64_t i = 0; i < 4; ++i)
        f.submit(ticksFromNs(20.0) + i, 0, 0, i);
    f.eq.run();
    ASSERT_EQ(f.log.size(), 4u);
    const auto &st = f.sw->portStats(0);
    EXPECT_EQ(st.downs, 1u);
    EXPECT_EQ(st.retrains, 1u);
    EXPECT_EQ(st.heldWhileDown, 4u);
    EXPECT_EQ(f.sw->portState(0), PortState::Up);
    // Nothing completes before the retrain finishes, and arrival
    // order is preserved.
    for (std::size_t i = 0; i < f.log.size(); ++i) {
        EXPECT_GT(f.log[i].at, ticksFromNs(10.0) + retrain);
        EXPECT_EQ(f.log[i].id, i);
        EXPECT_EQ(f.log[i].status, CxlSwitch::Status::Ok);
    }
}

TEST(CxlSwitch, OutageHoldsInFlightResponses)
{
    Fabric f(CxlSwitchParams{}, 1, ticksFromNs(1000.0));
    f.submit(0, 0, 0, 1); // in flight when the outage hits
    f.eq.schedule(ticksFromNs(50.0), [&f]() {
        f.sw->portDown(0, ticksFromNs(5000.0));
    });
    f.eq.run();
    ASSERT_EQ(f.log.size(), 1u);
    // The device finished at ~1000 ns but the response was parked
    // until the port came back at ~5050 ns.
    EXPECT_GT(f.log[0].at, ticksFromNs(5000.0));
    EXPECT_EQ(f.log[0].status, CxlSwitch::Status::Ok);
}

/* ------------------------------ fencing -------------------------- */

TEST(CxlSwitch, FencePoisonsQueuedReadsAndDropsResponses)
{
    CxlSwitchParams p;
    p.rdCredits = 1; // force a deep credit-wait queue
    p.wrCredits = 1;
    Fabric f(p, 1, ticksFromNs(1000.0));
    for (std::uint64_t i = 0; i < 8; ++i)
        f.submit(0, 0, 0, i);
    f.eq.schedule(ticksFromNs(100.0), [&f]() {
        f.sw->fencePort(0, ContainPolicy::Poison);
    });
    f.eq.run();
    // Every op completes exactly once.
    ASSERT_EQ(f.log.size(), 8u);
    std::uint64_t poisoned = 0, ok = 0;
    for (const auto &c : f.log) {
        if (c.status == CxlSwitch::Status::Poisoned)
            ++poisoned;
        else if (c.status == CxlSwitch::Status::Ok)
            ++ok;
    }
    EXPECT_EQ(ok, 0u); // fenced before anything could deliver
    EXPECT_GT(poisoned, 0u);
    const auto &st = f.sw->portStats(0);
    EXPECT_GT(st.aborted + st.abortedInFlight, 0u);
    EXPECT_EQ(f.sw->portState(0), PortState::Fenced);
    // Credits all returned: fencing never leaks the ledger.
    EXPECT_TRUE(f.sw->creditLedgerOk());
    const auto g = f.sw->gauges();
    EXPECT_EQ(g.creditWait + g.voq + g.inFlight + g.held, 0u);
}

TEST(CxlSwitch, FenceAbortPolicyAbortsEverything)
{
    Fabric f(CxlSwitchParams{}, 1, ticksFromNs(1000.0));
    for (std::uint64_t i = 0; i < 4; ++i)
        f.submit(0, 0, 0, i);
    f.eq.schedule(ticksFromNs(100.0), [&f]() {
        f.sw->fencePort(0, ContainPolicy::Abort);
    });
    f.eq.run();
    ASSERT_EQ(f.log.size(), 4u);
    for (const auto &c : f.log)
        EXPECT_EQ(c.status, CxlSwitch::Status::Aborted);
}

TEST(CxlSwitch, FenceIsTerminalAndScopedToOnePort)
{
    CxlSwitchParams p;
    p.ports = 2;
    Fabric f(p, 1);
    f.eq.schedule(0, [&f]() {
        f.sw->fencePort(1, ContainPolicy::Poison);
    });
    f.submit(ticksFromNs(10.0), 0, 0, 1); // unaffected port
    f.submit(ticksFromNs(10.0), 1, 0, 2); // fenced port
    f.eq.run();
    ASSERT_EQ(f.log.size(), 2u);
    for (const auto &c : f.log) {
        if (c.port == 0)
            EXPECT_EQ(c.status, CxlSwitch::Status::Ok);
        else
            EXPECT_NE(c.status, CxlSwitch::Status::Ok);
    }
    EXPECT_EQ(f.sw->portState(0), PortState::Up);
    EXPECT_EQ(f.sw->portState(1), PortState::Fenced);
}

/* --------------------- watchdog integration ---------------------- */

TEST(CxlSwitch, DiagnosisNamesStuckPortAndOldestHost)
{
    CxlSwitchParams p;
    p.rdCredits = 1;
    p.wrCredits = 1;
    Fabric f(p, 1, ticksFromNs(100000.0)); // slow device: ops pile up
    for (std::uint64_t i = 0; i < 4; ++i)
        f.submit(0, 0, 0, i);
    f.eq.runUntil(ticksFromNs(1000.0));
    EXPECT_GT(f.sw->progressOutstanding(), 0u);
    const std::string d = f.sw->progressDiagnosis();
    EXPECT_NE(d.find("port0"), std::string::npos) << d;
    EXPECT_NE(d.find("host0"), std::string::npos) << d;
    EXPECT_TRUE(f.sw->progressInvariant().empty());
    f.eq.run();
}

} // namespace
} // namespace cxlmemo
