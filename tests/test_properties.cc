/**
 * @file
 * Property-based and parameterized tests: invariants that must hold
 * across the whole parameter space (targets x instruction kinds x
 * seeds), checked with TEST_P sweeps.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mem/dram.hh"
#include "memo/memo.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace cxlmemo
{
namespace
{

/* ------------------------- event queue -------------------------- */

class EventQueueProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EventQueueProperty, ExecutionIsAlwaysTimeSorted)
{
    Rng rng(GetParam());
    EventQueue eq;
    std::vector<Tick> fired;
    for (int i = 0; i < 500; ++i) {
        const Tick when = rng.below(100000);
        eq.schedule(when, [&fired, &eq] { fired.push_back(eq.curTick()); });
    }
    eq.run();
    ASSERT_EQ(fired.size(), 500u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

/* ----------------------------- rng ------------------------------ */

class ZipfianProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ZipfianProperty, MassDecreasesWithRank)
{
    Rng rng(99);
    ZipfianGenerator z(GetParam(), 0.99);
    std::uint64_t head = 0;
    std::uint64_t tail = 0;
    for (int i = 0; i < 30000; ++i) {
        const std::uint64_t v = z.next(rng);
        ASSERT_LT(v, GetParam());
        if (v < GetParam() / 10)
            ++head;
        else
            ++tail;
    }
    EXPECT_GT(head, tail); // top decile outweighs the other nine
}

INSTANTIATE_TEST_SUITE_P(Domains, ZipfianProperty,
                         ::testing::Values(100, 1000, 50000, 2000000));

/* ------------------------- dram channel -------------------------- */

struct ChannelCase
{
    std::uint32_t outstanding;
    bool random;
};

class ChannelConservation
    : public ::testing::TestWithParam<ChannelCase>
{
};

TEST_P(ChannelConservation, EveryRequestCompletesExactlyOnce)
{
    const ChannelCase c = GetParam();
    EventQueue eq;
    DramChannelParams p;
    p.ntPostedEntries = 4;
    DramChannel ch(eq, p);
    Rng rng(7);

    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::function<void()> issue = [&] {
        if (issued >= 5000)
            return;
        ++issued;
        MemRequest r;
        r.addr = c.random ? rng.below(1u << 26)
                          : (issued * cachelineBytes);
        r.addr &= ~Addr(63);
        r.size = cachelineBytes;
        // Mix commands deterministically.
        const auto k = issued % 4;
        r.cmd = k == 0   ? MemCmd::Read
                : k == 1 ? MemCmd::Write
                : k == 2 ? MemCmd::NtWrite
                         : MemCmd::Prefetch;
        r.onComplete = [&](Tick) {
            ++completed;
            issue();
        };
        ch.access(std::move(r));
    };
    for (std::uint32_t i = 0; i < c.outstanding; ++i)
        issue();
    eq.run();
    EXPECT_EQ(issued, 5000u);
    EXPECT_EQ(completed, 5000u);
    EXPECT_EQ(ch.outstanding(), 0u);
    const DeviceStats s = ch.stats();
    EXPECT_EQ(s.reads + s.writes, 5000u);
    EXPECT_EQ(s.rowHits + s.rowMisses, 5000u);
}

INSTANTIATE_TEST_SUITE_P(
    Loads, ChannelConservation,
    ::testing::Values(ChannelCase{1, false}, ChannelCase{1, true},
                      ChannelCase{8, false}, ChannelCase{8, true},
                      ChannelCase{64, false}, ChannelCase{64, true}));

class ChannelBandwidthBound
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ChannelBandwidthBound, NeverExceedsBusPeak)
{
    EventQueue eq;
    DramChannelParams p;
    p.peakGBps = 30.0;
    p.busEfficiency = 1.0;
    DramChannel ch(eq, p);
    std::uint64_t bytes = 0;
    std::uint64_t next = 0;
    std::function<void()> issue = [&] {
        MemRequest r;
        r.addr = (next++) * cachelineBytes;
        r.size = cachelineBytes;
        r.cmd = MemCmd::Read;
        r.onComplete = [&](Tick) {
            bytes += cachelineBytes;
            issue();
        };
        ch.access(std::move(r));
    };
    for (std::uint32_t i = 0; i < GetParam(); ++i)
        issue();
    eq.runUntil(ticksFromUs(50.0));
    EXPECT_LE(gbPerSec(bytes, ticksFromUs(50.0)), 30.0 + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Outstanding, ChannelBandwidthBound,
                         ::testing::Values(1, 4, 16, 64, 256));

/* ------------------------- memo invariants ----------------------- */

class TargetProperty : public ::testing::TestWithParam<memo::Target>
{
  protected:
    static memo::Options
    fast()
    {
        memo::Options o;
        o.warmupUs = 15.0;
        o.measureUs = 50.0;
        return o;
    }
};

TEST_P(TargetProperty, BandwidthScalesAtLowThreadCounts)
{
    const double one = memo::runSeqBandwidth(GetParam(),
                                             MemOp::Kind::Load, 1,
                                             fast());
    const double two = memo::runSeqBandwidth(GetParam(),
                                             MemOp::Kind::Load, 2,
                                             fast());
    EXPECT_GT(two, 1.5 * one);
}

TEST_P(TargetProperty, BandwidthIsDeterministic)
{
    const double a = memo::runSeqBandwidth(GetParam(),
                                           MemOp::Kind::Load, 4, fast());
    const double b = memo::runSeqBandwidth(GetParam(),
                                           MemOp::Kind::Load, 4, fast());
    EXPECT_DOUBLE_EQ(a, b);
}

TEST_P(TargetProperty, LatencyProbesAreDeterministic)
{
    const auto a = memo::runLatency(GetParam());
    const auto b = memo::runLatency(GetParam());
    EXPECT_DOUBLE_EQ(a.loadNs, b.loadNs);
    EXPECT_DOUBLE_EQ(a.storeWbNs, b.storeWbNs);
    EXPECT_DOUBLE_EQ(a.ntStoreNs, b.ntStoreNs);
    EXPECT_DOUBLE_EQ(a.ptrChaseNs, b.ptrChaseNs);
}

TEST_P(TargetProperty, LoadedLatencyNotBelowIdle)
{
    const double idle = memo::runLoadedLatency(GetParam(), 1, fast());
    const double loaded = memo::runLoadedLatency(GetParam(), 8, fast());
    EXPECT_GE(loaded, idle * 0.98);
}

TEST_P(TargetProperty, RandomNeverBeatsSequential)
{
    const double seq = memo::runSeqBandwidth(GetParam(),
                                             MemOp::Kind::Load, 4,
                                             fast());
    const double rnd = memo::runRandBandwidth(
        GetParam(), MemOp::Kind::Load, 4, 1 * kiB, fast());
    EXPECT_LE(rnd, seq * 1.05);
}

INSTANTIATE_TEST_SUITE_P(
    Targets, TargetProperty,
    ::testing::Values(memo::Target::Ddr5Local, memo::Target::Ddr5Remote,
                      memo::Target::Cxl),
    [](const auto &info) -> std::string {
        switch (info.param) {
          case memo::Target::Ddr5Local:
            return "Ddr5Local";
          case memo::Target::Ddr5Remote:
            return "Ddr5Remote";
          case memo::Target::Cxl:
            return "Cxl";
        }
        return "unknown";
    });

/* -------------------- weighted interleave ------------------------ */

class SplitProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(SplitProperty, ResidencyTracksRequestedFraction)
{
    Machine m(Testbed::SingleSocketCxl);
    const double frac = GetParam();
    NumaBuffer buf = m.numa().alloc(
        64 * miB,
        MemPolicy::splitDramCxl(m.localNode(), m.cxlNode(), frac));
    EXPECT_NEAR(buf.residencyOn(m.cxlNode()), frac, 0.012);
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitProperty,
                         ::testing::Values(0.0, 0.0323, 0.05, 0.1, 0.2,
                                           0.25, 0.5, 0.75, 0.9, 1.0));

} // namespace
} // namespace cxlmemo
