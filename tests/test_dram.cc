/**
 * @file
 * Timing tests for the DRAM channel model: row-buffer behaviour, bank
 * parallelism, bus serialization, direction batching and the posted
 * NT-write gate.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "mem/dram.hh"
#include "sim/event_queue.hh"

namespace cxlmemo
{
namespace
{

DramChannelParams
testParams()
{
    DramChannelParams p;
    p.name = "test";
    p.peakGBps = 32.0;
    p.busEfficiency = 1.0; // 64 B = 2 ns on the bus
    p.tRowHit = ticksFromNs(15.0);
    p.tRowMiss = ticksFromNs(45.0);
    p.tBankCycle = 0;
    p.tWriteRecovery = ticksFromNs(15.0);
    p.tTurnaround = ticksFromNs(8.0);
    p.tFrontend = ticksFromNs(10.0);
    p.numBanks = 16;
    p.rowBytes = 8 * kiB;
    p.bankStripeBytes = 1 * kiB;
    p.scanDepth = 16;
    p.maxHitRun = 16;
    p.ntPostedEntries = 4;
    p.writeEfficiency = 1.0;
    p.maxDirectionRun = 16;
    return p;
}

/** Address with a given bank and row under testParams(). */
Addr
addrOf(std::uint32_t bank, std::uint64_t row, std::uint64_t offset = 0)
{
    // bank stripe 1 KiB, 16 banks, 8 stripes per row:
    // position = row*8 + stripe_in_row ; addr = (pos*16 + bank)*1KiB.
    const std::uint64_t pos_in_bank = row * 8;
    return (pos_in_bank * 16 + bank) * 1024 + offset;
}

Tick
readOnce(EventQueue &eq, DramChannel &ch, Addr addr)
{
    Tick done = 0;
    MemRequest r;
    r.addr = addr;
    r.size = cachelineBytes;
    r.cmd = MemCmd::Read;
    r.onComplete = [&done](Tick t) { done = t; };
    ch.access(std::move(r));
    eq.run();
    return done;
}

TEST(DramChannel, ColdReadLatency)
{
    EventQueue eq;
    DramChannel ch(eq, testParams());
    // frontend 10 + row miss 45 + bus 2 = 57 ns.
    EXPECT_EQ(readOnce(eq, ch, 0), ticksFromNs(57.0));
    EXPECT_EQ(ch.stats().rowMisses, 1u);
    EXPECT_EQ(ch.stats().reads, 1u);
    EXPECT_EQ(ch.stats().bytesRead, 64u);
}

TEST(DramChannel, RowHitIsFaster)
{
    EventQueue eq;
    DramChannel ch(eq, testParams());
    const Tick first = readOnce(eq, ch, 0);
    const Tick second = readOnce(eq, ch, 64);
    // frontend 10 + row hit 15 + bus 2 = 27 ns for the hit.
    EXPECT_EQ(second - first, ticksFromNs(27.0));
    EXPECT_EQ(ch.stats().rowHits, 1u);
}

TEST(DramChannel, SameBankDifferentRowConflicts)
{
    EventQueue eq;
    DramChannel ch(eq, testParams());
    readOnce(eq, ch, addrOf(0, 0));
    const Tick t0 = eq.curTick();
    const Tick done = readOnce(eq, ch, addrOf(0, 1));
    EXPECT_EQ(done - t0, ticksFromNs(57.0)); // full miss again
    EXPECT_EQ(ch.stats().rowMisses, 2u);
}

TEST(DramChannel, DifferentBanksOverlap)
{
    EventQueue eq;
    DramChannelParams p = testParams();
    DramChannel ch(eq, p);
    std::vector<Tick> done;
    for (std::uint32_t b = 0; b < 4; ++b) {
        MemRequest r;
        r.addr = addrOf(b, 0);
        r.size = cachelineBytes;
        r.cmd = MemCmd::Read;
        r.onComplete = [&done](Tick t) { done.push_back(t); };
        ch.access(std::move(r));
    }
    eq.run();
    ASSERT_EQ(done.size(), 4u);
    // Bank phases overlap; the bus serializes at 2 ns per line, so
    // the last completion is ~6 ns after the first, not 4x57 ns.
    EXPECT_EQ(done[0], ticksFromNs(57.0));
    EXPECT_EQ(done[3] - done[0], ticksFromNs(6.0));
}

TEST(DramChannel, BusSerializesRowHits)
{
    EventQueue eq;
    DramChannel ch(eq, testParams());
    // Stream 256 sequential lines in one stripe+row; steady-state
    // throughput must approach the 32 GB/s bus.
    std::uint64_t completed = 0;
    Tick last = 0;
    for (int i = 0; i < 16; ++i) {
        MemRequest r;
        r.addr = static_cast<Addr>(i) * 64;
        r.size = cachelineBytes;
        r.cmd = MemCmd::Read;
        r.onComplete = [&](Tick t) {
            ++completed;
            last = t;
        };
        ch.access(std::move(r));
    }
    eq.run();
    EXPECT_EQ(completed, 16u);
    // First line: 57 ns; each subsequent line: +2 ns bus slot.
    EXPECT_EQ(last, ticksFromNs(57.0 + 15 * 2.0));
}

TEST(DramChannel, WriteRecoveryExtendsConflicts)
{
    EventQueue eq;
    DramChannel ch(eq, testParams());
    // Two conflicting writes to the same bank: the second must wait
    // out the first's (tRowMiss - tRowHit) + bus + tWR occupancy.
    std::vector<Tick> done;
    for (int row : {0, 1}) {
        MemRequest r;
        r.addr = addrOf(3, static_cast<std::uint64_t>(row));
        r.size = cachelineBytes;
        r.cmd = MemCmd::Write;
        r.onComplete = [&done](Tick t) { done.push_back(t); };
        ch.access(std::move(r));
    }
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    // The first transfer pays the idle->write turnaround (8 ns).
    // Its bank occupancy = (45-15) + 2 + 15(tWR) = 47 ns; the second
    // write's bank phase starts then: 47 + 10 + 45 + 2 = 104 ns, with
    // the bus already in write mode (no second turnaround).
    EXPECT_EQ(done[0], ticksFromNs(57.0 + 8.0));
    EXPECT_EQ(done[1], ticksFromNs(104.0));
}

TEST(DramChannel, TurnaroundChargedOnDirectionSwitch)
{
    EventQueue eq;
    DramChannel ch(eq, testParams());
    const Tick read_done = readOnce(eq, ch, addrOf(0, 0));
    Tick write_done = 0;
    MemRequest w;
    w.addr = addrOf(1, 0);
    w.size = cachelineBytes;
    w.cmd = MemCmd::Write;
    w.onComplete = [&](Tick t) { write_done = t; };
    const Tick t0 = eq.curTick();
    ch.access(std::move(w));
    eq.run();
    // 57 ns of pipeline plus one 8 ns read->write turnaround.
    EXPECT_EQ(write_done - t0, ticksFromNs(65.0));
    (void)read_done;
}

TEST(DramChannel, NtWriteAcceptPrecedesDrain)
{
    EventQueue eq;
    DramChannel ch(eq, testParams());
    Tick accepted = maxTick;
    Tick drained = 0;
    MemRequest r;
    r.addr = 0;
    r.size = cachelineBytes;
    r.cmd = MemCmd::NtWrite;
    r.onAccept = [&](Tick t) { accepted = t; };
    r.onComplete = [&](Tick t) { drained = t; };
    ch.access(std::move(r));
    eq.run();
    EXPECT_EQ(accepted, 0u); // accepted immediately (gate empty)
    EXPECT_GT(drained, accepted);
}

TEST(DramChannel, NtPostedGateBackpressures)
{
    EventQueue eq;
    DramChannelParams p = testParams(); // gate depth 4
    DramChannel ch(eq, p);
    int accepts_at_zero = 0;
    int total_accepts = 0;
    for (int i = 0; i < 8; ++i) {
        MemRequest r;
        r.addr = addrOf(0, static_cast<std::uint64_t>(i)); // conflicts
        r.size = cachelineBytes;
        r.cmd = MemCmd::NtWrite;
        r.onAccept = [&, i](Tick t) {
            ++total_accepts;
            if (t == 0)
                ++accepts_at_zero;
        };
        ch.access(std::move(r));
    }
    eq.run();
    EXPECT_EQ(total_accepts, 8);
    EXPECT_EQ(accepts_at_zero, 4); // only the gate depth at tick 0
}

TEST(DramChannel, FrFcfsPrefersOpenRow)
{
    EventQueue eq;
    DramChannel ch(eq, testParams());
    // Open row 0 in bank 0, then enqueue row1, row0, row1, row0...
    // The scheduler should group the row-0 requests (hits).
    readOnce(eq, ch, addrOf(0, 0));
    std::uint64_t hits_before = ch.stats().rowHits;
    for (int i = 0; i < 6; ++i) {
        MemRequest r;
        r.addr = addrOf(0, (i % 2) ? 0 : 1, 64);
        r.size = cachelineBytes;
        r.cmd = MemCmd::Read;
        ch.access(std::move(r));
    }
    eq.run();
    // Naive in-order service would alternate rows: ~0 hits. FR-FCFS
    // serves the three open-row requests first, then the rest share
    // row 1: at least 4 hits.
    EXPECT_GE(ch.stats().rowHits - hits_before, 4u);
}

TEST(InterleavedMemory, SpreadsAcrossChannels)
{
    EventQueue eq;
    InterleavedMemory mem(eq, "node", testParams(), 4, 256);
    for (int i = 0; i < 16; ++i) {
        MemRequest r;
        r.addr = static_cast<Addr>(i) * 256;
        r.size = cachelineBytes;
        r.cmd = MemCmd::Read;
        mem.access(std::move(r));
    }
    eq.run();
    for (std::uint32_t c = 0; c < 4; ++c)
        EXPECT_EQ(mem.channel(c).stats().reads, 4u);
    EXPECT_EQ(mem.stats().reads, 16u);
}

TEST(InterleavedMemory, CompactsChannelLocalAddresses)
{
    EventQueue eq;
    InterleavedMemory mem(eq, "node", testParams(), 8, 256);
    // A global sequential sweep must stay row-sequential per channel:
    // 8 KiB of global space = 1 KiB per channel = all row hits after
    // each channel's first access.
    for (int i = 0; i < 128; ++i) {
        MemRequest r;
        r.addr = static_cast<Addr>(i) * 64;
        r.size = cachelineBytes;
        r.cmd = MemCmd::Read;
        mem.access(std::move(r));
    }
    eq.run();
    const DeviceStats s = mem.stats();
    EXPECT_EQ(s.rowMisses, 8u); // exactly one cold miss per channel
    EXPECT_EQ(s.rowHits, 120u);
}

TEST(InterleavedMemory, MoreChannelsMoreBandwidth)
{
    auto streamTime = [](std::uint32_t channels) {
        EventQueue eq;
        InterleavedMemory mem(eq, "node", testParams(), channels, 256);
        Tick last = 0;
        for (int i = 0; i < 512; ++i) {
            MemRequest r;
            r.addr = static_cast<Addr>(i) * 64;
            r.size = cachelineBytes;
            r.cmd = MemCmd::Read;
            r.onComplete = [&last](Tick t) { last = std::max(last, t); };
            mem.access(std::move(r));
        }
        eq.run();
        return last;
    };
    const Tick one = streamTime(1);
    const Tick four = streamTime(4);
    EXPECT_GT(one, four * 3); // near-linear channel scaling
}

TEST(DramChannelDeathTest, RejectsBadGeometry)
{
    EventQueue eq;
    DramChannelParams p = testParams();
    p.rowBytes = 1536; // not a whole number of stripes
    EXPECT_THROW(DramChannel(eq, p), std::invalid_argument);
}

} // namespace
} // namespace cxlmemo
