/**
 * @file
 * Edge-case tests for the reusable access streams and the DRAM bus
 * direction arbiter.
 */

#include <gtest/gtest.h>

#include <set>

#include "cpu/streams.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"

namespace cxlmemo
{
namespace
{

class StreamsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dev_name = "null";
        node = space.addNode("mem", &dev, 1 * giB);
        buf = space.alloc(8 * miB, MemPolicy::membind(node));
    }

    struct NullDevice : MemoryDevice
    {
        void
        access(MemRequest req) override
        {
            if (req.onComplete)
                req.onComplete(0);
        }
        const std::string &name() const override { return n; }
        std::string n = "null";
    };

    NullDevice dev;
    std::string dev_name;
    NumaSpace space;
    NodeId node = 0;
    NumaBuffer buf;
};

TEST_F(StreamsTest, SequentialEmitsExactByteBudget)
{
    SequentialStream s(buf, 64 * kiB, 1 * miB, 256 * kiB,
                       MemOp::Kind::Store);
    MemOp op;
    std::uint64_t count = 0;
    while (s.next(op)) {
        EXPECT_EQ(op.kind, MemOp::Kind::Store);
        ++count;
    }
    EXPECT_EQ(count, 256 * kiB / cachelineBytes);
}

TEST_F(StreamsTest, SequentialStaysInsideRegion)
{
    const std::uint64_t region_off = 1 * miB;
    const std::uint64_t region_len = 128 * kiB;
    SequentialStream s(buf, region_off, region_len, 512 * kiB,
                       MemOp::Kind::Load);
    // Collect the physical footprint of the region for comparison.
    std::set<Addr> allowed;
    for (std::uint64_t o = 0; o < region_len; o += cachelineBytes)
        allowed.insert(buf.translate(region_off + o));
    MemOp op;
    while (s.next(op))
        ASSERT_TRUE(allowed.count(op.paddr)) << "escaped the region";
}

TEST_F(StreamsTest, RandomBlockRespectsBlockAlignment)
{
    RandomBlockStream s(buf, 0, 4 * miB, 64 * kiB, 4 * kiB,
                        MemOp::Kind::Load, false, 11);
    MemOp op;
    int in_block = 0;
    Addr block_first = 0;
    while (s.next(op)) {
        if (in_block == 0)
            block_first = op.paddr;
        else
            // Within a page-sized block, lines are contiguous.
            EXPECT_EQ(op.paddr,
                      block_first + std::uint64_t(in_block)
                                        * cachelineBytes);
        in_block = (in_block + 1) % (4 * kiB / cachelineBytes);
    }
}

TEST_F(StreamsTest, RandomBlockSeedsDiverge)
{
    RandomBlockStream a(buf, 0, 4 * miB, 16 * kiB, 1 * kiB,
                        MemOp::Kind::Load, false, 1);
    RandomBlockStream b(buf, 0, 4 * miB, 16 * kiB, 1 * kiB,
                        MemOp::Kind::Load, false, 2);
    MemOp oa;
    MemOp ob;
    int same = 0;
    int total = 0;
    while (a.next(oa) && b.next(ob)) {
        same += oa.paddr == ob.paddr;
        ++total;
    }
    EXPECT_LT(same, total / 4);
}

TEST_F(StreamsTest, ListStreamReplaysExactly)
{
    std::vector<MemOp> ops = {
        {MemOp::Kind::Load, 1, 0, 0},
        {MemOp::Kind::Mfence, 0, 0, 0},
        {MemOp::Kind::Compute, 0, 0, 7},
    };
    ListStream s(ops);
    MemOp op;
    ASSERT_TRUE(s.next(op));
    EXPECT_EQ(op.kind, MemOp::Kind::Load);
    ASSERT_TRUE(s.next(op));
    EXPECT_EQ(op.kind, MemOp::Kind::Mfence);
    ASSERT_TRUE(s.next(op));
    EXPECT_EQ(op.computeTicks, 7u);
    EXPECT_FALSE(s.next(op));
}

TEST_F(StreamsTest, FnStreamDelegates)
{
    int emitted = 0;
    FnStream s([&emitted](MemOp &op) {
        if (emitted >= 3)
            return false;
        op.kind = MemOp::Kind::Load;
        op.paddr = static_cast<Addr>(emitted++);
        return true;
    });
    MemOp op;
    int n = 0;
    while (s.next(op))
        ++n;
    EXPECT_EQ(n, 3);
}

TEST_F(StreamsTest, ChaseRejectsTinyWorkingSets)
{
    EXPECT_DEATH(PointerChaseStream(buf, cachelineBytes, 10, false, 1),
                 "too small");
}

TEST_F(StreamsTest, SequentialRejectsRegionsBeyondBuffer)
{
    EXPECT_DEATH(SequentialStream(buf, 7 * miB, 2 * miB, 1 * miB,
                                  MemOp::Kind::Load),
                 "beyond buffer");
}

TEST(DramDirectionBatching, BatchesSameDirectionTransfers)
{
    EventQueue eq;
    DramChannelParams p;
    p.maxDirectionRun = 4;
    p.tTurnaround = ticksFromNs(20.0); // make switches expensive
    DramChannel ch(eq, p);
    // Interleave reads and writes in arrival order; the bus should
    // batch them so far fewer than one turnaround per request is
    // paid. Compare against a channel that cannot batch.
    auto run = [&eq](DramChannelParams params) {
        DramChannel chan(eq, params);
        const Tick start = eq.curTick();
        Tick last = 0;
        for (int i = 0; i < 64; ++i) {
            MemRequest r;
            r.addr = static_cast<Addr>(i) * 64;
            r.size = cachelineBytes;
            r.cmd = (i % 2) ? MemCmd::Write : MemCmd::Read;
            r.onComplete = [&last](Tick t) { last = std::max(last, t); };
            chan.access(std::move(r));
        }
        eq.run();
        return last - start;
    };
    DramChannelParams no_batch = p;
    no_batch.maxDirectionRun = 1;
    const Tick batched = run(p);
    const Tick alternating = run(no_batch);
    EXPECT_LT(batched, alternating);
}

} // namespace
} // namespace cxlmemo
