/**
 * @file
 * Tests for the UPI remote-memory path.
 */

#include <gtest/gtest.h>

#include "interconnect/upi.hh"
#include "sim/event_queue.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace
{

Tick
readOnce(EventQueue &eq, UpiRemoteMemory &mem, Addr addr)
{
    Tick done = 0;
    MemRequest r;
    r.addr = addr;
    r.size = cachelineBytes;
    r.cmd = MemCmd::Read;
    r.onComplete = [&done](Tick t) { done = t; };
    mem.access(std::move(r));
    eq.run();
    return done;
}

TEST(UpiRemoteMemory, AddsTwoHopsToDramLatency)
{
    EventQueue eq;
    UpiParams p = testbed_params::uiPathToRemote();
    UpiRemoteMemory remote(eq, p);

    EventQueue eq2;
    DramChannel bare(eq2, testbed_params::remoteDdr5Channel());
    Tick bare_done = 0;
    MemRequest r;
    r.addr = 0;
    r.size = cachelineBytes;
    r.cmd = MemCmd::Read;
    r.onComplete = [&bare_done](Tick t) { bare_done = t; };
    bare.access(std::move(r));
    eq2.run();

    const Tick remote_done = readOnce(eq, remote, 0);
    const Tick overhead = remote_done - bare_done;
    // Two hop latencies plus both serializations.
    EXPECT_GE(overhead, 2 * p.hopLatency);
    EXPECT_LE(overhead, 2 * p.hopLatency + ticksFromNs(10.0));
}

TEST(UpiRemoteMemory, CountsLinkBytesAsymmetrically)
{
    EventQueue eq;
    UpiParams p = testbed_params::uiPathToRemote();
    UpiRemoteMemory remote(eq, p);
    readOnce(eq, remote, 0);
    // Read: header down, header+data up.
    EXPECT_EQ(remote.bytesDown(), p.headerBytes);
    EXPECT_EQ(remote.bytesUp(), p.headerBytes + cachelineBytes);

    remote.resetStats();
    MemRequest w;
    w.addr = 64;
    w.size = cachelineBytes;
    w.cmd = MemCmd::Write;
    remote.access(std::move(w));
    eq.run();
    EXPECT_EQ(remote.bytesDown(), p.headerBytes + cachelineBytes);
    EXPECT_EQ(remote.bytesUp(), p.headerBytes);
}

TEST(UpiRemoteMemory, NtWriteAcceptFlowsThroughToChannelGate)
{
    EventQueue eq;
    UpiRemoteMemory remote(eq, testbed_params::uiPathToRemote());
    Tick accepted = 0;
    Tick drained = 0;
    MemRequest w;
    w.addr = 0;
    w.size = cachelineBytes;
    w.cmd = MemCmd::NtWrite;
    w.onAccept = [&](Tick t) { accepted = t; };
    w.onComplete = [&](Tick t) { drained = t; };
    remote.access(std::move(w));
    eq.run();
    EXPECT_GT(accepted, 0u); // after link delivery
    EXPECT_GT(drained, accepted);
}

TEST(UpiRemoteMemory, BandwidthBoundedByLink)
{
    EventQueue eq;
    UpiParams p = testbed_params::uiPathToRemote();
    p.linkGBps = 10.0; // deliberately slower than the DDR5 channel
    UpiRemoteMemory remote(eq, p);
    // Saturate with reads; completion rate must be link-bound.
    std::uint64_t completed = 0;
    std::function<void(Addr)> issue = [&](Addr a) {
        MemRequest r;
        r.addr = a;
        r.size = cachelineBytes;
        r.cmd = MemCmd::Read;
        r.onComplete = [&, a](Tick) {
            ++completed;
            issue(a + 16 * cachelineBytes);
        };
        remote.access(std::move(r));
    };
    for (int i = 0; i < 32; ++i)
        issue(static_cast<Addr>(i) * cachelineBytes);
    eq.runUntil(ticksFromUs(100.0));
    const double gbps =
        gbPerSec(completed * cachelineBytes, ticksFromUs(100.0));
    // Up-link carries 80 B per 64 B payload at 10 GB/s -> 8 GB/s max.
    EXPECT_LT(gbps, 8.5);
    EXPECT_GT(gbps, 6.0);
}

} // namespace
} // namespace cxlmemo
