/**
 * @file
 * Tests for the Intel DSA offload-engine model.
 */

#include <gtest/gtest.h>

#include "dsa/dsa.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace
{

class DsaTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        machine = std::make_unique<Machine>(Testbed::SingleSocketCxl);
        src = machine->numa().alloc(
            8 * miB, MemPolicy::membind(machine->localNode()));
        dst = machine->numa().alloc(
            8 * miB, MemPolicy::membind(machine->localNode()));
    }

    DsaDescriptor
    desc(std::uint64_t off, std::uint64_t bytes)
    {
        return DsaDescriptor{&src, off, &dst, off, bytes};
    }

    std::unique_ptr<Machine> machine;
    NumaBuffer src;
    NumaBuffer dst;
};

TEST_F(DsaTest, SingleCopyCompletes)
{
    Dsa &dsa = machine->dsa();
    Tick done = 0;
    ASSERT_TRUE(dsa.submit(desc(0, 4096), [&](Tick t) { done = t; }));
    machine->eq().run();
    EXPECT_GT(done, 0u);
    EXPECT_EQ(dsa.bytesCopied(), 4096u);
    EXPECT_EQ(dsa.wqOccupancy(), 0u);
}

TEST_F(DsaTest, CompletionIncludesDispatchAndRecordLatency)
{
    Dsa &dsa = machine->dsa();
    Tick done = 0;
    dsa.submit(desc(0, 512), [&](Tick t) { done = t; });
    machine->eq().run();
    EXPECT_GE(done, dsa.params().dispatchLatency
                        + dsa.params().completionLatency);
}

TEST_F(DsaTest, BatchExecutesAllEntries)
{
    Dsa &dsa = machine->dsa();
    std::vector<DsaDescriptor> batch;
    for (int i = 0; i < 16; ++i)
        batch.push_back(desc(std::uint64_t(i) * 4096, 4096));
    int completions = 0;
    ASSERT_TRUE(dsa.submitBatch(std::move(batch),
                                [&](Tick) { ++completions; }));
    machine->eq().run();
    EXPECT_EQ(completions, 1); // one completion record per batch
    EXPECT_EQ(dsa.bytesCopied(), 16u * 4096u);
}

TEST_F(DsaTest, EnginesRunJobsConcurrently)
{
    Dsa &dsa = machine->dsa();
    // 4 engines: 4 concurrent 256 KiB copies should take much less
    // than 4x one copy.
    Tick serial_done = 0;
    dsa.submit(desc(0, 256 * kiB), [&](Tick t) { serial_done = t; });
    machine->eq().run();
    const Tick one = serial_done;

    std::uint64_t last = 0;
    int done = 0;
    const Tick t0 = machine->eq().curTick();
    for (int i = 0; i < 4; ++i) {
        dsa.submit(desc(std::uint64_t(i) * 512 * kiB, 256 * kiB),
                   [&](Tick t) {
            ++done;
            last = std::max<std::uint64_t>(last, t);
        });
    }
    machine->eq().run();
    EXPECT_EQ(done, 4);
    EXPECT_LT(last - t0, 3 * one);
}

TEST_F(DsaTest, WqFullReturnsRetryStatus)
{
    DsaParams p;
    p.wqDepth = 2;
    p.numEngines = 1;
    Dsa dsa(machine->eq(), machine->numa(), p);
    EXPECT_TRUE(dsa.submit(desc(0, 64 * kiB), nullptr));
    EXPECT_TRUE(dsa.submit(desc(64 * kiB, 64 * kiB), nullptr));
    EXPECT_FALSE(dsa.submit(desc(128 * kiB, 64 * kiB), nullptr));
    machine->eq().run();
    // After draining, submissions are accepted again.
    EXPECT_TRUE(dsa.submit(desc(128 * kiB, 64 * kiB), nullptr));
    machine->eq().run();
}

TEST_F(DsaTest, CrossDeviceCopyTouchesBothDevices)
{
    NumaBuffer cxl_dst = machine->numa().alloc(
        4 * miB, MemPolicy::membind(machine->cxlNode()));
    Dsa &dsa = machine->dsa();
    machine->cxlDev().resetStats();
    DsaDescriptor d{&src, 0, &cxl_dst, 0, 64 * kiB};
    dsa.submit(d, nullptr);
    machine->eq().run();
    EXPECT_EQ(machine->cxlDev().backendStats().bytesWritten, 64 * kiB);
    EXPECT_EQ(machine->cxlDev().backendStats().bytesRead, 0u);
}

TEST_F(DsaTest, ChunkingRespectsDescriptorSize)
{
    Dsa &dsa = machine->dsa();
    // A 100-byte descriptor still copies exactly 100 bytes.
    DsaDescriptor d{&src, 0, &dst, 0, 100};
    dsa.submit(d, nullptr);
    machine->eq().run();
    EXPECT_EQ(dsa.bytesCopied(), 100u);
}

TEST_F(DsaTest, RejectsMalformedDescriptors)
{
    Dsa &dsa = machine->dsa();
    DsaDescriptor bad{&src, 8 * miB - 64, &dst, 0, 4096};
    EXPECT_DEATH(dsa.submit(bad, nullptr), "beyond buffer");
    DsaDescriptor zero{&src, 0, &dst, 0, 0};
    EXPECT_DEATH(dsa.submit(zero, nullptr), "zero-byte");
}

} // namespace
} // namespace cxlmemo
