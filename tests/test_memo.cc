/**
 * @file
 * Integration tests for the MEMO microbenchmark suite: the relations
 * the paper reports must hold in the simulation (these are the
 * shape-level acceptance criteria of EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include "memo/memo.hh"

namespace cxlmemo
{
namespace
{

memo::Options
fastOpts()
{
    memo::Options o;
    o.warmupUs = 20.0;
    o.measureUs = 60.0;
    return o;
}

TEST(MemoLatency, OrderingAcrossTargets)
{
    const auto local = memo::runLatency(memo::Target::Ddr5Local);
    const auto remote = memo::runLatency(memo::Target::Ddr5Remote);
    const auto cxl = memo::runLatency(memo::Target::Cxl);

    // Paper Fig. 2 orderings.
    EXPECT_LT(local.loadNs, remote.loadNs);
    EXPECT_LT(remote.loadNs, cxl.loadNs);
    EXPECT_LT(local.ptrChaseNs, remote.ptrChaseNs);
    EXPECT_LT(remote.ptrChaseNs, cxl.ptrChaseNs);

    // nt-store + sfence is far cheaper than store + clwb everywhere.
    EXPECT_LT(local.ntStoreNs, local.storeWbNs);
    EXPECT_LT(remote.ntStoreNs, remote.storeWbNs);
    EXPECT_LT(cxl.ntStoreNs, cxl.storeWbNs);
}

TEST(MemoLatency, PaperRatiosHold)
{
    const auto local = memo::runLatency(memo::Target::Ddr5Local);
    const auto remote = memo::runLatency(memo::Target::Ddr5Remote);
    const auto cxl = memo::runLatency(memo::Target::Cxl);

    // "CXL memory access latency is about 2.2x higher than DDR5-L8".
    EXPECT_NEAR(cxl.loadNs / local.loadNs, 2.2, 0.5);
    // "DDR5-R1 is 1x ~ 2.5x higher than DDR5-L8".
    EXPECT_GT(remote.loadNs / local.loadNs, 1.0);
    EXPECT_LT(remote.loadNs / local.loadNs, 2.5);
    // "pointer chasing in CXL has 3.7x higher latency than DDR5-L8".
    EXPECT_NEAR(cxl.ptrChaseNs / local.ptrChaseNs, 3.7, 0.8);
    // "...and 2.2x higher than DDR5-R1".
    EXPECT_NEAR(cxl.ptrChaseNs / remote.ptrChaseNs, 2.2, 0.5);
}

TEST(MemoWssSweep, CrossesCacheLevels)
{
    const auto lat = memo::runPtrChaseWssSweep(
        memo::Target::Ddr5Local,
        {16 * kiB, 1 * miB, 16 * miB, 256 * miB});
    ASSERT_EQ(lat.size(), 4u);
    EXPECT_LT(lat[0], 5.0);   // L1-resident
    EXPECT_LT(lat[1], 15.0);  // L2-resident
    EXPECT_LT(lat[2], 40.0);  // LLC-resident
    EXPECT_GT(lat[3], 80.0);  // memory-resident
}

TEST(MemoSeqBandwidth, Ddr5ScalesCxlSaturates)
{
    const auto opts = fastOpts();
    const double l8_1 = memo::runSeqBandwidth(
        memo::Target::Ddr5Local, MemOp::Kind::Load, 1, opts);
    const double l8_16 = memo::runSeqBandwidth(
        memo::Target::Ddr5Local, MemOp::Kind::Load, 16, opts);
    EXPECT_GT(l8_16, 8 * l8_1); // near-linear scaling

    const double cxl_8 = memo::runSeqBandwidth(
        memo::Target::Cxl, MemOp::Kind::Load, 8, opts);
    const double cxl_32 = memo::runSeqBandwidth(
        memo::Target::Cxl, MemOp::Kind::Load, 32, opts);
    EXPECT_LT(cxl_8, 22.0);      // bounded by DDR4-2666
    EXPECT_LT(cxl_32, cxl_8);    // declines beyond the peak
    EXPECT_GT(cxl_32, 0.5 * cxl_8);
}

TEST(MemoSeqBandwidth, CxlNtStorePeaksEarlyThenDrops)
{
    const auto opts = fastOpts();
    const double nt2 = memo::runSeqBandwidth(
        memo::Target::Cxl, MemOp::Kind::NtStore, 2, opts);
    const double nt16 = memo::runSeqBandwidth(
        memo::Target::Cxl, MemOp::Kind::NtStore, 16, opts);
    EXPECT_GT(nt2, 12.0);  // near the DDR4 theoretical max
    EXPECT_LT(nt16, nt2);  // collapses with thread count
}

TEST(MemoSeqBandwidth, TemporalStoresLoseToNtStores)
{
    const auto opts = fastOpts();
    for (auto target : {memo::Target::Ddr5Local, memo::Target::Cxl}) {
        const double st = memo::runSeqBandwidth(
            target, MemOp::Kind::Store, 8, opts);
        const double nt = memo::runSeqBandwidth(
            target, MemOp::Kind::NtStore, 2, opts);
        // RFO halves effective write throughput (and worse on CXL).
        EXPECT_LT(st / 8 * 2, nt * 1.5)
            << "target " << memo::targetName(target);
    }
}

TEST(MemoRandBandwidth, BlockSizeHelpsEveryone)
{
    const auto opts = fastOpts();
    for (auto target : {memo::Target::Ddr5Local, memo::Target::Cxl}) {
        const double small = memo::runRandBandwidth(
            target, MemOp::Kind::Load, 1, 1 * kiB, opts);
        const double large = memo::runRandBandwidth(
            target, MemOp::Kind::Load, 1, 64 * kiB, opts);
        EXPECT_GE(large, small * 0.95)
            << "target " << memo::targetName(target);
    }
}

TEST(MemoRandBandwidth, ThreadScalingDivergesAt16KiB)
{
    const auto opts = fastOpts();
    // Paper: at 16 KiB blocks, DDR5-L8 keeps scaling with threads
    // while CXL stops gaining after ~4 threads.
    const double l8_4 = memo::runRandBandwidth(
        memo::Target::Ddr5Local, MemOp::Kind::Load, 4, 16 * kiB, opts);
    const double l8_32 = memo::runRandBandwidth(
        memo::Target::Ddr5Local, MemOp::Kind::Load, 32, 16 * kiB, opts);
    EXPECT_GT(l8_32, 3 * l8_4);

    const double cxl_4 = memo::runRandBandwidth(
        memo::Target::Cxl, MemOp::Kind::Load, 4, 16 * kiB, opts);
    const double cxl_32 = memo::runRandBandwidth(
        memo::Target::Cxl, MemOp::Kind::Load, 32, 16 * kiB, opts);
    EXPECT_LT(cxl_32, 1.3 * cxl_4);
}

TEST(MemoLoadedLatency, RisesWithBackgroundTraffic)
{
    const auto opts = fastOpts();
    const double idle =
        memo::runLoadedLatency(memo::Target::Cxl, 1, opts);
    const double loaded =
        memo::runLoadedLatency(memo::Target::Cxl, 12, opts);
    EXPECT_GT(loaded, idle * 1.2);
}

TEST(MemoDataMove, PathAsymmetries)
{
    // Fig. 4 relations.
    const double d2d = memo::runCopyBandwidth(
        memo::CopyPath::D2D, memo::CopyMethod::DsaAsync, 16);
    const double d2c = memo::runCopyBandwidth(
        memo::CopyPath::D2C, memo::CopyMethod::DsaAsync, 16);
    const double c2d = memo::runCopyBandwidth(
        memo::CopyPath::C2D, memo::CopyMethod::DsaAsync, 16);
    const double c2c = memo::runCopyBandwidth(
        memo::CopyPath::C2C, memo::CopyMethod::DsaAsync, 16);
    EXPECT_GT(d2d, d2c);
    EXPECT_GT(c2d, d2c * 0.99); // "C2D higher due to faster writes"
    EXPECT_GT(d2c, c2c);        // splitting beats CXL-only
    EXPECT_GT(c2d, c2c);
}

TEST(MemoDataMove, AsyncAndBatchingImprove)
{
    const double sync1 = memo::runCopyBandwidth(
        memo::CopyPath::D2D, memo::CopyMethod::DsaSync, 1);
    const double async1 = memo::runCopyBandwidth(
        memo::CopyPath::D2D, memo::CopyMethod::DsaAsync, 1);
    const double async16 = memo::runCopyBandwidth(
        memo::CopyPath::D2D, memo::CopyMethod::DsaAsync, 16);
    EXPECT_GT(async1, 1.5 * sync1);
    EXPECT_GT(async16, 1.2 * async1);
}

TEST(MemoDataMove, MovdirBeatsMemcpyTowardCxl)
{
    const double memcpy_d2c = memo::runCopyBandwidth(
        memo::CopyPath::D2C, memo::CopyMethod::Memcpy);
    const double movdir_d2c = memo::runCopyBandwidth(
        memo::CopyPath::D2C, memo::CopyMethod::Movdir64);
    // The paper's first guideline: cache-bypassing stores win for
    // CXL-bound data movement (no RFO round trips over the link).
    EXPECT_GT(movdir_d2c, 1.5 * memcpy_d2c);
}

TEST(MemoPrefetch, HelpsSequentialSingleThread)
{
    memo::Options on = fastOpts();
    on.prefetch = true;
    const double with_pf = memo::runSeqBandwidth(
        memo::Target::Ddr5Local, MemOp::Kind::Load, 1, on);
    const double without = memo::runSeqBandwidth(
        memo::Target::Ddr5Local, MemOp::Kind::Load, 1, fastOpts());
    EXPECT_GT(with_pf, without);
}

} // namespace
} // namespace cxlmemo
