/**
 * @file
 * Focused unit tests for smaller surfaces: stats structs, interleaved
 * device bookkeeping, core resource caps and policy corner cases.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/core.hh"
#include "cpu/streams.hh"
#include "mem/dram.hh"
#include "numa/numa.hh"
#include "sim/event_queue.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace
{

TEST(DeviceStats, MergeAccumulates)
{
    DeviceStats a;
    a.reads = 2;
    a.bytesRead = 128;
    a.rowHits = 1;
    DeviceStats b;
    b.reads = 3;
    b.writes = 4;
    b.bytesWritten = 256;
    b.rowMisses = 5;
    a.merge(b);
    EXPECT_EQ(a.reads, 5u);
    EXPECT_EQ(a.writes, 4u);
    EXPECT_EQ(a.bytesRead, 128u);
    EXPECT_EQ(a.bytesWritten, 256u);
    EXPECT_EQ(a.rowHits, 1u);
    EXPECT_EQ(a.rowMisses, 5u);
}

TEST(CacheStats, HitRateHandlesEmptyAndFull)
{
    CacheStats s;
    EXPECT_EQ(s.hitRate(), 0.0);
    s.hits = 3;
    s.misses = 1;
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.75);
}

TEST(MemCmd, Classification)
{
    EXPECT_FALSE(isWrite(MemCmd::Read));
    EXPECT_FALSE(isWrite(MemCmd::Prefetch));
    EXPECT_TRUE(isWrite(MemCmd::Write));
    EXPECT_TRUE(isWrite(MemCmd::NtWrite));
    EXPECT_STREQ(memCmdName(MemCmd::NtWrite), "NtWrite");
    EXPECT_STREQ(memCmdName(MemCmd::Prefetch), "Prefetch");
}

TEST(InterleavedMemory, ResetStatsClearsAllChannels)
{
    EventQueue eq;
    InterleavedMemory mem(eq, "node", DramChannelParams{}, 4);
    for (int i = 0; i < 8; ++i) {
        MemRequest r;
        r.addr = static_cast<Addr>(i) * 256;
        r.size = cachelineBytes;
        r.cmd = MemCmd::Read;
        mem.access(std::move(r));
    }
    eq.run();
    EXPECT_EQ(mem.stats().reads, 8u);
    mem.resetStats();
    EXPECT_EQ(mem.stats().reads, 0u);
    for (std::uint32_t c = 0; c < 4; ++c)
        EXPECT_EQ(mem.channel(c).stats().reads, 0u);
}

TEST(DramChannel, NtGateIsFifo)
{
    EventQueue eq;
    DramChannelParams p;
    p.ntPostedEntries = 2;
    DramChannel ch(eq, p);
    std::vector<int> accept_order;
    for (int i = 0; i < 6; ++i) {
        MemRequest r;
        r.addr = static_cast<Addr>(i) * 128 * kiB; // force conflicts
        r.size = cachelineBytes;
        r.cmd = MemCmd::NtWrite;
        r.onAccept = [&accept_order, i](Tick) {
            accept_order.push_back(i);
        };
        ch.access(std::move(r));
    }
    eq.run();
    ASSERT_EQ(accept_order.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(accept_order[i], i);
}

TEST(HwThreadCaps, StoreBufferBoundsOutstandingStores)
{
    Machine m(Testbed::SingleSocketCxl);
    NumaBuffer buf =
        m.numa().alloc(64 * miB, MemPolicy::membind(m.cxlNode()));
    CoreParams cp = m.coreParams();
    cp.storeBufferEntries = 2;
    cp.issueCost = 0;
    HwThread t(m.caches(), 0, cp);
    std::vector<MemOp> ops;
    for (int i = 0; i < 8; ++i)
        ops.push_back({MemOp::Kind::Store,
                       buf.translate(std::uint64_t(i) * pageBytes), 0,
                       0});
    Tick end = 0;
    t.start(std::make_unique<ListStream>(std::move(ops)), 0,
            [&end](Tick, Tick e) { end = e; });
    m.eq().run();
    // 8 RFOs with MLP 2: at least 4 serialized CXL round trips.
    EXPECT_GT(nsFromTicks(end), 4 * 300.0);
}

TEST(HwThreadCaps, WiderLfbIsFaster)
{
    auto run = [](std::uint32_t lfb) {
        Machine m(Testbed::SingleSocketCxl);
        NumaBuffer buf =
            m.numa().alloc(64 * miB, MemPolicy::membind(m.cxlNode()));
        CoreParams cp = m.coreParams();
        cp.loadFillBuffers = lfb;
        HwThread t(m.caches(), 0, cp);
        std::vector<MemOp> ops;
        for (int i = 0; i < 256; ++i)
            ops.push_back({MemOp::Kind::Load,
                           buf.translate(std::uint64_t(i) * pageBytes),
                           0, 0});
        Tick end = 0;
        t.start(std::make_unique<ListStream>(std::move(ops)), 0,
                [&end](Tick, Tick e) { end = e; });
        m.eq().run();
        return end;
    };
    EXPECT_LT(run(16), run(2));
}

TEST(MemPolicy, InterleaveOverThreeNodesIsRoundRobin)
{
    Machine m(Testbed::DualSocket);
    NumaBuffer buf = m.numa().alloc(
        30 * pageBytes,
        MemPolicy::interleave(
            {m.localNode(), m.remoteNode(), m.cxlNode()}));
    EXPECT_NEAR(buf.residencyOn(m.localNode()), 1.0 / 3, 1e-9);
    EXPECT_NEAR(buf.residencyOn(m.remoteNode()), 1.0 / 3, 1e-9);
    EXPECT_NEAR(buf.residencyOn(m.cxlNode()), 1.0 / 3, 1e-9);
}

TEST(MemPolicyDeathTest, WeightedNeedsMatchingWeights)
{
    Machine m(Testbed::SingleSocketCxl);
    MemPolicy p = MemPolicy::weighted({m.localNode(), m.cxlNode()},
                                      {1});
    EXPECT_DEATH(m.numa().alloc(pageBytes, p),
                 "one weight per node");
}

TEST(MemPolicyDeathTest, UnknownNodeIsRejected)
{
    Machine m(Testbed::SingleSocketCxl);
    EXPECT_DEATH(m.numa().alloc(pageBytes, MemPolicy::membind(9)),
                 "unknown node");
}

TEST(SetAssocCache, SequentialLinesSpreadOverSets)
{
    SetAssocCache c({"c", 64 * kiB, 4, 0});
    // Insert exactly capacity worth of consecutive lines: with a
    // uniform index, nothing is evicted.
    const std::uint64_t lines = 64 * kiB / cachelineBytes;
    std::uint64_t evictions = 0;
    for (std::uint64_t la = 0; la < lines; ++la)
        evictions += c.insert(la, LineState::Exclusive, 0).has_value();
    EXPECT_EQ(evictions, 0u);
}

TEST(Quickstart, ReadmeSnippetCompilesAndRuns)
{
    // Mirror of the README "Quickstart (API)" block.
    Machine m(Testbed::SingleSocketCxl);
    NumaBuffer buf = m.numa().alloc(
        64 * miB,
        MemPolicy::splitDramCxl(m.localNode(), m.cxlNode(), 0.1));
    auto t = m.makeThread(0);
    bool done = false;
    t->start(std::make_unique<SequentialStream>(
                 buf, 0, 64 * miB, 1 * miB, MemOp::Kind::Load),
             0, [&done](Tick, Tick) { done = true; });
    m.eq().run();
    EXPECT_TRUE(done);
}

} // namespace
} // namespace cxlmemo
