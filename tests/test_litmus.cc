/**
 * @file
 * Two-host sharing litmus tests over the pooled fabric. The pool's
 * ownership model is exclusive-by-default, so cross-host visibility
 * exists only through the PoolManager's explicit alias hook; these
 * tests pin down the three contracts the cluster relies on:
 *
 *  - ordering: one host's writes to a line are observed in program
 *    order (the port is FIFO, the crossbar FIFO-per-port);
 *  - write visibility: an aliased reader observes the owner's latest
 *    committed write, and an *unaliased* reader never does;
 *  - poison routing: fabric-side poison lands in the targeted host's
 *    ledger only -- the other tenant's reads stay clean.
 *
 * All tests drive a classic-mode Cluster directly via inject() +
 * runFabricUntil(), no workload generators.
 */

#include <gtest/gtest.h>

#include <vector>

#include "system/cluster.hh"

namespace cxlmemo
{
namespace
{

PoolSpec
twoHostSpec()
{
    PoolSpec sp;
    sp.hosts = 2;
    sp.devices = 1;
    sp.capacityMb = 16;
    sp.ops = 1; // irrelevant: run() is never called
    return sp;
}

struct Obs
{
    Tick at = 0;
    CxlSwitch::Status status = CxlSwitch::Status::Ok;
    std::uint64_t value = 0;
    bool seen = false;
};

Cluster::InjectDone
observe(Obs &o)
{
    return [&o](Tick t, CxlSwitch::Status s, std::uint64_t v) {
        o.at = t;
        o.status = s;
        o.value = v;
        o.seen = true;
    };
}

void
drain(Cluster &c)
{
    c.runFabricUntil(c.fabricQueue().curTick() + ticksFromUs(100.0));
}

TEST(Litmus, WriteThenReadSameHostObservesProgramOrder)
{
    Cluster c(twoHostSpec());
    Obs r;
    // Two writes to the same line back to back, then a read: the
    // read must observe the *second* write even though all three ops
    // were in flight together (FIFO port, FIFO VOQ, one device).
    c.inject(0, MemCmd::Write, 128, 0xaaa, {});
    c.inject(0, MemCmd::Write, 128, 0xbbb, {});
    c.inject(0, MemCmd::Read, 128, 0, observe(r));
    drain(c);
    ASSERT_TRUE(r.seen);
    EXPECT_EQ(r.status, CxlSwitch::Status::Ok);
    EXPECT_EQ(r.value, 0xbbbu);
}

TEST(Litmus, AliasedReaderSeesOwnersWrite)
{
    Cluster c(twoHostSpec());
    c.pool().setAlias(1, 0); // host 1 reads through host 0's window
    Obs w, r;
    c.inject(0, MemCmd::Write, 4096, 0x1234, observe(w));
    drain(c);
    ASSERT_TRUE(w.seen);
    c.inject(1, MemCmd::Read, 4096, 0, observe(r));
    drain(c);
    ASSERT_TRUE(r.seen);
    EXPECT_EQ(r.status, CxlSwitch::Status::Ok);
    EXPECT_EQ(r.value, 0x1234u);
}

TEST(Litmus, UnaliasedTenantsNeverObserveEachOther)
{
    Cluster c(twoHostSpec());
    Obs r0, r1;
    // Both hosts use window address 0 -- exclusive ownership maps
    // them to *different* device lines, so host 1 must not see host
    // 0's write.
    c.inject(0, MemCmd::Write, 0, 0xdead, {});
    drain(c);
    c.inject(1, MemCmd::Read, 0, 0, observe(r1));
    c.inject(0, MemCmd::Read, 0, 0, observe(r0));
    drain(c);
    ASSERT_TRUE(r0.seen);
    ASSERT_TRUE(r1.seen);
    EXPECT_EQ(r0.value, 0xdeadu);
    EXPECT_NE(r1.value, 0xdeadu);
    EXPECT_TRUE(c.pool().ledgerOk());
}

TEST(Litmus, NtStoreVisibleToAliasedReader)
{
    Cluster c(twoHostSpec());
    c.pool().setAlias(1, 0);
    Obs r;
    c.inject(0, MemCmd::NtWrite, 256, 0x77, {});
    drain(c);
    c.inject(1, MemCmd::Read, 256, 0, observe(r));
    drain(c);
    ASSERT_TRUE(r.seen);
    EXPECT_EQ(r.value, 0x77u);
}

TEST(Litmus, PoisonLandsInTargetedHostsLedgerOnly)
{
    PoolSpec sp = twoHostSpec();
    sp.poisonHost = 0;
    sp.poisonEvery = 1; // every host-0 read completes poisoned
    Cluster c(sp);
    Obs r0, r1;
    c.inject(0, MemCmd::Read, 64, 0, observe(r0));
    c.inject(1, MemCmd::Read, 64, 0, observe(r1));
    drain(c);
    ASSERT_TRUE(r0.seen);
    ASSERT_TRUE(r1.seen);
    EXPECT_EQ(r0.status, CxlSwitch::Status::Poisoned);
    EXPECT_EQ(r1.status, CxlSwitch::Status::Ok);
    // Writes are never poisoned by the read-poison stream.
    Obs w0;
    c.inject(0, MemCmd::Write, 64, 1, observe(w0));
    drain(c);
    ASSERT_TRUE(w0.seen);
    EXPECT_EQ(w0.status, CxlSwitch::Status::Ok);
}

TEST(Litmus, FencedHostsInjectionsAbortButPeerIsUntouched)
{
    PoolSpec sp = twoHostSpec();
    Cluster c(sp);
    c.fabric().fencePort(1, ContainPolicy::Abort);
    Obs r0, r1;
    c.inject(1, MemCmd::Read, 0, 0, observe(r1));
    c.inject(0, MemCmd::Read, 0, 0, observe(r0));
    drain(c);
    ASSERT_TRUE(r0.seen);
    ASSERT_TRUE(r1.seen);
    EXPECT_EQ(r0.status, CxlSwitch::Status::Ok);
    EXPECT_EQ(r1.status, CxlSwitch::Status::Aborted);
    EXPECT_TRUE(c.fabric().creditLedgerOk());
}

} // namespace
} // namespace cxlmemo
