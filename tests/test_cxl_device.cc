/**
 * @file
 * Tests for the CXL Type-3 device: latency composition, finite
 * trackers/buffers, early write acknowledgement, posted NT gate and
 * the fair-share ingress arbiter.
 */

#include <gtest/gtest.h>

#include "cxl/device.hh"
#include "sim/event_queue.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace
{

CxlDeviceParams
smallDevice()
{
    CxlDeviceParams p = testbed_params::agilexCxlDevice();
    p.readQueueEntries = 4;
    p.writeBufferEntries = 4;
    p.hostPostedEntries = 8;
    return p;
}

Tick
readOnce(EventQueue &eq, CxlMemDevice &dev, Addr addr)
{
    Tick done = 0;
    MemRequest r;
    r.addr = addr;
    r.size = cachelineBytes;
    r.cmd = MemCmd::Read;
    r.onComplete = [&done](Tick t) { done = t; };
    dev.access(std::move(r));
    eq.run();
    return done;
}

TEST(CxlDevice, ReadLatencyComposition)
{
    EventQueue eq;
    CxlDeviceParams p = testbed_params::agilexCxlDevice();
    CxlMemDevice dev(eq, p);
    const Tick done = readOnce(eq, dev, 0);
    // Lower bound: 2x propagation + controller in/out + backend
    // frontend + row miss. (Serialization adds a few more ns.)
    const Tick floor = 2 * p.link.propagation + p.controllerIngress
                       + p.controllerEgress + p.backend.tFrontend
                       + p.backend.tRowMiss;
    EXPECT_GT(done, floor);
    EXPECT_LT(done, floor + ticksFromNs(20.0));
}

TEST(CxlDevice, RowHitReadIsFaster)
{
    EventQueue eq;
    CxlMemDevice dev(eq, testbed_params::agilexCxlDevice());
    const Tick first = readOnce(eq, dev, 0);
    const Tick second = readOnce(eq, dev, 64) - first;
    EXPECT_LT(second, first);
}

TEST(CxlDevice, WriteAcknowledgedBeforeDrain)
{
    EventQueue eq;
    CxlMemDevice dev(eq, testbed_params::agilexCxlDevice());
    Tick acked = 0;
    MemRequest w;
    w.addr = 0;
    w.size = cachelineBytes;
    w.cmd = MemCmd::Write;
    w.onComplete = [&acked](Tick t) { acked = t; };
    dev.access(std::move(w));
    eq.run();
    // NDR comes back after the down-link + ingress + up-link, well
    // before a full read round trip (no DRAM wait on the ack path).
    const Tick read_rt = readOnce(eq, dev, 4096) - acked;
    EXPECT_LT(acked, read_rt);
    EXPECT_GT(dev.backendStats().writes, 0u); // drained eventually
}

TEST(CxlDevice, ReadTrackerLimitsConcurrency)
{
    EventQueue eq;
    CxlMemDevice dev(eq, smallDevice());
    int completed = 0;
    for (int i = 0; i < 16; ++i) {
        MemRequest r;
        r.addr = static_cast<Addr>(i) * 128 * kiB; // all row misses
        r.size = cachelineBytes;
        r.cmd = MemCmd::Read;
        r.source = static_cast<std::uint16_t>(i);
        r.onComplete = [&completed](Tick) { ++completed; };
        dev.access(std::move(r));
    }
    eq.run();
    EXPECT_EQ(completed, 16);
    EXPECT_GT(dev.controllerStats().readsStalled, 0u);
}

TEST(CxlDevice, WriteBufferHighWaterIsBounded)
{
    EventQueue eq;
    CxlDeviceParams p = smallDevice();
    CxlMemDevice dev(eq, p);
    for (int i = 0; i < 32; ++i) {
        MemRequest w;
        w.addr = static_cast<Addr>(i) * 128 * kiB;
        w.size = cachelineBytes;
        w.cmd = MemCmd::Write;
        w.source = static_cast<std::uint16_t>(i % 4);
        dev.access(std::move(w));
    }
    eq.run();
    EXPECT_LE(dev.controllerStats().writeBufferHighWater,
              p.writeBufferEntries);
    EXPECT_GT(dev.controllerStats().writesStalled, 0u);
    EXPECT_EQ(dev.backendStats().writes, 32u);
}

TEST(CxlDevice, NtPostedGateDelaysAcceptsWhenFull)
{
    EventQueue eq;
    CxlDeviceParams p = smallDevice(); // 8 posted slots
    CxlMemDevice dev(eq, p);
    int accepts_at_zero = 0;
    int accepted = 0;
    for (int i = 0; i < 24; ++i) {
        MemRequest w;
        w.addr = static_cast<Addr>(i) * 128 * kiB;
        w.size = cachelineBytes;
        w.cmd = MemCmd::NtWrite;
        w.onAccept = [&](Tick t) {
            ++accepted;
            if (t == 0)
                ++accepts_at_zero;
        };
        dev.access(std::move(w));
    }
    eq.run();
    EXPECT_EQ(accepted, 24);
    EXPECT_EQ(accepts_at_zero, 8);
}

TEST(CxlDevice, LinkBytesAccountedBothDirections)
{
    EventQueue eq;
    CxlDeviceParams p = testbed_params::agilexCxlDevice();
    CxlMemDevice dev(eq, p);
    readOnce(eq, dev, 0);
    // Read: header down, data flit up.
    EXPECT_EQ(dev.bytesDown(), p.link.headerBytes);
    EXPECT_EQ(dev.bytesUp(), p.link.dataBytes);
    dev.resetStats();
    MemRequest w;
    w.addr = 64;
    w.size = cachelineBytes;
    w.cmd = MemCmd::Write;
    dev.access(std::move(w));
    eq.run();
    // Write: data down, completion header up.
    EXPECT_EQ(dev.bytesDown(), p.link.dataBytes);
    EXPECT_EQ(dev.bytesUp(), p.link.headerBytes);
}

TEST(FairWaitQueue, RoundRobinsAcrossSources)
{
    FairWaitQueue q;
    auto push = [&](std::uint16_t src, Addr addr) {
        MemRequest r;
        r.addr = addr;
        r.source = src;
        q.push(std::move(r), 0);
    };
    // Source 0 floods; source 1 sends one request.
    for (int i = 0; i < 8; ++i)
        push(0, static_cast<Addr>(i));
    push(1, 1000);
    std::vector<Addr> order;
    while (!q.empty())
        order.push_back(q.pop().first.addr);
    ASSERT_EQ(order.size(), 9u);
    // Source 1's single request must be served within the first two
    // pops, not after source 0's entire backlog.
    EXPECT_TRUE(order[0] == 1000 || order[1] == 1000);
}

TEST(FairWaitQueue, FifoWithinOneSource)
{
    FairWaitQueue q;
    for (int i = 0; i < 4; ++i) {
        MemRequest r;
        r.addr = static_cast<Addr>(i);
        r.source = 5;
        q.push(std::move(r), 0);
    }
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(q.pop().first.addr, static_cast<Addr>(i));
}

} // namespace
} // namespace cxlmemo
