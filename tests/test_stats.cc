/**
 * @file
 * Tests for the statistics containers.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace cxlmemo
{
namespace
{

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, TracksMinMeanMax)
{
    RunningStats s;
    for (double v : {4.0, 1.0, 7.0, 2.0})
        s.record(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(SampleSeries, ExactPercentiles)
{
    SampleSeries s;
    for (int i = 1; i <= 100; ++i)
        s.record(i);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(SampleSeries, NearestRankOnSmallSets)
{
    SampleSeries s;
    s.record(10.0);
    s.record(20.0);
    s.record(30.0);
    // nearest-rank: p99 of 3 samples = ceil(0.99*3)=3rd -> 30.
    EXPECT_DOUBLE_EQ(s.p99(), 30.0);
    EXPECT_DOUBLE_EQ(s.p50(), 20.0);
}

TEST(SampleSeries, UnsortedInputHandled)
{
    SampleSeries s;
    for (double v : {5.0, 1.0, 3.0, 2.0, 4.0})
        s.record(v);
    EXPECT_DOUBLE_EQ(s.percentile(20), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(SampleSeries, EmptyReportsZeroNotNan)
{
    // Stats and CSV emitters run unconditionally, including for runs
    // that retired no requests; an empty series must report clean
    // zeros rather than asserting or dividing by zero.
    SampleSeries s;
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(s.p99(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

} // namespace
} // namespace cxlmemo
