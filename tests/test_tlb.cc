/**
 * @file
 * Tests for the optional DTLB model.
 */

#include <gtest/gtest.h>

#include "cpu/streams.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace
{

MachineOptions
withTlb()
{
    MachineOptions o;
    o.tlbEnabled = true;
    return o;
}

TEST(Tlb, DisabledByDefaultAndFree)
{
    Machine m(Testbed::SingleSocketCxl);
    NumaBuffer buf = m.numa().alloc(16 * miB,
                                    MemPolicy::membind(m.localNode()));
    m.caches().load(0, buf.translate(0), 0, [](Tick) {});
    m.eq().run();
    EXPECT_EQ(m.caches().tlbWalks(), 0u);
}

TEST(Tlb, FirstTouchWalksThenHits)
{
    Machine m(Testbed::SingleSocketCxl, withTlb());
    NumaBuffer buf = m.numa().alloc(16 * miB,
                                    MemPolicy::membind(m.localNode()));
    Tick first = 0;
    m.caches().load(0, buf.translate(0), 0, [&](Tick t) { first = t; });
    m.eq().run();
    EXPECT_EQ(m.caches().tlbWalks(), 1u);

    // Same page, different line: no second walk, and faster.
    const Tick t0 = m.eq().curTick();
    Tick second = 0;
    m.caches().load(0, buf.translate(128), t0,
                    [&](Tick t) { second = t; });
    m.eq().run();
    EXPECT_EQ(m.caches().tlbWalks(), 1u);
    EXPECT_LT(second - t0, first);
}

TEST(Tlb, WalkAddsConfiguredLatency)
{
    Machine plain(Testbed::SingleSocketCxl);
    Machine tlbm(Testbed::SingleSocketCxl, withTlb());
    NumaBuffer a = plain.numa().alloc(
        1 * miB, MemPolicy::membind(plain.localNode()));
    NumaBuffer b = tlbm.numa().alloc(
        1 * miB, MemPolicy::membind(tlbm.localNode()));

    Tick done_plain = 0;
    plain.caches().load(0, a.translate(0), 0,
                        [&](Tick t) { done_plain = t; });
    plain.eq().run();
    Tick done_tlb = 0;
    tlbm.caches().load(0, b.translate(0), 0,
                       [&](Tick t) { done_tlb = t; });
    tlbm.eq().run();
    EXPECT_EQ(done_tlb - done_plain,
              tlbm.caches().params().pageWalkLatency);
}

TEST(Tlb, StlbHitIsCheaperThanWalk)
{
    Machine m(Testbed::SingleSocketCxl, withTlb());
    const auto &p = m.caches().params();
    NumaBuffer buf = m.numa().alloc(
        64 * miB, MemPolicy::membind(m.localNode()));
    // Touch enough pages to overflow the 64-entry L1 TLB but not the
    // 1536-entry STLB, then revisit the first page.
    for (int pg = 0; pg < 512; ++pg) {
        m.caches().load(0, buf.translate(std::uint64_t(pg) * pageBytes),
                        m.eq().curTick(), nullptr);
        m.eq().run();
    }
    const std::uint64_t walks = m.caches().tlbWalks();
    m.caches().load(0, buf.translate(64), m.eq().curTick(), nullptr);
    m.eq().run();
    EXPECT_EQ(m.caches().tlbWalks(), walks); // no new walk
    EXPECT_GT(m.caches().stlbHits(), 0u);
    (void)p;
}

TEST(Tlb, PerCoreIsolation)
{
    Machine m(Testbed::SingleSocketCxl, withTlb());
    NumaBuffer buf = m.numa().alloc(
        1 * miB, MemPolicy::membind(m.localNode()));
    m.caches().load(0, buf.translate(0), 0, nullptr);
    m.eq().run();
    EXPECT_EQ(m.caches().tlbWalks(), 1u);
    // Core 1 has its own TLB: same page walks again.
    m.caches().load(1, buf.translate(0), m.eq().curTick(), nullptr);
    m.eq().run();
    EXPECT_EQ(m.caches().tlbWalks(), 2u);
}

TEST(Tlb, SlowsSmallRandomBlocks)
{
    auto bandwidth = [](bool tlb) {
        MachineOptions o;
        o.tlbEnabled = tlb;
        Machine m(Testbed::SingleSocketCxl, o);
        NumaBuffer buf = m.numa().alloc(
            256 * miB, MemPolicy::membind(m.localNode()));
        auto t = m.makeThread(0);
        t->start(std::make_unique<RandomBlockStream>(
                     buf, 0, 256 * miB, std::uint64_t(1) << 40, 1 * kiB,
                     MemOp::Kind::Load, false, 3),
                 0, nullptr);
        m.eq().runUntil(ticksFromUs(80.0));
        return static_cast<double>(t->stats().bytesRead);
    };
    EXPECT_LT(bandwidth(true), bandwidth(false));
}

} // namespace
} // namespace cxlmemo
