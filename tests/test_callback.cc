/**
 * @file
 * Unit tests for InlineCallback: inline vs heap storage selection,
 * move semantics, lifetime of captured state, empty/rebind behavior.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "sim/callback.hh"

namespace cxlmemo
{
namespace
{

TEST(InlineCallback, DefaultConstructedIsEmpty)
{
    InlineCallback<void()> cb;
    EXPECT_FALSE(cb);
    EXPECT_TRUE(cb == nullptr);
    EXPECT_TRUE(cb.storedInline());
}

TEST(InlineCallback, NullptrConstructedIsEmpty)
{
    InlineCallback<int(int)> cb = nullptr;
    EXPECT_FALSE(cb);
}

TEST(InlineCallback, InvokesWithArgumentsAndReturn)
{
    InlineCallback<int(int, int)> add = [](int a, int b) {
        return a + b;
    };
    EXPECT_TRUE(add);
    EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineCallback, SmallCaptureIsStoredInline)
{
    int x = 41;
    InlineCallback<int()> cb = [x] { return x + 1; };
    EXPECT_TRUE(cb.storedInline());
    EXPECT_EQ(cb(), 42);
}

TEST(InlineCallback, CaptureAtExactlyInlineLimitIsInline)
{
    // 48 bytes of capture == the default inline capacity.
    std::array<char, 48> blob{};
    blob[0] = 7;
    blob[47] = 9;
    InlineCallback<int()> cb = [blob] { return blob[0] + blob[47]; };
    static_assert(sizeof(blob) == InlineCallback<int()>::inlineBytes);
    EXPECT_TRUE(cb.storedInline());
    EXPECT_EQ(cb(), 16);
}

TEST(InlineCallback, OversizedCaptureFallsBackToHeap)
{
    std::array<char, 64> blob{};
    blob[63] = 5;
    InlineCallback<int()> cb = [blob] { return blob[63]; };
    EXPECT_FALSE(cb.storedInline());
    EXPECT_EQ(cb(), 5);
}

TEST(InlineCallback, CustomInlineCapacityIsHonored)
{
    std::array<char, 64> blob{};
    blob[1] = 3;
    InlineCallback<int(), 64> cb = [blob] { return blob[1]; };
    EXPECT_TRUE(cb.storedInline());
    EXPECT_EQ(cb(), 3);
}

TEST(InlineCallback, MoveTransfersOwnershipAndEmptiesSource)
{
    int calls = 0;
    InlineCallback<void()> a = [&calls] { ++calls; };
    InlineCallback<void()> b = std::move(a);
    EXPECT_FALSE(a); // NOLINT: testing the moved-from contract
    EXPECT_TRUE(b);
    b();
    EXPECT_EQ(calls, 1);
}

TEST(InlineCallback, MoveAssignReplacesExistingTarget)
{
    int first = 0;
    int second = 0;
    InlineCallback<void()> cb = [&first] { ++first; };
    cb = [&second] { ++second; };
    cb();
    EXPECT_EQ(first, 0);
    EXPECT_EQ(second, 1);
}

TEST(InlineCallback, MovePreservesNonTrivialCapturedState)
{
    // A vector capture is non-trivially-copyable: moving the wrapper
    // must relocate (not bitwise-copy) the capture.
    std::vector<int> data = {1, 2, 3, 4};
    InlineCallback<int()> a = [data = std::move(data)] {
        int sum = 0;
        for (int v : data)
            sum += v;
        return sum;
    };
    InlineCallback<int()> b = std::move(a);
    InlineCallback<int()> c;
    c = std::move(b);
    EXPECT_EQ(c(), 10);
}

TEST(InlineCallback, MoveOnlyCapturesAreSupported)
{
    auto p = std::make_unique<int>(99);
    InlineCallback<int()> cb = [p = std::move(p)] { return *p; };
    InlineCallback<int()> moved = std::move(cb);
    EXPECT_EQ(moved(), 99);
}

TEST(InlineCallback, HeapStoredMoveStealsThePointer)
{
    std::array<char, 200> blob{};
    blob[100] = 11;
    InlineCallback<int()> a = [blob] { return blob[100]; };
    ASSERT_FALSE(a.storedInline());
    InlineCallback<int()> b = std::move(a);
    EXPECT_FALSE(a); // NOLINT: testing the moved-from contract
    EXPECT_EQ(b(), 11);
}

TEST(InlineCallback, DestructorReleasesCapturedResources)
{
    auto counter = std::make_shared<int>(0);
    {
        InlineCallback<void()> cb = [counter] { (void)counter; };
        EXPECT_EQ(counter.use_count(), 2);
    }
    EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineCallback, ResetViaNullptrReleasesResources)
{
    auto counter = std::make_shared<int>(0);
    InlineCallback<void()> cb = [counter] { (void)counter; };
    EXPECT_EQ(counter.use_count(), 2);
    cb = nullptr;
    EXPECT_FALSE(cb);
    EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineCallback, HeapCaptureDestructorReleasesResources)
{
    auto counter = std::make_shared<int>(0);
    std::array<char, 128> pad{};
    {
        InlineCallback<void()> cb = [counter, pad] { (void)pad; };
        ASSERT_FALSE(cb.storedInline());
        EXPECT_EQ(counter.use_count(), 2);
    }
    EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineCallback, RebindAfterMoveOut)
{
    int calls = 0;
    InlineCallback<void()> a = [&calls] { ++calls; };
    InlineCallback<void()> b = std::move(a);
    a = [&calls] { calls += 10; }; // moved-from object is reusable
    a();
    b();
    EXPECT_EQ(calls, 11);
}

TEST(InlineCallback, SwapExchangesTargets)
{
    InlineCallback<int()> a = [] { return 1; };
    InlineCallback<int()> b = [] { return 2; };
    a.swap(b);
    EXPECT_EQ(a(), 2);
    EXPECT_EQ(b(), 1);
}

TEST(InlineCallback, ArgumentsArePerfectlyForwarded)
{
    InlineCallback<std::size_t(std::vector<int> &&)> cb =
        [](std::vector<int> &&v) {
            std::vector<int> taken = std::move(v);
            return taken.size();
        };
    std::vector<int> v = {1, 2, 3};
    EXPECT_EQ(cb(std::move(v)), 3u);
}

TEST(InlineCallback, FunctionPointersWork)
{
    InlineCallback<int(int)> cb = +[](int x) { return x * 2; };
    EXPECT_TRUE(cb.storedInline());
    EXPECT_EQ(cb(21), 42);
}

TEST(InlineCallbackDeathTest, InvokingEmptyAsserts)
{
    InlineCallback<void()> cb;
    EXPECT_DEATH(cb(), "empty InlineCallback");
}

} // namespace
} // namespace cxlmemo
