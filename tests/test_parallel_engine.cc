/**
 * @file
 * Tests for the conservative parallel executor: window/lookahead
 * semantics, cross-domain determinism at every thread count, delivery
 * flooring, fences, and run-limit behaviour.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "memo/memo.hh"
#include "sim/attribution.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/parallel.hh"
#include "sim/qos.hh"
#include "sim/rng.hh"
#include "sim/types.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace
{

constexpr Tick kLookahead = ticksFromNs(10);

/** A rank-ordered set of domains logging (tick, domain, tag) into
 *  per-domain journals (no shared mutable state across threads). */
struct Rig
{
    explicit Rig(std::uint32_t numDomains)
        : queues(numDomains), journal(numDomains)
    {
        for (auto &q : queues)
            ptrs.push_back(&q);
    }

    /** The full execution trace, concatenated in rank order. */
    std::string
    trace() const
    {
        std::string out;
        for (std::uint32_t d = 0; d < journal.size(); ++d)
            for (const auto &line : journal[d])
                out += std::to_string(d) + ":" + line + "\n";
        return out;
    }

    void
    log(std::uint32_t domain, Tick at, const std::string &tag)
    {
        journal[domain].push_back(std::to_string(at) + ":" + tag);
    }

    std::vector<EventQueue> queues;
    std::vector<std::vector<std::string>> journal;
    std::vector<EventQueue *> ptrs;
};

TEST(ParallelEngine, RejectsDegenerateConfigurations)
{
    EventQueue eq;
    EXPECT_THROW(ParallelExecutor({}, kLookahead, 1),
                 std::invalid_argument);
    EXPECT_THROW(ParallelExecutor({&eq}, 0, 1), std::invalid_argument);
    EXPECT_THROW(ParallelExecutor({&eq, nullptr}, kLookahead, 1),
                 std::invalid_argument);
}

TEST(ParallelEngine, SingleDomainMatchesPlainRun)
{
    Rig rig(1);
    ParallelExecutor ex(rig.ptrs, kLookahead, 1);
    for (Tick t : {Tick(5), ticksFromNs(7), ticksFromUs(3)})
        rig.queues[0].schedule(t, [&rig, t] { rig.log(0, t, "e"); });
    EXPECT_TRUE(ex.run());
    EXPECT_EQ(rig.queues[0].eventsExecuted(), 3u);
    EXPECT_EQ(ex.curTick(), ticksFromUs(3));
    // Idle-skip: far gaps must not cost one window per lookahead.
    EXPECT_LT(ex.windows(), 20u);
}

TEST(ParallelEngine, CrossDomainPingPongKeepsLatency)
{
    // Two domains exchange a message with latency 2L; delivery ticks
    // must be exactly when requested (no flooring on genuine paths).
    Rig rig(2);
    ParallelExecutor ex(rig.ptrs, kLookahead, 2);
    const Tick lat = 2 * kLookahead;
    int hops = 0;
    std::function<void(std::uint32_t, Tick)> hop =
        [&](std::uint32_t at_domain, Tick when) {
            rig.log(at_domain, when, "hop");
            if (++hops >= 8)
                return;
            const std::uint32_t next = 1 - at_domain;
            ex.post(at_domain, next, when + lat,
                    [&hop, next](Tick t) { hop(next, t); });
        };
    rig.queues[0].schedule(ticksFromNs(1), [&] {
        hop(0, rig.queues[0].curTick());
    });
    EXPECT_TRUE(ex.run());
    EXPECT_EQ(hops, 8);
    EXPECT_EQ(ex.clampedPosts(), 0u);
    EXPECT_EQ(ex.crossPosts(), 7u);
    // Hop k lands at 1ns + k * 2L, alternating domains.
    for (int k = 0; k < 8; ++k) {
        const Tick at = ticksFromNs(1) + k * lat;
        EXPECT_EQ(rig.journal[k % 2][k / 2],
                  std::to_string(at) + ":hop");
    }
}

TEST(ParallelEngine, ShortPathsAreFlooredDeterministically)
{
    // A 1-tick cross-domain path is shorter than the lookahead; the
    // executor must floor it at the window end and count the clamp.
    Rig rig(2);
    ParallelExecutor ex(rig.ptrs, kLookahead, 2);
    Tick delivered = 0;
    rig.queues[0].schedule(ticksFromNs(2), [&] {
        ex.post(0, 1, ticksFromNs(2) + 1,
                [&](Tick t) { delivered = t; });
    });
    EXPECT_TRUE(ex.run());
    EXPECT_EQ(ex.clampedPosts(), 1u);
    // The posting window starts at the first event tick (2 ns).
    EXPECT_EQ(delivered, ticksFromNs(2) + kLookahead);
}

std::string
randomWorkloadTrace(std::uint32_t threads, std::uint64_t *windows = nullptr)
{
    // Four domains, each running a self-rescheduling chain that posts
    // randomized cross-domain messages with latency >= L. Domain-local
    // RNGs keep the workload itself deterministic.
    constexpr std::uint32_t D = 4;
    Rig rig(D);
    ParallelExecutor ex(rig.ptrs, kLookahead, threads);
    std::vector<Rng> rng;
    for (std::uint32_t d = 0; d < D; ++d)
        rng.emplace_back(1000 + d);

    std::function<void(std::uint32_t, int)> step =
        [&](std::uint32_t d, int n) {
            const Tick now = rig.queues[d].curTick();
            rig.log(d, now, "step" + std::to_string(n));
            if (n >= 40)
                return;
            // Local follow-up inside the current window.
            rig.queues[d].scheduleIn(rng[d].below(kLookahead), [&rig, d] {
                rig.log(d, rig.queues[d].curTick(), "local");
            });
            const std::uint32_t dst = rng[d].below(D);
            const Tick lat = kLookahead + rng[d].below(3 * kLookahead);
            ex.post(d, dst, now + lat, [&step, dst, n](Tick) {
                step(dst, n + 1);
            });
        };
    for (std::uint32_t d = 0; d < D; ++d)
        rig.queues[d].schedule(ticksFromNs(1 + d), [&step, d] {
            step(d, 0);
        });
    EXPECT_TRUE(ex.run());
    EXPECT_EQ(ex.clampedPosts(), 0u);
    if (windows)
        *windows = ex.windows();
    return rig.trace();
}

TEST(ParallelEngine, RandomWorkloadIsIdenticalAtEveryThreadCount)
{
    std::uint64_t windows1 = 0;
    const std::string ref = randomWorkloadTrace(1, &windows1);
    EXPECT_FALSE(ref.empty());
    for (std::uint32_t threads : {2u, 3u, 4u, 8u}) {
        std::uint64_t windowsN = 0;
        EXPECT_EQ(randomWorkloadTrace(threads, &windowsN), ref)
            << "trace diverged at threads=" << threads;
        // The window schedule itself must be thread-count invariant.
        EXPECT_EQ(windowsN, windows1) << "at threads=" << threads;
    }
}

TEST(ParallelEngine, SameTickCrossPostsMergeInRankOrder)
{
    // Three domains post to domain 0 at the same tick within the same
    // window; delivery order must be source rank, then post order --
    // regardless of which worker finishes first.
    for (std::uint32_t threads : {1u, 4u}) {
        Rig rig(4);
        ParallelExecutor ex(rig.ptrs, kLookahead, threads);
        const Tick when = ticksFromNs(2) + 2 * kLookahead;
        for (std::uint32_t d = 1; d < 4; ++d) {
            rig.queues[d].schedule(ticksFromNs(2), [&, d] {
                for (int i = 0; i < 2; ++i)
                    ex.post(d, 0, when, [&rig, d, i](Tick t) {
                        rig.log(0, t,
                                "from" + std::to_string(d)
                                    + "." + std::to_string(i));
                    });
            });
        }
        EXPECT_TRUE(ex.run());
        std::vector<std::string> want;
        for (std::uint32_t d = 1; d < 4; ++d)
            for (int i = 0; i < 2; ++i)
                want.push_back(std::to_string(when) + ":from"
                               + std::to_string(d) + "."
                               + std::to_string(i));
        EXPECT_EQ(rig.journal[0], want);
    }
}

TEST(ParallelEngine, FencesSeeAllDomainsQuiesced)
{
    // Each domain bumps a private counter on a dense event chain; a
    // fence at F reads all counters. The conservative guarantee makes
    // the observed sum exact: every event before F has executed, none
    // at or after F has.
    for (std::uint32_t threads : {1u, 4u}) {
        constexpr std::uint32_t D = 4;
        Rig rig(D);
        ParallelExecutor ex(rig.ptrs, kLookahead, threads);
        std::vector<std::uint64_t> count(D, 0);
        for (std::uint32_t d = 0; d < D; ++d) {
            // One event per ns for 100 ns.
            for (Tick t = 1; t <= 100; ++t)
                rig.queues[d].schedule(ticksFromNs(t),
                                       [&count, d] { ++count[d]; });
        }
        const Tick fence = ticksFromNs(50) + 1; // between events
        std::uint64_t seen = 0;
        rig.queues[0].schedule(fence, [&] {
            for (std::uint32_t d = 0; d < D; ++d)
                seen += count[d];
        });
        ex.addFence(fence);
        EXPECT_TRUE(ex.run());
        EXPECT_EQ(seen, 50u * D);
        for (std::uint32_t d = 0; d < D; ++d)
            EXPECT_EQ(count[d], 100u);
    }
}

TEST(ParallelEngine, PendingCountsStagedCrossPosts)
{
    // A cross-domain message staged in an outbox but not yet
    // delivered is still pending work. A watchdog that samples
    // pending() between windows must not mistake "every queue
    // drained, message parked in an outbox" for a deadlock -- that
    // is exactly the cluster's crash-fencing window, where a host's
    // last completions are in flight across the fabric boundary.
    Rig rig(2);
    ParallelExecutor ex(rig.ptrs, kLookahead, 2);
    std::size_t pendingAtStage = 0;
    rig.queues[0].schedule(ticksFromNs(1), [&] {
        ex.post(0, 1, ticksFromNs(1) + 3 * kLookahead,
                [&rig](Tick t) { rig.log(1, t, "delivered"); });
        // The sending domain's own queue is empty and the target
        // queue has not seen the message yet; only the outbox knows.
        pendingAtStage = ex.pending();
    });
    EXPECT_TRUE(ex.run());
    EXPECT_GE(pendingAtStage, 1u);
    EXPECT_EQ(rig.journal[1].size(), 1u);
    EXPECT_EQ(ex.pending(), 0u);
}

TEST(ParallelEngine, RunLimitIsInclusiveAndResumable)
{
    Rig rig(2);
    ParallelExecutor ex(rig.ptrs, kLookahead, 2);
    std::vector<int> fired;
    rig.queues[0].schedule(ticksFromNs(5), [&] { fired.push_back(1); });
    rig.queues[1].schedule(ticksFromNs(20), [&] { fired.push_back(2); });
    rig.queues[0].schedule(ticksFromNs(20) + 1,
                           [&] { fired.push_back(3); });
    EXPECT_FALSE(ex.run(ticksFromNs(20)));
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    EXPECT_EQ(ex.curTick(), ticksFromNs(20));
    EXPECT_EQ(rig.queues[0].curTick(), rig.queues[1].curTick());
    EXPECT_TRUE(ex.run());
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelEngine, ManyDomainsFewThreads)
{
    // More domains than workers: round-robin assignment must still
    // execute everything exactly once.
    Rig rig(13);
    ParallelExecutor ex(rig.ptrs, kLookahead, 3);
    std::uint64_t total = 0;
    std::vector<std::uint64_t> hits(13, 0);
    for (std::uint32_t d = 0; d < 13; ++d)
        for (int i = 0; i < 25; ++i)
            rig.queues[d].schedule(ticksFromNs(1 + i * 3),
                                   [&hits, d] { ++hits[d]; });
    EXPECT_TRUE(ex.run());
    for (std::uint32_t d = 0; d < 13; ++d)
        total += hits[d];
    EXPECT_EQ(total, 13u * 25u);
}

/* ------------------- Machine-level determinism ------------------- */

/** Short windows keep whole-machine runs test-sized. */
memo::Options
parOpts(std::uint32_t simThreads)
{
    memo::Options o;
    o.warmupUs = 20.0;
    o.measureUs = 60.0;
    o.simThreads = simThreads;
    return o;
}

/** Full machine stats dump for one sweep point at @p simThreads. */
struct PointDump
{
    double gbps = 0.0;
    std::string stats;
};

TEST(MachineParallel, Fig3PointIsByteIdenticalAtEveryThreadCount)
{
    PointDump ref;
    for (std::uint32_t st : {1u, 2u, 8u, 32u}) {
        memo::Options o = parOpts(st);
        PointDump d;
        o.onMachineDone = [&d](Machine &m) { d.stats = m.statsString(); };
        d.gbps = memo::runSeqBandwidth(memo::Target::Cxl,
                                       MemOp::Kind::Load, 4, o);
        ASSERT_FALSE(d.stats.empty()) << st << " sim-threads";
        EXPECT_NE(d.stats.find("engine: domains"), std::string::npos);
        if (st == 1) {
            ref = d;
            continue;
        }
        EXPECT_EQ(d.stats, ref.stats) << st << " sim-threads";
        EXPECT_EQ(d.gbps, ref.gbps) << st << " sim-threads";
    }
}

TEST(MachineParallel, RemoteSocketPathIsThreadCountInvariant)
{
    PointDump ref;
    for (std::uint32_t st : {1u, 8u}) {
        memo::Options o = parOpts(st);
        PointDump d;
        o.onMachineDone = [&d](Machine &m) { d.stats = m.statsString(); };
        d.gbps = memo::runSeqBandwidth(memo::Target::Ddr5Remote,
                                       MemOp::Kind::Load, 4, o);
        if (st == 1) {
            ref = d;
            continue;
        }
        EXPECT_EQ(d.stats, ref.stats) << st << " sim-threads";
        EXPECT_EQ(d.gbps, ref.gbps) << st << " sim-threads";
    }
}

TEST(MachineParallel, FaultStreamIsThreadCountInvariant)
{
    std::string err;
    const auto fs = FaultSpec::parse(
        "crc=1e-4,timeout=1e-5,poison=2e-3,seed=7", err);
    ASSERT_TRUE(fs.has_value()) << err;

    PointDump ref;
    RasStats refRas;
    for (std::uint32_t st : {1u, 8u, 32u}) {
        memo::Options o = parOpts(st);
        o.faults = *fs;
        PointDump d;
        o.onMachineDone = [&d](Machine &m) { d.stats = m.statsString(); };
        RasStats rs;
        d.gbps = memo::runRandBandwidth(memo::Target::Cxl,
                                        MemOp::Kind::Load, 8, 16 * kiB,
                                        o, &rs);
        if (st == 1) {
            ref = d;
            refRas = rs;
            // The point of this configuration is an *active* fault
            // stream: no events would mean vacuous invariance.
            EXPECT_GT(rs.crcErrors, 0u);
            EXPECT_GT(rs.poisonInjected, 0u);
            continue;
        }
        EXPECT_EQ(d.stats, ref.stats) << st << " sim-threads";
        EXPECT_EQ(d.gbps, ref.gbps) << st << " sim-threads";
        EXPECT_EQ(rs.crcErrors, refRas.crcErrors) << st;
        EXPECT_EQ(rs.poisonInjected, refRas.poisonInjected) << st;
        EXPECT_EQ(rs.poisonDelivered, refRas.poisonDelivered) << st;
    }
}

TEST(MachineParallel, QosThrottleIsThreadCountInvariant)
{
    std::string err;
    const auto qs = QosSpec::parse("credits=24,policy=aimd", err);
    ASSERT_TRUE(qs.has_value()) << err;

    PointDump ref;
    for (std::uint32_t st : {1u, 8u}) {
        memo::Options o = parOpts(st);
        o.qos = *qs;
        PointDump d;
        QosStats q;
        o.onMachineDone = [&d](Machine &m) { d.stats = m.statsString(); };
        d.gbps = memo::runSeqBandwidth(memo::Target::Cxl,
                                       MemOp::Kind::NtStore, 16, o,
                                       nullptr, &q);
        EXPECT_TRUE(q.ledgerOk) << st << " sim-threads";
        if (st == 1) {
            ref = d;
            continue;
        }
        EXPECT_EQ(d.stats, ref.stats) << st << " sim-threads";
        EXPECT_EQ(d.gbps, ref.gbps) << st << " sim-threads";
    }
}

TEST(MachineParallel, AttributionShardsMergeExactly)
{
    memo::Options o = parOpts(8);
    o.obs.attribution = true;
    AttribSnapshot snap;
    bool seen = false;
    o.onMachineDone = [&](Machine &m) {
        ASSERT_NE(m.attribution(), nullptr);
        snap.merge(m.attribSnapshot());
        seen = true;
    };
    memo::runSeqBandwidth(memo::Target::Cxl, MemOp::Kind::Load, 8, o);
    ASSERT_TRUE(seen);
    EXPECT_GT(snap.reqCount, 100u);
    EXPECT_TRUE(snap.decompositionExact());
    EXPECT_EQ(snap.stackTicks() + snap.otherTicks(), snap.totalTicks);
}

TEST(MachineParallel, MetricsConservationAtEightSimThreads)
{
    memo::Options o = parOpts(8);
    o.obs.metricsInterval = ticksFromNs(500.0);
    std::string rows;
    o.onMachineDone = [&rows](Machine &m) {
        m.flushMetrics();
        rows = m.metrics()->rows();
    };
    memo::runSeqBandwidth(memo::Target::Cxl, MemOp::Kind::Load, 4, o);
    ASSERT_FALSE(rows.empty());

    // Every counter's interval deltas must sum to its final total --
    // the interval sampler runs at executor fences, so a shard update
    // slipping past a snapshot would break this.
    std::map<std::string, std::uint64_t> delta, total;
    std::istringstream is(rows);
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string t, name, kind, value;
        std::getline(ls, t, ',');
        std::getline(ls, name, ',');
        std::getline(ls, kind, ',');
        std::getline(ls, value, ',');
        if (kind == "delta")
            delta[name] += std::stoull(value);
        else if (kind == "total")
            total[name] = std::stoull(value);
    }
    ASSERT_FALSE(total.empty());
    for (const auto &[name, tot] : total)
        EXPECT_EQ(delta[name], tot) << "metric " << name;
    EXPECT_GT(delta.at("sim.windows"), 0u);
    EXPECT_GT(delta.at("sim.cross_posts"), 0u);
    EXPECT_EQ(delta.at("sim.clamped_posts"), 0u);
}

TEST(MachineParallel, ChaosScheduleIsThreadCountInvariant)
{
    // The full failure lifecycle -- link down/retrain/step-up, device
    // hot-remove/re-add and poison-driven page offlining -- must be
    // byte-identical at every parallel thread count: all chaos events
    // fire on the device's own domain queue, and host-side reactions
    // are scheduled at statically-known ticks.
    memo::Options base = parOpts(1);
    base.chaos.linkDownAtNs = 25000;
    base.chaos.removeAtNs = 45000;
    base.chaos.readdAtNs = 55000;
    base.chaos.offlineThreshold = 2;
    base.faults.readPoisonRate = 0.01;
    base.faults.seed = 5;

    PointDump ref;
    for (std::uint32_t st : {1u, 2u, 8u}) {
        memo::Options o = base;
        o.simThreads = st;
        PointDump d;
        o.onMachineDone = [&d](Machine &m) {
            // statsString includes the chaos summary line, so the
            // comparison covers every lifecycle counter.
            d.stats = m.statsString();
        };
        d.gbps = memo::runSeqBandwidth(memo::Target::Cxl,
                                       MemOp::Kind::Load, 4, o);
        ASSERT_NE(d.stats.find("chaos:"), std::string::npos);
        if (st == 1) {
            ref = d;
            // The schedule must actually have fired -- invariance of
            // a no-op run would be vacuous.
            EXPECT_NE(d.stats.find("link-downs=1"), std::string::npos);
            EXPECT_NE(d.stats.find("removals=1"), std::string::npos);
            continue;
        }
        EXPECT_EQ(d.stats, ref.stats) << st << " sim-threads";
        EXPECT_EQ(d.gbps, ref.gbps) << st << " sim-threads";
    }
}

TEST(MachineParallel, ChaosEventsCrossToWatchdogAtFences)
{
    // Lifecycle announcements originate in the device domain and are
    // relayed to the host-side watchdog via cross-posts; the recorded
    // event log must be identical at every thread count, and a chaos
    // event landing mid-run must appear in the watchdog's snapshot
    // state without tripping it.
    std::vector<std::string> ref;
    for (std::uint32_t st : {1u, 2u, 8u}) {
        memo::Options o = parOpts(st);
        o.chaos.linkDownAtNs = 25000;
        o.chaos.removeAtNs = 45000;
        o.chaos.readdAtNs = 55000;
        o.watchdogUs = 30.0; // several snapshot fences during the run
        std::vector<std::string> events;
        bool tripped = true;
        o.onMachineDone = [&](Machine &m) {
            ASSERT_NE(m.watchdog(), nullptr);
            events = m.watchdog()->events();
            tripped = m.watchdog()->tripped();
        };
        memo::runSeqBandwidth(memo::Target::Cxl, MemOp::Kind::Load, 2,
                              o);
        ASSERT_FALSE(events.empty()) << st << " sim-threads";
        EXPECT_FALSE(tripped) << st << " sim-threads";
        auto contains = [&events](const char *needle) {
            for (const std::string &e : events)
                if (e.find(needle) != std::string::npos)
                    return true;
            return false;
        };
        EXPECT_TRUE(contains("link DOWN")) << st;
        EXPECT_TRUE(contains("hot-remove")) << st;
        EXPECT_TRUE(contains("re-add")) << st;
        if (st == 1) {
            ref = events;
            continue;
        }
        EXPECT_EQ(events, ref) << st << " sim-threads";
    }
}

TEST(MachineParallel, TracingIsRejectedInParallelMode)
{
    memo::Options o = parOpts(2);
    o.obs.traceSampleEvery = 16;
    EXPECT_THROW(memo::runSeqBandwidth(memo::Target::Cxl,
                                       MemOp::Kind::Load, 1, o),
                 std::invalid_argument);
}

} // namespace
} // namespace cxlmemo
