/**
 * @file
 * Tests for the overload-control machinery: QosSpec parsing, credit
 * pools and their ledger invariants, the DevLoad meter and AIMD host
 * throttle, the forward-progress watchdog, and the end-to-end
 * behaviour of a credit-capped CXL device (including determinism of
 * throttled sweeps across --jobs).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cxl/device.hh"
#include "memo/memo.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/qos.hh"
#include "sim/stats.hh"
#include "sim/sweep.hh"
#include "sim/watchdog.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace
{

/* ------------------------------ spec ------------------------------ */

TEST(QosSpec, DefaultIsDisabled)
{
    QosSpec s;
    EXPECT_FALSE(s.enabled());
    EXPECT_FALSE(s.creditsEnabled());
    s.validate(); // must not throw
}

TEST(QosSpec, ParseRoundTrip)
{
    std::string err;
    const auto s = QosSpec::parse(
        "credits=24,policy=aimd,floor=0.01,burst=12", err);
    ASSERT_TRUE(s.has_value()) << err;
    EXPECT_EQ(s->rdCredits, 24u);
    EXPECT_EQ(s->wrCredits, 24u);
    EXPECT_EQ(s->policy, QosPolicy::Aimd);
    EXPECT_DOUBLE_EQ(s->floor, 0.01);
    EXPECT_EQ(s->burstLines, 12u);
    EXPECT_TRUE(s->enabled());
    EXPECT_TRUE(s->creditsEnabled());
}

TEST(QosSpec, ParsePerDirectionCredits)
{
    std::string err;
    const auto s = QosSpec::parse("rd-credits=8,wr-credits=40", err);
    ASSERT_TRUE(s.has_value()) << err;
    EXPECT_EQ(s->rdCredits, 8u);
    EXPECT_EQ(s->wrCredits, 40u);
    EXPECT_EQ(s->policy, QosPolicy::None);
}

TEST(QosSpec, ParseRejectsGarbage)
{
    std::string err;
    EXPECT_FALSE(QosSpec::parse("credits=abc", err).has_value());
    EXPECT_FALSE(QosSpec::parse("policy=banana", err).has_value());
    EXPECT_FALSE(QosSpec::parse("nonsense=1", err).has_value());
    EXPECT_FALSE(QosSpec::parse("credits=5000", err).has_value());
    EXPECT_FALSE(QosSpec::parse("policy=aimd,md=1.5", err).has_value());
    EXPECT_FALSE(err.empty());
}

/* -------------------------- credit pool --------------------------- */

TEST(CreditPool, ExhaustionAndReturn)
{
    CreditPool pool(2);
    EXPECT_TRUE(pool.tryAcquire());
    EXPECT_TRUE(pool.tryAcquire());
    EXPECT_EQ(pool.inFlight(), 2u);
    // Dry: the failed acquire counts a stall and issues nothing.
    EXPECT_FALSE(pool.tryAcquire());
    EXPECT_EQ(pool.stalls(), 1u);
    EXPECT_EQ(pool.issued(), 2u);
    EXPECT_TRUE(pool.ledgerOk());

    pool.release();
    EXPECT_EQ(pool.returned(), 1u);
    EXPECT_EQ(pool.inFlight(), 1u);
    EXPECT_TRUE(pool.tryAcquire());
    EXPECT_TRUE(pool.ledgerOk());
}

TEST(CreditPool, LedgerSurvivesStatsResetMidFlight)
{
    CreditPool pool(4);
    ASSERT_TRUE(pool.tryAcquire());
    ASSERT_TRUE(pool.tryAcquire());
    pool.resetStats();
    // Stats zeroed, but the two outstanding credits are still owed:
    // issued restarts at in-flight so the ledger still balances.
    EXPECT_EQ(pool.inFlight(), 2u);
    EXPECT_EQ(pool.returned(), 0u);
    EXPECT_TRUE(pool.ledgerOk());
    pool.release();
    pool.release();
    EXPECT_EQ(pool.inFlight(), 0u);
    EXPECT_TRUE(pool.ledgerOk());
}

/* ------------------------- DevLoad meter -------------------------- */

TEST(DevLoadMeter, LevelBandsAroundTarget)
{
    QosSpec s;
    s.policy = QosPolicy::Aimd; // target 0.75
    DevLoadMeter m(s);
    m.sample(0.0, 0);
    EXPECT_EQ(m.level(), DevLoad::Light);
    // Saturate the EWMA well past the Severe band.
    for (int i = 1; i <= 100; ++i)
        m.sample(2.0, ticksFromNs(100.0 * i));
    EXPECT_GT(m.load(), 0.85);
    EXPECT_EQ(m.level(), DevLoad::Severe);
}

TEST(DevLoadMeter, EwmaIsTimeWeighted)
{
    QosSpec s;
    s.policy = QosPolicy::Aimd;
    s.ewmaTau = ticksFromNs(1000.0);
    DevLoadMeter m(s);
    m.sample(1.0, 0);
    // Zero-order hold: occupancy sat at 1.0 for exactly one tau, so
    // the EWMA has charged to 1 - 1/e of the way there.
    m.sample(0.0, ticksFromNs(1000.0));
    EXPECT_NEAR(m.load(), 1.0 - std::exp(-1.0), 1e-9);
}

/* ------------------------- host throttle -------------------------- */

TEST(HostThrottle, AimdConvergesToFloorUnderSevere)
{
    QosSpec s;
    s.policy = QosPolicy::Aimd;
    s.floor = 0.05;
    HostThrottle t(s, 2);
    Tick now = 0;
    for (int i = 0; i < 64; ++i) {
        now += s.adjustPeriod;
        t.observe(2.0, DevLoad::Severe, now);
    }
    EXPECT_DOUBLE_EQ(t.rate(), s.floor);
    // ...and recovers additively under Light.
    for (int i = 0; i < 8; ++i) {
        now += s.adjustPeriod;
        t.observe(0.1, DevLoad::Light, now);
    }
    EXPECT_NEAR(t.rate(), s.floor + 8 * s.ai, 1e-9);
}

TEST(HostThrottle, AdjustmentIsPeriodGated)
{
    QosSpec s;
    s.policy = QosPolicy::Aimd;
    HostThrottle t(s, 1);
    t.observe(2.0, DevLoad::Severe, 0);
    const double after_first = t.rate();
    // Within the same adjust period further observations are ignored.
    t.observe(2.0, DevLoad::Severe, s.adjustPeriod / 2);
    EXPECT_DOUBLE_EQ(t.rate(), after_first);
}

TEST(HostThrottle, UnthrottledIssuesAreFree)
{
    QosSpec s;
    s.policy = QosPolicy::Aimd;
    HostThrottle t(s, 1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(t.issueDelay(0, ticksFromNs(5.5 * i)), 0u);
    QosStats qs;
    t.fillStats(qs);
    EXPECT_EQ(qs.throttleDelays, 0u);
}

TEST(HostThrottle, ThrottledBucketPacesInBursts)
{
    QosSpec s;
    s.policy = QosPolicy::Aimd;
    s.floor = 0.1;
    s.burstLines = 8;
    HostThrottle t(s, 1);
    Tick now = 0;
    for (int i = 0; i < 64; ++i) {
        now += s.adjustPeriod;
        t.observe(2.0, DevLoad::Severe, now);
    }
    ASSERT_DOUBLE_EQ(t.rate(), 0.1);

    // The initial burst passes free, then the bucket runs dry and the
    // next issue waits for a whole burst to accrue (not one token):
    // throttled cores still emit row-local runs.
    Tick at = now;
    for (std::uint32_t i = 0; i < s.burstLines; ++i)
        EXPECT_EQ(t.issueDelay(0, at), 0u);
    const Tick delay = t.issueDelay(0, at);
    const double perTick = 0.1 / static_cast<double>(s.lineCost);
    EXPECT_GE(delay, static_cast<Tick>(7.0 / perTick));
    // The burst released after the wait flows without further delay.
    at += delay;
    for (std::uint32_t i = 0; i + 1 < s.burstLines; ++i)
        EXPECT_EQ(t.issueDelay(0, at), 0u);
    QosStats qs;
    t.fillStats(qs);
    EXPECT_EQ(qs.throttleDelays, 1u);
    EXPECT_EQ(qs.throttleDelayTicks, delay);
}

/* --------------------- fair ingress arbiter ----------------------- */

TEST(FairWaitQueue, FloodingSourceCannotStarveOthers)
{
    FairWaitQueue q;
    auto mk = [](std::uint16_t source) {
        MemRequest r;
        r.source = source;
        return r;
    };
    // Source 0 floods; source 1 parks a single request behind 100 of
    // source 0's. Round-robin must serve source 1 within two pops, not
    // after the flood drains.
    for (int i = 0; i < 100; ++i)
        q.push(mk(0), Tick(i));
    q.push(mk(1), 100);
    std::size_t pops_until_src1 = 0;
    while (true) {
        ++pops_until_src1;
        if (q.pop().first.source == 1)
            break;
    }
    EXPECT_LE(pops_until_src1, 2u);

    // With k active sources each is served once per k pops.
    FairWaitQueue rr;
    for (int round = 0; round < 4; ++round)
        for (std::uint16_t s = 0; s < 3; ++s)
            rr.push(mk(s), 0);
    std::vector<std::uint64_t> served(3, 0);
    for (int i = 0; i < 6; ++i)
        served[rr.pop().first.source]++;
    EXPECT_EQ(served[0], 2u);
    EXPECT_EQ(served[1], 2u);
    EXPECT_EQ(served[2], 2u);
}

/* ------------------- device credit integration -------------------- */

TEST(CxlDeviceQos, CreditCappedRunKeepsLedger)
{
    EventQueue eq;
    QosSpec qos;
    qos.rdCredits = 2;
    qos.wrCredits = 2;
    CxlMemDevice dev(eq, testbed_params::agilexCxlDevice(), nullptr,
                     qos);
    int done = 0;
    for (int i = 0; i < 32; ++i) {
        MemRequest r;
        r.addr = Addr(i) * cachelineBytes;
        r.size = cachelineBytes;
        r.cmd = (i % 2) ? MemCmd::Write : MemCmd::Read;
        r.source = static_cast<std::uint16_t>(i % 4);
        r.onComplete = [&done](Tick) { ++done; };
        dev.access(std::move(r));
    }
    eq.run();
    EXPECT_EQ(done, 32);
    EXPECT_TRUE(dev.creditLedgerOk());
    QosStats qs;
    dev.fillQosStats(qs);
    // 16 requests per class through 2 credits: both classes must have
    // stalled, every credit must have come home.
    EXPECT_GT(qs.rdCreditStalls, 0u);
    EXPECT_GT(qs.wrCreditStalls, 0u);
    EXPECT_GT(qs.creditStallTicks, 0u);
    EXPECT_EQ(qs.rdInFlight, 0u);
    EXPECT_EQ(qs.wrInFlight, 0u);
    EXPECT_TRUE(qs.ledgerOk);
}

TEST(CxlDeviceQos, FireAndForgetWritesStillReturnCredits)
{
    // No onComplete callback: credits must still be released by the
    // forced NDR delivery, or the pool leaks dry and the device
    // wedges.
    EventQueue eq;
    QosSpec qos;
    qos.wrCredits = 2;
    CxlMemDevice dev(eq, testbed_params::agilexCxlDevice(), nullptr,
                     qos);
    for (int i = 0; i < 16; ++i) {
        MemRequest r;
        r.addr = Addr(i) * cachelineBytes;
        r.size = cachelineBytes;
        r.cmd = MemCmd::Write;
        dev.access(std::move(r));
    }
    eq.run();
    EXPECT_TRUE(dev.creditLedgerOk());
    QosStats qs;
    dev.fillQosStats(qs);
    EXPECT_EQ(qs.wrIssued, 16u);
    EXPECT_EQ(qs.wrReturned, 16u);
}

/* --------------------------- watchdog ----------------------------- */

/** A ProgressSource that can be frozen mid-flight. */
class FakeSource : public ProgressSource
{
  public:
    std::string progressName() const override { return "fake-dev"; }
    std::uint64_t progressRetired() const override { return retired; }
    std::uint64_t progressOutstanding() const override
    {
        return outstanding;
    }
    std::string progressDiagnosis() const override
    {
        return "    write-wait: depth 7 (oldest request waiting 999 "
               "ns)\n    stuck queue: write-wait\n";
    }
    std::string progressInvariant() const override { return invariant; }

    std::uint64_t retired = 0;
    std::uint64_t outstanding = 0;
    std::string invariant;
};

TEST(Watchdog, TripsOnLivelockWithinOneInterval)
{
    EventQueue eq;
    WatchdogParams wp;
    wp.interval = ticksFromUs(1.0);
    Watchdog dog(eq, wp);
    FakeSource src;
    src.outstanding = 7; // wedged: work pending, nothing retires
    dog.watch(&src);
    std::string report;
    Tick tripTick = 0;
    dog.setOnTrip([&](const std::string &r) {
        report = r;
        tripTick = eq.curTick();
    });

    // Keep the event queue alive well past one snapshot interval, as
    // a wedged-but-ticking simulation would.
    for (int i = 1; i <= 40; ++i)
        eq.scheduleIn(ticksFromNs(100.0 * i), [] {});
    dog.arm();
    eq.run();

    ASSERT_TRUE(dog.tripped());
    // Detected within one snapshot interval of becoming possible.
    EXPECT_LE(tripTick, wp.interval + ticksFromNs(1.0));
    // The dump names the wedged source and its stuck queue.
    EXPECT_NE(report.find("livelock"), std::string::npos);
    EXPECT_NE(report.find("fake-dev"), std::string::npos);
    EXPECT_NE(report.find("stuck queue: write-wait"), std::string::npos);
}

TEST(Watchdog, TripsOnDeadlockWhenQueueDrains)
{
    EventQueue eq;
    WatchdogParams wp;
    wp.interval = ticksFromUs(1.0);
    // Tolerate one progress-free snapshot so the drained-queue branch
    // (deadlock), not the livelock counter, is what must catch this.
    wp.strikes = 2;
    Watchdog dog(eq, wp);
    FakeSource src;
    src.outstanding = 3;
    dog.watch(&src);
    std::string report;
    dog.setOnTrip([&report](const std::string &r) { report = r; });
    dog.arm();
    eq.run(); // drains immediately: outstanding work can never finish
    ASSERT_TRUE(dog.tripped());
    EXPECT_NE(report.find("deadlock"), std::string::npos);
}

TEST(Watchdog, TripsOnInvariantViolationImmediately)
{
    EventQueue eq;
    WatchdogParams wp;
    wp.interval = ticksFromUs(1.0);
    Watchdog dog(eq, wp);
    FakeSource src;
    src.invariant = "wr credit ledger broken: issued 9 != returned 4 "
                    "+ in-flight 4";
    dog.watch(&src);
    std::string report;
    dog.setOnTrip([&report](const std::string &r) { report = r; });
    dog.arm();
    eq.run();
    ASSERT_TRUE(dog.tripped());
    EXPECT_NE(report.find("invariant violated"), std::string::npos);
    EXPECT_NE(report.find("credit ledger broken"), std::string::npos);
}

TEST(Watchdog, NoFalseTripOnHealthyProgress)
{
    EventQueue eq;
    WatchdogParams wp;
    wp.interval = ticksFromUs(1.0);
    Watchdog dog(eq, wp);
    FakeSource src;
    src.outstanding = 1;
    dog.watch(&src);
    dog.setOnTrip([](const std::string &) { FAIL() << "false trip"; });
    // Steady retirement, one item per 500 ns.
    for (int i = 1; i <= 20; ++i)
        eq.scheduleIn(ticksFromNs(500.0 * i), [&src] { src.retired++; });
    eq.scheduleIn(ticksFromNs(500.0 * 20) + 1, [&src] {
        src.outstanding = 0;
    });
    dog.arm();
    eq.run();
    EXPECT_FALSE(dog.tripped());
    EXPECT_GT(dog.snapshots(), 0u);
}

TEST(Watchdog, ArmedWatchdogDoesNotKeepQueueAlive)
{
    // The snapshot event must stand down at quiesce, not spin forever.
    EventQueue eq;
    Watchdog dog(eq, {});
    FakeSource src;
    dog.watch(&src);
    dog.arm();
    eq.run();
    EXPECT_FALSE(dog.tripped());
    EXPECT_FALSE(dog.armed());
}

TEST(Watchdog, WedgedDeviceQueueIsNamedInTheDump)
{
    // Wedge a *real* device: every buffered write hits a stuck-drain
    // episode far longer than the snapshot interval, so the write
    // buffer fills and the overflow parks in the write-wait queue with
    // nothing retiring. The dump must name that queue.
    EventQueue eq;
    FaultSpec fs;
    fs.drainStallRate = 1.0;
    fs.drainStallTicks = ticksFromUs(500.0);
    FaultInjector inj(fs);
    CxlDeviceParams p = testbed_params::agilexCxlDevice();
    p.writeBufferEntries = 4;
    CxlMemDevice dev(eq, p, &inj);
    dev.enableProgressTracking();

    WatchdogParams wp;
    wp.interval = ticksFromUs(50.0);
    Watchdog dog(eq, wp);
    dog.watch(&dev);
    std::string report;
    dog.setOnTrip([&report](const std::string &r) { report = r; });

    for (int i = 0; i < 16; ++i) {
        MemRequest r;
        r.addr = Addr(i) * cachelineBytes;
        r.size = cachelineBytes;
        r.cmd = MemCmd::Write;
        dev.access(std::move(r));
    }
    dog.arm();
    eq.run();

    ASSERT_TRUE(dog.tripped());
    EXPECT_NE(report.find("no forward progress"), std::string::npos);
    EXPECT_NE(report.find("stuck queue: write-wait"),
              std::string::npos);
    EXPECT_NE(report.find("writes-buffered 4/4"), std::string::npos);
}

TEST(MachineWatchdog, HealthyMachineRunNeverTrips)
{
    MachineOptions o;
    o.watchdogInterval = ticksFromUs(5.0);
    Machine m(Testbed::SingleSocketCxl, o);
    ASSERT_NE(m.watchdog(), nullptr);
    NumaBuffer buf =
        m.numa().alloc(4 * miB, MemPolicy::membind(m.cxlNode()));
    for (int i = 0; i < 64; ++i) {
        m.caches().load(0, buf.translate(std::uint64_t(i) * 4096),
                        m.eq().curTick(), nullptr);
        m.rearmWatchdog();
        m.eq().run();
    }
    EXPECT_FALSE(m.watchdog()->tripped());
    const std::string s = m.statsString();
    EXPECT_NE(s.find("watchdog"), std::string::npos);
}

/* ----------------- zero-request stats are finite ------------------ */

TEST(QosStats, ZeroRequestRunEmitsZerosNotNaN)
{
    SampleSeries empty;
    EXPECT_EQ(empty.mean(), 0.0);
    EXPECT_EQ(empty.percentile(50.0), 0.0);
    EXPECT_EQ(empty.p99(), 0.0);
    EXPECT_EQ(empty.max(), 0.0);

    // A machine that retires nothing must still print a finite stats
    // block (no nan/inf from zero-request divisions).
    MachineOptions o;
    std::string err;
    const auto qos = QosSpec::parse("credits=8,policy=aimd", err);
    ASSERT_TRUE(qos.has_value()) << err;
    o.qos = *qos;
    o.watchdogInterval = ticksFromUs(10.0);
    Machine m(Testbed::SingleSocketCxl, o);
    const std::string s = m.statsString();
    EXPECT_EQ(s.find("nan"), std::string::npos);
    EXPECT_EQ(s.find("inf"), std::string::npos);
    EXPECT_NE(s.find("qos:"), std::string::npos);
    auto qs = m.qosStats();
    ASSERT_TRUE(qs.has_value());
    EXPECT_TRUE(qs->ledgerOk);
    EXPECT_EQ(qs->rdIssued, 0u);
}

/* ------------------ determinism across --jobs --------------------- */

TEST(QosDeterminism, ThrottledSweepIdenticalAcrossJobs)
{
    memo::Options opts;
    opts.warmupUs = 10.0;
    opts.measureUs = 30.0;
    std::string err;
    const auto qos =
        QosSpec::parse("credits=24,policy=aimd,burst=12", err);
    ASSERT_TRUE(qos.has_value()) << err;
    opts.qos = *qos;
    opts.watchdogUs = 50.0;

    const std::vector<std::uint32_t> threads = {2, 4, 8};
    auto sweep = [&](unsigned jobs) {
        SweepRunner pool(jobs);
        return pool.map(threads.size(), [&](std::size_t i) {
            QosStats qs;
            const double bw = memo::runSeqBandwidth(
                memo::Target::Cxl, MemOp::Kind::NtStore, threads[i],
                opts, nullptr, &qs);
            EXPECT_TRUE(qs.ledgerOk);
            return std::make_pair(bw, qs.creditStallTicks);
        });
    };
    const auto serial = sweep(1);
    const auto parallel = sweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].first, parallel[i].first);
        EXPECT_EQ(serial[i].second, parallel[i].second);
    }
}

} // namespace
} // namespace cxlmemo
