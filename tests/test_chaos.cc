/**
 * @file
 * Tests for the failure-lifecycle (chaos) layer: ChaosSpec parsing
 * and validation, a property-style fuzz pass over all four spec
 * parsers (fault, QoS, chaos, pool), the link DOWN/retrain FSM, the degrade-window re-arm cap,
 * device hot-remove/re-add with both containment policies, the
 * per-page memory-failure ledger, NUMA-node offlining, the tiering
 * layer's failure responses, and the chaos drill harness.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/tiering/tiering.hh"
#include "cpu/streams.hh"
#include "cxl/link.hh"
#include "memo/memo.hh"
#include "sim/chaos.hh"
#include "sim/fault.hh"
#include "sim/lifecycle.hh"
#include "sim/qos.hh"
#include "sim/rng.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace
{

/* -------------------------- ChaosSpec ---------------------------- */

TEST(ChaosSpec, ParsesFullGrammar)
{
    std::string err;
    const auto spec = ChaosSpec::parse(
        "link-down-at-ns=50000,retrain-ns=1500,step-up-ns=2500,"
        "crc-burst=8,remove-at-ns=80000,readd-at-ns=90000,"
        "contain=abort,abort-ns=300,offline-threshold=3,"
        "max-offline-pages=16,seed=9",
        err);
    ASSERT_TRUE(spec.has_value()) << err;
    EXPECT_EQ(spec->linkDownAtNs, 50000u);
    EXPECT_DOUBLE_EQ(spec->retrainNs, 1500.0);
    EXPECT_DOUBLE_EQ(spec->stepUpNs, 2500.0);
    EXPECT_EQ(spec->crcBurstTrigger, 8u);
    EXPECT_EQ(spec->removeAtNs, 80000u);
    EXPECT_EQ(spec->readdAtNs, 90000u);
    EXPECT_EQ(spec->contain, ContainPolicy::Abort);
    EXPECT_DOUBLE_EQ(spec->abortNs, 300.0);
    EXPECT_EQ(spec->offlineThreshold, 3u);
    EXPECT_EQ(spec->maxOfflinePages, 16u);
    EXPECT_EQ(spec->seed, 9u);
    EXPECT_TRUE(spec->enabled());
}

TEST(ChaosSpec, EmptySpecIsDisabled)
{
    std::string err;
    const auto spec = ChaosSpec::parse("", err);
    ASSERT_TRUE(spec.has_value());
    EXPECT_FALSE(spec->enabled());
    EXPECT_FALSE(ChaosSpec{}.enabled());
}

TEST(ChaosSpec, RejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(ChaosSpec::parse("link-down-at-ns", err).has_value());
    EXPECT_NE(err.find("key=value"), std::string::npos);
    EXPECT_FALSE(ChaosSpec::parse("bogus=1", err).has_value());
    EXPECT_FALSE(ChaosSpec::parse("retrain-ns=x", err).has_value());
    EXPECT_FALSE(ChaosSpec::parse("contain=maybe", err).has_value());
    EXPECT_NE(err.find("poison|abort"), std::string::npos);
    EXPECT_FALSE(ChaosSpec::parse("retrain-ns=0", err).has_value());
    // readd needs remove, and must follow it.
    EXPECT_FALSE(ChaosSpec::parse("readd-at-ns=5", err).has_value());
    EXPECT_FALSE(
        ChaosSpec::parse("remove-at-ns=9,readd-at-ns=5", err)
            .has_value());
    EXPECT_FALSE(
        ChaosSpec::parse("max-offline-pages=0", err).has_value());
}

TEST(ChaosSpec, ValidateThrowsOnBadValues)
{
    ChaosSpec s;
    s.retrainNs = -1.0;
    EXPECT_THROW(s.validate(), std::invalid_argument);
    s = ChaosSpec{};
    s.readdAtNs = 10; // re-add without a remove
    EXPECT_THROW(s.validate(), std::invalid_argument);
    s = ChaosSpec{};
    s.removeAtNs = 20;
    s.readdAtNs = 10; // re-add before the remove
    EXPECT_THROW(s.validate(), std::invalid_argument);
    EXPECT_NO_THROW(ChaosSpec{}.validate());
}

TEST(ChaosSpec, ToStringRoundTrips)
{
    std::string err;
    const auto spec = ChaosSpec::parse(
        "link-down-at-ns=50000,remove-at-ns=80000,readd-at-ns=90000,"
        "contain=abort,offline-threshold=2",
        err);
    ASSERT_TRUE(spec.has_value()) << err;
    const auto again = ChaosSpec::parse(spec->toString(), err);
    ASSERT_TRUE(again.has_value()) << err << " <- " << spec->toString();
    EXPECT_EQ(again->toString(), spec->toString());
}

/**
 * Property-style fuzz over all four spec parsers: whatever the
 * input, parse() must either return a spec or set an error -- never
 * crash, never throw (ASan-clean by CI's chaos-smoke job). Inputs
 * are built from a deterministic RNG so a failure reproduces.
 */
TEST(SpecFuzz, MalformedSpecsNeverCrashAnyParser)
{
    const std::vector<std::string> atoms = {
        "crc",       "poison",   "credits", "policy",
        "link-down-at-ns", "retrain-ns", "remove-at-ns", "contain",
        "offline-threshold", "seed",  "degrade", "burst",
        "hosts", "devices", "capacity-mb", "window-mb", "aggressor",
        "crash-host", "crash-at-ns", "fence-check-ns", "arb", "rr",
        "0",  "1",  "-1", "1e-4", "2.5", "1e309", "nan", "x",
        "poison|abort", "aimd",   "abort",   "",
        "=",  ",",  "==", ",,",   " ",   "\t",   "%s",  "\xff",
    };
    Rng rng(20260808);
    for (int round = 0; round < 2000; ++round) {
        std::string input;
        const std::uint64_t pieces = rng.below(8);
        for (std::uint64_t p = 0; p < pieces; ++p) {
            input += atoms[rng.below(atoms.size())];
            const std::uint64_t glue = rng.below(4);
            if (glue == 0)
                input += '=';
            else if (glue == 1)
                input += ',';
        }
        std::string err;
        const auto fs = FaultSpec::parse(input, err);
        EXPECT_TRUE(fs.has_value() || !err.empty()) << input;
        err.clear();
        const auto qs = QosSpec::parse(input, err);
        EXPECT_TRUE(qs.has_value() || !err.empty()) << input;
        err.clear();
        const auto cs = ChaosSpec::parse(input, err);
        EXPECT_TRUE(cs.has_value() || !err.empty()) << input;
        // A spec that parses must also validate (parse() enforces
        // the same ranges validate() checks).
        if (cs)
            EXPECT_NO_THROW(cs->validate()) << input;
        err.clear();
        const auto ps = PoolSpec::parse(input, err);
        EXPECT_TRUE(ps.has_value() || !err.empty()) << input;
        if (ps)
            EXPECT_NO_THROW(ps->validate()) << input;
    }
}

/* -------------------------- ChaosStats --------------------------- */

TEST(ChaosStats, MergeAddsCountersAndMaxesTimestamps)
{
    ChaosStats a;
    a.linkDowns = 1;
    a.blockedMsgs = 10;
    a.linkDownAt = 100;
    a.pagesOfflined = 2;
    ChaosStats b;
    b.linkDowns = 2;
    b.blockedMsgs = 5;
    b.linkDownAt = 50;
    b.dataAtRiskBytes = 4096;
    ChaosStats ab = a;
    ab.merge(b);
    EXPECT_EQ(ab.linkDowns, 3u);
    EXPECT_EQ(ab.blockedMsgs, 15u);
    EXPECT_EQ(ab.linkDownAt, 100u); // timestamps keep the latest
    EXPECT_EQ(ab.pagesOfflined, 2u);
    EXPECT_EQ(ab.dataAtRiskBytes, 4096u);
    // Associative: (a+b)+b == a+(b+b) for the counter fields.
    ChaosStats bb = b;
    bb.merge(b);
    ChaosStats a_bb = a;
    a_bb.merge(bb);
    ChaosStats ab_b = ab;
    ab_b.merge(b);
    EXPECT_EQ(a_bb.linkDowns, ab_b.linkDowns);
    EXPECT_EQ(a_bb.blockedMsgs, ab_b.blockedMsgs);
    EXPECT_NE(ab.summary().find("link-downs=3"), std::string::npos);
}

/* ------------------------ link lifecycle ------------------------- */

CxlLinkParams
testLink()
{
    CxlLinkParams p;
    p.rawGBps = 64.0;
    p.flitEfficiency = 0.5; // effective 32 GB/s: easy arithmetic
    p.propagation = ticksFromNs(10.0);
    return p;
}

TEST(LinkLifecycle, DownLinkBlocksUntilRetrain)
{
    EventQueue eq;
    CxlLinkDirection dir(eq, testLink());
    LinkLifecycle lc;
    dir.setLifecycle(&lc);
    // Healthy: 64 B at 32 GB/s = 2 ns serialization + 10 ns prop.
    EXPECT_EQ(dir.transmit(64), ticksFromNs(12.0));
    // Link DOWN until t=100: the message naks into the replay buffer
    // and serializes only after retrain completes.
    lc.downUntil = ticksFromNs(100.0);
    EXPECT_EQ(dir.transmit(64), ticksFromNs(112.0));
    EXPECT_EQ(lc.blockedMsgs, 1u);
    EXPECT_EQ(lc.detectAt, ticksFromNs(2.0)); // when it would've gone
    // The next message queues behind the first *after* retrain, so it
    // is serialized normally -- only genuinely blocked messages count.
    EXPECT_EQ(dir.transmit(64), ticksFromNs(114.0));
    EXPECT_EQ(lc.blockedMsgs, 1u);
    EXPECT_EQ(lc.detectAt, ticksFromNs(2.0));
}

TEST(LinkLifecycle, CeilingBurstFiresOnceThenDisarms)
{
    LinkLifecycle lc;
    lc.ceilingBurst = 3;
    Tick firedAt = 0;
    int fired = 0;
    lc.onCeilingBurst = [&](Tick at) {
        ++fired;
        firedAt = at;
    };
    lc.noteCeilingError(10);
    lc.noteCeilingError(20);
    EXPECT_EQ(fired, 0);
    lc.noteCeilingError(30);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(firedAt, 30u);
    // Disarmed: further errors never re-fire until re-armed.
    for (Tick t = 40; t < 100; t += 10)
        lc.noteCeilingError(t);
    EXPECT_EQ(fired, 1);
}

TEST(LinkLifecycle, SetDegradeLevelClampsAndRestores)
{
    EventQueue eq;
    CxlLinkDirection dir(eq, testLink());
    dir.setDegradeLevel(7);
    EXPECT_EQ(dir.degradeLevel(), 2u);
    EXPECT_DOUBLE_EQ(dir.effectiveRawGBps(), 64.0 / 4.0);
    dir.setDegradeLevel(1);
    EXPECT_DOUBLE_EQ(dir.effectiveRawGBps(), 64.0 / 2.0);
    dir.setDegradeLevel(0);
    EXPECT_DOUBLE_EQ(dir.effectiveRawGBps(), 64.0);
}

/**
 * Satellite regression: the degradation counter is capped at one
 * downgrade per observation window and re-arms when the window
 * expires. A dense error burst (crc=1 forces an LLR round on every
 * flit) used to double-downgrade straight to the ceiling; now the
 * first window takes exactly one level, the next window the second.
 */
TEST(LinkLifecycle, DegradeWindowReArmCapsOneDowngradePerWindow)
{
    FaultSpec fs;
    fs.crcPerFlit = 1.0; // every flit fails every round: maxLlrRounds
    fs.degradeBurst = 2; // two errors in one window downgrade once
    fs.degradeWindow = ticksFromUs(100.0); // one burst = one window
    FaultInjector inj(fs);
    EventQueue eq;
    CxlLinkDirection dir(eq, testLink(), &inj);
    LinkLifecycle lc;
    dir.setLifecycle(&lc);
    lc.ceilingBurst = 4;
    int outages = 0;
    lc.onCeilingBurst = [&](Tick) { ++outages; };

    // One message = 1 flit = 64 LLR rounds = 64 errors, all inside
    // the first 100 us window: exactly ONE downgrade (the bug was 2).
    dir.transmit(64);
    EXPECT_EQ(dir.degradeLevel(), 1u);
    EXPECT_EQ(inj.stats().linkDegradations, 1u);
    EXPECT_EQ(outages, 0);

    // Advance past the window; the counter re-arms and the next burst
    // takes the second (final) level.
    eq.schedule(ticksFromUs(500.0), [] {});
    eq.run();
    dir.transmit(64);
    EXPECT_EQ(dir.degradeLevel(), 2u);
    EXPECT_EQ(inj.stats().linkDegradations, 2u);

    // At the ceiling further error bursts feed the lifecycle outage
    // trigger instead of degrading (there is no level 3).
    dir.transmit(64);
    EXPECT_EQ(dir.degradeLevel(), 2u);
    EXPECT_EQ(inj.stats().linkDegradations, 2u);
    EXPECT_GE(outages, 1);
}

/* ---------------------- page-failure ledger ---------------------- */

TEST(MemoryFailureHandler, OfflinesPageAtThresholdAndFiresHooks)
{
    MemoryFailureHandler fh(/*threshold=*/2, /*maxPages=*/8);
    std::vector<Addr> offlined;
    fh.addOfflineHook([&](Addr page, Tick) -> std::uint64_t {
        offlined.push_back(page);
        return 1000; // "migrated" bytes, accumulated by the handler
    });
    const Addr a = 0x1234'5678;
    const Addr pageOfA = a & ~(MemoryFailureHandler::pageBytes - 1);
    fh.notePoison(a, 10);
    EXPECT_FALSE(fh.isOffline(a));
    // Second hit on the *same page* (different line) crosses the
    // threshold.
    fh.notePoison(a + 64, 20);
    EXPECT_TRUE(fh.isOffline(a));
    EXPECT_TRUE(fh.isOffline(pageOfA));
    ASSERT_EQ(offlined.size(), 1u);
    EXPECT_EQ(offlined[0], pageOfA);
    const ChaosStats &cs = fh.stats();
    EXPECT_EQ(cs.poisonEvents, 2u);
    EXPECT_EQ(cs.pagesOfflined, 1u);
    EXPECT_EQ(cs.offlinedBytes, MemoryFailureHandler::pageBytes);
    EXPECT_EQ(cs.migratedBytes, 1000u);
    // Re-reports on an offlined page are counted but never re-offline.
    fh.notePoison(a, 30);
    EXPECT_EQ(fh.stats().poisonEvents, 3u);
    EXPECT_EQ(fh.stats().pagesOfflined, 1u);
    EXPECT_EQ(offlined.size(), 1u);
}

TEST(MemoryFailureHandler, MaxPagesCapsTheLedger)
{
    MemoryFailureHandler fh(/*threshold=*/1, /*maxPages=*/2);
    for (int p = 0; p < 5; ++p)
        fh.notePoison(Addr(p) * MemoryFailureHandler::pageBytes, p);
    EXPECT_EQ(fh.stats().pagesOfflined, 2u);
    EXPECT_TRUE(fh.isOffline(0));
    EXPECT_TRUE(fh.isOffline(MemoryFailureHandler::pageBytes));
    EXPECT_FALSE(fh.isOffline(2 * MemoryFailureHandler::pageBytes));
}

TEST(MemoryFailureHandler, ZeroThresholdIsInert)
{
    MemoryFailureHandler fh(0, 64);
    bool fired = false;
    fh.addOfflineHook([&](Addr, Tick) -> std::uint64_t {
        fired = true;
        return 0;
    });
    for (int i = 0; i < 100; ++i)
        fh.notePoison(Addr(i) * 64, i);
    EXPECT_FALSE(fired);
    EXPECT_EQ(fh.stats().poisonEvents, 0u);
    EXPECT_EQ(fh.trackedPages(), 0u);
}

/* ----------------------- NUMA node offline ----------------------- */

TEST(NumaOffline, MembindAllocationsRedirectWhileOffline)
{
    Machine m(Testbed::SingleSocketCxl, MachineOptions{});
    NumaBuffer before =
        m.numa().alloc(1 * miB, MemPolicy::membind(m.cxlNode()));
    EXPECT_EQ(nodeOfPaddr(before.translate(0)), m.cxlNode());
    const std::uint64_t cxlBytes = m.numa().allocatedOn(m.cxlNode());
    EXPECT_GE(cxlBytes, 1 * miB);

    m.numa().setNodeOnline(m.cxlNode(), false);
    EXPECT_FALSE(m.numa().nodeOnline(m.cxlNode()));
    // A membind to the offline node redirects to an online one
    // rather than handing out unreachable memory.
    NumaBuffer during =
        m.numa().alloc(1 * miB, MemPolicy::membind(m.cxlNode()));
    EXPECT_NE(nodeOfPaddr(during.translate(0)), m.cxlNode());

    // Re-add restores the capacity *empty*.
    m.numa().setNodeOnline(m.cxlNode(), true);
    EXPECT_TRUE(m.numa().nodeOnline(m.cxlNode()));
    EXPECT_EQ(m.numa().allocatedOn(m.cxlNode()), 0u);
    NumaBuffer after =
        m.numa().alloc(1 * miB, MemPolicy::membind(m.cxlNode()));
    EXPECT_EQ(nodeOfPaddr(after.translate(0)), m.cxlNode());
}

TEST(NumaOffline, InterleaveSkipsOfflineNodes)
{
    Machine m(Testbed::SingleSocketCxl, MachineOptions{});
    m.numa().setNodeOnline(m.cxlNode(), false);
    NumaBuffer buf = m.numa().alloc(
        1 * miB, MemPolicy::interleave({m.localNode(), m.cxlNode()}));
    for (std::uint64_t off = 0; off < buf.size(); off += pageBytes)
        EXPECT_NE(nodeOfPaddr(buf.translate(off)), m.cxlNode())
            << "offset " << off;
}

/* ------------------- machine-level chaos runs -------------------- */

/** Drive @p count CXL-line loads through a fresh thread on @p m. */
ThreadStats
loadCxlLines(Machine &m, int count)
{
    NumaBuffer buf =
        m.numa().alloc(4 * miB, MemPolicy::membind(m.cxlNode()));
    std::vector<MemOp> ops;
    for (int i = 0; i < count; ++i)
        ops.push_back({MemOp::Kind::Load,
                       buf.translate(std::uint64_t(i) * 4096), 0});
    HwThread t(m.caches(), 0, m.coreParams());
    t.start(std::make_unique<ListStream>(std::move(ops)),
            m.eq().curTick(), {});
    m.run();
    EXPECT_TRUE(t.finished());
    return t.stats();
}

TEST(MachineChaos, DisabledSpecIsBitIdenticalToSeed)
{
    auto run = [](const ChaosSpec &c) {
        MachineOptions o;
        o.chaos = c;
        Machine m(Testbed::SingleSocketCxl, o);
        loadCxlLines(m, 64);
        return m.statsString();
    };
    const std::string seed = run(ChaosSpec{});
    EXPECT_EQ(seed, run(ChaosSpec{}));
    // A disabled chaos spec builds no injector and no handler: the
    // stats dump carries no chaos line at all.
    EXPECT_EQ(seed.find("chaos:"), std::string::npos);
    EXPECT_EQ(seed.find("ras:"), std::string::npos);
}

TEST(MachineChaos, ScheduledLinkDownRetrainsAndStepsBackUp)
{
    MachineOptions o;
    o.chaos.linkDownAtNs = 1000;
    o.chaos.retrainNs = 2000.0;
    o.chaos.stepUpNs = 3000.0;
    Machine m(Testbed::SingleSocketCxl, o);
    loadCxlLines(m, 512);
    const ChaosStats cs = m.chaosStats();
    EXPECT_EQ(cs.linkDowns, 1u);
    EXPECT_EQ(cs.retrains, 1u);
    EXPECT_EQ(cs.widthStepUps, 2u);
    EXPECT_GT(cs.blockedMsgs, 0u);
    EXPECT_EQ(cs.linkDownAt, ticksFromNs(1000.0));
    // Retrain completes exactly retrainNs after the outage; full
    // width returns after two step-ups on top of that.
    EXPECT_EQ(cs.linkUpAt - cs.linkDownAt, ticksFromNs(2000.0));
    EXPECT_EQ(cs.linkFullWidthAt - cs.linkDownAt, ticksFromNs(8000.0));
    EXPECT_GE(cs.linkDetectAt, cs.linkDownAt);
    EXPECT_NE(m.statsString().find("chaos:"), std::string::npos);
}

TEST(MachineChaos, HotRemovePoisonContainmentKeepsInvariant)
{
    MachineOptions o;
    o.chaos.removeAtNs = 2000;
    o.chaos.contain = ContainPolicy::Poison;
    Machine m(Testbed::SingleSocketCxl, o);
    const ThreadStats ts = loadCxlLines(m, 256);
    const ChaosStats cs = m.chaosStats();
    EXPECT_EQ(cs.removals, 1u);
    EXPECT_EQ(cs.readds, 0u);
    EXPECT_GT(cs.abortedReads, 0u);
    EXPECT_EQ(cs.abortedBytes, cs.abortedReads * cachelineBytes);
    EXPECT_GE(cs.removeDetectAt, cs.removeAt);
    // Poison containment: aborted reads complete with a poison
    // indication the consumer sees.
    EXPECT_GT(ts.poisonedLoads, 0u);
    const RasStats *rs = m.rasStats();
    ASSERT_NE(rs, nullptr);
    EXPECT_GT(rs->poisonInjected, 0u);
    // The exhaustive poison ledger: every injected poison is
    // consumed by a fill, delivered to a non-caching consumer, or
    // contained by the abort policy.
    EXPECT_EQ(rs->poisonInjected, rs->poisonConsumed
                                      + rs->poisonDelivered
                                      + rs->poisonContained);
}

TEST(MachineChaos, HotRemoveAbortContainmentNeverDeliversPoison)
{
    MachineOptions o;
    o.chaos.removeAtNs = 2000;
    o.chaos.contain = ContainPolicy::Abort;
    Machine m(Testbed::SingleSocketCxl, o);
    const ThreadStats ts = loadCxlLines(m, 256);
    const ChaosStats cs = m.chaosStats();
    EXPECT_GT(cs.abortedReads, 0u);
    const RasStats *rs = m.rasStats();
    ASSERT_NE(rs, nullptr);
    // Abort containment: the data is never seen, so no poison
    // reaches any consumer -- it is all counted as contained.
    EXPECT_EQ(ts.poisonedLoads, 0u);
    EXPECT_GT(rs->poisonContained, 0u);
    EXPECT_EQ(rs->poisonInjected, rs->poisonConsumed
                                      + rs->poisonDelivered
                                      + rs->poisonContained);
}

TEST(MachineChaos, ReaddRestoresServiceAndFiresHotplugHook)
{
    MachineOptions o;
    o.chaos.removeAtNs = 2000;
    o.chaos.readdAtNs = 4000;
    Machine m(Testbed::SingleSocketCxl, o);
    std::vector<std::pair<Tick, bool>> hotplug;
    m.setCxlHotplugHook([&](Tick at, bool online) {
        hotplug.emplace_back(at, online);
    });
    loadCxlLines(m, 64);
    const ChaosStats cs = m.chaosStats();
    EXPECT_EQ(cs.removals, 1u);
    EXPECT_EQ(cs.readds, 1u);
    EXPECT_EQ(cs.readdAt - cs.removeAt, ticksFromNs(2000.0));
    ASSERT_EQ(hotplug.size(), 2u);
    EXPECT_FALSE(hotplug[0].second);
    EXPECT_TRUE(hotplug[1].second);
    EXPECT_LT(hotplug[0].first, hotplug[1].first);
    // After the re-add the node serves allocations again, empty.
    EXPECT_TRUE(m.numa().nodeOnline(m.cxlNode()));
}

TEST(MachineChaos, PoisonFeedsLedgerAndOfflinesPages)
{
    MachineOptions o;
    o.chaos.offlineThreshold = 1;
    o.chaos.maxOfflinePages = 8;
    o.faults.readPoisonRate = 0.2;
    o.faults.seed = 11;
    Machine m(Testbed::SingleSocketCxl, o);
    loadCxlLines(m, 256);
    ASSERT_NE(m.failureHandler(), nullptr);
    const ChaosStats cs = m.chaosStats();
    EXPECT_GT(cs.poisonEvents, 0u);
    EXPECT_GT(cs.pagesOfflined, 0u);
    EXPECT_LE(cs.pagesOfflined, 8u);
    EXPECT_EQ(cs.offlinedBytes,
              cs.pagesOfflined * MemoryFailureHandler::pageBytes);
    // Only CXL-side consumed poison feeds the ledger, and consumed
    // poison is what the RAS layer counted.
    const RasStats *rs = m.rasStats();
    ASSERT_NE(rs, nullptr);
    EXPECT_LE(cs.poisonEvents, rs->poisonConsumed);
}

TEST(MachineChaos, LifecycleEventsLandInWatchdogLog)
{
    MachineOptions o;
    o.chaos.linkDownAtNs = 1000;
    o.chaos.removeAtNs = 5000;
    o.chaos.readdAtNs = 8000;
    o.watchdogInterval = ticksFromUs(100.0);
    Machine m(Testbed::SingleSocketCxl, o);
    loadCxlLines(m, 256);
    ASSERT_NE(m.watchdog(), nullptr);
    const auto &events = m.watchdog()->events();
    ASSERT_FALSE(events.empty());
    auto contains = [&](const char *needle) {
        for (const std::string &e : events)
            if (e.find(needle) != std::string::npos)
                return true;
        return false;
    };
    EXPECT_TRUE(contains("link DOWN"));
    EXPECT_TRUE(contains("hot-remove"));
    EXPECT_TRUE(contains("re-add"));
}

/* ----------------------- tiering responses ----------------------- */

TEST(TieringFailure, EvacuateCxlMovesEveryResidentPage)
{
    Machine m(Testbed::SingleSocketCxl, MachineOptions{});
    tiering::TieringParams p;
    p.dramBudgetPages = 4; // most pages start CXL-resident
    tiering::TieredBuffer buf(m, 64 * pageBytes, p);
    const std::uint64_t onCxl =
        buf.numPages() - buf.stats().dramResidentPages;
    ASSERT_GT(onCxl, 0u);
    Tick cpu = 0;
    const std::uint64_t moved = buf.evacuateCxl(cpu);
    m.run(); // drain the DSA copies
    EXPECT_EQ(moved, onCxl * pageBytes);
    EXPECT_DOUBLE_EQ(buf.dramResidency(), 1.0);
    EXPECT_GT(cpu, 0u);
    // Idempotent: nothing left to move.
    Tick cpu2 = 0;
    EXPECT_EQ(buf.evacuateCxl(cpu2), 0u);
}

TEST(TieringFailure, PromoteIfResidentMovesExactlyOnePage)
{
    Machine m(Testbed::SingleSocketCxl, MachineOptions{});
    tiering::TieringParams p;
    p.dramBudgetPages = 4;
    tiering::TieredBuffer buf(m, 64 * pageBytes, p);
    // Find a CXL-resident page via its physical address.
    std::uint64_t victim = buf.numPages();
    for (std::uint64_t pg = 0; pg < buf.numPages(); ++pg) {
        if (nodeOfPaddr(buf.peek(pg * pageBytes)) == m.cxlNode()) {
            victim = pg;
            break;
        }
    }
    ASSERT_LT(victim, buf.numPages());
    const Addr paddr = buf.peek(victim * pageBytes);
    Tick cpu = 0;
    EXPECT_EQ(buf.promoteIfResident(paddr, cpu), pageBytes);
    m.run();
    EXPECT_EQ(nodeOfPaddr(buf.peek(victim * pageBytes)), m.localNode());
    // Already on DRAM now: a second promote is a no-op...
    EXPECT_EQ(buf.promoteIfResident(paddr, cpu), 0u);
    // ...and an address outside the buffer never matches.
    EXPECT_EQ(buf.promoteIfResident(~Addr(0) - pageBytes, cpu), 0u);
}

/* --------------------------- the drill --------------------------- */

memo::Options
fastDrill()
{
    memo::Options o;
    o.chaos.linkDownAtNs = 10000;
    o.chaos.retrainNs = 1000.0;
    o.chaos.stepUpNs = 1000.0;
    o.chaos.removeAtNs = 20000;
    o.chaos.readdAtNs = 25000;
    o.chaos.offlineThreshold = 2;
    return o;
}

TEST(Drill, ReportsLifecycleTimingsAndKeepsInvariant)
{
    const memo::DrillResult r = memo::runDrill(2, fastDrill());
    EXPECT_GT(r.healthyGBps, 0.0);
    EXPECT_GT(r.degradedGBps, 0.0);
    EXPECT_GT(r.recoveredGBps, 0.0);
    // Degraded-width traffic is slower than healthy traffic.
    EXPECT_LT(r.degradedGBps, r.healthyGBps);
    // MTTR figures come straight from the schedule: retrain plus two
    // step-ups; removal to re-add.
    EXPECT_DOUBLE_EQ(r.linkMttrNs, 3000.0);
    EXPECT_DOUBLE_EQ(r.removeMttrNs, 5000.0);
    EXPECT_GE(r.linkDetectNs, 0.0);
    EXPECT_GT(r.chaos.abortedReads, 0u);
    EXPECT_GT(r.chaos.dataAtRiskBytes, 0u);
    EXPECT_GT(r.evacuatedBytes, 0u);
    EXPECT_TRUE(r.invariantOk);
}

TEST(Drill, IsDeterministic)
{
    const memo::DrillResult a = memo::runDrill(1, fastDrill());
    const memo::DrillResult b = memo::runDrill(1, fastDrill());
    EXPECT_EQ(a.healthyGBps, b.healthyGBps);
    EXPECT_EQ(a.degradedGBps, b.degradedGBps);
    EXPECT_EQ(a.recoveredGBps, b.recoveredGBps);
    EXPECT_EQ(a.chaos.abortedReads, b.chaos.abortedReads);
    EXPECT_EQ(a.chaos.pagesOfflined, b.chaos.pagesOfflined);
    EXPECT_EQ(a.chaos.dataAtRiskBytes, b.chaos.dataAtRiskBytes);
    EXPECT_EQ(a.ras.poisonInjected, b.ras.poisonInjected);
}

} // namespace
} // namespace cxlmemo
