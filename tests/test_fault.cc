/**
 * @file
 * Tests for the RAS layer: FaultSpec parsing, injector determinism,
 * link-level CRC retry and degradation, controller timeout/backoff,
 * stall episodes, and end-to-end poison propagation through a
 * Machine (injected poison is never silently dropped).
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "cpu/streams.hh"
#include "cxl/link.hh"
#include "memo/memo.hh"
#include "sim/fault.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace
{

/* ------------------------- FaultSpec ----------------------------- */

TEST(FaultSpec, ParsesFullGrammar)
{
    std::string err;
    const auto spec = FaultSpec::parse(
        "crc=1e-4,poison=0.5,timeout=0.1,drain=0.2,dram=0.3,"
        "stall-ns=100,timeout-ns=500,backoff-ns=50,retries=4,"
        "degrade=10,seed=7",
        err);
    ASSERT_TRUE(spec.has_value()) << err;
    EXPECT_DOUBLE_EQ(spec->crcPerFlit, 1e-4);
    EXPECT_DOUBLE_EQ(spec->readPoisonRate, 0.5);
    EXPECT_DOUBLE_EQ(spec->timeoutRate, 0.1);
    EXPECT_DOUBLE_EQ(spec->drainStallRate, 0.2);
    EXPECT_DOUBLE_EQ(spec->dramStallRate, 0.3);
    EXPECT_EQ(spec->drainStallTicks, ticksFromNs(100.0));
    EXPECT_EQ(spec->dramStallTicks, ticksFromNs(100.0));
    EXPECT_EQ(spec->requestTimeout, ticksFromNs(500.0));
    EXPECT_EQ(spec->backoffBase, ticksFromNs(50.0));
    EXPECT_EQ(spec->maxHostRetries, 4u);
    EXPECT_EQ(spec->degradeBurst, 10u);
    EXPECT_EQ(spec->seed, 7u);
    EXPECT_TRUE(spec->enabled());
}

TEST(FaultSpec, EmptySpecIsDisabled)
{
    std::string err;
    const auto spec = FaultSpec::parse("", err);
    ASSERT_TRUE(spec.has_value());
    EXPECT_FALSE(spec->enabled());
}

TEST(FaultSpec, RejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(FaultSpec::parse("crc", err).has_value());
    EXPECT_NE(err.find("key=value"), std::string::npos);
    EXPECT_FALSE(FaultSpec::parse("bogus=1", err).has_value());
    EXPECT_FALSE(FaultSpec::parse("crc=notanumber", err).has_value());
    EXPECT_FALSE(FaultSpec::parse("crc=0.1x", err).has_value());
    EXPECT_FALSE(FaultSpec::parse("timeout-ns=0", err).has_value());
}

TEST(FaultSpec, RejectsOutOfRangeValues)
{
    std::string err;
    EXPECT_FALSE(FaultSpec::parse("crc=1.5", err).has_value());
    EXPECT_NE(err.find("[0,1]"), std::string::npos);
    EXPECT_FALSE(FaultSpec::parse("poison=-0.1", err).has_value());
    EXPECT_FALSE(FaultSpec::parse("retries=0", err).has_value());
    EXPECT_FALSE(FaultSpec::parse("retries=17", err).has_value());
    EXPECT_NE(err.find("[1,16]"), std::string::npos);
}

TEST(FaultSpec, ValidateThrowsOnBadRates)
{
    FaultSpec s;
    s.crcPerFlit = 2.0;
    EXPECT_THROW(s.validate(), std::invalid_argument);
    s = FaultSpec{};
    s.maxHostRetries = 0;
    EXPECT_THROW(s.validate(), std::invalid_argument);
    EXPECT_THROW(FaultInjector{s}, std::invalid_argument);
}

/* ------------------------ FaultInjector -------------------------- */

TEST(FaultInjector, SameSeedSameDecisionSequence)
{
    FaultSpec s;
    s.crcPerFlit = 0.3;
    s.seed = 1234;
    FaultInjector a(s), b(s);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.flitCrcError(), b.flitCrcError()) << "draw " << i;
}

TEST(FaultInjector, ZeroRateNeverFiresAndBurnsNoRandomness)
{
    FaultSpec s;
    s.crcPerFlit = 0.5;
    s.seed = 99;
    FaultInjector a(s), b(s);
    // b interleaves zero-probability draws; they must not consume
    // from the RNG stream, or disabled fault classes would perturb
    // enabled ones.
    for (int i = 0; i < 200; ++i) {
        EXPECT_FALSE(b.poisonRead());
        EXPECT_FALSE(b.requestTimedOut());
        ASSERT_EQ(a.flitCrcError(), b.flitCrcError());
    }
}

TEST(FaultInjector, PoisonArmConsumeHandshake)
{
    FaultSpec s;
    s.readPoisonRate = 1.0;
    FaultInjector fi(s);
    EXPECT_FALSE(fi.consumePoison());
    fi.armPoison();
    EXPECT_TRUE(fi.consumePoison());
    EXPECT_FALSE(fi.consumePoison()) << "consume must disarm";
}

/* -------------------------- link retry --------------------------- */

CxlLinkParams
testLink()
{
    CxlLinkParams p;
    p.rawGBps = 64.0;
    p.flitEfficiency = 0.5;
    p.propagation = ticksFromNs(10.0);
    return p;
}

TEST(CxlLinkRetry, CrcFailureDelaysDeliveryAndBurnsCapacity)
{
    EventQueue eq;
    FaultSpec s;
    s.crcPerFlit = 1.0; // every CRC check fails: worst case, capped
    FaultInjector fi(s);
    CxlLinkDirection healthy(eq, testLink());
    CxlLinkDirection faulty(eq, testLink(), &fi);

    const Tick clean = healthy.transmit(64);
    const Tick dirty = faulty.transmit(64);
    EXPECT_GT(dirty, clean);

    const RasStats &rs = fi.stats();
    EXPECT_GT(rs.crcErrors, 0u);
    EXPECT_EQ(rs.linkRetries, rs.crcErrors);
    EXPECT_EQ(rs.replayBytes,
              rs.flitsReplayed * CxlLinkDirection::flitBytes);
    EXPECT_GT(rs.retryTicks, 0u);
    // Replayed flits burn link capacity on top of the payload.
    EXPECT_EQ(faulty.bytesMoved(), 64u + rs.replayBytes);
}

TEST(CxlLinkRetry, CleanLinkMatchesFaultFreeWhenRateIsZero)
{
    EventQueue eq;
    FaultSpec s;
    s.readPoisonRate = 1.0; // enabled, but CRC rate stays zero
    FaultInjector fi(s);
    CxlLinkDirection healthy(eq, testLink());
    CxlLinkDirection faulty(eq, testLink(), &fi);
    EXPECT_EQ(faulty.transmit(1024), healthy.transmit(1024));
    EXPECT_EQ(fi.stats().crcErrors, 0u);
}

TEST(CxlLinkRetry, ErrorBurstDegradesLinkAtMostTwice)
{
    EventQueue eq;
    FaultSpec s;
    s.crcPerFlit = 1.0;
    s.degradeBurst = 4;
    FaultInjector fi(s);
    CxlLinkDirection dir(eq, testLink(), &fi);
    EXPECT_DOUBLE_EQ(dir.effectiveRawGBps(), 64.0);
    for (int i = 0; i < 8; ++i)
        dir.transmit(64);
    EXPECT_EQ(dir.degradeLevel(), 2u);
    EXPECT_EQ(fi.stats().linkDegradations, 2u);
    EXPECT_DOUBLE_EQ(dir.effectiveRawGBps(), 16.0);
}

/* ------------------- machine-level recovery ---------------------- */

/** Load @p count distinct lines from the CXL node of @p m. */
ThreadStats
loadCxlLines(Machine &m, int count)
{
    NumaBuffer buf =
        m.numa().alloc(4 * miB, MemPolicy::membind(m.cxlNode()));
    std::vector<MemOp> ops;
    for (int i = 0; i < count; ++i)
        ops.push_back({MemOp::Kind::Load,
                       buf.translate(std::uint64_t(i) * 4096), 0});
    HwThread t(m.caches(), 0, m.coreParams());
    t.start(std::make_unique<ListStream>(std::move(ops)),
            m.eq().curTick(), {});
    m.eq().run();
    EXPECT_TRUE(t.finished());
    return t.stats();
}

TEST(MachineFaults, DisabledByDefault)
{
    Machine m(Testbed::SingleSocketCxl);
    EXPECT_EQ(m.faults(), nullptr);
    EXPECT_EQ(m.rasStats(), nullptr);
}

TEST(MachineFaults, TimeoutsRetryWithBackoffAndStillComplete)
{
    MachineOptions o;
    o.faults.timeoutRate = 1.0; // every attempt times out...
    o.faults.maxHostRetries = 3; // ...until the bounded budget is spent
    Machine m(Testbed::SingleSocketCxl, o);
    const ThreadStats ts = loadCxlLines(m, 8);
    EXPECT_EQ(ts.loads, 8u);
    const RasStats *rs = m.rasStats();
    ASSERT_NE(rs, nullptr);
    EXPECT_EQ(rs->timeouts, 8u * 3u);
    EXPECT_EQ(rs->hostRetries, rs->timeouts);
    EXPECT_GT(rs->backoffTicks, 0u);
}

TEST(MachineFaults, PoisonIsNeverSilent)
{
    MachineOptions o;
    o.faults.readPoisonRate = 1.0;
    Machine m(Testbed::SingleSocketCxl, o);
    const ThreadStats ts = loadCxlLines(m, 16);
    const RasStats *rs = m.rasStats();
    ASSERT_NE(rs, nullptr);
    EXPECT_GT(rs->poisonInjected, 0u);
    // Accounting invariant: every injected poison is either absorbed
    // by a cache fill or handed to a non-caching consumer.
    EXPECT_EQ(rs->poisonInjected,
              rs->poisonConsumed + rs->poisonDelivered);
    // The consumer sees it: demand loads report the poison indication.
    EXPECT_EQ(ts.poisonedLoads, 16u);
    EXPECT_GT(m.caches().rasStats().poisonedFills, 0u);
}

TEST(MachineFaults, PoisonedLineHitsKeepReporting)
{
    MachineOptions o;
    o.faults.readPoisonRate = 1.0;
    Machine m(Testbed::SingleSocketCxl, o);
    NumaBuffer buf =
        m.numa().alloc(1 * miB, MemPolicy::membind(m.cxlNode()));
    const Addr a = buf.translate(0);
    // Miss (poisoned fill), then -- fenced so the two don't coalesce
    // in one fill buffer -- a cache hit on the same line.
    std::vector<MemOp> ops = {{MemOp::Kind::Load, a, 0},
                              {MemOp::Kind::Mfence, 0, 0},
                              {MemOp::Kind::Load, a, 0}};
    HwThread t(m.caches(), 0, m.coreParams());
    t.start(std::make_unique<ListStream>(std::move(ops)),
            m.eq().curTick(), {});
    m.eq().run();
    EXPECT_EQ(t.stats().poisonedLoads, 2u);
    EXPECT_GE(m.caches().rasStats().poisonedHits, 1u);
    EXPECT_GT(m.caches().poisonedLinesCached(), 0u);
}

TEST(MachineFaults, StallEpisodesAreCounted)
{
    MachineOptions o;
    o.faults.dramStallRate = 1.0;
    o.faults.drainStallRate = 1.0;
    Machine m(Testbed::SingleSocketCxl, o);
    NumaBuffer buf =
        m.numa().alloc(1 * miB, MemPolicy::membind(m.cxlNode()));
    std::vector<MemOp> ops;
    for (int i = 0; i < 8; ++i) {
        const Addr a = buf.translate(std::uint64_t(i) * 4096);
        ops.push_back({MemOp::Kind::NtStore, a, 0});
    }
    ops.push_back({MemOp::Kind::Sfence, 0, 0});
    HwThread t(m.caches(), 0, m.coreParams());
    t.start(std::make_unique<ListStream>(std::move(ops)),
            m.eq().curTick(), {});
    m.eq().run();
    const RasStats *rs = m.rasStats();
    ASSERT_NE(rs, nullptr);
    EXPECT_GT(rs->drainStalls, 0u);
    EXPECT_GT(rs->dramStalls, 0u);
}

TEST(MachineFaults, LocalDdr5StaysHealthy)
{
    MachineOptions o;
    o.faults.readPoisonRate = 1.0;
    o.faults.dramStallRate = 1.0;
    Machine m(Testbed::SingleSocketCxl, o);
    NumaBuffer buf =
        m.numa().alloc(1 * miB, MemPolicy::membind(m.localNode()));
    std::vector<MemOp> ops;
    for (int i = 0; i < 8; ++i)
        ops.push_back({MemOp::Kind::Load,
                       buf.translate(std::uint64_t(i) * 4096), 0});
    HwThread t(m.caches(), 0, m.coreParams());
    t.start(std::make_unique<ListStream>(std::move(ops)),
            m.eq().curTick(), {});
    m.eq().run();
    // Faults model the CXL path only: local DDR5 never poisons or
    // stalls, so nothing fired.
    const RasStats *rs = m.rasStats();
    ASSERT_NE(rs, nullptr);
    EXPECT_EQ(rs->poisonInjected, 0u);
    EXPECT_EQ(rs->dramStalls, 0u);
    EXPECT_EQ(t.stats().poisonedLoads, 0u);
}

TEST(MachineFaults, SameSeedSameStatsAcrossMachines)
{
    MachineOptions o;
    o.faults.crcPerFlit = 0.01;
    o.faults.readPoisonRate = 0.01;
    o.faults.timeoutRate = 0.01;
    auto run = [&o] {
        Machine m(Testbed::SingleSocketCxl, o);
        loadCxlLines(m, 64);
        return m.statsString();
    };
    EXPECT_EQ(run(), run());
}

TEST(MachineFaults, StatsStringSurfacesRasCounters)
{
    MachineOptions o;
    o.faults.crcPerFlit = 0.05;
    Machine m(Testbed::SingleSocketCxl, o);
    loadCxlLines(m, 64);
    const std::string s = m.statsString();
    EXPECT_NE(s.find("ras:"), std::string::npos);
    EXPECT_NE(s.find("crc-errors="), std::string::npos);
    EXPECT_NE(s.find("link degrade level"), std::string::npos);
}

TEST(MachineFaults, ResetStatsClearsRasCounters)
{
    MachineOptions o;
    o.faults.crcPerFlit = 1.0;
    Machine m(Testbed::SingleSocketCxl, o);
    loadCxlLines(m, 4);
    ASSERT_GT(m.rasStats()->crcErrors, 0u);
    m.resetStats();
    EXPECT_EQ(m.rasStats()->crcErrors, 0u);
}

} // namespace
} // namespace cxlmemo
