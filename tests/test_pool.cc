/**
 * @file
 * Tests for the pooled-cluster scenario layer: PoolSpec grammar and
 * validation, clean-run completion, crash detection and fencing
 * (time-to-fence, quarantine -> scrub -> re-grant), the
 * machine-checked blast-radius invariant (victim digests identical
 * between the full disturbed run and a victim-only baseline),
 * byte-identical results at every --sim-threads count, exact --jobs
 * merges, the cross-host fairness regression pin, and the watchdog
 * post-mortem naming the stuck switch port.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "memo/memo.hh"
#include "system/cluster.hh"

namespace cxlmemo
{
namespace
{

using memo::runPool;

/** Small disturbed scenario used across the determinism tests. */
PoolSpec
drillSpec()
{
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=4,ops=1500,crash-host=1,crash-at-ns=20000,aggressor=3,"
        "credits=16,poison-host=2,poison-every=97",
        err);
    EXPECT_TRUE(sp.has_value()) << err;
    return *sp;
}

/* ----------------------------- PoolSpec -------------------------- */

TEST(PoolSpec, ParsesFullGrammar)
{
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=4,devices=2,capacity-mb=128,window-mb=32,credits=8,"
        "arb=fixed,ops=5000,read-frac=0.5,mlp=4,aggressor=3,"
        "crash-host=1,crash-at-ns=10000,fence-check-ns=1000,"
        "miss-threshold=3,scrub-ns-per-mb=50,contain=abort,"
        "poison-host=2,poison-every=10,port-down-host=0,"
        "port-down-at-ns=500,retrain-ns=750,seed=7",
        err);
    ASSERT_TRUE(sp.has_value()) << err;
    EXPECT_EQ(sp->hosts, 4u);
    EXPECT_EQ(sp->devices, 2u);
    EXPECT_EQ(sp->capacityMb, 128u);
    EXPECT_EQ(sp->windowMb, 32u);
    EXPECT_EQ(sp->credits, 8u);
    EXPECT_EQ(sp->arb, CxlSwitchParams::Arb::Fixed);
    EXPECT_EQ(sp->ops, 5000u);
    EXPECT_DOUBLE_EQ(sp->readFrac, 0.5);
    EXPECT_EQ(sp->aggressor, 3);
    EXPECT_EQ(sp->crashHost, 1);
    EXPECT_EQ(sp->contain, ContainPolicy::Abort);
    EXPECT_EQ(sp->poisonHost, 2);
    EXPECT_EQ(sp->portDownHost, 0);
    EXPECT_EQ(sp->seed, 7u);
    EXPECT_TRUE(sp->disturbed());
    EXPECT_EQ(sp->victimHost(), -1); // every host is disturbed
}

TEST(PoolSpec, ToStringRoundTrips)
{
    const PoolSpec sp = drillSpec();
    std::string err;
    const auto again = PoolSpec::parse(sp.toString(), err);
    ASSERT_TRUE(again.has_value()) << err << " <- " << sp.toString();
    EXPECT_EQ(again->toString(), sp.toString());
}

TEST(PoolSpec, RejectsBadInput)
{
    std::string err;
    EXPECT_FALSE(PoolSpec::parse("hosts=0", err).has_value());
    err.clear();
    EXPECT_FALSE(PoolSpec::parse("bogus-key=1", err).has_value());
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_FALSE(PoolSpec::parse("hosts", err).has_value());
    err.clear();
    // Disturbances must be fully specified.
    EXPECT_FALSE(PoolSpec::parse("crash-host=1", err).has_value());
    err.clear();
    EXPECT_FALSE(PoolSpec::parse("poison-host=0", err).has_value());
    err.clear();
    // Windows must fit the pool.
    EXPECT_FALSE(
        PoolSpec::parse("hosts=4,capacity-mb=16,window-mb=8", err)
            .has_value());
    err.clear();
    // Aggressor index must name a real host.
    EXPECT_FALSE(PoolSpec::parse("hosts=2,aggressor=5", err)
                     .has_value());
}

TEST(PoolSpec, DefaultSpecIsCleanAndValid)
{
    const PoolSpec sp;
    EXPECT_NO_THROW(sp.validate());
    EXPECT_FALSE(sp.disturbed());
    EXPECT_EQ(sp.victimHost(), 0);
    const PoolSpec base = drillSpec().isolationBaseline();
    EXPECT_FALSE(base.disturbed());
    EXPECT_NO_THROW(base.validate());
}

/* ----------------------------- clean run ------------------------- */

TEST(Pool, CleanRunCompletesEveryHost)
{
    PoolSpec sp;
    sp.hosts = 2;
    sp.ops = 1000;
    const auto r = runPool(sp);
    ASSERT_EQ(r.cluster.hosts.size(), 2u);
    for (const auto &h : r.cluster.hosts) {
        EXPECT_EQ(h.digest.ops, sp.ops);
        EXPECT_GT(h.digest.reads, 0u);
        EXPECT_GT(h.digest.writes, 0u);
        EXPECT_EQ(h.digest.poisoned, 0u);
        EXPECT_EQ(h.digest.aborted, 0u);
        EXPECT_FALSE(h.fenced);
        EXPECT_EQ(h.role, "normal");
        EXPECT_GT(h.gbps, 0.0);
        EXPECT_GT(h.readP99Ns, 0.0);
    }
    EXPECT_TRUE(r.cluster.ledgerOk);
    EXPECT_TRUE(r.isolationOk);
    EXPECT_LT(r.cluster.timeToFenceNs, 0.0); // nothing fenced
    EXPECT_NE(r.cluster.verdict.find("no-aggressor"),
              std::string::npos)
        << r.cluster.verdict;
}

/* ------------------------ crash and fencing ---------------------- */

TEST(Pool, CrashIsFencedAndCapacityRecovered)
{
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=3,ops=1500,crash-host=1,crash-at-ns=20000,"
        "fence-check-ns=2000,miss-threshold=2",
        err);
    ASSERT_TRUE(sp.has_value()) << err;
    const auto r = runPool(*sp);
    const auto &c = r.cluster;
    ASSERT_EQ(c.hosts.size(), 3u);
    EXPECT_TRUE(c.hosts[1].fenced);
    EXPECT_EQ(c.hosts[1].role, "crashed");
    EXPECT_LT(c.hosts[1].digest.ops, sp->ops); // died mid-run
    EXPECT_FALSE(c.hosts[0].fenced);
    EXPECT_FALSE(c.hosts[2].fenced);
    EXPECT_EQ(c.hosts[0].digest.ops, sp->ops);
    EXPECT_EQ(c.hosts[2].digest.ops, sp->ops);

    // Detection latency: the dead host misses `missThreshold` beat
    // periods, so the fence lands one check period after that window.
    EXPECT_GT(c.timeToFenceNs, 0.0);
    EXPECT_LE(c.timeToFenceNs,
              (sp->missThreshold + 2) * sp->fenceCheckNs);

    // Its capacity was quarantined, scrubbed, and re-granted.
    EXPECT_GT(c.quarantinedBytes, 0u);
    EXPECT_GT(c.recoveredBytes, 0u);
    EXPECT_LE(c.recoveredBytes, c.quarantinedBytes);
    EXPECT_TRUE(c.ledgerOk);
    EXPECT_TRUE(r.isolationOk);
    EXPECT_FALSE(c.watchdogTripped);
}

TEST(Pool, AbortContainmentAlsoConvergesAndConserves)
{
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=2,ops=1000,crash-host=1,crash-at-ns=5000,"
        "contain=abort",
        err);
    ASSERT_TRUE(sp.has_value()) << err;
    const auto r = runPool(*sp);
    EXPECT_TRUE(r.cluster.hosts[1].fenced);
    EXPECT_TRUE(r.cluster.ledgerOk);
    EXPECT_TRUE(r.isolationOk);
    EXPECT_EQ(r.cluster.hosts[0].digest.ops, 1000u);
}

/* ------------------- blast-radius / determinism ------------------ */

TEST(Pool, IsolationInvariantVictimDigestMatchesSoloBaseline)
{
    // The built-in self-test: run the disturbed cluster and the
    // victim-only baseline; the victim's functional digest must be
    // byte-identical even though three other hosts crashed, flooded
    // and poisoned around it.
    const auto r = runPool(drillSpec());
    EXPECT_GE(r.victim, 0);
    EXPECT_TRUE(r.isolationOk);
    EXPECT_TRUE(r.cluster.ledgerOk);
}

TEST(Pool, ResultIsByteIdenticalAtEverySimThreadCount)
{
    // The parallel-engine contract (same as the single-machine one
    // from the domain-partitioned engine): every thread count >= 1
    // produces the same execution, so the *entire* result -- digests,
    // fencing timeline, verdict, end tick -- matches exactly.
    const PoolSpec sp = drillSpec();
    auto runAt = [&sp](std::uint32_t threads) {
        Cluster::Options o;
        o.simThreads = threads;
        Cluster c(sp, o);
        return c.run();
    };
    const ClusterResult ref = runAt(1);
    for (std::uint32_t t : {2u, 8u}) {
        const ClusterResult par = runAt(t);
        ASSERT_EQ(par.hosts.size(), ref.hosts.size());
        for (std::size_t h = 0; h < ref.hosts.size(); ++h) {
            EXPECT_EQ(par.hosts[h].digest, ref.hosts[h].digest)
                << "host " << h << " at sim-threads " << t;
            EXPECT_EQ(par.hosts[h].fenced, ref.hosts[h].fenced);
            EXPECT_DOUBLE_EQ(par.hosts[h].readP99Ns,
                             ref.hosts[h].readP99Ns);
        }
        EXPECT_DOUBLE_EQ(par.timeToFenceNs, ref.timeToFenceNs);
        EXPECT_EQ(par.quarantinedBytes, ref.quarantinedBytes);
        EXPECT_EQ(par.recoveredBytes, ref.recoveredBytes);
        EXPECT_EQ(par.verdict, ref.verdict);
        EXPECT_EQ(par.endTick, ref.endTick);
        EXPECT_TRUE(par.ledgerOk);
    }
}

TEST(Pool, UndisturbedDigestsAgreeAcrossEngines)
{
    // Classic (single queue) and parallel are different engines and
    // may interleave same-tick fabric arrivals differently, which
    // legitimately moves latency and any completion-order-coupled
    // stream (the poison shaper). What must NOT move is the
    // functional digest of a host nobody disturbs -- that is the
    // timing-independence half of the blast-radius argument, across
    // engines rather than across disturbances.
    const PoolSpec sp = drillSpec(); // poisons host 2, crashes host 1
    Cluster classic(sp);
    Cluster::Options po;
    po.simThreads = 2;
    Cluster parallel(sp, po);
    const auto a = classic.run();
    const auto b = parallel.run();
    EXPECT_EQ(a.hosts[0].digest, b.hosts[0].digest); // victim
    EXPECT_EQ(a.hosts[3].digest, b.hosts[3].digest); // aggressor
}

TEST(Pool, JobsMergeIsExact)
{
    const PoolSpec sp = drillSpec();
    const auto seq = runPool(sp, {}, 1);
    const auto par = runPool(sp, {}, 2);
    ASSERT_EQ(seq.cluster.hosts.size(), par.cluster.hosts.size());
    for (std::size_t h = 0; h < seq.cluster.hosts.size(); ++h)
        EXPECT_EQ(seq.cluster.hosts[h].digest,
                  par.cluster.hosts[h].digest);
    EXPECT_EQ(seq.isolationOk, par.isolationOk);
    EXPECT_EQ(seq.cluster.verdict, par.cluster.verdict);
}

TEST(Pool, DisturbingOneHostNeverChangesAnothersDigest)
{
    // Direct statement of the blast-radius invariant, without
    // runPool's solo-baseline machinery: host 0's digest is the same
    // whether host 1 crashes or not (only its latency may move).
    PoolSpec clean;
    clean.hosts = 2;
    clean.ops = 1000;
    std::string err;
    const auto crash = PoolSpec::parse(
        "hosts=2,ops=1000,crash-host=1,crash-at-ns=5000", err);
    ASSERT_TRUE(crash.has_value()) << err;
    Cluster a(clean);
    Cluster b(*crash);
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.hosts[0].digest, rb.hosts[0].digest);
    EXPECT_NE(ra.hosts[1].digest, rb.hosts[1].digest); // it died
}

/* ----------------------- poison routing -------------------------- */

TEST(Pool, PoisonLandsOnlyInTargetedHostsLedger)
{
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=3,ops=1500,poison-host=2,poison-every=50", err);
    ASSERT_TRUE(sp.has_value()) << err;
    const auto r = runPool(*sp);
    const auto &c = r.cluster;
    EXPECT_GT(c.hosts[2].digest.poisoned, 0u);
    EXPECT_NE(c.hosts[2].digest.ledgerHash,
              c.hosts[0].digest.ledgerHash);
    EXPECT_EQ(c.hosts[0].digest.poisoned, 0u);
    EXPECT_EQ(c.hosts[1].digest.poisoned, 0u);
    EXPECT_EQ(c.hosts[0].digest.ledgerHash,
              c.hosts[1].digest.ledgerHash); // both empty ledgers
    EXPECT_TRUE(r.isolationOk);
}

/* --------------------- fairness regression ----------------------- */

TEST(Pool, AggressorWithCreditsVictimTailStaysPinned)
{
    // Cross-host fairness pin: an nt-store flooding neighbor behind
    // per-port credit pools must not blow up the victim's read tail.
    // The bound is deliberately generous against the measured ~510 ns
    // p99; a fairness regression in arbitration or credit handling
    // shows up as a multiple, not a few percent.
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=2,ops=4000,aggressor=1,credits=8", err);
    ASSERT_TRUE(sp.has_value()) << err;
    const auto r = runPool(*sp);
    const auto &victim = r.cluster.hosts[0];
    EXPECT_EQ(victim.role, "victim");
    EXPECT_EQ(victim.digest.ops, 4000u);
    EXPECT_GT(victim.readP99Ns, 0.0);
    EXPECT_LT(victim.readP99Ns, 1000.0) << "victim p99 regressed";
    // The verdict names the aggressor and the victim port.
    EXPECT_NE(r.cluster.verdict.find("aggressor=host1"),
              std::string::npos)
        << r.cluster.verdict;
    EXPECT_NE(r.cluster.verdict.find("victim=host0"),
              std::string::npos)
        << r.cluster.verdict;
    // And the aggressor may not corrupt the victim's data while
    // degrading its latency.
    EXPECT_TRUE(r.isolationOk);
}

/* ------------------------ watchdog coverage ---------------------- */

TEST(Pool, WatchdogPostMortemNamesStuckPort)
{
    // Park port 0 in a never-ending retrain: its traffic is held,
    // the cluster stops making progress, and the watchdog's
    // post-mortem must name the stuck port and the waiting host.
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=2,ops=2000,port-down-host=0,port-down-at-ns=5000,"
        "retrain-ns=100000000",
        err);
    ASSERT_TRUE(sp.has_value()) << err;
    Cluster::Options o;
    o.watchdogUs = 20.0;
    o.limitUs = 500.0;
    Cluster c(*sp, o);
    const auto r = c.run();
    EXPECT_TRUE(r.watchdogTripped);
    EXPECT_NE(r.watchdogReport.find("port0"), std::string::npos)
        << r.watchdogReport;
    EXPECT_NE(r.watchdogReport.find("host0"), std::string::npos)
        << r.watchdogReport;
}

TEST(Pool, WatchdogStaysQuietOnAHealthyDrill)
{
    Cluster::Options o;
    o.watchdogUs = 50.0;
    Cluster c(drillSpec(), o);
    const auto r = c.run();
    EXPECT_FALSE(r.watchdogTripped) << r.watchdogReport;
    EXPECT_TRUE(r.ledgerOk);
}

} // namespace
} // namespace cxlmemo
