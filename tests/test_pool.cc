/**
 * @file
 * Tests for the pooled-cluster scenario layer: PoolSpec grammar and
 * validation, clean-run completion, crash detection and fencing
 * (time-to-fence, quarantine -> scrub -> re-grant), the
 * machine-checked blast-radius invariant (victim digests identical
 * between the full disturbed run and a victim-only baseline),
 * byte-identical results at every --sim-threads count, exact --jobs
 * merges, the cross-host fairness regression pin, and the watchdog
 * post-mortem naming the stuck switch port.
 *
 * Fabric observability rides the same scenarios: exact per-port
 * latency decomposition with a Little's-law self-test, the cluster
 * bottleneck verdict, cross-host trace timelines (including the
 * fence-containment litmus), and the conserving metrics timeline --
 * all bit-identical when disabled and byte-identical at every
 * --sim-threads count.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "memo/memo.hh"
#include "system/cluster.hh"

namespace cxlmemo
{
namespace
{

using memo::runPool;

/** Small disturbed scenario used across the determinism tests. */
PoolSpec
drillSpec()
{
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=4,ops=1500,crash-host=1,crash-at-ns=20000,aggressor=3,"
        "credits=16,poison-host=2,poison-every=97",
        err);
    EXPECT_TRUE(sp.has_value()) << err;
    return *sp;
}

/* ----------------------------- PoolSpec -------------------------- */

TEST(PoolSpec, ParsesFullGrammar)
{
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=4,devices=2,capacity-mb=128,window-mb=32,credits=8,"
        "arb=fixed,ops=5000,read-frac=0.5,mlp=4,aggressor=3,"
        "crash-host=1,crash-at-ns=10000,fence-check-ns=1000,"
        "miss-threshold=3,scrub-ns-per-mb=50,contain=abort,"
        "poison-host=2,poison-every=10,port-down-host=0,"
        "port-down-at-ns=500,retrain-ns=750,seed=7",
        err);
    ASSERT_TRUE(sp.has_value()) << err;
    EXPECT_EQ(sp->hosts, 4u);
    EXPECT_EQ(sp->devices, 2u);
    EXPECT_EQ(sp->capacityMb, 128u);
    EXPECT_EQ(sp->windowMb, 32u);
    EXPECT_EQ(sp->credits, 8u);
    EXPECT_EQ(sp->arb, CxlSwitchParams::Arb::Fixed);
    EXPECT_EQ(sp->ops, 5000u);
    EXPECT_DOUBLE_EQ(sp->readFrac, 0.5);
    EXPECT_EQ(sp->aggressor, 3);
    EXPECT_EQ(sp->crashHost, 1);
    EXPECT_EQ(sp->contain, ContainPolicy::Abort);
    EXPECT_EQ(sp->poisonHost, 2);
    EXPECT_EQ(sp->portDownHost, 0);
    EXPECT_EQ(sp->seed, 7u);
    EXPECT_TRUE(sp->disturbed());
    EXPECT_EQ(sp->victimHost(), -1); // every host is disturbed
}

TEST(PoolSpec, ToStringRoundTrips)
{
    const PoolSpec sp = drillSpec();
    std::string err;
    const auto again = PoolSpec::parse(sp.toString(), err);
    ASSERT_TRUE(again.has_value()) << err << " <- " << sp.toString();
    EXPECT_EQ(again->toString(), sp.toString());
}

TEST(PoolSpec, RejectsBadInput)
{
    std::string err;
    EXPECT_FALSE(PoolSpec::parse("hosts=0", err).has_value());
    err.clear();
    EXPECT_FALSE(PoolSpec::parse("bogus-key=1", err).has_value());
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_FALSE(PoolSpec::parse("hosts", err).has_value());
    err.clear();
    // Disturbances must be fully specified.
    EXPECT_FALSE(PoolSpec::parse("crash-host=1", err).has_value());
    err.clear();
    EXPECT_FALSE(PoolSpec::parse("poison-host=0", err).has_value());
    err.clear();
    // Windows must fit the pool.
    EXPECT_FALSE(
        PoolSpec::parse("hosts=4,capacity-mb=16,window-mb=8", err)
            .has_value());
    err.clear();
    // Aggressor index must name a real host.
    EXPECT_FALSE(PoolSpec::parse("hosts=2,aggressor=5", err)
                     .has_value());
}

TEST(PoolSpec, DefaultSpecIsCleanAndValid)
{
    const PoolSpec sp;
    EXPECT_NO_THROW(sp.validate());
    EXPECT_FALSE(sp.disturbed());
    EXPECT_EQ(sp.victimHost(), 0);
    const PoolSpec base = drillSpec().isolationBaseline();
    EXPECT_FALSE(base.disturbed());
    EXPECT_NO_THROW(base.validate());
}

/* ----------------------------- clean run ------------------------- */

TEST(Pool, CleanRunCompletesEveryHost)
{
    PoolSpec sp;
    sp.hosts = 2;
    sp.ops = 1000;
    const auto r = runPool(sp);
    ASSERT_EQ(r.cluster.hosts.size(), 2u);
    for (const auto &h : r.cluster.hosts) {
        EXPECT_EQ(h.digest.ops, sp.ops);
        EXPECT_GT(h.digest.reads, 0u);
        EXPECT_GT(h.digest.writes, 0u);
        EXPECT_EQ(h.digest.poisoned, 0u);
        EXPECT_EQ(h.digest.aborted, 0u);
        EXPECT_FALSE(h.fenced);
        EXPECT_EQ(h.role, "normal");
        EXPECT_GT(h.gbps, 0.0);
        EXPECT_GT(h.readP99Ns, 0.0);
    }
    EXPECT_TRUE(r.cluster.ledgerOk);
    EXPECT_TRUE(r.isolationOk);
    EXPECT_LT(r.cluster.timeToFenceNs, 0.0); // nothing fenced
    EXPECT_NE(r.cluster.verdict.find("no-aggressor"),
              std::string::npos)
        << r.cluster.verdict;
}

/* ------------------------ crash and fencing ---------------------- */

TEST(Pool, CrashIsFencedAndCapacityRecovered)
{
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=3,ops=1500,crash-host=1,crash-at-ns=20000,"
        "fence-check-ns=2000,miss-threshold=2",
        err);
    ASSERT_TRUE(sp.has_value()) << err;
    const auto r = runPool(*sp);
    const auto &c = r.cluster;
    ASSERT_EQ(c.hosts.size(), 3u);
    EXPECT_TRUE(c.hosts[1].fenced);
    EXPECT_EQ(c.hosts[1].role, "crashed");
    EXPECT_LT(c.hosts[1].digest.ops, sp->ops); // died mid-run
    EXPECT_FALSE(c.hosts[0].fenced);
    EXPECT_FALSE(c.hosts[2].fenced);
    EXPECT_EQ(c.hosts[0].digest.ops, sp->ops);
    EXPECT_EQ(c.hosts[2].digest.ops, sp->ops);

    // Detection latency: the dead host misses `missThreshold` beat
    // periods, so the fence lands one check period after that window.
    EXPECT_GT(c.timeToFenceNs, 0.0);
    EXPECT_LE(c.timeToFenceNs,
              (sp->missThreshold + 2) * sp->fenceCheckNs);

    // Its capacity was quarantined, scrubbed, and re-granted.
    EXPECT_GT(c.quarantinedBytes, 0u);
    EXPECT_GT(c.recoveredBytes, 0u);
    EXPECT_LE(c.recoveredBytes, c.quarantinedBytes);
    EXPECT_TRUE(c.ledgerOk);
    EXPECT_TRUE(r.isolationOk);
    EXPECT_FALSE(c.watchdogTripped);
}

TEST(Pool, AbortContainmentAlsoConvergesAndConserves)
{
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=2,ops=1000,crash-host=1,crash-at-ns=5000,"
        "contain=abort",
        err);
    ASSERT_TRUE(sp.has_value()) << err;
    const auto r = runPool(*sp);
    EXPECT_TRUE(r.cluster.hosts[1].fenced);
    EXPECT_TRUE(r.cluster.ledgerOk);
    EXPECT_TRUE(r.isolationOk);
    EXPECT_EQ(r.cluster.hosts[0].digest.ops, 1000u);
}

/* ------------------- blast-radius / determinism ------------------ */

TEST(Pool, IsolationInvariantVictimDigestMatchesSoloBaseline)
{
    // The built-in self-test: run the disturbed cluster and the
    // victim-only baseline; the victim's functional digest must be
    // byte-identical even though three other hosts crashed, flooded
    // and poisoned around it.
    const auto r = runPool(drillSpec());
    EXPECT_GE(r.victim, 0);
    EXPECT_TRUE(r.isolationOk);
    EXPECT_TRUE(r.cluster.ledgerOk);
}

TEST(Pool, ResultIsByteIdenticalAtEverySimThreadCount)
{
    // The parallel-engine contract (same as the single-machine one
    // from the domain-partitioned engine): every thread count >= 1
    // produces the same execution, so the *entire* result -- digests,
    // fencing timeline, verdict, end tick -- matches exactly.
    const PoolSpec sp = drillSpec();
    auto runAt = [&sp](std::uint32_t threads) {
        Cluster::Options o;
        o.simThreads = threads;
        Cluster c(sp, o);
        return c.run();
    };
    const ClusterResult ref = runAt(1);
    for (std::uint32_t t : {2u, 8u}) {
        const ClusterResult par = runAt(t);
        ASSERT_EQ(par.hosts.size(), ref.hosts.size());
        for (std::size_t h = 0; h < ref.hosts.size(); ++h) {
            EXPECT_EQ(par.hosts[h].digest, ref.hosts[h].digest)
                << "host " << h << " at sim-threads " << t;
            EXPECT_EQ(par.hosts[h].fenced, ref.hosts[h].fenced);
            EXPECT_DOUBLE_EQ(par.hosts[h].readP99Ns,
                             ref.hosts[h].readP99Ns);
        }
        EXPECT_DOUBLE_EQ(par.timeToFenceNs, ref.timeToFenceNs);
        EXPECT_EQ(par.quarantinedBytes, ref.quarantinedBytes);
        EXPECT_EQ(par.recoveredBytes, ref.recoveredBytes);
        EXPECT_EQ(par.verdict, ref.verdict);
        EXPECT_EQ(par.endTick, ref.endTick);
        EXPECT_TRUE(par.ledgerOk);
    }
}

TEST(Pool, UndisturbedDigestsAgreeAcrossEngines)
{
    // Classic (single queue) and parallel are different engines and
    // may interleave same-tick fabric arrivals differently, which
    // legitimately moves latency and any completion-order-coupled
    // stream (the poison shaper). What must NOT move is the
    // functional digest of a host nobody disturbs -- that is the
    // timing-independence half of the blast-radius argument, across
    // engines rather than across disturbances.
    const PoolSpec sp = drillSpec(); // poisons host 2, crashes host 1
    Cluster classic(sp);
    Cluster::Options po;
    po.simThreads = 2;
    Cluster parallel(sp, po);
    const auto a = classic.run();
    const auto b = parallel.run();
    EXPECT_EQ(a.hosts[0].digest, b.hosts[0].digest); // victim
    EXPECT_EQ(a.hosts[3].digest, b.hosts[3].digest); // aggressor
}

TEST(Pool, JobsMergeIsExact)
{
    const PoolSpec sp = drillSpec();
    const auto seq = runPool(sp, {}, 1);
    const auto par = runPool(sp, {}, 2);
    ASSERT_EQ(seq.cluster.hosts.size(), par.cluster.hosts.size());
    for (std::size_t h = 0; h < seq.cluster.hosts.size(); ++h)
        EXPECT_EQ(seq.cluster.hosts[h].digest,
                  par.cluster.hosts[h].digest);
    EXPECT_EQ(seq.isolationOk, par.isolationOk);
    EXPECT_EQ(seq.cluster.verdict, par.cluster.verdict);
}

TEST(Pool, DisturbingOneHostNeverChangesAnothersDigest)
{
    // Direct statement of the blast-radius invariant, without
    // runPool's solo-baseline machinery: host 0's digest is the same
    // whether host 1 crashes or not (only its latency may move).
    PoolSpec clean;
    clean.hosts = 2;
    clean.ops = 1000;
    std::string err;
    const auto crash = PoolSpec::parse(
        "hosts=2,ops=1000,crash-host=1,crash-at-ns=5000", err);
    ASSERT_TRUE(crash.has_value()) << err;
    Cluster a(clean);
    Cluster b(*crash);
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.hosts[0].digest, rb.hosts[0].digest);
    EXPECT_NE(ra.hosts[1].digest, rb.hosts[1].digest); // it died
}

/* ----------------------- poison routing -------------------------- */

TEST(Pool, PoisonLandsOnlyInTargetedHostsLedger)
{
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=3,ops=1500,poison-host=2,poison-every=50", err);
    ASSERT_TRUE(sp.has_value()) << err;
    const auto r = runPool(*sp);
    const auto &c = r.cluster;
    EXPECT_GT(c.hosts[2].digest.poisoned, 0u);
    EXPECT_NE(c.hosts[2].digest.ledgerHash,
              c.hosts[0].digest.ledgerHash);
    EXPECT_EQ(c.hosts[0].digest.poisoned, 0u);
    EXPECT_EQ(c.hosts[1].digest.poisoned, 0u);
    EXPECT_EQ(c.hosts[0].digest.ledgerHash,
              c.hosts[1].digest.ledgerHash); // both empty ledgers
    EXPECT_TRUE(r.isolationOk);
}

/* --------------------- fairness regression ----------------------- */

TEST(Pool, AggressorWithCreditsVictimTailStaysPinned)
{
    // Cross-host fairness pin: an nt-store flooding neighbor behind
    // per-port credit pools must not blow up the victim's read tail.
    // The bound is deliberately generous against the measured ~510 ns
    // p99; a fairness regression in arbitration or credit handling
    // shows up as a multiple, not a few percent.
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=2,ops=4000,aggressor=1,credits=8", err);
    ASSERT_TRUE(sp.has_value()) << err;
    const auto r = runPool(*sp);
    const auto &victim = r.cluster.hosts[0];
    EXPECT_EQ(victim.role, "victim");
    EXPECT_EQ(victim.digest.ops, 4000u);
    EXPECT_GT(victim.readP99Ns, 0.0);
    EXPECT_LT(victim.readP99Ns, 1000.0) << "victim p99 regressed";
    // The verdict names the aggressor and the victim port.
    EXPECT_NE(r.cluster.verdict.find("aggressor=host1"),
              std::string::npos)
        << r.cluster.verdict;
    EXPECT_NE(r.cluster.verdict.find("victim=host0"),
              std::string::npos)
        << r.cluster.verdict;
    // And the aggressor may not corrupt the victim's data while
    // degrading its latency.
    EXPECT_TRUE(r.isolationOk);
}

/* ------------------------ watchdog coverage ---------------------- */

TEST(Pool, WatchdogPostMortemNamesStuckPort)
{
    // Park port 0 in a never-ending retrain: its traffic is held,
    // the cluster stops making progress, and the watchdog's
    // post-mortem must name the stuck port and the waiting host.
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=2,ops=2000,port-down-host=0,port-down-at-ns=5000,"
        "retrain-ns=100000000",
        err);
    ASSERT_TRUE(sp.has_value()) << err;
    Cluster::Options o;
    o.watchdogUs = 20.0;
    o.limitUs = 500.0;
    Cluster c(*sp, o);
    const auto r = c.run();
    EXPECT_TRUE(r.watchdogTripped);
    EXPECT_NE(r.watchdogReport.find("port0"), std::string::npos)
        << r.watchdogReport;
    EXPECT_NE(r.watchdogReport.find("host0"), std::string::npos)
        << r.watchdogReport;
}

TEST(Pool, WatchdogStaysQuietOnAHealthyDrill)
{
    Cluster::Options o;
    o.watchdogUs = 50.0;
    Cluster c(drillSpec(), o);
    const auto r = c.run();
    EXPECT_FALSE(r.watchdogTripped) << r.watchdogReport;
    EXPECT_TRUE(r.ledgerOk);
}

/* -------------------- fabric attribution ------------------------- */

/** Field-exact comparison of two fabric snapshots (integer sums, so
 *  byte-identity across engines and thread counts is well-defined). */
void
expectFabricEq(const FabricSnapshot &l, const FabricSnapshot &r)
{
    ASSERT_EQ(l.ports.size(), r.ports.size());
    EXPECT_EQ(l.elapsed, r.elapsed);
    for (std::size_t p = 0; p < l.ports.size(); ++p) {
        EXPECT_EQ(l.ports[p].reqCount, r.ports[p].reqCount) << p;
        EXPECT_EQ(l.ports[p].totalTicks, r.ports[p].totalTicks) << p;
        for (std::size_t i = 0; i < numFabricStations; ++i) {
            const StationSnap &a = l.ports[p].st[i];
            const StationSnap &b = r.ports[p].st[i];
            EXPECT_EQ(a.enters, b.enters) << p << "/" << i;
            EXPECT_EQ(a.exits, b.exits) << p << "/" << i;
            EXPECT_EQ(a.queueTicks, b.queueTicks) << p << "/" << i;
            EXPECT_EQ(a.serviceTicks, b.serviceTicks) << p << "/" << i;
            EXPECT_EQ(a.busyTicks, b.busyTicks) << p << "/" << i;
            EXPECT_EQ(a.occIntegral, b.occIntegral) << p << "/" << i;
            EXPECT_EQ(a.stackQueueTicks, b.stackQueueTicks)
                << p << "/" << i;
            EXPECT_EQ(a.stackServiceTicks, b.stackServiceTicks)
                << p << "/" << i;
        }
    }
}

TEST(PoolFabric, CleanRunDecomposesToTheTick)
{
    // The §13 contract extended across the fabric: on a clean run
    // every port's station stack reconstructs its measured cross-
    // fabric latency exactly -- zero residual, in integer ticks --
    // and the credit/VOQ occupancy integrals pass Little's law.
    PoolSpec sp;
    sp.hosts = 3;
    sp.ops = 1500;
    memo::Options o;
    o.obs.attribution = true;
    const auto r = runPool(sp, o);
    const FabricSnapshot &f = r.cluster.fabric;
    ASSERT_TRUE(f.enabled());
    ASSERT_EQ(f.ports.size(), 3u);
    for (const FabricPortSnap &p : f.ports) {
        EXPECT_EQ(p.reqCount, sp.ops);
        EXPECT_GT(p.totalTicks, 0u);
        EXPECT_EQ(p.stackTicks(), p.totalTicks); // zero residual
        EXPECT_EQ(p.otherTicks(), 0u);
        EXPECT_TRUE(p.decompositionExact());
        EXPECT_TRUE(p.littleOk(f.elapsed));
    }
    EXPECT_TRUE(f.decompositionExact());
    EXPECT_TRUE(f.littleOk());
    // Cluster-wide roll-up is the same merge across ports.
    const FabricPortSnap all = f.cluster();
    EXPECT_EQ(all.reqCount, 3u * sp.ops);
    EXPECT_EQ(all.stackTicks(), all.totalTicks);
    EXPECT_TRUE(all.littleOk(f.elapsed));
    // The table names every station for the human report.
    const std::string tbl = f.table();
    EXPECT_NE(tbl.find("sw.voq_wait"), std::string::npos) << tbl;
    EXPECT_NE(tbl.find("sw.dev_service"), std::string::npos) << tbl;
}

TEST(PoolFabric, DisturbedRunKeepsResidualNonNegative)
{
    // Crashes, fences and port outages land in the residual, never
    // in a negative stack: the decomposition inequality holds for
    // every request including aborted and held-while-down ones.
    memo::Options o;
    o.obs.attribution = true;
    const auto r = runPool(drillSpec(), o);
    const FabricSnapshot &f = r.cluster.fabric;
    ASSERT_TRUE(f.enabled());
    EXPECT_TRUE(f.decompositionExact());
    EXPECT_TRUE(f.littleOk());
    EXPECT_GT(f.cluster().reqCount, 0u);
}

TEST(PoolFabric, DisabledPathIsBitIdentical)
{
    // Attribution must observe, never perturb: the simulated results
    // are identical with the board on or off, and the off run keeps
    // the exact pre-fabric verdict string (no fabric suffix).
    const PoolSpec sp = drillSpec();
    memo::Options on;
    on.obs.attribution = true;
    const auto a = runPool(sp, on);
    const auto b = runPool(sp);
    ASSERT_EQ(a.cluster.hosts.size(), b.cluster.hosts.size());
    for (std::size_t h = 0; h < a.cluster.hosts.size(); ++h)
        EXPECT_EQ(a.cluster.hosts[h].digest, b.cluster.hosts[h].digest);
    EXPECT_EQ(a.cluster.endTick, b.cluster.endTick);
    EXPECT_DOUBLE_EQ(a.cluster.timeToFenceNs, b.cluster.timeToFenceNs);
    EXPECT_FALSE(b.cluster.fabric.enabled());
    EXPECT_EQ(b.cluster.verdict.find("fabric="), std::string::npos)
        << b.cluster.verdict;
    // The armed run appends the fabric regime behind the unchanged
    // host-level verdict.
    EXPECT_EQ(a.cluster.verdict.compare(0, b.cluster.verdict.size(),
                                        b.cluster.verdict),
              0)
        << a.cluster.verdict;
    EXPECT_NE(a.cluster.verdict.find(" fabric="), std::string::npos)
        << a.cluster.verdict;
}

TEST(PoolFabric, SnapshotByteIdenticalAtEverySimThreadCount)
{
    const PoolSpec sp = drillSpec();
    auto runAt = [&sp](std::uint32_t threads) {
        Cluster::Options o;
        o.simThreads = threads;
        o.obs.attribution = true;
        Cluster c(sp, o);
        return c.run();
    };
    const ClusterResult ref = runAt(1);
    ASSERT_TRUE(ref.fabric.enabled());
    for (std::uint32_t t : {2u, 8u}) {
        const ClusterResult par = runAt(t);
        expectFabricEq(par.fabric, ref.fabric);
        EXPECT_EQ(par.verdict, ref.verdict);
    }
}

TEST(PoolFabric, VerdictNamesAggressorHostAndHotPort)
{
    // The PR 8 fairness scenario, now with the fabric regime behind
    // it: the share test still names the aggressor host, and the
    // fabric tier names its congested port.
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=2,ops=4000,aggressor=1,credits=8", err);
    ASSERT_TRUE(sp.has_value()) << err;
    memo::Options o;
    o.obs.attribution = true;
    const auto r = runPool(*sp, o);
    const std::string &v = r.cluster.verdict;
    EXPECT_NE(v.find("aggressor=host1"), std::string::npos) << v;
    EXPECT_NE(v.find("victim=host0"), std::string::npos) << v;
    EXPECT_NE(v.find(" fabric="), std::string::npos) << v;
    EXPECT_NE(v.find("hot=port1"), std::string::npos) << v;
    EXPECT_EQ(r.cluster.fabric.hotPort(), 1u);
}

/* ---------------------- cross-host tracing ----------------------- */

TEST(PoolTrace, RequiresClassicEngine)
{
    PoolSpec sp;
    sp.hosts = 2;
    Cluster::Options o;
    o.simThreads = 2;
    o.obs.traceSampleEvery = 1;
    EXPECT_THROW(Cluster(sp, o), std::invalid_argument);
}

TEST(PoolTrace, TimelineSpansIssueToResponseAcrossTracks)
{
    PoolSpec sp;
    sp.hosts = 2;
    sp.ops = 300;
    memo::Options o;
    o.obs.traceSampleEvery = 1;
    const auto r = runPool(sp, o);
    const std::string &j = r.cluster.traceJson;
    ASSERT_FALSE(j.empty());
    // One named track per host plus the fabric track.
    EXPECT_NE(j.find("\"process_name\""), std::string::npos);
    EXPECT_NE(j.find("\"name\":\"fabric\""), std::string::npos);
    EXPECT_NE(j.find("\"name\":\"host0\""), std::string::npos);
    EXPECT_NE(j.find("\"name\":\"host1\""), std::string::npos);
    // The switch path is staged on the fabric track: port ingress,
    // VOQ, crossbar, device service, egress, response delivery.
    for (const char *stage :
         {"sw_m2s", "sw_voq", "sw_xbar", "sw_dev", "sw_egress",
          "sw_s2m"})
        EXPECT_NE(j.find(stage), std::string::npos) << stage;
    // A clean run never aborts anything.
    EXPECT_EQ(j.find("sw_fence_abort"), std::string::npos);
}

TEST(PoolTrace, VictimSpansNeverCarryAnotherHostsFence)
{
    // Litmus for span containment: flood host 1 behind a one-credit
    // gate so a standing queue exists, fence its port mid-flight, and
    // let host 0 read concurrently. Host 1's spans end in
    // sw_fence_abort; host 0's spans must never contain that stage
    // (tid on fabric events is the owning port).
    std::string err;
    const auto sp = PoolSpec::parse("hosts=2,credits=1", err);
    ASSERT_TRUE(sp.has_value()) << err;
    Cluster::Options o;
    o.obs.traceSampleEvery = 1;
    Cluster c(*sp, o);
    for (std::uint64_t i = 0; i < 8; ++i)
        c.inject(1, MemCmd::Write, 64 * i, i, nullptr);
    for (std::uint64_t i = 0; i < 4; ++i)
        c.inject(0, MemCmd::Read, 64 * i, 0, nullptr);
    c.fabricQueue().schedule(ticksFromNs(60.0), [&c]() {
        c.fabric().fencePort(1, ContainPolicy::Abort);
    });
    c.runFabricUntil(ticksFromUs(100.0));

    const std::string j = c.traceJson();
    ASSERT_FALSE(j.empty());
    ASSERT_NE(j.find("sw_fence_abort"), std::string::npos) << j;
    std::istringstream is(j);
    std::string line;
    bool fencedHost1 = false;
    while (std::getline(is, line)) {
        if (line.find("sw_fence_abort") == std::string::npos)
            continue;
        EXPECT_EQ(line.find("\"tid\":0"), std::string::npos) << line;
        if (line.find("\"tid\":1") != std::string::npos)
            fencedHost1 = true;
    }
    EXPECT_TRUE(fencedHost1) << j;
}

/* ----------------------- fabric metrics -------------------------- */

TEST(PoolMetrics, TimelineConservesEveryCounter)
{
    // The interval timeline's deltas must sum to the final totals for
    // every fabric counter (exact conservation, same contract as the
    // machine-level registry).
    memo::Options o;
    o.obs.metricsInterval = ticksFromNs(1000.0);
    const auto r = runPool(drillSpec(), o);
    const std::string &rows = r.cluster.metricsRows;
    ASSERT_FALSE(rows.empty());
    std::map<std::string, std::uint64_t> delta, total;
    std::istringstream is(rows);
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string t, name, kind, value;
        std::getline(ls, t, ',');
        std::getline(ls, name, ',');
        std::getline(ls, kind, ',');
        std::getline(ls, value, ',');
        if (kind == "delta")
            delta[name] += std::stoull(value);
        else if (kind == "total")
            total[name] = std::stoull(value);
    }
    ASSERT_FALSE(total.empty());
    for (const auto &[name, tot] : total)
        EXPECT_EQ(delta[name], tot) << "metric " << name;
    // Per-port switch counters and the pool ledger both report.
    EXPECT_GT(total.at("sw.p0.reqs"), 0u);
    EXPECT_GT(total.at("sw.p3.reqs"), 0u);
    EXPECT_GT(total.at("pool.granted_bytes_total"), 0u);
    // Gauges ride the same timeline.
    EXPECT_NE(rows.find("pool.free_bytes,gauge"), std::string::npos);
    EXPECT_NE(rows.find("sw.p0.voq_depth,gauge"), std::string::npos);
    EXPECT_NE(rows.find("pool.time_to_fence_ns,gauge"),
              std::string::npos);
}

TEST(PoolMetrics, RowsIdenticalAcrossSimThreadCounts)
{
    const PoolSpec sp = drillSpec();
    auto rowsAt = [&sp](std::uint32_t threads) {
        Cluster::Options o;
        o.simThreads = threads;
        o.obs.metricsInterval = ticksFromNs(1000.0);
        Cluster c(sp, o);
        return c.run().metricsRows;
    };
    const std::string ref = rowsAt(1);
    ASSERT_FALSE(ref.empty());
    EXPECT_EQ(rowsAt(2), ref);
    EXPECT_EQ(rowsAt(8), ref);
}

} // namespace
} // namespace cxlmemo
