/**
 * @file
 * Tests for the DeathStarBench-style social-network model.
 */

#include <gtest/gtest.h>

#include "apps/dsb/dsb.hh"

namespace cxlmemo
{
namespace dsb
{
namespace
{

DsbParams
lightParams()
{
    DsbParams p;
    p.numPosts = 200'000;
    p.numUsers = 100'000;
    p.followersPerPost = 20;
    return p;
}

TEST(DsbStage, RunsQueuedWorkInOrder)
{
    Machine m(Testbed::SingleSocketCxl);
    Stage stage(m, "s", 0, 1);
    std::vector<int> done;
    for (int i = 0; i < 3; ++i) {
        stage.submit({{MemOp::Kind::Compute, 0, 0, ticksFromUs(10)}},
                     [&done, i](Tick) { done.push_back(i); });
    }
    m.eq().run();
    EXPECT_EQ(done, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(stage.completed(), 3u);
}

TEST(DsbStage, PoolRunsWorkInParallel)
{
    Machine m(Testbed::SingleSocketCxl);
    Stage wide(m, "wide", 0, 4);
    Tick last = 0;
    for (int i = 0; i < 4; ++i) {
        wide.submit({{MemOp::Kind::Compute, 0, 0, ticksFromUs(100)}},
                    [&last](Tick t) { last = std::max(last, t); });
    }
    m.eq().run();
    EXPECT_EQ(last, ticksFromUs(100)); // all four overlap
}

TEST(Dsb, RequestsCompleteAndRecordLatency)
{
    Machine m(Testbed::SingleSocketCxl);
    SocialNetwork app(m, lightParams(),
                      MemPolicy::membind(m.localNode()));
    app.submit(RequestType::ComposePost);
    app.submit(RequestType::ReadUserTimeline);
    app.submit(RequestType::ReadHomeTimeline);
    m.eq().run();
    EXPECT_EQ(app.latency(RequestType::ComposePost).count(), 1u);
    EXPECT_EQ(app.latency(RequestType::ReadUserTimeline).count(), 1u);
    EXPECT_EQ(app.latency(RequestType::ReadHomeTimeline).count(), 1u);
    // ms-scale end-to-end latencies.
    EXPECT_GT(app.latency(RequestType::ComposePost).mean(), 1e6);
    EXPECT_GT(app.latency(RequestType::ReadUserTimeline).mean(), 1e6);
}

TEST(Dsb, ComposeSlowerThanReadHome)
{
    Machine m(Testbed::SingleSocketCxl);
    SocialNetwork app(m, lightParams(),
                      MemPolicy::membind(m.localNode()));
    app.submit(RequestType::ComposePost);
    m.eq().run();
    app.submit(RequestType::ReadHomeTimeline);
    m.eq().run();
    EXPECT_GT(app.latency(RequestType::ComposePost).mean(),
              app.latency(RequestType::ReadHomeTimeline).mean());
}

TEST(Dsb, CxlPenalizesComposeNotReadUser)
{
    DsbParams p = lightParams();
    const DsbRunResult compose_ddr = runDsb(1, 0, 0, false, 800, 0.15,
                                            p);
    const DsbRunResult compose_cxl = runDsb(1, 0, 0, true, 800, 0.15,
                                            p);
    const DsbRunResult read_ddr = runDsb(0, 1, 0, false, 800, 0.15, p);
    const DsbRunResult read_cxl = runDsb(0, 1, 0, true, 800, 0.15, p);

    // Compose-post: a visible gap (database-heavy path).
    EXPECT_GT(compose_cxl.p99ComposeMs,
              compose_ddr.p99ComposeMs * 1.02);
    // Read-user-timeline: little to no difference.
    EXPECT_NEAR(read_cxl.p99ReadUserMs / read_ddr.p99ReadUserMs, 1.0,
                0.03);
}

TEST(Dsb, MixedWorkloadRecordsAllClasses)
{
    const DsbRunResult r = runDsb(0.1, 0.3, 0.6, false, 2000, 0.1,
                                  lightParams());
    EXPECT_GT(r.p99ComposeMs, 0.0);
    EXPECT_GT(r.p99ReadUserMs, 0.0);
    EXPECT_GT(r.p99ReadHomeMs, 0.0);
    EXPECT_NEAR(r.achievedQps, 2000, 400);
}

TEST(Dsb, MemoryBreakdownCoversComponents)
{
    Machine m(Testbed::SingleSocketCxl);
    SocialNetwork app(m, lightParams(),
                      MemPolicy::membind(m.localNode()));
    const auto breakdown = app.memoryBreakdown();
    ASSERT_EQ(breakdown.size(), 5u);
    // Databases dominate the footprint (the premise of pinning them).
    std::uint64_t db = 0;
    std::uint64_t compute = 0;
    for (const auto &[name, bytes] : breakdown) {
        if (name.find("local") != std::string::npos)
            compute += bytes;
        else
            db += bytes;
    }
    EXPECT_GT(db, 0u);
    EXPECT_GT(compute, 0u);
}

TEST(Dsb, LatencyGrowsTowardSaturation)
{
    DsbParams p = lightParams();
    const DsbRunResult low = runDsb(1, 0, 0, false, 500, 0.12, p);
    const DsbRunResult high = runDsb(1, 0, 0, false, 4500, 0.12, p);
    EXPECT_GT(high.p99ComposeMs, low.p99ComposeMs);
}

} // namespace
} // namespace dsb
} // namespace cxlmemo
