/**
 * @file
 * Tests for the core issue model: MLP limits, fences, dependent
 * loads, NT-store posted/drain semantics and the fused movdir64B op.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/core.hh"
#include "cpu/streams.hh"
#include "mem/request.hh"
#include "numa/numa.hh"
#include "sim/event_queue.hh"

namespace cxlmemo
{
namespace
{

/** Fixed-latency device with NT posted-accept semantics. */
class FixedLatencyDevice : public MemoryDevice
{
  public:
    FixedLatencyDevice(EventQueue &eq, Tick latency)
        : eq_(eq), latency_(latency)
    {}

    void
    access(MemRequest req) override
    {
        ++accesses;
        const Tick now = eq_.curTick();
        if (req.onAccept) {
            eq_.schedule(now, [cb = std::move(req.onAccept), now] {
                cb(now);
            });
        }
        const Tick done = now + latency_;
        maxConcurrent = std::max(maxConcurrent, ++inFlight_);
        eq_.schedule(done, [this, cb = std::move(req.onComplete), done] {
            --inFlight_;
            if (cb)
                cb(done);
        });
    }

    const std::string &name() const override { return name_; }

    int accesses = 0;
    int maxConcurrent = 0;

  private:
    EventQueue &eq_;
    Tick latency_;
    int inFlight_ = 0;
    std::string name_ = "fixed";
};

class CpuTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dev = std::make_unique<FixedLatencyDevice>(eq, ticksFromNs(100));
        node = numa.addNode("mem", dev.get(), 1 * giB);
        HierarchyParams p;
        p.numCores = 1;
        p.l1 = {"l1", 4 * kiB, 4, ticksFromNs(2.0)};
        p.l2 = {"l2", 32 * kiB, 8, ticksFromNs(8.0)};
        p.llc = {"llc", 256 * kiB, 8, ticksFromNs(20.0)};
        p.uncoreLatency = ticksFromNs(10.0);
        hier = std::make_unique<CacheHierarchy>(eq, numa, p);
        buf = numa.alloc(64 * miB, MemPolicy::membind(node));
    }

    /** Run ops to completion; @return (start,end) duration in ns. */
    double
    run(std::vector<MemOp> ops, CoreParams cp = {})
    {
        HwThread thread(*hier, 0, cp);
        Tick start = 0;
        Tick end = 0;
        thread.start(std::make_unique<ListStream>(std::move(ops)),
                     eq.curTick(), [&](Tick s, Tick e) {
            start = s;
            end = e;
        });
        eq.run();
        EXPECT_TRUE(thread.finished());
        return nsFromTicks(end - start);
    }

    MemOp
    loadAt(std::uint64_t off,
           MemOp::Kind k = MemOp::Kind::Load)
    {
        return {k, buf.translate(off), 0, 0};
    }

    EventQueue eq;
    NumaSpace numa;
    std::unique_ptr<FixedLatencyDevice> dev;
    NodeId node = 0;
    std::unique_ptr<CacheHierarchy> hier;
    NumaBuffer buf;
};

TEST_F(CpuTest, ComputeAdvancesTime)
{
    const double ns = run({{MemOp::Kind::Compute, 0, 0, ticksFromNs(500)},
                           {MemOp::Kind::Compute, 0, 0, ticksFromNs(250)}});
    EXPECT_DOUBLE_EQ(ns, 750.0);
}

TEST_F(CpuTest, IndependentLoadsOverlapUpToLfbLimit)
{
    CoreParams cp;
    cp.loadFillBuffers = 4;
    cp.issueCost = 0;
    std::vector<MemOp> ops;
    for (int i = 0; i < 8; ++i)
        ops.push_back(loadAt(std::uint64_t(i) * pageBytes));
    run(std::move(ops), cp);
    EXPECT_EQ(dev->maxConcurrent, 4); // LFB-capped MLP
}

TEST_F(CpuTest, DependentLoadsSerialize)
{
    CoreParams cp;
    cp.issueCost = 0;
    std::vector<MemOp> ops;
    for (int i = 0; i < 4; ++i)
        ops.push_back(loadAt(std::uint64_t(i) * pageBytes,
                             MemOp::Kind::DependentLoad));
    const double ns = run(std::move(ops), cp);
    EXPECT_EQ(dev->maxConcurrent, 1);
    // 4 chained misses at 140 ns each (2+8+20+10 lookup + 100 device).
    EXPECT_DOUBLE_EQ(ns, 4 * 140.0);
}

TEST_F(CpuTest, MfenceWaitsForAllOutstanding)
{
    CoreParams cp;
    cp.issueCost = 0;
    std::vector<MemOp> ops;
    ops.push_back(loadAt(0));
    ops.push_back(loadAt(pageBytes));
    ops.push_back({MemOp::Kind::Mfence, 0, 0, 0});
    ops.push_back({MemOp::Kind::Compute, 0, 0, ticksFromNs(1)});
    const double ns = run(std::move(ops), cp);
    EXPECT_DOUBLE_EQ(ns, 141.0); // both loads complete before compute
}

TEST_F(CpuTest, SfenceWaitsForNtDrainNotJustAccept)
{
    CoreParams cp;
    cp.issueCost = 0;
    cp.ntIssueCost = 0;
    std::vector<MemOp> ops;
    ops.push_back({MemOp::Kind::NtStore, buf.translate(0), 0, 0});
    ops.push_back({MemOp::Kind::Sfence, 0, 0, 0});
    const double ns = run(std::move(ops), cp);
    // nt dispatch 6 + uncore 10 + device 100 = 116 ns.
    EXPECT_DOUBLE_EQ(ns, 116.0);
}

TEST_F(CpuTest, NtStoresStreamWithoutFences)
{
    CoreParams cp;
    cp.issueCost = 0;
    cp.ntIssueCost = ticksFromNs(5);
    cp.wcBuffers = 4;
    std::vector<MemOp> ops;
    for (int i = 0; i < 32; ++i)
        ops.push_back({MemOp::Kind::NtStore,
                       buf.translate(std::uint64_t(i) * cachelineBytes),
                       0, 0});
    const double ns = run(std::move(ops), cp);
    // Posted accepts release WC buffers immediately: issue is paced by
    // ntIssueCost, and only the final drains add the device latency.
    EXPECT_LT(ns, 32 * 5.0 + 200.0);
}

TEST_F(CpuTest, Movdir64CopiesReadThenWrite)
{
    CoreParams cp;
    cp.issueCost = 0;
    std::vector<MemOp> ops;
    ops.push_back({MemOp::Kind::Movdir64, buf.translate(0),
                   buf.translate(1 * miB), 0});
    ops.push_back({MemOp::Kind::Sfence, 0, 0, 0});
    const double ns = run(std::move(ops), cp);
    // Uncached read (2+10+100) then NT write (6+10+100): serialized.
    EXPECT_DOUBLE_EQ(ns, 112.0 + 116.0);
    EXPECT_EQ(dev->accesses, 2);
}

TEST_F(CpuTest, UncachedReadDoesNotFillCaches)
{
    CoreParams cp;
    cp.issueCost = 0;
    run({{MemOp::Kind::UncachedRead, buf.translate(0), 0, 0}}, cp);
    const int before = dev->accesses;
    run({loadAt(0)}, cp);
    EXPECT_EQ(dev->accesses, before + 1); // still a miss
}

TEST_F(CpuTest, ThreadStatsCountOps)
{
    CoreParams cp;
    std::vector<MemOp> ops;
    ops.push_back(loadAt(0));
    ops.push_back({MemOp::Kind::Store, buf.translate(64), 0, 0});
    ops.push_back({MemOp::Kind::NtStore, buf.translate(128), 0, 0});
    HwThread thread(*hier, 0, cp);
    thread.start(std::make_unique<ListStream>(std::move(ops)), 0,
                 nullptr);
    eq.run();
    EXPECT_EQ(thread.stats().loads, 1u);
    EXPECT_EQ(thread.stats().stores, 1u);
    EXPECT_EQ(thread.stats().ntStores, 1u);
    EXPECT_EQ(thread.stats().bytesRead, 64u);
    EXPECT_EQ(thread.stats().bytesWritten, 128u);
}

TEST_F(CpuTest, FinishWaitsForTrailingStores)
{
    CoreParams cp;
    cp.issueCost = 0;
    const double ns = run({{MemOp::Kind::Store, buf.translate(0), 0, 0}},
                          cp);
    // RFO fill must complete before the thread reports done.
    EXPECT_DOUBLE_EQ(ns, 140.0);
}

TEST_F(CpuTest, SequentialStreamWrapsRegion)
{
    SequentialStream s(buf, 0, 2 * cachelineBytes, 4 * cachelineBytes,
                       MemOp::Kind::Load);
    MemOp op;
    std::vector<Addr> addrs;
    while (s.next(op))
        addrs.push_back(op.paddr);
    ASSERT_EQ(addrs.size(), 4u);
    EXPECT_EQ(addrs[0], addrs[2]);
    EXPECT_EQ(addrs[1], addrs[3]);
}

TEST_F(CpuTest, RandomBlockStreamFencesNtBlocks)
{
    RandomBlockStream s(buf, 0, 1 * miB, 4 * 1024, 1024,
                        MemOp::Kind::NtStore, true, 7);
    MemOp op;
    int fences = 0;
    int stores = 0;
    while (s.next(op)) {
        if (op.kind == MemOp::Kind::Sfence)
            ++fences;
        else
            ++stores;
    }
    EXPECT_EQ(stores, 64); // 4 KiB total / 64 B
    EXPECT_EQ(fences, 4);  // one per 1 KiB block
}

TEST_F(CpuTest, PointerChaseVisitsEveryLineOnce)
{
    const std::uint64_t lines = 64;
    PointerChaseStream s(buf, lines * cachelineBytes, lines, false, 3);
    MemOp op;
    std::set<Addr> seen;
    while (s.next(op)) {
        EXPECT_EQ(op.kind, MemOp::Kind::DependentLoad);
        seen.insert(op.paddr);
    }
    // A single Hamiltonian cycle: `lines` steps visit `lines`
    // distinct lines.
    EXPECT_EQ(seen.size(), lines);
}

TEST_F(CpuTest, ThreadCannotStartTwice)
{
    HwThread thread(*hier, 0, CoreParams{});
    thread.start(std::make_unique<ListStream>(std::vector<MemOp>{}), 0,
                 nullptr);
    eq.run();
    EXPECT_TRUE(thread.finished());
    // Restart after finishing is allowed.
    thread.start(std::make_unique<ListStream>(std::vector<MemOp>{}),
                 eq.curTick(), nullptr);
    eq.run();
    EXPECT_TRUE(thread.finished());
}

} // namespace
} // namespace cxlmemo
