/**
 * @file
 * Tests for NUMA topology, routing, page placement policies and the
 * frame-scattering allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "numa/numa.hh"

namespace cxlmemo
{
namespace
{

/** Records accesses; no timing. */
class MockDevice : public MemoryDevice
{
  public:
    explicit MockDevice(std::string name) : name_(std::move(name)) {}

    void
    access(MemRequest req) override
    {
        ++accesses;
        lastAddr = req.addr;
        if (req.onComplete)
            req.onComplete(0);
    }

    const std::string &name() const override { return name_; }

    int accesses = 0;
    Addr lastAddr = 0;

  private:
    std::string name_;
};

class NumaTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dram = std::make_unique<MockDevice>("dram");
        cxl = std::make_unique<MockDevice>("cxl");
        dramNode = space.addNode("dram", dram.get(), 64 * miB);
        cxlNode = space.addNode("cxl", cxl.get(), 16 * miB,
                                /*hasCpu=*/false);
    }

    NumaSpace space;
    std::unique_ptr<MockDevice> dram;
    std::unique_ptr<MockDevice> cxl;
    NodeId dramNode = 0;
    NodeId cxlNode = 0;
};

TEST_F(NumaTest, NodeMetadata)
{
    EXPECT_EQ(space.numNodes(), 2u);
    EXPECT_TRUE(space.node(dramNode).hasCpu);
    EXPECT_FALSE(space.node(cxlNode).hasCpu);
    EXPECT_EQ(space.node(cxlNode).capacityBytes, 16 * miB);
}

TEST_F(NumaTest, PaddrEncodingRoundTrips)
{
    const Addr p = paddrOf(1, 0x1234567);
    EXPECT_EQ(nodeOfPaddr(p), 1u);
    EXPECT_EQ(localOfPaddr(p), 0x1234567u);
}

TEST_F(NumaTest, RouteFindsTheRightDevice)
{
    Addr local = 0;
    EXPECT_EQ(&space.route(paddrOf(dramNode, 4096), local), dram.get());
    EXPECT_EQ(local, 4096u);
    EXPECT_EQ(&space.route(paddrOf(cxlNode, 64), local), cxl.get());
    EXPECT_EQ(local, 64u);
}

TEST_F(NumaTest, MembindPutsEverythingOnOneNode)
{
    NumaBuffer buf = space.alloc(1 * miB, MemPolicy::membind(cxlNode));
    EXPECT_DOUBLE_EQ(buf.residencyOn(cxlNode), 1.0);
    EXPECT_DOUBLE_EQ(buf.residencyOn(dramNode), 0.0);
    EXPECT_EQ(space.allocatedOn(cxlNode), 1 * miB);
}

TEST_F(NumaTest, TranslateIsPageConsistent)
{
    NumaBuffer buf = space.alloc(64 * kiB, MemPolicy::membind(dramNode));
    for (std::uint64_t off = 0; off < 64 * kiB; off += 64) {
        const Addr p = buf.translate(off);
        EXPECT_EQ(nodeOfPaddr(p), dramNode);
        // Offsets within one page stay contiguous.
        EXPECT_EQ(p % pageBytes, off % pageBytes);
    }
}

TEST_F(NumaTest, InterleaveAlternatesPages)
{
    NumaBuffer buf = space.alloc(
        16 * pageBytes, MemPolicy::interleave({dramNode, cxlNode}));
    EXPECT_DOUBLE_EQ(buf.residencyOn(dramNode), 0.5);
    EXPECT_DOUBLE_EQ(buf.residencyOn(cxlNode), 0.5);
    for (std::uint64_t p = 0; p < 16; ++p) {
        EXPECT_EQ(buf.nodeAt(p * pageBytes),
                  (p % 2 == 0) ? dramNode : cxlNode);
    }
}

TEST_F(NumaTest, WeightedInterleaveHitsRequestedRatio)
{
    // The paper's 30:1 case (3.23% on CXL).
    NumaBuffer buf = space.alloc(
        31 * 4 * pageBytes,
        MemPolicy::weighted({dramNode, cxlNode}, {30, 1}));
    EXPECT_NEAR(buf.residencyOn(cxlNode), 1.0 / 31.0, 1e-9);
}

TEST_F(NumaTest, SplitDramCxlFindsIntegerRatios)
{
    const MemPolicy p1 = MemPolicy::splitDramCxl(dramNode, cxlNode,
                                                 0.0323);
    ASSERT_EQ(p1.kind, MemPolicy::Kind::Weighted);
    EXPECT_EQ(p1.weights[0], 30u);
    EXPECT_EQ(p1.weights[1], 1u);

    const MemPolicy p2 = MemPolicy::splitDramCxl(dramNode, cxlNode, 0.1);
    EXPECT_EQ(p2.weights[0], 9u);
    EXPECT_EQ(p2.weights[1], 1u);

    const MemPolicy p3 = MemPolicy::splitDramCxl(dramNode, cxlNode, 0.5);
    EXPECT_EQ(p3.weights[0], 1u);
    EXPECT_EQ(p3.weights[1], 1u);

    EXPECT_EQ(MemPolicy::splitDramCxl(dramNode, cxlNode, 0.0).kind,
              MemPolicy::Kind::Membind);
    EXPECT_EQ(MemPolicy::splitDramCxl(dramNode, cxlNode, 1.0).nodes[0],
              cxlNode);
}

TEST_F(NumaTest, PreferredSpillsWhenFull)
{
    // Fill the CXL node almost completely, then ask preferred(cxl).
    space.alloc(15 * miB, MemPolicy::membind(cxlNode));
    NumaBuffer buf = space.alloc(
        4 * miB, MemPolicy::preferred(cxlNode, {dramNode}));
    EXPECT_NEAR(buf.residencyOn(cxlNode), 0.25, 0.01);
    EXPECT_NEAR(buf.residencyOn(dramNode), 0.75, 0.01);
}

TEST_F(NumaTest, ScatteredFramesAreAPermutation)
{
    // Allocate the entire CXL node and check every frame is unique
    // and in range -- the scatter function must be a bijection.
    NumaBuffer buf = space.alloc(16 * miB, MemPolicy::membind(cxlNode));
    std::set<Addr> frames;
    for (std::uint64_t off = 0; off < 16 * miB; off += pageBytes) {
        const Addr p = buf.translate(off);
        EXPECT_LT(localOfPaddr(p), 16 * miB);
        frames.insert(p & ~(pageBytes - 1));
    }
    EXPECT_EQ(frames.size(), 16 * miB / pageBytes);
}

TEST_F(NumaTest, ScatterBreaksContiguity)
{
    NumaBuffer buf = space.alloc(1 * miB, MemPolicy::membind(dramNode));
    int contiguous = 0;
    for (std::uint64_t p = 1; p < 256; ++p) {
        if (buf.translate(p * pageBytes)
            == buf.translate((p - 1) * pageBytes) + pageBytes) {
            ++contiguous;
        }
    }
    EXPECT_LT(contiguous, 8); // almost never physically adjacent
}

TEST_F(NumaTest, ScatterCanBeDisabled)
{
    space.setScatterFrames(dramNode, false);
    NumaBuffer buf = space.alloc(256 * kiB, MemPolicy::membind(dramNode));
    for (std::uint64_t p = 1; p < 64; ++p) {
        EXPECT_EQ(buf.translate(p * pageBytes),
                  buf.translate((p - 1) * pageBytes) + pageBytes);
    }
}

TEST_F(NumaTest, AllocationsAreDeterministic)
{
    NumaSpace other;
    MockDevice d1("d"), d2("c");
    other.addNode("dram", &d1, 64 * miB);
    other.addNode("cxl", &d2, 16 * miB, false);
    NumaBuffer a = space.alloc(1 * miB, MemPolicy::membind(dramNode));
    NumaBuffer b = other.alloc(1 * miB, MemPolicy::membind(0));
    for (std::uint64_t off = 0; off < 1 * miB; off += pageBytes)
        EXPECT_EQ(a.translate(off), b.translate(off));
}

TEST_F(NumaTest, OutOfMemoryIsFatal)
{
    EXPECT_EXIT(space.alloc(17 * miB, MemPolicy::membind(cxlNode)),
                ::testing::ExitedWithCode(1), "out of memory");
}

TEST_F(NumaTest, TranslateBeyondBufferPanics)
{
    NumaBuffer buf = space.alloc(64 * kiB, MemPolicy::membind(dramNode));
    EXPECT_DEATH(buf.translate(64 * kiB), "beyond buffer");
}

} // namespace
} // namespace cxlmemo
