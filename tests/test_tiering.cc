/**
 * @file
 * Tests for the page-tiering daemon.
 */

#include <gtest/gtest.h>

#include "apps/tiering/tiering.hh"
#include "cpu/streams.hh"

namespace cxlmemo
{
namespace tiering
{
namespace
{

TieringParams
smallParams(std::uint64_t budgetPages)
{
    TieringParams p;
    p.dramBudgetPages = budgetPages;
    p.scanInterval = ticksFromUs(100.0);
    p.hotThreshold = 2;
    p.migrationBurst = 64;
    return p;
}

TEST(Tiering, InitialPlacementFillsBudgetFromTheFront)
{
    Machine m(Testbed::SingleSocketCxl);
    TieredBuffer buf(m, 64 * pageBytes, smallParams(16));
    EXPECT_EQ(buf.stats().dramResidentPages, 16u);
    // First 16 pages on DRAM, rest on CXL.
    EXPECT_EQ(nodeOfPaddr(buf.peek(0)), m.localNode());
    EXPECT_EQ(nodeOfPaddr(buf.peek(20 * pageBytes)), m.cxlNode());
}

TEST(Tiering, HotCxlPagePromotesAndColdDramPageDemotes)
{
    Machine m(Testbed::SingleSocketCxl);
    TieredBuffer buf(m, 64 * pageBytes, smallParams(16));
    buf.startDaemon();
    const std::uint64_t hot = 40 * pageBytes; // starts on CXL
    ASSERT_EQ(nodeOfPaddr(buf.peek(hot)), m.cxlNode());
    // Hammer the hot page across two scan intervals.
    for (int i = 0; i < 200; ++i) {
        buf.touch(hot);
        m.eq().runUntil(m.eq().curTick() + ticksFromNs(1000));
    }
    m.eq().runUntil(m.eq().curTick() + ticksFromUs(300));
    EXPECT_EQ(nodeOfPaddr(buf.peek(hot)), m.localNode());
    EXPECT_GE(buf.stats().promotions, 1u);
    EXPECT_GE(buf.stats().demotions, 1u);
    // The budget is never exceeded.
    EXPECT_LE(buf.stats().dramResidentPages, 16u);
}

TEST(Tiering, ResidencyNeverExceedsBudget)
{
    Machine m(Testbed::SingleSocketCxl);
    TieredBuffer buf(m, 256 * pageBytes, smallParams(32));
    buf.startDaemon();
    Rng rng(4);
    for (int step = 0; step < 2000; ++step) {
        buf.touch(rng.below(256) * pageBytes);
        if (step % 50 == 0)
            m.eq().runUntil(m.eq().curTick() + ticksFromUs(30));
        ASSERT_LE(buf.stats().dramResidentPages, 32u);
    }
}

TEST(Tiering, NoDaemonNoMigration)
{
    Machine m(Testbed::SingleSocketCxl);
    TieredBuffer buf(m, 64 * pageBytes, smallParams(8));
    for (int i = 0; i < 1000; ++i)
        buf.touch(50 * pageBytes);
    m.eq().runUntil(ticksFromUs(500));
    EXPECT_EQ(buf.stats().promotions, 0u);
    EXPECT_EQ(nodeOfPaddr(buf.peek(50 * pageBytes)), m.cxlNode());
}

TEST(Tiering, MigrationMovesBytesThroughDsa)
{
    Machine m(Testbed::SingleSocketCxl);
    TieredBuffer buf(m, 64 * pageBytes, smallParams(16));
    buf.startDaemon();
    const std::uint64_t before = m.dsa().bytesCopied();
    for (int i = 0; i < 300; ++i) {
        buf.touch(40 * pageBytes);
        m.eq().runUntil(m.eq().curTick() + ticksFromNs(500));
    }
    m.eq().runUntil(m.eq().curTick() + ticksFromUs(400));
    EXPECT_GT(m.dsa().bytesCopied(), before);
}

TEST(Tiering, SkewedWorkloadConvergesHotToDram)
{
    Machine m(Testbed::SingleSocketCxl);
    TieredBuffer buf(m, 1024 * pageBytes, smallParams(256));
    buf.startDaemon();
    // 16 scattered hot pages, everything else cold.
    std::vector<std::uint64_t> hot;
    for (int i = 0; i < 16; ++i)
        hot.push_back((splitMix64(i) % 1024) * pageBytes);
    for (int round = 0; round < 40; ++round) {
        for (std::uint64_t h : hot)
            for (int k = 0; k < 8; ++k)
                buf.touch(h);
        m.eq().runUntil(m.eq().curTick() + ticksFromUs(60));
    }
    int resident = 0;
    for (std::uint64_t h : hot)
        resident += nodeOfPaddr(buf.peek(h)) == m.localNode();
    EXPECT_GE(resident, 14); // essentially all hot pages promoted
}

TEST(TieringDeathTest, BudgetBeyondBufferIsFatal)
{
    Machine m(Testbed::SingleSocketCxl);
    EXPECT_DEATH(TieredBuffer(m, 4 * pageBytes, smallParams(8)),
                 "budget larger");
}

} // namespace
} // namespace tiering
} // namespace cxlmemo
