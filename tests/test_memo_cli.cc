/**
 * @file
 * Tests for the MEMO command-line parser.
 */

#include <gtest/gtest.h>

#include "memo/cli.hh"
#include "sim/attribution.hh"
#include "sim/fabric_attrib.hh"

namespace cxlmemo
{
namespace memo
{
namespace
{

std::optional<CliConfig>
parse(std::initializer_list<const char *> args)
{
    std::vector<std::string> v;
    for (const char *a : args)
        v.emplace_back(a);
    std::string err;
    return parseCli(v, err);
}

TEST(MemoCli, ParseSizeSuffixes)
{
    EXPECT_EQ(parseSize("512"), 512u);
    EXPECT_EQ(parseSize("16K"), 16 * kiB);
    EXPECT_EQ(parseSize("16k"), 16 * kiB);
    EXPECT_EQ(parseSize("4M"), 4 * miB);
    EXPECT_EQ(parseSize("1G"), 1 * giB);
    EXPECT_FALSE(parseSize("").has_value());
    EXPECT_FALSE(parseSize("K").has_value());
    EXPECT_FALSE(parseSize("12x").has_value());
    EXPECT_FALSE(parseSize("-5").has_value());
}

TEST(MemoCli, ParseListAndRangeSpecs)
{
    auto list = parseListSpec("1,2,4");
    ASSERT_TRUE(list.has_value());
    EXPECT_EQ(*list, (std::vector<std::uint64_t>{1, 2, 4}));

    auto range = parseListSpec("1-32");
    ASSERT_TRUE(range.has_value());
    EXPECT_EQ(*range,
              (std::vector<std::uint64_t>{1, 2, 4, 8, 16, 32}));

    auto sizes = parseListSpec("16K-64K");
    ASSERT_TRUE(sizes.has_value());
    EXPECT_EQ(*sizes, (std::vector<std::uint64_t>{16 * kiB, 32 * kiB,
                                                  64 * kiB}));

    EXPECT_FALSE(parseListSpec("8-4").has_value());
    EXPECT_FALSE(parseListSpec("a,b").has_value());
    EXPECT_FALSE(parseListSpec("").has_value());
}

TEST(MemoCli, RangeIncludesOddEndpoint)
{
    auto range = parseListSpec("1-24");
    ASSERT_TRUE(range.has_value());
    EXPECT_EQ(range->back(), 24u);
    EXPECT_EQ(range->front(), 1u);
}

TEST(MemoCli, FullSeqInvocation)
{
    auto cfg = parse({"--mode", "seq", "--target", "cxl", "--op",
                      "nt-store", "--threads", "1,2,4", "--csv"});
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->mode, CliMode::Seq);
    EXPECT_EQ(cfg->target, Target::Cxl);
    EXPECT_EQ(cfg->op, MemOp::Kind::NtStore);
    EXPECT_EQ(cfg->threads,
              (std::vector<std::uint32_t>{1, 2, 4}));
    EXPECT_TRUE(cfg->csv);
}

TEST(MemoCli, JobsDefaultsToOne)
{
    auto cfg = parse({"--mode", "seq", "--target", "cxl"});
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->jobs, 1u);
}

TEST(MemoCli, JobsFlagParses)
{
    auto cfg = parse({"--mode", "seq", "--target", "cxl", "--jobs",
                      "8"});
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->jobs, 8u);

    cfg = parse({"--mode", "chase", "--target", "cxl", "--wss", "16K",
                 "-j", "0"});
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->jobs, 0u); // 0 = one per hardware thread
}

TEST(MemoCli, JobsFlagRejectsGarbage)
{
    std::string err;
    std::vector<std::string> v = {"--mode", "seq", "--jobs", "lots"};
    EXPECT_FALSE(parseCli(v, err).has_value());
    EXPECT_NE(err.find("jobs"), std::string::npos);

    v = {"--mode", "seq", "--jobs", "9999"};
    EXPECT_FALSE(parseCli(v, err).has_value());
}

TEST(MemoCli, CopyInvocation)
{
    auto cfg = parse({"--mode", "copy", "--path", "c2d", "--method",
                      "dsa", "--batch", "16"});
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->mode, CliMode::Copy);
    EXPECT_EQ(cfg->path, CopyPath::C2D);
    EXPECT_EQ(cfg->method, CopyMethod::DsaAsync);
    EXPECT_EQ(cfg->batch, 16u);
}

TEST(MemoCli, TargetAliases)
{
    EXPECT_EQ(parse({"--target", "dram"})->target, Target::Ddr5Local);
    EXPECT_EQ(parse({"--target", "local"})->target, Target::Ddr5Local);
    EXPECT_EQ(parse({"--target", "remote"})->target,
              Target::Ddr5Remote);
    EXPECT_EQ(parse({"--target", "ddr5-r1"})->target,
              Target::Ddr5Remote);
}

TEST(MemoCli, ChaseRequiresWss)
{
    EXPECT_FALSE(parse({"--mode", "chase"}).has_value());
    auto cfg = parse({"--mode", "chase", "--wss", "16K-1M"});
    ASSERT_TRUE(cfg.has_value());
    EXPECT_FALSE(cfg->wssBytes.empty());
}

TEST(MemoCli, RejectsBadInput)
{
    EXPECT_FALSE(parse({"--mode", "warp"}).has_value());
    EXPECT_FALSE(parse({"--target", "optane"}).has_value());
    EXPECT_FALSE(parse({"--threads"}).has_value()); // missing value
    EXPECT_FALSE(parse({"--threads", "0"}).has_value());
    EXPECT_FALSE(parse({"--threads", "100"}).has_value());
    EXPECT_FALSE(parse({"--frobnicate"}).has_value());
}

TEST(MemoCli, ParseSizeRejectsOverflow)
{
    // Would overflow uint64 while accumulating digits...
    EXPECT_FALSE(parseSize("99999999999999999999").has_value());
    // ...or when the suffix multiplier is applied.
    EXPECT_FALSE(parseSize("18446744073709551615G").has_value());
    EXPECT_FALSE(parseSize("99999999999999999M").has_value());
    // The largest representable values still parse.
    EXPECT_TRUE(parseSize("18446744073709551615").has_value());
    EXPECT_EQ(parseSize("16777215G"), 16777215ull * giB);
}

TEST(MemoCli, RejectsOutOfRangeBlockWssAndBatch)
{
    // Blocks must be cacheline multiples in [64, 64M].
    EXPECT_FALSE(parse({"--mode", "rand", "--block", "0"}).has_value());
    EXPECT_FALSE(parse({"--mode", "rand", "--block", "32"}).has_value());
    EXPECT_FALSE(parse({"--mode", "rand", "--block", "100"}).has_value());
    EXPECT_FALSE(
        parse({"--mode", "rand", "--block", "128M"}).has_value());
    EXPECT_TRUE(parse({"--mode", "rand", "--block", "64"}).has_value());

    // WSS must be cacheline multiples in [128, 8G].
    EXPECT_FALSE(parse({"--mode", "chase", "--wss", "64"}).has_value());
    EXPECT_FALSE(parse({"--mode", "chase", "--wss", "96"}).has_value());
    EXPECT_FALSE(parse({"--mode", "chase", "--wss", "16G"}).has_value());
    EXPECT_TRUE(parse({"--mode", "chase", "--wss", "128"}).has_value());

    // Copy batch depth is 1..1024.
    EXPECT_FALSE(parse({"--mode", "copy", "--batch", "0"}).has_value());
    EXPECT_FALSE(
        parse({"--mode", "copy", "--batch", "1025"}).has_value());
    EXPECT_TRUE(
        parse({"--mode", "copy", "--batch", "1024"}).has_value());
}

TEST(MemoCli, FaultSpecFlagParses)
{
    auto cfg = parse({"--mode", "loaded", "--target", "cxl",
                      "--fault-spec", "crc=1e-4,poison=1e-6,retries=4"});
    ASSERT_TRUE(cfg.has_value());
    EXPECT_TRUE(cfg->faults.enabled());
    EXPECT_DOUBLE_EQ(cfg->faults.crcPerFlit, 1e-4);
    EXPECT_DOUBLE_EQ(cfg->faults.readPoisonRate, 1e-6);
    EXPECT_EQ(cfg->faults.maxHostRetries, 4u);
}

TEST(MemoCli, FaultSpecDefaultsDisabled)
{
    auto cfg = parse({"--mode", "seq"});
    ASSERT_TRUE(cfg.has_value());
    EXPECT_FALSE(cfg->faults.enabled());
}

TEST(MemoCli, FaultSpecRejectsBadGrammar)
{
    EXPECT_FALSE(parse({"--fault-spec", "crc"}).has_value());
    EXPECT_FALSE(parse({"--fault-spec", "crc=2"}).has_value());
    EXPECT_FALSE(parse({"--fault-spec", "unknown=1"}).has_value());
    EXPECT_FALSE(parse({"--fault-spec"}).has_value()); // missing value
    EXPECT_NE(cliUsage().find("--fault-spec"), std::string::npos);
}

TEST(MemoCli, ChaosSpecFlagParses)
{
    auto cfg = parse({"--mode", "drill", "--chaos-spec",
                      "link-down-at-ns=50000,remove-at-ns=80000,"
                      "readd-at-ns=90000,contain=abort,crc-burst=8"});
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->mode, CliMode::Drill);
    EXPECT_TRUE(cfg->chaos.enabled());
    EXPECT_EQ(cfg->chaos.linkDownAtNs, 50000u);
    EXPECT_EQ(cfg->chaos.removeAtNs, 80000u);
    EXPECT_EQ(cfg->chaos.readdAtNs, 90000u);
    EXPECT_EQ(cfg->chaos.contain, ContainPolicy::Abort);
    EXPECT_EQ(cfg->chaos.crcBurstTrigger, 8u);
    EXPECT_NE(cliUsage().find("--chaos-spec"), std::string::npos);
    EXPECT_NE(cliUsage().find("drill"), std::string::npos);
}

TEST(MemoCli, ChaosSpecDefaultsDisabled)
{
    auto cfg = parse({"--mode", "drill"});
    ASSERT_TRUE(cfg.has_value());
    EXPECT_FALSE(cfg->chaos.enabled());
}

TEST(MemoCli, ChaosSpecRejectsBadGrammar)
{
    EXPECT_FALSE(parse({"--chaos-spec", "link-down-at-ns"}).has_value());
    EXPECT_FALSE(parse({"--chaos-spec", "unknown=1"}).has_value());
    EXPECT_FALSE(parse({"--chaos-spec", "contain=maybe"}).has_value());
    EXPECT_FALSE(parse({"--chaos-spec", "readd-at-ns=5"}).has_value());
    EXPECT_FALSE(parse({"--chaos-spec"}).has_value()); // missing value
}

TEST(MemoCli, EmptySpecValuesAreRejected)
{
    // An empty (or whitespace-only) spec value means the shell ate
    // the real one; silently running fault-free would be worse than
    // an error. All three spec flags must reject it with a one-line
    // diagnostic naming the flag.
    for (const char *flag : {"--fault-spec", "--qos-spec",
                             "--chaos-spec"}) {
        for (const char *value : {"", " ", "  \t "}) {
            std::vector<std::string> v{"--mode", "seq", flag, value};
            std::string err;
            EXPECT_FALSE(parseCli(v, err).has_value())
                << flag << " value '" << value << "'";
            EXPECT_NE(err.find("empty"), std::string::npos) << flag;
            EXPECT_NE(err.find(std::string(flag).substr(2)),
                      std::string::npos)
                << flag;
        }
    }
}

TEST(MemoCli, DrillCsvHeaderCarriesLifecycleColumns)
{
    // Drill rows always carry the extra groups (the drill arms a
    // poison stream internally), so the header is the superset.
    const std::string h = csvHeader(CliMode::Drill, true, false, false);
    for (const char *col :
         {"healthy_gbps", "degraded_gbps", "recovered_gbps",
          "link_detect_ns", "link_mttr_ns", "remove_detect_ns",
          "remove_mttr_ns", "data_at_risk_bytes", "evacuated_bytes",
          "pages_offlined", "offlined_bytes", "migrated_bytes",
          "aborted_reads", "aborted_writes", "invariant_ok",
          "poison_contained"})
        EXPECT_NE(h.find(col), std::string::npos) << col;
}

TEST(MemoCli, HelpShortCircuits)
{
    auto cfg = parse({"--help"});
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->mode, CliMode::Help);
    EXPECT_NE(cliUsage().find("--mode"), std::string::npos);
}

TEST(MemoCli, DefaultsAreSane)
{
    auto cfg = parse({"--mode", "seq"});
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->target, Target::Ddr5Local);
    EXPECT_EQ(cfg->op, MemOp::Kind::Load);
    EXPECT_EQ(cfg->threads, (std::vector<std::uint32_t>{1}));
    EXPECT_FALSE(cfg->prefetch);
    EXPECT_FALSE(cfg->csv);
    EXPECT_EQ(cfg->seed, 42u);
}

TEST(MemoCli, ObservabilityFlagsParse)
{
    auto cfg = parse({"--mode", "seq", "--trace-out", "t.json",
                      "--trace-sample", "1/32", "--metrics-out",
                      "m.csv", "--metrics-interval-ns", "250",
                      "--histograms"});
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->traceOut, "t.json");
    EXPECT_EQ(cfg->traceSampleEvery, 32u);
    EXPECT_EQ(cfg->metricsOut, "m.csv");
    EXPECT_EQ(cfg->metricsIntervalNs, 250u);
    EXPECT_TRUE(cfg->histograms);

    const ObservabilityOptions obs = cfg->observability();
    EXPECT_EQ(obs.traceSampleEvery, 32u);
    EXPECT_EQ(obs.metricsInterval, ticksFromNs(250.0));
    EXPECT_TRUE(obs.latencyHistograms);
    EXPECT_TRUE(obs.enabled());
}

TEST(MemoCli, EqualsFormAcceptedEverywhere)
{
    auto cfg = parse({"--mode=rand", "--target=cxl", "--op=nt-store",
                      "--threads=1,2", "--block=16K",
                      "--trace-out=x.json", "--jobs=4"});
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->mode, CliMode::Rand);
    EXPECT_EQ(cfg->target, Target::Cxl);
    EXPECT_EQ(cfg->op, MemOp::Kind::NtStore);
    EXPECT_EQ(cfg->threads, (std::vector<std::uint32_t>{1, 2}));
    EXPECT_EQ(cfg->blockBytes, (std::vector<std::uint64_t>{16 * kiB}));
    EXPECT_EQ(cfg->traceOut, "x.json");
    EXPECT_EQ(cfg->jobs, 4u);

    // Values containing '=' (spec strings) still parse.
    auto fs = parse({"--mode", "seq", "--fault-spec=crc=1e-4"});
    ASSERT_TRUE(fs.has_value());
    EXPECT_TRUE(fs->faults.enabled());
}

TEST(MemoCli, ObservabilityDefaultsResolve)
{
    // All off by default: bit-identical machine.
    auto off = parse({"--mode", "seq"});
    ASSERT_TRUE(off.has_value());
    EXPECT_FALSE(off->observability().enabled());

    // --trace-out alone turns tracing on at the default 1/64 rate.
    auto tr = parse({"--mode", "seq", "--trace-out", "t.json"});
    ASSERT_TRUE(tr.has_value());
    EXPECT_EQ(tr->observability().traceSampleEvery, 64u);

    // --metrics-out alone samples at the default 1000 ns.
    auto me = parse({"--mode", "seq", "--metrics-out", "m.csv"});
    ASSERT_TRUE(me.has_value());
    EXPECT_EQ(me->observability().metricsInterval, ticksFromNs(1000.0));

    // An explicit sample rate enables the post-mortem ring even
    // without an output file.
    auto ring = parse({"--mode", "seq", "--trace-sample", "8"});
    ASSERT_TRUE(ring.has_value());
    EXPECT_EQ(ring->observability().traceSampleEvery, 8u);
}

TEST(MemoCli, ObservabilityFlagsRejectGarbage)
{
    EXPECT_FALSE(parse({"--mode", "seq", "--trace-sample", "0"}));
    EXPECT_FALSE(parse({"--mode", "seq", "--trace-sample", "1/x"}));
    EXPECT_FALSE(
        parse({"--mode", "seq", "--metrics-interval-ns", "0"}));
    EXPECT_FALSE(parse({"--mode", "seq", "--trace-out"}));
}

/** Count CSV columns (commas + 1). */
std::size_t
columns(const std::string &header)
{
    std::size_t n = 1;
    for (char c : header)
        if (c == ',')
            ++n;
    return n;
}

TEST(MemoCli, CsvHeaderMatchesPreObservabilityBaseWhenAllOff)
{
    EXPECT_EQ(csvHeader(CliMode::Latency, false, false, false),
              "target,ld,st+wb,nt-st,ptr-chase");
    EXPECT_EQ(csvHeader(CliMode::Seq, false, false, false),
              "target,op,threads,gbps");
    EXPECT_EQ(csvHeader(CliMode::Rand, false, false, false),
              "target,op,block,threads,gbps");
    EXPECT_EQ(csvHeader(CliMode::Chase, false, false, false),
              "target,wss,ns");
    EXPECT_EQ(csvHeader(CliMode::Copy, false, false, false),
              "path,method,batch,gbps");
    EXPECT_EQ(csvHeader(CliMode::Loaded, false, false, false),
              "target,threads,ns");
}

TEST(MemoCli, CsvHeaderColumnSetStableAcrossGroups)
{
    // As soon as any optional group is active, the full superset is
    // emitted: the column set (and count) is identical no matter
    // which combination of RAS / QoS / histograms is on, so sweep
    // outputs from different configurations merge cleanly.
    for (CliMode mode : {CliMode::Latency, CliMode::Seq, CliMode::Rand,
                         CliMode::Chase, CliMode::Copy,
                         CliMode::Loaded}) {
        const std::string all = csvHeader(mode, true, true, true);
        EXPECT_EQ(csvHeader(mode, true, false, false), all);
        EXPECT_EQ(csvHeader(mode, false, true, false), all);
        EXPECT_EQ(csvHeader(mode, false, false, true), all);
        // Exactly one header row's worth of extra columns: 11 RAS +
        // 6 QoS + 5 histogram. Loaded additionally swaps its single
        // "ns" column for the avg/p50/p99 distribution (+2).
        const std::string base = csvHeader(mode, false, false, false);
        const std::size_t swap = mode == CliMode::Loaded ? 2 : 0;
        EXPECT_EQ(columns(all), columns(base) + 22 + swap);
        // Histogram columns ride at the end.
        EXPECT_NE(all.find(",lat_n,lat_avg_ns,lat_p50_ns,lat_p99_ns,"
                           "lat_max_ns"),
                  std::string::npos);
    }
}

TEST(MemoCli, CsvHeaderAttribColumnsAreTheirOwnTier)
{
    // The attribution columns append only when attribution is on:
    // existing RAS/QoS/histogram configurations keep byte-identical
    // output, and pre-observability output is untouched.
    for (CliMode mode : {CliMode::Latency, CliMode::Seq, CliMode::Rand,
                         CliMode::Chase, CliMode::Copy,
                         CliMode::Loaded}) {
        const std::string groups = csvHeader(mode, true, true, true);
        EXPECT_EQ(csvHeader(mode, true, true, true, false), groups);
        const std::string attrib =
            csvHeader(mode, false, false, false, true);
        // Attribution implies the full superset plus 3 columns per
        // station and 5 roll-up columns at the end.
        EXPECT_EQ(columns(attrib), columns(groups) + 3 * numStations + 5);
        EXPECT_NE(attrib.find(",attrib_cxl_backend_util"),
                  std::string::npos);
        EXPECT_NE(attrib.find(",attrib_bottleneck"), std::string::npos);
    }
    // `memo report` always carries the attribution columns.
    EXPECT_NE(csvHeader(CliMode::Report, false, false, false)
                  .find(",attrib_bottleneck"),
              std::string::npos);
}

TEST(MemoCli, ReportModeParsesAndForcesAttribution)
{
    const auto cfg = parse({"--mode", "report", "--target", "cxl",
                            "--op", "load", "--threads", "1,8"});
    ASSERT_TRUE(cfg);
    EXPECT_EQ(cfg->mode, CliMode::Report);
    EXPECT_TRUE(cfg->observability().attribution);
    // --attrib alone enables it for regular sweeps too.
    const auto seq = parse({"--mode", "seq", "--attrib"});
    ASSERT_TRUE(seq);
    EXPECT_TRUE(seq->observability().attribution);
    // ...and off by default.
    const auto plain = parse({"--mode", "seq"});
    ASSERT_TRUE(plain);
    EXPECT_FALSE(plain->observability().attribution);
}

/* --------------------------- pool mode --------------------------- */

TEST(MemoCli, PoolModeParsesSpecIntoConfig)
{
    const auto cfg = parse({"--mode", "pool", "--pool-spec",
                            "hosts=4,ops=500,crash-host=1,"
                            "crash-at-ns=10000,aggressor=3",
                            "--sim-threads", "2", "--jobs", "2"});
    ASSERT_TRUE(cfg);
    EXPECT_EQ(cfg->mode, CliMode::Pool);
    EXPECT_EQ(cfg->poolSpec.hosts, 4u);
    EXPECT_EQ(cfg->poolSpec.ops, 500u);
    EXPECT_EQ(cfg->poolSpec.crashHost, 1);
    EXPECT_EQ(cfg->poolSpec.aggressor, 3);
    EXPECT_EQ(cfg->simThreads, 2u);
    EXPECT_EQ(cfg->jobs, 2u);
    // Defaults: pool mode without a spec is the clean two-host run.
    const auto bare = parse({"--mode", "pool"});
    ASSERT_TRUE(bare);
    EXPECT_EQ(bare->poolSpec.hosts, 2u);
    EXPECT_FALSE(bare->poolSpec.disturbed());
}

TEST(MemoCli, PoolSpecEmptyValueIsRejected)
{
    for (const char *value : {"", " ", "  \t "}) {
        std::vector<std::string> v{"--mode", "pool", "--pool-spec",
                                   value};
        std::string err;
        EXPECT_FALSE(parseCli(v, err).has_value())
            << "value '" << value << "'";
        EXPECT_NE(err.find("empty"), std::string::npos) << err;
        EXPECT_NE(err.find("pool-spec"), std::string::npos) << err;
    }
}

TEST(MemoCli, PoolSpecRejectsBadGrammar)
{
    std::string err;
    std::vector<std::string> v{"--mode", "pool", "--pool-spec",
                               "hosts=99"};
    EXPECT_FALSE(parseCli(v, err).has_value());
    EXPECT_FALSE(err.empty());
    err.clear();
    v = {"--mode", "pool", "--pool-spec", "frobnicate=1"};
    EXPECT_FALSE(parseCli(v, err).has_value());
    EXPECT_NE(err.find("pool-spec"), std::string::npos) << err;
}

TEST(MemoCli, PoolSpecRequiresPoolMode)
{
    std::string err;
    std::vector<std::string> v{"--mode", "seq", "--pool-spec",
                               "hosts=2"};
    EXPECT_FALSE(parseCli(v, err).has_value());
    EXPECT_NE(err.find("--mode pool"), std::string::npos) << err;
}

TEST(MemoCli, PoolModeRejectsForeignDisturbanceSpecs)
{
    // Pool mode carries every disturbance inside --pool-spec; the
    // single-machine spec flags would silently not apply.
    for (auto flagval :
         {std::pair<const char *, const char *>{"--fault-spec",
                                                "crc=1e-4"},
          {"--qos-spec", "credits=24"},
          {"--chaos-spec", "link-down-at-ns=1000"}}) {
        std::vector<std::string> v{"--mode", "pool", flagval.first,
                                   flagval.second};
        std::string err;
        EXPECT_FALSE(parseCli(v, err).has_value()) << flagval.first;
        EXPECT_NE(err.find("--pool-spec"), std::string::npos) << err;
    }
}

TEST(MemoCli, PoolCsvHeaderIsStableAndPerHost)
{
    const std::string h = csvHeader(CliMode::Pool, false, false, false);
    for (const char *col :
         {"host", "port", "role", "ops", "gbps", "read_p99_ns",
          "poisoned", "aborted", "fenced", "granted_mb", "digest",
          "time_to_fence_ns", "quarantined_mb", "recovered_mb",
          "ledger_ok", "isolation_ok", "verdict"})
        EXPECT_NE(h.find(col), std::string::npos) << col;
    // Pool rows are their own tier: the machine-level RAS/QoS column
    // groups never widen them; only the per-host histogram/tail tiers
    // and --attrib's fabric tier do (below).
    EXPECT_EQ(h, csvHeader(CliMode::Pool, true, true, false, false));
}

TEST(MemoCli, PoolCsvHeaderGrowsFabricTierWithAttrib)
{
    // --attrib appends the fabric tier after the stable pool header:
    // a queue/service/utilization triplet per switch station plus the
    // cross-fabric stack summary. Attrib-off output is untouched.
    const std::string base =
        csvHeader(CliMode::Pool, false, false, false, false);
    const std::string fab =
        csvHeader(CliMode::Pool, false, false, false, true);
    EXPECT_EQ(fab.compare(0, base.size(), base), 0) << fab;
    EXPECT_EQ(columns(fab), columns(base) + 3 * numFabricStations + 5);
    for (const char *col :
         {",sw_credit_wait_q_ns", ",sw_voq_wait_q_ns", ",sw_arb_s_ns",
          ",sw_wire_util", ",sw_dev_service_util", ",fabric_reqs",
          ",fabric_total_ns", ",fabric_other_ns", ",fabric_little_ok",
          ",fabric_decomp_exact"})
        EXPECT_NE(fab.find(col), std::string::npos) << col;
}

/* ----------------- observability flag matrix --------------------- */

TEST(MemoCli, TraceFlagsRequireClassicEngine)
{
    // Request-lifecycle tracing rides the single-queue engine in
    // every mode; the parallel engine must be rejected at parse time
    // with a one-line error, not deep in the run.
    for (const char *mode : {"seq", "pool", "drill", "report"}) {
        std::string err;
        std::vector<std::string> v{"--mode", mode, "--trace-out",
                                   "t.json", "--sim-threads", "2"};
        EXPECT_FALSE(parseCli(v, err).has_value()) << mode;
        EXPECT_NE(err.find("--sim-threads 0"), std::string::npos)
            << err;
        err.clear();
        v = {"--mode", mode, "--trace-sample", "8", "--sim-threads",
             "4"};
        EXPECT_FALSE(parseCli(v, err).has_value()) << mode;
        EXPECT_NE(err.find("--sim-threads 0"), std::string::npos)
            << err;
    }
    // --sim-threads 0 (explicit or default) stays accepted.
    EXPECT_TRUE(parse({"--mode", "pool", "--trace-out", "t.json",
                       "--sim-threads", "0"}));
    EXPECT_TRUE(parse({"--mode", "pool", "--trace-out", "t.json"}));
}

TEST(MemoCli, HistogramsAcceptedEverywhereIncludingPool)
{
    // Pool mode grew per-host read histograms, so --histograms is a
    // supported combination in every mode now.
    for (const char *mode : {"seq", "rand", "loaded", "drill", "pool"})
        EXPECT_TRUE(parse({"--mode", mode, "--histograms"})) << mode;
    const auto cfg = parse({"--mode", "pool", "--histograms"});
    ASSERT_TRUE(cfg);
    EXPECT_TRUE(cfg->observability().latencyHistograms);
}

/* ------------------------- tail forensics ------------------------ */

TEST(MemoCli, TailTraceFlagParses)
{
    const auto cfg =
        parse({"--mode", "loaded", "--target", "cxl", "--tail-trace",
               "16"});
    ASSERT_TRUE(cfg);
    EXPECT_EQ(cfg->tailK, 16u);
    EXPECT_EQ(cfg->observability().tailK, 16u);
    EXPECT_TRUE(cfg->observability().enabled());
    // Default: off, and not enabling observability by itself.
    const auto plain = parse({"--mode", "loaded"});
    ASSERT_TRUE(plain);
    EXPECT_EQ(plain->tailK, 0u);
}

TEST(MemoCli, TailTraceRejectsBadDepths)
{
    for (const char *bad : {"0", "1025", "x", "-3", ""}) {
        std::string err;
        std::vector<std::string> v{"--mode", "loaded", "--tail-trace",
                                   bad};
        EXPECT_FALSE(parseCli(v, err).has_value()) << bad;
        EXPECT_NE(err.find("tail-trace"), std::string::npos) << err;
    }
    // Boundary values stay accepted.
    EXPECT_TRUE(parse({"--mode", "loaded", "--tail-trace", "1"}));
    EXPECT_TRUE(parse({"--mode", "loaded", "--tail-trace", "1024"}));
}

TEST(MemoCli, TailTraceComposesWithParallelEngineAndPool)
{
    // Tail capture is parallel-safe (spans retire on the host
    // domain), so --sim-threads composes -- unlike --trace-out.
    EXPECT_TRUE(parse({"--mode", "loaded", "--tail-trace", "8",
                       "--sim-threads", "4"}));
    EXPECT_TRUE(parse({"--mode", "pool", "--tail-trace", "8",
                       "--sim-threads", "4"}));
    EXPECT_TRUE(parse({"--mode", "pool", "--tail-trace", "8",
                       "--histograms"}));
}

TEST(MemoCli, DiffModeParses)
{
    const auto cfg = parse({"diff", "a.csv", "b.csv"});
    ASSERT_TRUE(cfg);
    EXPECT_EQ(cfg->mode, CliMode::Diff);
    EXPECT_EQ(cfg->diffA, "a.csv");
    EXPECT_EQ(cfg->diffB, "b.csv");
    EXPECT_FALSE(cfg->diffJson);
    EXPECT_DOUBLE_EQ(cfg->diffThresholdPct, 5.0);

    const auto json = parse({"diff", "a.csv", "b.csv", "--json",
                             "--diff-threshold", "2.5"});
    ASSERT_TRUE(json);
    EXPECT_TRUE(json->diffJson);
    EXPECT_DOUBLE_EQ(json->diffThresholdPct, 2.5);

    // --mode diff spelling works too.
    const auto viaMode = parse({"--mode", "diff", "a.csv", "b.csv"});
    ASSERT_TRUE(viaMode);
    EXPECT_EQ(viaMode->mode, CliMode::Diff);
}

TEST(MemoCli, DiffModeRejectsBadInvocations)
{
    // Wrong file counts.
    for (auto v : {std::vector<std::string>{"diff"},
                   std::vector<std::string>{"diff", "a.csv"},
                   std::vector<std::string>{"diff", "a.csv", "b.csv",
                                            "c.csv"}}) {
        std::string err;
        EXPECT_FALSE(parseCli(v, err).has_value());
        EXPECT_NE(err.find("diff"), std::string::npos) << err;
    }
    // Simulation flags are meaningless against finished runs.
    for (auto extra :
         {std::vector<std::string>{"--tail-trace", "8"},
          std::vector<std::string>{"--histograms"},
          std::vector<std::string>{"--attrib"},
          std::vector<std::string>{"--trace-out", "t.json"},
          std::vector<std::string>{"--metrics-out", "m.csv"},
          std::vector<std::string>{"--sim-threads", "2"},
          std::vector<std::string>{"--fault-spec", "crc=1e-4"}}) {
        std::vector<std::string> v{"diff", "a.csv", "b.csv"};
        v.insert(v.end(), extra.begin(), extra.end());
        std::string err;
        EXPECT_FALSE(parseCli(v, err).has_value()) << extra[0];
        EXPECT_NE(err.find("diff"), std::string::npos) << err;
    }
    // Bad threshold values.
    for (const char *bad : {"-1", "101", "x", ""}) {
        std::string err;
        std::vector<std::string> v{"diff", "a.csv", "b.csv",
                                   "--diff-threshold", bad};
        EXPECT_FALSE(parseCli(v, err).has_value()) << bad;
        EXPECT_NE(err.find("diff-threshold"), std::string::npos)
            << err;
    }
    // --json / --diff-threshold belong to diff mode only.
    std::string err;
    std::vector<std::string> v{"--mode", "loaded", "--json"};
    EXPECT_FALSE(parseCli(v, err).has_value());
    v = {"--mode", "loaded", "--diff-threshold", "2"};
    EXPECT_FALSE(parseCli(v, err).has_value());
}

TEST(MemoCli, CsvHeaderGrowsTailTier)
{
    // The tail tier appends after every existing group and never
    // reorders them; tail-off headers are untouched.
    const std::string base =
        csvHeader(CliMode::Rand, false, false, false, false, false);
    const std::string tail =
        csvHeader(CliMode::Rand, false, false, false, false, true);
    EXPECT_EQ(base.find(",tail_"), std::string::npos);
    EXPECT_EQ(tail.compare(0, base.size(), base), 0) << tail;
    for (const char *col :
         {",tail_k", ",tail_n", ",tail_considered", ",tail_worst_ns",
          ",tail_kth_ns", ",tail_regime", ",tail_stage",
          ",tail_stage_ns", ",tail_stack_exact"})
        EXPECT_NE(tail.find(col), std::string::npos) << col;

    // Pool: hist and tail tiers slot between the base and the fabric
    // tier, each only when armed.
    const std::string pool =
        csvHeader(CliMode::Pool, false, false, false, false, false);
    EXPECT_EQ(pool.find(",lat_"), std::string::npos);
    EXPECT_EQ(pool.find(",tail_"), std::string::npos);
    const std::string poolAll =
        csvHeader(CliMode::Pool, false, false, true, true, true);
    EXPECT_NE(poolAll.find(",lat_p99_ns"), std::string::npos);
    EXPECT_NE(poolAll.find(",tail_worst_ns"), std::string::npos);
    EXPECT_NE(poolAll.find(",fabric_total_ns"), std::string::npos);
    EXPECT_LT(poolAll.find(",lat_n"), poolAll.find(",tail_k"));
    EXPECT_LT(poolAll.find(",tail_k"), poolAll.find(",fabric_reqs"));
}

TEST(MemoCli, PoolModeAcceptsFabricObservability)
{
    // The supported pool-mode combinations: --attrib, --trace-out,
    // --metrics-out (classic engine), alone and together.
    const auto cfg =
        parse({"--mode", "pool", "--pool-spec", "hosts=2,ops=100",
               "--attrib", "--trace-out", "t.json", "--metrics-out",
               "m.csv"});
    ASSERT_TRUE(cfg);
    const ObservabilityOptions obs = cfg->observability();
    EXPECT_TRUE(obs.attribution);
    EXPECT_EQ(obs.traceSampleEvery, 64u);
    EXPECT_EQ(obs.metricsInterval, ticksFromNs(1000.0));
    // --attrib composes with the parallel engine (attribution is
    // fabric-domain-only); only tracing is classic-engine-bound.
    EXPECT_TRUE(parse({"--mode", "pool", "--attrib", "--sim-threads",
                       "4"}));
    EXPECT_TRUE(parse({"--mode", "pool", "--metrics-out", "m.csv",
                       "--sim-threads", "4"}));
}

} // namespace
} // namespace memo
} // namespace cxlmemo
