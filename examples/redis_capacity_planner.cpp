/**
 * @file
 * Redis capacity planner: given a target QPS and a p99 SLO, find the
 * largest fraction of the store that can be offloaded to CXL memory.
 *
 * This is the operator-facing question behind the paper's Sec. 5.1:
 * CXL memory is cheaper capacity, but a us-latency database pays for
 * every page it places there. The planner binary-searches the
 * weighted-interleave ratio under the simulated testbed.
 */

#include <cstdio>

#include "apps/kvstore/kvstore.hh"

using namespace cxlmemo;
using namespace cxlmemo::kv;

namespace
{

/** p99 read latency (us) at the given offload fraction. */
double
p99At(double cxlFraction, double qps)
{
    const KvRunResult r =
        runYcsb(YcsbWorkload::a(), cxlFraction, qps, 0.25);
    // Saturation counts as SLO failure.
    if (r.achievedQps < 0.95 * qps)
        return 1e9;
    return r.p99ReadUs;
}

} // namespace

int
main()
{
    const double target_qps = 50'000;
    const double slo_p99_us = 110.0;

    std::printf("Redis-on-CXL capacity planner\n");
    std::printf("=============================\n");
    std::printf("workload: YCSB-A, target %.0f kQPS, p99 SLO %.0f us\n\n",
                target_qps / 1e3, slo_p99_us);

    std::printf("%10s %12s %8s\n", "cxl-share", "p99-read(us)", "SLO?");
    double best = 0.0;
    for (double frac :
         {0.0, 0.0323, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0}) {
        const double p99 = p99At(frac, target_qps);
        const bool ok = p99 <= slo_p99_us;
        if (ok)
            best = frac;
        if (p99 >= 1e9)
            std::printf("%9.2f%% %12s %8s\n", frac * 100.0,
                        "saturated", "no");
        else
            std::printf("%9.2f%% %12.1f %8s\n", frac * 100.0, p99,
                        ok ? "yes" : "no");
    }

    Machine sizing(Testbed::SingleSocketCxl);
    KvStore store(sizing, KvStoreParams{},
                  MemPolicy::membind(sizing.localNode()));
    const double gib =
        static_cast<double>(store.footprintBytes()) / giB;
    std::printf("\nRecommendation: offload up to %.1f%% of the store "
                "(%.2f of %.2f GiB)\nto CXL memory at this load.\n",
                best * 100.0, best * gib, gib);
    std::printf("Paper guideline: avoid running us-latency services "
                "entirely on CXL;\npartial interleaving bounds the "
                "penalty.\n");
    return 0;
}
