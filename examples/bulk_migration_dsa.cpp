/**
 * @file
 * Bulk page migration with Intel DSA: the paper's third guideline
 * ("use Intel DSA for bulk memory movement from/to CXL memory").
 *
 * A tiering daemon demotes cold pages from DRAM to CXL and promotes
 * hot pages back. This example migrates a 256 MiB arena both ways
 * using (a) CPU memcpy, (b) movdir64B and (c) DSA with batched
 * descriptors, and reports time and core occupancy -- showing why a
 * tiering daemon should lean on the accelerator.
 */

#include <cstdio>

#include "memo/memo.hh"

using namespace cxlmemo;

namespace
{

void
report(const char *method, const char *direction, double gbps,
       double arenaGiB, bool burnsCore)
{
    const double ms = arenaGiB * 1024.0 / gbps; // GiB at GB/s ~ ms
    std::printf("  %-14s %-5s %7.2f GB/s  %7.1f ms  core busy: %s\n",
                method, direction, gbps, ms, burnsCore ? "yes" : "no");
}

} // namespace

int
main()
{
    constexpr double arena_gib = 0.25; // 256 MiB migration batch
    std::printf("Bulk page migration DRAM <-> CXL (256 MiB batch)\n");
    std::printf("================================================\n");

    for (auto dir : {memo::CopyPath::D2C, memo::CopyPath::C2D}) {
        std::printf("\n%s (%s):\n", memo::copyPathName(dir),
                    dir == memo::CopyPath::D2C ? "demotion"
                                               : "promotion");
        report("memcpy", memo::copyPathName(dir),
               memo::runCopyBandwidth(dir, memo::CopyMethod::Memcpy),
               arena_gib, true);
        report("movdir64B", memo::copyPathName(dir),
               memo::runCopyBandwidth(dir, memo::CopyMethod::Movdir64),
               arena_gib, true);
        report("dsa batch=16", memo::copyPathName(dir),
               memo::runCopyBandwidth(dir, memo::CopyMethod::DsaAsync,
                                      16),
               arena_gib, false);
        report("dsa batch=128", memo::copyPathName(dir),
               memo::runCopyBandwidth(dir, memo::CopyMethod::DsaAsync,
                                      128),
               arena_gib, false);
    }

    std::printf(
        "\nTakeaways (paper Sec. 6):\n"
        "  - movdir64B avoids RFO and cache pollution vs memcpy\n"
        "  - DSA moves pages faster still, and off the cores entirely\n"
        "  - batched descriptors amortize the offload cost\n");
    return 0;
}
