/**
 * @file
 * Tiering-policy explorer: the paper's fourth guideline says to
 * interleave memory across DRAM and CXL channels to spread load.
 * This tool sweeps the DRAM:CXL weighted-interleave ratio for a
 * bandwidth-bound workload (DLRM embedding reduction) on both the
 * full socket and the bandwidth-starved SNC quadrant, and reports
 * where interleaving helps and where it hurts -- a practical answer
 * to "how much of my data should live on the CXL expander?".
 */

#include <cstdio>

#include "apps/dlrm/dlrm.hh"
#include "system/machine.hh"

using namespace cxlmemo;
using namespace cxlmemo::dlrm;

namespace
{

void
sweep(Testbed testbed, const char *label, std::uint32_t threads)
{
    std::printf("\n%s, %u threads (inferences/s):\n", label, threads);
    std::printf("%10s %14s %10s\n", "cxl-share", "throughput",
                "vs DRAM");
    DlrmParams params;
    double baseline = 0.0;
    for (double frac : {0.0, 0.0323, 0.1, 0.2, 0.3, 0.5, 1.0}) {
        Machine m(testbed);
        const double tput = runInferenceThroughput(
            m, params,
            MemPolicy::splitDramCxl(m.localNode(), m.cxlNode(), frac),
            threads);
        if (frac == 0.0)
            baseline = tput;
        std::printf("%9.2f%% %14.0f %+9.1f%%\n", frac * 100.0, tput,
                    (tput / baseline - 1.0) * 100.0);
    }
}

} // namespace

int
main()
{
    std::printf("Tiering-policy explorer: DLRM embedding reduction\n");
    std::printf("=================================================\n");

    // Full socket: 8 DDR5 channels have headroom, so every page on
    // CXL only adds latency -- interleaving cannot win.
    sweep(Testbed::SingleSocketCxl, "Full socket (8 channels)", 32);

    // SNC quadrant: 2 channels saturate, so CXL adds *bandwidth*;
    // a moderate share is a win, too much becomes latency-bound.
    sweep(Testbed::SncQuadrantCxl, "SNC quadrant (2 channels)", 32);

    std::printf(
        "\nGuideline (paper Sec. 6): interleave to spread bandwidth "
        "only when DRAM\nchannels are the bottleneck; otherwise keep "
        "latency-critical data local.\n");
    return 0;
}
