/**
 * @file
 * Quickstart: characterize all three memory targets with MEMO.
 *
 * Builds the paper's testbeds, runs the Fig. 2 latency probes and a
 * few Fig. 3 bandwidth points, and prints a summary -- a five-minute
 * tour of the public API.
 */

#include <cstdio>

#include "memo/memo.hh"
#include "system/machine.hh"

using namespace cxlmemo;

int
main()
{
    Machine overview(Testbed::SingleSocketCxl);
    std::printf("%s\n", overview.configString().c_str());

    std::printf("== Instruction latency (ns), prefetch off ==\n");
    std::printf("%-10s %8s %8s %8s %10s\n", "target", "ld", "st+wb",
                "nt-st", "ptr-chase");
    for (auto target : {memo::Target::Ddr5Local, memo::Target::Ddr5Remote,
                        memo::Target::Cxl}) {
        const auto r = memo::runLatency(target);
        std::printf("%-10s %8.1f %8.1f %8.1f %10.1f\n",
                    memo::targetName(target), r.loadNs, r.storeWbNs,
                    r.ntStoreNs, r.ptrChaseNs);
    }

    std::printf("\n== Sequential bandwidth (GB/s) ==\n");
    std::printf("%-10s %4s %8s %8s %8s\n", "target", "thr", "load",
                "store", "nt-store");
    for (auto target : {memo::Target::Ddr5Local, memo::Target::Ddr5Remote,
                        memo::Target::Cxl}) {
        for (std::uint32_t threads : {1u, 2u, 4u, 8u, 16u, 26u, 32u}) {
            const double ld = memo::runSeqBandwidth(
                target, MemOp::Kind::Load, threads);
            const double st = memo::runSeqBandwidth(
                target, MemOp::Kind::Store, threads);
            const double nt = memo::runSeqBandwidth(
                target, MemOp::Kind::NtStore, threads);
            std::printf("%-10s %4u %8.1f %8.1f %8.1f\n",
                        memo::targetName(target), threads, ld, st, nt);
        }
    }
    return 0;
}
