/**
 * @file
 * Multi-host pooled-memory cluster: N hosts sharing M CXL devices
 * behind a CxlSwitch, with crash fencing and machine-checked
 * blast-radius isolation.
 *
 * Topology (one Cluster):
 *
 *     host0 ----port0----+
 *     host1 ----port1----+--- CxlSwitch --- pooled device 0..M-1
 *       ...              |        |
 *     hostN-1 --portN-1--+   PoolManager (ownership ledger)
 *
 * Each host runs a closed-loop generator against its *exclusive*
 * pool window (granted by the PoolManager at setup). Under the
 * parallel engine every host is its own conservative domain (rank
 * 1 + host) and the fabric -- switch, devices, pool manager, fence
 * controller -- is rank 0; the one-way port latency is the lookahead,
 * so every cross-domain message crosses a real port and no delivery
 * is ever clamped.
 *
 * Determinism and the blast-radius invariant
 * ------------------------------------------
 * A host's functional outcome (its HostDigest: delivered values,
 * status counts, poison ledger) must be *timing independent*, so that
 * disturbing host A cannot change host B's digest even though it
 * changes B's latency. Three mechanisms make that hold by
 * construction, and the isolation self-test checks it end to end:
 *
 *  1. exclusive windows -- the PoolManager never grants a segment to
 *     two hosts, so only B's writes land in B's window;
 *  2. slot-partitioned addressing -- host MLP is modeled as `mlp`
 *     independent closed-loop slots, and slot s only touches lines
 *     with (line % mlp == s). No host ever has two in-flight ops to
 *     the same line, so each read's value is fixed by its slot's
 *     program order, not by completion interleaving;
 *  3. order-free folding -- digests fold per slot in slot-program
 *     order, and per-host state (poison counters, RNG streams) is
 *     keyed by host id, never by global arrival order.
 *
 * Fencing lifecycle: hosts beat a sideband heartbeat into the fabric
 * every fence-check period; a crashed host goes silent, the fence
 * checker declares it dead after `miss-threshold` silent periods,
 * fences its switch port (aborting everything in flight under the
 * ContainPolicy), quarantines its capacity, scrubs it, and re-grants
 * it to the survivors. Time-to-fence and capacity-recovered are
 * reported, and the pool ledger + switch credit ledgers are verified
 * at every fence-check snapshot.
 */

#ifndef CXLMEMO_SYSTEM_CLUSTER_HH
#define CXLMEMO_SYSTEM_CLUSTER_HH

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "interconnect/poolmgr.hh"
#include "interconnect/switch.hh"
#include "sim/fabric_attrib.hh"
#include "sim/histogram.hh"
#include "sim/metrics.hh"
#include "sim/observability.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"
#include "sim/tailcap.hh"
#include "sim/trace.hh"
#include "sim/watchdog.hh"

namespace cxlmemo
{

class CxlMemDevice;

/**
 * Pooled-cluster scenario description (the `--pool-spec` grammar).
 * Key=value, comma separated; unknown keys and malformed values are
 * parse errors. All disturbances are off by default: the default spec
 * is a clean N-host run.
 */
struct PoolSpec
{
    std::uint32_t hosts = 2;   //!< upstream hosts / switch ports
    std::uint32_t devices = 1; //!< pooled devices behind the switch
    std::uint64_t capacityMb = 64; //!< per-device capacity (MiB)
    std::uint64_t windowMb = 0; //!< per-host grant; 0 = even split
    std::uint32_t credits = 0;  //!< per-port rd+wr credits (0 = uncapped)
    CxlSwitchParams::Arb arb = CxlSwitchParams::Arb::RoundRobin;

    std::uint64_t ops = 20000; //!< per-host operation count
    double readFrac = 0.8;     //!< read fraction (aggressor ignores)
    std::uint32_t mlp = 8;     //!< closed-loop slots per host

    /** Aggressor host: floods nt-stores instead of the mixed load. */
    std::int32_t aggressor = -1;

    /** Crash schedule: host stops issuing and beating at crash-at-ns;
     *  the fence checker must detect and fence it. */
    std::int32_t crashHost = -1;
    double crashAtNs = 0.0;

    double fenceCheckNs = 2000.0;    //!< heartbeat / fence-check period
    std::uint32_t missThreshold = 2; //!< silent periods before fencing
    double scrubNsPerMb = 200.0;     //!< quarantine scrub cost
    ContainPolicy contain = ContainPolicy::Poison;

    /** Poison injection: every Nth read of this host completes
     *  poisoned (fabric-side, per-host counter). */
    std::int32_t poisonHost = -1;
    std::uint64_t poisonEvery = 0;

    /** Switch-port outage/retrain against one host's port. */
    std::int32_t portDownHost = -1;
    double portDownAtNs = 0.0;
    double retrainNs = 2000.0;

    std::uint64_t seed = 42;

    /** Any disturbance (aggressor/crash/poison/port-down) armed? */
    bool disturbed() const;

    /** Lowest host targeted by no disturbance (-1 if none exists):
     *  the subject of the isolation self-test. */
    std::int32_t victimHost() const;

    /** This spec with every disturbance cleared: the B-only baseline
     *  the isolation invariant compares against. */
    PoolSpec isolationBaseline() const;

    /** @throw std::invalid_argument on out-of-range values. */
    void validate() const;

    std::string toString() const;

    /** Parse "k=v,k=v"; std::nullopt + @p error on failure. */
    static std::optional<PoolSpec> parse(const std::string &text,
                                         std::string &error);
};

/**
 * Timing-independent functional outcome of one host. Two runs that
 * disturb only *other* hosts must produce byte-identical digests
 * (the blast-radius invariant); latency and bandwidth live outside
 * the digest because they legitimately change under contention.
 */
struct HostDigest
{
    std::uint64_t ops = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytes = 0;
    std::uint64_t poisoned = 0;
    std::uint64_t aborted = 0;
    std::uint64_t valueHash = 0;  //!< FNV over (slot, op, status, value)
    std::uint64_t ledgerHash = 0; //!< FNV over the poison ledger

    bool operator==(const HostDigest &o) const;
    bool operator!=(const HostDigest &o) const { return !(*this == o); }
};

/** Per-host result row (one CSV tier in `memo --mode pool`). */
struct HostReport
{
    std::uint32_t host = 0;
    std::string role; //!< normal|aggressor|victim|crashed
    HostDigest digest;
    std::uint64_t grantedBytes = 0; //!< initial window
    bool fenced = false;
    double durationNs = 0.0;
    double gbps = 0.0;
    double readAvgNs = 0.0;
    double readP99Ns = 0.0;
    /** Full read-latency histogram (ns; always recorded, so the
     *  `lat_*` CSV tier costs nothing extra to fill). */
    LatencyHistogram readHist;
    /** Worst-K tail roll-up (k == 0 unless obs.tailK). */
    TailSummary tail;
};

/** Whole-cluster outcome of one Cluster::run(). */
struct ClusterResult
{
    std::vector<HostReport> hosts;

    /** Crash-to-fence latency (-1: nothing was fenced). */
    double timeToFenceNs = -1.0;
    std::uint64_t quarantinedBytes = 0;
    std::uint64_t recoveredBytes = 0; //!< re-granted to survivors

    /** Pool ledger + switch credit ledgers held at every fence-check
     *  snapshot and at completion. */
    bool ledgerOk = true;

    bool watchdogTripped = false;
    std::string watchdogReport;

    /** Attribution: names the aggressor host and the victim port, or
     *  reports the absence of an aggressor; with fabric attribution
     *  enabled, followed by the fabric bottleneck regime. Comma-free
     *  (CSV cell). */
    std::string verdict;

    /** Fabric attribution roll-up (empty unless obs.attribution). */
    FabricSnapshot fabric;

    /** Chrome trace events (comma-joined, no array wrapper). One
     *  track per host plus a fabric track (pid 0). run() leaves this
     *  empty -- serialization is a consumer cost -- and runPool()
     *  fills it from Cluster::traceJson() when tracing is armed. */
    std::string traceJson;

    /** Interval-metrics CSV rows (empty unless obs.metricsInterval). */
    std::string metricsRows;

    Tick endTick = 0;
};

class Cluster
{
  public:
    struct Options
    {
        /** 0 = classic single event queue; >0 = parallel engine with
         *  one domain per host plus the fabric domain. */
        std::uint32_t simThreads = 0;

        /** >= 0: isolation-baseline mode -- only this host issues its
         *  workload; every other host runs zero ops (but still holds
         *  its identical window grant). */
        std::int32_t soloHost = -1;

        /** Watchdog snapshot interval (0 = off). */
        double watchdogUs = 0.0;

        /** Hard simulated-time limit (0 = run to quiesce). */
        double limitUs = 0.0;

        /** Fabric observability (tracing / metrics / attribution /
         *  tail capture). All off by default; enabling any layer
         *  never changes simulated results. Request-lifecycle tracing
         *  requires the classic engine (simThreads == 0): spans are
         *  marked on both the host and fabric domains. Worst-K tail
         *  capture (obs.tailK) works on both engines -- the retained
         *  set is completion-order independent by construction. */
        ObservabilityOptions obs;
    };

    explicit Cluster(const PoolSpec &spec);
    Cluster(const PoolSpec &spec, Options opts);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /** Run the scenario to quiescence and report. */
    ClusterResult run();

    /* --------------- test access (litmus / unit) ----------------- */

    CxlSwitch &fabric() { return *sw_; }
    PoolManager &pool() { return *pool_; }
    EventQueue &fabricQueue() { return eq_; }
    Watchdog *watchdog() { return watchdog_.get(); }
    ParallelExecutor *executor() { return exec_.get(); }
    FabricBoard *fabricBoard() { return board_.get(); }
    MetricsRegistry *metricsRegistry() { return metrics_.get(); }

    using InjectDone =
        std::function<void(Tick, CxlSwitch::Status, std::uint64_t)>;

    /**
     * Inject one operation from @p host at the current fabric tick
     * (classic mode only; litmus tests drive the shared device path
     * directly). Crosses the port like workload traffic and applies
     * the fabric-side poison shaping.
     */
    void inject(std::uint32_t host, MemCmd cmd, Addr hostAddr,
                std::uint64_t value, InjectDone done);

    /** Drive the fabric queue (classic mode only). */
    bool runFabricUntil(Tick limit) { return eq_.runUntil(limit); }

    /** Export every completed span as Chrome trace-event JSON (the
     *  same document run() returns; litmus tests drive inject() +
     *  runFabricUntil() and never call run()). */
    std::string traceJson() const { return exportTraceJson(); }

    /** Poison ledger of @p host (host-window address -> count). */
    const std::map<Addr, std::uint64_t> &
    poisonLedger(std::uint32_t host) const;

  private:
    struct Slot
    {
        Rng rng;
        std::uint64_t issued = 0;
        std::uint64_t done = 0;
        std::uint64_t target = 0;
        std::uint64_t valueHash = 0;
        Tick issueTick = 0; //!< of the op in flight
        TraceSpan *span = nullptr; //!< trace span of the op in flight
    };

    struct Host
    {
        std::uint32_t id = 0;
        std::string role = "normal";
        bool crashed = false;
        bool complete = false;
        std::uint64_t target = 0;
        std::uint64_t windowLines = 0; //!< initial grant, fixed
        std::vector<Slot> slots;
        std::uint64_t slotsDone = 0;
        HostDigest digest;
        std::map<Addr, std::uint64_t> poisonLedger;
        LatencyHistogram readHist;
        double readLatSumNs = 0.0;
        Tick lastDoneTick = 0;
        /** Per-host tracer: host-scoped span ids, deterministic
         *  per-host sampling (null unless tracing or tail capture is
         *  enabled). */
        std::unique_ptr<RequestTracer> tracer;
        /** Per-host worst-K capture (null unless obs.tailK). */
        std::unique_ptr<TailCapture> tailcap;
    };

    EventQueue &hostQueue(std::uint32_t host);
    /** Stage @p cb into the fabric domain at @p when (>= now + port
     *  latency), from @p host's domain. */
    void postToFabric(std::uint32_t host, Tick when,
                      EventQueue::Callback cb);
    /** Stage @p cb into @p host's domain at @p when, from the fabric. */
    void postToHost(std::uint32_t host, Tick when,
                    EventQueue::Callback cb);

    void issueSlot(std::uint32_t host, std::uint32_t slot);
    void slotDone(std::uint32_t host, std::uint32_t slot,
                  std::uint64_t opIdx, Addr hostAddr, MemCmd cmd,
                  Tick issued, Tick at, CxlSwitch::Status status,
                  std::uint64_t value);
    void hostComplete(std::uint32_t host, Tick at);
    void beat(std::uint32_t host);
    /** Fabric-side completion shaping: the per-host poison stream. */
    CxlSwitch::Status shapeStatus(std::uint32_t host, MemCmd cmd,
                                  CxlSwitch::Status st);
    void submitFromHost(std::uint32_t host, MemCmd cmd, Addr hostAddr,
                        std::uint64_t value, Tick issued,
                        TraceSpan *span, CxlSwitch::Done done);
    void fenceCheck();
    void fenceHost(std::uint32_t host, Tick now);
    std::uint64_t missValue(std::uint32_t dev, Addr addr) const;
    std::string attributionVerdict() const;
    void setupObservability();
    void registerMetrics();
    std::string exportTraceJson() const;

    PoolSpec spec_;
    Options opts_;

    EventQueue eq_; //!< fabric domain (rank 0)
    std::vector<std::unique_ptr<EventQueue>> hostQueues_;
    std::unique_ptr<ParallelExecutor> exec_;

    std::vector<std::unique_ptr<CxlMemDevice>> devices_;
    std::unique_ptr<CxlSwitch> sw_;
    std::unique_ptr<PoolManager> pool_;
    std::unique_ptr<Watchdog> watchdog_;

    /* Observability (all null when the matching knob is off). */
    std::unique_ptr<FabricBoard> board_;
    std::unique_ptr<MetricsRegistry> metrics_;
    std::unique_ptr<MetricsSampler> sampler_;

    /** Functional line store, [device] addr -> last written value.
     *  Committed at device completion on the fabric queue. */
    std::vector<std::unordered_map<Addr, std::uint64_t>> store_;

    std::vector<Host> hosts_;

    /* Fabric-domain fencing state (only fabric callbacks touch it). */
    std::vector<Tick> lastBeat_;
    std::vector<bool> beatDone_;   //!< host reported completion
    std::vector<bool> fenced_;
    std::vector<std::uint64_t> poisonCtr_;
    Tick crashTick_ = 0;
    Tick fencedAt_ = 0;
    bool checkerArmed_ = false;
    bool ledgerAllOk_ = true;
    std::uint64_t quarantinedBytes_ = 0;
    std::uint64_t recoveredBytes_ = 0;

    bool watchdogTripped_ = false;
    std::string watchdogReport_;
};

} // namespace cxlmemo

#endif // CXLMEMO_SYSTEM_CLUSTER_HH
