/**
 * @file
 * Cluster implementation: PoolSpec grammar, host generators, fencing
 * FSM, and the fabric glue between hosts, switch and pool manager.
 */

#include "system/cluster.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "cxl/device.hh"
#include "sim/logging.hh"
#include "system/machine.hh"

namespace cxlmemo
{

namespace
{

constexpr std::uint64_t fnvBasis = 1469598103934665603ULL;
constexpr std::uint64_t fnvPrime = 1099511628211ULL;

std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= fnvPrime;
    }
    return h;
}

bool
parseF(const std::string &v, double &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(v.c_str(), &end);
    return end == v.c_str() + v.size();
}

bool
parseU(const std::string &v, std::uint64_t &out)
{
    if (v.empty() || v[0] == '-')
        return false;
    char *end = nullptr;
    out = std::strtoull(v.c_str(), &end, 10);
    return end == v.c_str() + v.size();
}

bool
parseHost(const std::string &v, std::int32_t &out)
{
    if (v == "-1") { // disabled: what toString() prints for "off"
        out = -1;
        return true;
    }
    std::uint64_t n = 0;
    if (!parseU(v, n) || n > 0xffff)
        return false;
    out = static_cast<std::int32_t>(n);
    return true;
}

} // namespace

/* ------------------------------ PoolSpec ------------------------- */

bool
PoolSpec::disturbed() const
{
    return aggressor >= 0 || crashHost >= 0 || poisonHost >= 0
           || portDownHost >= 0;
}

std::int32_t
PoolSpec::victimHost() const
{
    for (std::uint32_t h = 0; h < hosts; ++h) {
        if (static_cast<std::int32_t>(h) != aggressor
            && static_cast<std::int32_t>(h) != crashHost
            && static_cast<std::int32_t>(h) != poisonHost
            && static_cast<std::int32_t>(h) != portDownHost) {
            return static_cast<std::int32_t>(h);
        }
    }
    return -1;
}

PoolSpec
PoolSpec::isolationBaseline() const
{
    PoolSpec b = *this;
    b.aggressor = -1;
    b.crashHost = -1;
    b.crashAtNs = 0.0;
    b.poisonHost = -1;
    b.poisonEvery = 0;
    b.portDownHost = -1;
    b.portDownAtNs = 0.0;
    return b;
}

void
PoolSpec::validate() const
{
    if (hosts == 0 || hosts > 16)
        throw std::invalid_argument("PoolSpec: hosts must be in [1,16]");
    if (devices == 0 || devices > 8)
        throw std::invalid_argument(
            "PoolSpec: devices must be in [1,8]");
    if (capacityMb == 0 || capacityMb > 64 * 1024)
        throw std::invalid_argument(
            "PoolSpec: capacity-mb must be in [1,65536]");
    const std::uint64_t total = capacityMb * devices;
    if (windowMb * hosts > total)
        throw std::invalid_argument(
            "PoolSpec: window-mb * hosts exceeds the pool");
    if (windowMb == 0 && hosts > total)
        throw std::invalid_argument(
            "PoolSpec: more hosts than grantable segments");
    if (readFrac < 0.0 || readFrac > 1.0)
        throw std::invalid_argument(
            "PoolSpec: read-frac must be in [0,1]");
    if (mlp == 0 || mlp > 64)
        throw std::invalid_argument("PoolSpec: mlp must be in [1,64]");
    // Slot-partitioned addressing needs at least one line per slot.
    const std::uint64_t winBytes =
        (windowMb > 0 ? windowMb : total / hosts) * miB;
    if (winBytes / cachelineBytes < mlp)
        throw std::invalid_argument(
            "PoolSpec: per-host window smaller than mlp lines");
    if (!(fenceCheckNs > 0.0))
        throw std::invalid_argument(
            "PoolSpec: fence-check-ns must be positive");
    if (missThreshold == 0)
        throw std::invalid_argument(
            "PoolSpec: miss-threshold must be >= 1");
    if (scrubNsPerMb < 0.0)
        throw std::invalid_argument(
            "PoolSpec: scrub-ns-per-mb must be >= 0");
    if (!(retrainNs > 0.0))
        throw std::invalid_argument(
            "PoolSpec: retrain-ns must be positive");
    const auto inRange = [this](std::int32_t h) {
        return h < 0 || static_cast<std::uint32_t>(h) < hosts;
    };
    if (!inRange(aggressor) || !inRange(crashHost)
        || !inRange(poisonHost) || !inRange(portDownHost)) {
        throw std::invalid_argument(
            "PoolSpec: host index out of range");
    }
    if (crashHost >= 0 && !(crashAtNs > 0.0))
        throw std::invalid_argument(
            "PoolSpec: crash-host needs crash-at-ns");
    if (portDownHost >= 0 && !(portDownAtNs > 0.0))
        throw std::invalid_argument(
            "PoolSpec: port-down-host needs port-down-at-ns");
    if ((poisonHost >= 0) != (poisonEvery > 0))
        throw std::invalid_argument(
            "PoolSpec: poison-host and poison-every go together");
    if (ops > 100'000'000ULL)
        throw std::invalid_argument("PoolSpec: ops too large");
}

std::string
PoolSpec::toString() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "hosts=%u,devices=%u,capacity-mb=%llu,window-mb=%llu,"
        "credits=%u,arb=%s,ops=%llu,read-frac=%g,mlp=%u,aggressor=%d,"
        "crash-host=%d,crash-at-ns=%g,fence-check-ns=%g,"
        "miss-threshold=%u,scrub-ns-per-mb=%g,contain=%s,"
        "poison-host=%d,poison-every=%llu,port-down-host=%d,"
        "port-down-at-ns=%g,retrain-ns=%g,seed=%llu",
        hosts, devices, static_cast<unsigned long long>(capacityMb),
        static_cast<unsigned long long>(windowMb), credits,
        arb == CxlSwitchParams::Arb::RoundRobin ? "rr" : "fixed",
        static_cast<unsigned long long>(ops), readFrac, mlp, aggressor,
        crashHost, crashAtNs, fenceCheckNs, missThreshold, scrubNsPerMb,
        containPolicyName(contain), poisonHost,
        static_cast<unsigned long long>(poisonEvery), portDownHost,
        portDownAtNs, retrainNs,
        static_cast<unsigned long long>(seed));
    return buf;
}

std::optional<PoolSpec>
PoolSpec::parse(const std::string &text, std::string &error)
{
    PoolSpec spec;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string item = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            error = "pool-spec item needs key=value: " + item;
            return std::nullopt;
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        double f = 0.0;
        std::uint64_t n = 0;
        std::int32_t h = -1;
        if (key == "hosts" && parseU(value, n)) {
            spec.hosts = static_cast<std::uint32_t>(n);
        } else if (key == "devices" && parseU(value, n)) {
            spec.devices = static_cast<std::uint32_t>(n);
        } else if (key == "capacity-mb" && parseU(value, n)) {
            spec.capacityMb = n;
        } else if (key == "window-mb" && parseU(value, n)) {
            spec.windowMb = n;
        } else if (key == "credits" && parseU(value, n)) {
            spec.credits = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(n, 0xffffffffu));
        } else if (key == "arb") {
            if (value == "rr") {
                spec.arb = CxlSwitchParams::Arb::RoundRobin;
            } else if (value == "fixed") {
                spec.arb = CxlSwitchParams::Arb::Fixed;
            } else {
                error = "bad arb (rr|fixed): " + value;
                return std::nullopt;
            }
        } else if (key == "ops" && parseU(value, n)) {
            spec.ops = n;
        } else if (key == "read-frac" && parseF(value, f)) {
            spec.readFrac = f;
        } else if (key == "mlp" && parseU(value, n)) {
            spec.mlp = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(n, 0xffffffffu));
        } else if (key == "aggressor" && parseHost(value, h)) {
            spec.aggressor = h;
        } else if (key == "crash-host" && parseHost(value, h)) {
            spec.crashHost = h;
        } else if (key == "crash-at-ns" && parseF(value, f)) {
            spec.crashAtNs = f;
        } else if (key == "fence-check-ns" && parseF(value, f)) {
            spec.fenceCheckNs = f;
        } else if (key == "miss-threshold" && parseU(value, n)) {
            spec.missThreshold = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(n, 0xffffffffu));
        } else if (key == "scrub-ns-per-mb" && parseF(value, f)) {
            spec.scrubNsPerMb = f;
        } else if (key == "contain") {
            if (value == "poison") {
                spec.contain = ContainPolicy::Poison;
            } else if (value == "abort") {
                spec.contain = ContainPolicy::Abort;
            } else {
                error = "bad contain policy (poison|abort): " + value;
                return std::nullopt;
            }
        } else if (key == "poison-host" && parseHost(value, h)) {
            spec.poisonHost = h;
        } else if (key == "poison-every" && parseU(value, n)) {
            spec.poisonEvery = n;
        } else if (key == "port-down-host" && parseHost(value, h)) {
            spec.portDownHost = h;
        } else if (key == "port-down-at-ns" && parseF(value, f)) {
            spec.portDownAtNs = f;
        } else if (key == "retrain-ns" && parseF(value, f)) {
            spec.retrainNs = f;
        } else if (key == "seed" && parseU(value, n)) {
            spec.seed = n;
        } else {
            error = "bad pool-spec item: " + item;
            return std::nullopt;
        }
    }
    try {
        spec.validate();
    } catch (const std::invalid_argument &e) {
        error = e.what();
        return std::nullopt;
    }
    return spec;
}

/* ----------------------------- HostDigest ------------------------ */

bool
HostDigest::operator==(const HostDigest &o) const
{
    return ops == o.ops && reads == o.reads && writes == o.writes
           && bytes == o.bytes && poisoned == o.poisoned
           && aborted == o.aborted && valueHash == o.valueHash
           && ledgerHash == o.ledgerHash;
}

/* ------------------------------ Cluster -------------------------- */

Cluster::Cluster(const PoolSpec &spec) : Cluster(spec, Options()) {}

Cluster::Cluster(const PoolSpec &spec, Options opts)
    : spec_(spec), opts_(opts)
{
    spec_.validate();

    CxlSwitchParams sp;
    sp.name = "xsw0";
    sp.ports = spec_.hosts;
    sp.rdCredits = spec_.credits;
    sp.wrCredits = spec_.credits;
    sp.arb = spec_.arb;

    const bool par = opts_.simThreads > 0;
    if (par) {
        std::vector<EventQueue *> ranks;
        ranks.push_back(&eq_);
        for (std::uint32_t h = 0; h < spec_.hosts; ++h) {
            hostQueues_.push_back(std::make_unique<EventQueue>());
            ranks.push_back(hostQueues_.back().get());
        }
        // Every cross-domain message crosses a switch port, so the
        // one-way port latency is an exact conservative lookahead.
        exec_ = std::make_unique<ParallelExecutor>(
            std::move(ranks), sp.portLatency, opts_.simThreads);
    }

    std::vector<MemoryDevice *> downstream;
    for (std::uint32_t d = 0; d < spec_.devices; ++d) {
        CxlDeviceParams dp = testbed_params::agilexCxlDevice();
        dp.name = "pd" + std::to_string(d);
        devices_.push_back(std::make_unique<CxlMemDevice>(eq_, dp));
        if (opts_.watchdogUs > 0.0)
            devices_.back()->enableProgressTracking();
        downstream.push_back(devices_.back().get());
    }
    sw_ = std::make_unique<CxlSwitch>(eq_, sp, std::move(downstream));
    store_.resize(spec_.devices);
    sw_->setDataHook([this](std::uint32_t dev, MemCmd cmd, Addr addr,
                            std::uint64_t wval) {
        if (isWrite(cmd)) {
            store_[dev][addr] = wval;
            return wval;
        }
        const auto it = store_[dev].find(addr);
        return it != store_[dev].end() ? it->second
                                       : missValue(dev, addr);
    });

    pool_ = std::make_unique<PoolManager>(spec_.devices,
                                          spec_.capacityMb * miB);
    const std::uint64_t total = pool_->totalBytes();
    const std::uint64_t winBytes =
        spec_.windowMb > 0
            ? spec_.windowMb * miB
            : (total / spec_.hosts) / pool_->segmentBytes()
                  * pool_->segmentBytes();

    hosts_.resize(spec_.hosts);
    for (std::uint32_t h = 0; h < spec_.hosts; ++h) {
        const std::uint64_t got = pool_->grant(h, winBytes);
        CXLMEMO_ASSERT(got == winBytes,
                       "setup grant failed for host %u", (unsigned)h);
        Host &H = hosts_[h];
        H.id = h;
        if (static_cast<std::int32_t>(h) == spec_.crashHost)
            H.role = "crashed";
        else if (static_cast<std::int32_t>(h) == spec_.aggressor)
            H.role = "aggressor";
        else if (spec_.disturbed()
                 && static_cast<std::int32_t>(h) == spec_.victimHost())
            H.role = "victim";
        H.target = (opts_.soloHost >= 0
                    && static_cast<std::int32_t>(h) != opts_.soloHost)
                       ? 0
                       : spec_.ops;
        H.windowLines = winBytes / cachelineBytes;
        H.slots.resize(spec_.mlp);
        for (std::uint32_t s = 0; s < spec_.mlp; ++s) {
            Slot &S = H.slots[s];
            // Per-slot stream: a pure function of (seed, host, slot),
            // independent of every other host's existence.
            S.rng.reseed(splitMix64(spec_.seed
                                    ^ (std::uint64_t(h) << 32) ^ s));
            S.target = H.target / spec_.mlp
                       + (s < H.target % spec_.mlp ? 1 : 0);
        }
    }

    lastBeat_.assign(spec_.hosts, 0);
    beatDone_.assign(spec_.hosts, false);
    fenced_.assign(spec_.hosts, false);
    poisonCtr_.assign(spec_.hosts, 0);
    if (spec_.crashHost >= 0)
        crashTick_ = ticksFromNs(spec_.crashAtNs);

    if (opts_.watchdogUs > 0.0) {
        WatchdogParams wp;
        wp.interval = ticksFromUs(opts_.watchdogUs);
        watchdog_ = std::make_unique<Watchdog>(eq_, wp);
        watchdog_->watch(sw_.get());
        for (auto &d : devices_)
            watchdog_->watch(d.get());
        if (exec_) {
            // Staged cross-host outboxes count as pending work:
            // without this a drained fabric queue between windows
            // looks like a deadlock while host posts are in flight.
            watchdog_->setParallelHooks(
                [this] { return exec_->pending(); },
                [this](Tick t) { exec_->addFence(t); });
        }
        watchdog_->setOnTrip([this](const std::string &report) {
            watchdogTripped_ = true;
            watchdogReport_ = report;
        });
    }

    setupObservability();
}

void
Cluster::setupObservability()
{
    const ObservabilityOptions &obs = opts_.obs;
    // Tracing marks spans on both the host and fabric domains, so it
    // needs the classic engine. Same restriction (and message shape)
    // as the Machine.
    if (obs.traceSampleEvery > 0 && opts_.simThreads > 0)
        throw std::invalid_argument(
            "Cluster: request-lifecycle tracing requires the "
            "single-queue engine (simThreads = 0)");
    if (obs.attribution) {
        board_ = std::make_unique<FabricBoard>(spec_.hosts,
                                               spec_.devices, 0);
        sw_->setFabricBoard(board_.get());
    }
    // Tail capture rides the tracer plumbing but is parallel-safe: a
    // span is touched by one domain at a time (host issues/finishes,
    // fabric marks in between with causal handoffs through the
    // executor) and the worst-K set is completion-order independent.
    if (obs.traceSampleEvery > 0 || obs.tailK > 0) {
        for (auto &H : hosts_) {
            H.tracer = std::make_unique<RequestTracer>(
                obs.traceSampleEvery, obs.traceRing);
            if (obs.tailK > 0) {
                H.tailcap = std::make_unique<TailCapture>(obs.tailK);
                H.tracer->setTailCapture(H.tailcap.get());
            }
        }
    }
    if (obs.metricsInterval > 0) {
        metrics_ = std::make_unique<MetricsRegistry>();
        registerMetrics();
        sampler_ = std::make_unique<MetricsSampler>(eq_, *metrics_,
                                                    obs.metricsInterval);
        if (exec_) {
            // A snapshot reads fabric-domain state; fence every
            // snapshot tick so it observes a globally quiesced fabric
            // (same hooks as the watchdog above).
            sampler_->setParallelHooks(
                [this] { return exec_->pending(); },
                [this](Tick t) { exec_->addFence(t); });
        }
    }
    if (watchdog_) {
        for (auto &H : hosts_) {
            if (!H.tracer || H.tracer->sampleEvery() == 0)
                continue;
            RequestTracer *tr = H.tracer.get();
            const std::uint32_t h = H.id;
            watchdog_->addPostMortem([this, tr, h] {
                return "  host" + std::to_string(h) + " (port"
                       + std::to_string(h) + "):\n"
                       + tr->postMortem(eq_.curTick());
            });
        }
        for (auto &H : hosts_) {
            if (!H.tailcap)
                continue;
            TailCapture *tc = H.tailcap.get();
            const std::uint32_t h = H.id;
            watchdog_->addPostMortem([tc, h] {
                return "  host" + std::to_string(h) + " tail:\n"
                       + tc->table();
            });
        }
        if (board_) {
            watchdog_->addPostMortem([this] {
                return board_->snapshot(eq_.curTick()).postMortem();
            });
        }
    }
}

void
Cluster::registerMetrics()
{
    MetricsRegistry &m = *metrics_;
    CxlSwitch *sw = sw_.get();
    for (std::uint32_t h = 0; h < spec_.hosts; ++h) {
        const std::string p = "sw.p" + std::to_string(h) + ".";
        const SwitchPortStats *st = &sw->portStats(h);
        m.addCounter(p + "reqs", [st] { return st->reqs; });
        m.addCounter(p + "responses", [st] { return st->responses; });
        m.addCounter(p + "req_bytes", [st] { return st->reqBytes; });
        m.addCounter(p + "credit_stall_ticks",
                     [st] { return st->creditStallTicks; });
        m.addCounter(p + "aborted", [st] {
            return st->aborted + st->abortedInFlight;
        });
        m.addCounter(p + "poisoned", [st] { return st->poisoned; });
        m.addGauge(p + "voq_depth", [sw, h] {
            return static_cast<double>(sw->voqDepth(h));
        });
        m.addGauge(p + "credit_wait_depth", [sw, h] {
            return static_cast<double>(sw->creditWaitDepth(h));
        });
        m.addGauge(p + "in_flight", [sw, h] {
            return static_cast<double>(sw->portInFlight(h));
        });
        m.addGauge(p + "credit_occupancy", [sw, h] {
            const LinkCredits *c = sw->portCredits(h);
            return c ? static_cast<double>(c->rd.inFlight()
                                           + c->wr.inFlight())
                     : 0.0;
        });
        m.addGauge("pool.h" + std::to_string(h) + ".granted_bytes",
                   [this, h] {
                       return static_cast<double>(
                           pool_->grantedBytes(h));
                   });
        if (opts_.obs.latencyHistograms) {
            // Per-host windowed read-latency percentiles. The host
            // histogram is always recorded (ns units), so this adds
            // no hot-path cost, only snapshot rows.
            const LatencyHistogram *rh = &hosts_[h].readHist;
            m.addHistogram("host" + std::to_string(h) + ".read_lat",
                           [rh] { return rh; }, 1.0);
        }
    }
    PoolManager *pm = pool_.get();
    m.addCounter("pool.granted_bytes_total",
                 [pm] { return pm->stats().grantedBytes; });
    m.addCounter("pool.quarantined_bytes_total",
                 [pm] { return pm->stats().quarantinedBytes; });
    m.addCounter("pool.scrubbed_bytes_total",
                 [pm] { return pm->stats().scrubbedBytes; });
    m.addGauge("pool.free_bytes",
               [pm] { return static_cast<double>(pm->freeBytes()); });
    m.addGauge("pool.quarantined_bytes", [pm] {
        return static_cast<double>(pm->quarantinedBytes());
    });
    m.addGauge("pool.scrubbing_bytes", [pm] {
        return static_cast<double>(pm->scrubbingBytes());
    });
    m.addGauge("pool.time_to_fence_ns", [this] {
        if (fencedAt_ == 0)
            return 0.0;
        return crashTick_ > 0 ? nsFromTicks(fencedAt_ - crashTick_)
                              : nsFromTicks(fencedAt_);
    });
}

Cluster::~Cluster() = default;

EventQueue &
Cluster::hostQueue(std::uint32_t host)
{
    return exec_ ? *hostQueues_[host] : eq_;
}

void
Cluster::postToFabric(std::uint32_t host, Tick when,
                      EventQueue::Callback cb)
{
    if (exec_) {
        exec_->post(1 + host, 0, when,
                    [cb = std::move(cb)](Tick) mutable { cb(); });
    } else {
        eq_.schedule(when, std::move(cb));
    }
}

void
Cluster::postToHost(std::uint32_t host, Tick when,
                    EventQueue::Callback cb)
{
    if (exec_) {
        exec_->post(0, 1 + host, when,
                    [cb = std::move(cb)](Tick) mutable { cb(); });
    } else {
        eq_.schedule(when, std::move(cb));
    }
}

std::uint64_t
Cluster::missValue(std::uint32_t dev, Addr addr) const
{
    // Unwritten lines read as a pure function of their location, so
    // read values are deterministic without pre-touching the pool.
    return splitMix64((std::uint64_t(dev) << 56) ^ addr
                      ^ 0x9e3779b97f4a7c15ULL);
}

CxlSwitch::Status
Cluster::shapeStatus(std::uint32_t host, MemCmd cmd,
                     CxlSwitch::Status st)
{
    if (static_cast<std::int32_t>(host) == spec_.poisonHost
        && spec_.poisonEvery > 0 && cmd == MemCmd::Read
        && st == CxlSwitch::Status::Ok) {
        if (++poisonCtr_[host] % spec_.poisonEvery == 0)
            return CxlSwitch::Status::Poisoned;
    }
    return st;
}

void
Cluster::submitFromHost(std::uint32_t host, MemCmd cmd, Addr hostAddr,
                        std::uint64_t value, Tick issued,
                        TraceSpan *span, CxlSwitch::Done done)
{
    // A fenced host's window is already quarantined; skip translation
    // and let the switch abort at the (fenced) port.
    PoolManager::Loc loc{};
    if (!fenced_[host])
        loc = pool_->translate(host, hostAddr);
    CxlSwitch::Op op;
    op.addr = loc.addr;
    op.cmd = cmd;
    op.value = value;
    op.issued = issued;
    op.span = span;
    op.done = [this, host, cmd, done = std::move(done)](
                  Tick d, CxlSwitch::Status st,
                  std::uint64_t v) mutable {
        done(d, shapeStatus(host, cmd, st), v);
    };
    sw_->submit(host, loc.dev, std::move(op));
}

void
Cluster::issueSlot(std::uint32_t host, std::uint32_t slot)
{
    Host &H = hosts_[host];
    Slot &S = H.slots[slot];
    const std::uint64_t opIdx = S.issued++;
    const bool agg =
        static_cast<std::int32_t>(host) == spec_.aggressor;
    MemCmd cmd;
    if (agg) {
        cmd = MemCmd::NtWrite;
        S.rng.uniform(); // keep the stream aligned with mixed mode
    } else {
        cmd = S.rng.uniform() < spec_.readFrac ? MemCmd::Read
                                               : MemCmd::Write;
    }
    const std::uint64_t linesPerSlot = H.windowLines / spec_.mlp;
    const std::uint64_t line =
        S.rng.below(linesPerSlot) * spec_.mlp + slot;
    const Addr hostAddr = line * cachelineBytes;
    const std::uint64_t value =
        splitMix64(spec_.seed ^ (std::uint64_t(host) << 40)
                   ^ (std::uint64_t(slot) << 32) ^ opIdx);
    const Tick issued = hostQueue(host).curTick();
    S.issueTick = issued;
    TraceSpan *span = nullptr;
    if (H.tracer) {
        span = H.tracer->maybeStart(static_cast<std::uint16_t>(host),
                                    cmd, hostAddr, issued);
        // The span starts in the host->switch ingress flit; closed-
        // loop slots carry one op at a time, so the slot anchors it.
        RequestTracer::mark(span, TraceStage::SwM2s, issued);
        S.span = span;
    }

    CxlSwitch::Done done =
        [this, host, slot, opIdx, hostAddr, cmd, issued](
            Tick d, CxlSwitch::Status st, std::uint64_t v) {
            postToHost(host, d,
                       [this, host, slot, opIdx, hostAddr, cmd, issued,
                        st, v] {
                           slotDone(host, slot, opIdx, hostAddr, cmd,
                                    issued, hostQueue(host).curTick(),
                                    st, v);
                       });
        };
    postToFabric(host, issued + sw_->params().portLatency,
                 [this, host, cmd, hostAddr, value, issued, span,
                  done = std::move(done)]() mutable {
                     submitFromHost(host, cmd, hostAddr, value, issued,
                                    span, std::move(done));
                 });
}

void
Cluster::slotDone(std::uint32_t host, std::uint32_t slot,
                  std::uint64_t opIdx, Addr hostAddr, MemCmd cmd,
                  Tick issued, Tick at, CxlSwitch::Status status,
                  std::uint64_t value)
{
    Host &H = hosts_[host];
    Slot &S = H.slots[slot];
    if (S.span) {
        // Close the span even for a crashed host: the fenced-abort
        // completion is exactly what the blast-radius post-mortem
        // needs to see on the dead host's track.
        H.tracer->finish(S.span, at);
        S.span = nullptr;
    }
    if (H.crashed)
        return; // a dead host processes nothing

    ++H.digest.ops;
    if (isWrite(cmd))
        ++H.digest.writes;
    else
        ++H.digest.reads;
    H.digest.bytes += cachelineBytes;
    if (status == CxlSwitch::Status::Poisoned) {
        ++H.digest.poisoned;
        ++H.poisonLedger[hostAddr];
    } else if (status == CxlSwitch::Status::Aborted) {
        ++H.digest.aborted;
    }
    S.valueHash = fnv(S.valueHash, opIdx);
    S.valueHash = fnv(S.valueHash,
                      static_cast<std::uint64_t>(status));
    S.valueHash = fnv(S.valueHash, value);
    if (cmd == MemCmd::Read) {
        const double ns = nsFromTicks(at - issued);
        H.readHist.record(static_cast<std::uint64_t>(ns + 0.5));
        H.readLatSumNs += ns;
    }
    ++S.done;
    H.lastDoneTick = std::max(H.lastDoneTick, at);

    if (S.issued < S.target) {
        issueSlot(host, slot);
    } else if (S.done == S.target) {
        ++H.slotsDone;
        if (H.slotsDone == H.slots.size())
            hostComplete(host, at);
    }
}

void
Cluster::hostComplete(std::uint32_t host, Tick at)
{
    Host &H = hosts_[host];
    if (H.complete)
        return;
    H.complete = true;
    postToFabric(host, at + sw_->params().portLatency,
                 [this, host] { beatDone_[host] = true; });
}

void
Cluster::beat(std::uint32_t host)
{
    Host &H = hosts_[host];
    if (H.complete || H.crashed)
        return;
    const Tick now = hostQueue(host).curTick();
    postToFabric(host, now + sw_->params().portLatency, [this, host] {
        lastBeat_[host] = eq_.curTick();
    });
    hostQueue(host).schedule(now + ticksFromNs(spec_.fenceCheckNs),
                             [this, host] { beat(host); });
}

void
Cluster::fenceHost(std::uint32_t host, Tick now)
{
    fenced_[host] = true;
    fencedAt_ = now;
    sw_->fencePort(host, spec_.contain);
    const std::uint64_t qb = pool_->quarantine(host);
    quarantinedBytes_ += qb;
    pool_->beginScrub();
    const Tick scrub = std::max<Tick>(
        1, ticksFromNs(spec_.scrubNsPerMb
                       * static_cast<double>(qb / miB)));
    eq_.schedule(now + scrub, [this] {
        const std::uint64_t released = pool_->releaseQuarantined();
        std::uint32_t live = 0;
        for (std::uint32_t h = 0; h < spec_.hosts; ++h)
            if (!fenced_[h])
                ++live;
        if (live > 0) {
            const std::uint64_t share =
                released / live / pool_->segmentBytes()
                * pool_->segmentBytes();
            for (std::uint32_t h = 0; h < spec_.hosts && share > 0;
                 ++h) {
                if (!fenced_[h])
                    recoveredBytes_ += pool_->grant(h, share);
            }
        }
        // releaseQuarantined() ended the scrub pass in the ledger.
        ledgerAllOk_ = ledgerAllOk_ && pool_->ledgerOk()
                       && sw_->creditLedgerOk();
    });
}

void
Cluster::fenceCheck()
{
    const Tick now = eq_.curTick();
    ledgerAllOk_ = ledgerAllOk_ && pool_->ledgerOk()
                   && sw_->creditLedgerOk();
    const Tick deadline = static_cast<Tick>(spec_.missThreshold)
                          * ticksFromNs(spec_.fenceCheckNs);
    bool anyWork = false;
    for (std::uint32_t h = 0; h < spec_.hosts; ++h) {
        if (beatDone_[h] || fenced_[h])
            continue;
        if (now - lastBeat_[h] > deadline) {
            fenceHost(h, now);
            continue;
        }
        anyWork = true;
    }
    if (anyWork || pool_->scrubbing()) {
        eq_.schedule(now + ticksFromNs(spec_.fenceCheckNs),
                     [this] { fenceCheck(); });
    } else {
        checkerArmed_ = false;
    }
}

ClusterResult
Cluster::run()
{
    // Host-domain kickoff: crash schedule, heartbeats, initial window
    // of closed-loop slots.
    for (std::uint32_t h = 0; h < spec_.hosts; ++h) {
        hostQueue(h).schedule(0, [this, h] {
            Host &H = hosts_[h];
            if (static_cast<std::int32_t>(h) == spec_.crashHost) {
                hostQueue(h).schedule(
                    ticksFromNs(spec_.crashAtNs),
                    [this, h] { hosts_[h].crashed = true; });
            }
            beat(h);
            if (H.target == 0) {
                hostComplete(h, 0);
                return;
            }
            for (std::uint32_t s = 0; s < H.slots.size(); ++s) {
                if (H.slots[s].target > 0)
                    issueSlot(h, s);
                else if (++H.slotsDone == H.slots.size())
                    hostComplete(h, 0);
            }
        });
    }
    // Fabric-domain kickoff: fence checker and the port-outage drill.
    checkerArmed_ = true;
    eq_.schedule(ticksFromNs(spec_.fenceCheckNs),
                 [this] { fenceCheck(); });
    if (spec_.portDownHost >= 0) {
        eq_.schedule(ticksFromNs(spec_.portDownAtNs), [this] {
            sw_->portDown(
                static_cast<std::uint32_t>(spec_.portDownHost),
                ticksFromNs(spec_.retrainNs));
        });
    }
    if (watchdog_)
        watchdog_->arm();
    if (sampler_)
        sampler_->arm();

    const Tick limit =
        opts_.limitUs > 0.0 ? ticksFromUs(opts_.limitUs) : maxTick;
    if (exec_)
        exec_->run(limit);
    else
        eq_.runUntil(limit);

    ClusterResult res;
    res.endTick = exec_ ? exec_->curTick() : eq_.curTick();
    ledgerAllOk_ = ledgerAllOk_ && pool_->ledgerOk()
                   && sw_->creditLedgerOk();
    res.ledgerOk = ledgerAllOk_;
    res.quarantinedBytes = quarantinedBytes_;
    res.recoveredBytes = recoveredBytes_;
    if (fencedAt_ > 0 && crashTick_ > 0)
        res.timeToFenceNs = nsFromTicks(fencedAt_ - crashTick_);
    else if (fencedAt_ > 0)
        res.timeToFenceNs = nsFromTicks(fencedAt_);
    res.watchdogTripped = watchdogTripped_;
    res.watchdogReport = watchdogReport_;

    for (std::uint32_t h = 0; h < spec_.hosts; ++h) {
        Host &H = hosts_[h];
        HostReport r;
        r.host = h;
        r.role = H.role;
        // Fold the per-slot hashes in slot order: the digest is a
        // pure function of each slot's program order, never of the
        // cross-slot completion interleaving.
        H.digest.valueHash = fnvBasis;
        for (const Slot &s : H.slots)
            H.digest.valueHash = fnv(H.digest.valueHash, s.valueHash);
        H.digest.ledgerHash = fnvBasis;
        for (const auto &kv : H.poisonLedger) {
            H.digest.ledgerHash = fnv(H.digest.ledgerHash, kv.first);
            H.digest.ledgerHash = fnv(H.digest.ledgerHash, kv.second);
        }
        r.digest = H.digest;
        r.grantedBytes = H.windowLines * cachelineBytes;
        r.fenced = fenced_[h];
        r.durationNs = nsFromTicks(H.lastDoneTick);
        r.gbps = gbPerSec(H.digest.bytes, H.lastDoneTick);
        r.readAvgNs = H.readHist.empty()
                          ? 0.0
                          : H.readLatSumNs
                                / static_cast<double>(
                                    H.readHist.count());
        r.readP99Ns = H.readHist.percentile(99.0);
        r.readHist = H.readHist;
        if (H.tailcap)
            r.tail = H.tailcap->summary();
        res.hosts.push_back(std::move(r));
    }
    res.verdict = attributionVerdict();
    if (board_)
        res.fabric = board_->snapshot(res.endTick);
    if (metrics_) {
        metrics_->flush(res.endTick);
        res.metricsRows = metrics_->rows();
    }
    // res.traceJson stays empty here: serializing a large trace is a
    // consumer cost, paid via traceJson() by whoever actually writes
    // the file (runPool), not by every armed run.
    return res;
}

std::string
Cluster::exportTraceJson() const
{
    bool any = false;
    for (const Host &H : hosts_)
        any = any || H.tracer != nullptr;
    if (!any)
        return "";

    std::string out;
    std::size_t spans = 0;
    for (const Host &H : hosts_)
        if (H.tracer)
            spans += H.tracer->completed().size();
    out.reserve(spans * 9 * 140); // span + ~8 marks, ~140 B/event
    bool first = true;
    const auto meta = [&out, &first](int pid, const std::string &name) {
        if (!first)
            out += ",\n";
        first = false;
        out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
               + std::to_string(pid) + ",\"args\":{\"name\":\"" + name
               + "\"}}";
    };
    const auto event = [&out, &first](const char *name, int pid,
                                      unsigned tid, Tick ts, Tick dur,
                                      std::uint64_t id, Addr addr,
                                      const char *stage) {
        if (!first)
            out += ",\n";
        first = false;
        char buf[256];
        // ts/dur are microseconds with 6 decimals, i.e. the raw tick
        // count split at 10^6 -- formatted in integer arithmetic
        // because %.6f is the dominant cost of exporting a large
        // trace (one export can carry tens of thousands of events).
        std::snprintf(
            buf, sizeof(buf),
            "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%llu.%06llu,"
            "\"dur\":%llu.%06llu,\"pid\":%d,\"tid\":%u,"
            "\"args\":{\"id\":%llu,\"addr\":%llu,\"stage\":\"%s\"}}",
            name, static_cast<unsigned long long>(ts / 1000000),
            static_cast<unsigned long long>(ts % 1000000),
            static_cast<unsigned long long>(dur / 1000000),
            static_cast<unsigned long long>(dur % 1000000), pid, tid,
            static_cast<unsigned long long>(id),
            static_cast<unsigned long long>(addr), stage);
        out += buf;
    };

    // One track (pid) per host plus the shared fabric track: host-side
    // stages land on the issuing host's track, switch-path stages on
    // the fabric track with the port as the thread row.
    meta(0, "fabric");
    for (const Host &H : hosts_)
        meta(1 + static_cast<int>(H.id),
             "host" + std::to_string(H.id));

    for (const Host &H : hosts_) {
        if (!H.tracer)
            continue;
        const int hostPid = 1 + static_cast<int>(H.id);
        for (const TraceSpan &span : H.tracer->completed()) {
            // Host-scoped span ids stay unique in the merged file.
            const std::uint64_t id =
                (static_cast<std::uint64_t>(H.id + 1) << 32) | span.id;
            event(memCmdName(span.cmd), hostPid, H.id, span.start,
                  span.end - span.start, id, span.addr, "span");
            for (std::size_t i = 0; i < span.marks.size(); ++i) {
                const StageMark &m = span.marks[i];
                const Tick until = i + 1 < span.marks.size()
                                       ? span.marks[i + 1].at
                                       : span.end;
                const bool fab = isFabricStage(m.stage);
                event(traceStageName(m.stage), fab ? 0 : hostPid,
                      H.id, m.at, until > m.at ? until - m.at : 0, id,
                      span.addr, traceStageName(m.stage));
            }
        }
    }

    // The worst-K outliers land on a dedicated tail track per host
    // (tid = kTailTid), parent slice tail:<regime> plus one child per
    // stage -- the p99 request as a clickable stack, next to the
    // sampled spans.
    for (const Host &H : hosts_) {
        if (!H.tailcap)
            continue;
        const int hostPid = 1 + static_cast<int>(H.id);
        for (const TailSpan *s : H.tailcap->worstFirst()) {
            const std::uint64_t id =
                (static_cast<std::uint64_t>(H.id + 1) << 32) | s->id;
            const std::string parent =
                std::string("tail:") + tailRegimeName(s->regime);
            event(parent.c_str(), hostPid, TailCapture::kTailTid,
                  s->start, s->latency(), id, s->addr, "tail");
            for (std::size_t i = 0; i < s->marks.size(); ++i) {
                const StageMark &m = s->marks[i];
                const Tick until = i + 1 < s->marks.size()
                                       ? s->marks[i + 1].at
                                       : s->end;
                event(traceStageName(m.stage), hostPid,
                      TailCapture::kTailTid, m.at,
                      until > m.at ? until - m.at : 0, id, s->addr,
                      traceStageName(m.stage));
            }
        }
    }
    return out;
}

std::string
Cluster::attributionVerdict() const
{
    // The fabric regime rides behind the host-level verdict, so the
    // leading "aggressor=..."/"no-aggressor..." forms are unchanged
    // whether or not attribution is enabled.
    std::string fabricSuffix;
    if (board_) {
        const Tick now = exec_ ? exec_->curTick() : eq_.curTick();
        fabricSuffix = " " + board_->snapshot(now).verdict();
    }
    std::uint64_t total = 0;
    for (std::uint32_t h = 0; h < spec_.hosts; ++h)
        total += sw_->portStats(h).reqBytes;
    if (total == 0)
        return "no-traffic" + fabricSuffix;
    std::uint32_t top = 0;
    for (std::uint32_t h = 1; h < spec_.hosts; ++h)
        if (sw_->portStats(h).reqBytes
            > sw_->portStats(top).reqBytes)
            top = h;
    const double share =
        static_cast<double>(sw_->portStats(top).reqBytes)
        / static_cast<double>(total);
    char buf[128];
    // Name an aggressor only when the top port clearly exceeds its
    // fair share of fabric bytes *among hosts still active* -- a
    // symmetric workload hovers at 1/hosts and must stay
    // "no-aggressor", and the lone survivor of a fenced peer is not
    // an aggressor against anyone.
    std::uint32_t active = 0;
    for (std::uint32_t h = 0; h < spec_.hosts; ++h)
        if (!fenced_[h])
            ++active;
    const bool dominant = share * active > 1.4;
    // Victim: the surviving host (other than the top talker) with
    // the worst read tail.
    std::int32_t victim = -1;
    double worst = -1.0;
    for (std::uint32_t h = 0; h < spec_.hosts; ++h) {
        if (h == top || fenced_[h])
            continue;
        const double p99 = hosts_[h].readHist.percentile(99.0);
        if (p99 > worst) {
            worst = p99;
            victim = static_cast<std::int32_t>(h);
        }
    }
    if (dominant && active > 1 && victim >= 0) {
        std::snprintf(buf, sizeof(buf),
                      "aggressor=host%u share=%.2f victim=host%d "
                      "port=%d",
                      top, share, victim, victim);
    } else {
        std::snprintf(buf, sizeof(buf), "no-aggressor max_share=%.2f",
                      share);
    }
    return buf + fabricSuffix;
}

void
Cluster::inject(std::uint32_t host, MemCmd cmd, Addr hostAddr,
                std::uint64_t value, InjectDone done)
{
    CXLMEMO_ASSERT(!exec_, "inject() drives the classic engine only");
    const PoolManager::Loc loc = fenced_[host]
                                     ? PoolManager::Loc{}
                                     : pool_->translate(host, hostAddr);
    CxlSwitch::Op op;
    op.addr = loc.addr;
    op.cmd = cmd;
    op.value = value;
    // Injected ops enter the switch directly; date the issue one port
    // hop back so the fabric attribution bracket (which charges both
    // port crossings to sw.wire) stays exact for them too.
    const Tick pl = sw_->params().portLatency;
    const Tick now = eq_.curTick();
    op.issued = now >= pl ? now - pl : 0;
    // Injected ops are traceable like workload traffic: litmus tests
    // rely on the span timeline to audit fence containment.
    TraceSpan *span = nullptr;
    if (hosts_[host].tracer) {
        span = hosts_[host].tracer->maybeStart(
            static_cast<std::uint16_t>(host), cmd, hostAddr,
            op.issued);
        RequestTracer::mark(span, TraceStage::SwM2s, op.issued);
    }
    op.span = span;
    op.done = [this, host, cmd, span, done = std::move(done)](
                  Tick d, CxlSwitch::Status st, std::uint64_t v) {
        if (span)
            hosts_[host].tracer->finish(span, d);
        const CxlSwitch::Status shaped = shapeStatus(host, cmd, st);
        if (done)
            done(d, shaped, v);
    };
    sw_->submit(host, loc.dev, std::move(op));
}

const std::map<Addr, std::uint64_t> &
Cluster::poisonLedger(std::uint32_t host) const
{
    return hosts_[host].poisonLedger;
}

} // namespace cxlmemo
