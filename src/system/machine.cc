#include "system/machine.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "sim/logging.hh"
#include "sim/pool.hh"

namespace cxlmemo
{

namespace testbed_params
{

/*
 * Calibration provenance
 * ----------------------
 * The absolute constants below come from public datasheets (DDR5-4800
 * / DDR4-2666 timings, PCIe Gen5 x16 and UPI rates) and are then
 * jointly calibrated so the end-to-end *idle latencies* and *peak
 * bandwidths* land on the figures the paper reports:
 *
 *   local DDR5 load-to-use        ~ 105-115 ns
 *   remote-socket (1 hop) load    ~ 1.5-1.7x local
 *   CXL (Agilex-I) load           ~ 3.5-3.9x local for pointer chase
 *                                   (paper Fig. 2: 3.7x), dominated by
 *                                   the FPGA controller pipeline
 *   local 8-channel load peak     ~ 221 GB/s at ~26 threads
 *   local 8-channel nt-store peak ~ 170 GB/s
 *   CXL sequential load peak      ~ 21 GB/s (DDR4-2666 = 21.3 GB/s
 *                                   theoretical), degrading to ~17 at
 *                                   high thread counts
 */

DramChannelParams
localDdr5Channel()
{
    DramChannelParams p;
    p.name = "ddr5-local";
    p.peakGBps = 38.4;       // DDR5-4800, 8 B bus
    p.busEfficiency = 0.72;  // sustained/peak of SPR iMC under load
    p.tRowHit = ticksFromNs(15.0);
    p.tRowMiss = ticksFromNs(46.0); // tRP+tRCD+tCL at 4800 MT/s
    p.tBankCycle = ticksFromNs(48.0); // tRC
    p.tWriteRecovery = ticksFromNs(15.0);
    p.tTurnaround = ticksFromNs(7.5);
    p.tFrontend = ticksFromNs(10.0);
    p.numBanks = 32;         // bank groups x banks visible to the iMC
    p.rowBytes = 8 * kiB;
    p.scanDepth = 16;        // deep OoO scheduler in the iMC
    p.maxHitRun = 16;
    p.ntPostedEntries = 32;  // iMC write-pending queue share
    p.writeEfficiency = 0.77; // tWTR/turnaround derating of writes
    return p;
}

DramChannelParams
remoteDdr5Channel()
{
    DramChannelParams p = localDdr5Channel();
    p.name = "ddr5-remote";
    p.busEfficiency = 0.80;  // single channel, no cross-channel mixing
    return p;
}

DramChannelParams
cxlDdr4Channel()
{
    DramChannelParams p;
    p.name = "ddr4-cxl";
    p.peakGBps = 21.3;       // DDR4-2666
    p.busEfficiency = 0.97;  // paper: nt-store reaches theoretical max
    p.tRowHit = ticksFromNs(14.0);
    // The Agilex EMIF runs at a quarter-rate user clock; the bank
    // cycle (precharge+activate plus controller bookkeeping) costs
    // far more than an ASIC controller's, which is what pulls the
    // channel below its bus peak once interleaved streams defeat the
    // open rows (Fig. 3b's decline beyond ~12 threads).
    p.tRowMiss = ticksFromNs(70.0);
    p.tBankCycle = ticksFromNs(56.0); // EMIF bank machine @ user clock
    p.tWriteRecovery = ticksFromNs(22.0);
    p.tTurnaround = ticksFromNs(10.0);
    p.tFrontend = ticksFromNs(25.0);
    p.numBanks = 16;
    p.rowBytes = 8 * kiB;
    p.bankStripeBytes = 2 * kiB;
    p.scanDepth = 6;         // FPGA-grade shallow scheduler
    p.maxHitRun = 8;
    p.maxDirectionRun = 8;
    // EMIF writes pipeline slightly worse than reads; this gives the
    // C2D > D2C asymmetry the paper attributes to "lower write
    // latency on DRAM" (Fig. 4b).
    p.writeEfficiency = 0.90;
    return p;
}

CxlDeviceParams
agilexCxlDevice()
{
    CxlDeviceParams p;
    p.name = "cxl0";
    p.link.rawGBps = 63.0;             // PCIe Gen5 x16
    p.link.flitEfficiency = 64.0 / 68.0;
    p.link.propagation = ticksFromNs(12.0);
    p.link.headerBytes = 17;
    p.link.dataBytes = 85;
    // R-tile hard IP + SIP bridge + EMIF clock-domain crossings; this
    // pair dominates the 3.7x pointer-chase ratio of Fig. 2.
    p.controllerIngress = ticksFromNs(85.0);
    p.controllerEgress = ticksFromNs(108.0);
    p.readQueueEntries = 48;
    p.writeBufferEntries = 40;
    p.backend = cxlDdr4Channel();
    return p;
}

UpiParams
uiPathToRemote()
{
    UpiParams p;
    p.name = "remote0";
    p.linkGBps = 48.0;
    p.hopLatency = ticksFromNs(32.0);
    p.headerBytes = 16;
    p.numChannels = 1; // the paper's DDR5-R1 comparison point
    p.channel = remoteDdr5Channel();
    return p;
}

HierarchyParams
sprHierarchy(std::uint32_t numCores)
{
    HierarchyParams h;
    h.numCores = numCores;
    h.l1 = CacheParams{"l1d", 48 * kiB, 12, ticksFromNs(2.5)};
    h.l2 = CacheParams{"l2", 2 * miB, 16, ticksFromNs(8.0)};
    h.llc = CacheParams{"llc", 60 * miB, 15, ticksFromNs(22.0)};
    h.uncoreLatency = ticksFromNs(12.0);
    h.ntDispatchLatency = ticksFromNs(6.0);
    h.prefetchEnabled = false;
    h.prefetchDegree = 8;
    h.prefetchStreams = 16;
    // Calibrated so the flush+load probe lands ~1.25x above the
    // pointer-chase latency on direct DRAM (paper Fig. 2 and [31]).
    h.flushHandshakePenalty = ticksFromNs(110.0);
    return h;
}

CoreParams
sprCore()
{
    CoreParams c;
    c.issueCost = ticksFromNs(0.4);
    c.loadFillBuffers = 16;
    c.wcBuffers = 8;
    // The architectural store buffer is deeper, but RFO fills go
    // through the same fill buffers as loads; this is the effective
    // store MLP, not the store-buffer capacity.
    c.storeBufferEntries = 14;
    return c;
}

} // namespace testbed_params

namespace
{

/*
 * Parallel domain decomposition
 * -----------------------------
 * When MachineOptions::simThreads > 0 the machine is partitioned into
 * simulation domains, each with a private EventQueue driven by the
 * conservative window engine (sim/parallel.hh):
 *
 *   rank 0              host socket: cores, caches, DSA, throttle,
 *                       metrics, watchdog, host-side fault injector
 *   ranks 1..C          one per local DDR5 channel
 *   next rank           the remote socket (UPI + its DDR5), if any
 *   last rank           the CXL device (links, controller, DDR4)
 *
 * The lookahead is 5 ns, and the genuine cross-domain latencies are
 * *re-partitioned* so the end-to-end uncontended path is tick-exact
 * despite the two lookahead crossings a round trip pays:
 *
 *   local DDR5   tFrontend 10 ns -> 0    (absorbs both crossings)
 *   CXL link     propagation 12 ns -> 7  (absorbs one per direction)
 *   UPI hop      32 ns -> 27             (absorbs one per direction)
 *
 * Every cross-domain post therefore carries >= L of genuine latency
 * and the executor's window floor never engages (clampedPosts == 0).
 */
constexpr Tick kDomainLookahead = ticksFromNs(5.0);

/** splitmix-style decorrelation of the device-domain fault stream
 *  from the host-side injector's seed. */
constexpr std::uint64_t kDevFaultSeedSalt = 0x9e3779b97f4a7c15ULL;

/**
 * Host-side stand-in, registered in the NUMA space, for a device that
 * lives in another simulation domain. Relays the access into the
 * device's domain (one lookahead crossing), relays acceptance and
 * completion back (another crossing), and replays the device-side
 * poison verdict into the host-side injector so the cache hierarchy's
 * consumption protocol is unchanged.
 */
class DomainProxy final : public MemoryDevice
{
  public:
    DomainProxy(ParallelExecutor &exec, EventQueue &hostEq,
                std::uint32_t rank, MemoryDevice &target, Tick lookahead,
                FaultInjector *hostFaults, FaultInjector *devFaults)
        : exec_(exec), hostEq_(hostEq), rank_(rank), target_(target),
          la_(lookahead), hostFaults_(hostFaults), devFaults_(devFaults)
    {
    }

    const std::string &name() const override { return target_.name(); }

    void
    access(MemRequest req) override
    {
        // Wrap even a null onComplete when the device can poison: the
        // verdict must travel back to arm the host-side injector.
        if (req.onComplete || devFaults_) {
            req.onComplete = [this, cb = std::move(req.onComplete)](
                                 Tick t) mutable {
                // Device side. The device arms poison immediately
                // before invoking the completion, so consuming here
                // captures the verdict (and keeps the device's own
                // delivered-unconsumed check quiet).
                const bool poisoned =
                    devFaults_ && devFaults_->consumePoison();
                exec_.post(rank_, 0, t + la_,
                           [this, poisoned,
                            cb = std::move(cb)](Tick at) mutable {
                               deliver(poisoned, std::move(cb), at);
                           });
            };
        }
        if (req.onAccept) {
            req.onAccept = [this, ac = std::move(req.onAccept)](
                               Tick t) mutable {
                exec_.post(rank_, 0, t + la_,
                           [ac = std::move(ac)](Tick at) mutable {
                               ac(at);
                           });
            };
        }
        exec_.post(0, rank_, hostEq_.curTick() + la_,
                   [this, r = std::move(req)](Tick) mutable {
                       target_.access(std::move(r));
                   });
    }

  private:
    void
    deliver(bool poisoned, MemRequest::Callback cb, Tick at)
    {
        if (poisoned)
            hostFaults_->armPoison();
        if (cb)
            cb(at);
        // Anything not absorbed by the cache hierarchy reached a
        // non-caching consumer (mirrors the device-side check).
        if (poisoned && hostFaults_->consumePoison()) {
            hostFaults_->stats().poisonDelivered++;
            CXLMEMO_WARN_RATELIMITED(8,
                "%s: poisoned line delivered to non-caching consumer",
                target_.name().c_str());
        }
    }

    ParallelExecutor &exec_;
    EventQueue &hostEq_;
    std::uint32_t rank_;
    MemoryDevice &target_;
    Tick la_;
    FaultInjector *hostFaults_;
    FaultInjector *devFaults_;
};

} // namespace

Machine::Machine(Testbed testbed, MachineOptions opts) : testbed_(testbed)
{
    using namespace testbed_params;

    std::uint32_t cores = 32;
    std::uint32_t local_channels = 8;
    std::uint64_t local_capacity = 128 * giB;
    std::uint64_t llc_bytes = 60 * miB;
    bool with_remote = false;
    bool with_cxl = true;

    switch (testbed) {
      case Testbed::SingleSocketCxl:
        name_ = "spr-6414u+agilex";
        break;
      case Testbed::DualSocket:
        name_ = "2x-spr-8460h+agilex";
        cores = 40;
        local_capacity = 128 * giB;
        llc_bytes = 105 * miB;
        with_remote = true;
        break;
      case Testbed::SncQuadrantCxl:
        name_ = "spr-6414u-snc+agilex";
        local_channels = 2;  // one SNC quadrant's iMCs
        local_capacity = 32 * giB;
        llc_bytes = 15 * miB; // one LLC slice
        break;
    }
    if (opts.numCores)
        cores = *opts.numCores;
    if (opts.localChannels)
        local_channels = *opts.localChannels;

    // The fault model covers the CXL path only (the paper's device
    // under test); local/remote DDR5 stays healthy. No injector is
    // created when every rate is zero, so the disabled configuration
    // is byte-identical to a machine without the RAS layer. A chaos
    // schedule needs the injector's poison hand-off protocol even at
    // all-zero rates (containment accounting rides it); a zero-rate
    // injector never draws from its RNG, so it stays deterministic.
    if (opts.faults.enabled() || opts.chaos.enabled())
        faults_ = std::make_unique<FaultInjector>(opts.faults);

    const bool par = opts.simThreads > 0;
    if (par) {
        // Sampled tracing exports spans in completion order, which is
        // executor-timing dependent, so it stays classic-only. Tail
        // capture (obs.tailK) is fine here: a span is touched by one
        // domain at a time (marks follow the request's causal chain,
        // handoffs synchronize through the executor posts) and the
        // retained worst-K set is completion-order independent by
        // construction.
        if (opts.obs.traceSampleEvery > 0)
            throw std::invalid_argument(
                "Machine: request-lifecycle tracing requires the "
                "single-queue engine (simThreads = 0)");
        lookahead_ = kDomainLookahead;
        // The device domain draws fault decisions from its own
        // decorrelated stream; the host injector keeps serving the
        // hierarchy's consumption protocol. The fault *pattern* thus
        // differs from the single-queue engine, but is a pure
        // function of the spec -- identical at every thread count.
        if (faults_) {
            FaultSpec ds = opts.faults;
            ds.seed = opts.faults.seed ^ kDevFaultSeedSalt;
            devFaults_ = std::make_unique<FaultInjector>(ds);
        }
        // All domain queues and the executor exist before any device,
        // so devices can be built directly on their domain's queue.
        const std::uint32_t numDomains = 1 + local_channels
                                         + (with_remote ? 1u : 0u)
                                         + (with_cxl ? 1u : 0u);
        std::vector<EventQueue *> ranks;
        ranks.reserve(numDomains);
        ranks.push_back(&eq_);
        for (std::uint32_t d = 1; d < numDomains; ++d) {
            domainQueues_.push_back(std::make_unique<EventQueue>());
            ranks.push_back(domainQueues_.back().get());
        }
        std::uint32_t nextRank = 1 + local_channels;
        if (with_remote)
            remoteRank_ = nextRank++;
        if (with_cxl)
            cxlRank_ = nextRank++;
        exec_ = std::make_unique<ParallelExecutor>(
            std::move(ranks), lookahead_, opts.simThreads);
    }

    DramChannelParams lp = localDdr5Channel();
    std::vector<EventQueue *> chQueues;
    if (par) {
        // The channel front-end absorbs both lookahead crossings of a
        // round trip, keeping end-to-end latency tick-exact.
        lp.tFrontend -= std::min(lp.tFrontend, 2 * lookahead_);
        for (std::uint32_t ch = 0; ch < local_channels; ++ch)
            chQueues.push_back(domainQueues_[ch].get());
    }
    local_ = std::make_unique<InterleavedMemory>(
        eq_, "ddr5-l" + std::to_string(local_channels), lp,
        local_channels, 256, nullptr, chQueues);
    localNode_ = numa_.addNode("local-ddr5", local_.get(), local_capacity);
    if (par) {
        local_->setChannelHop([this](std::uint32_t ch, MemRequest req) {
            const std::uint32_t rank = 1 + ch;
            if (req.onComplete) {
                req.onComplete = [this, rank,
                                  cb = std::move(req.onComplete)](
                                     Tick t) mutable {
                    exec_->post(rank, 0, t + lookahead_,
                                [cb = std::move(cb)](Tick at) mutable {
                                    cb(at);
                                });
                };
            }
            if (req.onAccept) {
                req.onAccept = [this, rank,
                                ac = std::move(req.onAccept)](
                                   Tick t) mutable {
                    exec_->post(rank, 0, t + lookahead_,
                                [ac = std::move(ac)](Tick at) mutable {
                                    ac(at);
                                });
                };
            }
            exec_->post(0, rank, eq_.curTick() + lookahead_,
                        [this, ch, r = std::move(req)](Tick) mutable {
                            local_->channel(ch).access(std::move(r));
                        });
        });
    }

    if (with_remote) {
        UpiParams up = uiPathToRemote();
        EventQueue *remoteEq = &eq_;
        if (par) {
            // Each direction's hop absorbs one lookahead crossing.
            up.hopLatency -= std::min(up.hopLatency, lookahead_);
            remoteEq = domainQueues_[remoteRank_ - 1].get();
        }
        remote_ = std::make_unique<UpiRemoteMemory>(*remoteEq, up);
        MemoryDevice *remoteFace = remote_.get();
        if (par) {
            proxies_.push_back(std::make_unique<DomainProxy>(
                *exec_, eq_, remoteRank_, *remote_, lookahead_,
                nullptr, nullptr));
            remoteFace = proxies_.back().get();
        }
        remoteNode_ = numa_.addNode("remote-ddr5", remoteFace, 128 * giB);
    }
    if (with_cxl) {
        CxlDeviceParams cp =
            opts.cxlDevice ? *opts.cxlDevice : agilexCxlDevice();
        EventQueue *cxlEq = &eq_;
        FaultInjector *cxlFaults = faults_.get();
        if (par) {
            // Each direction's propagation absorbs one crossing.
            cp.link.propagation =
                cp.link.propagation
                - std::min(cp.link.propagation, lookahead_);
            cxlEq = domainQueues_[cxlRank_ - 1].get();
            cxlFaults = devFaults_.get();
        }
        cxl_ = std::make_unique<CxlMemDevice>(*cxlEq, cp, cxlFaults,
                                              opts.qos);
        qosSpec_ = opts.qos;
        MemoryDevice *cxlFace = cxl_.get();
        if (par) {
            proxies_.push_back(std::make_unique<DomainProxy>(
                *exec_, eq_, cxlRank_, *cxl_, lookahead_,
                faults_.get(), devFaults_.get()));
            cxlFace = proxies_.back().get();
        }
        cxlNode_ = numa_.addNode("cxl-dram", cxlFace, 16 * giB,
                                 /*hasCpu=*/false);
        // The flushed-line handshake happens at the host home agent
        // and applies to HDM-backed lines as well (NumaNode default).
    }

    HierarchyParams h = sprHierarchy(cores);
    h.llc.sizeBytes = llc_bytes;
    h.prefetchEnabled = opts.prefetchEnabled;
    h.tlbEnabled = opts.tlbEnabled;
    caches_ = std::make_unique<CacheHierarchy>(eq_, numa_, h);
    if (faults_)
        caches_->setFaultInjector(faults_.get());
    if (cxl_ && qosSpec_.policy != QosPolicy::None) {
        throttle_ = std::make_unique<HostThrottle>(qosSpec_, cores);
        if (par) {
            // The throttle lives host-side (cores consult it when
            // issuing); DevLoad samples piggybacked on S2M responses
            // cross the domain boundary like any other event.
            cxl_->setLoadSink([this](double load, DevLoad level,
                                     Tick at) {
                exec_->post(cxlRank_, 0, at + lookahead_,
                            [this, load, level](Tick t) {
                                throttle_->observe(load, level, t);
                            });
            });
        } else {
            cxl_->setHostThrottle(throttle_.get());
        }
        caches_->setQosThrottle(throttle_.get(), cxlNode_);
    }
    if (opts.watchdogInterval > 0) {
        WatchdogParams wp;
        wp.interval = opts.watchdogInterval;
        watchdog_ = std::make_unique<Watchdog>(eq_, wp);
        if (par) {
            // Snapshots read device-domain state, so every snapshot
            // tick becomes an executor fence; the deadlock test must
            // see the whole machine's pending work, not just rank 0's.
            watchdog_->setParallelHooks(
                [this] { return exec_->pending(); },
                [this](Tick t) { exec_->addFence(t); });
        }
        if (cxl_) {
            cxl_->enableProgressTracking();
            watchdog_->watch(cxl_.get());
        }
        watchdog_->arm();
    }

    // Failure lifecycle. The device owns the link/removal FSMs (they
    // run on its own domain queue, so the schedule is identical at
    // every thread count); the host owns the page ledger and the NUMA
    // offline/online reaction, which it schedules at the same absolute
    // ticks as the device-side transitions.
    if (opts.chaos.enabled() && cxl_) {
        chaosSpec_ = opts.chaos;
        cxl_->armChaos(opts.chaos);
        if (watchdog_) {
            if (par) {
                // Announcements originate in the device domain; relay
                // them to the host like any other cross-domain event.
                cxl_->setChaosAnnounce(
                    [this](Tick at, const std::string &text) {
                        exec_->post(cxlRank_, 0, at + lookahead_,
                                    [this, at, text](Tick) {
                                        watchdog_->noteEvent(at, text);
                                    });
                    });
            } else {
                cxl_->setChaosAnnounce(
                    [this](Tick at, const std::string &text) {
                        watchdog_->noteEvent(at, text);
                    });
            }
        }
        if (opts.chaos.removeAtNs > 0) {
            const Tick off = ticksFromNs(
                static_cast<double>(opts.chaos.removeAtNs));
            eq_.schedule(off + (par ? lookahead_ : 0), [this] {
                numa_.setNodeOnline(cxlNode_, false);
                if (cxlHotplugHook_)
                    cxlHotplugHook_(eq_.curTick(), false);
            });
        }
        if (opts.chaos.readdAtNs > 0) {
            const Tick on = ticksFromNs(
                static_cast<double>(opts.chaos.readdAtNs));
            eq_.schedule(on + (par ? lookahead_ : 0), [this] {
                numa_.setNodeOnline(cxlNode_, true);
                if (cxlHotplugHook_)
                    cxlHotplugHook_(eq_.curTick(), true);
            });
        }
        if (opts.chaos.offlineThreshold > 0) {
            failureHandler_ = std::make_unique<MemoryFailureHandler>(
                opts.chaos.offlineThreshold, opts.chaos.maxOfflinePages);
            // The ledger tracks the device under test only; healthy
            // DDR5 poison (never injected today) would stay on the
            // kernel's classic hard-offline path.
            caches_->setPoisonSink([this](Addr paddr, Tick t) {
                if (nodeOfPaddr(paddr) == cxlNode_)
                    failureHandler_->notePoison(paddr, t);
            });
            if (watchdog_) {
                failureHandler_->addOfflineHook(
                    [this](Addr page, Tick at) -> std::uint64_t {
                        char buf[64];
                        std::snprintf(buf, sizeof(buf),
                                      "page 0x%llx offlined",
                                      static_cast<unsigned long long>(
                                          page));
                        watchdog_->noteEvent(at, buf);
                        return 0;
                    });
            }
        }
    }

    // Flight recorder. Everything below is opt-in: the default
    // ObservabilityOptions builds none of it, cores see a null tracer
    // and the devices' histogram pointers stay null, so the disabled
    // configuration is bit-identical to a build without this layer.
    if (opts.obs.traceSampleEvery > 0 || opts.obs.tailK > 0) {
        tracer_ = std::make_unique<RequestTracer>(
            opts.obs.traceSampleEvery, opts.obs.traceRing);
        caches_->setTracer(tracer_.get());
        if (opts.obs.tailK > 0) {
            tailcap_ = std::make_unique<TailCapture>(opts.obs.tailK);
            tracer_->setTailCapture(tailcap_.get());
        }
        if (watchdog_ && opts.obs.traceSampleEvery > 0) {
            watchdog_->addPostMortem(
                [this] { return tracer_->postMortem(eq_.curTick()); });
        }
        if (watchdog_ && tailcap_) {
            watchdog_->addPostMortem(
                [this] { return tailcap_->table(); });
        }
    }
    if (opts.obs.latencyHistograms) {
        local_->enableLatencyHistogram();
        if (remote_)
            remote_->enableLatencyHistogram();
        if (cxl_)
            cxl_->enableLatencyHistogram();
    }
    if (opts.obs.metricsInterval > 0) {
        metrics_ = std::make_unique<MetricsRegistry>();
        registerMetrics();
        sampler_ = std::make_unique<MetricsSampler>(
            eq_, *metrics_, opts.obs.metricsInterval);
        if (par) {
            sampler_->setParallelHooks(
                [this] { return exec_->pending(); },
                [this](Tick t) { exec_->addFence(t); });
        }
        sampler_->arm();
    }

    dsa_ = std::make_unique<Dsa>(eq_, numa_, DsaParams{});
    coreParams_ = sprCore();

    // Exhaustive latency accounting. Off by default: no board, every
    // instrumentation site is a null-pointer test, and enabling it
    // never schedules events -- so simulated timing is bit-identical
    // either way.
    if (opts.obs.attribution) {
        attrib_ = std::make_unique<AttributionBoard>(eq_.curTick());
        attrib_->setServers(StationId::CoreLfb, cores, /*buffer=*/true);
        // The lookup pipeline serves up to one access per outstanding
        // miss buffer per core; utilization is relative to the
        // machine's full memory-level parallelism.
        attrib_->setServers(StationId::Cache,
                            cores * coreParams_.loadFillBuffers);
        std::uint32_t dram_channels = local_->numChannels();
        if (remote_)
            dram_channels += remote_->params().numChannels;
        attrib_->setServers(StationId::Dram, dram_channels);
        attrib_->setServers(StationId::Dsa, dsa_->params().numEngines);
        caches_->setStation(&attrib_->station(StationId::Cache));
        dsa_->setStation(&attrib_->station(StationId::Dsa));
        if (!par) {
            local_->setStation(&attrib_->station(StationId::Dram));
            if (remote_) {
                remote_->setStation(&attrib_->station(StationId::Upi));
                remote_->setDramStation(
                    &attrib_->station(StationId::Dram));
            }
            if (cxl_)
                cxl_->setAttribution(attrib_.get());
        } else {
            // Stations owned by other domains go on per-domain shard
            // boards (accounting is single-threaded within a domain);
            // attribSnapshot() merges them back. The host board keeps
            // the request bracket (cores) and the Cache/Dsa stations.
            shardBoards_.resize(exec_->numDomains());
            for (std::uint32_t ch = 0; ch < local_->numChannels();
                 ++ch) {
                auto &b = shardBoards_[1 + ch];
                b = std::make_unique<AttributionBoard>(0);
                local_->channel(ch).setStation(
                    &b->station(StationId::Dram));
            }
            if (remote_) {
                auto &b = shardBoards_[remoteRank_];
                b = std::make_unique<AttributionBoard>(0);
                remote_->setStation(&b->station(StationId::Upi));
                remote_->setDramStation(&b->station(StationId::Dram));
            }
            if (cxl_) {
                auto &b = shardBoards_[cxlRank_];
                b = std::make_unique<AttributionBoard>(0);
                cxl_->setAttribution(b.get());
            }
        }
        if (watchdog_) {
            watchdog_->addPostMortem(
                [this] { return attribSnapshot().postMortem(); });
        }
    }
}

void
Machine::run()
{
    if (exec_)
        exec_->run();
    else
        eq_.run();
}

bool
Machine::runUntil(Tick limit)
{
    return exec_ ? exec_->run(limit) : eq_.runUntil(limit);
}

const RasStats *
Machine::rasStats() const
{
    if (!faults_)
        return nullptr;
    if (!devFaults_)
        return &faults_->stats();
    rasMerged_ = faults_->stats();
    rasMerged_.merge(devFaults_->stats());
    return &rasMerged_;
}

ChaosStats
Machine::chaosStats() const
{
    ChaosStats s;
    if (cxl_)
        s = cxl_->chaosStats();
    if (failureHandler_)
        s.merge(failureHandler_->stats());
    return s;
}

AttribSnapshot
Machine::attribSnapshot() const
{
    CXLMEMO_ASSERT(attrib_ != nullptr,
                   "attribSnapshot without obs.attribution");
    AttribSnapshot snap = attrib_->snapshot(eq_.curTick());
    for (const auto &b : shardBoards_) {
        if (!b)
            continue;
        AttribSnapshot s = b->snapshot(eq_.curTick());
        // The shards cover the *same* window as the host board, not a
        // disjoint one; merging must not double the elapsed time.
        s.elapsed = 0;
        snap.merge(s);
    }
    return snap;
}

void
Machine::registerMetrics()
{
    MetricsRegistry &m = *metrics_;
    m.addCounter("eq.events", [this] { return eq_.eventsExecuted(); });

    m.addCounter("local.reads",
                 [this] { return local_->stats().reads; });
    m.addCounter("local.writes",
                 [this] { return local_->stats().writes; });
    m.addCounter("local.bytes_read",
                 [this] { return local_->stats().bytesRead; });
    m.addCounter("local.bytes_written",
                 [this] { return local_->stats().bytesWritten; });
    m.addCounter("local.row_hits",
                 [this] { return local_->stats().rowHits; });
    m.addCounter("local.row_misses",
                 [this] { return local_->stats().rowMisses; });

    m.addCounter("llc.hits",
                 [this] { return caches_->llcStats().hits; });
    m.addCounter("llc.misses",
                 [this] { return caches_->llcStats().misses; });
    m.addCounter("llc.dirty_evictions",
                 [this] { return caches_->llcStats().dirtyEvictions; });

    if (remote_) {
        m.addCounter("remote.reads",
                     [this] { return remote_->stats().reads; });
        m.addCounter("remote.writes",
                     [this] { return remote_->stats().writes; });
        m.addCounter("upi.bytes_down",
                     [this] { return remote_->bytesDown(); });
        m.addCounter("upi.bytes_up",
                     [this] { return remote_->bytesUp(); });
    }
    if (cxl_) {
        m.addCounter("cxl.reads",
                     [this] { return cxl_->backendStats().reads; });
        m.addCounter("cxl.writes",
                     [this] { return cxl_->backendStats().writes; });
        m.addCounter("cxl.row_hits",
                     [this] { return cxl_->backendStats().rowHits; });
        m.addCounter("cxl.row_misses",
                     [this] { return cxl_->backendStats().rowMisses; });
        m.addCounter("cxl.bytes_m2s", [this] { return cxl_->bytesDown(); });
        m.addCounter("cxl.bytes_s2m", [this] { return cxl_->bytesUp(); });
        m.addCounter("cxl.reads_stalled", [this] {
            return cxl_->controllerStats().readsStalled;
        });
        m.addCounter("cxl.writes_stalled", [this] {
            return cxl_->controllerStats().writesStalled;
        });
        m.addGauge("cxl.reads_in_flight", [this] {
            return static_cast<double>(cxl_->readsInFlight());
        });
        m.addGauge("cxl.writes_buffered", [this] {
            return static_cast<double>(cxl_->writesBuffered());
        });
        m.addGauge("cxl.read_wait_depth", [this] {
            return static_cast<double>(cxl_->readWaitDepth());
        });
        m.addGauge("cxl.write_wait_depth", [this] {
            return static_cast<double>(cxl_->writeWaitDepth());
        });
        if (qosSpec_.enabled()) {
            m.addGauge("cxl.dev_load", [this] { return cxl_->devLoad(); });
            m.addGauge("cxl.credit_wait_depth", [this] {
                return static_cast<double>(cxl_->creditWaitDepth());
            });
        }
    }
    // Windowed percentile timelines ride the device histograms, which
    // exist only when obs.latencyHistograms is also set (histograms
    // are enabled before this runs). Values are ticks; scale to ns.
    if (local_->latencyHistogram()) {
        m.addHistogram("lat.local",
                       [this] { return local_->latencyHistogram(); },
                       1.0 / tickPerNs);
    }
    if (remote_ && remote_->latencyHistogram()) {
        m.addHistogram("lat.remote",
                       [this] { return remote_->latencyHistogram(); },
                       1.0 / tickPerNs);
    }
    if (cxl_ && cxl_->latencyHistogram()) {
        m.addHistogram("lat.cxl",
                       [this] { return cxl_->latencyHistogram(); },
                       1.0 / tickPerNs);
    }
    if (faults_) {
        m.addCounter("ras.crc_errors",
                     [this] { return rasStats()->crcErrors; });
        m.addCounter("ras.link_retries",
                     [this] { return rasStats()->linkRetries; });
        m.addCounter("ras.timeouts",
                     [this] { return rasStats()->timeouts; });
        m.addCounter("ras.host_retries",
                     [this] { return rasStats()->hostRetries; });
    }
    if (chaosSpec_.enabled() && cxl_) {
        m.addCounter("chaos.link_downs",
                     [this] { return chaosStats().linkDowns; });
        m.addCounter("chaos.retrains",
                     [this] { return chaosStats().retrains; });
        m.addCounter("chaos.blocked_msgs",
                     [this] { return chaosStats().blockedMsgs; });
        m.addCounter("chaos.removals",
                     [this] { return chaosStats().removals; });
        m.addCounter("chaos.aborted_reads",
                     [this] { return chaosStats().abortedReads; });
        m.addCounter("chaos.pages_offlined",
                     [this] { return chaosStats().pagesOfflined; });
        m.addCounter("chaos.offlined_bytes",
                     [this] { return chaosStats().offlinedBytes; });
    }
    // Event/callback allocation rate of the simulator itself (the
    // slab allocator in sim/pool.hh). Machine-relative baseline: the
    // pool counters are process-wide. Only the allocation count is
    // registered -- free-list reuse vs. fallback splits depend on
    // which *worker* frees a cell, which is not thread-count
    // invariant and would break the determinism contract.
    m.addCounter("alloc.pool_allocs", [base = poolAllocCount()] {
        return poolAllocCount() - base;
    });
    if (exec_) {
        m.addCounter("sim.windows", [this] { return exec_->windows(); });
        m.addCounter("sim.cross_posts",
                     [this] { return exec_->crossPosts(); });
        m.addCounter("sim.clamped_posts",
                     [this] { return exec_->clampedPosts(); });
    }
}

NodeId
Machine::remoteNode() const
{
    CXLMEMO_ASSERT(remote_ != nullptr, "testbed has no remote socket");
    return remoteNode_;
}

NodeId
Machine::cxlNode() const
{
    CXLMEMO_ASSERT(cxl_ != nullptr, "testbed has no CXL device");
    return cxlNode_;
}

UpiRemoteMemory &
Machine::remoteMem()
{
    CXLMEMO_ASSERT(remote_ != nullptr, "testbed has no remote socket");
    return *remote_;
}

CxlMemDevice &
Machine::cxlDev()
{
    CXLMEMO_ASSERT(cxl_ != nullptr, "testbed has no CXL device");
    return *cxl_;
}

std::unique_ptr<HwThread>
Machine::makeThread(std::uint16_t core)
{
    CXLMEMO_ASSERT(core < numCores(), "core %u beyond testbed", core);
    auto t = std::make_unique<HwThread>(*caches_, core, coreParams_);
    if (attrib_)
        t->setAttribution(attrib_.get());
    return t;
}

void
Machine::resetStats()
{
    local_->resetStats();
    if (remote_)
        remote_->resetStats();
    if (cxl_)
        cxl_->resetStats();
    if (faults_)
        faults_->stats().reset();
    if (devFaults_)
        devFaults_->stats().reset();
    if (throttle_)
        throttle_->resetStats();
    if (attrib_)
        attrib_->beginWindow(eq_.curTick());
    for (auto &b : shardBoards_)
        if (b)
            b->beginWindow(eq_.curTick());
}

std::optional<QosStats>
Machine::qosStats() const
{
    if (!cxl_ || !qosSpec_.enabled())
        return std::nullopt;
    QosStats qs;
    cxl_->fillQosStats(qs);
    if (throttle_)
        throttle_->fillStats(qs);
    return qs;
}

std::string
Machine::statsString() const
{
    std::ostringstream os;
    os << "Stats for " << name_ << "\n";
    auto dev_line = [&os](const std::string &label,
                          const DeviceStats &s) {
        const auto row_total = s.rowHits + s.rowMisses;
        os << "  " << label << ": reads " << s.reads << " (" 
           << s.bytesRead / kiB << " KiB), writes " << s.writes << " ("
           << s.bytesWritten / kiB << " KiB), row-hit "
           << (row_total
                   ? 100.0 * static_cast<double>(s.rowHits)
                         / static_cast<double>(row_total)
                   : 0.0)
           << "%\n";
    };
    // Per-component access-latency histograms (only when enabled by
    // ObservabilityOptions::latencyHistograms and non-empty).
    auto hist_line = [&os](const std::string &label,
                           const LatencyHistogram *h) {
        if (!h || h->empty())
            return;
        os << "    lat " << label << ": n=" << h->count() << ", avg "
           << h->mean() / tickPerNs << " ns, p50 "
           << h->p50() / tickPerNs << " ns, p99 "
           << h->p99() / tickPerNs << " ns, max "
           << static_cast<double>(h->max()) / tickPerNs << " ns\n";
    };
    dev_line("local-ddr5 ", local_->stats());
    hist_line("local-ddr5", local_->latencyHistogram());
    if (remote_) {
        dev_line("remote-ddr5", remote_->stats());
        hist_line("remote-ddr5", remote_->latencyHistogram());
        os << "    upi bytes: down " << remote_->bytesDown() / kiB
           << " KiB, up " << remote_->bytesUp() / kiB << " KiB\n";
    }
    if (cxl_) {
        dev_line("cxl-dram   ", cxl_->backendStats());
        hist_line("cxl-dram", cxl_->latencyHistogram());
        os << "    link bytes: M2S " << cxl_->bytesDown() / kiB
           << " KiB, S2M " << cxl_->bytesUp() / kiB << " KiB\n";
        const CxlControllerStats &cs = cxl_->controllerStats();
        os << "    controller: reads stalled " << cs.readsStalled
           << ", writes stalled " << cs.writesStalled
           << ", write-buffer high-water " << cs.writeBufferHighWater
           << "\n";
        if (faults_) {
            os << "    link degrade level: M2S "
               << cxl_->downDegradeLevel() << ", S2M "
               << cxl_->upDegradeLevel() << "\n";
        }
    }
    if (auto qs = qosStats()) {
        os << "  qos: " << qs->summary() << "\n";
        bool any = false;
        for (std::uint32_t c = 0; c < numCores(); ++c) {
            const std::uint64_t t = cxl_->creditStallTicks(
                static_cast<std::uint16_t>(c));
            if (t == 0)
                continue;
            if (!any)
                os << "    credit-stall ns by core:";
            os << " c" << c << "=" << t / tickPerNs;
            any = true;
        }
        if (any)
            os << "\n";
    }
    if (watchdog_) {
        os << "  watchdog: snapshots " << watchdog_->snapshots()
           << ", tripped " << (watchdog_->tripped() ? "yes" : "no")
           << "\n";
    }
    if (faults_)
        os << "  ras: " << rasStats()->summary() << "\n";
    if (chaosSpec_.enabled() && cxl_)
        os << "  chaos: " << chaosStats().summary() << "\n";
    if (exec_) {
        os << "  engine: domains " << exec_->numDomains()
           << ", windows " << exec_->windows() << ", cross-posts "
           << exec_->crossPosts() << ", clamped "
           << exec_->clampedPosts() << "\n";
    }
    const CacheStats &llc = caches_->llcStats();
    os << "  llc: hits " << llc.hits << ", misses " << llc.misses
       << " (hit rate " << 100.0 * llc.hitRate() << "%), dirty evictions "
       << llc.dirtyEvictions << "\n";
    const PrefetchStats &pf = caches_->prefetchStats();
    if (pf.issued)
        os << "  prefetch: issued " << pf.issued << ", useful "
           << pf.usefulHits << "\n";
    if (caches_->params().tlbEnabled)
        os << "  tlb: walks " << caches_->tlbWalks() << ", stlb hits "
           << caches_->stlbHits() << "\n";
    os << "  dsa: bytes copied " << dsa_->bytesCopied() / kiB
       << " KiB\n";
    if (attrib_)
        os << attribSnapshot().statLines();
    return os.str();
}

std::string
Machine::configString() const
{
    std::ostringstream os;
    os << "Testbed: " << name_ << "\n";
    os << "  cores: " << numCores()
       << " (issue " << nsFromTicks(coreParams_.issueCost)
       << " ns/op, " << coreParams_.loadFillBuffers << " LFBs, "
       << coreParams_.wcBuffers << " WC buffers)\n";
    const auto &h = caches_->params();
    os << "  L1D " << h.l1.sizeBytes / kiB << " KiB, L2 "
       << h.l2.sizeBytes / miB << " MiB, LLC "
       << h.llc.sizeBytes / miB << " MiB shared\n";
    os << "  node0 local-ddr5: " << local_->numChannels()
       << "x DDR5-4800 channels, "
       << numa_.node(localNode_).capacityBytes / giB << " GiB\n";
    if (remote_) {
        os << "  node1 remote-ddr5 (UPI): "
           << remote_->params().numChannels << "x DDR5-4800, "
           << numa_.node(remoteNode_).capacityBytes / giB << " GiB\n";
    }
    if (cxl_) {
        os << "  node" << cxlNode_
           << " cxl-dram (CXL 1.1 x16, Agilex-I): 1x DDR4-2666, "
           << numa_.node(cxlNode_).capacityBytes / giB
           << " GiB, CPU-less\n";
    }
    return os.str();
}

} // namespace cxlmemo
