/**
 * @file
 * Testbed assembly: wires cores, caches, NUMA nodes, DRAM channels,
 * the UPI link and the CXL device into the machines of the paper's
 * Table 1. All calibration constants live in machine.cc with their
 * provenance.
 */

#ifndef CXLMEMO_SYSTEM_MACHINE_HH
#define CXLMEMO_SYSTEM_MACHINE_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "cxl/device.hh"
#include "dsa/dsa.hh"
#include "interconnect/upi.hh"
#include "mem/dram.hh"
#include "numa/numa.hh"
#include "sim/attribution.hh"
#include "sim/chaos.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/lifecycle.hh"
#include "sim/metrics.hh"
#include "sim/observability.hh"
#include "sim/parallel.hh"
#include "sim/qos.hh"
#include "sim/tailcap.hh"
#include "sim/trace.hh"
#include "sim/watchdog.hh"

namespace cxlmemo
{

/** Which of the paper's testbeds to build. */
enum class Testbed
{
    /** Intel Xeon Gold 6414U: 32 cores, 60 MB LLC, 8x DDR5-4800,
     *  CXL 1.1 x16 with the Agilex-I device (16 GB DDR4-2666). */
    SingleSocketCxl,

    /** 2x Intel Xeon Platinum 8460H: adds a remote-socket DDR5 node
     *  behind UPI (populated with one channel, the paper's DDR5-R1). */
    DualSocket,

    /** Single socket in SNC mode, workload confined to one quadrant's
     *  memory controllers: 2 DDR5 channels + 15 MB LLC slice, plus the
     *  CXL device (the bandwidth-bound setup of Fig. 9). */
    SncQuadrantCxl,
};

/** Optional knobs applied on top of a testbed preset. */
struct MachineOptions
{
    bool prefetchEnabled = false;
    /** Enable the per-core DTLB model (see HierarchyParams). */
    bool tlbEnabled = false;
    std::optional<std::uint32_t> numCores;
    std::optional<std::uint32_t> localChannels;
    /** Replace the CXL device (e.g. a hypothetical ASIC; see
     *  bench_future_cxl). */
    std::optional<CxlDeviceParams> cxlDevice;
    /** RAS fault model applied to the CXL path (link, controller and
     *  the device-side DRAM). All-zero rates (the default) build a
     *  healthy machine with no injector at all, guaranteeing
     *  bit-identical behaviour to a build without the RAS layer. */
    FaultSpec faults;

    /** Failure-lifecycle schedule on the CXL path: scripted link
     *  down/retrain, device hot-remove/re-add and poison-driven page
     *  offlining (sim/chaos.hh). The default (disabled) spec arms
     *  nothing and is bit-identical to a machine without the layer. */
    ChaosSpec chaos;

    /** Overload-control model on the CXL path: M2S credit pools,
     *  DevLoad telemetry and the host throttle. The default
     *  (disabled) spec builds no pools, no meter and no throttle --
     *  bit-identical to a machine without the QoS layer. */
    QosSpec qos;

    /** Forward-progress watchdog snapshot interval; 0 (the default)
     *  builds no watchdog and schedules no events. */
    Tick watchdogInterval = 0;

    /** Flight-recorder configuration: request-lifecycle tracing,
     *  interval metrics and per-component latency histograms. The
     *  default (all off) builds no tracer, no registry, no sampler
     *  and enables no histograms -- timing and statistics are
     *  bit-identical to a machine without the observability layer. */
    ObservabilityOptions obs;

    /**
     * Domain-partitioned parallel simulation: worker threads for the
     * conservative window engine (sim/parallel.hh). 0 (the default)
     * keeps the classic single-queue engine, bit-identical to a build
     * without this subsystem. Any value >= 1 partitions the machine
     * into per-component simulation domains (host socket, each local
     * DRAM channel, the remote socket, the CXL device) whose output is
     * byte-identical at every thread count -- including 1 -- though
     * not to the single-queue engine (domain-crossing latencies are
     * repartitioned and the device fault stream is decoupled; see
     * DESIGN.md). Incompatible with request-lifecycle tracing. */
    std::uint32_t simThreads = 0;
};

/**
 * A fully assembled simulated machine. Owns the event queue, devices,
 * NUMA space and cache hierarchy; workloads create HwThreads on top.
 */
class Machine
{
  public:
    explicit Machine(Testbed testbed, MachineOptions opts = {});

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    EventQueue &eq() { return eq_; }
    NumaSpace &numa() { return numa_; }

    /** True when the domain-partitioned parallel engine is active. */
    bool parallel() const { return exec_ != nullptr; }

    /** The parallel executor (nullptr when simThreads == 0). */
    ParallelExecutor *executor() { return exec_.get(); }

    /** Drive the simulation until every queue drains. Equivalent to
     *  eq().run() on the single-queue engine; required instead of it
     *  when the parallel engine is active. */
    void run();

    /** Drive until drained or @p limit (inclusive); see
     *  EventQueue::runUntil. @return true if drained. */
    bool runUntil(Tick limit);

    CacheHierarchy &caches() { return *caches_; }
    const CoreParams &coreParams() const { return coreParams_; }
    Testbed testbed() const { return testbed_; }
    const std::string &name() const { return name_; }

    std::uint32_t numCores() const { return caches_->params().numCores; }

    /** NUMA node ids (fatal accessor if absent on this testbed). */
    NodeId localNode() const { return localNode_; }
    NodeId remoteNode() const;
    NodeId cxlNode() const;
    bool hasRemote() const { return remote_ != nullptr; }
    bool hasCxl() const { return cxl_ != nullptr; }

    /** Device accessors for stats inspection. */
    InterleavedMemory &localMem() { return *local_; }
    Dsa &dsa() { return *dsa_; }
    UpiRemoteMemory &remoteMem();
    CxlMemDevice &cxlDev();

    /** Fault injector (nullptr when faults are disabled). In parallel
     *  mode this is the *host-side* injector (poison consumption); the
     *  device domain draws its fault decisions from a decoupled
     *  stream. */
    FaultInjector *faults() { return faults_.get(); }

    /** RAS counters, or nullptr when faults are disabled. In parallel
     *  mode, the host- and device-side streams merged. */
    const RasStats *rasStats() const;

    /** The QoS configuration this machine was built with. */
    const QosSpec &qosSpec() const { return qosSpec_; }

    /** Overload-control counters, or nullopt when QoS is disabled. */
    std::optional<QosStats> qosStats() const;

    /** Host throttle (nullptr unless a reaction policy is active). */
    HostThrottle *hostThrottle() { return throttle_.get(); }

    /** The chaos schedule this machine was built with. */
    const ChaosSpec &chaosSpec() const { return chaosSpec_; }

    /** Per-page memory-failure handler (nullptr unless the chaos spec
     *  enables page offlining). */
    MemoryFailureHandler *failureHandler() { return failureHandler_.get(); }

    /**
     * Failure-lifecycle counters: the device's link/removal FSM state
     * merged with the host page ledger. Read only at a quiesced point
     * (after run()/runUntil()) when the parallel engine is active.
     */
    ChaosStats chaosStats() const;

    /**
     * Host-side reaction hook fired when the CXL node is marked
     * offline (online = false) or back online (online = true) by a
     * scheduled hot-remove/re-add. Runs on the host domain; the drill
     * harness uses it to evacuate tiered data off the dying device.
     */
    void
    setCxlHotplugHook(std::function<void(Tick, bool)> hook)
    {
        cxlHotplugHook_ = std::move(hook);
    }

    /** Forward-progress watchdog (nullptr when disabled). */
    Watchdog *watchdog() { return watchdog_.get(); }

    /** Request-lifecycle tracer (nullptr when tracing is disabled).
     *  Also built (sampling 0-in-N) when only tail capture is armed,
     *  since tail mode rides the tracer's span plumbing. */
    RequestTracer *tracer() { return tracer_.get(); }

    /** Worst-K tail capture (nullptr when `obs.tailK` is 0). */
    TailCapture *tailCapture() { return tailcap_.get(); }

    /** Interval-metrics registry (nullptr when metrics are disabled). */
    MetricsRegistry *metrics() { return metrics_.get(); }

    /** Latency-attribution board (nullptr when `obs.attribution` is
     *  off -- the default: no stations, no accounting, bit-identical
     *  timing and statistics). In parallel mode this is the host
     *  board only; use attribSnapshot() for the full machine. */
    AttributionBoard *attribution() { return attrib_.get(); }

    /** Machine-wide attribution roll-up: the host board merged with
     *  the per-domain shard boards the parallel engine splits the
     *  device stations onto. Requires attribution() != nullptr. */
    AttribSnapshot attribSnapshot() const;

    /** Emit the final metrics snapshot plus end-of-run totals (no-op
     *  when metrics are disabled; idempotent). */
    void
    flushMetrics()
    {
        if (metrics_)
            metrics_->flush(eq_.curTick());
    }

    /** Restart the watchdog snapshot cycle and the metrics sampler;
     *  call before pushing new work after the event queue quiesced
     *  (no-op when both are disabled). */
    void
    rearmWatchdog()
    {
        if (watchdog_)
            watchdog_->arm();
        if (sampler_)
            sampler_->arm();
    }

    /** Create a thread pinned to @p core with this machine's core
     *  parameters. */
    std::unique_ptr<HwThread> makeThread(std::uint16_t core);

    /** Reset all device/cache statistics (not state). */
    void resetStats();

    /** Human-readable configuration dump (Table 1 reproduction). */
    std::string configString() const;

    /**
     * Machine-wide statistics report: per-node device traffic and
     * row-buffer behaviour, CXL link/controller counters, LLC hit
     * rate, prefetcher and TLB activity. Intended for experiment
     * post-mortems and debugging.
     */
    std::string statsString() const;

  private:
    Testbed testbed_;
    std::string name_;
    EventQueue eq_;
    NumaSpace numa_;

    std::unique_ptr<FaultInjector> faults_; //!< before devices using it

    /* Parallel engine (all empty when simThreads == 0). Declared
     * before the devices: channels and devices hold references into
     * domainQueues_ and devFaults_, so those must outlive them. */
    std::unique_ptr<FaultInjector> devFaults_; //!< device-domain stream
    std::vector<std::unique_ptr<EventQueue>> domainQueues_; //!< ranks 1..N
    std::unique_ptr<ParallelExecutor> exec_;
    Tick lookahead_ = 0;
    std::uint32_t remoteRank_ = 0; //!< 0 = no remote domain
    std::uint32_t cxlRank_ = 0;    //!< 0 = no CXL domain

    std::unique_ptr<InterleavedMemory> local_;
    std::unique_ptr<UpiRemoteMemory> remote_;
    std::unique_ptr<CxlMemDevice> cxl_;
    /** Host-side stand-ins registered in the NUMA space for devices
     *  that live in another domain (parallel mode only). */
    std::vector<std::unique_ptr<MemoryDevice>> proxies_;
    std::unique_ptr<CacheHierarchy> caches_;
    std::unique_ptr<Dsa> dsa_;
    QosSpec qosSpec_;
    ChaosSpec chaosSpec_;
    std::unique_ptr<MemoryFailureHandler> failureHandler_;
    std::function<void(Tick, bool)> cxlHotplugHook_;
    std::unique_ptr<HostThrottle> throttle_;
    std::unique_ptr<Watchdog> watchdog_;
    std::unique_ptr<RequestTracer> tracer_;
    std::unique_ptr<TailCapture> tailcap_;
    std::unique_ptr<MetricsRegistry> metrics_;
    std::unique_ptr<MetricsSampler> sampler_;
    std::unique_ptr<AttributionBoard> attrib_;
    /** Per-domain attribution shards, indexed by rank ([0] unused:
     *  the host accounts on attrib_). Empty when not parallel. */
    std::vector<std::unique_ptr<AttributionBoard>> shardBoards_;
    mutable RasStats rasMerged_; //!< rasStats() scratch (parallel)
    CoreParams coreParams_;

    /** Register component counters/gauges with metrics_. */
    void registerMetrics();

    NodeId localNode_ = 0;
    NodeId remoteNode_ = 0;
    NodeId cxlNode_ = 0;
};

/** Calibrated component parameter factories (shared with tests). */
namespace testbed_params
{

/** One local DDR5-4800 channel behind the SPR iMC. */
DramChannelParams localDdr5Channel();

/** One remote-socket DDR5-4800 channel (behind UPI). */
DramChannelParams remoteDdr5Channel();

/** The DDR4-2666 channel behind the Agilex-I EMIF. */
DramChannelParams cxlDdr4Channel();

/** The Agilex-I CXL Type-3 device. */
CxlDeviceParams agilexCxlDevice();

/** The UPI path to the second socket. */
UpiParams uiPathToRemote();

/** SPR cache hierarchy (single socket, unified mode). */
HierarchyParams sprHierarchy(std::uint32_t numCores);

/** SPR core issue resources. */
CoreParams sprCore();

} // namespace testbed_params

} // namespace cxlmemo

#endif // CXLMEMO_SYSTEM_MACHINE_HH
