#include "apps/dsb/dsb.hh"

#include <utility>

#include "cpu/streams.hh"
#include "sim/logging.hh"

namespace cxlmemo
{
namespace dsb
{

const char *
requestTypeName(RequestType t)
{
    switch (t) {
      case RequestType::ComposePost:
        return "compose-post";
      case RequestType::ReadUserTimeline:
        return "read-user-timeline";
      case RequestType::ReadHomeTimeline:
        return "read-home-timeline";
    }
    return "?";
}

Stage::Stage(Machine &machine, std::string name, std::uint16_t firstCore,
             std::uint32_t workers)
    : machine_(machine), name_(std::move(name))
{
    CXLMEMO_ASSERT(workers > 0, "stage with no workers");
    for (std::uint32_t w = 0; w < workers; ++w) {
        workers_.push_back(machine.makeThread(
            static_cast<std::uint16_t>(firstCore + w)));
        busy_.push_back(false);
    }
}

void
Stage::submit(std::vector<MemOp> ops, Done onDone)
{
    queue_.emplace_back(std::move(ops), std::move(onDone));
    trySchedule();
}

void
Stage::trySchedule()
{
    while (!queue_.empty()) {
        std::size_t idx = workers_.size();
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            if (!busy_[w]) {
                idx = w;
                break;
            }
        }
        if (idx == workers_.size())
            return; // all workers occupied; retried on completion
        auto [ops, done] = std::move(queue_.front());
        queue_.pop_front();
        busy_[idx] = true;
        workers_[idx]->start(
            std::make_unique<ListStream>(std::move(ops)),
            machine_.eq().curTick(),
            [this, idx, done = std::move(done)](Tick, Tick end) mutable {
                ++completed_;
                // The worker is occupied until its logical end (which
                // may be ahead of global time after trailing compute).
                machine_.eq().schedule(end, [this, idx,
                                             done = std::move(done), end] {
                    busy_[idx] = false;
                    if (done)
                        done(end);
                    trySchedule();
                });
            });
    }
}

SocialNetwork::SocialNetwork(Machine &machine, DsbParams params,
                             const MemPolicy &dbPlacement)
    : machine_(machine), params_(params), rng_(0xd5b)
{
    postStore_ = machine.numa().alloc(
        std::uint64_t(params_.numPosts) * params_.postBytes, dbPlacement);
    timelineCache_ = machine.numa().alloc(
        std::uint64_t(params_.numUsers) * params_.timelineBytes,
        dbPlacement);
    homeCache_ = machine.numa().alloc(
        std::uint64_t(params_.numUsers) * params_.timelineBytes,
        dbPlacement);

    std::uint16_t core = 0;
    auto make = [&](const char *name, std::uint32_t n) {
        auto s = std::make_unique<Stage>(machine, name, core, n);
        core = static_cast<std::uint16_t>(core + n);
        return s;
    };
    nginx_ = make("nginx", params_.nginxWorkers);
    logic_ = make("logic", params_.logicWorkers);
    uniqueId_ = make("unique-id", params_.uniqueIdWorkers);
    storage_ = make("post-storage", params_.storageWorkers);
    cache_ = make("timeline-cache", params_.cacheWorkers);
    CXLMEMO_ASSERT(core <= machine.numCores(),
                   "stage workers exceed core count");
}

const LatencyHistogram &
SocialNetwork::latency(RequestType type) const
{
    switch (type) {
      case RequestType::ComposePost:
        return composeLat_;
      case RequestType::ReadUserTimeline:
        return readUserLat_;
      case RequestType::ReadHomeTimeline:
        return readHomeLat_;
    }
    CXLMEMO_PANIC("bad request type");
}

void
SocialNetwork::resetLatencies()
{
    composeLat_.reset();
    readUserLat_.reset();
    readHomeLat_.reset();
}

std::vector<std::pair<std::string, std::uint64_t>>
SocialNetwork::memoryBreakdown() const
{
    return {
        {"post-storage (db)", postStore_.size()},
        {"user-timeline cache", timelineCache_.size()},
        {"home-timeline cache", homeCache_.size()},
        // Compute components hold code + session state, always local.
        {"nginx (local)", 512 * miB},
        {"application logic (local)", 384 * miB},
    };
}

namespace
{

void
appendCompute(std::vector<MemOp> &ops, Tick t)
{
    ops.push_back({MemOp::Kind::Compute, 0, 0, t});
}

/** Dependent document walk + streaming payload reads. */
void
appendDocRead(std::vector<MemOp> &ops, const NumaBuffer &buf,
              std::uint64_t off, std::uint32_t bytes,
              std::uint32_t depLines)
{
    const std::uint32_t lines = bytes / cachelineBytes;
    for (std::uint32_t l = 0; l < lines; ++l) {
        ops.push_back({l < depLines ? MemOp::Kind::DependentLoad
                                    : MemOp::Kind::Load,
                       buf.translate(off + std::uint64_t(l)
                                           * cachelineBytes),
                       0, 0});
    }
}

/** Lookup walk + document write. */
void
appendDocWrite(std::vector<MemOp> &ops, const NumaBuffer &buf,
               std::uint64_t off, std::uint32_t bytes)
{
    // Index/lookup hops before the write.
    ops.push_back({MemOp::Kind::DependentLoad, buf.translate(off), 0, 0});
    ops.push_back({MemOp::Kind::DependentLoad,
                   buf.translate(off + cachelineBytes), 0, 0});
    const std::uint32_t lines = bytes / cachelineBytes;
    for (std::uint32_t l = 0; l < lines; ++l) {
        ops.push_back({MemOp::Kind::Store,
                       buf.translate(off + std::uint64_t(l)
                                           * cachelineBytes),
                       0, 0});
    }
}

} // namespace

std::vector<MemOp>
SocialNetwork::postReadOps(std::uint64_t post) const
{
    std::vector<MemOp> ops;
    appendDocRead(ops, postStore_, post * params_.postBytes,
                  params_.postBytes, /*depLines=*/4);
    return ops;
}

std::vector<MemOp>
SocialNetwork::postWriteOps(std::uint64_t post) const
{
    std::vector<MemOp> ops;
    // MongoDB-like insert: index traversal + document + index update.
    for (int hop = 0; hop < 6; ++hop) {
        ops.push_back({MemOp::Kind::DependentLoad,
                       postStore_.translate(
                           rng_.below(params_.numPosts)
                           * params_.postBytes),
                       0, 0});
    }
    appendDocWrite(ops, postStore_, post * params_.postBytes,
                   params_.postBytes);
    return ops;
}

std::vector<MemOp>
SocialNetwork::timelineReadOps(std::uint64_t user) const
{
    std::vector<MemOp> ops;
    appendDocRead(ops, timelineCache_, user * params_.timelineBytes,
                  params_.timelineBytes, /*depLines=*/3);
    return ops;
}

std::vector<MemOp>
SocialNetwork::timelineUpdateOps(std::uint64_t user) const
{
    std::vector<MemOp> ops;
    // ZADD into the follower's timeline sorted set: a skiplist
    // descent (dependent hops over the cache's working set) before
    // the entry write.
    for (std::uint32_t hop = 0; hop < params_.skiplistDepth; ++hop) {
        ops.push_back({MemOp::Kind::DependentLoad,
                       timelineCache_.translate(
                           rng_.below(params_.numUsers)
                           * params_.timelineBytes),
                       0, 0});
    }
    appendDocWrite(ops, timelineCache_, user * params_.timelineBytes,
                   params_.timelineBytes);
    return ops;
}

void
SocialNetwork::submit(RequestType type)
{
    const Tick arrival = machine_.eq().curTick();
    switch (type) {
      case RequestType::ComposePost:
        composePost(arrival);
        break;
      case RequestType::ReadUserTimeline:
        readUserTimeline(arrival);
        break;
      case RequestType::ReadHomeTimeline:
        readHomeTimeline(arrival);
        break;
    }
}

void
SocialNetwork::composePost(Tick arrival)
{
    std::vector<MemOp> nginx_ops;
    appendCompute(nginx_ops, params_.nginxCompute);
    nginx_->submit(std::move(nginx_ops), [this, arrival](Tick) {
        std::vector<MemOp> logic_ops;
        appendCompute(logic_ops, params_.logicCompute);
        logic_->submit(std::move(logic_ops), [this, arrival](Tick) {
            std::vector<MemOp> uid_ops;
            appendCompute(uid_ops, params_.uniqueIdCompute);
            uniqueId_->submit(std::move(uid_ops), [this, arrival](Tick) {
                // Store the post document.
                const std::uint64_t post = rng_.below(params_.numPosts);
                std::vector<MemOp> st = postWriteOps(post);
                appendCompute(st, params_.storageCompute);
                storage_->submit(std::move(st), [this, arrival](Tick) {
                    // Fan the post out to followers' timelines.
                    std::vector<MemOp> ca;
                    for (std::uint32_t f = 0;
                         f < params_.followersPerPost; ++f) {
                        auto upd = timelineUpdateOps(
                            rng_.below(params_.numUsers));
                        ca.insert(ca.end(), upd.begin(), upd.end());
                    }
                    appendCompute(ca, params_.cacheCompute);
                    cache_->submit(std::move(ca),
                                   [this, arrival](Tick end) {
                        composeLat_.record((end - arrival)
                                           / tickPerNs);
                    });
                });
            });
        });
    });
}

void
SocialNetwork::readUserTimeline(Tick arrival)
{
    std::vector<MemOp> nginx_ops;
    appendCompute(nginx_ops, params_.nginxCompute);
    nginx_->submit(std::move(nginx_ops), [this, arrival](Tick) {
        std::vector<MemOp> logic_ops;
        appendCompute(logic_ops, params_.logicCompute);
        logic_->submit(std::move(logic_ops), [this, arrival](Tick) {
            // Timeline lookup in the cache...
            const std::uint64_t user = rng_.below(params_.numUsers);
            std::vector<MemOp> ca = timelineReadOps(user);
            appendCompute(ca, params_.cacheCompute);
            cache_->submit(std::move(ca), [this, arrival](Tick) {
                // ...then fetch the referenced posts from storage.
                std::vector<MemOp> st;
                for (std::uint32_t p = 0; p < params_.postsPerTimeline;
                     ++p) {
                    auto rd = postReadOps(rng_.below(params_.numPosts));
                    st.insert(st.end(), rd.begin(), rd.end());
                }
                appendCompute(st, params_.storageCompute);
                storage_->submit(std::move(st),
                                 [this, arrival](Tick end) {
                    readUserLat_.record((end - arrival) / tickPerNs);
                });
            });
        });
    });
}

void
SocialNetwork::readHomeTimeline(Tick arrival)
{
    // Served entirely from the home-timeline cache; it never touches
    // the databases (which is why the paper omits its figure).
    std::vector<MemOp> nginx_ops;
    appendCompute(nginx_ops, params_.nginxCompute);
    nginx_->submit(std::move(nginx_ops), [this, arrival](Tick) {
        const std::uint64_t user = rng_.below(params_.numUsers);
        std::vector<MemOp> ca;
        appendDocRead(ca, homeCache_, user * params_.timelineBytes,
                      params_.timelineBytes, /*depLines=*/3);
        appendCompute(ca, params_.cacheCompute);
        cache_->submit(std::move(ca), [this, arrival](Tick end) {
            readHomeLat_.record((end - arrival) / tickPerNs);
        });
    });
}

DsbRunResult
runDsb(double composeFrac, double readUserFrac, double readHomeFrac,
       bool dbOnCxl, double qps, double durationSec,
       const DsbParams &params, std::uint64_t seed)
{
    CXLMEMO_ASSERT(
        std::abs(composeFrac + readUserFrac + readHomeFrac - 1.0) < 1e-9,
        "workload mix must sum to 1");
    Machine m(Testbed::SingleSocketCxl);
    const MemPolicy placement =
        dbOnCxl ? MemPolicy::membind(m.cxlNode())
                : MemPolicy::membind(m.localNode());
    SocialNetwork app(m, params, placement);

    Rng rng(seed);
    const double mean_gap_ns = 1e9 / qps;
    const Tick horizon = ticksFromSec(durationSec);
    std::uint64_t injected = 0;

    struct Client
    {
        Machine *m;
        SocialNetwork *app;
        Rng *rng;
        double composeFrac;
        double readUserFrac;
        double meanGapNs;
        Tick horizon;
        std::uint64_t *injected;

        void
        arrive()
        {
            const double p = rng->uniform();
            RequestType t = RequestType::ReadHomeTimeline;
            if (p < composeFrac)
                t = RequestType::ComposePost;
            else if (p < composeFrac + readUserFrac)
                t = RequestType::ReadUserTimeline;
            app->submit(t);
            ++(*injected);
            const Tick next =
                m->eq().curTick()
                + ticksFromNs(rng->exponential(meanGapNs));
            if (next < horizon)
                m->eq().schedule(next, [this] { arrive(); });
        }
    };
    Client client{&m,   &app,          &rng,    composeFrac,
                  readUserFrac, mean_gap_ns, horizon, &injected};
    m.eq().schedule(ticksFromNs(rng.exponential(mean_gap_ns)),
                    [&client] { client.arrive(); });
    m.eq().run();

    DsbRunResult res;
    res.offeredQps = qps;
    res.achievedQps =
        static_cast<double>(injected) / secFromTicks(m.eq().curTick());
    if (app.latency(RequestType::ComposePost).count() > 0)
        res.p99ComposeMs =
            app.latency(RequestType::ComposePost).p99() / 1e6;
    if (app.latency(RequestType::ReadUserTimeline).count() > 0)
        res.p99ReadUserMs =
            app.latency(RequestType::ReadUserTimeline).p99() / 1e6;
    if (app.latency(RequestType::ReadHomeTimeline).count() > 0)
        res.p99ReadHomeMs =
            app.latency(RequestType::ReadHomeTimeline).p99() / 1e6;
    return res;
}

} // namespace dsb
} // namespace cxlmemo
