/**
 * @file
 * DeathStarBench-style social-network microservice model (paper
 * Sec. 5.3).
 *
 * Requests traverse a DAG of service stages (nginx front end,
 * application logic, unique-id, post storage, timeline caches), each
 * a pool of workers with a queue. Compute-heavy stages always run
 * from local DDR5; the storage and caching components -- the ones
 * with large working sets -- are pinned to either DDR5 or CXL memory,
 * reproducing the paper's placement experiment.
 *
 * Because every stage adds hundreds of microseconds of intermediate
 * computation, end-to-end latency is in milliseconds, and only the
 * database-heavy compose-post path exposes the CXL latency penalty
 * (the paper's central observation about microservices).
 */

#ifndef CXLMEMO_APPS_DSB_DSB_HH
#define CXLMEMO_APPS_DSB_DSB_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "sim/histogram.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace dsb
{

/** Social-network request types (the paper's three workloads). */
enum class RequestType : std::uint8_t
{
    ComposePost,
    ReadUserTimeline,
    ReadHomeTimeline,
};

const char *requestTypeName(RequestType t);

/** Service graph and dataset parameters. */
struct DsbParams
{
    /* dataset */
    std::uint64_t numPosts = 4'000'000;  //!< 1 KiB documents (~4 GiB)
    std::uint64_t numUsers = 2'000'000;  //!< 512 B timeline records
    std::uint32_t postBytes = 1024;
    std::uint32_t timelineBytes = 512;
    std::uint32_t postsPerTimeline = 10; //!< posts read per timeline
    std::uint32_t followersPerPost = 100; //!< timelines touched per compose

    /** Sorted-set (skiplist) descent depth per timeline insert; each
     *  hop is a dependent cacheline access. This is what makes the
     *  compose-post path "more database operations" (Sec. 5.3). */
    std::uint32_t skiplistDepth = 12;

    /* per-stage compute costs (the "layers of intermediate
     * computation" that amortize memory latency) */
    Tick nginxCompute = ticksFromUs(900.0);
    Tick logicCompute = ticksFromUs(650.0);
    Tick uniqueIdCompute = ticksFromUs(60.0);
    Tick storageCompute = ticksFromUs(250.0);
    Tick cacheCompute = ticksFromUs(120.0);

    /* pool sizes (workers per stage) */
    std::uint32_t nginxWorkers = 8;
    std::uint32_t logicWorkers = 4;
    std::uint32_t uniqueIdWorkers = 2;
    std::uint32_t storageWorkers = 4;
    std::uint32_t cacheWorkers = 4;
};

/**
 * One service stage: a worker pool fed by a FIFO queue. Work items
 * are memory-op lists executed on real cores.
 */
class Stage
{
  public:
    using Done = InlineCallback<void(Tick end)>;

    Stage(Machine &machine, std::string name, std::uint16_t firstCore,
          std::uint32_t workers);

    /** Enqueue a work item (ops may be empty for pure compute). */
    void submit(std::vector<MemOp> ops, Done onDone);

    const std::string &name() const { return name_; }
    std::uint64_t completed() const { return completed_; }

  private:
    void trySchedule();

    Machine &machine_;
    std::string name_;
    std::vector<std::unique_ptr<HwThread>> workers_;
    std::vector<bool> busy_;
    std::deque<std::pair<std::vector<MemOp>, Done>> queue_;
    std::uint64_t completed_ = 0;
};

/** The assembled application. */
class SocialNetwork
{
  public:
    /**
     * @param dbPlacement page policy for post storage and the
     *        timeline/home caches (the paper pins these to DDR5-L8
     *        or to CXL memory)
     */
    SocialNetwork(Machine &machine, DsbParams params,
                  const MemPolicy &dbPlacement);

    /** Inject one request; latency recorded at completion. */
    void submit(RequestType type);

    const LatencyHistogram &latency(RequestType type) const;
    void resetLatencies();

    /** Component -> resident bytes (Fig. 10's memory breakdown). */
    std::vector<std::pair<std::string, std::uint64_t>>
    memoryBreakdown() const;

    const DsbParams &params() const { return params_; }

  private:
    void composePost(Tick arrival);
    void readUserTimeline(Tick arrival);
    void readHomeTimeline(Tick arrival);

    std::vector<MemOp> postReadOps(std::uint64_t post) const;
    std::vector<MemOp> postWriteOps(std::uint64_t post) const;
    std::vector<MemOp> timelineReadOps(std::uint64_t user) const;
    std::vector<MemOp> timelineUpdateOps(std::uint64_t user) const;

    Machine &machine_;
    DsbParams params_;
    NumaBuffer postStore_;
    NumaBuffer timelineCache_;
    NumaBuffer homeCache_;

    std::unique_ptr<Stage> nginx_;
    std::unique_ptr<Stage> logic_;
    std::unique_ptr<Stage> uniqueId_;
    std::unique_ptr<Stage> storage_;
    std::unique_ptr<Stage> cache_;

    mutable Rng rng_;
    LatencyHistogram composeLat_;
    LatencyHistogram readUserLat_;
    LatencyHistogram readHomeLat_;
};

/** One load point of Fig. 10. */
struct DsbRunResult
{
    double offeredQps = 0.0;
    double achievedQps = 0.0;
    double p99ComposeMs = 0.0;
    double p99ReadUserMs = 0.0;
    double p99ReadHomeMs = 0.0;
};

/**
 * Drive the social network with Poisson arrivals.
 * @param mix fractions (compose, readUser, readHome); the paper's
 *        mixed workload is (0.1, 0.3, 0.6)
 */
DsbRunResult runDsb(double composeFrac, double readUserFrac,
                    double readHomeFrac, bool dbOnCxl, double qps,
                    double durationSec = 2.0,
                    const DsbParams &params = {},
                    std::uint64_t seed = 42);

} // namespace dsb
} // namespace cxlmemo

#endif // CXLMEMO_APPS_DSB_DSB_HH
