#include "apps/dlrm/dlrm.hh"

#include <vector>

#include "cpu/streams.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace cxlmemo
{
namespace dlrm
{

namespace
{

/**
 * Generates the memory-op sequence of back-to-back inferences:
 * (pooling x tables) gathers with per-line accumulate compute,
 * followed by the dense-MLP compute block.
 */
class InferenceStream : public AccessStream
{
  public:
    InferenceStream(const NumaBuffer &buf, const DlrmParams &p,
                    std::uint64_t seed, std::uint64_t *counter)
        : buf_(buf), p_(p), rng_(seed), counter_(counter)
    {
        linesPerRow_ = p_.rowBytes / cachelineBytes;
        gathersPerInference_ =
            std::uint64_t(p_.tables) * p_.pooling;
    }

    bool
    next(MemOp &op) override
    {
        // Emit: [row line load, accumulate]* ... [MLP compute].
        if (emitCompute_) {
            emitCompute_ = false;
            op.kind = MemOp::Kind::Compute;
            op.computeTicks = p_.perLineCompute;
            return true;
        }
        if (gather_ == gathersPerInference_) {
            // End of the sparse phase: dense MLP, then next inference.
            gather_ = 0;
            line_ = 0;
            if (counter_)
                ++(*counter_);
            op.kind = MemOp::Kind::Compute;
            op.computeTicks = p_.mlpCompute;
            return true;
        }
        if (line_ == 0) {
            // Pick the next embedding row: random row of table t.
            const std::uint32_t table =
                static_cast<std::uint32_t>(gather_ % p_.tables);
            const std::uint64_t row = rng_.below(p_.rowsPerTable);
            const std::uint64_t table_bytes =
                std::uint64_t(p_.rowsPerTable) * p_.rowBytes;
            rowBase_ = std::uint64_t(table) * table_bytes
                       + row * p_.rowBytes;
        }
        op.kind = MemOp::Kind::Load;
        op.paddr = buf_.translate(rowBase_
                                  + std::uint64_t(line_)
                                        * cachelineBytes);
        if (++line_ == linesPerRow_) {
            line_ = 0;
            ++gather_;
        }
        emitCompute_ = true;
        return true;
    }

  private:
    const NumaBuffer &buf_;
    DlrmParams p_;
    Rng rng_;
    std::uint64_t *counter_;
    std::uint32_t linesPerRow_;
    std::uint64_t gathersPerInference_;
    std::uint64_t gather_ = 0;
    std::uint32_t line_ = 0;
    std::uint64_t rowBase_ = 0;
    bool emitCompute_ = false;
};

} // namespace

DlrmModel::DlrmModel(Machine &machine, DlrmParams params,
                     const MemPolicy &placement, std::uint64_t seed)
    : params_(params), seed_(seed)
{
    CXLMEMO_ASSERT(params_.rowBytes % cachelineBytes == 0,
                   "embedding row must be whole cachelines");
    const std::uint64_t total = std::uint64_t(params_.tables)
                                * params_.rowsPerTable
                                * params_.rowBytes;
    buffer_ = machine.numa().alloc(total, placement);
}

std::unique_ptr<AccessStream>
DlrmModel::makeWorkerStream(std::uint32_t worker, std::uint64_t *counter)
{
    return std::make_unique<InferenceStream>(
        buffer_, params_, seed_ + 77 * worker + 1, counter);
}

double
runInferenceThroughput(Machine &machine, const DlrmParams &params,
                       const MemPolicy &placement, std::uint32_t threads,
                       double warmupUs, double measureUs,
                       std::uint64_t seed)
{
    CXLMEMO_ASSERT(threads >= 1 && threads <= machine.numCores(),
                   "thread count out of range");
    DlrmModel model(machine, params, placement, seed);

    std::vector<std::uint64_t> counters(threads, 0);
    std::vector<std::unique_ptr<HwThread>> pool;
    pool.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.push_back(machine.makeThread(static_cast<std::uint16_t>(t)));
        pool.back()->start(model.makeWorkerStream(t, &counters[t]), 0,
                           nullptr);
    }

    machine.eq().runUntil(ticksFromUs(warmupUs));
    std::uint64_t before = 0;
    for (std::uint64_t c : counters)
        before += c;
    machine.eq().runUntil(ticksFromUs(warmupUs + measureUs));
    std::uint64_t after = 0;
    for (std::uint64_t c : counters)
        after += c;
    return static_cast<double>(after - before) / (measureUs * 1e-6);
}

} // namespace dlrm
} // namespace cxlmemo
