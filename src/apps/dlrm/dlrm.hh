/**
 * @file
 * DLRM embedding-reduction model (paper Sec. 5.2, MERCI setup).
 *
 * Each inference gathers `pooling` embedding rows from each of
 * `tables` embedding tables (random row indices), accumulates them
 * (element-wise vector adds between the gathers), and finishes with
 * the dense MLP compute. Embedding reduction is the memory-bound
 * portion -- the paper cites 50-70% of inference latency -- and its
 * gather pattern is exactly the random small-block access of
 * Sec. 4.3.2, which is why DLRM throughput tracks a memory's random
 * bandwidth rather than its latency.
 */

#ifndef CXLMEMO_APPS_DLRM_DLRM_HH
#define CXLMEMO_APPS_DLRM_DLRM_HH

#include <cstdint>
#include <memory>

#include "cpu/core.hh"
#include "numa/numa.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace dlrm
{

/** Model geometry and compute costs. */
struct DlrmParams
{
    std::uint32_t tables = 8;
    std::uint64_t rowsPerTable = 2'000'000;

    /** Embedding row: 64 floats = 256 B (4 cachelines). */
    std::uint32_t rowBytes = 256;

    /** Rows gathered (then summed) per table per inference. */
    std::uint32_t pooling = 16;

    /** Per-cacheline accumulate + address-generation work; this is
     *  what bounds the gather loop's effective MLP on a real core. */
    Tick perLineCompute = ticksFromNs(18.0);

    /** Dense MLP (bottom+top) compute per inference. */
    Tick mlpCompute = ticksFromNs(5000.0);
};

/**
 * The embedding tables placed in simulated memory plus the per-thread
 * inference engine.
 */
class DlrmModel
{
  public:
    DlrmModel(Machine &machine, DlrmParams params,
              const MemPolicy &placement, std::uint64_t seed = 42);

    /** Endless inference stream for one worker thread. The counter
     *  increments once per completed inference. */
    std::unique_ptr<AccessStream>
    makeWorkerStream(std::uint32_t worker, std::uint64_t *counter);

    std::uint64_t footprintBytes() const { return buffer_.size(); }
    const DlrmParams &params() const { return params_; }

  private:
    DlrmParams params_;
    NumaBuffer buffer_;
    std::uint64_t seed_;
};

/**
 * Measured throughput of @p threads worker threads on @p machine with
 * the tables placed by @p placement.
 * @return inferences per second (aggregate).
 */
double runInferenceThroughput(Machine &machine, const DlrmParams &params,
                              const MemPolicy &placement,
                              std::uint32_t threads,
                              double warmupUs = 50.0,
                              double measureUs = 400.0,
                              std::uint64_t seed = 42);

} // namespace dlrm
} // namespace cxlmemo

#endif // CXLMEMO_APPS_DLRM_DLRM_HH
