/**
 * @file
 * YCSB workload generator (Cooper et al., SoCC'10), mirroring the
 * configurations the paper drives Redis with (Sec. 5.1):
 *
 *  A: 50% read / 50% update          (uniform in the paper's runs)
 *  B: 95% read /  5% update
 *  C: 100% read
 *  D: 95% read /  5% insert, reads drawn from the *latest* inserts
 *     (also run with zipfian and uniform request distributions)
 *  F: 50% read / 50% read-modify-write
 *
 *  E (scan) is omitted, as in the paper ("Workload E is omitted here
 *  as it is range query").
 */

#ifndef CXLMEMO_APPS_KVSTORE_YCSB_HH
#define CXLMEMO_APPS_KVSTORE_YCSB_HH

#include <cstdint>
#include <memory>
#include <string>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace cxlmemo
{
namespace kv
{

/** Operation mix element. */
enum class YcsbOp : std::uint8_t
{
    Read,
    Update,
    Insert,
    ReadModifyWrite,
};

/** Request key distribution. */
enum class KeyDist : std::uint8_t
{
    Uniform,
    Zipfian, //!< scrambled zipfian over the key space
    Latest,  //!< skewed toward the most recent inserts
};

const char *keyDistName(KeyDist d);

/** Proportions of one workload; must sum to 1. */
struct YcsbWorkload
{
    std::string name;
    double read = 1.0;
    double update = 0.0;
    double insert = 0.0;
    double rmw = 0.0;
    KeyDist dist = KeyDist::Uniform;

    static YcsbWorkload a(KeyDist d = KeyDist::Uniform);
    static YcsbWorkload b(KeyDist d = KeyDist::Uniform);
    static YcsbWorkload c(KeyDist d = KeyDist::Uniform);
    static YcsbWorkload d(KeyDist d = KeyDist::Latest);
    static YcsbWorkload f(KeyDist d = KeyDist::Uniform);
};

/** One generated request. */
struct YcsbRequest
{
    YcsbOp op = YcsbOp::Read;
    std::uint64_t key = 0;
};

/**
 * Draws requests for a keyspace of @p initialKeys records, growing on
 * inserts up to @p capacity (pre-sized by the store).
 */
class YcsbGenerator
{
  public:
    YcsbGenerator(YcsbWorkload workload, std::uint64_t initialKeys,
                  std::uint64_t capacity, std::uint64_t seed);

    YcsbRequest next();

    const YcsbWorkload &workload() const { return workload_; }
    std::uint64_t keyCount() const { return keyCount_; }

  private:
    std::uint64_t drawKey();

    YcsbWorkload workload_;
    std::uint64_t keyCount_;
    std::uint64_t capacity_;
    Rng rng_;
    std::unique_ptr<ScrambledZipfianGenerator> zipf_;
    std::unique_ptr<ZipfianGenerator> latest_;
};

} // namespace kv
} // namespace cxlmemo

#endif // CXLMEMO_APPS_KVSTORE_YCSB_HH
