#include "apps/kvstore/kvstore.hh"

#include <utility>

#include "cpu/streams.hh"
#include "sim/logging.hh"

namespace cxlmemo
{
namespace kv
{

KvStore::KvStore(Machine &machine, KvStoreParams params,
                 const MemPolicy &placement)
    : params_(std::move(params))
{
    const std::uint64_t cap = capacity();
    bucketBase_ = 0;
    // 8 B bucket pointer per key slot, padded to pages.
    entryBase_ = (cap * 8 + pageBytes - 1) / pageBytes * pageBytes;
    // 128 B per slot: dict entry + robj header in one line, the key
    // SDS object in the next (two chained pointer hops on lookup).
    valueBase_ = entryBase_
                 + (cap * 2 * cachelineBytes + pageBytes - 1) / pageBytes
                       * pageBytes;
    const std::uint64_t total =
        valueBase_ + cap * params_.valueBytes;
    buffer_ = machine.numa().alloc(total, placement);
}

std::uint64_t
KvStore::bucketOffset(std::uint64_t key) const
{
    // The dict hashes keys; splitMix models the bucket scatter.
    const std::uint64_t bucket = splitMix64(key) % capacity();
    return bucketBase_ + bucket * 8;
}

std::uint64_t
KvStore::entryOffset(std::uint64_t key) const
{
    return entryBase_ + key * 2 * cachelineBytes;
}

std::uint64_t
KvStore::valueOffset(std::uint64_t key) const
{
    return valueBase_ + key * params_.valueBytes;
}

void
KvStore::buildOps(const YcsbRequest &req, std::vector<MemOp> &out) const
{
    out.clear();
    const std::uint32_t field_bytes = params_.valueBytes / params_.fields;
    const std::uint32_t field_lines =
        (field_bytes + cachelineBytes - 1) / cachelineBytes;

    auto dep = [&](std::uint64_t off) {
        out.push_back({MemOp::Kind::DependentLoad, buffer_.translate(off),
                       0, 0});
    };
    auto load = [&](std::uint64_t off) {
        out.push_back({MemOp::Kind::Load, buffer_.translate(off), 0, 0});
    };
    auto store = [&](std::uint64_t off) {
        out.push_back({MemOp::Kind::Store, buffer_.translate(off), 0, 0});
    };

    const bool reads_value = req.op == YcsbOp::Read
                             || req.op == YcsbOp::ReadModifyWrite;
    const bool writes_value = req.op != YcsbOp::Read;

    // Lookup: bucket slot -> dict entry/robj -> key SDS compare
    // (a three-hop dependent pointer walk, as in Redis's dict).
    dep(bucketOffset(req.key));
    dep(entryOffset(req.key));
    dep(entryOffset(req.key) + cachelineBytes);

    // Field traversal: the value is a ziplist-like encoding. Each
    // field header is reached from the previous entry (dependent),
    // and reading a field decodes the header before copying payload
    // (another dependent access); remaining payload lines stream.
    const std::uint64_t value = valueOffset(req.key);
    for (std::uint32_t f = 0; f < params_.fields; ++f) {
        const std::uint64_t field = value
                                    + std::uint64_t(f) * field_bytes;
        dep(field); // field header: walk link
        if (reads_value) {
            dep(field + cachelineBytes); // decode -> payload copy
            for (std::uint32_t l = 2; l < field_lines; ++l)
                load(field + std::uint64_t(l) * cachelineBytes);
        }
        if (writes_value) {
            for (std::uint32_t l = 0; l < field_lines; ++l)
                store(field + std::uint64_t(l) * cachelineBytes);
        }
    }

    if (req.op == YcsbOp::Insert) {
        // Link the new entry into the dict.
        store(bucketOffset(req.key));
        store(entryOffset(req.key));
    }
}

KvServer::KvServer(Machine &machine, KvStore &store, std::uint16_t core)
    : machine_(machine),
      store_(store),
      thread_(machine.caches(), core, machine.coreParams())
{
}

void
KvServer::submit(const YcsbRequest &req)
{
    queue_.emplace_back(req, machine_.eq().curTick());
    if (!busy_)
        serveNext();
}

void
KvServer::serveNext()
{
    if (queue_.empty()) {
        busy_ = false;
        return;
    }
    busy_ = true;
    auto [req, arrival] = queue_.front();
    queue_.pop_front();

    const KvStoreParams &p = store_.params();
    store_.buildOps(req, scratch_);
    // Software preamble (syscall + parse + hash), the memory work,
    // then the serialization/reply half of the software path.
    std::vector<MemOp> ops;
    ops.reserve(scratch_.size() + 2);
    ops.push_back({MemOp::Kind::Compute, 0, 0,
                   p.softwareCost / 2 + p.hashCost});
    ops.insert(ops.end(), scratch_.begin(), scratch_.end());
    ops.push_back({MemOp::Kind::Compute, 0, 0, p.softwareCost / 2});

    const Tick start = machine_.eq().curTick();
    thread_.start(
        std::make_unique<ListStream>(std::move(ops)), start,
        [this, arrival, op = req.op](Tick, Tick end) {
            const std::uint64_t sojourn_ns = (end - arrival) / tickPerNs;
            if (op == YcsbOp::Read)
                readLat_.record(sojourn_ns);
            else
                updateLat_.record(sojourn_ns);
            ++completed_;
            // The thread's local clock may be ahead of global time
            // (trailing Compute work); the next request starts only
            // once this one's service truly ends.
            machine_.eq().schedule(end, [this] { serveNext(); });
        });
}

namespace
{

/** Fraction -> placement policy on the single-socket testbed. */
MemPolicy
placementFor(Machine &m, double cxlFraction)
{
    return MemPolicy::splitDramCxl(m.localNode(), m.cxlNode(),
                                   cxlFraction);
}

/** Pre-warm: the hot metadata a long-running Redis would have cached
 *  (bucket lines for a sample of keys). */
void
warmServer(Machine &m, KvStore &store, KvServer &server,
           YcsbGenerator &gen, int queries)
{
    for (int i = 0; i < queries; ++i)
        server.submit(gen.next());
    m.eq().run();
    server.resetLatencies();
    (void)store;
}

} // namespace

KvRunResult
runYcsb(const YcsbWorkload &workload, double cxlFraction, double qps,
        double durationSec, const KvStoreParams &params,
        std::uint64_t seed)
{
    Machine m(Testbed::SingleSocketCxl);
    KvStore store(m, params, placementFor(m, cxlFraction));
    KvServer server(m, store, 0);
    YcsbGenerator gen(workload, params.numKeys, store.capacity(),
                      seed);

    warmServer(m, store, server, gen, 2000);

    // Open-loop Poisson arrivals.
    Rng arrivals(seed ^ 0xa11ce5ULL);
    const Tick horizon =
        m.eq().curTick() + ticksFromSec(durationSec);
    const double mean_gap_ns = 1e9 / qps;
    struct Client
    {
        Machine *m;
        KvServer *server;
        YcsbGenerator *gen;
        Rng *rng;
        Tick horizon;
        double meanGapNs;

        void
        arrive()
        {
            server->submit(gen->next());
            const Tick next =
                m->eq().curTick()
                + ticksFromNs(rng->exponential(meanGapNs));
            if (next < horizon)
                m->eq().schedule(next, [this] { arrive(); });
        }
    };
    Client client{&m, &server, &gen, &arrivals, horizon, mean_gap_ns};
    const std::uint64_t completed_before = server.completed();
    const Tick t0 = m.eq().curTick();
    m.eq().schedule(t0 + ticksFromNs(arrivals.exponential(mean_gap_ns)),
                    [&client] { client.arrive(); });
    m.eq().run(); // drains: all arrivals served

    KvRunResult res;
    res.offeredQps = qps;
    const Tick elapsed = m.eq().curTick() - t0;
    res.achievedQps = (server.completed() - completed_before)
                      / secFromTicks(elapsed);
    // Client-side overhead (loopback RTT + YCSB measurement path) is
    // a flat addition on every sample. Kept small so it does not
    // compress the p99 gap the paper highlights (Fig. 6).
    constexpr double client_overhead_us = 12.0;
    if (server.readLatency().count() > 0)
        res.p99ReadUs = server.readLatency().p99() / 1e3
                        + client_overhead_us;
    if (server.updateLatency().count() > 0)
        res.p99UpdateUs = server.updateLatency().p99() / 1e3
                          + client_overhead_us;
    return res;
}

double
maxSustainableQps(const YcsbWorkload &workload, double cxlFraction,
                  double durationSec, const KvStoreParams &params,
                  std::uint64_t seed)
{
    Machine m(Testbed::SingleSocketCxl);
    KvStore store(m, params, placementFor(m, cxlFraction));
    KvServer server(m, store, 0);
    YcsbGenerator gen(workload, params.numKeys, store.capacity(),
                      seed);

    warmServer(m, store, server, gen, 2000);

    // Closed-loop saturation: keep the server's queue non-empty.
    const Tick t0 = m.eq().curTick();
    const Tick horizon = t0 + ticksFromSec(durationSec);
    struct Feeder
    {
        Machine *m;
        KvServer *server;
        YcsbGenerator *gen;
        Tick horizon;

        void
        feed()
        {
            while (server->queueDepth() < 16)
                server->submit(gen->next());
            const Tick next = m->eq().curTick() + ticksFromUs(20.0);
            if (next < horizon)
                m->eq().schedule(next, [this] { feed(); });
        }
    };
    Feeder feeder{&m, &server, &gen, horizon};
    const std::uint64_t before = server.completed();
    m.eq().schedule(t0, [&feeder] { feeder.feed(); });
    m.eq().runUntil(horizon);
    return (server.completed() - before) / durationSec;
}

} // namespace kv
} // namespace cxlmemo
