/**
 * @file
 * Redis-like in-memory key-value store model (paper Sec. 5.1).
 *
 * The store's data structures live in simulated memory placed by a
 * NUMA policy, and every query executes its real memory accesses
 * through the cache hierarchy on the server's core:
 *
 *   bucket array -> entry header -> field headers (a dependent walk,
 *   like Redis dict + ziplist traversal) -> field data lines.
 *
 * The single-threaded server makes query service latency-bound: the
 * dependent walk is what couples Redis throughput to memory latency
 * and produces the paper's "µs-level databases are the worst case for
 * CXL" finding.
 */

#ifndef CXLMEMO_APPS_KVSTORE_KVSTORE_HH
#define CXLMEMO_APPS_KVSTORE_KVSTORE_HH

#include <deque>
#include <memory>
#include <vector>

#include "apps/kvstore/ycsb.hh"
#include "cpu/core.hh"
#include "sim/histogram.hh"
#include "sim/stats.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace kv
{

/** Store geometry and software costs. */
struct KvStoreParams
{
    /** Records loaded before the run (YCSB recordcount). */
    std::uint64_t numKeys = 2'000'000;

    /** Extra key slots for workload D inserts. */
    std::uint64_t insertHeadroom = 200'000;

    /** YCSB default record: 10 fields x 100 B. */
    std::uint32_t valueBytes = 1024;
    std::uint32_t fields = 10;

    /**
     * Memory-independent software path per query: kernel/epoll,
     * RESP parsing, response serialization, and the YCSB client's
     * share. Calibrated so a DRAM-resident store saturates around
     * the paper's ~80 kQPS.
     */
    Tick softwareCost = ticksFromNs(10000.0);

    /** Hash + dispatch compute before memory is touched. */
    Tick hashCost = ticksFromNs(300.0);
};

/**
 * The store: owns the simulated memory layout and translates queries
 * into memory-operation lists.
 */
class KvStore
{
  public:
    KvStore(Machine &machine, KvStoreParams params,
            const MemPolicy &placement);

    /** Memory ops performed by one request (excludes Compute ops'
     *  software cost bookends, which the server adds). */
    void buildOps(const YcsbRequest &req, std::vector<MemOp> &out) const;

    const KvStoreParams &params() const { return params_; }
    std::uint64_t capacity() const
    {
        return params_.numKeys + params_.insertHeadroom;
    }

    /** Total resident bytes (for the memory-breakdown reports). */
    std::uint64_t footprintBytes() const { return buffer_.size(); }

    const NumaBuffer &buffer() const { return buffer_; }

  private:
    std::uint64_t bucketOffset(std::uint64_t key) const;
    std::uint64_t entryOffset(std::uint64_t key) const;
    std::uint64_t valueOffset(std::uint64_t key) const;

    KvStoreParams params_;
    NumaBuffer buffer_;
    std::uint64_t bucketBase_ = 0;
    std::uint64_t entryBase_ = 0;
    std::uint64_t valueBase_ = 0;
};

/**
 * Single-threaded server: queries queue at the event loop and are
 * served in order on one core, exactly like Redis.
 */
class KvServer
{
  public:
    KvServer(Machine &machine, KvStore &store, std::uint16_t core);

    /** Enqueue a request arriving now. */
    void submit(const YcsbRequest &req);

    std::uint64_t completed() const { return completed_; }
    std::size_t queueDepth() const { return queue_.size(); }

    /** Per-class service+sojourn latency histogram (ns). */
    const LatencyHistogram &readLatency() const { return readLat_; }
    const LatencyHistogram &updateLatency() const { return updateLat_; }

    /** Drop recorded latencies (after cache warm-up). */
    void
    resetLatencies()
    {
        readLat_.reset();
        updateLat_.reset();
    }

  private:
    void serveNext();

    Machine &machine_;
    KvStore &store_;
    HwThread thread_;
    std::deque<std::pair<YcsbRequest, Tick>> queue_;
    bool busy_ = false;
    std::uint64_t completed_ = 0;
    LatencyHistogram readLat_;
    LatencyHistogram updateLat_;
    std::vector<MemOp> scratch_;
};

/** One point of the Fig. 6 / Fig. 7 measurements. */
struct KvRunResult
{
    double offeredQps = 0.0;
    double achievedQps = 0.0;
    double p99ReadUs = 0.0;
    double p99UpdateUs = 0.0;
};

/**
 * Open-loop YCSB client: Poisson arrivals at @p qps for
 * @p durationSec simulated seconds.
 *
 * @param cxlFraction fraction of the store's pages on CXL memory
 *        (0 = DRAM only, 1 = CXL only; weighted interleave between).
 */
KvRunResult runYcsb(const YcsbWorkload &workload, double cxlFraction,
                    double qps, double durationSec = 0.6,
                    const KvStoreParams &params = {},
                    std::uint64_t seed = 42);

/**
 * Maximum sustainable throughput: offer far beyond capacity and
 * measure the completion rate (Fig. 7).
 */
double maxSustainableQps(const YcsbWorkload &workload, double cxlFraction,
                         double durationSec = 0.4,
                         const KvStoreParams &params = {},
                         std::uint64_t seed = 42);

} // namespace kv
} // namespace cxlmemo

#endif // CXLMEMO_APPS_KVSTORE_KVSTORE_HH
