#include "apps/kvstore/ycsb.hh"

namespace cxlmemo
{
namespace kv
{

const char *
keyDistName(KeyDist d)
{
    switch (d) {
      case KeyDist::Uniform:
        return "uni";
      case KeyDist::Zipfian:
        return "zipf";
      case KeyDist::Latest:
        return "lat";
    }
    return "?";
}

YcsbWorkload
YcsbWorkload::a(KeyDist d)
{
    return {"A", 0.5, 0.5, 0.0, 0.0, d};
}

YcsbWorkload
YcsbWorkload::b(KeyDist d)
{
    return {"B", 0.95, 0.05, 0.0, 0.0, d};
}

YcsbWorkload
YcsbWorkload::c(KeyDist d)
{
    return {"C", 1.0, 0.0, 0.0, 0.0, d};
}

YcsbWorkload
YcsbWorkload::d(KeyDist dist)
{
    return {"D", 0.95, 0.0, 0.05, 0.0, dist};
}

YcsbWorkload
YcsbWorkload::f(KeyDist d)
{
    return {"F", 0.5, 0.0, 0.0, 0.5, d};
}

YcsbGenerator::YcsbGenerator(YcsbWorkload workload,
                             std::uint64_t initialKeys,
                             std::uint64_t capacity, std::uint64_t seed)
    : workload_(std::move(workload)),
      keyCount_(initialKeys),
      capacity_(capacity),
      rng_(seed)
{
    CXLMEMO_ASSERT(initialKeys > 0, "empty initial keyspace");
    CXLMEMO_ASSERT(capacity >= initialKeys, "capacity below keyspace");
    const double total = workload_.read + workload_.update
                         + workload_.insert + workload_.rmw;
    CXLMEMO_ASSERT(std::abs(total - 1.0) < 1e-9,
                   "workload proportions must sum to 1");
    if (workload_.dist == KeyDist::Zipfian)
        zipf_ = std::make_unique<ScrambledZipfianGenerator>(initialKeys);
    if (workload_.dist == KeyDist::Latest)
        latest_ = std::make_unique<ZipfianGenerator>(initialKeys);
}

std::uint64_t
YcsbGenerator::drawKey()
{
    switch (workload_.dist) {
      case KeyDist::Uniform:
        return rng_.below(keyCount_);
      case KeyDist::Zipfian:
        return zipf_->next(rng_) % keyCount_;
      case KeyDist::Latest: {
        // Rank 0 = the newest key; popularity decays with age.
        const std::uint64_t age = latest_->next(rng_) % keyCount_;
        return keyCount_ - 1 - age;
      }
    }
    CXLMEMO_PANIC("bad key distribution");
}

YcsbRequest
YcsbGenerator::next()
{
    const double p = rng_.uniform();
    YcsbRequest req;
    if (p < workload_.read) {
        req.op = YcsbOp::Read;
        req.key = drawKey();
    } else if (p < workload_.read + workload_.update) {
        req.op = YcsbOp::Update;
        req.key = drawKey();
    } else if (p < workload_.read + workload_.update + workload_.insert) {
        req.op = YcsbOp::Insert;
        if (keyCount_ < capacity_)
            ++keyCount_;
        req.key = keyCount_ - 1;
    } else {
        req.op = YcsbOp::ReadModifyWrite;
        req.key = drawKey();
    }
    return req;
}

} // namespace kv
} // namespace cxlmemo
