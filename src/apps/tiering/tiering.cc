#include "apps/tiering/tiering.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cxlmemo
{
namespace tiering
{

TieredBuffer::TieredBuffer(Machine &machine, std::uint64_t bytes,
                           TieringParams params)
    : machine_(machine), params_(params), bytes_(bytes)
{
    CXLMEMO_ASSERT(bytes > 0, "empty tiered buffer");
    dramFrames_ = machine.numa().alloc(
        bytes, MemPolicy::membind(machine.localNode()));
    cxlFrames_ = machine.numa().alloc(
        bytes, MemPolicy::membind(machine.cxlNode()));
    const std::uint64_t pages = (bytes + pageBytes - 1) / pageBytes;
    CXLMEMO_ASSERT(params_.dramBudgetPages <= pages,
                   "budget larger than the buffer");
    pageOnDram_.assign(pages, false);
    heat_.assign(pages, 0);
    // First-touch style start: fill the DRAM budget with the buffer's
    // head, the common initial condition of a tiering system.
    for (std::uint64_t p = 0; p < params_.dramBudgetPages; ++p)
        pageOnDram_[p] = true;
    stats_.dramResidentPages = params_.dramBudgetPages;
}

void
TieredBuffer::startDaemon()
{
    if (daemonRunning_)
        return;
    daemonRunning_ = true;
    machine_.eq().scheduleIn(params_.scanInterval, [this] {
        daemonRunning_ = false;
        scan();
        startDaemon();
    });
}

void
TieredBuffer::migrate(std::uint64_t page, bool toDram, Tick &cpuTime)
{
    if (pageOnDram_[page] == toDram)
        return;
    // Move the page contents with DSA (guideline: bulk movement off
    // the cores); the daemon only pays submission cost.
    DsaDescriptor d;
    if (toDram) {
        d.src = &cxlFrames_;
        d.dst = &dramFrames_;
        ++stats_.promotions;
        ++stats_.dramResidentPages;
    } else {
        d.src = &dramFrames_;
        d.dst = &cxlFrames_;
        ++stats_.demotions;
        CXLMEMO_ASSERT(stats_.dramResidentPages > 0,
                       "demotion underflow");
        --stats_.dramResidentPages;
    }
    d.srcOffset = page * pageBytes;
    d.dstOffset = page * pageBytes;
    d.bytes = std::min<std::uint64_t>(pageBytes,
                                      bytes_ - page * pageBytes);
    machine_.dsa().submit(d, nullptr);
    cpuTime += machine_.dsa().params().submitCost;
    // Mapping flips once the copy lands; at daemon timescales the
    // copy is short, so flip immediately (documented simplification).
    pageOnDram_[page] = toDram;
}

std::uint64_t
TieredBuffer::evacuateCxl(Tick &cpuTime)
{
    std::uint64_t moved = 0;
    for (std::uint64_t p = 0; p < numPages(); ++p) {
        if (pageOnDram_[p])
            continue;
        migrate(p, /*toDram=*/true, cpuTime);
        moved += std::min<std::uint64_t>(pageBytes,
                                         bytes_ - p * pageBytes);
    }
    return moved;
}

std::uint64_t
TieredBuffer::promoteIfResident(Addr paddr, Tick &cpuTime)
{
    const std::uint64_t p = cxlFrames_.pageOf(paddr);
    if (p == NumaBuffer::npos || pageOnDram_[p])
        return 0;
    migrate(p, /*toDram=*/true, cpuTime);
    return std::min<std::uint64_t>(pageBytes, bytes_ - p * pageBytes);
}

void
TieredBuffer::scan()
{
    ++stats_.scans;
    Tick cpu = static_cast<Tick>(numPages()) * params_.scanCostPerPage;

    // Candidates: hot pages currently on CXL (promotion), coldest
    // pages currently on DRAM (demotion victims).
    std::vector<std::uint64_t> hot_cxl;
    std::vector<std::uint64_t> dram_pages;
    for (std::uint64_t p = 0; p < numPages(); ++p) {
        if (!pageOnDram_[p] && heat_[p] >= params_.hotThreshold)
            hot_cxl.push_back(p);
        else if (pageOnDram_[p])
            dram_pages.push_back(p);
    }
    // Hottest first / coldest first.
    std::sort(hot_cxl.begin(), hot_cxl.end(),
              [this](std::uint64_t a, std::uint64_t b) {
                  return heat_[a] > heat_[b];
              });
    std::sort(dram_pages.begin(), dram_pages.end(),
              [this](std::uint64_t a, std::uint64_t b) {
                  return heat_[a] < heat_[b];
              });

    std::uint32_t moved = 0;
    std::size_t victim = 0;
    for (std::uint64_t page : hot_cxl) {
        if (moved >= params_.migrationBurst)
            break;
        if (stats_.dramResidentPages >= params_.dramBudgetPages) {
            // Demote the coldest resident page -- but only if the
            // incoming page is hotter (hysteresis against thrash).
            if (victim >= dram_pages.size())
                break;
            const std::uint64_t v = dram_pages[victim];
            if (heat_[v] >= heat_[page])
                break;
            ++victim;
            migrate(v, /*toDram=*/false, cpu);
            ++moved;
        }
        if (stats_.dramResidentPages < params_.dramBudgetPages) {
            migrate(page, /*toDram=*/true, cpu);
            ++moved;
        }
    }

    // Exponential decay keeps the heat recent.
    for (auto &h : heat_)
        h = static_cast<std::uint16_t>(h >> params_.decayShift);
    (void)cpu; // daemon runs on a housekeeping core; cost tracked
               // implicitly through DSA occupancy
}

} // namespace tiering
} // namespace cxlmemo
