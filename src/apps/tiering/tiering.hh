/**
 * @file
 * Page-tiering manager: a TPP-flavored hot/cold page placement daemon
 * over DRAM + CXL (the deployment model the paper's Sec. 5 frames:
 * "the performance of applications using this heterogeneous memory
 * scheme should serve as a baseline for most memory tiering policies
 * ... the proposed optimization should, at the very least, perform
 * equally well when compared against a weighted round-robin
 * allocation strategy").
 *
 * The manager owns a remappable buffer whose pages live on either the
 * DRAM node or the CXL node. Workload accesses bump per-page counters;
 * a periodic daemon promotes hot CXL pages into a bounded DRAM budget
 * (demoting the coldest resident pages to make room), moving page
 * contents with the DSA engine per the paper's guideline.
 */

#ifndef CXLMEMO_APPS_TIERING_TIERING_HH
#define CXLMEMO_APPS_TIERING_TIERING_HH

#include <cstdint>
#include <vector>

#include "system/machine.hh"

namespace cxlmemo
{
namespace tiering
{

/** Daemon knobs. */
struct TieringParams
{
    /** Pages the DRAM tier may hold (the capacity constraint that
     *  motivates CXL in the first place). */
    std::uint64_t dramBudgetPages = 0;

    /** Daemon scan interval. */
    Tick scanInterval = ticksFromUs(500.0);

    /** Accesses within one interval that make a page "hot". */
    std::uint32_t hotThreshold = 4;

    /** Counter decay per scan (bit shift), so heat is recent. */
    std::uint32_t decayShift = 1;

    /** Max migrations per scan (bounds DSA bandwidth use). */
    std::uint32_t migrationBurst = 256;

    /** Daemon CPU cost per scanned page. */
    Tick scanCostPerPage = ticksFromNs(3.0);
};

/** Migration / residency statistics. */
struct TieringStats
{
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    std::uint64_t scans = 0;
    std::uint64_t dramResidentPages = 0;
};

/**
 * A buffer whose page placement changes at runtime.
 *
 * Both tiers pre-reserve frames for every page (a simulation shortcut:
 * real kernels free the source frame after the copy; capacity pressure
 * is enforced by the daemon's dramBudgetPages instead, which is the
 * policy-relevant constraint).
 */
class TieredBuffer
{
  public:
    TieredBuffer(Machine &machine, std::uint64_t bytes,
                 TieringParams params);

    std::uint64_t size() const { return bytes_; }
    std::uint64_t numPages() const { return pageOnDram_.size(); }

    /**
     * Translate an access: returns the physical address under the
     * *current* placement and records heat for the daemon.
     */
    Addr
    touch(std::uint64_t offset)
    {
        const std::uint64_t page = offset / pageBytes;
        if (heat_[page] != 0xffff)
            ++heat_[page];
        const NumaBuffer &home =
            pageOnDram_[page] ? dramFrames_ : cxlFrames_;
        return home.translate(offset);
    }

    /** Read-only translation (no heat). */
    Addr
    peek(std::uint64_t offset) const
    {
        const std::uint64_t page = offset / pageBytes;
        const NumaBuffer &home =
            pageOnDram_[page] ? dramFrames_ : cxlFrames_;
        return home.translate(offset);
    }

    /** Start the background daemon (idempotent). */
    void startDaemon();

    /**
     * Failure response to a device hot-remove: promote every
     * CXL-resident page to DRAM, overriding the DRAM budget --
     * survival beats placement policy.
     * @return bytes migrated off the dying device.
     */
    std::uint64_t evacuateCxl(Tick &cpuTime);

    /**
     * Failure response to a page offline: if @p paddr falls inside a
     * CXL-resident page of this buffer, migrate that one page to DRAM.
     * @return bytes migrated (0 when the address is not ours or the
     *         page already lives on DRAM).
     */
    std::uint64_t promoteIfResident(Addr paddr, Tick &cpuTime);

    const TieringStats &stats() const { return stats_; }
    const TieringParams &params() const { return params_; }
    double
    dramResidency() const
    {
        return static_cast<double>(stats_.dramResidentPages)
               / static_cast<double>(numPages());
    }

  private:
    void scan();
    void migrate(std::uint64_t page, bool toDram, Tick &cpuTime);

    Machine &machine_;
    TieringParams params_;
    std::uint64_t bytes_;
    NumaBuffer dramFrames_;
    NumaBuffer cxlFrames_;
    std::vector<bool> pageOnDram_;
    std::vector<std::uint16_t> heat_;
    TieringStats stats_;
    bool daemonRunning_ = false;
};

} // namespace tiering
} // namespace cxlmemo

#endif // CXLMEMO_APPS_TIERING_TIERING_HH
