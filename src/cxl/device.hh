/**
 * @file
 * CXL Type-3 memory expander model: the Intel Agilex-I development
 * kit of the paper's testbed (hardened CXL 1.1 IP, one DDR4-2666
 * DIMM behind it).
 *
 * Transaction flow (paper Fig. 1):
 *
 *   host read:   M2S Req  --link-->  controller  -->  DDR4 channel
 *                host  <--link--  S2M DRS (data)
 *   host write:  M2S RwD (data) --link--> controller buffer
 *                host  <--link--  S2M NDR (completion on acceptance)
 *                buffer --drains--> DDR4 channel
 *
 * The controller tracks reads and buffered writes in *finite* queues.
 * When the write buffer is full, incoming writes wait at the link
 * egress -- this is the buffer-overflow behaviour the paper blames
 * for the non-temporal-store throughput collapse beyond a few
 * threads (Sec. 4.3.2).
 */

#ifndef CXLMEMO_CXL_DEVICE_HH
#define CXLMEMO_CXL_DEVICE_HH

#include <cstdlib>
#include <deque>
#include <vector>
#include <memory>
#include <string>

#include "cxl/link.hh"
#include "mem/dram.hh"
#include "mem/request.hh"
#include "sim/event_queue.hh"

namespace cxlmemo
{

/** Configuration of the CXL memory device. */
struct CxlDeviceParams
{
    std::string name = "cxl0";

    CxlLinkParams link;

    /** Controller pipeline latency, ingress direction (host->DRAM). */
    Tick controllerIngress = ticksFromNs(40.0);

    /** Controller pipeline latency, egress direction (DRAM->host). */
    Tick controllerEgress = ticksFromNs(40.0);

    /** Read tracker entries (caps device-side read MLP). */
    std::uint32_t readQueueEntries = 48;

    /** Write buffer entries (lines); writes are acknowledged on
     *  acceptance but occupy an entry until drained to DRAM. */
    std::uint32_t writeBufferEntries = 24;

    /** Host-side posted-write slots for NT stores: how many NT writes
     *  may be in flight (posted but not yet accepted by the device
     *  controller) before WC-buffer release backpressures. */
    std::uint32_t hostPostedEntries = 64;

    /** Memory channels behind the controller (the Agilex kit has a
     *  single DDR4-2666 DIMM; the paper anticipates future devices
     *  with more channels and DRAM-class bandwidth). */
    std::uint32_t backendChannels = 1;
    DramChannelParams backend;

    /** Throws std::invalid_argument on out-of-range values (link and
     *  backend params included). */
    void validate() const;
};

/** Occupancy / stall statistics of the CXL controller. */
struct CxlControllerStats
{
    std::uint64_t readStallTicks = 0;  //!< reads held waiting for a tracker
    std::uint64_t writeStallTicks = 0; //!< writes held waiting for buffer
    std::uint64_t readsStalled = 0;
    std::uint64_t writesStalled = 0;
    std::uint32_t writeBufferHighWater = 0;

    /** Clear all counters (between sweep points reusing a device). */
    void reset() { *this = CxlControllerStats{}; }
};

/**
 * Fair-share ingress queue: the FPGA controller arbitrates waiting
 * requests round-robin across requesting agents. This is what
 * interleaves many threads' streams at line granularity and destroys
 * the row locality the DDR4 back-end depends on -- the paper's
 * "requests with fewer patterns as the thread count increased"
 * (Sec. 4.3.1).
 */
class FairWaitQueue
{
  public:
    void
    push(MemRequest req, Tick when)
    {
        const std::size_t s = req.source;
        if (s >= bySource_.size())
            bySource_.resize(s + 1);
        bySource_[s].emplace_back(std::move(req), when);
        ++count_;
    }

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    /** Pop the next request, rotating across non-empty sources. */
    std::pair<MemRequest, Tick>
    pop()
    {
        for (std::size_t i = 0; i < bySource_.size(); ++i) {
            cursor_ = (cursor_ + 1) % bySource_.size();
            if (!bySource_[cursor_].empty()) {
                auto out = std::move(bySource_[cursor_].front());
                bySource_[cursor_].pop_front();
                --count_;
                return out;
            }
        }
        // Callers check empty() first.
        std::abort();
    }

  private:
    std::vector<std::deque<std::pair<MemRequest, Tick>>> bySource_;
    std::size_t cursor_ = 0;
    std::size_t count_ = 0;
};

/**
 * The CXL Type-3 device as seen from the host home agent. Addresses
 * are device-local (host physical to HDM decoding happens in the NUMA
 * layer).
 */
class CxlMemDevice : public MemoryDevice
{
  public:
    /** @param faults optional fault injector (nullptr = healthy). */
    CxlMemDevice(EventQueue &eq, CxlDeviceParams params,
                 FaultInjector *faults = nullptr);

    void access(MemRequest req) override;
    const std::string &name() const override { return params_.name; }

    const CxlDeviceParams &params() const { return params_; }
    DeviceStats backendStats() const { return backend_->stats(); }
    const CxlControllerStats &controllerStats() const { return ctrlStats_; }
    std::uint64_t bytesDown() const { return down_.bytesMoved(); }
    std::uint64_t bytesUp() const { return up_.bytesMoved(); }

    /** RAS degradation state of each link direction (0 = full rate). */
    std::uint32_t downDegradeLevel() const { return down_.degradeLevel(); }
    std::uint32_t upDegradeLevel() const { return up_.degradeLevel(); }

    /** Occupancy gauges (monitoring / tests). */
    std::uint32_t readsInFlight() const { return readsInFlight_; }
    std::uint32_t writesBuffered() const { return writesBuffered_; }
    std::size_t readWaitDepth() const { return readWaitQueue_.size(); }
    std::size_t writeWaitDepth() const { return writeWaitQueue_.size(); }

    void resetStats();

  private:
    /** A read request has arrived at the controller ingress. */
    void readArrived(MemRequest req);
    /** A write (temporal or NT) has arrived at the controller ingress. */
    void writeArrived(MemRequest req);

    void admitRead(MemRequest req);
    void admitWrite(MemRequest req);

    /** Host-side posted gate for NT stores. */
    void admitPosted(MemRequest req);
    /** Transmit a request over the M2S link toward the controller. */
    void dispatch(MemRequest req);
    /** One host issue attempt: may time out and reissue with
     *  exponential backoff (bounded by maxHostRetries). */
    void dispatchAttempt(MemRequest req, std::uint32_t attempt);

    EventQueue &eq_;
    CxlDeviceParams params_;
    FaultInjector *faults_ = nullptr;
    CxlLinkDirection down_; //!< M2S: requests and write data
    CxlLinkDirection up_;   //!< S2M: read data and completions
    std::unique_ptr<InterleavedMemory> backend_;

    std::uint32_t readsInFlight_ = 0;
    std::uint32_t writesBuffered_ = 0;
    std::uint32_t ntPosted_ = 0;
    FairWaitQueue readWaitQueue_;
    FairWaitQueue writeWaitQueue_;
    std::deque<MemRequest> postedGate_;

    CxlControllerStats ctrlStats_;
};

} // namespace cxlmemo

#endif // CXLMEMO_CXL_DEVICE_HH
