/**
 * @file
 * CXL Type-3 memory expander model: the Intel Agilex-I development
 * kit of the paper's testbed (hardened CXL 1.1 IP, one DDR4-2666
 * DIMM behind it).
 *
 * Transaction flow (paper Fig. 1):
 *
 *   host read:   M2S Req  --link-->  controller  -->  DDR4 channel
 *                host  <--link--  S2M DRS (data)
 *   host write:  M2S RwD (data) --link--> controller buffer
 *                host  <--link--  S2M NDR (completion on acceptance)
 *                buffer --drains--> DDR4 channel
 *
 * The controller tracks reads and buffered writes in *finite* queues.
 * When the write buffer is full, incoming writes wait at the link
 * egress -- this is the buffer-overflow behaviour the paper blames
 * for the non-temporal-store throughput collapse beyond a few
 * threads (Sec. 4.3.2).
 */

#ifndef CXLMEMO_CXL_DEVICE_HH
#define CXLMEMO_CXL_DEVICE_HH

#include <cstdlib>
#include <deque>
#include <functional>
#include <optional>
#include <vector>
#include <memory>
#include <string>

#include "cxl/link.hh"
#include "mem/dram.hh"
#include "mem/request.hh"
#include "sim/chaos.hh"
#include "sim/event_queue.hh"
#include "sim/histogram.hh"
#include "sim/qos.hh"
#include "sim/watchdog.hh"

namespace cxlmemo
{

/** Configuration of the CXL memory device. */
struct CxlDeviceParams
{
    std::string name = "cxl0";

    CxlLinkParams link;

    /** Controller pipeline latency, ingress direction (host->DRAM). */
    Tick controllerIngress = ticksFromNs(40.0);

    /** Controller pipeline latency, egress direction (DRAM->host). */
    Tick controllerEgress = ticksFromNs(40.0);

    /** Read tracker entries (caps device-side read MLP). */
    std::uint32_t readQueueEntries = 48;

    /** Write buffer entries (lines); writes are acknowledged on
     *  acceptance but occupy an entry until drained to DRAM. */
    std::uint32_t writeBufferEntries = 24;

    /** Host-side posted-write slots for NT stores: how many NT writes
     *  may be in flight (posted but not yet accepted by the device
     *  controller) before WC-buffer release backpressures. */
    std::uint32_t hostPostedEntries = 64;

    /** Memory channels behind the controller (the Agilex kit has a
     *  single DDR4-2666 DIMM; the paper anticipates future devices
     *  with more channels and DRAM-class bandwidth). */
    std::uint32_t backendChannels = 1;
    DramChannelParams backend;

    /** Throws std::invalid_argument on out-of-range values (link and
     *  backend params included). */
    void validate() const;
};

/** Occupancy / stall statistics of the CXL controller. */
struct CxlControllerStats
{
    std::uint64_t readStallTicks = 0;  //!< reads held waiting for a tracker
    std::uint64_t writeStallTicks = 0; //!< writes held waiting for buffer
    std::uint64_t readsStalled = 0;
    std::uint64_t writesStalled = 0;
    std::uint32_t writeBufferHighWater = 0;

    /** Clear all counters (between sweep points reusing a device). */
    void reset() { *this = CxlControllerStats{}; }
};

/**
 * Fair-share ingress queue: the FPGA controller arbitrates waiting
 * requests round-robin across requesting agents. This is what
 * interleaves many threads' streams at line granularity and destroys
 * the row locality the DDR4 back-end depends on -- the paper's
 * "requests with fewer patterns as the thread count increased"
 * (Sec. 4.3.1).
 */
class FairWaitQueue
{
  public:
    void
    push(MemRequest req, Tick when)
    {
        const std::size_t s = req.source;
        if (s >= bySource_.size())
            bySource_.resize(s + 1);
        bySource_[s].emplace_back(std::move(req), when);
        ++count_;
    }

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    /** Arrival tick of the oldest queued request (diagnosis). Each
     *  per-source deque is FIFO, so the oldest entry is some front. */
    std::optional<Tick>
    oldestSince() const
    {
        std::optional<Tick> oldest;
        for (const auto &q : bySource_) {
            if (!q.empty()
                && (!oldest || q.front().second < *oldest)) {
                oldest = q.front().second;
            }
        }
        return oldest;
    }

    /** Pop the next request, rotating across non-empty sources. */
    std::pair<MemRequest, Tick>
    pop()
    {
        for (std::size_t i = 0; i < bySource_.size(); ++i) {
            cursor_ = (cursor_ + 1) % bySource_.size();
            if (!bySource_[cursor_].empty()) {
                auto out = std::move(bySource_[cursor_].front());
                bySource_[cursor_].pop_front();
                --count_;
                return out;
            }
        }
        // Callers check empty() first.
        std::abort();
    }

  private:
    std::vector<std::deque<std::pair<MemRequest, Tick>>> bySource_;
    std::size_t cursor_ = 0;
    std::size_t count_ = 0;
};

/**
 * The CXL Type-3 device as seen from the host home agent. Addresses
 * are device-local (host physical to HDM decoding happens in the NUMA
 * layer).
 */
class CxlMemDevice : public MemoryDevice, public ProgressSource
{
  public:
    /** @param faults optional fault injector (nullptr = healthy).
     *  @param qos optional overload-control model: credit pools on
     *         the M2S direction and/or DevLoad telemetry. The
     *         default (disabled) spec changes nothing. */
    CxlMemDevice(EventQueue &eq, CxlDeviceParams params,
                 FaultInjector *faults = nullptr,
                 const QosSpec &qos = {});

    void access(MemRequest req) override;
    const std::string &name() const override { return params_.name; }

    const CxlDeviceParams &params() const { return params_; }
    DeviceStats backendStats() const { return backend_->stats(); }
    const CxlControllerStats &controllerStats() const { return ctrlStats_; }
    std::uint64_t bytesDown() const { return down_.bytesMoved(); }
    std::uint64_t bytesUp() const { return up_.bytesMoved(); }

    /** RAS degradation state of each link direction (0 = full rate). */
    std::uint32_t downDegradeLevel() const { return down_.degradeLevel(); }
    std::uint32_t upDegradeLevel() const { return up_.degradeLevel(); }

    /** Occupancy gauges (monitoring / tests). */
    std::uint32_t readsInFlight() const { return readsInFlight_; }
    std::uint32_t writesBuffered() const { return writesBuffered_; }
    std::size_t readWaitDepth() const { return readWaitQueue_.size(); }
    std::size_t writeWaitDepth() const { return writeWaitQueue_.size(); }

    /* ---------------------- overload control --------------------- */

    /** The host bridge reacting to this device's DevLoad telemetry
     *  (piggybacked on S2M responses); nullptr = no reaction. */
    void setHostThrottle(HostThrottle *throttle) { throttle_ = throttle; }

    /** Divert DevLoad observations instead of driving a HostThrottle
     *  directly: the parallel engine installs a sink that posts the
     *  (load, level, tick) sample into the host domain, because the
     *  throttle lives on the other side of the domain boundary. A set
     *  sink takes precedence over setHostThrottle. */
    void setLoadSink(std::function<void(double, DevLoad, Tick)> sink)
    {
        loadSink_ = std::move(sink);
    }

    /** Keep retired/outstanding counters for the watchdog even when
     *  QoS is disabled (adds response-delivery events; only called
     *  when a watchdog actually supervises this device). */
    void enableProgressTracking() { instrumented_ = true; }

    /** Record end-to-end access latency (ticks) into a log-bucket
     *  histogram; off by default (no wrapper on the hot path). */
    void
    enableLatencyHistogram()
    {
        if (!latHist_)
            latHist_ = std::make_unique<LatencyHistogram>();
    }

    /** The access-latency histogram (nullptr unless enabled). */
    const LatencyHistogram *latencyHistogram() const
    {
        return latHist_.get();
    }

    /** Attach the latency-accounting board: wires the credit gate,
     *  controller ingress/egress, both link directions and the
     *  back-end channels to their stations (sim/attribution.hh).
     *  Never called = all accounting off (the default). */
    void setAttribution(AttributionBoard *board);

    /** M2S credit pools (nullptr when credits are disabled). */
    const LinkCredits *credits() const { return down_.credits(); }

    /** The credit-leak invariant across both message classes. */
    bool
    creditLedgerOk() const
    {
        const LinkCredits *lc = down_.credits();
        return lc == nullptr || lc->ledgerOk();
    }

    /** Current EWMA DevLoad signal (0 when telemetry is disabled). */
    double devLoad() const { return meter_ ? meter_->load() : 0.0; }

    /** Requests stalled waiting for an M2S credit right now. */
    std::size_t creditWaitDepth() const
    {
        return rdCreditWait_.size() + wrCreditWait_.size();
    }

    /** Credit-stall time attributed to requests of @p source (the
     *  issuing core), for per-thread stats reporting. */
    std::uint64_t
    creditStallTicks(std::uint16_t source) const
    {
        return source < sourceCreditStall_.size()
                   ? sourceCreditStall_[source]
                   : 0;
    }

    /** Fill the credit/telemetry half of machine-wide QoS stats. */
    void fillQosStats(QosStats &qs) const;

    /* ------------------ failure lifecycle (chaos) ----------------- */

    /**
     * Arm the failure-lifecycle layer: schedules the scripted link
     * outage and hot-remove/re-add events on this device's own event
     * queue (so they stay domain-local in the parallel engine),
     * installs the CRC-ceiling outage trigger on both link
     * directions, and enables progress tracking so every response has
     * a delivery event to carry containment accounting. Never called
     * (the default) = zero chaos state, bit-identical behaviour.
     */
    void armChaos(const ChaosSpec &spec);

    /** Host-side announcement sink for chaos transitions (watchdog /
     *  flight recorder / attribution); called with the transition
     *  tick and a one-line description. In the parallel engine the
     *  Machine installs a sink that cross-posts into the host domain. */
    void
    setChaosAnnounce(std::function<void(Tick, const std::string &)> sink)
    {
        chaosAnnounce_ = std::move(sink);
    }

    /** False while hot-removed. True when chaos is unarmed. */
    bool present() const { return !chaos_ || chaos_->present; }

    /** Device-side chaos accounting (link FSM + removal FSM);
     *  all-zero when chaos is unarmed. */
    ChaosStats chaosStats() const;

    /** Bounded transition log ("t=... ns: link DOWN ..."), for the
     *  drill report and the watchdog post-mortem. */
    const std::vector<std::string> &
    chaosLog() const
    {
        static const std::vector<std::string> empty;
        return chaos_ ? chaos_->log : empty;
    }

    /* ----------------- ProgressSource (watchdog) ------------------ */

    std::string progressName() const override { return params_.name; }
    std::uint64_t progressRetired() const override { return retired_; }
    std::uint64_t progressOutstanding() const override
    {
        return hostInFlight_ + writesBuffered_;
    }
    std::string progressDiagnosis() const override;
    std::string progressInvariant() const override;

    void resetStats();

  private:
    /** A read request has arrived at the controller ingress. */
    void readArrived(MemRequest req);
    /** A write (temporal or NT) has arrived at the controller ingress. */
    void writeArrived(MemRequest req);

    void admitRead(MemRequest req);
    void admitWrite(MemRequest req);

    /** Host-side posted gate for NT stores. */
    void admitPosted(MemRequest req);
    /** Transmit a request over the M2S link toward the controller;
     *  stalls locally when the message class is out of credits. */
    void dispatch(MemRequest req);
    /** One host issue attempt: may time out and reissue with
     *  exponential backoff (bounded by maxHostRetries). The credit
     *  acquired at dispatch is held across retries. */
    void dispatchAttempt(MemRequest req, std::uint32_t attempt);

    /** A response reached the host: return the message-class credit
     *  and wake one credit-starved waiter. */
    void releaseCredit(bool write, Tick now);

    /** Pop the next credit waiter using bounded same-source runs
     *  (PAR-BS-style batching): strict FIFO grants would interleave
     *  single lines from every core, destroying the DRAM row locality
     *  that the backend write scheduler depends on. */
    std::pair<MemRequest, Tick>
    popCreditWaiter(std::deque<std::pair<MemRequest, Tick>> &wait,
                    std::uint16_t &serveSource, std::uint32_t &serveRun);

    /** Response delivered at @p at: progress accounting plus the
     *  piggybacked DevLoad observation for the host throttle. */
    void noteResponse(bool write, Tick at);

    /** Resample the DevLoad meter after an occupancy change. */
    void qosSample();

    /* ------------------ failure lifecycle (chaos) ----------------- */

    /** Per-device chaos state; only allocated by armChaos. */
    struct DeviceChaos
    {
        ChaosSpec spec;
        LinkLifecycle link; //!< shared by both directions
        ChaosStats stats;
        bool present = true;
        std::vector<std::string> log;
    };

    /** Transition to link DOWN (scheduled or CRC-burst triggered). */
    void beginLinkOutage(Tick now);
    /** Retrain finished: link back at the degraded-width ceiling. */
    void retrainComplete(Tick at);
    /** One post-retrain width recovery step. */
    void stepUpWidth(Tick at);
    void hotRemove(Tick at);
    void hotReadd(Tick at);
    /** Complete a request caught by a hot-removed device per the
     *  containment policy (abort, or complete-with-poison). */
    void abortRequest(MemRequest req, Tick now);
    void announce(Tick at, const std::string &text);

    EventQueue &eq_;
    CxlDeviceParams params_;
    FaultInjector *faults_ = nullptr;
    CxlLinkDirection down_; //!< M2S: requests and write data
    CxlLinkDirection up_;   //!< S2M: read data and completions
    std::unique_ptr<InterleavedMemory> backend_;

    std::uint32_t readsInFlight_ = 0;
    std::uint32_t writesBuffered_ = 0;
    std::uint32_t ntPosted_ = 0;
    FairWaitQueue readWaitQueue_;
    FairWaitQueue writeWaitQueue_;
    std::deque<MemRequest> postedGate_;

    /* overload control (all inert unless configured) */
    std::unique_ptr<DevLoadMeter> meter_;
    HostThrottle *throttle_ = nullptr;
    std::function<void(double, DevLoad, Tick)> loadSink_;
    std::deque<std::pair<MemRequest, Tick>> rdCreditWait_;
    std::deque<std::pair<MemRequest, Tick>> wrCreditWait_;
    std::vector<std::uint64_t> sourceCreditStall_; //!< per issuing core
    std::uint16_t rdServeSource_ = 0; //!< sticky-run grant arbitration
    std::uint32_t rdServeRun_ = 0;
    std::uint16_t wrServeSource_ = 0;
    std::uint32_t wrServeRun_ = 0;
    std::uint32_t creditRunLimit_ = 1; //!< max grants per source stint
    bool qosOn_ = false;
    bool instrumented_ = false;

    /* forward-progress accounting (instrumented_ only) */
    std::uint64_t retired_ = 0;
    std::uint64_t hostInFlight_ = 0;

    /* observability (nullptr unless enabled) */
    std::unique_ptr<LatencyHistogram> latHist_;

    /* failure lifecycle (nullptr unless armChaos ran) */
    std::unique_ptr<DeviceChaos> chaos_;
    std::function<void(Tick, const std::string &)> chaosAnnounce_;

    /* latency accounting (all nullptr unless setAttribution ran) */
    AttributionBoard *board_ = nullptr;
    AccountedStation *stCredit_ = nullptr;
    AccountedStation *stIngress_ = nullptr;
    AccountedStation *stEgress_ = nullptr;

    CxlControllerStats ctrlStats_;
};

} // namespace cxlmemo

#endif // CXLMEMO_CXL_DEVICE_HH
