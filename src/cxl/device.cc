#include "cxl/device.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace cxlmemo
{

void
CxlDeviceParams::validate() const
{
    link.validate();
    backend.validate();
    if (readQueueEntries == 0)
        throw std::invalid_argument("CxlDeviceParams: no read trackers");
    if (writeBufferEntries == 0)
        throw std::invalid_argument("CxlDeviceParams: no write buffer");
    if (hostPostedEntries == 0)
        throw std::invalid_argument(
            "CxlDeviceParams: no host posted entries");
    if (backendChannels == 0)
        throw std::invalid_argument(
            "CxlDeviceParams: no backend channels");
}

CxlMemDevice::CxlMemDevice(EventQueue &eq, CxlDeviceParams params,
                           FaultInjector *faults, const QosSpec &qos)
    : eq_(eq),
      params_(std::move(params)),
      faults_(faults),
      down_(eq, params_.link, faults),
      up_(eq, params_.link, faults)
{
    params_.validate();
    qos.validate();
    if (qos.creditsEnabled()) {
        down_.enableCredits(qos.rdCredits, qos.wrCredits);
        creditRunLimit_ = qos.burstLines;
    }
    if (qos.enabled()) {
        meter_ = std::make_unique<DevLoadMeter>(qos);
        qosOn_ = true;
        instrumented_ = true;
    }
    backend_ = std::make_unique<InterleavedMemory>(
        eq, params_.name + ".mem", params_.backend,
        params_.backendChannels, /*interleaveBytes=*/256, faults_);
}

void
CxlMemDevice::setAttribution(AttributionBoard *board)
{
    board_ = board;
    stCredit_ = &board->station(StationId::CxlCredit);
    stIngress_ = &board->station(StationId::CxlIngress);
    stEgress_ = &board->station(StationId::CxlEgress);
    down_.setStation(&board->station(StationId::CxlM2s));
    up_.setStation(&board->station(StationId::CxlS2m));
    backend_->setStation(&board->station(StationId::CxlBackend));
    board->setServers(StationId::CxlCredit, params_.hostPostedEntries,
                      /*buffer=*/true);
    // The read tracker and the write buffer gate independent message
    // classes; the binding class fills its own capacity, so the
    // utilization denominator is the larger of the two.
    board->setServers(StationId::CxlIngress,
                      std::max(params_.readQueueEntries,
                               params_.writeBufferEntries),
                      /*buffer=*/true);
    board->setServers(StationId::CxlBackend, params_.backendChannels);
}

void
CxlMemDevice::access(MemRequest req)
{
    if (instrumented_)
        ++hostInFlight_;
    if (latHist_) {
        req.onComplete = [this, t0 = eq_.curTick(),
                          cb = std::move(req.onComplete)](Tick t) mutable {
            latHist_->record(t - t0);
            if (cb)
                cb(t);
        };
    }
    if (chaos_ && !chaos_->present) {
        abortRequest(std::move(req), eq_.curTick());
        return;
    }
    if (req.cmd == MemCmd::NtWrite) {
        if (ntPosted_ < params_.hostPostedEntries) {
            admitPosted(std::move(req));
        } else {
            if (stCredit_) {
                // Posted-window exhaustion is device backpressure felt
                // at the host, like a credit stall.
                stCredit_->enter(eq_.curTick());
                req.attribMark = eq_.curTick();
            }
            postedGate_.push_back(std::move(req));
        }
        return;
    }
    dispatch(std::move(req));
}

void
CxlMemDevice::admitPosted(MemRequest req)
{
    ++ntPosted_;
    if (req.onAccept) {
        const Tick now = eq_.curTick();
        eq_.schedule(now, [accept = std::move(req.onAccept),
                           now] { accept(now); });
    }
    // The posted slot frees at the global-observability point (the
    // S2M NDR, i.e. controller acceptance), which is when onComplete
    // fires on the CXL write path.
    req.onComplete = [this, drained = std::move(req.onComplete)](Tick t) {
        CXLMEMO_ASSERT(ntPosted_ > 0, "posted underflow");
        --ntPosted_;
        if (!postedGate_.empty()) {
            MemRequest waiting = std::move(postedGate_.front());
            postedGate_.pop_front();
            if (stCredit_) {
                const Tick now = eq_.curTick();
                stCredit_->exitNow(now);
                stCredit_->account(now - waiting.attribMark, 0,
                                   /*busy=*/0, waiting.attrib, now);
            }
            admitPosted(std::move(waiting));
        }
        if (drained)
            drained(t);
    };
    dispatch(std::move(req));
}

void
CxlMemDevice::dispatch(MemRequest req)
{
    if (LinkCredits *lc = down_.credits()) {
        CreditPool &pool = isWrite(req.cmd) ? lc->wr : lc->rd;
        if (pool.capacity() > 0 && !pool.tryAcquire()) {
            // Out of credits for this message class: the sender stalls
            // locally. tryAcquire() counted the stall; the waited time
            // is accounted when the freeing response wakes us.
            RequestTracer::mark(req.span, TraceStage::CxlCredit,
                                eq_.curTick());
            if (stCredit_)
                stCredit_->enter(eq_.curTick());
            auto &wait = isWrite(req.cmd) ? wrCreditWait_ : rdCreditWait_;
            wait.emplace_back(std::move(req), eq_.curTick());
            qosSample();
            return;
        }
    }
    dispatchAttempt(std::move(req), 0);
}

std::pair<MemRequest, Tick>
CxlMemDevice::popCreditWaiter(
    std::deque<std::pair<MemRequest, Tick>> &wait,
    std::uint16_t &serveSource, std::uint32_t &serveRun)
{
    // Continue the current source's stint if it still has a waiter and
    // the run bound is not exhausted; otherwise start a new stint at
    // the overall-oldest waiter. Stints are bounded, so every source
    // is reached in at most (sources - 1) * creditRunLimit_ grants:
    // batching, not starvation.
    if (serveRun < creditRunLimit_) {
        for (auto it = wait.begin(); it != wait.end(); ++it) {
            if (it->first.source == serveSource) {
                auto entry = std::move(*it);
                wait.erase(it);
                ++serveRun;
                return entry;
            }
        }
    }
    auto entry = std::move(wait.front());
    wait.pop_front();
    serveSource = entry.first.source;
    serveRun = 1;
    return entry;
}

void
CxlMemDevice::releaseCredit(bool write, Tick now)
{
    LinkCredits *lc = down_.credits();
    if (!lc)
        return;
    CreditPool &pool = write ? lc->wr : lc->rd;
    if (pool.capacity() == 0)
        return;
    pool.release();
    auto &wait = write ? wrCreditWait_ : rdCreditWait_;
    if (!wait.empty()) {
        auto [req, since] =
            write ? popCreditWaiter(wait, wrServeSource_, wrServeRun_)
                  : popCreditWaiter(wait, rdServeSource_, rdServeRun_);
        pool.noteStallEnd(now - since);
        if (stCredit_) {
            stCredit_->exitNow(now);
            stCredit_->account(now - since, 0, /*busy=*/0, req.attrib,
                               now);
        }
        if (req.source >= sourceCreditStall_.size())
            sourceCreditStall_.resize(req.source + 1);
        sourceCreditStall_[req.source] += now - since;
        const bool got = pool.tryAcquire();
        CXLMEMO_ASSERT(got, "credit vanished between release and acquire");
        dispatchAttempt(std::move(req), 0);
    }
    qosSample();
}

void
CxlMemDevice::noteResponse(bool write, Tick at)
{
    if (instrumented_) {
        ++retired_;
        CXLMEMO_ASSERT(hostInFlight_ > 0, "host in-flight underflow");
        --hostInFlight_;
    }
    releaseCredit(write, at);
    if (meter_) {
        if (loadSink_)
            loadSink_(meter_->load(), meter_->level(), at);
        else if (throttle_)
            throttle_->observe(meter_->load(), meter_->level(), at);
    }
}

void
CxlMemDevice::qosSample()
{
    if (!meter_)
        return;
    double wr =
        static_cast<double>(writesBuffered_ + writeWaitQueue_.size())
        / params_.writeBufferEntries;
    double rd =
        static_cast<double>(readsInFlight_ + readWaitQueue_.size())
        / params_.readQueueEntries;
    // Deliberately excludes the credit-wait queues: DevLoad is the
    // device reporting its *internal* queue state, and sender-side
    // credit stalls are not visible to it.
    meter_->sample(std::max(wr, rd), eq_.curTick());
}

void
CxlMemDevice::dispatchAttempt(MemRequest req, std::uint32_t attempt)
{
    const bool write = isWrite(req.cmd);
    const std::uint32_t cost =
        write ? params_.link.dataBytes : params_.link.headerBytes;

    if (faults_) {
        const FaultSpec &fs = faults_->spec();
        // Note: when the budget is exhausted, requestTimedOut() is
        // *not* consulted (short-circuit), so the RNG stream -- and
        // with it every injected-fault sequence -- is unchanged.
        if (attempt >= fs.maxHostRetries) {
            CXLMEMO_WARN_ONCE(
                "%s: host retry budget (%u) exhausted; delivering "
                "without timeout protection", params_.name.c_str(),
                fs.maxHostRetries);
        }
        if (attempt < fs.maxHostRetries && faults_->requestTimedOut()) {
            // The attempt goes out on the wire but the controller never
            // answers: the host burns the link capacity, waits out its
            // completion timer, backs off exponentially and reissues.
            down_.transmit(cost, req.attrib);
            RasStats &rs = faults_->stats();
            rs.timeouts++;
            rs.hostRetries++;
            const Tick backoff =
                std::min<Tick>(fs.backoffBase << attempt,
                               fs.backoffBase * 16);
            const Tick delay = fs.requestTimeout + backoff;
            rs.backoffTicks += delay;
            eq_.scheduleIn(delay,
                           [this, attempt, r = std::move(req)]() mutable {
                dispatchAttempt(std::move(r), attempt + 1);
            });
            return;
        }
    }

    RequestTracer::mark(req.span, TraceStage::CxlM2s, eq_.curTick());
    const Tick delivered = down_.transmit(cost, req.attrib);
    const Tick at_controller = delivered + params_.controllerIngress;
    eq_.schedule(at_controller, [this, write, r = std::move(req)]() mutable {
        if (write)
            writeArrived(std::move(r));
        else
            readArrived(std::move(r));
    });
}

void
CxlMemDevice::readArrived(MemRequest req)
{
    RequestTracer::mark(req.span, TraceStage::CxlIngress, eq_.curTick());
    if (board_)
        board_->noteDeviceOp(/*write=*/false);
    if (stIngress_) {
        // Two station visits: the fixed ingress pipeline, then
        // residency in the read tracker (begins now, even if the
        // request first sits in the overflow wait queue).
        stIngress_->passThrough(0, params_.controllerIngress, /*busy=*/0,
                                req.attrib, eq_.curTick());
        stIngress_->enter(eq_.curTick());
    }
    if (readsInFlight_ < params_.readQueueEntries) {
        admitRead(std::move(req));
    } else {
        ctrlStats_.readsStalled++;
        readWaitQueue_.push(std::move(req), eq_.curTick());
    }
    qosSample();
}

void
CxlMemDevice::writeArrived(MemRequest req)
{
    RequestTracer::mark(req.span, TraceStage::CxlIngress, eq_.curTick());
    if (board_)
        board_->noteDeviceOp(/*write=*/true);
    if (stIngress_) {
        stIngress_->passThrough(0, params_.controllerIngress, /*busy=*/0,
                                req.attrib, eq_.curTick());
        stIngress_->enter(eq_.curTick());
    }
    if (writesBuffered_ < params_.writeBufferEntries) {
        admitWrite(std::move(req));
    } else {
        ctrlStats_.writesStalled++;
        writeWaitQueue_.push(std::move(req), eq_.curTick());
    }
    qosSample();
}

void
CxlMemDevice::admitRead(MemRequest req)
{
    ++readsInFlight_;
    if (stIngress_)
        req.attribMark = eq_.curTick();
    MemRequest backend_req;
    backend_req.addr = req.addr;
    backend_req.size = req.size;
    backend_req.cmd = req.cmd;
    backend_req.span = req.span;
    backend_req.attrib = req.attrib;
    backend_req.onComplete =
        [this, span = req.span, addr = req.addr, attrib = req.attrib,
         mark = req.attribMark,
         cb = std::move(req.onComplete)](Tick) mutable {
            // Data is back from DDR4: free the tracker, then pipe the
            // response through the egress pipeline and the S2M link.
            CXLMEMO_ASSERT(readsInFlight_ > 0, "read tracker underflow");
            --readsInFlight_;
            if (stIngress_) {
                // Tracker residency overlaps the back-end service, so
                // it is all-traffic occupancy/service, never part of
                // the bracketed latency stack (no double counting).
                stIngress_->exitNow(eq_.curTick());
                stIngress_->account(0, eq_.curTick() - mark, /*busy=*/0,
                                    false, eq_.curTick());
            }
            if (!readWaitQueue_.empty()) {
                auto [waiting, since] = readWaitQueue_.pop();
                ctrlStats_.readStallTicks += eq_.curTick() - since;
                if (stIngress_)
                    stIngress_->account(eq_.curTick() - since, 0, /*busy=*/0,
                                        waiting.attrib, eq_.curTick());
                admitRead(std::move(waiting));
            }
            // The DRAM array may hand back a poisoned line; the DRS
            // flit carries the poison bit to the consumer (no timing
            // change, but the delivery must never be silent).
            const bool poisoned = faults_ && faults_->poisonRead();
            if (poisoned)
                faults_->stats().poisonInjected++;
            qosSample();
            RequestTracer::mark(span, TraceStage::CxlEgress,
                                eq_.curTick());
            if (stEgress_)
                stEgress_->passThrough(0, params_.controllerEgress, /*busy=*/0,
                                       attrib,
                                       eq_.curTick()
                                           + params_.controllerEgress);
            eq_.scheduleIn(params_.controllerEgress,
                           [this, poisoned, span, addr, attrib,
                            cb = std::move(cb)]() mutable {
                RequestTracer::mark(span, TraceStage::CxlS2m,
                                    eq_.curTick());
                const Tick arrive =
                    up_.transmit(params_.link.dataBytes, attrib);
                // The S2M DRS delivery also carries the read-class
                // credit and the DevLoad field back to the host, so
                // instrumented devices need the event even for
                // fire-and-forget reads.
                if (cb || poisoned || instrumented_) {
                    eq_.schedule(arrive, [this, poisoned, addr,
                                          cb = std::move(cb),
                                          arrive]() mutable {
                        noteResponse(/*write=*/false, arrive);
                        bool armed = poisoned;
                        // An in-flight read caught by a hot-remove is
                        // contained like a fresh arrival: its data is
                        // suspect the moment the device vanished.
                        const bool removed = chaos_ && !chaos_->present;
                        if (removed && faults_) {
                            if (chaos_->stats.removeDetectAt == 0)
                                chaos_->stats.removeDetectAt = arrive;
                            if (!armed) {
                                faults_->stats().poisonInjected++;
                                armed = true;
                            }
                            if (chaos_->spec.contain
                                == ContainPolicy::Abort) {
                                faults_->stats().poisonContained++;
                                armed = false;
                            }
                        }
                        if (armed)
                            faults_->armPoison();
                        if (cb)
                            cb(arrive);
                        // Anything not absorbed by the cache hierarchy
                        // reached a non-caching consumer.
                        if (armed && faults_->consumePoison()) {
                            faults_->stats().poisonDelivered++;
                            CXLMEMO_WARN_RATELIMITED(8,
                                "%s: poisoned line delivered to "
                                "non-caching consumer (addr 0x%llx)",
                                params_.name.c_str(),
                                static_cast<unsigned long long>(addr));
                        }
                    });
                }
            });
        };
    backend_->access(std::move(backend_req));
}

void
CxlMemDevice::admitWrite(MemRequest req)
{
    ++writesBuffered_;
    ctrlStats_.writeBufferHighWater =
        std::max(ctrlStats_.writeBufferHighWater, writesBuffered_);
    if (stIngress_)
        req.attribMark = eq_.curTick();

    // CXL.mem acknowledges a write (S2M NDR) once the controller has
    // accepted the data; draining to DDR4 happens in the background.
    // The NDR also carries the write-class credit and DevLoad field.
    // (The background drain is a fresh request with no span: the
    // traced lifecycle ends at the acknowledgement the host observes.)
    RequestTracer::mark(req.span, TraceStage::CxlS2m, eq_.curTick());
    const Tick arrive = up_.transmit(params_.link.headerBytes, req.attrib);
    if (req.onComplete || instrumented_) {
        eq_.schedule(arrive, [this, cb = std::move(req.onComplete),
                              arrive]() mutable {
            noteResponse(/*write=*/true, arrive);
            if (cb)
                cb(arrive);
        });
    }

    MemRequest drain;
    drain.addr = req.addr;
    drain.size = req.size;
    drain.cmd = req.cmd;
    drain.onComplete = [this, mark = req.attribMark](Tick) {
        CXLMEMO_ASSERT(writesBuffered_ > 0, "write buffer underflow");
        --writesBuffered_;
        if (stIngress_) {
            stIngress_->exitNow(eq_.curTick());
            stIngress_->account(0, eq_.curTick() - mark, /*busy=*/0,
                                false, eq_.curTick());
        }
        if (instrumented_)
            ++retired_; // a drained line is forward progress too
        if (!writeWaitQueue_.empty()) {
            auto [waiting, since] = writeWaitQueue_.pop();
            ctrlStats_.writeStallTicks += eq_.curTick() - since;
            if (stIngress_)
                stIngress_->account(eq_.curTick() - since, 0, /*busy=*/0,
                                    waiting.attrib, eq_.curTick());
            admitWrite(std::move(waiting));
        }
        qosSample();
    };
    if (faults_ && faults_->drainStall()) {
        // Stuck/slow-drain episode: the buffered line sits in the
        // controller before draining, holding its entry (and thus
        // backpressure) for the episode length.
        faults_->stats().drainStalls++;
        eq_.scheduleIn(faults_->spec().drainStallTicks,
                       [this, d = std::move(drain)]() mutable {
            backend_->access(std::move(d));
        });
    } else {
        backend_->access(std::move(drain));
    }
}

/* ------------------- failure lifecycle (chaos) ------------------- */

void
CxlMemDevice::armChaos(const ChaosSpec &spec)
{
    spec.validate();
    CXLMEMO_ASSERT(!chaos_, "%s: chaos already armed",
                   params_.name.c_str());
    chaos_ = std::make_unique<DeviceChaos>();
    chaos_->spec = spec;
    down_.setLifecycle(&chaos_->link);
    up_.setLifecycle(&chaos_->link);
    chaos_->link.ceilingBurst = spec.crcBurstTrigger;
    chaos_->link.onCeilingBurst = [this](Tick at) {
        announce(at, "CRC burst at degradation ceiling");
        beginLinkOutage(at);
    };
    // Containment accounting rides the response-delivery event, so
    // every response needs one.
    instrumented_ = true;
    if (spec.linkDownAtNs > 0) {
        eq_.schedule(
            ticksFromNs(static_cast<double>(spec.linkDownAtNs)),
            [this] { beginLinkOutage(eq_.curTick()); });
    }
    if (spec.removeAtNs > 0) {
        eq_.schedule(ticksFromNs(static_cast<double>(spec.removeAtNs)),
                     [this] { hotRemove(eq_.curTick()); });
    }
    if (spec.readdAtNs > 0) {
        eq_.schedule(ticksFromNs(static_cast<double>(spec.readdAtNs)),
                     [this] { hotReadd(eq_.curTick()); });
    }
}

void
CxlMemDevice::announce(Tick at, const std::string &text)
{
    if (chaos_->log.size() < 64) {
        char head[48];
        std::snprintf(head, sizeof(head), "t=%.1f ns: ",
                      nsFromTicks(at));
        chaos_->log.push_back(head + text);
    }
    if (chaosAnnounce_)
        chaosAnnounce_(at, text);
}

void
CxlMemDevice::beginLinkOutage(Tick now)
{
    DeviceChaos &c = *chaos_;
    if (c.link.downUntil > now)
        return; // already down / retraining
    const Tick retrain = ticksFromNs(c.spec.retrainNs);
    c.link.downUntil = now + retrain;
    c.link.detectAt = 0;
    c.link.ceilingBurst = 0; // re-armed once back at full width
    ++c.stats.linkDowns;
    c.stats.linkDownAt = now;
    announce(now, "link DOWN, retraining");
    eq_.schedule(c.link.downUntil,
                 [this] { retrainComplete(eq_.curTick()); });
}

void
CxlMemDevice::retrainComplete(Tick at)
{
    DeviceChaos &c = *chaos_;
    ++c.stats.retrains;
    c.stats.linkUpAt = at;
    // Real links re-enter at reduced width/speed and renegotiate up.
    down_.setDegradeLevel(2);
    up_.setDegradeLevel(2);
    announce(at, "link retrained at degraded width (level 2)");
    eq_.schedule(at + ticksFromNs(c.spec.stepUpNs),
                 [this] { stepUpWidth(eq_.curTick()); });
}

void
CxlMemDevice::stepUpWidth(Tick at)
{
    DeviceChaos &c = *chaos_;
    const std::uint32_t lvl = down_.degradeLevel();
    if (lvl == 0)
        return;
    down_.setDegradeLevel(lvl - 1);
    up_.setDegradeLevel(lvl - 1);
    ++c.stats.widthStepUps;
    if (lvl - 1 == 0) {
        c.stats.linkFullWidthAt = at;
        c.link.ceilingBurst = c.spec.crcBurstTrigger;
        announce(at, "link back at full width");
    } else {
        announce(at, "link width step-up (level "
                         + std::to_string(lvl - 1) + ")");
        eq_.schedule(at + ticksFromNs(c.spec.stepUpNs),
                     [this] { stepUpWidth(eq_.curTick()); });
    }
}

void
CxlMemDevice::hotRemove(Tick at)
{
    DeviceChaos &c = *chaos_;
    if (!c.present)
        return;
    c.present = false;
    ++c.stats.removals;
    c.stats.removeAt = at;
    announce(at, std::string("device hot-removed (contain=")
                     + containPolicyName(c.spec.contain) + ")");
}

void
CxlMemDevice::hotReadd(Tick at)
{
    DeviceChaos &c = *chaos_;
    if (c.present)
        return;
    c.present = true;
    ++c.stats.readds;
    c.stats.readdAt = at;
    announce(at, "device re-added (capacity restored empty)");
}

void
CxlMemDevice::abortRequest(MemRequest req, Tick now)
{
    DeviceChaos &c = *chaos_;
    if (c.stats.removeDetectAt == 0)
        c.stats.removeDetectAt = now;
    const bool write = isWrite(req.cmd);
    if (write)
        ++c.stats.abortedWrites;
    else
        ++c.stats.abortedReads;
    c.stats.abortedBytes += req.size;
    const Tick done = now + ticksFromNs(c.spec.abortNs);
    // NT stores wait for acceptance before releasing their WC buffer;
    // an aborted store is "accepted" by the error response.
    if (req.onAccept) {
        eq_.schedule(done, [accept = std::move(req.onAccept),
                            done] { accept(done); });
    }
    const bool poison = !write && faults_ != nullptr;
    eq_.schedule(done, [this, poison,
                        cb = std::move(req.onComplete), done]() mutable {
        if (poison) {
            RasStats &rs = faults_->stats();
            rs.poisonInjected++;
            if (chaos_->spec.contain == ContainPolicy::Poison)
                faults_->armPoison();
            else
                rs.poisonContained++;
        }
        if (instrumented_) {
            ++retired_;
            CXLMEMO_ASSERT(hostInFlight_ > 0, "host in-flight underflow");
            --hostInFlight_;
        }
        if (cb)
            cb(done);
        if (poison && chaos_->spec.contain == ContainPolicy::Poison
            && faults_->consumePoison())
            faults_->stats().poisonDelivered++;
    });
}

ChaosStats
CxlMemDevice::chaosStats() const
{
    if (!chaos_)
        return {};
    ChaosStats s = chaos_->stats;
    s.blockedMsgs = chaos_->link.blockedMsgs;
    s.linkDetectAt = chaos_->link.detectAt;
    return s;
}

void
CxlMemDevice::fillQosStats(QosStats &qs) const
{
    if (const LinkCredits *lc = down_.credits()) {
        qs.rdCreditStalls = lc->rd.stalls();
        qs.wrCreditStalls = lc->wr.stalls();
        qs.creditStallTicks = lc->rd.stallTicks() + lc->wr.stallTicks();
        qs.rdIssued = lc->rd.issued();
        qs.rdReturned = lc->rd.returned();
        qs.rdInFlight = lc->rd.inFlight();
        qs.wrIssued = lc->wr.issued();
        qs.wrReturned = lc->wr.returned();
        qs.wrInFlight = lc->wr.inFlight();
        qs.ledgerOk = lc->ledgerOk();
    }
    qs.devLoad = devLoad();
}

namespace
{

void
queueLine(std::ostream &os, const char *label, std::size_t depth,
          std::optional<Tick> oldest, Tick now)
{
    os << "    " << label << ": depth " << depth;
    if (oldest)
        os << ", oldest waiting " << nsFromTicks(now - *oldest) << " ns";
    os << "\n";
}

std::optional<Tick>
frontSince(const std::deque<std::pair<MemRequest, Tick>> &q)
{
    if (q.empty())
        return std::nullopt;
    return q.front().second;
}

} // namespace

std::string
CxlMemDevice::progressDiagnosis() const
{
    const Tick now = eq_.curTick();
    std::ostringstream os;
    os << "    trackers: reads-in-flight " << readsInFlight_ << "/"
       << params_.readQueueEntries << ", writes-buffered "
       << writesBuffered_ << "/" << params_.writeBufferEntries
       << ", nt-posted " << ntPosted_ << "/" << params_.hostPostedEntries
       << "\n";
    queueLine(os, "read-wait", readWaitQueue_.size(),
              readWaitQueue_.oldestSince(), now);
    queueLine(os, "write-wait", writeWaitQueue_.size(),
              writeWaitQueue_.oldestSince(), now);
    os << "    posted-gate: depth " << postedGate_.size() << "\n";
    queueLine(os, "rd-credit-wait", rdCreditWait_.size(),
              frontSince(rdCreditWait_), now);
    queueLine(os, "wr-credit-wait", wrCreditWait_.size(),
              frontSince(wrCreditWait_), now);
    if (const LinkCredits *lc = down_.credits()) {
        os << "    credit ledger: rd " << lc->rd.issued() << "/"
           << lc->rd.returned() << "/" << lc->rd.inFlight() << " of "
           << lc->rd.capacity() << ", wr " << lc->wr.issued() << "/"
           << lc->wr.returned() << "/" << lc->wr.inFlight() << " of "
           << lc->wr.capacity() << " (issued/returned/in-flight), "
           << (lc->ledgerOk() ? "ok" : "LEAK") << "\n";
    }

    // Name the stuck queue: the one holding the oldest waiter.
    const char *stuck = nullptr;
    Tick stuckSince = 0;
    auto consider = [&](const char *name, std::optional<Tick> since) {
        if (since && (!stuck || *since < stuckSince)) {
            stuck = name;
            stuckSince = *since;
        }
    };
    consider("read-wait", readWaitQueue_.oldestSince());
    consider("write-wait", writeWaitQueue_.oldestSince());
    consider("rd-credit-wait", frontSince(rdCreditWait_));
    consider("wr-credit-wait", frontSince(wrCreditWait_));
    if (stuck) {
        os << "    stuck queue: " << stuck << " (oldest request waiting "
           << nsFromTicks(now - stuckSince) << " ns)\n";
    }
    return os.str();
}

std::string
CxlMemDevice::progressInvariant() const
{
    const LinkCredits *lc = down_.credits();
    if (!lc)
        return {};
    std::ostringstream os;
    if (!lc->rd.ledgerOk()) {
        os << "rd credit ledger broken: issued " << lc->rd.issued()
           << " != returned " << lc->rd.returned() << " + in-flight "
           << lc->rd.inFlight();
        return os.str();
    }
    if (!lc->wr.ledgerOk()) {
        os << "wr credit ledger broken: issued " << lc->wr.issued()
           << " != returned " << lc->wr.returned() << " + in-flight "
           << lc->wr.inFlight();
        return os.str();
    }
    return {};
}

void
CxlMemDevice::resetStats()
{
    backend_->resetStats();
    down_.resetStats();
    up_.resetStats();
    ctrlStats_.reset();
    std::fill(sourceCreditStall_.begin(), sourceCreditStall_.end(), 0);
    if (latHist_)
        latHist_->reset();
}

} // namespace cxlmemo
