#include "cxl/device.hh"

#include <stdexcept>
#include <utility>

#include "sim/logging.hh"

namespace cxlmemo
{

void
CxlDeviceParams::validate() const
{
    link.validate();
    backend.validate();
    if (readQueueEntries == 0)
        throw std::invalid_argument("CxlDeviceParams: no read trackers");
    if (writeBufferEntries == 0)
        throw std::invalid_argument("CxlDeviceParams: no write buffer");
    if (hostPostedEntries == 0)
        throw std::invalid_argument(
            "CxlDeviceParams: no host posted entries");
    if (backendChannels == 0)
        throw std::invalid_argument(
            "CxlDeviceParams: no backend channels");
}

CxlMemDevice::CxlMemDevice(EventQueue &eq, CxlDeviceParams params,
                           FaultInjector *faults)
    : eq_(eq),
      params_(std::move(params)),
      faults_(faults),
      down_(eq, params_.link, faults),
      up_(eq, params_.link, faults)
{
    params_.validate();
    backend_ = std::make_unique<InterleavedMemory>(
        eq, params_.name + ".mem", params_.backend,
        params_.backendChannels, /*interleaveBytes=*/256, faults_);
}

void
CxlMemDevice::access(MemRequest req)
{
    if (req.cmd == MemCmd::NtWrite) {
        if (ntPosted_ < params_.hostPostedEntries) {
            admitPosted(std::move(req));
        } else {
            postedGate_.push_back(std::move(req));
        }
        return;
    }
    dispatch(std::move(req));
}

void
CxlMemDevice::admitPosted(MemRequest req)
{
    ++ntPosted_;
    if (req.onAccept) {
        const Tick now = eq_.curTick();
        eq_.schedule(now, [accept = std::move(req.onAccept),
                           now] { accept(now); });
    }
    // The posted slot frees at the global-observability point (the
    // S2M NDR, i.e. controller acceptance), which is when onComplete
    // fires on the CXL write path.
    req.onComplete = [this, drained = std::move(req.onComplete)](Tick t) {
        CXLMEMO_ASSERT(ntPosted_ > 0, "posted underflow");
        --ntPosted_;
        if (!postedGate_.empty()) {
            MemRequest waiting = std::move(postedGate_.front());
            postedGate_.pop_front();
            admitPosted(std::move(waiting));
        }
        if (drained)
            drained(t);
    };
    dispatch(std::move(req));
}

void
CxlMemDevice::dispatch(MemRequest req)
{
    dispatchAttempt(std::move(req), 0);
}

void
CxlMemDevice::dispatchAttempt(MemRequest req, std::uint32_t attempt)
{
    const bool write = isWrite(req.cmd);
    const std::uint32_t cost =
        write ? params_.link.dataBytes : params_.link.headerBytes;

    if (faults_) {
        const FaultSpec &fs = faults_->spec();
        if (attempt < fs.maxHostRetries && faults_->requestTimedOut()) {
            // The attempt goes out on the wire but the controller never
            // answers: the host burns the link capacity, waits out its
            // completion timer, backs off exponentially and reissues.
            down_.transmit(cost);
            RasStats &rs = faults_->stats();
            rs.timeouts++;
            rs.hostRetries++;
            const Tick backoff =
                std::min<Tick>(fs.backoffBase << attempt,
                               fs.backoffBase * 16);
            const Tick delay = fs.requestTimeout + backoff;
            rs.backoffTicks += delay;
            eq_.scheduleIn(delay,
                           [this, attempt, r = std::move(req)]() mutable {
                dispatchAttempt(std::move(r), attempt + 1);
            });
            return;
        }
    }

    const Tick delivered = down_.transmit(cost);
    const Tick at_controller = delivered + params_.controllerIngress;
    eq_.schedule(at_controller, [this, write, r = std::move(req)]() mutable {
        if (write)
            writeArrived(std::move(r));
        else
            readArrived(std::move(r));
    });
}

void
CxlMemDevice::readArrived(MemRequest req)
{
    if (readsInFlight_ < params_.readQueueEntries) {
        admitRead(std::move(req));
    } else {
        ctrlStats_.readsStalled++;
        readWaitQueue_.push(std::move(req), eq_.curTick());
    }
}

void
CxlMemDevice::writeArrived(MemRequest req)
{
    if (writesBuffered_ < params_.writeBufferEntries) {
        admitWrite(std::move(req));
    } else {
        ctrlStats_.writesStalled++;
        writeWaitQueue_.push(std::move(req), eq_.curTick());
    }
}

void
CxlMemDevice::admitRead(MemRequest req)
{
    ++readsInFlight_;
    MemRequest backend_req;
    backend_req.addr = req.addr;
    backend_req.size = req.size;
    backend_req.cmd = req.cmd;
    backend_req.onComplete =
        [this, cb = std::move(req.onComplete)](Tick) mutable {
            // Data is back from DDR4: free the tracker, then pipe the
            // response through the egress pipeline and the S2M link.
            CXLMEMO_ASSERT(readsInFlight_ > 0, "read tracker underflow");
            --readsInFlight_;
            if (!readWaitQueue_.empty()) {
                auto [waiting, since] = readWaitQueue_.pop();
                ctrlStats_.readStallTicks += eq_.curTick() - since;
                admitRead(std::move(waiting));
            }
            // The DRAM array may hand back a poisoned line; the DRS
            // flit carries the poison bit to the consumer (no timing
            // change, but the delivery must never be silent).
            const bool poisoned = faults_ && faults_->poisonRead();
            if (poisoned)
                faults_->stats().poisonInjected++;
            eq_.scheduleIn(params_.controllerEgress,
                           [this, poisoned,
                            cb = std::move(cb)]() mutable {
                const Tick arrive = up_.transmit(params_.link.dataBytes);
                if (cb || poisoned) {
                    eq_.schedule(arrive, [this, poisoned,
                                          cb = std::move(cb),
                                          arrive]() mutable {
                        if (poisoned)
                            faults_->armPoison();
                        if (cb)
                            cb(arrive);
                        // Anything not absorbed by the cache hierarchy
                        // reached a non-caching consumer.
                        if (poisoned && faults_->consumePoison())
                            faults_->stats().poisonDelivered++;
                    });
                }
            });
        };
    backend_->access(std::move(backend_req));
}

void
CxlMemDevice::admitWrite(MemRequest req)
{
    ++writesBuffered_;
    ctrlStats_.writeBufferHighWater =
        std::max(ctrlStats_.writeBufferHighWater, writesBuffered_);

    // CXL.mem acknowledges a write (S2M NDR) once the controller has
    // accepted the data; draining to DDR4 happens in the background.
    const Tick arrive = up_.transmit(params_.link.headerBytes);
    if (req.onComplete) {
        eq_.schedule(arrive, [cb = std::move(req.onComplete), arrive] {
            cb(arrive);
        });
    }

    MemRequest drain;
    drain.addr = req.addr;
    drain.size = req.size;
    drain.cmd = req.cmd;
    drain.onComplete = [this](Tick) {
        CXLMEMO_ASSERT(writesBuffered_ > 0, "write buffer underflow");
        --writesBuffered_;
        if (!writeWaitQueue_.empty()) {
            auto [waiting, since] = writeWaitQueue_.pop();
            ctrlStats_.writeStallTicks += eq_.curTick() - since;
            admitWrite(std::move(waiting));
        }
    };
    if (faults_ && faults_->drainStall()) {
        // Stuck/slow-drain episode: the buffered line sits in the
        // controller before draining, holding its entry (and thus
        // backpressure) for the episode length.
        faults_->stats().drainStalls++;
        eq_.scheduleIn(faults_->spec().drainStallTicks,
                       [this, d = std::move(drain)]() mutable {
            backend_->access(std::move(d));
        });
    } else {
        backend_->access(std::move(drain));
    }
}

void
CxlMemDevice::resetStats()
{
    backend_->resetStats();
    down_.resetStats();
    up_.resetStats();
    ctrlStats_.reset();
}

} // namespace cxlmemo
