/**
 * @file
 * CXL.mem link model: two simplex directions over the PCIe Gen5
 * physical layer, moving 68 B flits (64 B data + 2 B CRC + 2 B
 * protocol ID, CXL 1.1).
 *
 * Message costs are expressed in bytes of link capacity. CXL packs
 * multiple headers per flit, so a data-less message (read request,
 * write completion) costs a fraction of a flit: with four header
 * slots per 68 B flit that is 17 B. A data-carrying message costs a
 * full data flit plus a header slot.
 */

#ifndef CXLMEMO_CXL_LINK_HH
#define CXLMEMO_CXL_LINK_HH

#include <cstdint>
#include <string>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace cxlmemo
{

/** Physical and protocol parameters of a CXL link. */
struct CxlLinkParams
{
    /** Raw lane bandwidth per direction, GB/s
     *  (PCIe Gen5 x16: 32 GT/s * 16 / 8 = 64 GB/s minus encoding). */
    double rawGBps = 63.0;

    /** Payload fraction of each flit (64/68 for CXL 1.1). */
    double flitEfficiency = 64.0 / 68.0;

    /** One-way propagation + SerDes + retimer latency. */
    Tick propagation = ticksFromNs(12.0);

    /** Link-capacity cost of a header-only message (one of four
     *  header slots in a 68 B flit). */
    std::uint32_t headerBytes = 17;

    /** Link-capacity cost of a message carrying one 64 B cacheline
     *  (a full data flit plus a header slot). */
    std::uint32_t dataBytes = 85;
};

/**
 * One direction of a CXL link: a serialization rate limiter plus
 * propagation delay. Host-to-device (M2S) and device-to-host (S2M)
 * each instantiate one.
 */
class CxlLinkDirection
{
  public:
    CxlLinkDirection(EventQueue &eq, const CxlLinkParams &params)
        : eq_(eq), params_(params)
    {}

    /**
     * Transmit @p bytes of link capacity starting no earlier than now;
     * @return the tick the message is fully delivered at the far end.
     */
    Tick
    transmit(std::uint32_t bytes)
    {
        const Tick now = eq_.curTick();
        const Tick start = std::max(now, freeAt_);
        const double eff = params_.rawGBps * params_.flitEfficiency;
        const Tick done = start + serializationTicks(bytes, eff);
        freeAt_ = done;
        bytesMoved_ += bytes;
        return done + params_.propagation;
    }

    std::uint64_t bytesMoved() const { return bytesMoved_; }
    void resetStats() { bytesMoved_ = 0; }

  private:
    EventQueue &eq_;
    CxlLinkParams params_;
    Tick freeAt_ = 0;
    std::uint64_t bytesMoved_ = 0;
};

} // namespace cxlmemo

#endif // CXLMEMO_CXL_LINK_HH
