/**
 * @file
 * CXL.mem link model: two simplex directions over the PCIe Gen5
 * physical layer, moving 68 B flits (64 B data + 2 B CRC + 2 B
 * protocol ID, CXL 1.1).
 *
 * Message costs are expressed in bytes of link capacity. CXL packs
 * multiple headers per flit, so a data-less message (read request,
 * write completion) costs a fraction of a flit: with four header
 * slots per 68 B flit that is 17 B. A data-carrying message costs a
 * full data flit plus a header slot.
 *
 * Reliability: each flit carries a CRC. When fault injection is
 * enabled, a receive-side CRC failure runs the CXL link-level retry
 * (LLR) handshake -- the receiver naks, the transmitter replays the
 * outstanding window from its finite retry buffer -- modelled as a
 * fixed retry-processing delay, a round trip of propagation, and the
 * serialization of the replayed flits (which also burns link
 * capacity). A sustained error burst optionally degrades the link
 * (halving rawGBps, the width/speed downgrade real links negotiate),
 * at most twice.
 */

#ifndef CXLMEMO_CXL_LINK_HH
#define CXLMEMO_CXL_LINK_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "sim/attribution.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/qos.hh"
#include "sim/types.hh"

namespace cxlmemo
{

/** Physical and protocol parameters of a CXL link. */
struct CxlLinkParams
{
    /** Raw lane bandwidth per direction, GB/s
     *  (PCIe Gen5 x16: 32 GT/s * 16 / 8 = 64 GB/s minus encoding). */
    double rawGBps = 63.0;

    /** Payload fraction of each flit (64/68 for CXL 1.1). */
    double flitEfficiency = 64.0 / 68.0;

    /** One-way propagation + SerDes + retimer latency. */
    Tick propagation = ticksFromNs(12.0);

    /** Link-capacity cost of a header-only message (one of four
     *  header slots in a 68 B flit). */
    std::uint32_t headerBytes = 17;

    /** Link-capacity cost of a message carrying one 64 B cacheline
     *  (a full data flit plus a header slot). */
    std::uint32_t dataBytes = 85;

    /** LLR retry-buffer depth: flits replayed per nak round. */
    std::uint32_t retryBufferFlits = 8;

    /** Receiver nak handling + transmitter replay setup time. */
    Tick retryProcessing = ticksFromNs(20.0);

    /** Throws std::invalid_argument on out-of-range values. */
    void
    validate() const
    {
        if (!(rawGBps > 0.0))
            throw std::invalid_argument(
                "CxlLinkParams: rawGBps must be positive");
        if (!(flitEfficiency > 0.0 && flitEfficiency <= 1.0))
            throw std::invalid_argument(
                "CxlLinkParams: flitEfficiency must be in (0,1]");
        if (headerBytes == 0)
            throw std::invalid_argument(
                "CxlLinkParams: headerBytes must be nonzero");
        if (dataBytes == 0)
            throw std::invalid_argument(
                "CxlLinkParams: dataBytes must be nonzero");
        if (retryBufferFlits == 0)
            throw std::invalid_argument(
                "CxlLinkParams: retry buffer needs at least one flit");
    }
};

/**
 * Shared link-lifecycle state for a full link (both directions): the
 * chaos layer's DOWN/retrain FSM. Owned by the device; each
 * CxlLinkDirection consults it with a single pointer test per
 * transmit, so a build without a lifecycle attached is bit-identical.
 * While the link is DOWN (now < downUntil) every message naks into
 * the replay buffer and serializes only after retrain completes.
 */
struct LinkLifecycle
{
    /** Link blocked (DOWN / retraining) until this tick. */
    Tick downUntil = 0;

    /** CRC errors observed *at* the degradation ceiling that trigger
     *  an un-scheduled outage; 0 = never. Disarmed when it fires (the
     *  device re-arms after retrain). */
    std::uint32_t ceilingBurst = 0;
    std::uint32_t ceilingErrors = 0;

    /** Fired once when ceilingErrors reaches ceilingBurst. */
    std::function<void(Tick)> onCeilingBurst;

    /* Link-side chaos accounting, merged by the device. */
    std::uint64_t blockedMsgs = 0;
    Tick detectAt = 0; //!< first blocked message of the last outage

    void
    noteCeilingError(Tick at)
    {
        if (ceilingBurst == 0)
            return;
        if (++ceilingErrors >= ceilingBurst) {
            ceilingErrors = 0;
            ceilingBurst = 0;
            if (onCeilingBurst)
                onCeilingBurst(at);
        }
    }
};

/**
 * One direction of a CXL link: a serialization rate limiter plus
 * propagation delay. Host-to-device (M2S) and device-to-host (S2M)
 * each instantiate one.
 */
class CxlLinkDirection
{
  public:
    /** Physical-layer flit size (64 B payload + CRC + protocol ID). */
    static constexpr std::uint32_t flitBytes = 68;

    CxlLinkDirection(EventQueue &eq, const CxlLinkParams &params,
                     FaultInjector *faults = nullptr)
        : eq_(eq), params_(params), faults_(faults)
    {
        params_.validate();
    }

    /**
     * Transmit @p bytes of link capacity starting no earlier than now;
     * @return the tick the message is fully delivered at the far end.
     * @p attrib adds the wait/serialization split to the bracketed
     * latency stack of the attached station (if any).
     */
    Tick
    transmit(std::uint32_t bytes, bool attrib = false)
    {
        const Tick now = eq_.curTick();
        Tick start = std::max(now, freeAt_);
        if (lifecycle_ && lifecycle_->downUntil > start) {
            // Link DOWN: the message naks into the replay buffer and
            // serializes once retrain completes.
            ++lifecycle_->blockedMsgs;
            if (lifecycle_->detectAt == 0)
                lifecycle_->detectAt = start;
            start = lifecycle_->downUntil;
        }
        const double eff = effectiveRawGBps() * params_.flitEfficiency;
        Tick done = start + serializationTicks(bytes, eff);
        bytesMoved_ += bytes;
        if (faults_)
            done = retryAfterCrc(done, bytes, eff);
        freeAt_ = done;
        // Serialization is the busy (wire-occupancy) part; the
        // propagation delay pipelines across in-flight flits.
        if (station_)
            station_->passThrough(start - now,
                                  done - start + params_.propagation,
                                  /*busy=*/done - start, attrib,
                                  done + params_.propagation);
        return done + params_.propagation;
    }

    /** Attach a latency-accounting station to this direction. */
    void setStation(AccountedStation *station) { station_ = station; }

    std::uint64_t bytesMoved() const { return bytesMoved_; }

    void
    resetStats()
    {
        bytesMoved_ = 0;
        if (credits_) {
            credits_->rd.resetStats();
            credits_->wr.resetStats();
        }
    }

    /**
     * Attach per-message-class credit pools to this direction (CXL
     * link-layer flow control). A 0 capacity leaves that class
     * uncapped. Without this call `credits()` stays null and the
     * direction behaves exactly as before.
     */
    void
    enableCredits(std::uint32_t rdCredits, std::uint32_t wrCredits)
    {
        credits_ = std::make_unique<LinkCredits>(rdCredits, wrCredits);
    }

    LinkCredits *credits() { return credits_.get(); }
    const LinkCredits *credits() const { return credits_.get(); }

    /** Raw rate after degradation (width/speed downgrade). */
    double
    effectiveRawGBps() const
    {
        return params_.rawGBps
               / static_cast<double>(1u << degradeLevel_);
    }

    std::uint32_t degradeLevel() const { return degradeLevel_; }

    /** Attach the shared DOWN/retrain lifecycle (chaos layer). */
    void setLifecycle(LinkLifecycle *lc) { lifecycle_ = lc; }

    /** Force the width level (post-retrain re-entry / step-up); also
     *  re-arms the burst window so old errors never count anew. */
    void
    setDegradeLevel(std::uint32_t level)
    {
        degradeLevel_ = std::min(level, 2u);
        errorsSinceDegrade_ = 0;
        windowDowngraded_ = false;
        degradeWindowEnd_ = 0;
    }

  private:
    /** One LLR round is bounded; a flit that keeps failing past this
     *  many replays is delivered anyway (real links would retrain). */
    static constexpr std::uint32_t maxLlrRounds = 64;

    /**
     * Receive-side CRC check per flit of the message; each failure
     * runs one ack/nak replay round and pushes delivery out.
     */
    Tick
    retryAfterCrc(Tick done, std::uint32_t bytes, double eff)
    {
        const std::uint32_t flits = (bytes + flitBytes - 1) / flitBytes;
        RasStats &rs = faults_->stats();
        for (std::uint32_t f = 0; f < flits; ++f) {
            std::uint32_t rounds = 0;
            while (rounds < maxLlrRounds && faults_->flitCrcError()) {
                ++rounds;
                rs.crcErrors++;
                rs.linkRetries++;
                const std::uint64_t replay =
                    std::uint64_t(params_.retryBufferFlits) * flitBytes;
                rs.flitsReplayed += params_.retryBufferFlits;
                rs.replayBytes += replay;
                bytesMoved_ += replay;
                // nak processing + request/replay round trip + the
                // replayed window re-serialized at the current rate.
                const Tick penalty = params_.retryProcessing
                                     + 2 * params_.propagation
                                     + serializationTicks(replay, eff);
                rs.retryTicks += penalty;
                done += penalty;
                noteError(rs, done);
            }
        }
        return done;
    }

    /**
     * Degradation policy: degradeBurst CRC errors inside one
     * observation window downgrade the link once (halving rawGBps),
     * at most twice overall and at most once per window -- the
     * counter re-arms at window expiry, so two closely-spaced bursts
     * cannot double-downgrade within a single window. Errors at the
     * ceiling feed the lifecycle's outage trigger instead.
     */
    void
    noteError(RasStats &rs, Tick at)
    {
        const std::uint32_t burst = faults_->spec().degradeBurst;
        if (burst == 0 || degradeLevel_ >= 2) {
            if (lifecycle_ && degradeLevel_ >= 2)
                lifecycle_->noteCeilingError(at);
            return;
        }
        if (at >= degradeWindowEnd_) {
            degradeWindowEnd_ = at + faults_->spec().degradeWindow;
            errorsSinceDegrade_ = 0;
            windowDowngraded_ = false;
        }
        if (++errorsSinceDegrade_ >= burst && !windowDowngraded_) {
            ++degradeLevel_;
            windowDowngraded_ = true;
            errorsSinceDegrade_ = 0;
            rs.linkDegradations++;
        }
    }

    EventQueue &eq_;
    CxlLinkParams params_;
    FaultInjector *faults_ = nullptr;
    std::unique_ptr<LinkCredits> credits_;
    Tick freeAt_ = 0;
    std::uint64_t bytesMoved_ = 0;
    AccountedStation *station_ = nullptr;
    LinkLifecycle *lifecycle_ = nullptr;
    std::uint32_t degradeLevel_ = 0;
    std::uint32_t errorsSinceDegrade_ = 0;
    Tick degradeWindowEnd_ = 0;
    bool windowDowngraded_ = false;
};

} // namespace cxlmemo

#endif // CXLMEMO_CXL_LINK_HH
