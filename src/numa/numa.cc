#include "numa/numa.hh"

#include <cmath>
#include <numeric>

namespace cxlmemo
{

MemPolicy
MemPolicy::splitDramCxl(NodeId dramNode, NodeId cxlNode, double cxlFraction)
{
    CXLMEMO_ASSERT(cxlFraction >= 0.0 && cxlFraction <= 1.0,
                   "cxl fraction out of range");
    if (cxlFraction <= 0.0)
        return membind(dramNode);
    if (cxlFraction >= 1.0)
        return membind(cxlNode);
    // Find the smallest N:M integer ratio (N+M <= 128) closest to the
    // requested split; e.g. 3.23% -> 30:1, 10% -> 9:1, 50% -> 1:1.
    std::uint32_t best_dram = 1;
    std::uint32_t best_cxl = 1;
    double best_err = 1e9;
    for (std::uint32_t total = 2; total <= 128; ++total) {
        for (std::uint32_t cxl_w = 1; cxl_w < total; ++cxl_w) {
            const double frac =
                static_cast<double>(cxl_w) / static_cast<double>(total);
            const double err = std::abs(frac - cxlFraction);
            if (err < best_err - 1e-12) {
                best_err = err;
                best_dram = total - cxl_w;
                best_cxl = cxl_w;
            }
        }
        if (best_err < 1e-9)
            break;
    }
    return weighted({dramNode, cxlNode}, {best_dram, best_cxl});
}

double
NumaBuffer::residencyOn(NodeId node) const
{
    if (pagePaddr_.empty())
        return 0.0;
    std::uint64_t on_node = 0;
    for (Addr base : pagePaddr_)
        if (nodeOfPaddr(base) == node)
            ++on_node;
    return static_cast<double>(on_node)
           / static_cast<double>(pagePaddr_.size());
}

namespace
{

/**
 * Nonlinear bijection on [0, 2^k): alternating odd-multiplier and
 * xor-shift rounds (each invertible mod 2^k). A *linear* permutation
 * (e.g. idx * prime mod n) would preserve the arithmetic structure of
 * per-thread buffer strides and keep every thread's stream in bank
 * lockstep -- exactly the pathology scattering must destroy.
 */
std::uint64_t
mixBits(std::uint64_t x, unsigned k)
{
    const std::uint64_t mask =
        k >= 64 ? ~std::uint64_t(0) : ((std::uint64_t(1) << k) - 1);
    const unsigned s = k / 2 + 1;
    x &= mask;
    x = (x * 0x9e3779b97f4a7c15ULL) & mask;
    x ^= x >> s;
    x = (x * 0xbf58476d1ce4e5b9ULL) & mask;
    x ^= x >> s;
    x = (x * 0x94d049bb133111ebULL) & mask;
    return x & mask;
}

/**
 * Bijection on [0, frames) via cycle-walking the power-of-two mix:
 * re-mix until the value falls inside the domain (terminates in a few
 * steps; expected iterations = next_pow2(frames) / frames < 2).
 */
std::uint64_t
scatterFrame(std::uint64_t idx, std::uint64_t frames)
{
    CXLMEMO_ASSERT(idx < frames, "frame index beyond node");
    unsigned k = 1;
    while ((std::uint64_t(1) << k) < frames)
        ++k;
    std::uint64_t x = mixBits(idx, k);
    while (x >= frames)
        x = mixBits(x, k);
    return x;
}

} // namespace

NodeId
NumaSpace::addNode(std::string name, MemoryDevice *device,
                   std::uint64_t capacity, bool hasCpu)
{
    CXLMEMO_ASSERT(device != nullptr, "node without a device");
    CXLMEMO_ASSERT(capacity > 0 && capacity < (Addr(1) << nodeShift),
                   "node capacity out of range");
    NumaNode n;
    n.name = std::move(name);
    n.device = device;
    n.capacityBytes = capacity;
    n.hasCpu = hasCpu;
    nodes_.push_back(std::move(n));
    return static_cast<NodeId>(nodes_.size() - 1);
}

Addr
NumaSpace::takePage(NodeId node)
{
    NumaNode &n = nodes_.at(node);
    if (n.freeBytes() < pageBytes)
        CXLMEMO_FATAL("NUMA node '%s' out of memory", n.name.c_str());
    const std::uint64_t frames = n.capacityBytes / pageBytes;
    const std::uint64_t idx = n.allocatedBytes / pageBytes;
    n.allocatedBytes += pageBytes;

    std::uint64_t frame = idx;
    if (n.scatterFrames)
        frame = scatterFrame(idx, frames);
    return paddrOf(node, frame * pageBytes);
}

NumaBuffer
NumaSpace::alloc(std::uint64_t bytes, const MemPolicy &policy)
{
    CXLMEMO_ASSERT(bytes > 0, "zero-byte allocation");
    CXLMEMO_ASSERT(!policy.nodes.empty(), "policy without nodes");
    for (NodeId n : policy.nodes)
        CXLMEMO_ASSERT(n < nodes_.size(), "policy names unknown node %u", n);
    if (policy.kind == MemPolicy::Kind::Weighted)
        CXLMEMO_ASSERT(policy.weights.size() == policy.nodes.size(),
                       "weighted policy needs one weight per node");

    // Offline nodes (hot-removed devices) never receive new pages: the
    // policy's node list is filtered up front, mirroring the kernel
    // dropping an offlined node from every mempolicy nodemask.
    std::vector<NodeId> live;
    std::vector<std::uint32_t> liveWeights;
    for (std::size_t i = 0; i < policy.nodes.size(); ++i) {
        if (!nodes_[policy.nodes[i]].online)
            continue;
        live.push_back(policy.nodes[i]);
        if (policy.kind == MemPolicy::Kind::Weighted)
            liveWeights.push_back(policy.weights[i]);
    }
    if (live.empty()) {
        // Every policy node is offline: redirect to the first online
        // node in the space (DRAM registers first on every machine).
        for (NodeId n = 0; n < nodes_.size(); ++n) {
            if (nodes_[n].online) {
                live.push_back(n);
                liveWeights.push_back(1);
                break;
            }
        }
        if (live.empty())
            CXLMEMO_FATAL("allocation with every NUMA node offline");
    }

    const std::uint64_t pages = (bytes + pageBytes - 1) / pageBytes;
    NumaBuffer buf;
    buf.size_ = bytes;
    buf.pagePaddr_.reserve(pages);

    switch (policy.kind) {
      case MemPolicy::Kind::Membind: {
        const NodeId n = live.front();
        for (std::uint64_t p = 0; p < pages; ++p)
            buf.pagePaddr_.push_back(takePage(n));
        break;
      }
      case MemPolicy::Kind::Preferred: {
        std::size_t which = 0;
        for (std::uint64_t p = 0; p < pages; ++p) {
            while (which < live.size()
                   && nodes_[live[which]].freeBytes() < pageBytes) {
                ++which;
            }
            if (which == live.size())
                CXLMEMO_FATAL("preferred policy exhausted all nodes");
            buf.pagePaddr_.push_back(takePage(live[which]));
        }
        break;
      }
      case MemPolicy::Kind::Interleave: {
        for (std::uint64_t p = 0; p < pages; ++p) {
            const NodeId n = live[p % live.size()];
            buf.pagePaddr_.push_back(takePage(n));
        }
        break;
      }
      case MemPolicy::Kind::Weighted: {
        const std::uint64_t cycle = std::accumulate(
            liveWeights.begin(), liveWeights.end(), std::uint64_t(0));
        CXLMEMO_ASSERT(cycle > 0, "weighted policy with all-zero weights");
        for (std::uint64_t p = 0; p < pages; ++p) {
            // Position within the repeating N:M cycle decides the node.
            std::uint64_t pos = p % cycle;
            NodeId n = live.back();
            for (std::size_t i = 0; i < live.size(); ++i) {
                if (pos < liveWeights[i]) {
                    n = live[i];
                    break;
                }
                pos -= liveWeights[i];
            }
            buf.pagePaddr_.push_back(takePage(n));
        }
        break;
      }
    }
    return buf;
}

} // namespace cxlmemo
