/**
 * @file
 * NUMA topology, physical address space and page-placement policies.
 *
 * The simulated machine exposes each memory node (local DDR5 socket,
 * SNC quadrant, remote socket, CXL CPU-less node) as a NUMA node with
 * its own physical address window: node i owns [i << 40, ...). Routing
 * a physical address to its device is therefore a shift, exactly like
 * a real system's HDM decoder / SAD.
 *
 * Allocation mirrors the Linux interfaces the paper uses:
 *  - membind    (numactl --membind)
 *  - preferred  (numactl --preferred)
 *  - interleave (numactl --interleave)
 *  - weighted N:M interleave (the tiering patch the paper applies to
 *    get e.g. a 30:1 DRAM:CXL split = 3.23% on CXL)
 */

#ifndef CXLMEMO_NUMA_NUMA_HH
#define CXLMEMO_NUMA_NUMA_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/request.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace cxlmemo
{

using NodeId = std::uint32_t;

/** Bits reserved for the node-local offset in a physical address. */
constexpr unsigned nodeShift = 40;

/** @return the node owning physical address @p paddr. */
constexpr NodeId
nodeOfPaddr(Addr paddr)
{
    return static_cast<NodeId>(paddr >> nodeShift);
}

/** @return the node-local offset of @p paddr. */
constexpr Addr
localOfPaddr(Addr paddr)
{
    return paddr & ((Addr(1) << nodeShift) - 1);
}

/** Compose a physical address from node + local offset. */
constexpr Addr
paddrOf(NodeId node, Addr local)
{
    return (Addr(node) << nodeShift) | local;
}

/** Page placement policy, mirroring numactl / set_mempolicy. */
struct MemPolicy
{
    enum class Kind
    {
        Membind,    //!< all pages on one node; fatal if it fills up
        Preferred,  //!< fill one node first, then spill in node order
        Interleave, //!< round-robin across nodes
        Weighted,   //!< N:M round-robin (Linux weighted interleave)
    };

    Kind kind = Kind::Membind;
    std::vector<NodeId> nodes = {0};
    std::vector<std::uint32_t> weights = {}; //!< parallel to nodes (Weighted)

    static MemPolicy membind(NodeId n) { return {Kind::Membind, {n}, {}}; }

    static MemPolicy
    preferred(NodeId n, std::vector<NodeId> fallback)
    {
        std::vector<NodeId> order{n};
        order.insert(order.end(), fallback.begin(), fallback.end());
        return {Kind::Preferred, std::move(order), {}};
    }

    static MemPolicy
    interleave(std::vector<NodeId> nodes)
    {
        return {Kind::Interleave, std::move(nodes), {}};
    }

    static MemPolicy
    weighted(std::vector<NodeId> nodes, std::vector<std::uint32_t> weights)
    {
        return {Kind::Weighted, std::move(nodes), std::move(weights)};
    }

    /**
     * Convenience for the paper's experiments: put @p cxlFraction of
     * pages on @p cxlNode and the rest on @p dramNode, via the closest
     * integer weight ratio (e.g. 0.0323 -> 30:1).
     */
    static MemPolicy splitDramCxl(NodeId dramNode, NodeId cxlNode,
                                  double cxlFraction);
};

/** One NUMA node: a memory device plus capacity accounting. */
struct NumaNode
{
    std::string name;
    MemoryDevice *device = nullptr; //!< non-owning; Machine owns devices
    std::uint64_t capacityBytes = 0;
    std::uint64_t allocatedBytes = 0;
    bool hasCpu = true; //!< false for the CXL Type-3 expander

    /** False while the backing device is hot-removed; allocation
     *  policies skip offline nodes and membind redirects to the first
     *  online node, mirroring the kernel's memory-hotplug offlining. */
    bool online = true;

    /**
     * Scatter physical frames pseudo-randomly (the steady state of a
     * real OS buddy allocator) instead of handing out contiguous
     * frames. Contiguous frames would align every thread's buffer to
     * the same channel/bank phase -- a pathology real systems do not
     * exhibit. Tests may disable it for address-exactness checks.
     */
    bool scatterFrames = true;

    /**
     * Whether a demand miss on a *recently flushed* line pays an
     * extra coherence handshake at the home agent (observed for
     * directly-attached DRAM by Xiang et al. [31] and visible in the
     * paper's flush+load latency probe). The CXL path resolves the
     * flushed state inside its already-long host-bridge round trip,
     * so its node sets this false.
     */
    bool flushHandshake = true;

    std::uint64_t freeBytes() const { return capacityBytes - allocatedBytes; }
};

class NumaSpace;

/**
 * A virtually contiguous allocation whose pages are spread over NUMA
 * nodes per some policy. Streams generate buffer-relative offsets and
 * translate() them to physical addresses.
 */
class NumaBuffer
{
  public:
    std::uint64_t size() const { return size_; }

    /** Translate a buffer offset to a simulated physical address. */
    Addr
    translate(std::uint64_t offset) const
    {
        CXLMEMO_ASSERT(offset < size_, "offset beyond buffer");
        return pagePaddr_[offset / pageBytes] + offset % pageBytes;
    }

    /** @return the node holding the page at @p offset. */
    NodeId
    nodeAt(std::uint64_t offset) const
    {
        return nodeOfPaddr(translate(offset));
    }

    /** Fraction of pages resident on @p node. */
    double residencyOn(NodeId node) const;

    static constexpr std::uint64_t npos = ~std::uint64_t(0);

    /** Inverse translation: the page index whose frame holds physical
     *  address @p paddr, or npos when it is not part of this buffer.
     *  Linear in the page count; used only on rare failure events. */
    std::uint64_t
    pageOf(Addr paddr) const
    {
        const Addr frame = paddr & ~static_cast<Addr>(pageBytes - 1);
        for (std::size_t p = 0; p < pagePaddr_.size(); ++p)
            if (pagePaddr_[p] == frame)
                return p;
        return npos;
    }

  private:
    friend class NumaSpace;
    std::uint64_t size_ = 0;
    std::vector<Addr> pagePaddr_; //!< physical base of each page
};

/**
 * The machine's set of NUMA nodes: physical-address routing for the
 * cache hierarchy plus the page allocator for workloads.
 */
class NumaSpace
{
  public:
    /** Register a node; returns its id (registration order). */
    NodeId addNode(std::string name, MemoryDevice *device,
                   std::uint64_t capacity, bool hasCpu = true);

    std::uint32_t numNodes() const
    {
        return static_cast<std::uint32_t>(nodes_.size());
    }

    const NumaNode &node(NodeId id) const { return nodes_.at(id); }

    /**
     * Route a physical address to its backing device.
     * @param paddr physical address
     * @param local out: device-local offset
     */
    MemoryDevice &
    route(Addr paddr, Addr &local) const
    {
        const NodeId n = nodeOfPaddr(paddr);
        CXLMEMO_ASSERT(n < nodes_.size(), "paddr to unknown node %u", n);
        local = localOfPaddr(paddr);
        return *nodes_[n].device;
    }

    /**
     * Allocate @p bytes with page placement per @p policy.
     * Fails (fatal) when the policy cannot be satisfied, mirroring a
     * strict-membind OOM.
     */
    NumaBuffer alloc(std::uint64_t bytes, const MemPolicy &policy);

    /** Bytes currently allocated on @p node. */
    std::uint64_t allocatedOn(NodeId node) const
    {
        return nodes_.at(node).allocatedBytes;
    }

    /**
     * Mark a node offline (hot-remove) or back online (re-add). A
     * re-added device comes back *empty*: its allocation counter is
     * reset, so new buffers reuse the capacity but nothing previously
     * resident survives.
     */
    void
    setNodeOnline(NodeId node, bool online)
    {
        NumaNode &n = nodes_.at(node);
        if (online && !n.online)
            n.allocatedBytes = 0; // capacity restored empty
        n.online = online;
    }

    bool nodeOnline(NodeId node) const { return nodes_.at(node).online; }

    /** Toggle frame scattering (see NumaNode::scatterFrames). */
    void
    setScatterFrames(NodeId node, bool on)
    {
        nodes_.at(node).scatterFrames = on;
    }

    /** Toggle the flushed-line handshake (see NumaNode). */
    void
    setFlushHandshake(NodeId node, bool on)
    {
        nodes_.at(node).flushHandshake = on;
    }

  private:
    /** Take one page from @p node; fatal if full. */
    Addr takePage(NodeId node);

    std::vector<NumaNode> nodes_;
};

} // namespace cxlmemo

#endif // CXLMEMO_NUMA_NUMA_HH
