/**
 * @file
 * `memo diff A.csv B.csv`: differential regression verdicts over two
 * finished runs.
 *
 * Both inputs are `--csv` outputs carrying an attribution tier
 * (machine runs with `--attrib` / `--mode report`, pool runs with
 * `--attrib`'s fabric tier). The diff matches rows by their identity
 * columns (target/op/threads/... for machine sweeps, host/port/role
 * for pools), averages the exact per-station queue/service stack over
 * the matched rows of each file, and names the station whose movement
 * explains the latency shift -- splitting it into queueing versus
 * service so the verdict distinguishes "the device got slower" from
 * "the device got more contended".
 *
 * Everything here is a pure function over the two CSV strings: no
 * files, no simulation, so tests pin fixture CSVs and assert the
 * verdict text/JSON byte-for-byte.
 */

#ifndef CXLMEMO_MEMO_DIFF_HH
#define CXLMEMO_MEMO_DIFF_HH

#include <cstddef>
#include <string>
#include <vector>

namespace cxlmemo
{
namespace memo
{

struct DiffOptions
{
    /** No-change band: |shift| below this is noise, not a verdict. */
    double thresholdPct = 5.0;

    /** Emit machine-readable JSON instead of the text report. */
    bool json = false;
};

/** One station's before/after stack contribution (mean ns/request
 *  over the matched rows; queue and service separately). */
struct StationDelta
{
    std::string station; //!< display name, e.g. "cxl.backend"
    double aQ = 0.0;     //!< run A queue ns
    double aS = 0.0;     //!< run A service ns
    double bQ = 0.0;     //!< run B queue ns
    double bS = 0.0;     //!< run B service ns
    double deltaQ = 0.0; //!< bQ - aQ
    double deltaS = 0.0; //!< bS - aS
    double deltaNs = 0.0; //!< deltaQ + deltaS
    double pct = 0.0;    //!< deltaNs as % of the station's A stack
};

/** The full comparison result. */
struct DiffReport
{
    bool ok = false;     //!< false: @ref error says why
    std::string error;

    std::size_t rows = 0; //!< matched identity keys
    std::string basis;    //!< "p99" or "mean_total"
    double aNs = 0.0;     //!< basis latency, run A
    double bNs = 0.0;     //!< basis latency, run B
    double shiftPct = 0.0;

    std::vector<StationDelta> stations; //!< sorted, biggest mover first

    std::string regime;  //!< "regression" | "improvement" | "no-change"
    std::string verdict; //!< one-line human explanation
};

/** Compare two `--csv` run outputs (full file contents, not paths). */
DiffReport diffRuns(const std::string &csvA, const std::string &csvB,
                    const DiffOptions &opts);

/** Human-readable multi-line report. */
std::string diffReportText(const DiffReport &r);

/** Machine-readable JSON document (for CI gating). */
std::string diffReportJson(const DiffReport &r);

} // namespace memo
} // namespace cxlmemo

#endif // CXLMEMO_MEMO_DIFF_HH
