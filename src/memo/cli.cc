#include "memo/cli.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "memo/diff.hh"
#include "sim/attribution.hh"
#include "sim/fabric_attrib.hh"
#include "sim/histogram.hh"
#include "sim/sweep.hh"
#include "sim/tailcap.hh"
#include "sim/trace.hh"

namespace cxlmemo
{
namespace memo
{

namespace
{

std::optional<Target>
parseTarget(const std::string &s)
{
    if (s == "ddr5-l8" || s == "local" || s == "dram")
        return Target::Ddr5Local;
    if (s == "ddr5-r1" || s == "remote")
        return Target::Ddr5Remote;
    if (s == "cxl")
        return Target::Cxl;
    return std::nullopt;
}

std::optional<MemOp::Kind>
parseOp(const std::string &s)
{
    if (s == "load" || s == "ld")
        return MemOp::Kind::Load;
    if (s == "store" || s == "st")
        return MemOp::Kind::Store;
    if (s == "nt-store" || s == "nt")
        return MemOp::Kind::NtStore;
    return std::nullopt;
}

std::optional<CliMode>
parseMode(const std::string &s)
{
    if (s == "latency")
        return CliMode::Latency;
    if (s == "seq")
        return CliMode::Seq;
    if (s == "rand")
        return CliMode::Rand;
    if (s == "chase")
        return CliMode::Chase;
    if (s == "copy")
        return CliMode::Copy;
    if (s == "loaded")
        return CliMode::Loaded;
    if (s == "report")
        return CliMode::Report;
    if (s == "drill")
        return CliMode::Drill;
    if (s == "pool")
        return CliMode::Pool;
    if (s == "diff")
        return CliMode::Diff;
    if (s == "help")
        return CliMode::Help;
    return std::nullopt;
}

std::optional<CopyPath>
parsePath(const std::string &s)
{
    if (s == "d2d")
        return CopyPath::D2D;
    if (s == "d2c")
        return CopyPath::D2C;
    if (s == "c2d")
        return CopyPath::C2D;
    if (s == "c2c")
        return CopyPath::C2C;
    return std::nullopt;
}

std::optional<CopyMethod>
parseMethod(const std::string &s)
{
    if (s == "memcpy")
        return CopyMethod::Memcpy;
    if (s == "movdir64b" || s == "movdir")
        return CopyMethod::Movdir64;
    if (s == "dsa-sync")
        return CopyMethod::DsaSync;
    if (s == "dsa" || s == "dsa-async")
        return CopyMethod::DsaAsync;
    return std::nullopt;
}

/** An empty or whitespace-only spec value means the shell ate the
 *  real one (unquoted substitution, stray trailing flag); every spec
 *  parser would accept it as "all defaults", silently running without
 *  the faults/QoS/chaos the user asked for. Reject it instead. */
bool
blankSpec(const std::string &s)
{
    for (char c : s)
        if (!std::isspace(static_cast<unsigned char>(c)))
            return false;
    return true;
}

} // namespace

std::optional<std::uint64_t>
parseSize(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    std::uint64_t mult = 1;
    std::string digits = text;
    const char suffix =
        static_cast<char>(std::toupper(static_cast<unsigned char>(
            text.back())));
    if (suffix == 'K' || suffix == 'M' || suffix == 'G') {
        mult = suffix == 'K' ? kiB : suffix == 'M' ? miB : giB;
        digits = text.substr(0, text.size() - 1);
    }
    if (digits.empty())
        return std::nullopt;
    constexpr std::uint64_t maxVal =
        std::numeric_limits<std::uint64_t>::max();
    std::uint64_t value = 0;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return std::nullopt;
        const auto digit = static_cast<std::uint64_t>(c - '0');
        if (value > (maxVal - digit) / 10)
            return std::nullopt; // overflow
        value = value * 10 + digit;
    }
    if (mult > 1 && value > maxVal / mult)
        return std::nullopt; // overflow
    return value * mult;
}

std::optional<std::vector<std::uint64_t>>
parseListSpec(const std::string &text)
{
    std::vector<std::uint64_t> out;
    const auto dash = text.find('-');
    if (dash != std::string::npos) {
        const auto lo = parseSize(text.substr(0, dash));
        const auto hi = parseSize(text.substr(dash + 1));
        if (!lo || !hi || *lo == 0 || *lo > *hi)
            return std::nullopt;
        // Powers-of-two steps from lo, plus the exact endpoint.
        for (std::uint64_t v = *lo; v < *hi; v *= 2)
            out.push_back(v);
        out.push_back(*hi);
        return out;
    }
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        const auto v = parseSize(item);
        if (!v)
            return std::nullopt;
        out.push_back(*v);
    }
    if (out.empty())
        return std::nullopt;
    return out;
}

std::string
cliUsage()
{
    return
        "MEMO: microbenchmark for CXL/NUMA memory characterization\n"
        "usage: memo --mode <mode> [options]\n"
        "\n"
        "modes:\n"
        "  latency   instruction latency probes (Fig. 2)\n"
        "  seq       sequential bandwidth sweep (Fig. 3)\n"
        "  rand      random-block bandwidth sweep (Fig. 5)\n"
        "  chase     pointer-chase WSS sweep (Fig. 2 right)\n"
        "  copy      data movement: memcpy/movdir64B/DSA (Fig. 4)\n"
        "  loaded    loaded-latency probe\n"
        "  report    bandwidth sweep with a per-point latency\n"
        "            breakdown table and bottleneck verdict\n"
        "  drill     deterministic failure drill on the CXL device:\n"
        "            link down/retrain, hot-remove/re-add and\n"
        "            poison-driven page offlining under a load flood,\n"
        "            reporting degraded-mode throughput, time-to-\n"
        "            detect, MTTR and data-at-risk\n"
        "  pool      multi-host pooled memory behind a CXL switch:\n"
        "            per-host windows from a shared pool, crash\n"
        "            fencing with capacity quarantine/scrub/re-grant,\n"
        "            port outage/retrain, noisy-neighbor attribution\n"
        "            and a machine-checked blast-radius isolation\n"
        "            invariant (per-host CSV tiers); with --attrib,\n"
        "            --trace-out and --metrics-out the fabric itself\n"
        "            is observable: per-port switch-station\n"
        "            attribution, cross-host Perfetto traces and a\n"
        "            cluster bottleneck verdict\n"
        "  diff      differential regression verdict over two runs:\n"
        "            memo diff A.csv B.csv loads two --csv outputs\n"
        "            (attribution and/or histogram tiers), computes\n"
        "            per-station deltas of the exact latency stack\n"
        "            and names the station that moved the tail\n"
        "            (--json for a machine-readable CI gate)\n"
        "\n"
        "options:\n"
        "  --target  ddr5-l8 | ddr5-r1 | cxl         (default ddr5-l8)\n"
        "  --op      load | store | nt-store         (default load)\n"
        "  --threads N | a,b,c | lo-hi               (default 1)\n"
        "  --block   SIZE | list/range (rand mode)   (default 4K)\n"
        "  --wss     SIZE | list/range (chase mode)\n"
        "  --path    d2d | d2c | c2d | c2c (copy)    (default d2c)\n"
        "  --method  memcpy | movdir64b | dsa-sync | dsa (copy)\n"
        "  --batch   N   DSA batch size              (default 1)\n"
        "  --prefetch    enable hardware prefetchers\n"
        "  --csv         machine-readable output\n"
        "  --seed    N   workload RNG seed           (default 42)\n"
        "  --jobs/-j N   host threads for sweep points (default 1;\n"
        "                0 = all cores; output identical for any N)\n"
        "  --sim-threads N   parallel intra-machine simulation:\n"
        "                domain-partitioned event queues on N worker\n"
        "                threads (default 0 = classic single-queue\n"
        "                engine; output byte-identical for any N >= 1;\n"
        "                incompatible with --trace-out)\n"
        "  --fault-spec  key=value[,...] RAS fault injection:\n"
        "                crc= poison= timeout= drain= dram= (rates in\n"
        "                [0,1]), stall-ns= timeout-ns= backoff-ns=\n"
        "                retries= degrade= seed=\n"
        "                e.g. --fault-spec crc=1e-4,poison=1e-6\n"
        "  --qos-spec    key=value[,...] CXL overload control:\n"
        "                credits= rd-credits= wr-credits= (M2S flow\n"
        "                control), policy=none|linear|aimd target=\n"
        "                ewma-ns= period-ns= ai= md= floor= slope=\n"
        "                burst= line-ns= (host throttle)\n"
        "                e.g. --qos-spec credits=24,policy=aimd\n"
        "  --chaos-spec  key=value[,...] failure-lifecycle schedule:\n"
        "                link-down-at-ns= retrain-ns= step-up-ns=\n"
        "                crc-burst= (CRC errors at degrade ceiling\n"
        "                that drop the link), remove-at-ns=\n"
        "                readd-at-ns= contain=poison|abort abort-ns=\n"
        "                offline-threshold= max-offline-pages= seed=\n"
        "                e.g. --chaos-spec link-down-at-ns=60000,\n"
        "                remove-at-ns=100000,readd-at-ns=130000\n"
        "  --pool-spec   key=value[,...] pooled-cluster scenario\n"
        "                (pool mode only; machine-level specs do not\n"
        "                apply): hosts= devices= capacity-mb=\n"
        "                window-mb= credits= arb=rr|fixed ops=\n"
        "                read-frac= mlp= aggressor= crash-host=\n"
        "                crash-at-ns= fence-check-ns= miss-threshold=\n"
        "                scrub-ns-per-mb= contain=poison|abort\n"
        "                poison-host= poison-every= port-down-host=\n"
        "                port-down-at-ns= retrain-ns= seed=\n"
        "                e.g. --pool-spec hosts=4,crash-host=1,\n"
        "                crash-at-ns=20000\n"
        "  --watchdog-ns N   watchdog snapshot interval in ns\n"
        "  --trace-out FILE  write sampled request-lifecycle spans as\n"
        "                Chrome trace-event JSON (Perfetto-loadable)\n"
        "  --trace-sample N | 1/N   trace every Nth request\n"
        "                (default 1/64 when tracing is enabled)\n"
        "  --metrics-out FILE   write the interval-metrics timeline\n"
        "                (long-format CSV: point,time_ns,metric,kind,\n"
        "                value)\n"
        "  --metrics-interval-ns N   metrics snapshot interval\n"
        "                (default 1000 when --metrics-out is given)\n"
        "  --histograms  per-component latency histograms (extra CSV\n"
        "                columns / report lines; in pool mode, per-host\n"
        "                lat_* columns over the read-latency histogram)\n"
        "  --attrib      exhaustive latency accounting: per-station\n"
        "                queue/service/utilization columns, the\n"
        "                demand-read latency stack and an automatic\n"
        "                bottleneck verdict (implied by --mode report)\n"
        "  --tail-trace K   worst-K outlier capture: every completed\n"
        "                demand read competes for the K worst per\n"
        "                regime class (local/remote/cxl/fabric), kept\n"
        "                with the full per-stage bracket -- tail_*\n"
        "                CSV columns, a dedicated tail track in\n"
        "                --trace-out, and the watchdog post-mortem\n"
        "                (works with --sim-threads and in pool mode)\n"
        "  --json        diff mode: machine-readable JSON verdict\n"
        "  --diff-threshold P   diff mode: no-change band in percent\n"
        "                (default 5)\n"
        "\n"
        "  --opt=value is accepted everywhere --opt value is.\n";
}

ObservabilityOptions
CliConfig::observability() const
{
    ObservabilityOptions obs;
    if (!traceOut.empty() || traceSampleEvery > 0)
        obs.traceSampleEvery = traceSampleEvery ? traceSampleEvery : 64;
    if (!metricsOut.empty() || metricsIntervalNs > 0) {
        obs.metricsInterval = ticksFromNs(static_cast<double>(
            metricsIntervalNs ? metricsIntervalNs : 1000));
    }
    obs.latencyHistograms = histograms;
    obs.attribution = attrib || mode == CliMode::Report;
    obs.tailK = tailK;
    return obs;
}

std::optional<CliConfig>
parseCli(const std::vector<std::string> &rawArgs, std::string &error)
{
    // Normalize "--opt=value" into "--opt value" so both spellings
    // work; values themselves (e.g. --fault-spec crc=1e-4) keep their
    // '=' because only tokens starting with "--" are split.
    std::vector<std::string> args;
    args.reserve(rawArgs.size());
    for (const std::string &a : rawArgs) {
        const auto eq = a.find('=');
        if (a.size() > 2 && a.compare(0, 2, "--") == 0
            && eq != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(a);
        }
    }

    CliConfig cfg;
    bool sawPoolSpec = false;
    bool sawJson = false;
    bool sawThreshold = false;
    auto need = [&](std::size_t i) -> std::optional<std::string> {
        if (i + 1 >= args.size()) {
            error = "missing value after " + args[i];
            return std::nullopt;
        }
        return args[i + 1];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--help" || a == "-h") {
            cfg.mode = CliMode::Help;
            return cfg;
        } else if (a == "--mode") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto m = parseMode(*v);
            if (!m) {
                error = "unknown mode: " + *v;
                return std::nullopt;
            }
            cfg.mode = *m;
            ++i;
        } else if (a == "--target") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto t = parseTarget(*v);
            if (!t) {
                error = "unknown target: " + *v;
                return std::nullopt;
            }
            cfg.target = *t;
            ++i;
        } else if (a == "--op") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto o = parseOp(*v);
            if (!o) {
                error = "unknown op: " + *v;
                return std::nullopt;
            }
            cfg.op = *o;
            ++i;
        } else if (a == "--threads") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto list = parseListSpec(*v);
            if (!list) {
                error = "bad thread spec: " + *v;
                return std::nullopt;
            }
            cfg.threads.clear();
            for (std::uint64_t t : *list) {
                if (t == 0 || t > 64) {
                    error = "thread count out of range";
                    return std::nullopt;
                }
                cfg.threads.push_back(static_cast<std::uint32_t>(t));
            }
            ++i;
        } else if (a == "--block") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto list = parseListSpec(*v);
            if (!list) {
                error = "bad block spec: " + *v;
                return std::nullopt;
            }
            for (std::uint64_t b : *list) {
                if (b < cachelineBytes || b % cachelineBytes != 0
                    || b > 64 * miB) {
                    error = "block size must be a multiple of 64 in "
                            "[64, 64M]: " + *v;
                    return std::nullopt;
                }
            }
            cfg.blockBytes = *list;
            ++i;
        } else if (a == "--wss") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto list = parseListSpec(*v);
            if (!list) {
                error = "bad wss spec: " + *v;
                return std::nullopt;
            }
            for (std::uint64_t w : *list) {
                // The pointer chase needs at least two lines; huge
                // sets would just swamp the simulated capacity.
                if (w < 2 * cachelineBytes || w % cachelineBytes != 0
                    || w > 8 * giB) {
                    error = "wss must be a multiple of 64 in "
                            "[128, 8G]: " + *v;
                    return std::nullopt;
                }
            }
            cfg.wssBytes = *list;
            ++i;
        } else if (a == "--path") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto p = parsePath(*v);
            if (!p) {
                error = "unknown path: " + *v;
                return std::nullopt;
            }
            cfg.path = *p;
            ++i;
        } else if (a == "--method") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto m = parseMethod(*v);
            if (!m) {
                error = "unknown method: " + *v;
                return std::nullopt;
            }
            cfg.method = *m;
            ++i;
        } else if (a == "--batch") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto b = parseSize(*v);
            if (!b || *b == 0 || *b > 1024) {
                error = "bad batch (1..1024): " + *v;
                return std::nullopt;
            }
            cfg.batch = static_cast<std::uint32_t>(*b);
            ++i;
        } else if (a == "--seed") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto s = parseSize(*v);
            if (!s) {
                error = "bad seed: " + *v;
                return std::nullopt;
            }
            cfg.seed = *s;
            ++i;
        } else if (a == "--jobs" || a == "-j") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto j = parseSize(*v);
            if (!j || *j > 256) {
                error = "bad jobs count: " + *v;
                return std::nullopt;
            }
            cfg.jobs = static_cast<std::uint32_t>(*j);
            ++i;
        } else if (a == "--sim-threads") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto s = parseSize(*v);
            if (!s || *s > 256) {
                // 0 is the documented classic-engine default and is
                // accepted explicitly (scripts spell out the matrix).
                error = "bad sim-threads count (0..256): " + *v;
                return std::nullopt;
            }
            cfg.simThreads = static_cast<std::uint32_t>(*s);
            ++i;
        } else if (a == "--fault-spec") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            if (blankSpec(*v)) {
                error = "empty fault-spec";
                return std::nullopt;
            }
            std::string ferr;
            auto fs = FaultSpec::parse(*v, ferr);
            if (!fs) {
                error = ferr;
                return std::nullopt;
            }
            cfg.faults = *fs;
            ++i;
        } else if (a == "--qos-spec") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            if (blankSpec(*v)) {
                error = "empty qos-spec";
                return std::nullopt;
            }
            std::string qerr;
            auto qs = QosSpec::parse(*v, qerr);
            if (!qs) {
                error = qerr;
                return std::nullopt;
            }
            cfg.qos = *qs;
            ++i;
        } else if (a == "--chaos-spec") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            if (blankSpec(*v)) {
                error = "empty chaos-spec";
                return std::nullopt;
            }
            std::string cerr;
            auto cs = ChaosSpec::parse(*v, cerr);
            if (!cs) {
                error = cerr;
                return std::nullopt;
            }
            cfg.chaos = *cs;
            ++i;
        } else if (a == "--pool-spec") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            if (blankSpec(*v)) {
                error = "empty pool-spec";
                return std::nullopt;
            }
            std::string perr;
            auto ps = PoolSpec::parse(*v, perr);
            if (!ps) {
                error = perr;
                return std::nullopt;
            }
            cfg.poolSpec = *ps;
            sawPoolSpec = true;
            ++i;
        } else if (a == "--watchdog") {
            if (cfg.watchdogUs == 0.0)
                cfg.watchdogUs = 100.0;
        } else if (a == "--watchdog-ns") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto n = parseSize(*v);
            if (!n || *n == 0) {
                error = "bad watchdog interval (ns): " + *v;
                return std::nullopt;
            }
            cfg.watchdogUs = static_cast<double>(*n) / 1000.0;
        } else if (a == "--trace-out") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            cfg.traceOut = *v;
            ++i;
        } else if (a == "--trace-sample") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            // "N" and "1/N" both mean: trace every Nth request.
            std::string n = *v;
            if (n.rfind("1/", 0) == 0)
                n = n.substr(2);
            auto s = parseSize(n);
            if (!s || *s == 0) {
                error = "bad trace sample rate (N or 1/N): " + *v;
                return std::nullopt;
            }
            cfg.traceSampleEvery = *s;
            ++i;
        } else if (a == "--metrics-out") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            cfg.metricsOut = *v;
            ++i;
        } else if (a == "--metrics-interval-ns") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto n = parseSize(*v);
            if (!n || *n == 0) {
                error = "bad metrics interval (ns): " + *v;
                return std::nullopt;
            }
            cfg.metricsIntervalNs = *n;
            ++i;
        } else if (a == "--histograms") {
            cfg.histograms = true;
        } else if (a == "--attrib") {
            cfg.attrib = true;
        } else if (a == "--tail-trace") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto k = parseSize(*v);
            if (!k || *k == 0 || *k > 1024) {
                error = "bad tail-trace depth (1..1024): " + *v;
                return std::nullopt;
            }
            cfg.tailK = static_cast<std::uint32_t>(*k);
            ++i;
        } else if (a == "--json") {
            cfg.diffJson = true;
            sawJson = true;
        } else if (a == "--diff-threshold") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            char *end = nullptr;
            const double t = std::strtod(v->c_str(), &end);
            if (v->empty() || end == nullptr || *end != '\0'
                || !(t >= 0.0) || t > 100.0) {
                error = "bad diff-threshold (percent, 0..100): " + *v;
                return std::nullopt;
            }
            cfg.diffThresholdPct = t;
            sawThreshold = true;
            ++i;
        } else if (a == "--prefetch") {
            cfg.prefetch = true;
        } else if (a == "--csv") {
            cfg.csv = true;
        } else if (a == "diff" && i == 0) {
            // `memo diff A.csv B.csv` -- the comparison verb reads
            // better up front than `--mode diff`.
            cfg.mode = CliMode::Diff;
        } else if (cfg.mode == CliMode::Diff && !a.empty()
                   && a[0] != '-') {
            if (cfg.diffA.empty()) {
                cfg.diffA = a;
            } else if (cfg.diffB.empty()) {
                cfg.diffB = a;
            } else {
                error = "diff takes exactly two files: " + a;
                return std::nullopt;
            }
        } else {
            error = "unknown argument: " + a;
            return std::nullopt;
        }
    }
    if (cfg.mode == CliMode::Chase && cfg.wssBytes.empty()) {
        error = "chase mode requires --wss";
        return std::nullopt;
    }
    // Pool mode carries every disturbance inside the pool spec: a
    // stray machine-level spec would silently apply to nothing.
    if (cfg.mode == CliMode::Pool
        && (cfg.faults.enabled() || cfg.qos.enabled()
            || cfg.chaos.enabled())) {
        error = "pool mode takes disturbances via --pool-spec only";
        return std::nullopt;
    }
    if (sawPoolSpec && cfg.mode != CliMode::Pool) {
        error = "--pool-spec requires --mode pool";
        return std::nullopt;
    }
    // Flag matrix, rejected up front with one line instead of a
    // mid-run throw: request-lifecycle tracing marks spans across
    // domains, so it needs the classic single-queue engine in every
    // mode. Worst-K tail capture (--tail-trace) is completion-order
    // independent and works on both engines. Diff mode compares
    // finished runs -- it simulates nothing, so every simulation
    // flag is a mistake worth naming rather than ignoring.
    if (cfg.simThreads > 0
        && (!cfg.traceOut.empty() || cfg.traceSampleEvery > 0)) {
        error = "--trace-out/--trace-sample require --sim-threads 0";
        return std::nullopt;
    }
    if (cfg.mode == CliMode::Diff) {
        if (cfg.diffA.empty() || cfg.diffB.empty()) {
            error = "diff requires two CSV files "
                    "(memo diff A.csv B.csv)";
            return std::nullopt;
        }
        if (cfg.tailK > 0 || cfg.histograms || cfg.attrib
            || !cfg.traceOut.empty() || cfg.traceSampleEvery > 0
            || !cfg.metricsOut.empty() || cfg.metricsIntervalNs > 0
            || cfg.faults.enabled() || cfg.qos.enabled()
            || cfg.chaos.enabled() || cfg.watchdogUs > 0.0
            || cfg.simThreads > 0) {
            error = "diff mode compares finished runs and takes no "
                    "simulation flags";
            return std::nullopt;
        }
    } else {
        if (sawJson) {
            error = "--json requires diff mode";
            return std::nullopt;
        }
        if (sawThreshold) {
            error = "--diff-threshold requires diff mode";
            return std::nullopt;
        }
    }
    return cfg;
}

namespace
{

const char *
opName(MemOp::Kind k)
{
    switch (k) {
      case MemOp::Kind::Load:
        return "load";
      case MemOp::Kind::Store:
        return "store";
      case MemOp::Kind::NtStore:
        return "nt-store";
      default:
        return "?";
    }
}

/** One sweep-point result plus its machine's RAS/QoS counters and
 *  flight-recorder collections (indexed by sweep position, so output
 *  is identical for any --jobs value). */
struct PointResult
{
    double value = 0.0;
    LoadedLatencyDist dist;  //!< loaded mode with extra columns only
    RasStats ras;
    QosStats qos;
    LatencyHistogram hist;   //!< target-device access latency
    AttribSnapshot attrib;   //!< latency-accounting roll-up
    TailCapture tailcap;     //!< worst-K outliers (exact merge)
    std::string traceJson;   //!< comma-separated Chrome trace events
    std::string metricsRows; //!< long-format metrics timeline rows
};

const char *
rasCsvColumns()
{
    return ",crc_errors,link_retries,timeouts,host_retries,"
           "drain_stalls,dram_stalls,poison_injected,"
           "poison_consumed,poison_delivered,poison_contained,"
           "degradations";
}

const char *
qosCsvColumns()
{
    return ",credit_stalls,credit_stall_ns,throttle_ns,devload,"
           "rate,ledger_ok";
}

const char *
histCsvColumns()
{
    return ",lat_n,lat_avg_ns,lat_p50_ns,lat_p99_ns,lat_max_ns";
}

const char *
tailCsvColumns()
{
    return ",tail_k,tail_n,tail_considered,tail_worst_ns,tail_kth_ns,"
           "tail_regime,tail_stage,tail_stage_ns,tail_stack_exact";
}

/** Per-station queue/service/utilization triplets plus the
 *  stack summary -- one fragment per StationId, in enum order. */
std::string
attribCsvColumns()
{
    std::string cols;
    for (std::size_t i = 0; i < numStations; ++i) {
        const std::string c = stationColumn(static_cast<StationId>(i));
        cols += ",attrib_" + c + "_q_ns,attrib_" + c + "_s_ns,attrib_"
                + c + "_util";
    }
    cols += ",attrib_reqs,attrib_total_ns,attrib_other_ns,"
            "attrib_little_ok,attrib_bottleneck";
    return cols;
}

/** Fabric-attribution tier of the pool CSV: per-port (== per-row)
 *  switch-station triplets plus the cross-fabric stack summary, one
 *  fragment per FabricStation in enum order. */
std::string
fabricCsvColumns()
{
    std::string cols;
    for (std::size_t i = 0; i < numFabricStations; ++i) {
        const std::string c =
            fabricStationColumn(static_cast<FabricStation>(i));
        cols += "," + c + "_q_ns," + c + "_s_ns," + c + "_util";
    }
    cols += ",fabric_reqs,fabric_total_ns,fabric_other_ns,"
            "fabric_little_ok,fabric_decomp_exact";
    return cols;
}

void
printFabricCsvCells(const FabricSnapshot &snap, std::uint32_t port)
{
    const FabricPortSnap &fp = snap.ports[port];
    for (std::size_t i = 0; i < numFabricStations; ++i) {
        const auto id = static_cast<FabricStation>(i);
        std::printf(",%.2f,%.2f,%.4f", fp.componentQueueNs(id),
                    fp.componentServiceNs(id),
                    fp.util(id, snap.elapsed));
    }
    std::printf(",%llu,%.2f,%.2f,%d,%d",
                (unsigned long long)fp.reqCount, fp.avgTotalNs(),
                fp.otherNs(), fp.littleOk(snap.elapsed) ? 1 : 0,
                fp.decompositionExact() ? 1 : 0);
}

/** The device hosting @p target on @p m (nullopt target: merge every
 *  device the machine has -- the copy mode touches several). */
void
mergeHistograms(Machine &m, std::optional<Target> target,
                LatencyHistogram &out)
{
    auto add = [&out](const LatencyHistogram *h) {
        if (h)
            out.merge(*h);
    };
    if (!target) {
        add(m.localMem().latencyHistogram());
        if (m.hasRemote())
            add(m.remoteMem().latencyHistogram());
        if (m.hasCxl())
            add(m.cxlDev().latencyHistogram());
        return;
    }
    switch (*target) {
      case Target::Ddr5Local:
        add(m.localMem().latencyHistogram());
        break;
      case Target::Ddr5Remote:
        if (m.hasRemote())
            add(m.remoteMem().latencyHistogram());
        break;
      case Target::Cxl:
        if (m.hasCxl())
            add(m.cxlDev().latencyHistogram());
        break;
    }
}

/**
 * Per-point harvest, invoked on the experiment machine right before
 * it is destroyed: RAS/QoS counters (modes whose runner does not
 * export them), trace events, the metrics timeline and the latency
 * histogram. @p pid distinguishes sweep points in the merged trace.
 */
void
collectPoint(Machine &m, std::optional<Target> target, int pid,
             bool collectObs, PointResult &p)
{
    if (const RasStats *rs = m.rasStats())
        p.ras = *rs;
    if (auto qs = m.qosStats())
        p.qos = *qs;
    // Merge (not assign): a point that builds several machines (the
    // latency probes) accumulates one exact roll-up. attribSnapshot()
    // folds in the per-domain shard boards of the parallel engine.
    if (m.attribution())
        p.attrib.merge(m.attribSnapshot());
    if (!collectObs)
        return;
    if (RequestTracer *tr = m.tracer()) {
        bool first = p.traceJson.empty();
        tr->appendTraceEvents(p.traceJson, pid, first);
    }
    if (TailCapture *tc = m.tailCapture()) {
        // Exact associative merge: a point that builds several
        // machines accumulates one top-K union; the outliers also
        // land on the trace's dedicated tail track when exported.
        p.tailcap.merge(*tc);
        bool first = p.traceJson.empty();
        tc->appendTraceEvents(p.traceJson, pid, first);
    }
    if (MetricsRegistry *mr = m.metrics()) {
        m.flushMetrics();
        p.metricsRows = mr->rows();
    }
    mergeHistograms(m, target, p.hist);
}

void
printRasCsvCells(const RasStats &rs)
{
    std::printf(",%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
                "%llu",
                (unsigned long long)rs.crcErrors,
                (unsigned long long)rs.linkRetries,
                (unsigned long long)rs.timeouts,
                (unsigned long long)rs.hostRetries,
                (unsigned long long)rs.drainStalls,
                (unsigned long long)rs.dramStalls,
                (unsigned long long)rs.poisonInjected,
                (unsigned long long)rs.poisonConsumed,
                (unsigned long long)rs.poisonDelivered,
                (unsigned long long)rs.poisonContained,
                (unsigned long long)rs.linkDegradations);
}

void
printRasLine(const RasStats &rs)
{
    std::printf("  ras: %s\n", rs.summary().c_str());
}

void
printQosCsvCells(const QosStats &qs)
{
    std::printf(",%llu,%llu,%llu,%.3f,%.3f,%d",
                (unsigned long long)(qs.rdCreditStalls
                                     + qs.wrCreditStalls),
                (unsigned long long)(qs.creditStallTicks / tickPerNs),
                (unsigned long long)(qs.throttleDelayTicks / tickPerNs),
                qs.devLoad, qs.rate, qs.ledgerOk ? 1 : 0);
}

void
printQosLine(const QosStats &qs)
{
    std::printf("  qos: %s\n", qs.summary().c_str());
}

/** @p toNs converts the histogram's recorded unit to ns: machine
 *  device histograms record ticks (pass 1/tickPerNs), the pool's
 *  per-host read histograms record ns already (pass 1.0). */
void
printHistCsvCells(const LatencyHistogram &h, double toNs)
{
    std::printf(",%llu,%.1f,%.1f,%.1f,%.1f",
                (unsigned long long)h.count(), h.mean() * toNs,
                h.p50() * toNs, h.p99() * toNs,
                static_cast<double>(h.max()) * toNs);
}

void
printHistLine(const LatencyHistogram &h, double toNs)
{
    if (h.empty()) {
        std::printf("  lat: no samples\n");
        return;
    }
    std::printf("  lat: n=%llu  avg %.1f  p50 %.1f  p99 %.1f  "
                "max %.1f ns\n",
                (unsigned long long)h.count(), h.mean() * toNs,
                h.p50() * toNs, h.p99() * toNs,
                static_cast<double>(h.max()) * toNs);
}

void
printTailCsvCells(const TailSummary &t)
{
    std::printf(",%u,%llu,%llu,%.1f,%.1f,%s,%s,%.1f,%d", t.k,
                (unsigned long long)t.held,
                (unsigned long long)t.considered, t.worstNs, t.kthNs,
                t.regime.c_str(), t.stage.c_str(), t.stageNs,
                t.stackExact ? 1 : 0);
}

void
printTailLine(const TailSummary &t)
{
    if (t.held == 0) {
        std::printf("  tail: no demand reads considered\n");
        return;
    }
    std::printf("  tail: worst %.1f ns [%s] worst_in=%s(%.1f ns)  "
                "kth %.1f ns  held %llu (K=%u/class)  "
                "considered %llu  stack_exact=%d\n",
                t.worstNs, t.regime.c_str(), t.stage.c_str(),
                t.stageNs, t.kthNs, (unsigned long long)t.held, t.k,
                (unsigned long long)t.considered,
                t.stackExact ? 1 : 0);
}

void
printAttribCsvCells(const AttribSnapshot &a)
{
    for (std::size_t i = 0; i < numStations; ++i) {
        const auto id = static_cast<StationId>(i);
        std::printf(",%.2f,%.2f,%.4f", a.componentQueueNs(id),
                    a.componentServiceNs(id), a.util(id));
    }
    std::printf(",%llu,%.2f,%.2f,%d,%s",
                (unsigned long long)a.reqCount, a.avgTotalNs(),
                a.otherNs(), a.littleOk() ? 1 : 0,
                stationName(a.bottleneck()));
}

void
printAttribLine(const AttribSnapshot &a)
{
    std::printf("  attrib: %s\n", a.verdict().c_str());
}

/** The full optional cell set: every group, zeros when inactive, so
 *  rows always match csvHeader()'s stable superset. The attribution
 *  group is appended only when enabled, keeping pre-attribution
 *  configurations byte-identical. */
void
printExtraCsvCells(const PointResult &p, bool attrib, bool tail)
{
    printRasCsvCells(p.ras);
    printQosCsvCells(p.qos);
    printHistCsvCells(p.hist, 1.0 / tickPerNs);
    if (attrib)
        printAttribCsvCells(p.attrib);
    if (tail)
        printTailCsvCells(p.tailcap.summary());
}

void
printExtraLines(const PointResult &p, bool ras, bool qos, bool hist,
                bool attrib, bool tail)
{
    if (ras)
        printRasLine(p.ras);
    if (qos)
        printQosLine(p.qos);
    if (hist)
        printHistLine(p.hist, 1.0 / tickPerNs);
    if (attrib)
        printAttribLine(p.attrib);
    if (tail)
        printTailLine(p.tailcap.summary());
}

/** Merge per-point trace fragments into one Chrome trace-event JSON
 *  document ({"traceEvents": [...]}). */
bool
writeTraceFile(const std::string &path,
               const std::vector<PointResult> &pts)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "memo: cannot write trace file %s\n",
                     path.c_str());
        return false;
    }
    std::fputs("{\"traceEvents\":[", f);
    bool first = true;
    for (const PointResult &p : pts) {
        if (p.traceJson.empty())
            continue;
        if (!first)
            std::fputs(",\n", f);
        std::fputs(p.traceJson.c_str(), f);
        first = false;
    }
    std::fputs("]}\n", f);
    std::fclose(f);
    return true;
}

/** Concatenate per-point metrics timelines, prefixing each row with
 *  its sweep-point index (schema: point,time_ns,metric,kind,value). */
bool
writeMetricsFile(const std::string &path,
                 const std::vector<PointResult> &pts)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "memo: cannot write metrics file %s\n",
                     path.c_str());
        return false;
    }
    std::fprintf(f, "point,%s\n", MetricsRegistry::csvHeader());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const std::string &rows = pts[i].metricsRows;
        std::size_t pos = 0;
        while (pos < rows.size()) {
            std::size_t nl = rows.find('\n', pos);
            if (nl == std::string::npos)
                nl = rows.size();
            std::fprintf(f, "%zu,%.*s\n", i,
                         static_cast<int>(nl - pos), rows.c_str() + pos);
            pos = nl + 1;
        }
    }
    std::fclose(f);
    return true;
}

/** End-of-run file output shared by every mode. */
int
finishRun(const CliConfig &cfg, const std::vector<PointResult> &pts)
{
    bool ok = true;
    if (!cfg.traceOut.empty())
        ok = writeTraceFile(cfg.traceOut, pts) && ok;
    if (!cfg.metricsOut.empty())
        ok = writeMetricsFile(cfg.metricsOut, pts) && ok;
    return ok ? 0 : 1;
}

} // namespace

std::string
csvHeader(CliMode mode, bool ras, bool qos, bool hist, bool attrib,
          bool tail)
{
    std::string base;
    const bool extras = ras || qos || hist || attrib || tail;
    switch (mode) {
      case CliMode::Latency:
        base = "target,ld,st+wb,nt-st,ptr-chase";
        break;
      case CliMode::Seq:
        base = "target,op,threads,gbps";
        break;
      case CliMode::Rand:
        base = "target,op,block,threads,gbps";
        break;
      case CliMode::Chase:
        base = "target,wss,ns";
        break;
      case CliMode::Copy:
        base = "path,method,batch,gbps";
        break;
      case CliMode::Loaded:
        // With any extra group active the loaded probe reports the
        // windowed distribution (tails are the interesting signal).
        base = extras ? "target,threads,avg_ns,p50_ns,p99_ns"
                      : "target,threads,ns";
        break;
      case CliMode::Report:
        base = "target,op,threads,gbps";
        break;
      case CliMode::Drill:
        base = "threads,healthy_gbps,degraded_gbps,recovered_gbps,"
               "link_detect_ns,link_mttr_ns,remove_detect_ns,"
               "remove_mttr_ns,data_at_risk_bytes,evacuated_bytes,"
               "pages_offlined,offlined_bytes,migrated_bytes,"
               "aborted_reads,aborted_writes,invariant_ok";
        break;
      case CliMode::Pool: {
        // Per-host tiers plus run-level fencing/isolation columns
        // (repeated on every row so the file is self-contained). Pool
        // mode rejects the machine-level specs; --attrib appends the
        // fabric tier (each row is a switch port) and nothing else
        // moves, so attrib-off output stays byte-identical.
        std::string pool =
            "host,port,role,ops,gbps,read_avg_ns,read_p99_ns,"
            "poisoned,aborted,fenced,granted_mb,digest,"
            "time_to_fence_ns,quarantined_mb,recovered_mb,"
            "ledger_ok,isolation_ok,verdict";
        if (hist)
            pool += histCsvColumns();
        if (tail)
            pool += tailCsvColumns();
        if (attrib)
            pool += fabricCsvColumns();
        return pool;
      }
      case CliMode::Diff:
      case CliMode::Help:
        return "";
    }
    if (extras)
        base += std::string(rasCsvColumns()) + qosCsvColumns()
                + histCsvColumns();
    if (attrib || mode == CliMode::Report)
        base += attribCsvColumns();
    if (tail)
        base += tailCsvColumns();
    return base;
}

namespace
{

int
runCli(const CliConfig &cfg)
{
    Options opts;
    opts.prefetch = cfg.prefetch;
    opts.seed = cfg.seed;
    opts.faults = cfg.faults;
    opts.qos = cfg.qos;
    opts.chaos = cfg.chaos;
    opts.watchdogUs = cfg.watchdogUs;
    opts.simThreads = cfg.simThreads;
    opts.obs = cfg.observability();
    // The drill always has RAS counters (it arms a poison stream for
    // the offlining leg even with no --fault-spec), so its CSV rows
    // always carry the extra groups.
    const bool ras = cfg.faults.enabled() || cfg.mode == CliMode::Drill;
    const bool qos = cfg.qos.enabled();
    const bool hist = cfg.histograms;
    const bool attrib = opts.obs.attribution;
    const bool tail = opts.obs.tailK > 0;
    const bool extras = ras || qos || hist || attrib || tail;
    const bool collect = opts.obs.enabled();

    // Per-point options: every sweep point gets its own hook writing
    // into that point's PointResult, so SweepRunner workers never
    // share mutable state and output is --jobs-independent.
    auto hooked = [&](PointResult &p, int pid,
                      std::optional<Target> target) {
        Options o = opts;
        if (collect || extras) {
            o.onMachineDone = [&p, pid, target, collect](Machine &m) {
                collectPoint(m, target, pid, collect, p);
            };
        }
        return o;
    };

    auto csvHeaderLine = [&] {
        std::printf("%s\n",
                    csvHeader(cfg.mode, ras, qos, hist, attrib,
                              tail).c_str());
    };

    switch (cfg.mode) {
      case CliMode::Help:
        std::fputs(cliUsage().c_str(), stdout);
        return 0;

      case CliMode::Latency: {
        std::vector<PointResult> pts(1);
        PointResult &p = pts[0];
        const Options o = hooked(p, 0, cfg.target);
        const LatencyResult r = runLatency(cfg.target, o, &p.ras);
        if (cfg.csv) {
            csvHeaderLine();
            std::printf("%s,%.1f,%.1f,%.1f,%.1f",
                        targetName(cfg.target), r.loadNs, r.storeWbNs,
                        r.ntStoreNs, r.ptrChaseNs);
            if (extras)
                printExtraCsvCells(p, attrib, tail);
            std::printf("\n");
        } else {
            std::printf("%s latency (ns): ld %.1f  st+wb %.1f  "
                        "nt-st %.1f  ptr-chase %.1f\n",
                        targetName(cfg.target), r.loadNs, r.storeWbNs,
                        r.ntStoreNs, r.ptrChaseNs);
            printExtraLines(p, ras, qos, hist, attrib, tail);
        }
        return finishRun(cfg, pts);
      }

      case CliMode::Seq: {
        SweepRunner pool(cfg.jobs);
        const auto pts = pool.map(cfg.threads.size(),
                                  [&](std::size_t i) {
            PointResult p;
            const Options o = hooked(p, static_cast<int>(i),
                                     cfg.target);
            p.value = runSeqBandwidth(cfg.target, cfg.op,
                                      cfg.threads[i], o, &p.ras,
                                      &p.qos);
            return p;
        });
        if (cfg.csv)
            csvHeaderLine();
        for (std::size_t i = 0; i < cfg.threads.size(); ++i) {
            const std::uint32_t t = cfg.threads[i];
            if (cfg.csv) {
                std::printf("%s,%s,%u,%.2f", targetName(cfg.target),
                            opName(cfg.op), t, pts[i].value);
                if (extras)
                    printExtraCsvCells(pts[i], attrib, tail);
                std::printf("\n");
            } else {
                std::printf("%s %s seq, %2u threads: %7.2f GB/s\n",
                            targetName(cfg.target), opName(cfg.op), t,
                            pts[i].value);
                printExtraLines(pts[i], ras, qos, hist, attrib, tail);
            }
        }
        return finishRun(cfg, pts);
      }

      case CliMode::Rand: {
        struct Point
        {
            std::uint64_t block;
            std::uint32_t threads;
        };
        std::vector<Point> points;
        for (std::uint64_t b : cfg.blockBytes)
            for (std::uint32_t t : cfg.threads)
                points.push_back({b, t});
        SweepRunner pool(cfg.jobs);
        const auto pts = pool.map(points.size(), [&](std::size_t i) {
            PointResult p;
            const Options o = hooked(p, static_cast<int>(i),
                                     cfg.target);
            p.value = runRandBandwidth(cfg.target, cfg.op,
                                       points[i].threads,
                                       points[i].block, o, &p.ras,
                                       &p.qos);
            return p;
        });
        if (cfg.csv)
            csvHeaderLine();
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (cfg.csv) {
                std::printf("%s,%s,%llu,%u,%.2f",
                            targetName(cfg.target), opName(cfg.op),
                            (unsigned long long)points[i].block,
                            points[i].threads, pts[i].value);
                if (extras)
                    printExtraCsvCells(pts[i], attrib, tail);
                std::printf("\n");
            } else {
                std::printf("%s %s rand %6lluB blocks, %2u "
                            "threads: %7.2f GB/s\n",
                            targetName(cfg.target), opName(cfg.op),
                            (unsigned long long)points[i].block,
                            points[i].threads, pts[i].value);
                printExtraLines(pts[i], ras, qos, hist, attrib, tail);
            }
        }
        return finishRun(cfg, pts);
      }

      case CliMode::Chase: {
        // One machine per WSS point (single-element sweeps) so the
        // decomposition -- and therefore the output -- is the same for
        // every job count.
        SweepRunner pool(cfg.jobs);
        const auto pts = pool.map(cfg.wssBytes.size(),
                                  [&](std::size_t i) {
            PointResult p;
            const Options o = hooked(p, static_cast<int>(i),
                                     cfg.target);
            p.value = runPtrChaseWssSweep(cfg.target, {cfg.wssBytes[i]},
                                          o, &p.ras)[0];
            return p;
        });
        if (cfg.csv)
            csvHeaderLine();
        for (std::size_t i = 0; i < cfg.wssBytes.size(); ++i) {
            if (cfg.csv) {
                std::printf("%s,%llu,%.1f", targetName(cfg.target),
                            (unsigned long long)cfg.wssBytes[i],
                            pts[i].value);
                if (extras)
                    printExtraCsvCells(pts[i], attrib, tail);
                std::printf("\n");
            } else {
                std::printf("%s chase wss %10llu B: %7.1f ns\n",
                            targetName(cfg.target),
                            (unsigned long long)cfg.wssBytes[i],
                            pts[i].value);
                printExtraLines(pts[i], ras, qos, hist, attrib, tail);
            }
        }
        return finishRun(cfg, pts);
      }

      case CliMode::Copy: {
        std::vector<PointResult> pts(1);
        PointResult &p = pts[0];
        // The copy path touches several devices; merge them all into
        // the histogram (nullopt target).
        const Options o = hooked(p, 0, std::nullopt);
        p.value = runCopyBandwidth(cfg.path, cfg.method, cfg.batch,
                                   4 * kiB, o);
        if (cfg.csv) {
            csvHeaderLine();
            std::printf("%s,%s,%u,%.2f", copyPathName(cfg.path),
                        copyMethodName(cfg.method), cfg.batch,
                        p.value);
            if (extras)
                printExtraCsvCells(p, attrib, tail);
            std::printf("\n");
        } else {
            std::printf("%s via %s (batch %u): %.2f GB/s\n",
                        copyPathName(cfg.path),
                        copyMethodName(cfg.method), cfg.batch,
                        p.value);
            printExtraLines(p, ras, qos, hist, attrib, tail);
        }
        return finishRun(cfg, pts);
      }

      case CliMode::Loaded: {
        SweepRunner pool(cfg.jobs);
        if (extras) {
            // With any extra column group active the interesting
            // signal is the *tail*: report the windowed distribution
            // instead of one long-run average.
            const auto pts = pool.map(cfg.threads.size(),
                                      [&](std::size_t i) {
                PointResult p;
                const Options o = hooked(p, static_cast<int>(i),
                                         cfg.target);
                p.dist = runLoadedLatencyDist(cfg.target,
                                              cfg.threads[i], o);
                p.ras = p.dist.ras;
                p.qos = p.dist.qos;
                return p;
            });
            if (cfg.csv)
                csvHeaderLine();
            for (std::size_t i = 0; i < cfg.threads.size(); ++i) {
                const std::uint32_t t = cfg.threads[i];
                const LoadedLatencyDist &d = pts[i].dist;
                if (cfg.csv) {
                    std::printf("%s,%u,%.1f,%.1f,%.1f",
                                targetName(cfg.target), t, d.avgNs,
                                d.p50Ns, d.p99Ns);
                    printExtraCsvCells(pts[i], attrib, tail);
                    std::printf("\n");
                } else {
                    std::printf("%s loaded latency, %2u threads: "
                                "avg %7.1f  p50 %7.1f  p99 %7.1f ns\n",
                                targetName(cfg.target), t, d.avgNs,
                                d.p50Ns, d.p99Ns);
                    printExtraLines(pts[i], ras, qos, hist, attrib, tail);
                }
            }
            return finishRun(cfg, pts);
        }
        const auto pts = pool.map(cfg.threads.size(),
                                  [&](std::size_t i) {
            PointResult p;
            const Options o = hooked(p, static_cast<int>(i),
                                     cfg.target);
            p.value = runLoadedLatency(cfg.target, cfg.threads[i], o,
                                       nullptr, &p.qos);
            return p;
        });
        if (cfg.csv)
            csvHeaderLine();
        for (std::size_t i = 0; i < cfg.threads.size(); ++i) {
            const std::uint32_t t = cfg.threads[i];
            if (cfg.csv)
                std::printf("%s,%u,%.1f\n", targetName(cfg.target), t,
                            pts[i].value);
            else
                std::printf("%s loaded latency, %2u threads: %7.1f "
                            "ns\n",
                            targetName(cfg.target), t, pts[i].value);
        }
        return finishRun(cfg, pts);
      }

      case CliMode::Report: {
        // Sequential-bandwidth sweep (the Fig. 3 shape) with
        // attribution forced on: each point prints its bandwidth, the
        // full per-station breakdown table and a bottleneck verdict.
        SweepRunner pool(cfg.jobs);
        const auto pts = pool.map(cfg.threads.size(),
                                  [&](std::size_t i) {
            PointResult p;
            const Options o = hooked(p, static_cast<int>(i),
                                     cfg.target);
            p.value = runSeqBandwidth(cfg.target, cfg.op,
                                      cfg.threads[i], o, &p.ras,
                                      &p.qos);
            return p;
        });
        if (cfg.csv)
            csvHeaderLine();
        for (std::size_t i = 0; i < cfg.threads.size(); ++i) {
            const std::uint32_t t = cfg.threads[i];
            if (cfg.csv) {
                std::printf("%s,%s,%u,%.2f", targetName(cfg.target),
                            opName(cfg.op), t, pts[i].value);
                printExtraCsvCells(pts[i], attrib, tail);
                std::printf("\n");
            } else {
                std::printf("%s %s seq, %2u threads: %7.2f GB/s\n",
                            targetName(cfg.target), opName(cfg.op), t,
                            pts[i].value);
                printExtraLines(pts[i], ras, qos, hist, false, tail);
                std::fputs(pts[i].attrib.table().c_str(), stdout);
            }
        }
        return finishRun(cfg, pts);
      }

      case CliMode::Drill: {
        // One drill per thread-count point; each point is its own
        // Machine, so SweepRunner keeps --jobs output-independent.
        struct DrillPoint
        {
            PointResult p;
            DrillResult d;
        };
        SweepRunner pool(cfg.jobs);
        const auto pts = pool.map(cfg.threads.size(),
                                  [&](std::size_t i) {
            DrillPoint dp;
            const Options o = hooked(dp.p, static_cast<int>(i),
                                     Target::Cxl);
            dp.d = runDrill(cfg.threads[i], o);
            dp.p.ras = dp.d.ras;
            return dp;
        });
        if (cfg.csv)
            csvHeaderLine();
        std::vector<PointResult> outs;
        outs.reserve(pts.size());
        for (std::size_t i = 0; i < cfg.threads.size(); ++i) {
            const DrillResult &d = pts[i].d;
            const ChaosStats &c = d.chaos;
            if (cfg.csv) {
                std::printf("%u,%.2f,%.2f,%.2f,%.1f,%.1f,%.1f,%.1f,"
                            "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%d",
                            cfg.threads[i], d.healthyGBps,
                            d.degradedGBps, d.recoveredGBps,
                            d.linkDetectNs, d.linkMttrNs,
                            d.removeDetectNs, d.removeMttrNs,
                            (unsigned long long)c.dataAtRiskBytes,
                            (unsigned long long)d.evacuatedBytes,
                            (unsigned long long)c.pagesOfflined,
                            (unsigned long long)c.offlinedBytes,
                            (unsigned long long)c.migratedBytes,
                            (unsigned long long)c.abortedReads,
                            (unsigned long long)c.abortedWrites,
                            d.invariantOk ? 1 : 0);
                printExtraCsvCells(pts[i].p, attrib, tail);
                std::printf("\n");
            } else {
                std::printf("CXL drill, %2u threads:\n",
                            cfg.threads[i]);
                std::printf("  throughput: healthy %.2f -> degraded "
                            "%.2f -> recovered %.2f GB/s\n",
                            d.healthyGBps, d.degradedGBps,
                            d.recoveredGBps);
                if (c.linkDowns > 0) {
                    std::printf("  link: detected down in %.1f ns, "
                                "full width back after %.1f ns "
                                "(%llu retrain%s, %llu step-up%s)\n",
                                d.linkDetectNs, d.linkMttrNs,
                                (unsigned long long)c.retrains,
                                c.retrains == 1 ? "" : "s",
                                (unsigned long long)c.widthStepUps,
                                c.widthStepUps == 1 ? "" : "s");
                }
                if (c.removals > 0) {
                    std::printf("  device: removal detected in %.1f "
                                "ns, re-added after %.1f ns; aborted "
                                "%llu reads / %llu writes (%llu B)\n",
                                d.removeDetectNs, d.removeMttrNs,
                                (unsigned long long)c.abortedReads,
                                (unsigned long long)c.abortedWrites,
                                (unsigned long long)c.abortedBytes);
                    std::printf("  containment: %llu B at risk, "
                                "%llu B evacuated via DSA\n",
                                (unsigned long long)c.dataAtRiskBytes,
                                (unsigned long long)d.evacuatedBytes);
                }
                if (c.pagesOfflined > 0 || c.poisonEvents > 0) {
                    std::printf("  pages: %llu offlined (%llu B), "
                                "%llu B migrated (%llu poison "
                                "events)\n",
                                (unsigned long long)c.pagesOfflined,
                                (unsigned long long)c.offlinedBytes,
                                (unsigned long long)c.migratedBytes,
                                (unsigned long long)c.poisonEvents);
                }
                std::printf("  poison invariant: %s%s\n",
                            d.invariantOk ? "OK" : "VIOLATED",
                            d.watchdogTripped
                                ? " (watchdog tripped)" : "");
                printExtraLines(pts[i].p, ras, qos, hist, attrib, tail);
            }
            outs.push_back(pts[i].p);
        }
        return finishRun(cfg, outs);
      }

      case CliMode::Pool: {
        const PoolResult r = runPool(cfg.poolSpec, opts, cfg.jobs);
        const ClusterResult &c = r.cluster;
        const bool fabric = attrib && c.fabric.enabled();
        if (cfg.csv) {
            csvHeaderLine();
            for (const HostReport &h : c.hosts) {
                std::printf(
                    "%u,%u,%s,%llu,%.2f,%.1f,%.1f,%llu,%llu,%d,%llu,"
                    "%016llx%016llx,%.1f,%llu,%llu,%d,%d,%s",
                    h.host, h.host, h.role.c_str(),
                    (unsigned long long)h.digest.ops, h.gbps,
                    h.readAvgNs, h.readP99Ns,
                    (unsigned long long)h.digest.poisoned,
                    (unsigned long long)h.digest.aborted,
                    h.fenced ? 1 : 0,
                    (unsigned long long)(h.grantedBytes / miB),
                    (unsigned long long)h.digest.valueHash,
                    (unsigned long long)h.digest.ledgerHash,
                    c.timeToFenceNs,
                    (unsigned long long)(c.quarantinedBytes / miB),
                    (unsigned long long)(c.recoveredBytes / miB),
                    c.ledgerOk ? 1 : 0, r.isolationOk ? 1 : 0,
                    c.verdict.c_str());
                // Per-host read histograms record nanoseconds
                // directly (unlike machine device histograms, which
                // record ticks), so the unit scale is 1.
                if (hist)
                    printHistCsvCells(h.readHist, 1.0);
                if (tail)
                    printTailCsvCells(h.tail);
                if (fabric)
                    printFabricCsvCells(c.fabric, h.host);
                std::printf("\n");
            }
        } else {
            std::printf("pooled cluster: %s\n",
                        cfg.poolSpec.toString().c_str());
            for (const HostReport &h : c.hosts) {
                std::printf("  host%u [%s]%s: %llu ops, %.2f GB/s, "
                            "read avg/p99 %.1f/%.1f ns, poisoned "
                            "%llu, aborted %llu, window %llu MiB\n",
                            h.host, h.role.c_str(),
                            h.fenced ? " FENCED" : "",
                            (unsigned long long)h.digest.ops, h.gbps,
                            h.readAvgNs, h.readP99Ns,
                            (unsigned long long)h.digest.poisoned,
                            (unsigned long long)h.digest.aborted,
                            (unsigned long long)(h.grantedBytes
                                                 / miB));
                if (hist)
                    printHistLine(h.readHist, 1.0);
                if (tail)
                    printTailLine(h.tail);
            }
            if (c.timeToFenceNs >= 0.0) {
                std::printf("  fencing: dead host fenced in %.1f ns; "
                            "%llu MiB quarantined, %llu MiB "
                            "re-granted to survivors\n",
                            c.timeToFenceNs,
                            (unsigned long long)(c.quarantinedBytes
                                                 / miB),
                            (unsigned long long)(c.recoveredBytes
                                                 / miB));
            }
            std::printf("  ledger: %s",
                        c.ledgerOk ? "conserved" : "VIOLATED");
            if (r.victim >= 0 && cfg.poolSpec.disturbed()) {
                std::printf("; isolation (host%d): %s", r.victim,
                            r.isolationOk ? "OK" : "VIOLATED");
            }
            std::printf("\n  verdict: %s\n", c.verdict.c_str());
            if (fabric) {
                std::printf("  fabric attribution:\n%s",
                            c.fabric.table().c_str());
            }
            if (c.watchdogTripped) {
                std::printf("  watchdog tripped:\n%s\n",
                            c.watchdogReport.c_str());
            }
        }
        // The disturbed cluster is the run's single "point" for the
        // trace/metrics sinks (the baseline runs dark, see runPool).
        std::vector<PointResult> pts(1);
        pts[0].traceJson = c.traceJson;
        pts[0].metricsRows = c.metricsRows;
        const int fileRc = finishRun(cfg, pts);
        // Invariant violations are a failing exit: CI smoke drills
        // rely on it the way the poison-conservation checks do.
        const bool ok =
            c.ledgerOk && r.isolationOk && !c.watchdogTripped;
        return ok ? fileRc : 1;
      }

      case CliMode::Diff: {
        const auto readFile = [](const std::string &path,
                                 std::string &out) {
            std::FILE *f = std::fopen(path.c_str(), "rb");
            if (!f)
                return false;
            char buf[4096];
            std::size_t n;
            while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
                out.append(buf, n);
            std::fclose(f);
            return true;
        };
        std::string a, b;
        if (!readFile(cfg.diffA, a)) {
            std::fprintf(stderr, "memo: cannot read %s\n",
                         cfg.diffA.c_str());
            return 1;
        }
        if (!readFile(cfg.diffB, b)) {
            std::fprintf(stderr, "memo: cannot read %s\n",
                         cfg.diffB.c_str());
            return 1;
        }
        DiffOptions dopts;
        dopts.thresholdPct = cfg.diffThresholdPct;
        dopts.json = cfg.diffJson;
        const DiffReport rep = diffRuns(a, b, dopts);
        if (!rep.ok) {
            std::fprintf(stderr, "memo: %s\n", rep.error.c_str());
            return 1;
        }
        std::fputs(cfg.diffJson ? diffReportJson(rep).c_str()
                                : diffReportText(rep).c_str(),
                   stdout);
        return 0;
      }
    }
    return 1;
}

} // namespace

int
memoCliMain(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string error;
    const auto cfg = parseCli(args, error);
    if (!cfg) {
        // One line, stderr, nonzero exit: scripts and CI can grep it
        // without wading through the usage text.
        std::fprintf(stderr, "memo: %s (try --help)\n", error.c_str());
        return 2;
    }
    return runCli(*cfg);
}

} // namespace memo
} // namespace cxlmemo
