#include "memo/cli.hh"

#include <cstdio>
#include <limits>
#include <sstream>

#include "sim/sweep.hh"

namespace cxlmemo
{
namespace memo
{

namespace
{

std::optional<Target>
parseTarget(const std::string &s)
{
    if (s == "ddr5-l8" || s == "local" || s == "dram")
        return Target::Ddr5Local;
    if (s == "ddr5-r1" || s == "remote")
        return Target::Ddr5Remote;
    if (s == "cxl")
        return Target::Cxl;
    return std::nullopt;
}

std::optional<MemOp::Kind>
parseOp(const std::string &s)
{
    if (s == "load" || s == "ld")
        return MemOp::Kind::Load;
    if (s == "store" || s == "st")
        return MemOp::Kind::Store;
    if (s == "nt-store" || s == "nt")
        return MemOp::Kind::NtStore;
    return std::nullopt;
}

std::optional<CliMode>
parseMode(const std::string &s)
{
    if (s == "latency")
        return CliMode::Latency;
    if (s == "seq")
        return CliMode::Seq;
    if (s == "rand")
        return CliMode::Rand;
    if (s == "chase")
        return CliMode::Chase;
    if (s == "copy")
        return CliMode::Copy;
    if (s == "loaded")
        return CliMode::Loaded;
    if (s == "help")
        return CliMode::Help;
    return std::nullopt;
}

std::optional<CopyPath>
parsePath(const std::string &s)
{
    if (s == "d2d")
        return CopyPath::D2D;
    if (s == "d2c")
        return CopyPath::D2C;
    if (s == "c2d")
        return CopyPath::C2D;
    if (s == "c2c")
        return CopyPath::C2C;
    return std::nullopt;
}

std::optional<CopyMethod>
parseMethod(const std::string &s)
{
    if (s == "memcpy")
        return CopyMethod::Memcpy;
    if (s == "movdir64b" || s == "movdir")
        return CopyMethod::Movdir64;
    if (s == "dsa-sync")
        return CopyMethod::DsaSync;
    if (s == "dsa" || s == "dsa-async")
        return CopyMethod::DsaAsync;
    return std::nullopt;
}

} // namespace

std::optional<std::uint64_t>
parseSize(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    std::uint64_t mult = 1;
    std::string digits = text;
    const char suffix =
        static_cast<char>(std::toupper(static_cast<unsigned char>(
            text.back())));
    if (suffix == 'K' || suffix == 'M' || suffix == 'G') {
        mult = suffix == 'K' ? kiB : suffix == 'M' ? miB : giB;
        digits = text.substr(0, text.size() - 1);
    }
    if (digits.empty())
        return std::nullopt;
    constexpr std::uint64_t maxVal =
        std::numeric_limits<std::uint64_t>::max();
    std::uint64_t value = 0;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return std::nullopt;
        const auto digit = static_cast<std::uint64_t>(c - '0');
        if (value > (maxVal - digit) / 10)
            return std::nullopt; // overflow
        value = value * 10 + digit;
    }
    if (mult > 1 && value > maxVal / mult)
        return std::nullopt; // overflow
    return value * mult;
}

std::optional<std::vector<std::uint64_t>>
parseListSpec(const std::string &text)
{
    std::vector<std::uint64_t> out;
    const auto dash = text.find('-');
    if (dash != std::string::npos) {
        const auto lo = parseSize(text.substr(0, dash));
        const auto hi = parseSize(text.substr(dash + 1));
        if (!lo || !hi || *lo == 0 || *lo > *hi)
            return std::nullopt;
        // Powers-of-two steps from lo, plus the exact endpoint.
        for (std::uint64_t v = *lo; v < *hi; v *= 2)
            out.push_back(v);
        out.push_back(*hi);
        return out;
    }
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        const auto v = parseSize(item);
        if (!v)
            return std::nullopt;
        out.push_back(*v);
    }
    if (out.empty())
        return std::nullopt;
    return out;
}

std::string
cliUsage()
{
    return
        "MEMO: microbenchmark for CXL/NUMA memory characterization\n"
        "usage: memo --mode <mode> [options]\n"
        "\n"
        "modes:\n"
        "  latency   instruction latency probes (Fig. 2)\n"
        "  seq       sequential bandwidth sweep (Fig. 3)\n"
        "  rand      random-block bandwidth sweep (Fig. 5)\n"
        "  chase     pointer-chase WSS sweep (Fig. 2 right)\n"
        "  copy      data movement: memcpy/movdir64B/DSA (Fig. 4)\n"
        "  loaded    loaded-latency probe\n"
        "\n"
        "options:\n"
        "  --target  ddr5-l8 | ddr5-r1 | cxl         (default ddr5-l8)\n"
        "  --op      load | store | nt-store         (default load)\n"
        "  --threads N | a,b,c | lo-hi               (default 1)\n"
        "  --block   SIZE | list/range (rand mode)   (default 4K)\n"
        "  --wss     SIZE | list/range (chase mode)\n"
        "  --path    d2d | d2c | c2d | c2c (copy)    (default d2c)\n"
        "  --method  memcpy | movdir64b | dsa-sync | dsa (copy)\n"
        "  --batch   N   DSA batch size              (default 1)\n"
        "  --prefetch    enable hardware prefetchers\n"
        "  --csv         machine-readable output\n"
        "  --seed    N   workload RNG seed           (default 42)\n"
        "  --jobs/-j N   host threads for sweep points (default 1;\n"
        "                0 = all cores; output identical for any N)\n"
        "  --fault-spec  key=value[,...] RAS fault injection:\n"
        "                crc= poison= timeout= drain= dram= (rates in\n"
        "                [0,1]), stall-ns= timeout-ns= backoff-ns=\n"
        "                retries= degrade= seed=\n"
        "                e.g. --fault-spec crc=1e-4,poison=1e-6\n"
        "  --qos-spec    key=value[,...] CXL overload control:\n"
        "                credits= rd-credits= wr-credits= (M2S flow\n"
        "                control), policy=none|linear|aimd target=\n"
        "                ewma-ns= period-ns= ai= md= floor= slope=\n"
        "                burst= line-ns= (host throttle)\n"
        "                e.g. --qos-spec credits=24,policy=aimd\n"
        "  --watchdog    forward-progress watchdog (100 us snapshots)\n"
        "  --watchdog-ns N   watchdog snapshot interval in ns\n";
}

std::optional<CliConfig>
parseCli(const std::vector<std::string> &args, std::string &error)
{
    CliConfig cfg;
    auto need = [&](std::size_t i) -> std::optional<std::string> {
        if (i + 1 >= args.size()) {
            error = "missing value after " + args[i];
            return std::nullopt;
        }
        return args[i + 1];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--help" || a == "-h") {
            cfg.mode = CliMode::Help;
            return cfg;
        } else if (a == "--mode") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto m = parseMode(*v);
            if (!m) {
                error = "unknown mode: " + *v;
                return std::nullopt;
            }
            cfg.mode = *m;
            ++i;
        } else if (a == "--target") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto t = parseTarget(*v);
            if (!t) {
                error = "unknown target: " + *v;
                return std::nullopt;
            }
            cfg.target = *t;
            ++i;
        } else if (a == "--op") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto o = parseOp(*v);
            if (!o) {
                error = "unknown op: " + *v;
                return std::nullopt;
            }
            cfg.op = *o;
            ++i;
        } else if (a == "--threads") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto list = parseListSpec(*v);
            if (!list) {
                error = "bad thread spec: " + *v;
                return std::nullopt;
            }
            cfg.threads.clear();
            for (std::uint64_t t : *list) {
                if (t == 0 || t > 64) {
                    error = "thread count out of range";
                    return std::nullopt;
                }
                cfg.threads.push_back(static_cast<std::uint32_t>(t));
            }
            ++i;
        } else if (a == "--block") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto list = parseListSpec(*v);
            if (!list) {
                error = "bad block spec: " + *v;
                return std::nullopt;
            }
            for (std::uint64_t b : *list) {
                if (b < cachelineBytes || b % cachelineBytes != 0
                    || b > 64 * miB) {
                    error = "block size must be a multiple of 64 in "
                            "[64, 64M]: " + *v;
                    return std::nullopt;
                }
            }
            cfg.blockBytes = *list;
            ++i;
        } else if (a == "--wss") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto list = parseListSpec(*v);
            if (!list) {
                error = "bad wss spec: " + *v;
                return std::nullopt;
            }
            for (std::uint64_t w : *list) {
                // The pointer chase needs at least two lines; huge
                // sets would just swamp the simulated capacity.
                if (w < 2 * cachelineBytes || w % cachelineBytes != 0
                    || w > 8 * giB) {
                    error = "wss must be a multiple of 64 in "
                            "[128, 8G]: " + *v;
                    return std::nullopt;
                }
            }
            cfg.wssBytes = *list;
            ++i;
        } else if (a == "--path") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto p = parsePath(*v);
            if (!p) {
                error = "unknown path: " + *v;
                return std::nullopt;
            }
            cfg.path = *p;
            ++i;
        } else if (a == "--method") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto m = parseMethod(*v);
            if (!m) {
                error = "unknown method: " + *v;
                return std::nullopt;
            }
            cfg.method = *m;
            ++i;
        } else if (a == "--batch") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto b = parseSize(*v);
            if (!b || *b == 0 || *b > 1024) {
                error = "bad batch (1..1024): " + *v;
                return std::nullopt;
            }
            cfg.batch = static_cast<std::uint32_t>(*b);
            ++i;
        } else if (a == "--seed") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto s = parseSize(*v);
            if (!s) {
                error = "bad seed: " + *v;
                return std::nullopt;
            }
            cfg.seed = *s;
            ++i;
        } else if (a == "--jobs" || a == "-j") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto j = parseSize(*v);
            if (!j || *j > 256) {
                error = "bad jobs count: " + *v;
                return std::nullopt;
            }
            cfg.jobs = static_cast<std::uint32_t>(*j);
            ++i;
        } else if (a == "--fault-spec") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            std::string ferr;
            auto fs = FaultSpec::parse(*v, ferr);
            if (!fs) {
                error = ferr;
                return std::nullopt;
            }
            cfg.faults = *fs;
            ++i;
        } else if (a == "--qos-spec") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            std::string qerr;
            auto qs = QosSpec::parse(*v, qerr);
            if (!qs) {
                error = qerr;
                return std::nullopt;
            }
            cfg.qos = *qs;
            ++i;
        } else if (a == "--watchdog") {
            if (cfg.watchdogUs == 0.0)
                cfg.watchdogUs = 100.0;
        } else if (a == "--watchdog-ns") {
            auto v = need(i);
            if (!v)
                return std::nullopt;
            auto n = parseSize(*v);
            if (!n || *n == 0) {
                error = "bad watchdog interval (ns): " + *v;
                return std::nullopt;
            }
            cfg.watchdogUs = static_cast<double>(*n) / 1000.0;
        } else if (a == "--prefetch") {
            cfg.prefetch = true;
        } else if (a == "--csv") {
            cfg.csv = true;
        } else {
            error = "unknown argument: " + a;
            return std::nullopt;
        }
    }
    if (cfg.mode == CliMode::Chase && cfg.wssBytes.empty()) {
        error = "chase mode requires --wss";
        return std::nullopt;
    }
    return cfg;
}

namespace
{

const char *
opName(MemOp::Kind k)
{
    switch (k) {
      case MemOp::Kind::Load:
        return "load";
      case MemOp::Kind::Store:
        return "store";
      case MemOp::Kind::NtStore:
        return "nt-store";
      default:
        return "?";
    }
}

/** One sweep-point result plus its machine's RAS/QoS counters. */
struct PointResult
{
    double value = 0.0;
    RasStats ras;
    QosStats qos;
};

void
printRasCsvHeader()
{
    std::printf(",crc_errors,link_retries,timeouts,host_retries,"
                "drain_stalls,dram_stalls,poison_injected,"
                "poison_consumed,poison_delivered,degradations");
}

void
printRasCsvCells(const RasStats &rs)
{
    std::printf(",%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu",
                (unsigned long long)rs.crcErrors,
                (unsigned long long)rs.linkRetries,
                (unsigned long long)rs.timeouts,
                (unsigned long long)rs.hostRetries,
                (unsigned long long)rs.drainStalls,
                (unsigned long long)rs.dramStalls,
                (unsigned long long)rs.poisonInjected,
                (unsigned long long)rs.poisonConsumed,
                (unsigned long long)rs.poisonDelivered,
                (unsigned long long)rs.linkDegradations);
}

void
printRasLine(const RasStats &rs)
{
    std::printf("  ras: %s\n", rs.summary().c_str());
}

void
printQosCsvHeader()
{
    std::printf(",credit_stalls,credit_stall_ns,throttle_ns,devload,"
                "rate,ledger_ok");
}

void
printQosCsvCells(const QosStats &qs)
{
    std::printf(",%llu,%llu,%llu,%.3f,%.3f,%d",
                (unsigned long long)(qs.rdCreditStalls
                                     + qs.wrCreditStalls),
                (unsigned long long)(qs.creditStallTicks / tickPerNs),
                (unsigned long long)(qs.throttleDelayTicks / tickPerNs),
                qs.devLoad, qs.rate, qs.ledgerOk ? 1 : 0);
}

void
printQosLine(const QosStats &qs)
{
    std::printf("  qos: %s\n", qs.summary().c_str());
}

int
runCli(const CliConfig &cfg)
{
    Options opts;
    opts.prefetch = cfg.prefetch;
    opts.seed = cfg.seed;
    opts.faults = cfg.faults;
    opts.qos = cfg.qos;
    opts.watchdogUs = cfg.watchdogUs;
    const bool ras = cfg.faults.enabled();
    const bool qos = cfg.qos.enabled();

    switch (cfg.mode) {
      case CliMode::Help:
        std::fputs(cliUsage().c_str(), stdout);
        return 0;

      case CliMode::Latency: {
        RasStats rs;
        const LatencyResult r = runLatency(cfg.target, opts, &rs);
        if (cfg.csv) {
            std::printf("target,ld,st+wb,nt-st,ptr-chase");
            if (ras)
                printRasCsvHeader();
            std::printf("\n");
            std::printf("%s,%.1f,%.1f,%.1f,%.1f",
                        targetName(cfg.target), r.loadNs, r.storeWbNs,
                        r.ntStoreNs, r.ptrChaseNs);
            if (ras)
                printRasCsvCells(rs);
            std::printf("\n");
        } else {
            std::printf("%s latency (ns): ld %.1f  st+wb %.1f  "
                        "nt-st %.1f  ptr-chase %.1f\n",
                        targetName(cfg.target), r.loadNs, r.storeWbNs,
                        r.ntStoreNs, r.ptrChaseNs);
            if (ras)
                printRasLine(rs);
        }
        return 0;
      }

      case CliMode::Seq: {
        SweepRunner pool(cfg.jobs);
        const auto bws = pool.map(cfg.threads.size(), [&](std::size_t i) {
            PointResult p;
            p.value = runSeqBandwidth(cfg.target, cfg.op,
                                      cfg.threads[i], opts, &p.ras,
                                      &p.qos);
            return p;
        });
        if (cfg.csv) {
            std::printf("target,op,threads,gbps");
            if (ras)
                printRasCsvHeader();
            if (qos)
                printQosCsvHeader();
            std::printf("\n");
        }
        for (std::size_t i = 0; i < cfg.threads.size(); ++i) {
            const std::uint32_t t = cfg.threads[i];
            if (cfg.csv) {
                std::printf("%s,%s,%u,%.2f", targetName(cfg.target),
                            opName(cfg.op), t, bws[i].value);
                if (ras)
                    printRasCsvCells(bws[i].ras);
                if (qos)
                    printQosCsvCells(bws[i].qos);
                std::printf("\n");
            } else {
                std::printf("%s %s seq, %2u threads: %7.2f GB/s\n",
                            targetName(cfg.target), opName(cfg.op), t,
                            bws[i].value);
                if (ras)
                    printRasLine(bws[i].ras);
                if (qos)
                    printQosLine(bws[i].qos);
            }
        }
        return 0;
      }

      case CliMode::Rand: {
        struct Point
        {
            std::uint64_t block;
            std::uint32_t threads;
        };
        std::vector<Point> points;
        for (std::uint64_t b : cfg.blockBytes)
            for (std::uint32_t t : cfg.threads)
                points.push_back({b, t});
        SweepRunner pool(cfg.jobs);
        const auto bws = pool.map(points.size(), [&](std::size_t i) {
            PointResult p;
            p.value = runRandBandwidth(cfg.target, cfg.op,
                                       points[i].threads,
                                       points[i].block, opts, &p.ras,
                                       &p.qos);
            return p;
        });
        if (cfg.csv) {
            std::printf("target,op,block,threads,gbps");
            if (ras)
                printRasCsvHeader();
            if (qos)
                printQosCsvHeader();
            std::printf("\n");
        }
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (cfg.csv) {
                std::printf("%s,%s,%llu,%u,%.2f",
                            targetName(cfg.target), opName(cfg.op),
                            (unsigned long long)points[i].block,
                            points[i].threads, bws[i].value);
                if (ras)
                    printRasCsvCells(bws[i].ras);
                if (qos)
                    printQosCsvCells(bws[i].qos);
                std::printf("\n");
            } else {
                std::printf("%s %s rand %6lluB blocks, %2u "
                            "threads: %7.2f GB/s\n",
                            targetName(cfg.target), opName(cfg.op),
                            (unsigned long long)points[i].block,
                            points[i].threads, bws[i].value);
                if (ras)
                    printRasLine(bws[i].ras);
                if (qos)
                    printQosLine(bws[i].qos);
            }
        }
        return 0;
      }

      case CliMode::Chase: {
        // One machine per WSS point (single-element sweeps) so the
        // decomposition -- and therefore the output -- is the same for
        // every job count.
        SweepRunner pool(cfg.jobs);
        const auto lat = pool.map(cfg.wssBytes.size(),
                                  [&](std::size_t i) {
            PointResult p;
            p.value = runPtrChaseWssSweep(cfg.target, {cfg.wssBytes[i]},
                                          opts, &p.ras)[0];
            return p;
        });
        if (cfg.csv) {
            std::printf("target,wss,ns");
            if (ras)
                printRasCsvHeader();
            std::printf("\n");
        }
        for (std::size_t i = 0; i < cfg.wssBytes.size(); ++i) {
            if (cfg.csv) {
                std::printf("%s,%llu,%.1f", targetName(cfg.target),
                            (unsigned long long)cfg.wssBytes[i],
                            lat[i].value);
                if (ras)
                    printRasCsvCells(lat[i].ras);
                std::printf("\n");
            } else {
                std::printf("%s chase wss %10llu B: %7.1f ns\n",
                            targetName(cfg.target),
                            (unsigned long long)cfg.wssBytes[i],
                            lat[i].value);
                if (ras)
                    printRasLine(lat[i].ras);
            }
        }
        return 0;
      }

      case CliMode::Copy: {
        const double bw = runCopyBandwidth(cfg.path, cfg.method,
                                           cfg.batch, 4 * kiB, opts);
        if (cfg.csv)
            std::printf("path,method,batch,gbps\n%s,%s,%u,%.2f\n",
                        copyPathName(cfg.path),
                        copyMethodName(cfg.method), cfg.batch, bw);
        else
            std::printf("%s via %s (batch %u): %.2f GB/s\n",
                        copyPathName(cfg.path),
                        copyMethodName(cfg.method), cfg.batch, bw);
        return 0;
      }

      case CliMode::Loaded: {
        SweepRunner pool(cfg.jobs);
        if (ras) {
            // Under fault injection the interesting signal is the
            // *tail*: report the windowed distribution instead of one
            // long-run average.
            const auto dists = pool.map(cfg.threads.size(),
                                        [&](std::size_t i) {
                return runLoadedLatencyDist(cfg.target, cfg.threads[i],
                                            opts);
            });
            if (cfg.csv) {
                std::printf("target,threads,avg_ns,p50_ns,p99_ns");
                printRasCsvHeader();
                if (qos)
                    printQosCsvHeader();
                std::printf("\n");
            }
            for (std::size_t i = 0; i < cfg.threads.size(); ++i) {
                const std::uint32_t t = cfg.threads[i];
                const LoadedLatencyDist &d = dists[i];
                if (cfg.csv) {
                    std::printf("%s,%u,%.1f,%.1f,%.1f",
                                targetName(cfg.target), t, d.avgNs,
                                d.p50Ns, d.p99Ns);
                    printRasCsvCells(d.ras);
                    if (qos)
                        printQosCsvCells(d.qos);
                    std::printf("\n");
                } else {
                    std::printf("%s loaded latency, %2u threads: "
                                "avg %7.1f  p50 %7.1f  p99 %7.1f ns\n",
                                targetName(cfg.target), t, d.avgNs,
                                d.p50Ns, d.p99Ns);
                    printRasLine(d.ras);
                    if (qos)
                        printQosLine(d.qos);
                }
            }
            return 0;
        }
        const auto lats = pool.map(cfg.threads.size(),
                                   [&](std::size_t i) {
            PointResult p;
            p.value = runLoadedLatency(cfg.target, cfg.threads[i],
                                       opts, nullptr, &p.qos);
            return p;
        });
        if (cfg.csv) {
            std::printf("target,threads,ns");
            if (qos)
                printQosCsvHeader();
            std::printf("\n");
        }
        for (std::size_t i = 0; i < cfg.threads.size(); ++i) {
            const std::uint32_t t = cfg.threads[i];
            if (cfg.csv) {
                std::printf("%s,%u,%.1f", targetName(cfg.target), t,
                            lats[i].value);
                if (qos)
                    printQosCsvCells(lats[i].qos);
                std::printf("\n");
            } else {
                std::printf("%s loaded latency, %2u threads: %7.1f "
                            "ns\n",
                            targetName(cfg.target), t, lats[i].value);
                if (qos)
                    printQosLine(lats[i].qos);
            }
        }
        return 0;
      }
    }
    return 1;
}

} // namespace

int
memoCliMain(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string error;
    const auto cfg = parseCli(args, error);
    if (!cfg) {
        // One line, stderr, nonzero exit: scripts and CI can grep it
        // without wading through the usage text.
        std::fprintf(stderr, "memo: %s (try --help)\n", error.c_str());
        return 2;
    }
    return runCli(*cfg);
}

} // namespace memo
} // namespace cxlmemo
