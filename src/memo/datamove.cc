#include "memo/memo.hh"

#include <memory>
#include <vector>

#include "cpu/streams.hh"
#include "sim/logging.hh"

namespace cxlmemo
{
namespace memo
{

namespace
{

constexpr std::uint64_t copyRegion = 128 * miB;

Target
srcOf(CopyPath p)
{
    return (p == CopyPath::C2D || p == CopyPath::C2C) ? Target::Cxl
                                                      : Target::Ddr5Local;
}

Target
dstOf(CopyPath p)
{
    return (p == CopyPath::D2C || p == CopyPath::C2C) ? Target::Cxl
                                                      : Target::Ddr5Local;
}

/** Endless copy stream: one op pair per line, wrapping the region. */
class CopyStream : public AccessStream
{
  public:
    CopyStream(const NumaBuffer &src, std::uint64_t srcOff,
               const NumaBuffer &dst, std::uint64_t dstOff,
               std::uint64_t regionBytes, bool temporal)
        : src_(src),
          dst_(dst),
          srcOff_(srcOff),
          dstOff_(dstOff),
          regionBytes_(regionBytes),
          temporal_(temporal)
    {}

    bool
    next(MemOp &op) override
    {
        if (temporal_) {
            // memcpy: temporal load then temporal store.
            if (!loaded_) {
                op.kind = MemOp::Kind::Load;
                op.paddr = src_.translate(srcOff_ + cursor_);
                loaded_ = true;
                return true;
            }
            op.kind = MemOp::Kind::Store;
            op.paddr = dst_.translate(dstOff_ + cursor_);
            loaded_ = false;
        } else {
            op.kind = MemOp::Kind::Movdir64;
            op.paddr = src_.translate(srcOff_ + cursor_);
            op.paddr2 = dst_.translate(dstOff_ + cursor_);
        }
        cursor_ += cachelineBytes;
        if (cursor_ >= regionBytes_)
            cursor_ = 0;
        return true;
    }

  private:
    const NumaBuffer &src_;
    const NumaBuffer &dst_;
    std::uint64_t srcOff_;
    std::uint64_t dstOff_;
    std::uint64_t regionBytes_;
    std::uint64_t cursor_ = 0;
    bool temporal_;
    bool loaded_ = false;
};

} // namespace

const char *
copyPathName(CopyPath p)
{
    switch (p) {
      case CopyPath::D2D:
        return "D2D";
      case CopyPath::D2C:
        return "D2C";
      case CopyPath::C2D:
        return "C2D";
      case CopyPath::C2C:
        return "C2C";
    }
    return "?";
}

const char *
copyMethodName(CopyMethod m)
{
    switch (m) {
      case CopyMethod::Memcpy:
        return "memcpy";
      case CopyMethod::Movdir64:
        return "movdir64B";
      case CopyMethod::DsaSync:
        return "DSA-sync";
      case CopyMethod::DsaAsync:
        return "DSA-async";
    }
    return "?";
}

double
runMovdirBandwidth(CopyPath path, std::uint32_t threads,
                   const Options &opts)
{
    auto m = makeMachine(Target::Ddr5Local, opts, opts.prefetch);
    CXLMEMO_ASSERT(threads >= 1 && threads <= m->numCores(),
                   "thread count out of range");
    NumaBuffer src = m->numa().alloc(
        std::uint64_t(threads) * copyRegion,
        MemPolicy::membind(targetNode(*m, srcOf(path))));
    NumaBuffer dst = m->numa().alloc(
        std::uint64_t(threads) * copyRegion,
        MemPolicy::membind(targetNode(*m, dstOf(path))));

    std::vector<std::unique_ptr<HwThread>> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.push_back(m->makeThread(static_cast<std::uint16_t>(t)));
        pool.back()->start(
            std::make_unique<CopyStream>(src, std::uint64_t(t) * copyRegion,
                                         dst, std::uint64_t(t) * copyRegion,
                                         copyRegion, /*temporal=*/false),
            0, nullptr);
    }

    m->runUntil(ticksFromUs(opts.warmupUs));
    std::uint64_t before = 0;
    for (const auto &t : pool)
        before += t->stats().bytesWritten;
    const Tick window = ticksFromUs(opts.measureUs);
    m->runUntil(ticksFromUs(opts.warmupUs) + window);
    std::uint64_t after = 0;
    for (const auto &t : pool)
        after += t->stats().bytesWritten;
    const double gbps = gbPerSec(after - before, window);
    if (opts.onMachineDone)
        opts.onMachineDone(*m);
    return gbps;
}

double
runCopyBandwidth(CopyPath path, CopyMethod method, std::uint32_t batch,
                 std::uint64_t blockBytes, const Options &opts)
{
    CXLMEMO_ASSERT(batch >= 1, "batch must be at least 1");
    auto m = makeMachine(Target::Ddr5Local, opts, opts.prefetch);
    NumaBuffer src = m->numa().alloc(
        copyRegion, MemPolicy::membind(targetNode(*m, srcOf(path))));
    NumaBuffer dst = m->numa().alloc(
        copyRegion, MemPolicy::membind(targetNode(*m, dstOf(path))));

    if (method == CopyMethod::Memcpy || method == CopyMethod::Movdir64) {
        auto thread = m->makeThread(0);
        thread->start(std::make_unique<CopyStream>(
                          src, 0, dst, 0, copyRegion,
                          method == CopyMethod::Memcpy),
                      0, nullptr);
        m->runUntil(ticksFromUs(opts.warmupUs));
        const std::uint64_t before = thread->stats().bytesWritten;
        const Tick window = ticksFromUs(opts.measureUs);
        m->runUntil(ticksFromUs(opts.warmupUs) + window);
        const double gbps =
            gbPerSec(thread->stats().bytesWritten - before, window);
        if (opts.onMachineDone)
            opts.onMachineDone(*m);
        return gbps;
    }

    // DSA flows: a driver loop submits descriptors over the region.
    Dsa &dsa = m->dsa();
    const std::uint64_t blocks = copyRegion / blockBytes;
    // Async submission keeps a bounded number of jobs in flight; sync
    // waits for each. The submitting thread pays submitCost per
    // ENQCMD (one per batch descriptor).
    const std::uint32_t target_in_flight =
        method == CopyMethod::DsaSync ? 1 : 24;

    /** Software cost of observing a completion record and preparing
     *  the next submission -- the per-job overhead batching amortizes. */
    constexpr Tick completionHandling = ticksFromNs(150.0);

    struct Driver
    {
        Machine *m;
        Dsa *dsa;
        const NumaBuffer *src;
        const NumaBuffer *dst;
        std::uint64_t blockBytes;
        std::uint64_t blocks;
        std::uint32_t batch;
        std::uint32_t targetInFlight;
        std::uint64_t cursor = 0;
        std::uint32_t inFlight = 0;
        Tick cpuFreeAt = 0;        //!< submitting thread's local time
        bool submitScheduled = false;

        void
        pump()
        {
            if (inFlight >= targetInFlight || submitScheduled)
                return;
            submitScheduled = true;
            const Tick when = std::max(m->eq().curTick(), cpuFreeAt);
            m->eq().schedule(when, [this] { doSubmit(); });
        }

        void
        doSubmit()
        {
            submitScheduled = false;
            std::vector<DsaDescriptor> descs;
            descs.reserve(batch);
            for (std::uint32_t b = 0; b < batch; ++b) {
                const std::uint64_t off = (cursor % blocks) * blockBytes;
                ++cursor;
                descs.push_back(
                    DsaDescriptor{src, off, dst, off, blockBytes});
            }
            const bool ok = dsa->submitBatch(
                std::move(descs), [this](Tick) {
                    --inFlight;
                    // Poll the completion record, set up the next job.
                    cpuFreeAt = std::max(cpuFreeAt, m->eq().curTick())
                                + completionHandling;
                    pump();
                });
            if (ok) {
                ++inFlight;
                // The submitting core serializes ENQCMDs.
                cpuFreeAt = std::max(cpuFreeAt, m->eq().curTick())
                            + dsa->params().submitCost;
                pump();
            }
            // On WQ-full, the next completion re-arms the pump.
        }
    };

    Driver driver{m.get(),   &dsa,  &src, &dst, blockBytes, blocks,
                  batch,     target_in_flight};
    m->eq().schedule(0, [&driver] { driver.pump(); });

    m->runUntil(ticksFromUs(opts.warmupUs));
    const std::uint64_t before = dsa.bytesCopied();
    const Tick window = ticksFromUs(opts.measureUs);
    m->runUntil(ticksFromUs(opts.warmupUs) + window);
    const double gbps = gbPerSec(dsa.bytesCopied() - before, window);
    if (opts.onMachineDone)
        opts.onMachineDone(*m);
    return gbps;
}

} // namespace memo
} // namespace cxlmemo
