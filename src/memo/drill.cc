/**
 * @file
 * Chaos drill: a deterministic failure-lifecycle exercise against the
 * CXL device. A load flood provides steady pressure while the scripted
 * schedule takes the link down (retrain + width step-up), hot-removes
 * and re-adds the device, and poison feeds the page-offlining ledger.
 * Throughput is sampled in windows aligned with the schedule so the
 * healthy / degraded / recovered regimes are measured separately, and
 * the chaos counters yield time-to-detect and MTTR.
 */

#include "memo/memo.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "cpu/streams.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace cxlmemo
{
namespace memo
{

namespace
{

constexpr std::uint64_t regionBytes = 32 * miB;
constexpr std::uint64_t endlessBytes = std::uint64_t(1) << 42;

/** The default drill script (used when the caller supplies none). */
ChaosSpec
defaultDrillSchedule()
{
    ChaosSpec c;
    c.linkDownAtNs = 60000;  // 60 us: link drops mid-flood
    c.retrainNs = 2000.0;    // blocks 2 us, re-enters degraded
    c.stepUpNs = 3000.0;     // +3 us per width level back up
    c.removeAtNs = 100000;   // 100 us: device yanked
    c.readdAtNs = 130000;    // 130 us: re-added, capacity empty
    c.contain = ContainPolicy::Poison;
    c.offlineThreshold = 2;  // 2 consumed poisons offline a page
    return c;
}

} // namespace

DrillResult
runDrill(std::uint32_t threads, const Options &opts)
{
    CXLMEMO_ASSERT(threads >= 1, "need at least one drill thread");
    Options o = opts;
    if (!o.chaos.enabled())
        o.chaos = defaultDrillSchedule();
    // The offlining leg needs a poison stream to feed the ledger.
    if (!o.faults.enabled() && o.chaos.offlineThreshold > 0)
        o.faults.readPoisonRate = 0.01;
    if (o.watchdogUs <= 0.0)
        o.watchdogUs = 100.0; // the drill always logs lifecycle events

    auto m = makeMachine(Target::Cxl, o, o.prefetch);
    CXLMEMO_ASSERT(threads <= m->numCores(),
                   "thread count %u out of range", threads);

    const std::uint64_t workBytes = std::uint64_t(threads) * regionBytes;
    NumaBuffer work =
        m->numa().alloc(workBytes, MemPolicy::membind(m->cxlNode()));
    // DRAM landing zone for everything migrated off the device.
    NumaBuffer refuge =
        m->numa().alloc(workBytes, MemPolicy::membind(m->localNode()));

    DrillResult res;

    // Page offlining reaction: migrate the offlined page's live data
    // to DRAM with DSA (the paper's guideline for bulk movement).
    if (auto *fh = m->failureHandler()) {
        fh->addOfflineHook([&m, &work, &refuge](Addr page,
                                                Tick) -> std::uint64_t {
            const std::uint64_t p = work.pageOf(page);
            if (p == NumaBuffer::npos)
                return 0;
            DsaDescriptor d;
            d.src = &work;
            d.dst = &refuge;
            d.srcOffset = p * pageBytes;
            d.dstOffset = p * pageBytes;
            d.bytes = pageBytes;
            m->dsa().submit(d, nullptr);
            return pageBytes;
        });
    }

    // Hot-remove reaction: record data-at-risk (everything still
    // resident on the dying node) and evacuate it via DSA. The
    // evacuation races the removal -- exactly the exposure the
    // data-at-risk figure quantifies.
    m->setCxlHotplugHook([&](Tick, bool online) {
        if (online)
            return;
        res.chaos.dataAtRiskBytes =
            m->numa().allocatedOn(m->cxlNode());
        res.dataAtRiskBytes = res.chaos.dataAtRiskBytes;
        DsaDescriptor d;
        d.src = &work;
        d.dst = &refuge;
        d.bytes = work.size();
        if (m->dsa().submit(d, nullptr))
            res.evacuatedBytes += work.size();
    });

    std::vector<std::unique_ptr<HwThread>> pool;
    pool.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.push_back(m->makeThread(static_cast<std::uint16_t>(t)));
        pool.back()->start(
            std::make_unique<SequentialStream>(
                work, std::uint64_t(t) * regionBytes, regionBytes,
                endlessBytes, MemOp::Kind::Load),
            0, nullptr);
    }

    const auto bytesNow = [&pool] {
        std::uint64_t sum = 0;
        for (const auto &t : pool)
            sum += t->stats().bytesRead + t->stats().bytesWritten;
        return sum;
    };
    const auto windowGBps = [&](Tick from, Tick to) {
        m->runUntil(from);
        const std::uint64_t before = bytesNow();
        m->runUntil(to);
        return gbPerSec(bytesNow() - before, to - from);
    };

    const ChaosSpec &c = m->chaosSpec();
    const Tick down = ticksFromNs(static_cast<double>(c.linkDownAtNs));
    const Tick remove = ticksFromNs(static_cast<double>(c.removeAtNs));
    const Tick readd = ticksFromNs(static_cast<double>(c.readdAtNs));

    // Healthy window: the second half of the pre-failure runway.
    if (down > 0)
        res.healthyGBps = windowGBps(down / 2, down);
    else if (remove > 0)
        res.healthyGBps = windowGBps(remove / 2, remove);

    // Degraded window: from the outage until full width should be
    // back (retrain + two step-ups), bounded away from the removal.
    if (down > 0) {
        Tick degEnd = down + ticksFromNs(c.retrainNs + 2.0 * c.stepUpNs);
        if (remove > 0)
            degEnd = std::min(degEnd, remove);
        res.degradedGBps = windowGBps(down, degEnd);
    }

    // Recovered window: well after the re-add settled.
    if (readd > 0) {
        res.recoveredGBps = windowGBps(readd + ticksFromUs(10.0),
                                       readd + ticksFromUs(40.0));
    } else {
        const Tick tail =
            std::max({down, remove, ticksFromUs(o.warmupUs)});
        res.recoveredGBps = windowGBps(tail + ticksFromUs(10.0),
                                       tail + ticksFromUs(40.0));
    }

    // Let in-flight recovery work (aborts, migrations) finish. The
    // flood streams are endless, so run a bounded tail rather than
    // draining the queue.
    m->runUntil(m->eq().curTick() + ticksFromUs(10.0));

    const ChaosStats cs = m->chaosStats();
    res.chaos.dataAtRiskBytes =
        std::max(res.chaos.dataAtRiskBytes, res.dataAtRiskBytes);
    {
        const std::uint64_t dar = res.chaos.dataAtRiskBytes;
        res.chaos = cs;
        res.chaos.dataAtRiskBytes = dar;
    }
    if (cs.linkDowns > 0) {
        if (cs.linkDetectAt >= cs.linkDownAt)
            res.linkDetectNs =
                nsFromTicks(cs.linkDetectAt - cs.linkDownAt);
        if (cs.linkFullWidthAt >= cs.linkDownAt)
            res.linkMttrNs =
                nsFromTicks(cs.linkFullWidthAt - cs.linkDownAt);
    }
    if (cs.removals > 0) {
        if (cs.removeDetectAt >= cs.removeAt)
            res.removeDetectNs =
                nsFromTicks(cs.removeDetectAt - cs.removeAt);
        if (cs.readdAt >= cs.removeAt)
            res.removeMttrNs = nsFromTicks(cs.readdAt - cs.removeAt);
    }

    if (const RasStats *rs = m->rasStats()) {
        res.ras = *rs;
        res.invariantOk =
            rs->poisonInjected == rs->poisonConsumed
                                      + rs->poisonDelivered
                                      + rs->poisonContained;
    }
    res.watchdogTripped = m->watchdog() && m->watchdog()->tripped();
    if (o.onMachineDone)
        o.onMachineDone(*m);
    return res;
}

} // namespace memo
} // namespace cxlmemo
