/**
 * @file
 * `memo --mode pool`: multi-host pooled-memory scenario runner.
 *
 * Runs the Cluster described by a PoolSpec and, when the spec
 * disturbs any host, a second *victim-only baseline* cluster: the
 * same spec with every disturbance cleared and only the victim host
 * issuing work. The blast-radius invariant demands the victim's
 * functional digest be byte-identical between the two runs -- the
 * aggressor may change the victim's latency, never its data.
 *
 * The two clusters are independent sweep points, so `--jobs 2` runs
 * them concurrently and the merge is positional (exact/associative,
 * like every other sweep in the suite).
 */

#include "memo/memo.hh"

#include "sim/sweep.hh"

namespace cxlmemo
{
namespace memo
{

PoolResult
runPool(const PoolSpec &spec, const Options &opts, unsigned jobs)
{
    spec.validate();

    Cluster::Options co;
    co.simThreads = opts.simThreads;
    co.watchdogUs = opts.watchdogUs;

    PoolResult res;
    res.victim = spec.victimHost();
    const bool baseline = spec.disturbed() && res.victim >= 0;

    const auto runOne = [&](std::size_t i) {
        if (i == 0) {
            // Observability instruments the disturbed run only; the
            // baseline exists to compare digests, which observability
            // never changes, so running it dark keeps it cheap.
            Cluster::Options po = co;
            po.obs = opts.obs;
            Cluster c(spec, po);
            ClusterResult r = c.run();
            // Serialize the trace here, after the timed run: run()
            // leaves ClusterResult::traceJson empty by contract.
            if (po.obs.traceSampleEvery > 0 || po.obs.tailK > 0)
                r.traceJson = c.traceJson();
            return r;
        }
        // Victim-only baseline: disturbances cleared, every other
        // host holds its (identical) window grant but issues nothing.
        Cluster::Options bo = co;
        bo.soloHost = res.victim;
        Cluster c(spec.isolationBaseline(), bo);
        return c.run();
    };

    std::vector<ClusterResult> runs =
        SweepRunner(jobs).map(baseline ? 2 : 1, runOne);
    res.cluster = std::move(runs[0]);

    if (baseline) {
        const auto &full = res.cluster.hosts.at(
            static_cast<std::size_t>(res.victim));
        const auto &solo = runs[1].hosts.at(
            static_cast<std::size_t>(res.victim));
        res.isolationOk = full.digest == solo.digest;
    }
    return res;
}

} // namespace memo
} // namespace cxlmemo
