#include "memo/memo.hh"

#include "cpu/streams.hh"
#include "sim/logging.hh"

namespace cxlmemo
{
namespace memo
{

namespace
{

/** Addresses probed per instruction; spread across rows/banks. */
constexpr int probeReps = 64;
constexpr std::uint64_t probeStride = 8 * kiB + cachelineBytes;

/** Duration of running @p ops as one stream on core 0. */
Tick
timeOps(Machine &m, std::vector<MemOp> ops)
{
    auto [start, end] =
        runStream(m, 0, std::make_unique<ListStream>(std::move(ops)));
    return end - start;
}

double
probeLoad(Machine &m, const NumaBuffer &buf)
{
    Tick total = 0;
    for (int r = 0; r < probeReps; ++r) {
        const Addr a = buf.translate(r * probeStride);
        // Warm the line, flush it, fence -- then time a single load.
        timeOps(m, {{MemOp::Kind::Load, a, 0},
                    {MemOp::Kind::Mfence, 0, 0},
                    {MemOp::Kind::Flush, a, 0},
                    {MemOp::Kind::Mfence, 0, 0}});
        total += timeOps(m, {{MemOp::Kind::DependentLoad, a, 0}});
    }
    return nsFromTicks(total) / probeReps;
}

double
probeStoreWb(Machine &m, const NumaBuffer &buf)
{
    Tick total = 0;
    for (int r = 0; r < probeReps; ++r) {
        const Addr a = buf.translate(r * probeStride);
        timeOps(m, {{MemOp::Kind::Load, a, 0},
                    {MemOp::Kind::Mfence, 0, 0},
                    {MemOp::Kind::Flush, a, 0},
                    {MemOp::Kind::Mfence, 0, 0}});
        // Temporal store (RFO on the flushed line) + clwb + fence.
        total += timeOps(m, {{MemOp::Kind::Store, a, 0},
                             {MemOp::Kind::Mfence, 0, 0},
                             {MemOp::Kind::Clwb, a, 0},
                             {MemOp::Kind::Sfence, 0, 0}});
    }
    return nsFromTicks(total) / probeReps;
}

double
probeNtStore(Machine &m, const NumaBuffer &buf)
{
    Tick total = 0;
    for (int r = 0; r < probeReps; ++r) {
        const Addr a = buf.translate(r * probeStride);
        timeOps(m, {{MemOp::Kind::Flush, a, 0},
                    {MemOp::Kind::Mfence, 0, 0}});
        total += timeOps(m, {{MemOp::Kind::NtStore, a, 0},
                             {MemOp::Kind::Sfence, 0, 0}});
    }
    return nsFromTicks(total) / probeReps;
}

double
chaseAverageNs(Machine &m, const NumaBuffer &buf, std::uint64_t wss,
               std::uint64_t seed, bool warmup)
{
    const std::uint64_t lines = wss / cachelineBytes;
    const std::uint64_t accesses =
        std::clamp<std::uint64_t>(lines * 2, 20'000, 150'000);
    if (warmup) {
        // MEMO's warm-up run: sweep the working set into the caches.
        runStream(m, 0,
                  std::make_unique<SequentialStream>(buf, 0, wss, wss,
                                                     MemOp::Kind::Load));
    }
    auto chase = std::make_unique<PointerChaseStream>(buf, wss, accesses,
                                                      /*warmup=*/false,
                                                      seed);
    auto [start, end] = runStream(m, 0, std::move(chase));
    return nsFromTicks(end - start) / static_cast<double>(accesses);
}

} // namespace

LatencyResult
runLatency(Target target, const Options &opts, RasStats *rasOut)
{
    // The paper disables prefetching at all levels for latency tests.
    auto m = makeMachine(target, opts, /*prefetch=*/false);
    const MemPolicy policy = MemPolicy::membind(targetNode(*m, target));
    const std::uint64_t chase_space = 512 * miB;
    NumaBuffer buf = m->numa().alloc(chase_space, policy);

    LatencyResult res;
    res.loadNs = probeLoad(*m, buf);
    res.storeWbNs = probeStoreWb(*m, buf);
    res.ntStoreNs = probeNtStore(*m, buf);
    // 1 GB chase in the paper; the working set dwarfs the LLC either
    // way, so capacity misses dominate identically at 512 MiB (warm-up
    // is pointless at this size and skipped).
    m->caches().flushAllCaches();
    res.ptrChaseNs = chaseAverageNs(*m, buf, chase_space, opts.seed,
                                    /*warmup=*/false);
    if (rasOut) {
        if (const RasStats *rs = m->rasStats())
            *rasOut = *rs;
        else
            rasOut->reset();
    }
    if (opts.onMachineDone)
        opts.onMachineDone(*m);
    return res;
}

std::vector<double>
runPtrChaseWssSweep(Target target,
                    const std::vector<std::uint64_t> &wssBytes,
                    const Options &opts, RasStats *rasOut)
{
    auto m = makeMachine(target, opts, /*prefetch=*/false);
    const MemPolicy policy = MemPolicy::membind(targetNode(*m, target));
    std::uint64_t max_wss = 0;
    for (std::uint64_t w : wssBytes)
        max_wss = std::max(max_wss, w);
    CXLMEMO_ASSERT(max_wss > 0, "empty WSS sweep");
    NumaBuffer buf = m->numa().alloc(max_wss, policy);

    const std::uint64_t llc = m->caches().params().llc.sizeBytes;
    std::vector<double> out;
    out.reserve(wssBytes.size());
    RasStats ras_total;
    for (std::uint64_t wss : wssBytes) {
        m->caches().flushAllCaches();
        // The machine is shared across sweep points: clear device and
        // controller counters so each point reports its own traffic
        // (stall counts and high-water marks otherwise accumulate).
        m->resetStats();
        // Warm the set when it could plausibly be cache-resident;
        // beyond 2x LLC the warm-up cannot survive and is skipped.
        const bool warm = wss <= 2 * llc;
        out.push_back(chaseAverageNs(*m, buf, wss, opts.seed, warm));
        if (const RasStats *rs = m->rasStats())
            ras_total.merge(*rs);
    }
    if (rasOut)
        *rasOut = ras_total;
    if (opts.onMachineDone)
        opts.onMachineDone(*m);
    return out;
}

} // namespace memo
} // namespace cxlmemo
