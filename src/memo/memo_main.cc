/**
 * @file
 * The `memo` binary: MEMO's command-line front end.
 */

#include "memo/cli.hh"

int
main(int argc, char **argv)
{
    return cxlmemo::memo::memoCliMain(argc, argv);
}
