/**
 * @file
 * Overload sweep point: saturating non-temporal store flood against
 * the CXL device (the paper's Sec. 4.3.2 collapse scenario), measured
 * together with a dependent-load probe so both throughput and tail
 * latency of the overloaded device are visible. bench_overload sweeps
 * this with and without QoS policies.
 */

#include "memo/memo.hh"

#include <memory>
#include <vector>

#include "cpu/streams.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace cxlmemo
{
namespace memo
{

namespace
{

constexpr std::uint64_t regionBytes = 128 * miB;
constexpr std::uint64_t endlessBytes = std::uint64_t(1) << 42;

} // namespace

OverloadResult
runOverloadPoint(std::uint32_t threads, const Options &opts)
{
    CXLMEMO_ASSERT(threads >= 1, "need at least one flood thread");
    auto m = makeMachine(Target::Cxl, opts, opts.prefetch);
    CXLMEMO_ASSERT(threads <= m->numCores(),
                   "thread count %u out of range", threads);
    const MemPolicy policy = MemPolicy::membind(m->cxlNode());
    NumaBuffer flood_buf =
        m->numa().alloc(std::uint64_t(threads) * regionBytes, policy);
    NumaBuffer probe_buf = m->numa().alloc(regionBytes, policy);

    std::vector<std::unique_ptr<HwThread>> pool;
    pool.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.push_back(m->makeThread(static_cast<std::uint16_t>(t)));
        pool.back()->start(
            std::make_unique<SequentialStream>(
                flood_buf, std::uint64_t(t) * regionBytes, regionBytes,
                endlessBytes, MemOp::Kind::NtStore),
            0, nullptr);
    }

    m->runUntil(ticksFromUs(opts.warmupUs));
    std::uint64_t before = 0;
    for (const auto &t : pool)
        before += t->stats().bytesWritten;

    const Tick window = ticksFromUs(opts.measureUs);
    m->runUntil(ticksFromUs(opts.warmupUs) + window);
    std::uint64_t after = 0;
    for (const auto &t : pool)
        after += t->stats().bytesWritten;

    OverloadResult res;
    res.achievedGBps = gbPerSec(after - before, window);
    // Offered load = what the cores would inject with nothing pushing
    // back: one line per WC-buffer eviction slot.
    res.offeredGBps = static_cast<double>(threads)
                      * gbPerSec(cachelineBytes,
                                 m->coreParams().ntIssueCost);

    // Dependent-load probe under the standing flood, timed in windows
    // so overload episodes surface as tail latency. The probe shares
    // the last core when the flood occupies every core; its loads are
    // not throttle-paced, only queued behind the flood at the device.
    constexpr int windows = 100;
    constexpr int opsPerWindow = 32;
    const std::uint64_t lines = regionBytes / cachelineBytes;
    Rng addr_rng(opts.seed + 0x0ad1);
    SampleSeries window_ns;
    const auto core = static_cast<std::uint16_t>(
        std::min(threads, m->numCores() - 1));
    for (int w = 0; w < windows; ++w) {
        std::vector<MemOp> ops;
        ops.reserve(opsPerWindow);
        for (int i = 0; i < opsPerWindow; ++i) {
            const Addr a = probe_buf.translate(addr_rng.below(lines)
                                               * cachelineBytes);
            ops.push_back({MemOp::Kind::DependentLoad, a, 0});
        }
        auto probe_thread = m->makeThread(core);
        Tick start = 0;
        Tick end = 0;
        bool done = false;
        probe_thread->start(std::make_unique<ListStream>(std::move(ops)),
                            m->eq().curTick(), [&](Tick s, Tick e) {
            start = s;
            end = e;
            done = true;
        });
        while (!done) {
            const Tick horizon = m->eq().curTick() + ticksFromUs(50.0);
            if (m->runUntil(horizon) && !done)
                CXLMEMO_PANIC("probe starved: event queue drained");
        }
        window_ns.record(nsFromTicks(end - start) / opsPerWindow);
    }
    res.probeP99Ns = window_ns.p99();

    if (auto qs = m->qosStats())
        res.qos = *qs;
    else
        res.qos.ledgerOk = m->cxlDev().creditLedgerOk();
    res.watchdogTripped = m->watchdog() && m->watchdog()->tripped();
    return res;
}

} // namespace memo
} // namespace cxlmemo
