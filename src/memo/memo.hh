/**
 * @file
 * MEMO: the paper's microbenchmark suite (Sec. 4.1), reimplemented
 * over the simulated testbeds.
 *
 * Capabilities mirroring the paper's description:
 *  (1) allocate memory from different sources (local DDR5, the CXL
 *      CPU-less NUMA node, remote-socket DDR5),
 *  (2) launch N testing threads pinned to cores, with prefetching
 *      optionally enabled,
 *  (3) access memory with specific instruction types (AVX-512 load,
 *      store + clwb, non-temporal store, movdir64B) and patterns
 *      (sequential, random block, pointer chase with a configurable
 *      working-set size).
 *
 * Every entry point builds a fresh deterministic Machine, so results
 * are reproducible and experiments cannot contaminate each other.
 */

#ifndef CXLMEMO_MEMO_MEMO_HH
#define CXLMEMO_MEMO_MEMO_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "system/cluster.hh"
#include "system/machine.hh"

namespace cxlmemo
{
namespace memo
{

/** Memory source under test (paper's DDR5-L8 / DDR5-R1 / CXL). */
enum class Target
{
    Ddr5Local,  //!< 8-channel local DDR5-4800 ("DDR5-L8")
    Ddr5Remote, //!< 1-channel remote-socket DDR5-4800 ("DDR5-R1")
    Cxl,        //!< Agilex-I CXL memory ("CXL")
};

const char *targetName(Target t);

/** Knobs common to all MEMO experiments. */
struct Options
{
    bool prefetch = false;     //!< hardware prefetchers on/off
    std::uint64_t seed = 42;   //!< workload RNG seed
    double warmupUs = 30.0;    //!< pipeline warm-up before measuring
    double measureUs = 150.0;  //!< measurement window
    /** RAS fault model for the machine under test (default: none,
     *  bit-identical to the fault-free simulator). */
    FaultSpec faults;

    /** Overload-control model (credits / DevLoad throttle) for the
     *  CXL path (default: none, bit-identical when disabled). */
    QosSpec qos;

    /** Failure-lifecycle schedule for the CXL path (default: none,
     *  bit-identical when disabled). */
    ChaosSpec chaos;

    /** Forward-progress watchdog snapshot interval in microseconds;
     *  0 (the default) builds no watchdog. */
    double watchdogUs = 0.0;

    /** Flight-recorder wiring (tracing / interval metrics / latency
     *  histograms) for every machine the experiment builds; all off
     *  by default. */
    ObservabilityOptions obs;

    /** Worker threads for the domain-partitioned parallel simulation
     *  engine; 0 (the default) keeps the classic single-queue engine
     *  (see MachineOptions::simThreads for the contract). */
    std::uint32_t simThreads = 0;

    /**
     * Invoked on each experiment Machine after its run completes and
     * before the machine is destroyed -- the collection point for
     * trace events, the metrics timeline and latency histograms.
     * Sweep runners call it from the worker that ran the point, so a
     * shared hook must either be thread-safe or (as the CLI does)
     * each point gets its own Options copy with a per-point hook.
     */
    std::function<void(Machine &)> onMachineDone;
};

/** Results of the instruction-latency probes (Fig. 2, bars). */
struct LatencyResult
{
    double loadNs = 0.0;    //!< flush + mfence + AVX-512 load
    double storeWbNs = 0.0; //!< temporal store + clwb (RFO path)
    double ntStoreNs = 0.0; //!< non-temporal store + sfence
    double ptrChaseNs = 0.0;//!< sequential pointer chase in 1 GB
};

/**
 * Run the Fig. 2 latency probes against @p target.
 * Prefetching is disabled regardless of @p opts (as in the paper).
 */
LatencyResult runLatency(Target target, const Options &opts = {},
                         RasStats *rasOut = nullptr);

/**
 * Average pointer-chase latency for each working-set size, after a
 * warm-up sweep brings the set into the cache hierarchy (Fig. 2,
 * WSS sweep: the curve crossing L1/L2/LLC/DRAM).
 */
std::vector<double> runPtrChaseWssSweep(Target target,
                                        const std::vector<std::uint64_t>
                                            &wssBytes,
                                        const Options &opts = {},
                                        RasStats *rasOut = nullptr);

/**
 * Aggregate sequential-access bandwidth (GB/s) with @p threads
 * threads issuing @p kind ops (Fig. 3).
 * @param rasOut when non-null, receives the machine's RAS counters
 *               (zeroed when faults are disabled).
 */
double runSeqBandwidth(Target target, MemOp::Kind kind,
                       std::uint32_t threads, const Options &opts = {},
                       RasStats *rasOut = nullptr,
                       QosStats *qosOut = nullptr);

/**
 * Aggregate random-block bandwidth (GB/s): each thread touches
 * random @p blockBytes blocks in its private region; NT-store blocks
 * are fenced (Fig. 5).
 */
double runRandBandwidth(Target target, MemOp::Kind kind,
                        std::uint32_t threads, std::uint64_t blockBytes,
                        const Options &opts = {},
                        RasStats *rasOut = nullptr,
                        QosStats *qosOut = nullptr);

/** Loaded-latency companion (not a paper figure; used by tests). */
double runLoadedLatency(Target target, std::uint32_t threads,
                        const Options &opts = {},
                        RasStats *rasOut = nullptr,
                        QosStats *qosOut = nullptr);

/** Latency distribution of a loaded dependent-load probe. */
struct LoadedLatencyDist
{
    double avgNs = 0.0;
    double p50Ns = 0.0;
    double p99Ns = 0.0;
    RasStats ras; //!< machine RAS counters (zero when faults are off)
    QosStats qos; //!< overload counters (zero when QoS is off)
};

/**
 * Loaded-latency probe with a tail-visible distribution: windows of
 * dependent loads at random lines are timed individually, so a rare
 * recovery event (link retry, host timeout, stall episode) lands in
 * specific windows and surfaces as p99 rather than vanishing into one
 * long-run average. This is the measurement bench_fault_tail sweeps.
 */
LoadedLatencyDist runLoadedLatencyDist(Target target,
                                       std::uint32_t threads,
                                       const Options &opts = {});

/* -------------------------- overload ----------------------------- */

/** One point of the overload sweep (bench_overload). */
struct OverloadResult
{
    double offeredGBps = 0.0;  //!< unthrottled nt-store issue capacity
    double achievedGBps = 0.0; //!< measured aggregate flood bandwidth
    double probeP99Ns = 0.0;   //!< p99 of a concurrent dependent-load probe
    QosStats qos;              //!< overload counters (zero when QoS off)
    bool watchdogTripped = false;
};

/**
 * Flood the CXL device with @p threads endless non-temporal store
 * streams (the paper's Sec. 4.3.2 overload), measure the achieved
 * aggregate bandwidth over the measurement window, then sample a
 * dependent-load probe's latency distribution under the standing
 * flood. Offered load is the unthrottled issue capacity
 * (threads x line / ntIssueCost), so offered/achieved quantifies the
 * overload cliff -- and what a QoS policy recovers of it.
 */
OverloadResult runOverloadPoint(std::uint32_t threads,
                                const Options &opts = {});

/* ---------------------------- chaos drill ------------------------ */

/** Outcome of one failure drill (memo drill / bench_chaos). */
struct DrillResult
{
    /* throughput across the lifecycle */
    double healthyGBps = 0.0;   //!< before the first failure
    double degradedGBps = 0.0;  //!< link down + degraded-width window
    double recoveredGBps = 0.0; //!< after re-add, full width restored

    /* time-to-detect / time-to-repair (ns; 0 = event never happened) */
    double linkDetectNs = 0.0; //!< outage begin -> first blocked msg
    double linkMttrNs = 0.0;   //!< outage begin -> back at full width
    double removeDetectNs = 0.0; //!< removal -> first aborted request
    double removeMttrNs = 0.0;   //!< removal -> re-add

    /* containment accounting */
    std::uint64_t dataAtRiskBytes = 0; //!< CXL-resident bytes at removal
    std::uint64_t evacuatedBytes = 0;  //!< moved off via DSA by the drill
    bool invariantOk = false; //!< injected == consumed+delivered+contained
    bool watchdogTripped = false;

    RasStats ras;     //!< merged machine RAS counters
    ChaosStats chaos; //!< merged failure-lifecycle counters
};

/**
 * Run a deterministic failure drill against the CXL device: a load
 * flood rides through a scripted link down/retrain, a device
 * hot-remove/re-add and poison-driven page offlining, and the result
 * reports degraded-mode throughput, time-to-detect, MTTR and
 * data-at-risk. When @p opts carries no chaos schedule, the default
 * drill script (link down at 60 us, remove at 100 us, re-add at
 * 130 us, page offlining armed) plus a poison fault stream is used.
 */
DrillResult runDrill(std::uint32_t threads, const Options &opts = {});

/* ------------------------- pooled cluster ------------------------ */

/** Outcome of one pooled-cluster scenario (memo --mode pool). */
struct PoolResult
{
    ClusterResult cluster;

    /** Host the blast-radius invariant protects (-1: every host is a
     *  disturbance target, nothing to compare). */
    std::int32_t victim = -1;

    /**
     * The blast-radius invariant: the victim host's digest (delivered
     * data, poison ledger, status counts) from the full disturbed run
     * is byte-identical to a victim-only baseline run. Vacuously true
     * when the spec carries no disturbance or no victim exists.
     */
    bool isolationOk = true;
};

/**
 * Run the pooled-cluster scenario described by @p spec. When the
 * spec carries a disturbance (aggressor / crash / poison / port-down)
 * and a victim host exists, a second victim-only baseline cluster
 * runs (in parallel when @p jobs > 1, results merged positionally)
 * and the victim digests are compared for the blast-radius invariant.
 * Each cluster runs to quiescence (every op completes or aborts, all
 * fencing and scrubbing settles); opts.simThreads and opts.watchdogUs
 * carry over (the workload seed lives in the spec).
 */
PoolResult runPool(const PoolSpec &spec, const Options &opts = {},
                   unsigned jobs = 1);

/* ------------------------- data movement ------------------------- *
 * Fig. 4: moving data between local DDR5 ("D") and CXL memory ("C").
 * ------------------------------------------------------------------ */

/** Source-to-destination placement of a copy. */
enum class CopyPath
{
    D2D, //!< local DDR5 -> local DDR5
    D2C, //!< local DDR5 -> CXL
    C2D, //!< CXL -> local DDR5
    C2C, //!< CXL -> CXL
};

const char *copyPathName(CopyPath p);

/** How the copy is performed (Fig. 4b, single thread). */
enum class CopyMethod
{
    Memcpy,   //!< temporal load+store through the caches
    Movdir64, //!< cache-bypassing 64 B copies on the core
    DsaSync,  //!< DSA, wait for each submission
    DsaAsync, //!< DSA, keep the WQ full
};

const char *copyMethodName(CopyMethod m);

/**
 * movdir64B copy bandwidth with @p threads threads (Fig. 4a).
 */
double runMovdirBandwidth(CopyPath path, std::uint32_t threads,
                          const Options &opts = {});

/**
 * Single-thread copy bandwidth for @p method (Fig. 4b).
 * @param batch descriptors per DSA batch submission (1 = no batching);
 *              ignored for Memcpy / Movdir64.
 * @param blockBytes bytes per copy operation / DSA descriptor.
 */
double runCopyBandwidth(CopyPath path, CopyMethod method,
                        std::uint32_t batch = 1,
                        std::uint64_t blockBytes = 4 * kiB,
                        const Options &opts = {});

/* --------------------------------------------------------------- *
 * Shared helpers (used by the data-movement benchmarks and tests). *
 * --------------------------------------------------------------- */

/** Build the machine that hosts @p target. */
std::unique_ptr<Machine> makeMachine(Target target, bool prefetch,
                                     const FaultSpec &faults = {});

/** Build the machine that hosts @p target with the full option set
 *  (faults, QoS, watchdog); @p prefetch overrides opts.prefetch for
 *  probes that always run with prefetching off. */
std::unique_ptr<Machine> makeMachine(Target target, const Options &opts,
                                     bool prefetch);

/** The NUMA node id of @p target on @p machine. */
NodeId targetNode(Machine &m, Target target);

/**
 * Run @p stream to completion on @p core of @p machine.
 * @return (startTick, endTick).
 */
std::pair<Tick, Tick> runStream(Machine &m, std::uint16_t core,
                                std::unique_ptr<AccessStream> stream);

} // namespace memo
} // namespace cxlmemo

#endif // CXLMEMO_MEMO_MEMO_HH
