#include "memo/memo.hh"

#include "sim/logging.hh"

namespace cxlmemo
{
namespace memo
{

const char *
targetName(Target t)
{
    switch (t) {
      case Target::Ddr5Local:
        return "DDR5-L8";
      case Target::Ddr5Remote:
        return "DDR5-R1";
      case Target::Cxl:
        return "CXL";
    }
    return "?";
}

std::unique_ptr<Machine>
makeMachine(Target target, bool prefetch, const FaultSpec &faults)
{
    MachineOptions opts;
    opts.prefetchEnabled = prefetch;
    opts.faults = faults;
    const Testbed tb = target == Target::Ddr5Remote
                           ? Testbed::DualSocket
                           : Testbed::SingleSocketCxl;
    return std::make_unique<Machine>(tb, opts);
}

std::unique_ptr<Machine>
makeMachine(Target target, const Options &opts, bool prefetch)
{
    MachineOptions mo;
    mo.prefetchEnabled = prefetch;
    mo.faults = opts.faults;
    mo.qos = opts.qos;
    mo.chaos = opts.chaos;
    mo.obs = opts.obs;
    mo.simThreads = opts.simThreads;
    if (opts.watchdogUs > 0.0)
        mo.watchdogInterval = ticksFromUs(opts.watchdogUs);
    const Testbed tb = target == Target::Ddr5Remote
                           ? Testbed::DualSocket
                           : Testbed::SingleSocketCxl;
    return std::make_unique<Machine>(tb, mo);
}

NodeId
targetNode(Machine &m, Target target)
{
    switch (target) {
      case Target::Ddr5Local:
        return m.localNode();
      case Target::Ddr5Remote:
        return m.remoteNode();
      case Target::Cxl:
        return m.cxlNode();
    }
    CXLMEMO_PANIC("bad target");
}

std::pair<Tick, Tick>
runStream(Machine &m, std::uint16_t core,
          std::unique_ptr<AccessStream> stream)
{
    HwThread thread(m.caches(), core, m.coreParams());
    Tick start = 0;
    Tick end = 0;
    thread.start(std::move(stream), m.eq().curTick(),
                 [&start, &end](Tick s, Tick e) {
        start = s;
        end = e;
    });
    // The watchdog stands down when the queue quiesces between
    // streams; restart its snapshot cycle for this stream's run.
    m.rearmWatchdog();
    m.run();
    CXLMEMO_ASSERT(thread.finished(), "stream did not finish");
    return {start, end};
}

} // namespace memo
} // namespace cxlmemo
