/**
 * @file
 * Implementation of `memo diff`: CSV parsing, row matching, exact
 * stack deltas and the regression verdict. See diff.hh for the
 * contract.
 */

#include "memo/diff.hh"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <unordered_map>

#include "sim/attribution.hh"
#include "sim/fabric_attrib.hh"

namespace cxlmemo
{
namespace memo
{

namespace
{

/** Columns that identify *what* was measured rather than *how fast*.
 *  The intersection of this list with the actual header forms the
 *  row-matching key, so machine sweeps key on target/op/threads/...
 *  and pool runs key on host/port/role. */
const char *const kIdentityColumns[] = {
    "target", "op", "threads", "block", "wss", "path",
    "method", "batch", "host",  "port",  "role",
};

struct CsvTable
{
    std::vector<std::string> header;
    /** identity key -> per-column sums (and a row count) so repeated
     *  keys average instead of colliding. */
    struct Row
    {
        std::vector<double> sum;
        std::size_t n = 0;
    };
    std::map<std::string, Row> rows; //!< ordered: deterministic output
    std::unordered_map<std::string, std::size_t> col;

    bool has(const std::string &name) const
    {
        return col.find(name) != col.end();
    }
};

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (true) {
        std::size_t comma = line.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(line.substr(pos));
            return out;
        }
        out.push_back(line.substr(pos, comma - pos));
        pos = comma + 1;
    }
}

/** Parse one `--csv` run output. Returns false + @p error on an
 *  empty/ragged file. Non-numeric cells (digests, verdict strings)
 *  simply sum as 0 -- the diff only ever reads numeric columns. */
bool
parseCsv(const std::string &text, const char *which, CsvTable &t,
         std::string &error)
{
    std::size_t pos = 0;
    bool sawHeader = false;
    std::vector<std::size_t> idCols;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        const std::vector<std::string> cells = splitCsvLine(line);
        if (!sawHeader) {
            t.header = cells;
            for (std::size_t i = 0; i < cells.size(); ++i)
                t.col.emplace(cells[i], i);
            for (const char *id : kIdentityColumns) {
                auto it = t.col.find(id);
                if (it != t.col.end())
                    idCols.push_back(it->second);
            }
            sawHeader = true;
            continue;
        }
        if (cells.size() != t.header.size()) {
            error = std::string("ragged CSV row in ") + which;
            return false;
        }
        std::string key;
        for (std::size_t c : idCols) {
            key += cells[c];
            key += '|';
        }
        CsvTable::Row &row = t.rows[key];
        if (row.sum.empty())
            row.sum.assign(cells.size(), 0.0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            row.sum[i] += std::strtod(cells[i].c_str(), nullptr);
        ++row.n;
    }
    if (!sawHeader || t.rows.empty()) {
        error = std::string("no data rows in ") + which;
        return false;
    }
    return true;
}

/** Mean of @p colName over the rows of @p t whose keys appear in
 *  @p keys. Missing column -> 0 (callers check has() first where it
 *  matters). */
double
meanOver(const CsvTable &t, const std::vector<std::string> &keys,
         const std::string &colName)
{
    auto it = t.col.find(colName);
    if (it == t.col.end() || keys.empty())
        return 0.0;
    double sum = 0.0;
    std::size_t n = 0;
    for (const std::string &k : keys) {
        const CsvTable::Row &row = t.rows.at(k);
        sum += row.sum[it->second];
        n += row.n;
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

std::string
fmt(const char *format, ...)
{
    char buf[512];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return buf;
}

/** JSON string escaping for the few strings we emit (station names
 *  and verdict text -- no control characters in practice, but be
 *  correct anyway). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += fmt("\\u%04x", c);
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

DiffReport
diffRuns(const std::string &csvA, const std::string &csvB,
         const DiffOptions &opts)
{
    DiffReport r;

    CsvTable A, B;
    if (!parseCsv(csvA, "A", A, r.error)
        || !parseCsv(csvB, "B", B, r.error))
        return r;
    if (A.header != B.header) {
        r.error = "CSV headers differ (compare runs with the same "
                  "mode and flags)";
        return r;
    }

    // The two supported stack tiers: the machine attribution tier
    // (attrib_<station>_{q,s}_ns) and the pool fabric tier
    // (<station>_{q,s}_ns). Station display names keep their dots so
    // verdicts read "cxl.backend", not "cxl_backend".
    struct StackCol
    {
        std::string name, qCol, sCol;
    };
    std::vector<StackCol> stack;
    std::string totalCol;
    if (A.has("attrib_total_ns")) {
        totalCol = "attrib_total_ns";
        for (std::size_t i = 0; i < numStations; ++i) {
            const auto id = static_cast<StationId>(i);
            const std::string c = stationColumn(id);
            stack.push_back({stationName(id), "attrib_" + c + "_q_ns",
                             "attrib_" + c + "_s_ns"});
        }
    } else if (A.has("fabric_total_ns")) {
        totalCol = "fabric_total_ns";
        for (std::size_t i = 0; i < numFabricStations; ++i) {
            const auto id = static_cast<FabricStation>(i);
            const std::string c = fabricStationColumn(id);
            stack.push_back(
                {fabricStationName(id), c + "_q_ns", c + "_s_ns"});
        }
    } else {
        r.error = "no attribution tier in the CSVs (produce them with "
                  "--attrib or --mode report and --csv)";
        return r;
    }

    // Matched identity keys, in A's (sorted-map) order.
    std::vector<std::string> keys;
    for (const auto &kv : A.rows)
        if (B.rows.find(kv.first) != B.rows.end())
            keys.push_back(kv.first);
    if (keys.empty()) {
        r.error = "no matching rows between the two CSVs";
        return r;
    }
    r.rows = keys.size();

    // Comparison basis: a real tail percentile when both runs carry
    // one (histogram tier, or the pool's always-on read_p99_ns),
    // otherwise the attribution mean.
    const char *p99Col = nullptr;
    if (A.has("lat_p99_ns") && meanOver(A, keys, "lat_p99_ns") > 0.0
        && meanOver(B, keys, "lat_p99_ns") > 0.0)
        p99Col = "lat_p99_ns";
    else if (A.has("read_p99_ns"))
        p99Col = "read_p99_ns";
    if (p99Col != nullptr) {
        r.basis = "p99";
        r.aNs = meanOver(A, keys, p99Col);
        r.bNs = meanOver(B, keys, p99Col);
    } else {
        r.basis = "mean_total";
        r.aNs = meanOver(A, keys, totalCol);
        r.bNs = meanOver(B, keys, totalCol);
    }
    r.shiftPct = r.aNs > 0.0 ? 100.0 * (r.bNs - r.aNs) / r.aNs : 0.0;

    // Per-station deltas of the exact stack.
    for (const StackCol &c : stack) {
        StationDelta d;
        d.station = c.name;
        d.aQ = meanOver(A, keys, c.qCol);
        d.aS = meanOver(A, keys, c.sCol);
        d.bQ = meanOver(B, keys, c.qCol);
        d.bS = meanOver(B, keys, c.sCol);
        d.deltaQ = d.bQ - d.aQ;
        d.deltaS = d.bS - d.aS;
        d.deltaNs = d.deltaQ + d.deltaS;
        const double base = d.aQ + d.aS;
        d.pct = base > 0.0 ? 100.0 * d.deltaNs / base : 0.0;
        r.stations.push_back(d);
    }
    std::stable_sort(r.stations.begin(), r.stations.end(),
                     [](const StationDelta &x, const StationDelta &y) {
                         return std::fabs(x.deltaNs)
                                > std::fabs(y.deltaNs);
                     });

    // Verdict.
    if (std::fabs(r.shiftPct) < opts.thresholdPct) {
        r.regime = "no-change";
        r.verdict = fmt("no significant shift (%+.1f%% within the "
                        "%.1f%% band)",
                        r.shiftPct, opts.thresholdPct);
        r.ok = true;
        return r;
    }
    r.regime = r.shiftPct < 0.0 ? "improvement" : "regression";

    double stackDelta = 0.0;
    for (const StationDelta &d : r.stations)
        stackDelta += d.deltaNs;
    const StationDelta &top = r.stations.front();
    const double explained =
        stackDelta != 0.0 ? 100.0 * top.deltaNs / stackDelta : 0.0;

    // Queue-vs-service split of the top mover: service moving with
    // queueing flat means the component itself got slower; queueing
    // moving with service flat means contention, not speed.
    const char *split;
    const char *moved;
    if (std::fabs(top.deltaQ) < 0.25 * std::fabs(top.deltaS)) {
        split = "queue share unchanged -> component got slower, not "
                "more contended";
        moved = "service";
    } else if (std::fabs(top.deltaS) < 0.25 * std::fabs(top.deltaQ)) {
        split = "queueing moved with service flat -> more contended, "
                "not slower";
        moved = "queue";
    } else {
        split = "queueing and service both moved -> load shift on a "
                "slower component";
        moved = std::fabs(top.deltaS) >= std::fabs(top.deltaQ)
                    ? "service" : "queue";
    }
    // Relative when the base is nonzero; absolute ns when the
    // component had no queue/service time at all in A (a percent of
    // zero is undefined, and "+0%" would read as "didn't move").
    const double movedBase = *moved == 's' ? top.aS : top.aQ;
    const double movedDelta = *moved == 's' ? top.deltaS : top.deltaQ;
    const std::string movedBy =
        movedBase > 0.0 ? fmt("%+.0f%%", 100.0 * movedDelta / movedBase)
                        : fmt("%+.0f ns", movedDelta);
    r.verdict = fmt("%s %s %s explains %.0f%% of the %s shift; %s",
                    top.station.c_str(), moved, movedBy.c_str(),
                    explained, r.basis.c_str(), split);
    r.ok = true;
    return r;
}

std::string
diffReportText(const DiffReport &r)
{
    std::string out =
        fmt("memo diff: %zu matched row%s\n", r.rows,
            r.rows == 1 ? "" : "s");
    out += fmt("  %s: %.1f ns -> %.1f ns (%+.1f%%)\n", r.basis.c_str(),
               r.aNs, r.bNs, r.shiftPct);
    out += "  station deltas (ns/request, biggest mover first):\n";
    for (const StationDelta &d : r.stations) {
        if (d.aQ + d.aS == 0.0 && d.bQ + d.bS == 0.0)
            continue; // station idle in both runs: noise
        out += fmt("    %-12s %+8.1f  (q %+.1f, s %+.1f)  [%+.1f%%]\n",
                   d.station.c_str(), d.deltaNs, d.deltaQ, d.deltaS,
                   d.pct);
    }
    out += fmt("  verdict: %s: %s\n", r.regime.c_str(),
               r.verdict.c_str());
    return out;
}

std::string
diffReportJson(const DiffReport &r)
{
    std::string out = "{";
    out += fmt("\"regime\":\"%s\",", jsonEscape(r.regime).c_str());
    out += fmt("\"basis\":\"%s\",", jsonEscape(r.basis).c_str());
    out += fmt("\"a_ns\":%.3f,", r.aNs);
    out += fmt("\"b_ns\":%.3f,", r.bNs);
    out += fmt("\"shift_pct\":%.3f,", r.shiftPct);
    out += fmt("\"matched_rows\":%zu,", r.rows);
    if (!r.stations.empty()) {
        const StationDelta &top = r.stations.front();
        out += fmt("\"top_station\":\"%s\",",
                   jsonEscape(top.station).c_str());
        out += fmt("\"top_delta_ns\":%.3f,", top.deltaNs);
        out += fmt("\"top_queue_delta_ns\":%.3f,", top.deltaQ);
        out += fmt("\"top_service_delta_ns\":%.3f,", top.deltaS);
    }
    out += fmt("\"verdict\":\"%s\",", jsonEscape(r.verdict).c_str());
    out += "\"stations\":[";
    bool first = true;
    for (const StationDelta &d : r.stations) {
        if (!first)
            out += ",";
        first = false;
        out += fmt("{\"station\":\"%s\",\"a_q_ns\":%.3f,"
                   "\"a_s_ns\":%.3f,\"b_q_ns\":%.3f,\"b_s_ns\":%.3f,"
                   "\"delta_ns\":%.3f}",
                   jsonEscape(d.station).c_str(), d.aQ, d.aS, d.bQ,
                   d.bS, d.deltaNs);
    }
    out += "]}\n";
    return out;
}

} // namespace memo
} // namespace cxlmemo
