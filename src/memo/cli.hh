/**
 * @file
 * Command-line front end for MEMO, matching the paper's description:
 * "Users can provide command-line arguments to specify the workloads
 * to be executed by MEMO."
 *
 * Examples:
 *   memo --mode latency  --target cxl
 *   memo --mode seq      --target ddr5-l8 --op load --threads 1-32
 *   memo --mode rand     --target cxl --op nt-store --block 16K \
 *        --threads 1,2,4,8
 *   memo --mode chase    --target ddr5-r1 --wss 16K-512M
 *   memo --mode copy     --path d2c --method dsa --batch 16
 *   memo --mode loaded   --target cxl --threads 12
 *   memo --mode report   --target cxl --op load --threads 1-32
 *   memo --mode drill    --threads 8
 *   memo --mode drill    --chaos-spec link-down-at-ns=50000,crc-burst=8
 *
 * The parser is a standalone, testable component; `memoCliMain` is
 * the actual entry point used by the `memo` binary.
 */

#ifndef CXLMEMO_MEMO_CLI_HH
#define CXLMEMO_MEMO_CLI_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "memo/memo.hh"

namespace cxlmemo
{
namespace memo
{

/** What the invocation asks MEMO to do. */
enum class CliMode
{
    Latency, //!< Fig. 2 instruction probes
    Seq,     //!< sequential bandwidth sweep
    Rand,    //!< random-block bandwidth sweep
    Chase,   //!< pointer-chase WSS sweep
    Copy,    //!< data-movement (memcpy/movdir64B/DSA)
    Loaded,  //!< loaded latency
    Report,  //!< bandwidth sweep + per-point attribution breakdown
    Drill,   //!< deterministic failure-lifecycle drill
    Pool,    //!< multi-host pooled-memory cluster scenario
    Diff,    //!< differential regression verdict over two CSV runs
    Help,
};

/** Parsed command line. */
struct CliConfig
{
    CliMode mode = CliMode::Help;
    Target target = Target::Ddr5Local;
    MemOp::Kind op = MemOp::Kind::Load;
    std::vector<std::uint32_t> threads = {1};
    std::vector<std::uint64_t> blockBytes = {4 * kiB};
    std::vector<std::uint64_t> wssBytes;
    CopyPath path = CopyPath::D2C;
    CopyMethod method = CopyMethod::Memcpy;
    std::uint32_t batch = 1;
    bool prefetch = false;
    bool csv = false;
    std::uint64_t seed = 42;
    /** RAS fault injection (`--fault-spec`); disabled by default. */
    FaultSpec faults;
    /** Overload control (`--qos-spec`); disabled by default. */
    QosSpec qos;
    /** Failure-lifecycle schedule (`--chaos-spec`); disabled by
     *  default. Drill mode substitutes its default script when this
     *  is empty. */
    ChaosSpec chaos;
    /** Watchdog snapshot interval in microseconds (`--watchdog` /
     *  `--watchdog-ns`); 0 = no watchdog. */
    double watchdogUs = 0.0;

    /** Pooled-cluster scenario (`--pool-spec`, pool mode only). Pool
     *  mode carries all disturbances inside this spec and rejects
     *  `--fault-spec` / `--qos-spec` / `--chaos-spec`. */
    PoolSpec poolSpec;

    /**
     * Host threads for sweep modes (seq/rand/chase/loaded): each sweep
     * point simulates an independent Machine, so points run
     * concurrently through SweepRunner. 0 means one per hardware
     * thread. Output is identical for every value -- results are
     * printed in sweep order, not completion order.
     */
    std::uint32_t jobs = 1;

    /** Worker threads for the domain-partitioned parallel simulation
     *  engine (`--sim-threads`): 0 (the default) keeps the classic
     *  single-queue engine; any value >= 1 enables domain
     *  partitioning, with output byte-identical at every count. */
    std::uint32_t simThreads = 0;

    /* -------------------- flight recorder ------------------------ */

    /** Chrome trace-event JSON output file (`--trace-out`); empty
     *  (the default) disables tracing unless `--trace-sample` is
     *  given explicitly (post-mortem ring only). */
    std::string traceOut;

    /** Trace 1-in-N requests (`--trace-sample N` or `1/N`); 0 means
     *  "default" (64 when tracing is otherwise enabled). */
    std::uint64_t traceSampleEvery = 0;

    /** Interval-metrics CSV output file (`--metrics-out`). */
    std::string metricsOut;

    /** Metrics snapshot interval (`--metrics-interval-ns`); 0 means
     *  "default" (1000 ns when `--metrics-out` is given). */
    std::uint64_t metricsIntervalNs = 0;

    /** Enable per-component latency histograms (`--histograms`). */
    bool histograms = false;

    /** Exhaustive latency accounting / bottleneck attribution
     *  (`--attrib`; forced on by `--mode report`). */
    bool attrib = false;

    /** Worst-K tail capture depth (`--tail-trace K`); 0 = off. */
    std::uint32_t tailK = 0;

    /* ---------------------- diff mode ---------------------------- */

    /** The two CSV files `memo diff A.csv B.csv` compares. */
    std::string diffA;
    std::string diffB;

    /** Machine-readable JSON verdict (`--json`, diff mode only). */
    bool diffJson = false;

    /** No-change band in percent (`--diff-threshold`, diff mode). */
    double diffThresholdPct = 5.0;

    /** The resolved observability options this invocation runs with
     *  (all-off unless one of the flags above was given). */
    ObservabilityOptions observability() const;
};

/**
 * The CSV header `--csv` emits for @p mode. Exactly one header row is
 * printed per run. With no optional column group active the base
 * column set matches the pre-observability output byte-for-byte; as
 * soon as *any* of @p ras / @p qos / @p hist / @p attrib is active,
 * the full superset (base + RAS + QoS + histogram + attribution
 * columns) is emitted and every row carries every group (zeros for
 * inactive ones), so the column set is stable across
 * fault/QoS/histogram/attribution configurations and mergeable across
 * runs.
 */
std::string csvHeader(CliMode mode, bool ras, bool qos, bool hist,
                      bool attrib = false, bool tail = false);

/**
 * Parse argv into a CliConfig.
 * @return std::nullopt plus an error string on bad input.
 */
std::optional<CliConfig> parseCli(const std::vector<std::string> &args,
                                  std::string &error);

/** Parse a size like "16K", "4M", "1G", "512" (bytes). */
std::optional<std::uint64_t> parseSize(const std::string &text);

/**
 * Parse a list/range spec: "8", "1,2,4", "1-32" (powers-of-two steps
 * plus endpoints for ranges).
 */
std::optional<std::vector<std::uint64_t>>
parseListSpec(const std::string &text);

/** Usage text. */
std::string cliUsage();

/** Entry point for the `memo` binary. */
int memoCliMain(int argc, char **argv);

} // namespace memo
} // namespace cxlmemo

#endif // CXLMEMO_MEMO_CLI_HH
