#include "memo/memo.hh"

#include <memory>
#include <vector>

#include "cpu/streams.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace cxlmemo
{
namespace memo
{

namespace
{

/** Per-thread private region for bandwidth streams. */
constexpr std::uint64_t regionBytes = 128 * miB;

/** Effectively-infinite stream length; measurement is window-based. */
constexpr std::uint64_t endlessBytes = std::uint64_t(1) << 42;

std::uint64_t
threadBytes(const HwThread &t)
{
    return t.stats().bytesRead + t.stats().bytesWritten;
}

/**
 * Launch @p threads streams built by @p makeStream, warm up, then
 * measure aggregate issued bytes over the measurement window.
 */
template <typename MakeStream>
double
windowedBandwidth(Machine &m, std::uint32_t threads,
                  const Options &opts, MakeStream makeStream)
{
    CXLMEMO_ASSERT(threads >= 1 && threads <= m.numCores(),
                   "thread count %u out of range", threads);
    std::vector<std::unique_ptr<HwThread>> pool;
    pool.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.push_back(m.makeThread(static_cast<std::uint16_t>(t)));
        pool.back()->start(makeStream(t), 0, nullptr);
    }

    m.runUntil(ticksFromUs(opts.warmupUs));
    std::uint64_t before = 0;
    for (const auto &t : pool)
        before += threadBytes(*t);

    const Tick window = ticksFromUs(opts.measureUs);
    m.runUntil(ticksFromUs(opts.warmupUs) + window);
    std::uint64_t after = 0;
    for (const auto &t : pool)
        after += threadBytes(*t);

    return gbPerSec(after - before, window);
}

/**
 * Temporal-store streams reach steady state only once the LLC is full
 * of dirty lines (every fill then displaces a dirty victim and emits
 * a writeback). Prime that state directly instead of simulating the
 * multi-millisecond warm-up that would otherwise be required.
 */
void
maybePrimeForStores(Machine &m, MemOp::Kind kind, const MemPolicy &policy)
{
    if (kind != MemOp::Kind::Store)
        return;
    const std::uint64_t llc = m.caches().params().llc.sizeBytes;
    NumaBuffer prime = m.numa().alloc(llc + llc / 4, policy);
    m.caches().primeLlcDirty(prime, 0);
}

void
exportRas(const Machine &m, RasStats *rasOut)
{
    if (!rasOut)
        return;
    if (const RasStats *rs = m.rasStats())
        *rasOut = *rs;
    else
        rasOut->reset();
}

void
exportQos(const Machine &m, QosStats *qosOut)
{
    if (!qosOut)
        return;
    if (auto qs = m.qosStats())
        *qosOut = *qs;
    else
        qosOut->reset();
}

} // namespace

double
runSeqBandwidth(Target target, MemOp::Kind kind, std::uint32_t threads,
                const Options &opts, RasStats *rasOut, QosStats *qosOut)
{
    auto m = makeMachine(target, opts, opts.prefetch);
    const MemPolicy policy = MemPolicy::membind(targetNode(*m, target));
    NumaBuffer buf =
        m->numa().alloc(std::uint64_t(threads) * regionBytes, policy);
    maybePrimeForStores(*m, kind, policy);

    const double gbps =
        windowedBandwidth(*m, threads, opts, [&](std::uint32_t t) {
            return std::make_unique<SequentialStream>(
                buf, std::uint64_t(t) * regionBytes, regionBytes,
                endlessBytes, kind);
        });
    exportRas(*m, rasOut);
    exportQos(*m, qosOut);
    if (opts.onMachineDone)
        opts.onMachineDone(*m);
    return gbps;
}

double
runRandBandwidth(Target target, MemOp::Kind kind, std::uint32_t threads,
                 std::uint64_t blockBytes, const Options &opts,
                 RasStats *rasOut, QosStats *qosOut)
{
    auto m = makeMachine(target, opts, opts.prefetch);
    const MemPolicy policy = MemPolicy::membind(targetNode(*m, target));
    NumaBuffer buf =
        m->numa().alloc(std::uint64_t(threads) * regionBytes, policy);
    maybePrimeForStores(*m, kind, policy);

    // MEMO issues an sfence after each NT-store block to enforce
    // block-level write order (Sec. 4.3.2).
    const bool fence = kind == MemOp::Kind::NtStore;
    const double gbps =
        windowedBandwidth(*m, threads, opts, [&](std::uint32_t t) {
            return std::make_unique<RandomBlockStream>(
                buf, std::uint64_t(t) * regionBytes, regionBytes,
                endlessBytes, blockBytes, kind, fence,
                opts.seed + 1000 + t);
        });
    exportRas(*m, rasOut);
    exportQos(*m, qosOut);
    if (opts.onMachineDone)
        opts.onMachineDone(*m);
    return gbps;
}

double
runLoadedLatency(Target target, std::uint32_t threads,
                 const Options &opts, RasStats *rasOut, QosStats *qosOut)
{
    CXLMEMO_ASSERT(threads >= 1, "need at least the probe thread");
    auto m = makeMachine(target, opts, opts.prefetch);
    const MemPolicy policy = MemPolicy::membind(targetNode(*m, target));
    NumaBuffer probe_buf = m->numa().alloc(regionBytes, policy);
    NumaBuffer bg_buf = m->numa().alloc(
        std::uint64_t(std::max(threads, 2u) - 1) * regionBytes, policy);

    // threads-1 background load streams...
    std::vector<std::unique_ptr<HwThread>> pool;
    for (std::uint32_t t = 0; t + 1 < threads; ++t) {
        pool.push_back(m->makeThread(static_cast<std::uint16_t>(t)));
        pool.back()->start(
            std::make_unique<SequentialStream>(
                bg_buf, std::uint64_t(t) * regionBytes, regionBytes,
                endlessBytes, MemOp::Kind::Load),
            0, nullptr);
    }
    m->runUntil(ticksFromUs(opts.warmupUs));

    // ...plus a dependent-load probe in its own region.
    constexpr std::uint64_t probe_accesses = 3000;
    auto probe = std::make_unique<PointerChaseStream>(
        probe_buf, regionBytes, probe_accesses, /*warmup=*/false,
        opts.seed);
    auto probe_thread =
        m->makeThread(static_cast<std::uint16_t>(threads - 1));
    Tick start = 0;
    Tick end = 0;
    bool done = false;
    probe_thread->start(std::move(probe), m->eq().curTick(),
                        [&](Tick s, Tick e) {
        start = s;
        end = e;
        done = true;
    });
    while (!done) {
        const Tick horizon = m->eq().curTick() + ticksFromUs(50.0);
        if (m->runUntil(horizon) && !done)
            CXLMEMO_PANIC("probe starved: event queue drained");
    }
    exportRas(*m, rasOut);
    exportQos(*m, qosOut);
    if (opts.onMachineDone)
        opts.onMachineDone(*m);
    return nsFromTicks(end - start) / static_cast<double>(probe_accesses);
}

LoadedLatencyDist
runLoadedLatencyDist(Target target, std::uint32_t threads,
                     const Options &opts)
{
    CXLMEMO_ASSERT(threads >= 1, "need at least the probe thread");
    auto m = makeMachine(target, opts, opts.prefetch);
    const MemPolicy policy = MemPolicy::membind(targetNode(*m, target));
    NumaBuffer probe_buf = m->numa().alloc(regionBytes, policy);
    NumaBuffer bg_buf = m->numa().alloc(
        std::uint64_t(std::max(threads, 2u) - 1) * regionBytes, policy);

    std::vector<std::unique_ptr<HwThread>> pool;
    for (std::uint32_t t = 0; t + 1 < threads; ++t) {
        pool.push_back(m->makeThread(static_cast<std::uint16_t>(t)));
        pool.back()->start(
            std::make_unique<SequentialStream>(
                bg_buf, std::uint64_t(t) * regionBytes, regionBytes,
                endlessBytes, MemOp::Kind::Load),
            0, nullptr);
    }
    m->runUntil(ticksFromUs(opts.warmupUs));

    // Serial dependent loads at random lines, timed per window: a
    // recovery episode (link retry, timeout+backoff, stall) lands in
    // one window and shows up as tail latency instead of averaging
    // away over the whole run.
    constexpr int windows = 200;
    constexpr int opsPerWindow = 64;
    const std::uint64_t lines = regionBytes / cachelineBytes;
    Rng addr_rng(opts.seed + 0x715a); // distinct from workload streams
    SampleSeries window_ns;
    const auto core = static_cast<std::uint16_t>(threads - 1);
    for (int w = 0; w < windows; ++w) {
        std::vector<MemOp> ops;
        ops.reserve(opsPerWindow);
        for (int i = 0; i < opsPerWindow; ++i) {
            const Addr a = probe_buf.translate(addr_rng.below(lines)
                                               * cachelineBytes);
            ops.push_back({MemOp::Kind::DependentLoad, a, 0});
        }
        auto probe_thread = m->makeThread(core);
        Tick start = 0;
        Tick end = 0;
        bool done = false;
        probe_thread->start(std::make_unique<ListStream>(std::move(ops)),
                            m->eq().curTick(), [&](Tick s, Tick e) {
            start = s;
            end = e;
            done = true;
        });
        while (!done) {
            const Tick horizon = m->eq().curTick() + ticksFromUs(50.0);
            if (m->runUntil(horizon) && !done)
                CXLMEMO_PANIC("probe starved: event queue drained");
        }
        window_ns.record(nsFromTicks(end - start) / opsPerWindow);
    }

    LoadedLatencyDist dist;
    dist.avgNs = window_ns.mean();
    dist.p50Ns = window_ns.p50();
    dist.p99Ns = window_ns.p99();
    if (const RasStats *rs = m->rasStats())
        dist.ras = *rs;
    exportQos(*m, &dist.qos);
    if (opts.onMachineDone)
        opts.onMachineDone(*m);
    return dist;
}

} // namespace memo
} // namespace cxlmemo
