#include "interconnect/switch.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "sim/fabric_attrib.hh"
#include "sim/logging.hh"
#include "sim/statmerge.hh"
#include "sim/trace.hh"

namespace cxlmemo
{

void
CxlSwitchParams::validate() const
{
    if (ports == 0 || ports > 64)
        throw std::invalid_argument(
            "CxlSwitchParams: ports must be in [1, 64]");
    if (portLatency == 0)
        throw std::invalid_argument(
            "CxlSwitchParams: zero port latency breaks the "
            "parallel-engine lookahead");
    if (portGBps <= 0.0)
        throw std::invalid_argument(
            "CxlSwitchParams: port bandwidth must be positive");
    if (headerBytes == 0)
        throw std::invalid_argument(
            "CxlSwitchParams: header bytes must be nonzero");
}

void
SwitchPortStats::merge(const SwitchPortStats &o)
{
    mergeCounters(*this, o, &SwitchPortStats::reqs,
                  &SwitchPortStats::reads, &SwitchPortStats::writes,
                  &SwitchPortStats::reqBytes,
                  &SwitchPortStats::responses,
                  &SwitchPortStats::poisoned, &SwitchPortStats::aborted,
                  &SwitchPortStats::abortedInFlight,
                  &SwitchPortStats::droppedResponses,
                  &SwitchPortStats::creditStalls,
                  &SwitchPortStats::creditStallTicks,
                  &SwitchPortStats::heldWhileDown,
                  &SwitchPortStats::downs, &SwitchPortStats::retrains);
    mergeTimestamps(*this, o, &SwitchPortStats::downAt,
                    &SwitchPortStats::upAt, &SwitchPortStats::fencedAt);
}

const char *
portStateName(PortState s)
{
    switch (s) {
      case PortState::Up:
        return "up";
      case PortState::Down:
        return "down";
      case PortState::Fenced:
        return "fenced";
    }
    return "?";
}

CxlSwitch::CxlSwitch(EventQueue &eq, CxlSwitchParams params,
                     std::vector<MemoryDevice *> downstream)
    : eq_(eq), params_(std::move(params)), devices_(std::move(downstream))
{
    params_.validate();
    if (devices_.empty())
        throw std::invalid_argument("CxlSwitch: no downstream devices");
    for (MemoryDevice *d : devices_)
        if (!d)
            throw std::invalid_argument("CxlSwitch: null device");
    ports_.resize(params_.ports);
    for (Port &p : ports_) {
        p.voq.resize(devices_.size());
        if (params_.rdCredits > 0 || params_.wrCredits > 0) {
            p.credits = std::make_unique<LinkCredits>(
                params_.rdCredits, params_.wrCredits);
        }
    }
    xbar_.resize(devices_.size());
}

std::uint32_t
CxlSwitch::wireBytes(MemCmd cmd, std::uint32_t size, bool response) const
{
    const bool data = response ? !isWrite(cmd) : isWrite(cmd);
    return data ? size : params_.headerBytes;
}

std::uint32_t
CxlSwitch::allocSlot(InFlight f)
{
    f.used = true;
    if (!freeSlots_.empty()) {
        const std::uint32_t s = freeSlots_.back();
        freeSlots_.pop_back();
        slots_[s] = std::move(f);
        return s;
    }
    slots_.push_back(std::move(f));
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void
CxlSwitch::submit(std::uint32_t port, std::uint32_t dev, Op op)
{
    CXLMEMO_ASSERT(port < ports_.size(), "submit on unknown port %u",
                   (unsigned)port);
    CXLMEMO_ASSERT(dev < devices_.size(), "submit to unknown device %u",
                   (unsigned)dev);
    Port &p = ports_[port];
    ++p.stats.reqs;
    if (isWrite(op.cmd))
        ++p.stats.writes;
    else
        ++p.stats.reads;
    p.stats.reqBytes += wireBytes(op.cmd, op.size, false);

    const Tick now = eq_.curTick();
    if (board_)
        board_->beginRequest(port, op.issued);
    if (p.state == PortState::Fenced) {
        completeAborted(port, std::move(op), now);
        return;
    }
    Pending pend{std::move(op), dev, now};
    if (p.state == PortState::Down) {
        ++p.stats.heldWhileDown;
        p.held.push_back(std::move(pend));
        return;
    }
    admit(port, std::move(pend));
}

void
CxlSwitch::admit(std::uint32_t port, Pending pend)
{
    Port &p = ports_[port];
    RequestTracer::mark(pend.op.span, TraceStage::SwCredit,
                        eq_.curTick());
    if (p.credits) {
        CreditPool &pool = isWrite(pend.op.cmd) ? p.credits->wr
                                                : p.credits->rd;
        // A zero-capacity class is uncapped (mirrors QosSpec).
        if (pool.capacity() > 0 && !pool.tryAcquire()) {
            ++p.stats.creditStalls;
            if (board_)
                board_->station(port, FabricStation::CreditWait)
                    .enter(eq_.curTick());
            p.creditWait.push_back(std::move(pend));
            return;
        }
    }
    if (board_)
        board_->station(port, FabricStation::CreditWait)
            .passThrough(0, 0, 0, true, eq_.curTick());
    enqueueVoq(port, std::move(pend));
}

void
CxlSwitch::enqueueVoq(std::uint32_t port, Pending pend)
{
    const std::uint32_t dev = pend.dev;
    RequestTracer::mark(pend.op.span, TraceStage::SwVoq, eq_.curTick());
    if (board_)
        board_->station(port, FabricStation::VoqWait)
            .enter(eq_.curTick());
    ports_[port].voq[dev].push_back(std::move(pend));
    arbitrate(dev);
}

void
CxlSwitch::arbitrate(std::uint32_t dev)
{
    Xbar &x = xbar_[dev];
    const Tick now = eq_.curTick();
    if (x.busy > now) {
        if (!x.kickScheduled) {
            x.kickScheduled = true;
            eq_.schedule(x.busy, [this, dev] {
                xbar_[dev].kickScheduled = false;
                arbitrate(dev);
            });
        }
        return;
    }

    // Grant: rotating cursor (or fixed priority) over the ports with
    // a non-empty VOQ for this device, FIFO within a port -- a pure
    // function of (tick, port rank, sequence).
    const auto nPorts = static_cast<std::uint32_t>(ports_.size());
    std::uint32_t pick = nPorts;
    if (params_.arb == CxlSwitchParams::Arb::RoundRobin) {
        for (std::uint32_t i = 1; i <= nPorts; ++i) {
            const std::uint32_t c = (x.cursor + i) % nPorts;
            if (!ports_[c].voq[dev].empty()) {
                pick = c;
                break;
            }
        }
        if (pick < nPorts)
            x.cursor = pick;
    } else {
        for (std::uint32_t c = 0; c < nPorts; ++c) {
            if (!ports_[c].voq[dev].empty()) {
                pick = c;
                break;
            }
        }
    }
    if (pick >= nPorts)
        return;

    Port &p = ports_[pick];
    Pending pend = std::move(p.voq[dev].front());
    p.voq[dev].pop_front();

    const Tick ser = serializationTicks(
        wireBytes(pend.op.cmd, pend.op.size, false), params_.portGBps);
    x.busy = now + ser;
    const Tick dispatch = x.busy + params_.forwardLatency;
    if (board_) {
        auto &voqSt = board_->station(pick, FabricStation::VoqWait);
        voqSt.exitNow(now);
        voqSt.account(now - pend.enq, 0, 0, true, now);
        // Arb service = crossbar serialization + forward pipeline;
        // only the serialization occupies the crossbar server.
        board_->station(pick, FabricStation::Arb)
            .passThrough(0, dispatch - now, ser, true, dispatch);
    }
    RequestTracer::mark(pend.op.span, TraceStage::SwXbar, now);
    RequestTracer::mark(pend.op.span, TraceStage::SwDev, dispatch);
    ++p.inFlight;
    const std::uint32_t slot =
        allocSlot(InFlight{std::move(pend.op), pick, dev, true, dispatch});

    eq_.schedule(dispatch, [this, slot, dev] {
        InFlight &f = slots_[slot];
        MemRequest req;
        req.addr = f.op.addr;
        req.size = f.op.size;
        req.cmd = f.op.cmd;
        req.source = static_cast<std::uint16_t>(f.port);
        req.onComplete = [this, slot](Tick t) { deviceDone(slot, t); };
        devices_[dev]->access(std::move(req));
    });

    // More work waiting? Re-arbitrate when the crossbar server frees.
    bool more = false;
    for (const Port &q : ports_)
        if (!q.voq[dev].empty())
            more = true;
    if (more && !x.kickScheduled) {
        x.kickScheduled = true;
        eq_.schedule(std::max(x.busy, now + 1), [this, dev] {
            xbar_[dev].kickScheduled = false;
            arbitrate(dev);
        });
    }
}

void
CxlSwitch::deviceDone(std::uint32_t slot, Tick now)
{
    InFlight &f = slots_[slot];
    Port &p = ports_[f.port];

    if (board_)
        board_->station(f.port, FabricStation::DevService)
            .passThrough(0, now - f.dispatch, now - f.dispatch, true,
                         now);

    // Functional commit/read at the deterministic device-completion
    // point. A fenced host's in-flight write still commits (the data
    // reached the device before the fence; quarantine + scrub wipes
    // the window anyway), but nothing is read back for it.
    if (dataHook_ && p.state != PortState::Fenced)
        f.op.value = dataHook_(f.dev, f.op.cmd, f.op.addr, f.op.value);

    if (p.state == PortState::Fenced) {
        ++p.stats.abortedInFlight;
        ++p.stats.droppedResponses;
        releaseCredit(f.port, f.op.cmd, now);
        completeAborted(f.port, std::move(f.op), now);
        --p.inFlight;
        f.used = false;
        freeSlots_.push_back(slot);
        return;
    }
    if (p.state == PortState::Down) {
        ++p.stats.heldWhileDown;
        p.downResp.push_back(slot);
        return;
    }
    egress(slot, now);
}

void
CxlSwitch::egress(std::uint32_t slot, Tick now)
{
    InFlight &f = slots_[slot];
    Port &p = ports_[f.port];
    const Tick grant = std::max(now, p.egressBusy);
    const Tick ser = serializationTicks(
        wireBytes(f.op.cmd, f.op.size, true), params_.portGBps);
    p.egressBusy = grant + ser;
    if (board_)
        // Wire service folds in both port-latency hops (host->switch
        // on the way down, switch->host on the way back): fixed wire
        // propagation, so it never counts as server-busy time.
        board_->station(f.port, FabricStation::Wire)
            .passThrough(grant - now, ser + 2 * params_.portLatency,
                         ser, true, p.egressBusy + params_.portLatency);
    RequestTracer::mark(f.op.span, TraceStage::SwEgress, now);
    RequestTracer::mark(f.op.span, TraceStage::SwS2m, p.egressBusy);

    // One event at wire-departure time: the credit rides back with
    // the response, and the upstream delivery lands a port latency
    // later.
    eq_.schedule(p.egressBusy, [this, slot] {
        InFlight &g = slots_[slot];
        Port &q = ports_[g.port];
        const Tick t = eq_.curTick();
        releaseCredit(g.port, g.op.cmd, t);
        if (q.state == PortState::Fenced) {
            // Fenced between completion and departure: the response
            // is dropped on the wire.
            ++q.stats.abortedInFlight;
            ++q.stats.droppedResponses;
            completeAborted(g.port, std::move(g.op), t);
        } else {
            ++q.stats.responses;
            ++retired_;
            const Tick delivery = t + params_.portLatency;
            if (board_)
                board_->completeRequest(g.port, g.op.issued, delivery);
            auto done = std::move(g.op.done);
            done(delivery, Status::Ok, g.op.value);
        }
        --q.inFlight;
        g.used = false;
        freeSlots_.push_back(slot);
    });
}

void
CxlSwitch::completeAborted(std::uint32_t port, Op op, Tick now)
{
    Port &p = ports_[port];
    const Status st = (p.fencePolicy == ContainPolicy::Poison
                       && !isWrite(op.cmd))
                          ? Status::Poisoned
                          : Status::Aborted;
    ++p.stats.aborted;
    if (st == Status::Poisoned)
        ++p.stats.poisoned;
    RequestTracer::mark(op.span, TraceStage::SwFenceAbort, now);
    if (board_)
        // The abort's unaccounted tail lands in the port's residual.
        board_->completeRequest(
            port, op.issued,
            now + params_.abortLatency + params_.portLatency);
    // Delivery tick includes the port latency, like every completion:
    // the caller may rely on a >= portLatency gap between the fabric
    // tick and the delivery tick (parallel-engine lookahead).
    eq_.schedule(now + params_.abortLatency,
                 [this, done = std::move(op.done), st]() mutable {
                     ++retired_;
                     done(eq_.curTick() + params_.portLatency, st, 0);
                 });
}

void
CxlSwitch::releaseCredit(std::uint32_t port, MemCmd cmd, Tick now)
{
    Port &p = ports_[port];
    if (!p.credits)
        return;
    CreditPool &pool = isWrite(cmd) ? p.credits->wr : p.credits->rd;
    if (pool.capacity() == 0)
        return;
    pool.release();
    // Wake waiters in strict FIFO order; a blocked head blocks the
    // port (per-port ordering is part of the determinism contract).
    while (!p.creditWait.empty()) {
        Pending &head = p.creditWait.front();
        CreditPool &hp = isWrite(head.op.cmd) ? p.credits->wr
                                              : p.credits->rd;
        if (hp.capacity() > 0) {
            if (hp.available() == 0)
                break;
            hp.tryAcquire();
            const Tick waited = now - head.enq;
            hp.noteStallEnd(waited);
            p.stats.creditStallTicks += waited;
        }
        Pending pend = std::move(p.creditWait.front());
        p.creditWait.pop_front();
        if (board_) {
            auto &cs =
                board_->station(port, FabricStation::CreditWait);
            cs.exitNow(now);
            cs.account(now - pend.enq, 0, 0, true, now);
        }
        pend.enq = now;
        enqueueVoq(port, std::move(pend));
    }
}

void
CxlSwitch::portDown(std::uint32_t port, Tick retrain)
{
    Port &p = ports_[port];
    if (p.state != PortState::Up)
        return;
    p.state = PortState::Down;
    ++p.stats.downs;
    p.stats.downAt = eq_.curTick();
    eq_.schedule(eq_.curTick() + retrain, [this, port] {
        Port &q = ports_[port];
        if (q.state != PortState::Down)
            return; // fenced mid-retrain: fencing already drained
        q.state = PortState::Up;
        ++q.stats.retrains;
        const Tick t = eq_.curTick();
        q.stats.upAt = t;
        // Release held traffic in arrival order, then held responses.
        while (!q.held.empty()) {
            Pending pend = std::move(q.held.front());
            q.held.pop_front();
            pend.enq = t;
            admit(port, std::move(pend));
        }
        while (!q.downResp.empty()) {
            const std::uint32_t slot = q.downResp.front();
            q.downResp.pop_front();
            egress(slot, t);
        }
    });
}

void
CxlSwitch::fencePort(std::uint32_t port, ContainPolicy policy)
{
    Port &p = ports_[port];
    if (p.state == PortState::Fenced)
        return;
    p.state = PortState::Fenced;
    p.fencePolicy = policy;
    const Tick now = eq_.curTick();
    p.stats.fencedAt = now;

    // Credit waiters never acquired a credit; abort directly.
    while (!p.creditWait.empty()) {
        Pending pend = std::move(p.creditWait.front());
        p.creditWait.pop_front();
        if (board_) {
            auto &cs =
                board_->station(port, FabricStation::CreditWait);
            cs.exitNow(now);
            cs.account(now - pend.enq, 0, 0, true, now);
        }
        completeAborted(port, std::move(pend.op), now);
    }
    // VOQ entries hold a credit; return it on the abort path so the
    // ledger (issued == returned + in_flight) survives the fence.
    for (auto &q : p.voq) {
        while (!q.empty()) {
            Pending pend = std::move(q.front());
            q.pop_front();
            if (board_) {
                auto &vs =
                    board_->station(port, FabricStation::VoqWait);
                vs.exitNow(now);
                vs.account(now - pend.enq, 0, 0, true, now);
            }
            releaseCredit(port, pend.op.cmd, now);
            completeAborted(port, std::move(pend.op), now);
        }
    }
    // Traffic parked by an outage never passed the credit gate.
    while (!p.held.empty()) {
        Pending pend = std::move(p.held.front());
        p.held.pop_front();
        completeAborted(port, std::move(pend.op), now);
    }
    // Responses parked by an outage: drop on the wire.
    while (!p.downResp.empty()) {
        const std::uint32_t slot = p.downResp.front();
        p.downResp.pop_front();
        InFlight &f = slots_[slot];
        ++p.stats.abortedInFlight;
        ++p.stats.droppedResponses;
        releaseCredit(port, f.op.cmd, now);
        completeAborted(port, std::move(f.op), now);
        --p.inFlight;
        f.used = false;
        freeSlots_.push_back(slot);
    }
    // Requests the downstream device still owns abort at completion
    // (deviceDone checks the port state).
}

bool
CxlSwitch::creditLedgerOk() const
{
    for (const Port &p : ports_)
        if (p.credits && !p.credits->ledgerOk())
            return false;
    return true;
}

SwitchGauges
CxlSwitch::gauges() const
{
    SwitchGauges g;
    for (const Port &p : ports_) {
        g.creditWait += p.creditWait.size();
        for (const auto &q : p.voq)
            g.voq += q.size();
        g.inFlight += p.inFlight;
        g.held += p.held.size() + p.downResp.size();
    }
    return g;
}

std::uint64_t
CxlSwitch::progressOutstanding() const
{
    const SwitchGauges g = gauges();
    return g.creditWait + g.voq + g.inFlight + g.held;
}

std::string
CxlSwitch::progressDiagnosis() const
{
    std::ostringstream os;
    os << params_.name << ": " << ports_.size() << " ports, "
       << devices_.size() << " pooled devices\n";
    Tick oldest = maxTick;
    std::uint32_t oldestPort = 0;
    for (std::uint32_t i = 0; i < ports_.size(); ++i) {
        const Port &p = ports_[i];
        std::size_t voq = 0;
        Tick first = maxTick;
        for (const auto &q : p.voq) {
            voq += q.size();
            if (!q.empty())
                first = std::min(first, q.front().enq);
        }
        if (!p.creditWait.empty())
            first = std::min(first, p.creditWait.front().enq);
        if (!p.held.empty())
            first = std::min(first, p.held.front().enq);
        os << "  port" << i << " (host" << i
           << "): state=" << portStateName(p.state)
           << " credit-wait=" << p.creditWait.size() << " voq=" << voq
           << " in-flight=" << p.inFlight
           << " held=" << p.held.size() + p.downResp.size();
        if (first != maxTick) {
            os << " oldest-waiting=" << nsFromTicks(first) << " ns";
            if (first < oldest) {
                oldest = first;
                oldestPort = i;
            }
        }
        os << "\n";
    }
    if (oldest != maxTick) {
        os << "  stuck: port" << oldestPort << " (host" << oldestPort
           << "), oldest waiting request from "
           << nsFromTicks(oldest) << " ns\n";
    }
    return os.str();
}

std::string
CxlSwitch::progressInvariant() const
{
    for (std::uint32_t i = 0; i < ports_.size(); ++i) {
        const Port &p = ports_[i];
        if (p.credits && !p.credits->ledgerOk()) {
            return params_.name + ": credit ledger violated on port"
                   + std::to_string(i) + " (host" + std::to_string(i)
                   + ")";
        }
    }
    return {};
}

} // namespace cxlmemo
