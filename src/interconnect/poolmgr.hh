/**
 * @file
 * Pooled-capacity ownership ledger for multi-host CXL memory.
 *
 * A CXL memory pool exposes the capacity of M devices to N hosts
 * through per-host address windows. The PoolManager is the fabric
 * manager's allocation brain: it grants capacity to hosts in fixed
 * segments, translates host-window addresses to (device, device-local
 * address) pairs, and -- the robustness core -- tracks every segment's
 * ownership state through the fencing lifecycle:
 *
 *     Free -> Granted(host) -> Quarantined -> Free
 *
 * A fenced host's segments are quarantined (no host may touch them
 * until a scrub pass has cleared residual data and poison), then
 * released and re-granted to survivors. Ownership is *exclusive*: a
 * segment belongs to at most one host at a time, so one tenant's
 * writes can never land in another tenant's window. The explicit
 * alias hook (litmus tests, future shared-memory windows) is the only
 * sanctioned way two hosts reach the same line.
 *
 * The ledger is machine-checked: conservation
 * (total == free + granted + quarantined, recounted from the
 * per-segment states) is cheap enough to verify at every fence-check
 * snapshot, so a leak surfaces as a loud invariant trip instead of
 * quietly shrinking the pool.
 *
 * Pure mechanism: no event queue, no timing. The Cluster decides
 * *when* to quarantine and scrub; the PoolManager only enforces that
 * the bookkeeping stays conserved.
 */

#ifndef CXLMEMO_INTERCONNECT_POOLMGR_HH
#define CXLMEMO_INTERCONNECT_POOLMGR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cxlmemo
{

/** Ownership state of one pool segment. */
enum class SegState : std::uint8_t
{
    Free,        //!< unowned, grantable
    Granted,     //!< owned by exactly one host
    Quarantined, //!< reclaimed from a fenced host, awaiting scrub
};

/** Allocation / reclamation counters of the pool manager. */
struct PoolMgrStats
{
    std::uint64_t grants = 0;       //!< grant operations served
    std::uint64_t grantedBytes = 0; //!< bytes handed out (cumulative)
    std::uint64_t rejects = 0;      //!< grants refused for lack of space
    std::uint64_t quarantines = 0;  //!< fencing reclaims
    std::uint64_t quarantinedBytes = 0;
    std::uint64_t scrubbedBytes = 0; //!< quarantined -> free transitions
};

class PoolManager
{
  public:
    /** Device-local location of a host-window address. */
    struct Loc
    {
        std::uint32_t dev = 0;
        Addr addr = 0;
    };

    /**
     * @param devices pooled devices behind the switch
     * @param bytesPerDevice capacity contributed by each device
     * @param segmentBytes grant granularity (must divide the device
     *        capacity; windows are built from whole segments)
     */
    PoolManager(std::uint32_t devices, std::uint64_t bytesPerDevice,
                std::uint64_t segmentBytes = miB);

    std::uint32_t devices() const { return numDevices_; }
    std::uint64_t segmentBytes() const { return segBytes_; }
    std::uint64_t totalBytes() const
    {
        return std::uint64_t(totalSegs_) * segBytes_;
    }
    std::uint64_t freeBytes() const
    {
        return std::uint64_t(freeSegs_) * segBytes_;
    }
    std::uint64_t quarantinedBytes() const
    {
        return std::uint64_t(quarSegs_) * segBytes_;
    }

    /**
     * Grant @p bytes (rounded up to whole segments) to @p host,
     * appended to the host's window. Segments are taken round-robin
     * across devices starting at the host's home device, so a
     * multi-device pool stripes every window deterministically.
     * @return bytes actually granted (0 when the pool cannot satisfy
     *         the request; grants are all-or-nothing).
     */
    std::uint64_t grant(std::uint32_t host, std::uint64_t bytes);

    /** Current window size of @p host (bytes). */
    std::uint64_t grantedBytes(std::uint32_t host) const;

    /** True when @p hostAddr lies inside @p host's window. */
    bool owns(std::uint32_t host, Addr hostAddr) const;

    /**
     * Translate a host-window address to its device-local location.
     * @pre owns(host, hostAddr) (or the host aliases a window that
     *      covers it); asserts otherwise -- a translation miss is a
     *      containment bug, not a recoverable condition.
     */
    Loc translate(std::uint32_t host, Addr hostAddr) const;

    /**
     * Reclaim every segment of @p host (fencing): Granted ->
     * Quarantined. The host's window becomes empty; quarantined
     * segments are not grantable until releaseQuarantined().
     * @return bytes quarantined.
     */
    std::uint64_t quarantine(std::uint32_t host);

    /** Scrub finished: all Quarantined segments -> Free (also ends
     *  the scrub pass, see beginScrub()). @return bytes released. */
    std::uint64_t releaseQuarantined();

    /** Mark the start of a scrub pass over the quarantined segments
     *  (ledger state, so gauges can report it without the fencing
     *  harness keeping a shadow flag). */
    void beginScrub() { scrubbing_ = true; }

    /** A scrub pass is running (set by beginScrub(), cleared by
     *  releaseQuarantined()). */
    bool scrubbing() const { return scrubbing_; }

    /** Quarantined bytes currently under scrub; 0 when idle. Drops
     *  to 0 the instant the scrub completes and the pool re-grants. */
    std::uint64_t scrubbingBytes() const
    {
        return scrubbing_ ? quarantinedBytes() : 0;
    }

    /**
     * Litmus/shared-window hook: @p host resolves translate() through
     * @p owner's window instead of its own. Ownership accounting is
     * untouched -- the alias is visibility, not a grant.
     */
    void setAlias(std::uint32_t host, std::uint32_t owner);

    /**
     * The conservation invariant, recounted from the per-segment
     * state tables: total == free + granted + quarantined, the
     * cached counters match the recount, and every granted segment
     * appears in exactly one host's window.
     */
    bool ledgerOk() const;

    const PoolMgrStats &stats() const { return stats_; }

    /** One-line ledger rendering for reports and post-mortems. */
    std::string summary() const;

  private:
    static constexpr std::uint32_t noAlias = ~std::uint32_t(0);

    struct Segment
    {
        SegState state = SegState::Free;
        std::uint32_t owner = 0; //!< valid while Granted/Quarantined
    };

    const std::vector<Loc> &windowOf(std::uint32_t host) const;

    std::uint32_t numDevices_;
    std::uint64_t segBytes_;
    std::uint32_t segsPerDevice_;
    std::uint32_t totalSegs_;
    std::uint32_t freeSegs_;
    std::uint32_t quarSegs_ = 0;
    bool scrubbing_ = false;

    std::vector<std::vector<Segment>> segs_; //!< [device][segment]
    std::vector<std::vector<Loc>> windows_;  //!< [host][window segment]
    std::vector<std::uint32_t> alias_;       //!< [host] -> owner / noAlias
    PoolMgrStats stats_;
};

} // namespace cxlmemo

#endif // CXLMEMO_INTERCONNECT_POOLMGR_HH
