#include "interconnect/upi.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace cxlmemo
{

UpiRemoteMemory::UpiRemoteMemory(EventQueue &eq, UpiParams params)
    : eq_(eq), params_(std::move(params))
{
    memory_ = std::make_unique<InterleavedMemory>(
        eq, params_.name + ".ddr5", params_.channel, params_.numChannels);
}

Tick
UpiRemoteMemory::transmit(Tick &freeAt, std::uint32_t bytes, bool attrib)
{
    const Tick start = std::max(eq_.curTick(), freeAt);
    const Tick done = start + serializationTicks(bytes, params_.linkGBps);
    freeAt = done;
    // Only serialization occupies the wire; the hop latency is a
    // pipeline delay shared by in-flight flits.
    if (station_)
        station_->passThrough(start - eq_.curTick(),
                              done - start + params_.hopLatency,
                              /*busy=*/done - start, attrib,
                              done + params_.hopLatency);
    return done + params_.hopLatency;
}

void
UpiRemoteMemory::access(MemRequest req)
{
    if (latHist_) {
        req.onComplete = [this, t0 = eq_.curTick(),
                          cb = std::move(req.onComplete)](Tick t) mutable {
            latHist_->record(t - t0);
            if (cb)
                cb(t);
        };
    }
    RequestTracer::mark(req.span, TraceStage::Upi, eq_.curTick());
    const bool write = isWrite(req.cmd);
    const std::uint32_t down_bytes =
        params_.headerBytes + (write ? req.size : 0);
    bytesDown_ += down_bytes;
    const Tick delivered = transmit(downFreeAt_, down_bytes, req.attrib);

    eq_.schedule(delivered, [this, write, r = std::move(req)]() mutable {
        MemRequest remote;
        remote.addr = r.addr;
        remote.size = r.size;
        remote.cmd = r.cmd;
        remote.span = r.span;
        remote.attrib = r.attrib;
        // Posted-acceptance (NT stores) is signalled by the remote
        // channel's gate once the write arrives there.
        remote.onAccept = std::move(r.onAccept);
        remote.onComplete =
            [this, write, size = r.size, attrib = r.attrib,
             cb = std::move(r.onComplete)](Tick) mutable {
                const std::uint32_t up_bytes =
                    params_.headerBytes + (write ? 0 : size);
                bytesUp_ += up_bytes;
                const Tick arrive = transmit(upFreeAt_, up_bytes, attrib);
                if (cb)
                    eq_.schedule(arrive, [cb = std::move(cb),
                                          arrive] { cb(arrive); });
            };
        memory_->access(std::move(remote));
    });
}

void
UpiRemoteMemory::resetStats()
{
    memory_->resetStats();
    bytesDown_ = 0;
    bytesUp_ = 0;
    if (latHist_)
        latHist_->reset();
}

} // namespace cxlmemo
