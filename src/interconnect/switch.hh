/**
 * @file
 * Multi-host CXL switch: N upstream host ports sharing M downstream
 * pooled memory devices through a virtual-output-queued crossbar.
 *
 * Data path of one host operation:
 *
 *   host --(port latency)--> ingress: per-port M2S credit gate
 *        --> VOQ[port][device] --> per-device crossbar arbitration
 *        --(serialization + forward latency)--> device access
 *   device completion --> per-port egress serialization
 *        --(port latency)--> host delivery
 *
 * Determinism: all switch state lives on one fabric event queue, and
 * every arbitration decision is a pure function of (tick, port rank,
 * per-port FIFO sequence) -- the crossbar grants round-robin (or
 * fixed-priority) over the ports with a non-empty VOQ, FIFO within a
 * port, ties broken by port rank. No wall-clock, no RNG.
 *
 * Robustness:
 *  - per-port M2S credit pools (the Sec. 11 CreditPool ledger:
 *    `issued == returned + in_flight` checked by the watchdog), so
 *    one flooding host's occupancy inside the switch is *bounded*
 *    and cannot starve the other ports of queue space;
 *  - port outage/retrain: a Down port holds new requests and
 *    completed responses, releasing them in arrival order when the
 *    retrain finishes (the link-lifecycle shape of Sec. 15 applied
 *    to a switch port);
 *  - host fencing: fencePort() reclaims everything a dead host has
 *    in flight -- queued requests abort, in-flight requests abort at
 *    completion, responses to the dead host are dropped -- under the
 *    Sec. 15 ContainPolicy (Poison: reads complete poisoned; Abort:
 *    everything completes with an error). Credits are returned on
 *    every abort path, so fencing never leaks the ledger.
 *
 * The switch is pure transport: it moves opaque operations and never
 * interprets data. The cluster layers the functional store, poison
 * injection and per-host accounting on top via the data hook.
 */

#ifndef CXLMEMO_INTERCONNECT_SWITCH_HH
#define CXLMEMO_INTERCONNECT_SWITCH_HH

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/request.hh"
#include "sim/chaos.hh"
#include "sim/event_queue.hh"
#include "sim/qos.hh"
#include "sim/watchdog.hh"

namespace cxlmemo
{

class FabricBoard;
struct TraceSpan;

/** Configuration of one CxlSwitch. */
struct CxlSwitchParams
{
    std::string name = "xsw0";

    std::uint32_t ports = 2; //!< upstream host ports

    /** Host <-> switch one-way port latency. Also the natural
     *  parallel-engine lookahead of a pooled cluster: every
     *  cross-domain path crosses a port. */
    Tick portLatency = ticksFromNs(12.0);

    /** Crossbar decode/forward pipeline latency per message. */
    Tick forwardLatency = ticksFromNs(8.0);

    /** Per-port serialization bandwidth (crossbar and egress). */
    double portGBps = 32.0;

    /** Per-port M2S credits per message class (0 = uncapped). */
    std::uint32_t rdCredits = 0;
    std::uint32_t wrCredits = 0;

    /** Crossbar arbitration across ports. */
    enum class Arb : std::uint8_t
    {
        RoundRobin, //!< rotating cursor over non-empty VOQs
        Fixed,      //!< lowest port rank first
    };
    Arb arb = Arb::RoundRobin;

    /** Latency of an aborted completion (fenced/unreachable). */
    Tick abortLatency = ticksFromNs(500.0);

    /** Header bytes serialized for dataless messages (read requests,
     *  write completions). */
    std::uint32_t headerBytes = 16;

    /** @throw std::invalid_argument on out-of-range values. */
    void validate() const;
};

/** Lifecycle state of one upstream port. */
enum class PortState : std::uint8_t
{
    Up,
    Down,   //!< outage: retraining, traffic held
    Fenced, //!< host declared dead: traffic aborted
};

const char *portStateName(PortState s);

/** Per-port traffic / robustness counters. */
struct SwitchPortStats
{
    std::uint64_t reqs = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t reqBytes = 0;   //!< request payload through the port
    std::uint64_t responses = 0;  //!< completions delivered upstream
    std::uint64_t poisoned = 0;   //!< completions poisoned by fencing
    std::uint64_t aborted = 0;    //!< queued ops aborted by fencing
    std::uint64_t abortedInFlight = 0; //!< aborted at device completion
    std::uint64_t droppedResponses = 0; //!< responses to a fenced host
    std::uint64_t creditStalls = 0;
    std::uint64_t creditStallTicks = 0;
    std::uint64_t heldWhileDown = 0; //!< messages parked by an outage
    std::uint64_t downs = 0;     //!< outages begun
    std::uint64_t retrains = 0;  //!< outages recovered
    Tick downAt = 0;
    Tick upAt = 0;
    Tick fencedAt = 0;

    /** Exact, associative merge: counters add, one-shot timestamps
     *  take the max (statmerge rules; audited in test_observability). */
    void merge(const SwitchPortStats &o);
};

/** Switch-wide occupancy gauges (tests / diagnosis). */
struct SwitchGauges
{
    std::size_t creditWait = 0;
    std::size_t voq = 0;
    std::size_t inFlight = 0;
    std::size_t held = 0;
};

class CxlSwitch : public ProgressSource
{
  public:
    /** Completion status delivered upstream. */
    enum class Status : std::uint8_t
    {
        Ok,
        Poisoned, //!< data delivered but suspect (ContainPolicy::Poison)
        Aborted,  //!< completed with an error, no data
    };

    /** Completion callback: invoked on the fabric queue with the
     *  upstream delivery tick (port latency included) and the read
     *  value supplied by the data hook. */
    using Done = InlineCallback<void(Tick, Status, std::uint64_t), 48>;

    /** One host operation crossing the switch. Addresses are
     *  device-local (the PoolManager translated the host window
     *  before submission). */
    struct Op
    {
        Addr addr = 0;
        std::uint32_t size = cachelineBytes;
        MemCmd cmd = MemCmd::Read;
        std::uint64_t value = 0; //!< write payload (functional layer)
        Done done;
        /** Host issue tick: the start of the fabric attribution
         *  bracket (delivery - issued is the cross-fabric end-to-end
         *  latency). Only read when a FabricBoard is attached. */
        Tick issued = 0;
        /** Sampled request-lifecycle span (null = untraced). */
        TraceSpan *span = nullptr;
    };

    /**
     * @param eq the fabric event queue (shared with the devices)
     * @param downstream pooled devices, rank order = device id
     */
    CxlSwitch(EventQueue &eq, CxlSwitchParams params,
              std::vector<MemoryDevice *> downstream);

    const CxlSwitchParams &params() const { return params_; }
    std::uint32_t numPorts() const { return params_.ports; }
    std::uint32_t numDevices() const
    {
        return static_cast<std::uint32_t>(devices_.size());
    }

    /**
     * Functional-data hook, invoked once per operation at device
     * commit time (deterministic: device-completion order on the
     * fabric queue): for writes it should commit op.value and return
     * anything; for reads it returns the value delivered upstream.
     * Unset = all reads deliver 0.
     */
    void
    setDataHook(
        std::function<std::uint64_t(std::uint32_t dev, MemCmd, Addr,
                                    std::uint64_t wval)> hook)
    {
        dataHook_ = std::move(hook);
    }

    /**
     * Submit one operation from @p port to @p dev. Must be called on
     * the fabric queue at the switch-arrival tick (the caller models
     * the host->switch port latency). Completion via op.done; every
     * submitted op completes exactly once (Ok, Poisoned or Aborted).
     */
    void submit(std::uint32_t port, std::uint32_t dev, Op op);

    /* ------------------------ lifecycle -------------------------- */

    /** Port outage now; traffic held until the retrain finishes
     *  @p retrain ticks later. No-op on a fenced port. */
    void portDown(std::uint32_t port, Tick retrain);

    /**
     * Fence @p port (host declared dead): abort everything queued or
     * held, mark in-flight for abort-at-completion, drop future
     * responses. Terminal: a fenced port never comes back (the host
     * would re-attach through a fresh grant cycle).
     */
    void fencePort(std::uint32_t port, ContainPolicy policy);

    PortState portState(std::uint32_t port) const
    {
        return ports_[port].state;
    }

    const SwitchPortStats &portStats(std::uint32_t port) const
    {
        return ports_[port].stats;
    }

    /** Credit pools of @p port (nullptr when credits are disabled). */
    const LinkCredits *portCredits(std::uint32_t port) const
    {
        return ports_[port].credits.get();
    }

    /** The credit-leak invariant across every port. */
    bool creditLedgerOk() const;

    SwitchGauges gauges() const;

    /** Per-port live queue depths (metrics gauges). */
    std::size_t
    voqDepth(std::uint32_t port) const
    {
        std::size_t n = 0;
        for (const auto &q : ports_[port].voq)
            n += q.size();
        return n;
    }

    std::size_t
    creditWaitDepth(std::uint32_t port) const
    {
        return ports_[port].creditWait.size();
    }

    std::uint32_t
    portInFlight(std::uint32_t port) const
    {
        return ports_[port].inFlight;
    }

    /**
     * Attach a fabric attribution board (one station set per port,
     * ports must match); null detaches. Pure observation: accounting
     * never schedules events or changes timing, so simulated results
     * are bit-identical with or without a board.
     */
    void setFabricBoard(FabricBoard *board) { board_ = board; }

    /* ----------------- ProgressSource (watchdog) ----------------- */

    std::string progressName() const override { return params_.name; }
    std::uint64_t progressRetired() const override { return retired_; }
    std::uint64_t progressOutstanding() const override;
    /** Names the stuck port and the oldest waiting host. */
    std::string progressDiagnosis() const override;
    std::string progressInvariant() const override;

  private:
    struct Pending
    {
        Op op;
        std::uint32_t dev;
        Tick enq; //!< switch-arrival (or credit-grant) tick
    };

    /** In-flight slot: an op the downstream device currently owns. */
    struct InFlight
    {
        Op op;
        std::uint32_t port = 0;
        std::uint32_t dev = 0;
        bool used = false;
        Tick dispatch = 0; //!< device-access tick (sw.dev_service start)
    };

    struct Port
    {
        PortState state = PortState::Up;
        ContainPolicy fencePolicy = ContainPolicy::Poison;
        std::unique_ptr<LinkCredits> credits;
        std::deque<Pending> creditWait;
        std::deque<Pending> held; //!< parked by an outage
        std::vector<std::deque<Pending>> voq; //!< [device]
        std::deque<std::uint32_t> downResp;   //!< slots held by outage
        Tick egressBusy = 0;
        std::uint32_t inFlight = 0;
        SwitchPortStats stats;
    };

    struct Xbar
    {
        Tick busy = 0;
        bool kickScheduled = false;
        std::uint32_t cursor = 0; //!< round-robin port cursor
    };

    /** Payload bytes a message serializes (data or header). */
    std::uint32_t wireBytes(MemCmd cmd, std::uint32_t size,
                            bool response) const;

    void admit(std::uint32_t port, Pending p);
    void enqueueVoq(std::uint32_t port, Pending p);
    void arbitrate(std::uint32_t dev);
    void deviceDone(std::uint32_t slot, Tick now);
    void egress(std::uint32_t slot, Tick now);
    void completeAborted(std::uint32_t port, Op op, Tick now);
    void releaseCredit(std::uint32_t port, MemCmd cmd, Tick now);
    std::uint32_t allocSlot(InFlight f);

    EventQueue &eq_;
    CxlSwitchParams params_;
    std::vector<MemoryDevice *> devices_;
    // deques: Port/InFlight hold move-only callbacks, and deque growth
    // never relocates existing elements.
    std::deque<Port> ports_;
    std::vector<Xbar> xbar_; //!< [device]
    std::deque<InFlight> slots_;
    std::vector<std::uint32_t> freeSlots_;
    std::function<std::uint64_t(std::uint32_t, MemCmd, Addr,
                                std::uint64_t)>
        dataHook_;
    FabricBoard *board_ = nullptr; //!< fabric attribution (optional)

    std::uint64_t retired_ = 0;
};

} // namespace cxlmemo

#endif // CXLMEMO_INTERCONNECT_SWITCH_HH
