#include "interconnect/poolmgr.hh"

#include <sstream>
#include <stdexcept>

#include "sim/logging.hh"

namespace cxlmemo
{

PoolManager::PoolManager(std::uint32_t devices,
                         std::uint64_t bytesPerDevice,
                         std::uint64_t segmentBytes)
    : numDevices_(devices), segBytes_(segmentBytes)
{
    if (devices == 0)
        throw std::invalid_argument("PoolManager: no devices");
    if (segmentBytes == 0 || bytesPerDevice == 0
        || bytesPerDevice % segmentBytes != 0) {
        throw std::invalid_argument(
            "PoolManager: device capacity must be a nonzero multiple "
            "of the segment size");
    }
    segsPerDevice_ =
        static_cast<std::uint32_t>(bytesPerDevice / segmentBytes);
    totalSegs_ = segsPerDevice_ * devices;
    freeSegs_ = totalSegs_;
    segs_.assign(devices, std::vector<Segment>(segsPerDevice_));
}

const std::vector<PoolManager::Loc> &
PoolManager::windowOf(std::uint32_t host) const
{
    static const std::vector<Loc> empty;
    if (host < alias_.size() && alias_[host] != noAlias)
        host = alias_[host];
    return host < windows_.size() ? windows_[host] : empty;
}

std::uint64_t
PoolManager::grant(std::uint32_t host, std::uint64_t bytes)
{
    const std::uint64_t want = (bytes + segBytes_ - 1) / segBytes_;
    if (want == 0 || want > freeSegs_) {
        ++stats_.rejects;
        return 0;
    }
    if (host >= windows_.size())
        windows_.resize(host + 1);
    // Stripe round-robin across devices from the host's home device:
    // the scan order is a pure function of (host, pool state), so
    // identical grant sequences produce identical windows.
    std::uint64_t taken = 0;
    std::uint32_t dev = host % numDevices_;
    std::uint32_t probe = 0;
    std::vector<std::uint32_t> cursor(numDevices_, 0);
    while (taken < want) {
        auto &c = cursor[dev];
        while (c < segsPerDevice_
               && segs_[dev][c].state != SegState::Free)
            ++c;
        if (c < segsPerDevice_) {
            segs_[dev][c].state = SegState::Granted;
            segs_[dev][c].owner = host;
            windows_[host].push_back(
                Loc{dev, static_cast<Addr>(c) * segBytes_});
            ++c;
            ++taken;
            probe = 0;
        } else if (++probe >= numDevices_) {
            break; // free count said yes but states disagree
        }
        dev = (dev + 1) % numDevices_;
    }
    CXLMEMO_ASSERT(taken == want,
                   "pool free-count/state mismatch granting %llu segs",
                   (unsigned long long)want);
    freeSegs_ -= static_cast<std::uint32_t>(taken);
    ++stats_.grants;
    stats_.grantedBytes += taken * segBytes_;
    return taken * segBytes_;
}

std::uint64_t
PoolManager::grantedBytes(std::uint32_t host) const
{
    return host < windows_.size()
               ? windows_[host].size() * segBytes_
               : 0;
}

bool
PoolManager::owns(std::uint32_t host, Addr hostAddr) const
{
    return hostAddr / segBytes_ < windowOf(host).size();
}

PoolManager::Loc
PoolManager::translate(std::uint32_t host, Addr hostAddr) const
{
    const auto &win = windowOf(host);
    const std::uint64_t seg = hostAddr / segBytes_;
    CXLMEMO_ASSERT(seg < win.size(),
                   "host %u access outside its window (addr 0x%llx)",
                   (unsigned)host, (unsigned long long)hostAddr);
    Loc l = win[seg];
    l.addr += hostAddr % segBytes_;
    return l;
}

std::uint64_t
PoolManager::quarantine(std::uint32_t host)
{
    if (host >= windows_.size() || windows_[host].empty())
        return 0;
    for (const Loc &l : windows_[host]) {
        Segment &s = segs_[l.dev][l.addr / segBytes_];
        CXLMEMO_ASSERT(s.state == SegState::Granted && s.owner == host,
                       "quarantining a segment host %u does not own",
                       (unsigned)host);
        s.state = SegState::Quarantined;
    }
    const std::uint64_t bytes = windows_[host].size() * segBytes_;
    quarSegs_ += static_cast<std::uint32_t>(windows_[host].size());
    windows_[host].clear();
    ++stats_.quarantines;
    stats_.quarantinedBytes += bytes;
    return bytes;
}

std::uint64_t
PoolManager::releaseQuarantined()
{
    std::uint32_t released = 0;
    for (auto &dev : segs_) {
        for (Segment &s : dev) {
            if (s.state == SegState::Quarantined) {
                s.state = SegState::Free;
                ++released;
            }
        }
    }
    CXLMEMO_ASSERT(released == quarSegs_,
                   "quarantine count drifted (%u != %u)",
                   (unsigned)released, (unsigned)quarSegs_);
    freeSegs_ += released;
    quarSegs_ = 0;
    scrubbing_ = false;
    stats_.scrubbedBytes += std::uint64_t(released) * segBytes_;
    return std::uint64_t(released) * segBytes_;
}

void
PoolManager::setAlias(std::uint32_t host, std::uint32_t owner)
{
    if (host >= alias_.size())
        alias_.resize(host + 1, noAlias);
    alias_[host] = owner;
}

bool
PoolManager::ledgerOk() const
{
    // Recount from the per-segment states rather than trusting the
    // cached counters: the whole point is catching drift between them.
    std::uint64_t free = 0, granted = 0, quarantined = 0;
    for (const auto &dev : segs_) {
        for (const Segment &s : dev) {
            switch (s.state) {
              case SegState::Free:
                ++free;
                break;
              case SegState::Granted:
                ++granted;
                break;
              case SegState::Quarantined:
                ++quarantined;
                break;
            }
        }
    }
    std::uint64_t windowSegs = 0;
    for (const auto &w : windows_)
        windowSegs += w.size();
    return free + granted + quarantined == totalSegs_
           && free == freeSegs_ && quarantined == quarSegs_
           && granted == windowSegs;
}

std::string
PoolManager::summary() const
{
    std::ostringstream os;
    os << "pool: total=" << totalBytes() / miB << "MiB free="
       << freeBytes() / miB << "MiB quarantined="
       << quarantinedBytes() / miB << "MiB grants=" << stats_.grants
       << " quarantines=" << stats_.quarantines
       << " ledger=" << (ledgerOk() ? "ok" : "VIOLATED");
    return os.str();
}

} // namespace cxlmemo
