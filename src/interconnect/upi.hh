/**
 * @file
 * UPI (Ultra Path Interconnect) model for remote-socket NUMA memory.
 *
 * The dual-socket testbed accesses the second socket's DDR5 through
 * UPI. Compared to the CXL path this link is faster (both in
 * serialization rate and latency), has per-message overheads of a
 * coherent fabric rather than 68 B flits, and fronts a full iMC with
 * deep queues -- so it is modelled as a rate limiter + latency adder
 * with no finite-buffer effects.
 */

#ifndef CXLMEMO_INTERCONNECT_UPI_HH
#define CXLMEMO_INTERCONNECT_UPI_HH

#include <memory>
#include <string>

#include "mem/dram.hh"
#include "mem/request.hh"
#include "sim/event_queue.hh"
#include "sim/histogram.hh"

namespace cxlmemo
{

/** UPI link + remote home-agent parameters. */
struct UpiParams
{
    std::string name = "remote0";

    /** Effective bandwidth per direction, GB/s (UPI x24 @ 16 GT/s,
     *  3 links aggregated on 8460H would be higher; a single-link
     *  path is assumed for the 1-channel comparison). */
    double linkGBps = 48.0;

    /** One-way link + remote home agent latency. */
    Tick hopLatency = ticksFromNs(32.0);

    /** Per-message header overhead on the link, bytes. */
    std::uint32_t headerBytes = 16;

    /** Channels on the remote socket used in the experiment
     *  (the paper populates exactly one for DDR5-R1). */
    std::uint32_t numChannels = 1;

    DramChannelParams channel;
};

/** Remote-socket memory node reachable over UPI. */
class UpiRemoteMemory : public MemoryDevice
{
  public:
    UpiRemoteMemory(EventQueue &eq, UpiParams params);

    void access(MemRequest req) override;
    const std::string &name() const override { return params_.name; }

    const UpiParams &params() const { return params_; }
    DeviceStats stats() const { return memory_->stats(); }
    void resetStats();
    std::uint64_t bytesDown() const { return bytesDown_; }
    std::uint64_t bytesUp() const { return bytesUp_; }

    /** Record end-to-end access latency (ticks) into a log-bucket
     *  histogram; off by default (no wrapper on the hot path). */
    void
    enableLatencyHistogram()
    {
        if (!latHist_)
            latHist_ = std::make_unique<LatencyHistogram>();
    }

    /** The access-latency histogram (nullptr unless enabled). */
    const LatencyHistogram *latencyHistogram() const
    {
        return latHist_.get();
    }

    /** Attach a latency-accounting station to the UPI hop itself. */
    void setStation(AccountedStation *station) { station_ = station; }

    /** Attach a station shared with the host DRAM channels to the
     *  remote socket's channels. */
    void
    setDramStation(AccountedStation *station)
    {
        memory_->setStation(station);
    }

  private:
    Tick transmit(Tick &freeAt, std::uint32_t bytes, bool attrib);

    EventQueue &eq_;
    UpiParams params_;
    std::unique_ptr<InterleavedMemory> memory_;
    Tick downFreeAt_ = 0;
    Tick upFreeAt_ = 0;
    std::uint64_t bytesDown_ = 0;
    std::uint64_t bytesUp_ = 0;
    std::unique_ptr<LatencyHistogram> latHist_;
    AccountedStation *station_ = nullptr;
};

} // namespace cxlmemo

#endif // CXLMEMO_INTERCONNECT_UPI_HH
