/**
 * @file
 * Reusable AccessStream implementations: sequential sweeps, random
 * block access, pointer chasing and composable helpers. These are the
 * building blocks of both the MEMO microbenchmark and the application
 * models.
 *
 * Streams generate *buffer offsets* and translate them through a
 * NumaBuffer, so page placement policies transparently steer traffic
 * to the right devices.
 */

#ifndef CXLMEMO_CPU_STREAMS_HH
#define CXLMEMO_CPU_STREAMS_HH

#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "numa/numa.hh"
#include "sim/rng.hh"

namespace cxlmemo
{

/**
 * Sequential sweep over a region, one op per cacheline, wrapping
 * around until @p totalBytes have been touched.
 */
class SequentialStream : public AccessStream
{
  public:
    SequentialStream(const NumaBuffer &buf, std::uint64_t regionOffset,
                     std::uint64_t regionBytes, std::uint64_t totalBytes,
                     MemOp::Kind kind)
        : buf_(buf),
          regionOffset_(regionOffset),
          regionBytes_(regionBytes),
          remaining_(totalBytes),
          kind_(kind)
    {
        CXLMEMO_ASSERT(regionBytes_ >= cachelineBytes, "region too small");
        CXLMEMO_ASSERT(regionOffset_ + regionBytes_ <= buf.size(),
                       "region beyond buffer");
    }

    bool
    next(MemOp &op) override
    {
        if (remaining_ < cachelineBytes)
            return false;
        op.kind = kind_;
        op.paddr = buf_.translate(regionOffset_ + cursor_);
        cursor_ += cachelineBytes;
        if (cursor_ >= regionBytes_)
            cursor_ = 0;
        remaining_ -= cachelineBytes;
        return true;
    }

  private:
    const NumaBuffer &buf_;
    std::uint64_t regionOffset_;
    std::uint64_t regionBytes_;
    std::uint64_t cursor_ = 0;
    std::uint64_t remaining_;
    MemOp::Kind kind_;
};

/**
 * Random block access: pick a random block-aligned offset, touch the
 * block's lines sequentially, optionally fence after each block (MEMO
 * fences NT-store blocks to enforce block-level write order).
 */
class RandomBlockStream : public AccessStream
{
  public:
    RandomBlockStream(const NumaBuffer &buf, std::uint64_t regionOffset,
                      std::uint64_t regionBytes, std::uint64_t totalBytes,
                      std::uint64_t blockBytes, MemOp::Kind kind,
                      bool fencePerBlock, std::uint64_t seed)
        : buf_(buf),
          regionOffset_(regionOffset),
          numBlocks_(regionBytes / blockBytes),
          blockBytes_(blockBytes),
          remaining_(totalBytes),
          kind_(kind),
          fencePerBlock_(fencePerBlock),
          rng_(seed)
    {
        CXLMEMO_ASSERT(blockBytes >= cachelineBytes
                           && blockBytes % cachelineBytes == 0,
                       "block must be a multiple of a cacheline");
        CXLMEMO_ASSERT(numBlocks_ > 0, "region smaller than one block");
        CXLMEMO_ASSERT(regionOffset_ + regionBytes <= buf.size(),
                       "region beyond buffer");
    }

    bool
    next(MemOp &op) override
    {
        if (fencePending_) {
            fencePending_ = false;
            op.kind = MemOp::Kind::Sfence;
            return true;
        }
        if (remaining_ < cachelineBytes)
            return false;
        if (inBlock_ == 0)
            blockBase_ = rng_.below(numBlocks_) * blockBytes_;
        op.kind = kind_;
        op.paddr = buf_.translate(regionOffset_ + blockBase_ + inBlock_);
        inBlock_ += cachelineBytes;
        remaining_ -= cachelineBytes;
        if (inBlock_ >= blockBytes_) {
            inBlock_ = 0;
            fencePending_ = fencePerBlock_;
        }
        return true;
    }

  private:
    const NumaBuffer &buf_;
    std::uint64_t regionOffset_;
    std::uint64_t numBlocks_;
    std::uint64_t blockBytes_;
    std::uint64_t blockBase_ = 0;
    std::uint64_t inBlock_ = 0;
    std::uint64_t remaining_;
    MemOp::Kind kind_;
    bool fencePerBlock_;
    bool fencePending_ = false;
    Rng rng_;
};

/**
 * Pointer chase over a working set: a single random Hamiltonian cycle
 * across all lines (Sattolo's algorithm), traversed with dependent
 * loads so exactly one access is in flight -- the latency-measuring
 * pattern of MEMO's ptr-chase mode.
 */
class PointerChaseStream : public AccessStream
{
  public:
    /**
     * @param accesses how many chase steps to perform
     * @param warmup   if true, first sweep the set with independent
     *                 loads to populate the caches (MEMO's warm-up run)
     */
    PointerChaseStream(const NumaBuffer &buf, std::uint64_t wssBytes,
                       std::uint64_t accesses, bool warmup,
                       std::uint64_t seed)
        : buf_(buf), remaining_(accesses), warmupRemaining_(0)
    {
        const std::uint64_t lines = wssBytes / cachelineBytes;
        CXLMEMO_ASSERT(lines >= 2, "working set too small to chase");
        CXLMEMO_ASSERT(wssBytes <= buf.size(), "WSS beyond buffer");
        nextIdx_.resize(lines);
        for (std::uint64_t i = 0; i < lines; ++i)
            nextIdx_[i] = static_cast<std::uint32_t>(i);
        // Sattolo's algorithm: a uniform random single cycle.
        Rng rng(seed);
        for (std::uint64_t i = lines - 1; i > 0; --i) {
            const std::uint64_t j = rng.below(i);
            std::swap(nextIdx_[i], nextIdx_[j]);
        }
        if (warmup)
            warmupRemaining_ = lines;
    }

    bool
    next(MemOp &op) override
    {
        if (warmupRemaining_ > 0) {
            --warmupRemaining_;
            op.kind = MemOp::Kind::Load;
            op.paddr = buf_.translate(warmupCursor_ * cachelineBytes);
            ++warmupCursor_;
            if (warmupRemaining_ == 0) {
                // Ensure the warm-up sweep fully lands before timing.
                op.kind = MemOp::Kind::Load;
            }
            return true;
        }
        if (pendingFence_) {
            pendingFence_ = false;
            op.kind = MemOp::Kind::Mfence;
            return true;
        }
        if (remaining_ == 0)
            return false;
        --remaining_;
        op.kind = MemOp::Kind::DependentLoad;
        op.paddr = buf_.translate(
            static_cast<std::uint64_t>(cursor_) * cachelineBytes);
        cursor_ = nextIdx_[cursor_];
        return true;
    }

    /** Queue an mfence before the next chase step (end of warm-up). */
    void fenceBeforeChase() { pendingFence_ = true; }

  private:
    const NumaBuffer &buf_;
    std::vector<std::uint32_t> nextIdx_;
    std::uint32_t cursor_ = 0;
    std::uint64_t warmupCursor_ = 0;
    std::uint64_t remaining_;
    std::uint64_t warmupRemaining_;
    bool pendingFence_ = false;
};

/** Stream driven by a lambda; used by the application models. */
class FnStream : public AccessStream
{
  public:
    /** Application op generators capture whole cursors (several
     *  pointers and counters), so give them a wider inline budget. */
    using Fn = InlineCallback<bool(MemOp &), 64>;

    explicit FnStream(Fn fn) : fn_(std::move(fn)) {}

    bool next(MemOp &op) override { return fn_(op); }

  private:
    Fn fn_;
};

/** Fixed list of ops (tests and one-shot probes). */
class ListStream : public AccessStream
{
  public:
    explicit ListStream(std::vector<MemOp> ops) : ops_(std::move(ops)) {}

    bool
    next(MemOp &op) override
    {
        if (idx_ >= ops_.size())
            return false;
        op = ops_[idx_++];
        return true;
    }

  private:
    std::vector<MemOp> ops_;
    std::size_t idx_ = 0;
};

} // namespace cxlmemo

#endif // CXLMEMO_CPU_STREAMS_HH
