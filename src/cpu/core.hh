/**
 * @file
 * Core-side memory issue model.
 *
 * A HwThread executes a stream of memory operations against the cache
 * hierarchy, honouring the microarchitectural resources that bound
 * memory-level parallelism on a real core:
 *
 *  - load fill buffers (outstanding L1-missing loads),
 *  - the store buffer (outstanding temporal stores awaiting RFO),
 *  - write-combining buffers (outstanding non-temporal stores),
 *  - mfence / sfence drain semantics.
 *
 * Time is modelled with a per-thread local clock that may run ahead of
 * the global event queue while the thread hits in its caches; misses
 * are scheduled as events at the thread-local issue tick, so global
 * event order is preserved. This "issue window" abstraction is what
 * makes single-thread bandwidth latency-bound (MLP x line / latency)
 * and multi-thread bandwidth contention-bound, matching the paper's
 * framing in Sec. 4.3 and 5.1.
 */

#ifndef CXLMEMO_CPU_CORE_HH
#define CXLMEMO_CPU_CORE_HH

#include <cstdint>
#include <memory>

#include "cache/hierarchy.hh"
#include "sim/attribution.hh"
#include "sim/types.hh"

namespace cxlmemo
{

/** Issue resources of one core (SPR-like defaults, calibrated). */
struct CoreParams
{
    /** Cost to issue one 64 B vector memory uop. */
    Tick issueCost = ticksFromNs(0.4);

    /** Cost to evict one WC buffer line into the uncore (caps a single
     *  core's NT-store rate at line/ntIssueCost). */
    Tick ntIssueCost = ticksFromNs(5.5);

    /** Outstanding L1-missing loads (fill buffers / MSHRs). */
    std::uint32_t loadFillBuffers = 16;

    /** Outstanding non-temporal store lines (WC buffers). */
    std::uint32_t wcBuffers = 8;

    /** Outstanding temporal stores awaiting ownership. */
    std::uint32_t storeBufferEntries = 48;
};

/** One operation of a workload's memory instruction stream. */
struct MemOp
{
    enum class Kind : std::uint8_t
    {
        Load,          //!< independent 64 B load
        DependentLoad, //!< load consuming the previous load's value
        Store,         //!< temporal 64 B store (RFO on miss)
        NtStore,       //!< non-temporal 64 B store
        UncachedRead,  //!< cache-bypassing read
        Movdir64,      //!< fused cache-bypassing 64 B copy paddr->paddr2
        Flush,         //!< clflush
        Clwb,          //!< clwb
        Mfence,        //!< drain all outstanding accesses
        Sfence,        //!< drain outstanding (NT) stores
        Compute,       //!< advance local time (non-memory work)
    };

    Kind kind = Kind::Load;
    Addr paddr = 0;
    Addr paddr2 = 0;       //!< destination (Kind::Movdir64 only)
    Tick computeTicks = 0; //!< only for Kind::Compute
};

/** A (possibly lazily generated) sequence of MemOps. */
class AccessStream
{
  public:
    virtual ~AccessStream() = default;

    /** Produce the next op. @return false at end of stream. */
    virtual bool next(MemOp &op) = 0;
};

/** Per-thread execution counters. */
struct ThreadStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t ntStores = 0;
    std::uint64_t uncachedReads = 0;
    std::uint64_t flushes = 0;

    /** Bytes moved by loads+uncached reads / stores+NT stores. */
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;

    /** Loads whose data carried the poison indication (RAS model).
     *  On real hardware each of these would raise MCE/SIGBUS; the
     *  simulated workload keeps running but the event is never
     *  silent. */
    std::uint64_t poisonedLoads = 0;

    /** Issue-point pacing inserted by the QoS host throttle (0 when
     *  QoS is disabled). */
    std::uint64_t qosThrottleTicks = 0;

    /** Ticks the issue point spent blocked on a core resource (fill
     *  buffer, store-buffer entry or WC buffer) before the pending op
     *  could issue: the core-side MLP limit made visible. */
    std::uint64_t resourceStallTicks = 0;
};

/**
 * A hardware thread pinned to one core, executing one AccessStream to
 * completion.
 */
class HwThread
{
  public:
    /** @param onFinish receives (startTick, endTick) of the stream. */
    using FinishFn = InlineCallback<void(Tick start, Tick end)>;

    HwThread(CacheHierarchy &hierarchy, std::uint16_t core,
             CoreParams params);

    HwThread(const HwThread &) = delete;
    HwThread &operator=(const HwThread &) = delete;

    /**
     * Begin executing @p stream at @p startTick (scheduled through the
     * event queue). The thread self-drives via completion events.
     */
    void start(std::unique_ptr<AccessStream> stream, Tick startTick,
               FinishFn onFinish);

    bool finished() const { return finished_; }
    const ThreadStats &stats() const { return stats_; }
    std::uint16_t core() const { return core_; }

    /** Local clock (valid while running; equals end tick after). */
    Tick localTime() const { return localTime_; }

    /**
     * Wire up latency attribution: issue-point blocks (full fill /
     * WC / store buffer) feed the core.lfb station, and every demand
     * read retires its end-to-end latency into the board's bracket.
     * nullptr disables (the default).
     */
    void
    setAttribution(AttributionBoard *board)
    {
        board_ = board;
        stLfb_ = board ? &board->station(StationId::CoreLfb) : nullptr;
    }

  private:
    void tryIssue();
    void maybeFinish();

    /** The pending op cannot issue for lack of a core resource:
     *  remember when the wait began (first block only). */
    void
    noteBlocked()
    {
        if (!pendingBlocked_) {
            pendingBlocked_ = true;
            pendingBlockedSince_ = localTime_;
            if (stLfb_)
                stLfb_->enter(localTime_);
        }
    }

    /** Open a tracing span for the pending op if it is sampled;
     *  also retires the blocked-wait accounting. */
    TraceSpan *beginSpan(MemCmd cmd, Addr paddr);
    std::uint32_t outstandingAll() const
    {
        return outstandingLoads_ + outstandingStores_ + outstandingNt_
               + pendingNtDrain_ + outstandingFlushes_;
    }

    CacheHierarchy &hier_;
    EventQueue &eq_;
    std::uint16_t core_;
    CoreParams params_;

    std::unique_ptr<AccessStream> stream_;
    FinishFn onFinish_;

    MemOp pending_{};
    bool havePending_ = false;
    bool pendingBlocked_ = false;
    Tick pendingBlockedSince_ = 0;
    bool streamDone_ = false;
    bool finished_ = false;
    bool running_ = false;

    Tick startTick_ = 0;
    Tick localTime_ = 0;
    Tick lastCompletion_ = 0;      //!< max completion across all ops
    Tick lastStoreCompletion_ = 0; //!< max completion across stores
    Tick lastValueReady_ = 0;      //!< max data-return across loads

    std::uint32_t outstandingLoads_ = 0;
    std::uint32_t outstandingStores_ = 0;
    std::uint32_t outstandingNt_ = 0;     //!< posted but not accepted
    std::uint32_t pendingNtDrain_ = 0;    //!< accepted but not drained
    std::uint32_t outstandingFlushes_ = 0;

    AttributionBoard *board_ = nullptr;
    AccountedStation *stLfb_ = nullptr;

    ThreadStats stats_;
};

} // namespace cxlmemo

#endif // CXLMEMO_CPU_CORE_HH
