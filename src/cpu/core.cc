#include "cpu/core.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace cxlmemo
{

HwThread::HwThread(CacheHierarchy &hierarchy, std::uint16_t core,
                   CoreParams params)
    : hier_(hierarchy),
      eq_(hierarchy.eventQueue()),
      core_(core),
      params_(params)
{
    CXLMEMO_ASSERT(params_.loadFillBuffers > 0, "core without LFBs");
    CXLMEMO_ASSERT(params_.wcBuffers > 0, "core without WC buffers");
    CXLMEMO_ASSERT(params_.storeBufferEntries > 0,
                   "core without a store buffer");
}

void
HwThread::start(std::unique_ptr<AccessStream> stream, Tick startTick,
                FinishFn onFinish)
{
    CXLMEMO_ASSERT(!running_, "thread started twice");
    stream_ = std::move(stream);
    onFinish_ = std::move(onFinish);
    startTick_ = startTick;
    localTime_ = startTick;
    lastCompletion_ = startTick;
    lastStoreCompletion_ = startTick;
    lastValueReady_ = startTick;
    running_ = true;
    finished_ = false;
    streamDone_ = false;
    havePending_ = false;
    pendingBlocked_ = false;
    eq_.schedule(startTick, [this] { tryIssue(); });
}

TraceSpan *
HwThread::beginSpan(MemCmd cmd, Addr paddr)
{
    // The span starts when the op first *wanted* to issue: a request
    // that waited for a fill buffer begins with an LfbWait stage, so
    // the trace shows core-side MLP limits, not just memory time.
    Tick t0 = localTime_;
    if (pendingBlocked_) {
        pendingBlocked_ = false;
        stats_.resourceStallTicks += localTime_ - pendingBlockedSince_;
        if (stLfb_) {
            stLfb_->exitNow(localTime_);
            stLfb_->account(localTime_ - pendingBlockedSince_, 0,
                            /*busy=*/0, cmd == MemCmd::Read,
                            localTime_);
        }
        t0 = pendingBlockedSince_;
    }
    RequestTracer *tr = hier_.tracer();
    if (!tr)
        return nullptr;
    TraceSpan *span = tr->maybeStart(core_, cmd, paddr, t0);
    if (span) {
        if (t0 < localTime_)
            RequestTracer::mark(span, TraceStage::LfbWait, t0);
        RequestTracer::mark(span, TraceStage::Issue, localTime_);
    }
    return span;
}

void
HwThread::maybeFinish()
{
    if (!streamDone_ || outstandingAll() > 0 || finished_)
        return;
    finished_ = true;
    running_ = false;
    localTime_ = std::max(localTime_, lastCompletion_);
    if (onFinish_)
        onFinish_(startTick_, localTime_);
}

void
HwThread::tryIssue()
{
    if (finished_)
        return;
    localTime_ = std::max(localTime_, eq_.curTick());

    for (;;) {
        if (!havePending_) {
            if (streamDone_) {
                maybeFinish();
                return;
            }
            if (!stream_->next(pending_)) {
                streamDone_ = true;
                maybeFinish();
                return;
            }
            havePending_ = true;
            pendingBlocked_ = false;
        }

        const MemOp &op = pending_;
        switch (op.kind) {
          case MemOp::Kind::Compute:
            localTime_ += op.computeTicks;
            havePending_ = false;
            break;

          case MemOp::Kind::Mfence:
            if (outstandingAll() > 0)
                return; // resume from a completion event
            localTime_ = std::max(localTime_, lastCompletion_);
            havePending_ = false;
            break;

          case MemOp::Kind::Sfence:
            if (outstandingStores_ + outstandingNt_ + pendingNtDrain_
                    + outstandingFlushes_
                > 0) {
                return;
            }
            localTime_ = std::max(localTime_, lastStoreCompletion_);
            havePending_ = false;
            break;

          case MemOp::Kind::Load:
          case MemOp::Kind::DependentLoad: {
            if (op.kind == MemOp::Kind::DependentLoad) {
                // The address depends on the previous load's data.
                if (outstandingLoads_ > 0) {
                    noteBlocked();
                    return;
                }
                localTime_ = std::max(localTime_, lastValueReady_);
            }
            if (outstandingLoads_ >= params_.loadFillBuffers) {
                noteBlocked();
                return;
            }
            // The bracketed end-to-end latency starts when the op
            // first wanted to issue (same origin as the trace span).
            const Tick t0 =
                pendingBlocked_ ? pendingBlockedSince_ : localTime_;
            TraceSpan *span = beginSpan(MemCmd::Read, op.paddr);
            localTime_ += params_.issueCost;
            const bool dependent = op.kind == MemOp::Kind::DependentLoad;
            stats_.loads++;
            stats_.bytesRead += cachelineBytes;
            if (board_)
                board_->beginRequest(t0);
            auto done = hier_.load(core_, op.paddr, localTime_,
                                   [this, span, t0](Tick t) {
                CXLMEMO_ASSERT(outstandingLoads_ > 0, "load underflow");
                --outstandingLoads_;
                if (hier_.takeDeliveryPoison())
                    stats_.poisonedLoads++;
                if (board_)
                    board_->completeRequest(t0, t);
                lastCompletion_ = std::max(lastCompletion_, t);
                lastValueReady_ = std::max(lastValueReady_, t);
                if (span)
                    hier_.tracer()->finish(span, t);
                tryIssue();
            }, span);
            if (done) {
                if (hier_.takeDeliveryPoison())
                    stats_.poisonedLoads++;
                if (board_)
                    board_->completeRequest(t0, *done);
                lastCompletion_ = std::max(lastCompletion_, *done);
                lastValueReady_ = std::max(lastValueReady_, *done);
                if (dependent)
                    localTime_ = std::max(localTime_, *done);
                if (span)
                    hier_.tracer()->finish(span, *done);
            } else {
                ++outstandingLoads_;
            }
            havePending_ = false;
            break;
          }

          case MemOp::Kind::Store: {
            if (outstandingStores_ >= params_.storeBufferEntries) {
                noteBlocked();
                return;
            }
            TraceSpan *span = beginSpan(MemCmd::Write, op.paddr);
            localTime_ += params_.issueCost;
            stats_.stores++;
            stats_.bytesWritten += cachelineBytes;
            auto done = hier_.store(core_, op.paddr, localTime_,
                                    [this, span](Tick t) {
                CXLMEMO_ASSERT(outstandingStores_ > 0, "store underflow");
                --outstandingStores_;
                lastCompletion_ = std::max(lastCompletion_, t);
                lastStoreCompletion_ = std::max(lastStoreCompletion_, t);
                if (span)
                    hier_.tracer()->finish(span, t);
                tryIssue();
            }, span);
            if (done) {
                lastCompletion_ = std::max(lastCompletion_, *done);
                lastStoreCompletion_ =
                    std::max(lastStoreCompletion_, *done);
                if (span)
                    hier_.tracer()->finish(span, *done);
            } else {
                ++outstandingStores_;
            }
            havePending_ = false;
            break;
          }

          case MemOp::Kind::NtStore: {
            if (outstandingNt_ >= params_.wcBuffers) {
                noteBlocked();
                return;
            }
            TraceSpan *span = beginSpan(MemCmd::NtWrite, op.paddr);
            localTime_ += params_.ntIssueCost;
            // QoS reaction point: the host throttle paces WC-buffer
            // eviction toward an overloaded device (0 when disabled).
            if (const Tick pace =
                    hier_.qosIssueDelay(core_, op.paddr, localTime_)) {
                localTime_ += pace;
                stats_.qosThrottleTicks += pace;
            }
            stats_.ntStores++;
            stats_.bytesWritten += cachelineBytes;
            ++outstandingNt_;
            ++pendingNtDrain_;
            hier_.ntStore(
                core_, op.paddr, localTime_,
                /*onAccept=*/[this](Tick) {
                    CXLMEMO_ASSERT(outstandingNt_ > 0, "nt underflow");
                    --outstandingNt_;
                    tryIssue();
                },
                /*onDrained=*/[this, span](Tick t) {
                    CXLMEMO_ASSERT(pendingNtDrain_ > 0, "drain underflow");
                    --pendingNtDrain_;
                    lastCompletion_ = std::max(lastCompletion_, t);
                    lastStoreCompletion_ =
                        std::max(lastStoreCompletion_, t);
                    if (span)
                        hier_.tracer()->finish(span, t);
                    tryIssue();
                },
                span);
            havePending_ = false;
            break;
          }

          case MemOp::Kind::UncachedRead: {
            if (outstandingLoads_ >= params_.loadFillBuffers)
                return;
            const Tick t0 = localTime_;
            localTime_ += params_.issueCost;
            stats_.uncachedReads++;
            stats_.bytesRead += cachelineBytes;
            ++outstandingLoads_;
            if (board_)
                board_->beginRequest(t0);
            hier_.uncachedRead(core_, op.paddr, cachelineBytes, localTime_,
                               [this, t0](Tick t) {
                CXLMEMO_ASSERT(outstandingLoads_ > 0, "ucread underflow");
                --outstandingLoads_;
                if (board_)
                    board_->completeRequest(t0, t);
                lastCompletion_ = std::max(lastCompletion_, t);
                lastValueReady_ = std::max(lastValueReady_, t);
                tryIssue();
            });
            havePending_ = false;
            break;
          }

          case MemOp::Kind::Movdir64: {
            // Fused cache-bypassing copy: the destination write can
            // only start once the source data arrives, so the op
            // holds both a fill buffer and a WC buffer.
            if (outstandingLoads_ >= params_.loadFillBuffers
                || outstandingNt_ >= params_.wcBuffers) {
                return;
            }
            const Tick t0 = localTime_;
            localTime_ += params_.issueCost;
            stats_.uncachedReads++;
            stats_.ntStores++;
            stats_.bytesRead += cachelineBytes;
            stats_.bytesWritten += cachelineBytes;
            ++outstandingLoads_;
            ++outstandingNt_;
            ++pendingNtDrain_;
            const Addr dst = op.paddr2;
            if (board_)
                board_->beginRequest(t0);
            hier_.uncachedRead(core_, op.paddr, cachelineBytes,
                               localTime_, [this, dst, t0](Tick t) {
                CXLMEMO_ASSERT(outstandingLoads_ > 0, "mov64 underflow");
                --outstandingLoads_;
                if (board_)
                    board_->completeRequest(t0, t);
                lastCompletion_ = std::max(lastCompletion_, t);
                if (const Tick pace = hier_.qosIssueDelay(core_, dst, t)) {
                    t += pace;
                    stats_.qosThrottleTicks += pace;
                }
                hier_.ntStore(
                    core_, dst, t,
                    /*onAccept=*/[this](Tick) {
                        CXLMEMO_ASSERT(outstandingNt_ > 0,
                                       "mov64 nt underflow");
                        --outstandingNt_;
                        tryIssue();
                    },
                    /*onDrained=*/[this](Tick td) {
                        CXLMEMO_ASSERT(pendingNtDrain_ > 0,
                                       "mov64 drain underflow");
                        --pendingNtDrain_;
                        lastCompletion_ =
                            std::max(lastCompletion_, td);
                        lastStoreCompletion_ =
                            std::max(lastStoreCompletion_, td);
                        tryIssue();
                    });
                tryIssue();
            });
            havePending_ = false;
            break;
          }

          case MemOp::Kind::Flush:
          case MemOp::Kind::Clwb: {
            localTime_ += params_.issueCost;
            stats_.flushes++;
            auto cb = [this](Tick t) {
                CXLMEMO_ASSERT(outstandingFlushes_ > 0, "flush underflow");
                --outstandingFlushes_;
                lastCompletion_ = std::max(lastCompletion_, t);
                lastStoreCompletion_ = std::max(lastStoreCompletion_, t);
                tryIssue();
            };
            auto done = op.kind == MemOp::Kind::Flush
                            ? hier_.flush(core_, op.paddr, localTime_, cb)
                            : hier_.clwb(core_, op.paddr, localTime_, cb);
            if (done) {
                lastCompletion_ = std::max(lastCompletion_, *done);
                lastStoreCompletion_ =
                    std::max(lastStoreCompletion_, *done);
            } else {
                ++outstandingFlushes_;
            }
            havePending_ = false;
            break;
          }
        }
    }
}

} // namespace cxlmemo
