/**
 * @file
 * Request-level DRAM channel timing model.
 *
 * The model is an FR-FCFS (first-ready, first-come-first-served)
 * scheduler with a starvation cap, which is the textbook abstraction
 * of both a server iMC and an FPGA soft/hard memory controller; the
 * two differ only in parameters. It captures the effects the paper's
 * observations hinge on, without descending to cycle accuracy:
 *
 *  1. data-bus serialization (peak bandwidth per channel),
 *  2. per-bank row-buffer state: open-row hits pipeline at the bus
 *     rate, conflicts pay precharge + activate and occupy the bank --
 *     this is how multiple concurrent sequential streams degrade a
 *     single channel (paper Sec. 4.3.1, Fig. 3b),
 *  3. hit-first scheduling with a bounded reorder depth and a bounded
 *     consecutive-hit run, so locality recovery degrades gracefully as
 *     stream count grows,
 *  4. read/write bus turnaround and write-recovery time, penalizing
 *     mixed-direction traffic such as the RFO + writeback pattern of
 *     temporal stores (paper Sec. 4.2).
 */

#ifndef CXLMEMO_MEM_DRAM_HH
#define CXLMEMO_MEM_DRAM_HH

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/request.hh"
#include "sim/attribution.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/histogram.hh"
#include "sim/types.hh"

namespace cxlmemo
{

/** Static timing/geometry description of one DRAM channel. */
struct DramChannelParams
{
    std::string name = "dram";

    /** Raw data-bus bandwidth, GB/s (e.g. DDR5-4800: 38.4). */
    double peakGBps = 38.4;

    /**
     * Fraction of the raw bus a well-behaved stream can sustain
     * (refresh, rank/DIMM turnaround, command-bus overheads).
     * Calibrated per device class; see system/testbed.cc.
     */
    double busEfficiency = 0.85;

    /** Load-to-data latency when the target row is open (CAS). */
    Tick tRowHit = ticksFromNs(15.0);

    /** Load-to-data latency on a row conflict (tRP + tRCD + tCAS). */
    Tick tRowMiss = ticksFromNs(45.0);

    /** Additional bank occupancy when a *write* conflicts (tWR). */
    Tick tWriteRecovery = ticksFromNs(15.0);

    /** Minimum bank occupancy per row switch (tRC: activate-to-
     *  activate on one bank). The effective conflict occupancy is
     *  max(tBankCycle, precharge+activate+transfer [+tWR]). */
    Tick tBankCycle = 0;

    /** Extra bus gap when the transfer direction flips (read<->write). */
    Tick tTurnaround = ticksFromNs(7.5);

    /** Fixed controller/PHY latency added to every access. */
    Tick tFrontend = ticksFromNs(10.0);

    /** Independent banks the channel can have open concurrently. */
    std::uint32_t numBanks = 16;

    /** Row-buffer reach in the channel-local address space. */
    std::uint64_t rowBytes = 8 * kiB;

    /**
     * Bank-interleave stripe: consecutive stripes of this size rotate
     * across banks (the column-low/bank-mid/row-high mapping real
     * controllers use), so one sequential stream engages every bank
     * with open-row hits instead of camping on a single bank.
     */
    std::uint64_t bankStripeBytes = 1 * kiB;

    /** How deep into a bank's queue the scheduler looks for row hits. */
    std::uint32_t scanDepth = 16;

    /** Max consecutive row hits served before the oldest request wins
     *  (FR-FCFS starvation cap). */
    std::uint32_t maxHitRun = 16;

    /** Posted-write (NT store) queue depth: NT writes are *accepted*
     *  (freeing the core's WC buffer) as long as this many are not
     *  yet drained; beyond that, acceptance backpressures. */
    std::uint32_t ntPostedEntries = 32;

    /** Extra derating of the data bus for writes (write-to-read gaps,
     *  tWTR; 1.0 = writes as efficient as reads). */
    double writeEfficiency = 1.0;

    /** Same-direction transfers the bus arbiter batches before
     *  considering a direction switch (iMC read/write mode with
     *  drain watermarks; switching pays tTurnaround). */
    std::uint32_t maxDirectionRun = 16;

    /** Throws std::invalid_argument on out-of-range values. */
    void validate() const;
};

/**
 * One DRAM channel: per-bank queues with hit-first scheduling feeding
 * a shared data bus.
 *
 * Pipelining: a row hit occupies its bank only for one burst slot, so
 * a single-stream workload reaches the bus peak; a row conflict holds
 * the bank for the activate window, so conflicting streams are limited
 * by bank throughput -- the aggregate over all banks is the channel's
 * "thrash floor".
 */
class DramChannel : public MemoryDevice
{
  public:
    /** @param faults optional fault injector (nullptr = healthy). */
    DramChannel(EventQueue &eq, DramChannelParams params,
                FaultInjector *faults = nullptr);

    void access(MemRequest req) override;
    const std::string &name() const override { return params_.name; }

    const DramChannelParams &params() const { return params_; }
    const DeviceStats &stats() const { return stats_; }
    void resetStats() { stats_ = DeviceStats{}; }

    /** Requests accepted but not yet completed. */
    std::uint32_t outstanding() const { return outstanding_; }

    /** Attach a latency-accounting station (nullptr = off, the
     *  default; accounting never alters timing). */
    void setStation(AccountedStation *station) { station_ = station; }

  private:
    std::uint64_t rowOf(Addr addr) const;
    std::uint32_t bankOf(Addr addr) const;
    Tick busTime(std::uint32_t size, bool write) const;

    /** Continue an access past the fault-injection check. */
    void accessAdmit(MemRequest req);
    /** Admit an NT write past the posted gate. */
    void admitNt(MemRequest req);
    /** Enqueue into the owning bank and kick the scheduler. */
    void enqueue(MemRequest req);
    /** Serve the next ready transfer on the data bus, if idle. */
    void kickBus();

    /** If @p bank is idle and has work, pick and start a request. */
    void tryIssue(std::uint32_t bank_idx);

    /** Device phase finished: move the request onto the data bus. */
    void finishBankPhase(std::uint32_t bank_idx, MemRequest req);

    EventQueue &eq_;
    DramChannelParams params_;
    FaultInjector *faults_ = nullptr;

    /**
     * Per-bank state in structure-of-arrays layout. The FR-FCFS scan
     * in tryIssue touches openRow/hitRun for every candidate while the
     * issue check reads only busyUntil; with an array-of-structs each
     * bank dragged its 80-byte deque header into the cache per probe.
     * Parallel arrays keep the 16 banks' scan state in two lines.
     */
    std::vector<std::uint64_t> bankOpenRow_; //!< ~0 = no open row
    std::vector<Tick> bankBusyUntil_;  //!< 0 = idle, else occupied-to
    std::vector<Tick> bankLastActivate_; //!< last row-activate tick
    std::vector<std::uint32_t> bankHitRun_;
    std::vector<std::deque<MemRequest>> bankQueue_;
    std::deque<MemRequest> busReadQueue_;  //!< ready, awaiting the bus
    std::deque<MemRequest> busWriteQueue_;
    bool busBusy_ = false;
    bool lastWasWrite_ = false;
    std::uint32_t directionRun_ = 0;
    std::uint32_t outstanding_ = 0;
    std::uint32_t ntPosted_ = 0;
    std::deque<MemRequest> ntGate_;
    DeviceStats stats_;
    AccountedStation *station_ = nullptr;
};

/**
 * A multi-channel memory node (e.g. the eight local DDR5-4800
 * channels of one SPR socket). Fine-grained address interleaving
 * spreads consecutive lines across channels; addresses are compacted
 * into each channel's local space so row locality is preserved.
 */
class InterleavedMemory : public MemoryDevice
{
  public:
    /**
     * @param interleaveBytes channel-interleave granularity
     *        (SPR interleaves at 256 B across iMC channels)
     * @param faults optional fault injector shared by all channels
     * @param channelQueues when non-empty, one EventQueue per channel
     *        (size must equal @p numChannels): channel @p i runs on
     *        *channelQueues[i] instead of @p eq. Used by the parallel
     *        engine to give each channel its own simulation domain;
     *        requests must then be routed via setChannelHop.
     */
    InterleavedMemory(EventQueue &eq, const std::string &name,
                      const DramChannelParams &channelParams,
                      std::uint32_t numChannels,
                      std::uint64_t interleaveBytes = 256,
                      FaultInjector *faults = nullptr,
                      const std::vector<EventQueue *> &channelQueues = {});

    void access(MemRequest req) override;
    const std::string &name() const override { return name_; }

    std::uint32_t numChannels() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }

    DramChannel &channel(std::uint32_t i) { return *channels_[i]; }

    /** Traffic summed over all channels. */
    DeviceStats stats() const;
    void resetStats();

    /** Record end-to-end access latency (ticks) into a log-bucket
     *  histogram; off by default (no wrapper on the hot path). */
    void
    enableLatencyHistogram()
    {
        if (!latHist_)
            latHist_ = std::make_unique<LatencyHistogram>();
    }

    /** The access-latency histogram (nullptr unless enabled). */
    const LatencyHistogram *latencyHistogram() const
    {
        return latHist_.get();
    }

    /** Attach a latency-accounting station shared by all channels. */
    void
    setStation(AccountedStation *station)
    {
        for (auto &ch : channels_)
            ch->setStation(station);
    }

    /**
     * Divert channel dispatch: access() still selects the channel and
     * compacts the address, but then hands (channel, request) to
     * @p hop instead of calling DramChannel::access directly. The
     * parallel engine uses this to post the request into the channel's
     * domain; the hop must eventually deliver it to channel(ch).
     */
    void setChannelHop(std::function<void(std::uint32_t, MemRequest)> hop)
    {
        hop_ = std::move(hop);
    }

  private:
    EventQueue &eq_;
    std::string name_;
    std::vector<std::unique_ptr<DramChannel>> channels_;
    std::uint64_t interleaveBytes_;
    std::unique_ptr<LatencyHistogram> latHist_;
    std::function<void(std::uint32_t, MemRequest)> hop_;
};

} // namespace cxlmemo

#endif // CXLMEMO_MEM_DRAM_HH
