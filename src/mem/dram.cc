#include "mem/dram.hh"

#include <stdexcept>
#include <utility>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace cxlmemo
{

void
DramChannelParams::validate() const
{
    if (numBanks == 0)
        throw std::invalid_argument(
            "DramChannelParams: channel with no banks");
    if (!(peakGBps > 0.0))
        throw std::invalid_argument(
            "DramChannelParams: channel with no bandwidth");
    if (!(busEfficiency > 0.0 && busEfficiency <= 1.0))
        throw std::invalid_argument(
            "DramChannelParams: busEfficiency must be in (0,1]");
    if (!(writeEfficiency > 0.0 && writeEfficiency <= 1.0))
        throw std::invalid_argument(
            "DramChannelParams: writeEfficiency must be in (0,1]");
    if (rowBytes < cachelineBytes)
        throw std::invalid_argument("DramChannelParams: row too small");
    if (bankStripeBytes < cachelineBytes)
        throw std::invalid_argument(
            "DramChannelParams: stripe below line size");
    if (rowBytes % bankStripeBytes != 0)
        throw std::invalid_argument(
            "DramChannelParams: row must hold whole stripes");
    if (scanDepth == 0 || maxHitRun == 0 || maxDirectionRun == 0)
        throw std::invalid_argument(
            "DramChannelParams: scheduler depths must be nonzero");
    if (ntPostedEntries == 0)
        throw std::invalid_argument(
            "DramChannelParams: zero-entry posted-write queue");
}

DramChannel::DramChannel(EventQueue &eq, DramChannelParams params,
                         FaultInjector *faults)
    : eq_(eq),
      params_(std::move(params)),
      faults_(faults),
      bankOpenRow_(params_.numBanks, ~std::uint64_t(0)),
      bankBusyUntil_(params_.numBanks, 0),
      bankLastActivate_(params_.numBanks, 0),
      bankHitRun_(params_.numBanks, 0),
      bankQueue_(params_.numBanks)
{
    params_.validate();
}

std::uint64_t
DramChannel::rowOf(Addr addr) const
{
    // column(stripe)-low, bank-mid, row-high mapping: position within
    // the bank advances one stripe per numBanks stripes of address
    // space; rowBytes of in-bank positions form one row.
    const std::uint64_t pos_in_bank =
        addr / (params_.bankStripeBytes * params_.numBanks);
    return pos_in_bank / (params_.rowBytes / params_.bankStripeBytes);
}

std::uint32_t
DramChannel::bankOf(Addr addr) const
{
    return static_cast<std::uint32_t>(
        (addr / params_.bankStripeBytes) % params_.numBanks);
}

Tick
DramChannel::busTime(std::uint32_t size, bool write) const
{
    double eff = params_.peakGBps * params_.busEfficiency;
    if (write)
        eff *= params_.writeEfficiency;
    return serializationTicks(size, eff);
}

void
DramChannel::access(MemRequest req)
{
    CXLMEMO_ASSERT(req.size > 0, "zero-size access");
    RequestTracer::mark(req.span, TraceStage::Dram, eq_.curTick());
    if (station_) {
        // Queue accounting runs from here (covering fault stalls and
        // the posted-write gate) until the bank scheduler issues.
        station_->enter(eq_.curTick());
        req.attribMark = eq_.curTick();
    }
    // Transient channel stall (refresh storm, thermal throttle,
    // ECC-scrub collision): the request is held at the controller
    // front end for the episode before being admitted. Drawn at most
    // once per request -- accessAdmit bypasses the check.
    if (faults_ && faults_->dramStall()) {
        faults_->stats().dramStalls++;
        eq_.scheduleIn(faults_->spec().dramStallTicks,
                       [this, r = std::move(req)]() mutable {
            accessAdmit(std::move(r));
        });
        return;
    }
    accessAdmit(std::move(req));
}

void
DramChannel::accessAdmit(MemRequest req)
{
    if (req.cmd == MemCmd::NtWrite) {
        if (ntPosted_ < params_.ntPostedEntries) {
            admitNt(std::move(req));
        } else {
            ntGate_.push_back(std::move(req));
        }
        return;
    }
    enqueue(std::move(req));
}

void
DramChannel::admitNt(MemRequest req)
{
    ++ntPosted_;
    if (req.onAccept) {
        const Tick now = eq_.curTick();
        eq_.schedule(now, [accept = std::move(req.onAccept),
                           now] { accept(now); });
    }
    // Release the posted slot once the write drains to the array.
    req.onComplete = [this, drained = std::move(req.onComplete)](Tick t) {
        CXLMEMO_ASSERT(ntPosted_ > 0, "posted underflow");
        --ntPosted_;
        if (!ntGate_.empty()) {
            MemRequest waiting = std::move(ntGate_.front());
            ntGate_.pop_front();
            admitNt(std::move(waiting));
        }
        if (drained)
            drained(t);
    };
    enqueue(std::move(req));
}

void
DramChannel::enqueue(MemRequest req)
{
    const std::uint32_t bank_idx = bankOf(req.addr);
    ++outstanding_;
    bankQueue_[bank_idx].push_back(std::move(req));
    tryIssue(bank_idx);
}

void
DramChannel::tryIssue(std::uint32_t bank_idx)
{
    std::deque<MemRequest> &queue = bankQueue_[bank_idx];
    if (bankBusyUntil_[bank_idx] != 0 || queue.empty())
        return;

    // FR-FCFS selection: prefer a row hit within the reorder window
    // unless the starvation cap says the oldest request must go first.
    // The cap gates only *reordering*; whether the chosen request is
    // a row hit is decided by the open-row state itself.
    const std::uint64_t open_row = bankOpenRow_[bank_idx];
    std::size_t pick = 0;
    if (bankHitRun_[bank_idx] < params_.maxHitRun
        && rowOf(queue[0].addr) != open_row) {
        const std::size_t depth =
            std::min<std::size_t>(params_.scanDepth, queue.size());
        for (std::size_t i = 1; i < depth; ++i) {
            if (rowOf(queue[i].addr) == open_row) {
                pick = i;
                break;
            }
        }
    }

    MemRequest req = std::move(queue[pick]);
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));

    const bool hit = rowOf(req.addr) == open_row;
    const Tick now = eq_.curTick();
    const bool write = isWrite(req.cmd);

    // A hit pipelines: the bank is occupied for one burst slot only.
    // A conflict holds the bank for the precharge+activate window (plus
    // write recovery for writes) before it can take the next request.
    Tick dev_latency;
    Tick occupancy;
    if (hit) {
        dev_latency = params_.tRowHit;
        occupancy = busTime(req.size, write);
        bankHitRun_[bank_idx]++;
        stats_.rowHits++;
    } else {
        dev_latency = params_.tRowMiss;
        occupancy = (params_.tRowMiss - params_.tRowHit)
                    + busTime(req.size, write);
        if (write)
            occupancy += params_.tWriteRecovery;
        occupancy = std::max(occupancy, params_.tBankCycle);
        bankOpenRow_[bank_idx] = rowOf(req.addr);
        bankLastActivate_[bank_idx] = now;
        bankHitRun_[bank_idx] = 0;
        stats_.rowMisses++;
    }

    bankBusyUntil_[bank_idx] = now + occupancy;
    eq_.schedule(now + occupancy, [this, bank_idx] {
        bankBusyUntil_[bank_idx] = 0;
        tryIssue(bank_idx);
    });

    const Tick ready = now + params_.tFrontend + dev_latency;
    if (station_) {
        // The bank phase is service, not busy: banks overlap freely
        // and saturation shows up on the shared data bus below.
        station_->account(now - req.attribMark,
                          params_.tFrontend + dev_latency, /*busy=*/0,
                          req.attrib, ready);
        req.attribMark = ready; // bus-queue wait starts at ready
    }
    eq_.schedule(ready, [this, bank_idx, r = std::move(req)]() mutable {
        finishBankPhase(bank_idx, std::move(r));
    });
}

void
DramChannel::finishBankPhase(std::uint32_t bank_idx, MemRequest req)
{
    (void)bank_idx;
    if (isWrite(req.cmd))
        busWriteQueue_.push_back(std::move(req));
    else
        busReadQueue_.push_back(std::move(req));
    kickBus();
}

void
DramChannel::kickBus()
{
    if (busBusy_)
        return;
    if (busReadQueue_.empty() && busWriteQueue_.empty())
        return;

    // Direction arbitration: stay in the current mode while it has
    // work and the batch quota lasts; switching pays tTurnaround.
    bool write = lastWasWrite_;
    auto *same = write ? &busWriteQueue_ : &busReadQueue_;
    auto *other = write ? &busReadQueue_ : &busWriteQueue_;
    if (same->empty()
        || (directionRun_ >= params_.maxDirectionRun && !other->empty())) {
        write = !write;
        std::swap(same, other);
    }

    MemRequest req = std::move(same->front());
    same->pop_front();

    const Tick now = eq_.curTick();
    Tick start = now;
    if (write != lastWasWrite_) {
        start += params_.tTurnaround;
        directionRun_ = 0;
    }
    lastWasWrite_ = write;
    ++directionRun_;

    const Tick done = start + busTime(req.size, write);
    if (station_)
        station_->account(start - req.attribMark, done - start,
                          /*busy=*/done - start, req.attrib, done);
    if (write) {
        stats_.writes++;
        stats_.bytesWritten += req.size;
    } else {
        stats_.reads++;
        stats_.bytesRead += req.size;
    }

    busBusy_ = true;
    eq_.schedule(done, [this, r = std::move(req), done]() mutable {
        CXLMEMO_ASSERT(outstanding_ > 0, "completion underflow");
        --outstanding_;
        busBusy_ = false;
        if (station_)
            station_->exitNow(done);
        if (r.onComplete)
            r.onComplete(done);
        kickBus();
    });
}

InterleavedMemory::InterleavedMemory(EventQueue &eq, const std::string &name,
                                     const DramChannelParams &channelParams,
                                     std::uint32_t numChannels,
                                     std::uint64_t interleaveBytes,
                                     FaultInjector *faults,
                                     const std::vector<EventQueue *> &channelQueues)
    : eq_(eq), name_(name), interleaveBytes_(interleaveBytes)
{
    if (numChannels == 0)
        throw std::invalid_argument(
            "InterleavedMemory: memory node with no channels");
    if (interleaveBytes < cachelineBytes)
        throw std::invalid_argument(
            "InterleavedMemory: interleave below line size splits "
            "transactions");
    if (!channelQueues.empty()
        && channelQueues.size() != numChannels)
        throw std::invalid_argument(
            "InterleavedMemory: channelQueues must match numChannels");
    channels_.reserve(numChannels);
    for (std::uint32_t i = 0; i < numChannels; ++i) {
        DramChannelParams p = channelParams;
        p.name = name + ".ch" + std::to_string(i);
        EventQueue &chEq =
            channelQueues.empty() ? eq : *channelQueues[i];
        channels_.push_back(
            std::make_unique<DramChannel>(chEq, std::move(p), faults));
    }
}

void
InterleavedMemory::access(MemRequest req)
{
    if (latHist_) {
        req.onComplete = [this, t0 = eq_.curTick(),
                          cb = std::move(req.onComplete)](Tick t) mutable {
            latHist_->record(t - t0);
            if (cb)
                cb(t);
        };
    }
    const std::uint64_t chunk = req.addr / interleaveBytes_;
    const auto ch = static_cast<std::uint32_t>(chunk % channels_.size());
    // Compact the address into the channel's local space so that a
    // globally sequential stream stays row-sequential per channel.
    const Addr local = (chunk / channels_.size()) * interleaveBytes_
                       + (req.addr % interleaveBytes_);
    req.addr = local;
    if (hop_) {
        hop_(ch, std::move(req));
        return;
    }
    channels_[ch]->access(std::move(req));
}

DeviceStats
InterleavedMemory::stats() const
{
    DeviceStats total;
    for (const auto &ch : channels_)
        total.merge(ch->stats());
    return total;
}

void
InterleavedMemory::resetStats()
{
    for (auto &ch : channels_)
        ch->resetStats();
    if (latHist_)
        latHist_->reset();
}

} // namespace cxlmemo
