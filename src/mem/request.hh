/**
 * @file
 * Memory request types and the abstract MemoryDevice interface that
 * every back-end (local DDR5, remote-socket DDR5 behind UPI, CXL
 * Type-3 device) implements.
 */

#ifndef CXLMEMO_MEM_REQUEST_HH
#define CXLMEMO_MEM_REQUEST_HH

#include <cstdint>
#include <string>

#include "sim/callback.hh"
#include "sim/types.hh"

namespace cxlmemo
{

struct TraceSpan;

/** Kinds of transactions a device can receive. */
enum class MemCmd : std::uint8_t
{
    Read,      //!< demand read (cacheline fill, RFO read, ...)
    Prefetch,  //!< prefetcher-generated read; same timing, separate stats
    Write,     //!< eviction writeback or temporal-store drain
    NtWrite,   //!< non-temporal (streaming) store, cache-bypassing
};

/** @return true for commands that move data toward the device. */
constexpr bool
isWrite(MemCmd cmd)
{
    return cmd == MemCmd::Write || cmd == MemCmd::NtWrite;
}

/** @return human-readable command name. */
inline const char *
memCmdName(MemCmd cmd)
{
    switch (cmd) {
      case MemCmd::Read:
        return "Read";
      case MemCmd::Prefetch:
        return "Prefetch";
      case MemCmd::Write:
        return "Write";
      case MemCmd::NtWrite:
        return "NtWrite";
    }
    return "Unknown";
}

/**
 * A single transaction presented to a memory device.
 *
 * @c addr is a device-local byte offset: the NUMA layer resolves which
 * device a physical page lives on and rebases addresses before they
 * reach the device, so devices never see each other's address ranges.
 *
 * @c onComplete fires when the device has finished the access: for
 * reads, when data is back at the requester; for writes, when the
 * device has accepted *and drained* the data (the conservative point
 * that fence instructions must wait for).
 */
struct MemRequest
{
    Addr addr = 0;
    std::uint32_t size = cachelineBytes;
    MemCmd cmd = MemCmd::Read;

    /** Requesting agent (core id, or a DSA engine's id); fair-share
     *  arbiters in devices use it to round-robin across sources. */
    std::uint16_t source = 0;

    /**
     * True while this request belongs to an attribution-bracketed
     * demand read (sim/attribution.hh): stations it passes through
     * add their queue/service split to the end-to-end latency stack.
     * Always false when attribution is disabled or for traffic that
     * is not on a demand read's critical path (writebacks, prefetches,
     * drains), which is accounted in station totals only.
     */
    bool attrib = false;

    /**
     * Attribution scratch timestamp: the tick this request entered
     * the station currently processing it. Owned by that station
     * alone (set on entry, consumed before handing the request to the
     * next component), so one field serves the whole path. Unused
     * (and never read) when attribution is disabled.
     */
    Tick attribMark = 0;

    /** Completion callbacks are move-only InlineCallbacks: a request's
     *  capture state (typically `this` + a continuation) stays inside
     *  the request itself, so queuing a MemRequest allocates nothing. */
    using Callback = InlineCallback<void(Tick)>;

    Callback onComplete;

    /**
     * Lifecycle-tracing span for the 1-in-N sampled requests; null
     * for everything else (the default). Owned by the RequestTracer;
     * components timestamp stage entry via RequestTracer::mark(),
     * which is null-safe, so untraced requests pay one pointer test.
     */
    TraceSpan *span = nullptr;

    /**
     * For NtWrite only: fires when the write is *posted* -- accepted
     * into a bounded host-side/device-front queue. This is the point
     * a WC buffer is released (so streaming stores pipeline far beyond
     * their latency), whereas onComplete is the global-observability
     * point an sfence must wait for.
     */
    Callback onAccept;
};

/**
 * Abstract timing model of a memory back-end.
 *
 * access() must be invoked at the current simulated time (callers that
 * run ahead of the event queue schedule an event to deliver the
 * request). Completion is signalled via the request's callback.
 */
class MemoryDevice
{
  public:
    virtual ~MemoryDevice() = default;

    /** Start the transaction now; completion via req.onComplete. */
    virtual void access(MemRequest req) = 0;

    /** Device instance name for reports and debugging. */
    virtual const std::string &name() const = 0;
};

/** Aggregate traffic counters kept by each concrete device. */
struct DeviceStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;

    void
    merge(const DeviceStats &o)
    {
        reads += o.reads;
        writes += o.writes;
        bytesRead += o.bytesRead;
        bytesWritten += o.bytesWritten;
        rowHits += o.rowHits;
        rowMisses += o.rowMisses;
    }
};

} // namespace cxlmemo

#endif // CXLMEMO_MEM_REQUEST_HH
