#include "mem/request.hh"

namespace cxlmemo
{

const char *
memCmdName(MemCmd cmd)
{
    switch (cmd) {
      case MemCmd::Read:
        return "Read";
      case MemCmd::Prefetch:
        return "Prefetch";
      case MemCmd::Write:
        return "Write";
      case MemCmd::NtWrite:
        return "NtWrite";
    }
    return "Unknown";
}

} // namespace cxlmemo
