#include "mem/request.hh"

// memCmdName lives inline in the header so that sim-layer code (the
// request tracer) can name commands without a mem-library dependency.
