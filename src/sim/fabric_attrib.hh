/**
 * @file
 * Fabric-wide latency attribution: the switch path as AccountedStations.
 *
 * DESIGN §13 gave every single-machine station an exact queue/service
 * decomposition; the multi-host pool (DESIGN §16) left the switch a
 * blind spot. This header extends the same contract across the fabric:
 * every request a host submits through its switch port is accounted at
 * five per-port stations --
 *
 *     sw.credit_wait   port rd/wr credit gate (buffer station)
 *     sw.voq_wait      virtual output queue (buffer station)
 *     sw.arb           crossbar grant + request wire serialization
 *     sw.wire          response egress wire (+ both port-latency hops)
 *     sw.dev_service   pooled device service behind the switch
 *
 * -- and bracketed end-to-end from host issue to response delivery, so
 * per port (== per host) the station stack sums in integer ticks to
 * the measured cross-fabric latency with a non-negative residual (the
 * residual is exactly zero on a clean run; held-while-down time and
 * the unaccounted tail of fenced/aborted requests land there).
 * Little's law runs as the same built-in self-test: the credit and
 * VOQ stations bracket residency with enter()/exitNow(), making their
 * occupancy integrals independent measurements.
 *
 * Contract (identical to the host-side board): constructed only when
 * `obs.attribution` is set, every instrumentation site is a null
 * pointer test otherwise; enabling it never schedules events, so
 * simulated results are bit-identical either way; all accounting
 * happens on the fabric domain, so parallel (`--sim-threads`) runs
 * produce byte-identical snapshots; FabricPortSnap/FabricSnapshot
 * merge exactly and associatively for `--jobs` sweeps, and the
 * cluster-wide roll-up is the same merge applied across ports.
 */

#ifndef CXLMEMO_SIM_FABRIC_ATTRIB_HH
#define CXLMEMO_SIM_FABRIC_ATTRIB_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/attribution.hh"
#include "sim/types.hh"

namespace cxlmemo
{

/** Stations on the switch path, in upstream-to-downstream order. */
enum class FabricStation : std::uint8_t
{
    CreditWait, //!< waiting for a port rd/wr credit (buffer)
    VoqWait,    //!< queued in the port's virtual output queue (buffer)
    Arb,        //!< crossbar grant + request serialization + forward
    Wire,       //!< response egress serialization + both port hops
    DevService, //!< pooled device service time (shared back end)
    NumStations,
};

constexpr std::size_t numFabricStations =
    static_cast<std::size_t>(FabricStation::NumStations);

/** Dotted station name used in reports ("sw.voq_wait"). */
const char *fabricStationName(FabricStation id);

/** Same name with dots as underscores (CSV column fragments). */
std::string fabricStationColumn(FabricStation id);

/**
 * One port's attribution roll-up: the five station snapshots plus the
 * end-to-end bracket over every request the port carried. Merging is
 * exact and associative; derived figures that need the window length
 * take it as a parameter (the owning FabricSnapshot holds it, so a
 * cross-port roll-up shares one elapsed).
 */
struct FabricPortSnap
{
    std::uint64_t reqCount = 0;   //!< bracketed requests (incl. live)
    std::uint64_t totalTicks = 0; //!< summed end-to-end latency
    std::array<StationSnap, numFabricStations> st{};

    const StationSnap &
    at(FabricStation id) const
    {
        return st[static_cast<std::size_t>(id)];
    }

    /** Exact, associative merge (integer sums only). */
    void merge(const FabricPortSnap &o);

    /* ---- latency stack ---- */

    std::uint64_t stackTicks() const;
    std::uint64_t otherTicks() const;
    /** true iff stackTicks() <= totalTicks (residual >= 0). */
    bool decompositionExact() const;
    double avgTotalNs() const;
    double componentQueueNs(FabricStation id) const;
    double componentServiceNs(FabricStation id) const;
    double otherNs() const;

    /* ---- per-station figures (window length supplied) ---- */

    double util(FabricStation id, Tick elapsed) const;
    double avgOccupancy(FabricStation id, Tick elapsed) const;
    double throughputPerNs(FabricStation id, Tick elapsed) const;
    double avgResidencyNs(FabricStation id) const;
    double littleDeviation(FabricStation id, Tick elapsed) const;
    bool littleOk(Tick elapsed, double tol = 0.05) const;
};

/**
 * The fabric's attribution roll-up: one FabricPortSnap per switch
 * port over a shared measurement window. merge() is the `--jobs`
 * shard merge (windows and per-port sums add); cluster() is the
 * cross-port roll-up inside one window.
 */
struct FabricSnapshot
{
    Tick elapsed = 0;
    std::vector<FabricPortSnap> ports;

    bool enabled() const { return !ports.empty(); }

    /** Exact, associative shard merge (elapsed adds; ports pairwise). */
    void merge(const FabricSnapshot &o);

    /** Cluster-wide roll-up: every port merged into one snap. */
    FabricPortSnap cluster() const;

    /** Every port's stack reconstructs its measured total. */
    bool decompositionExact() const;

    /** Little's law per port and cluster-wide. */
    bool littleOk(double tol = 0.05) const;

    /** Port with the highest wire/arb serialization demand (the same
     *  measure the congested-port regime saturates on) -- the
     *  aggressor's port under a noisy-neighbor flood. */
    std::uint32_t hotPort() const;

    /**
     * Cluster bottleneck classification, three regimes:
     *  - congested-port: a port's wire/arb utilization is saturated
     *    (>= 0.5) and at least ties the device pool -- the fabric
     *    itself is the bottleneck, the hot port names where;
     *  - pooled-device-backend: the shared device pool is saturated
     *    while port wires are not -- add devices, not links;
     *  - host-local: nothing behind the ports is saturated; latency
     *    lives at the tenants (issue gates, mlp limits).
     * Comma-free single line, e.g.
     * "fabric=congested-port hot=port3 fabric_util=0.87".
     */
    std::string verdict() const;

    /** Human-readable per-port breakdown (memo report --mode pool). */
    std::string table() const;

    /** Compact dump for the watchdog post-mortem. */
    std::string postMortem() const;
};

/**
 * Per-cluster registry: five AccountedStations per switch port plus a
 * per-port end-to-end bracket. Constructed only when fabric
 * attribution is enabled; the switch holds a pointer that is null
 * otherwise. All mutation happens on the fabric event domain.
 */
class FabricBoard
{
  public:
    /** @param ports switch ports (== hosts);
     *  @param devices pooled devices sharing the back end -- the
     *         sw.dev_service utilization denominator. */
    explicit FabricBoard(std::uint32_t ports, std::uint32_t devices = 1,
                         Tick now = 0);

    std::uint32_t ports() const
    {
        return static_cast<std::uint32_t>(ports_.size());
    }

    AccountedStation &
    station(std::uint32_t port, FabricStation id)
    {
        return ports_[port].st[static_cast<std::size_t>(id)];
    }

    /** A request entered the fabric at @p port, issued at @p t0 on the
     *  host. Every begin is matched by completeRequest(); in-flight
     *  brackets are charged up to the accounting horizon exactly like
     *  AttributionBoard, keeping stack <= total mid-flight. */
    void
    beginRequest(std::uint32_t port, Tick t0)
    {
        PortBoard &p = ports_[port];
        ++p.liveCount;
        p.liveStartSum += t0;
    }

    /** The request begun at @p t0 was delivered back at @p t. */
    void
    completeRequest(std::uint32_t port, Tick t0, Tick t)
    {
        PortBoard &p = ports_[port];
        --p.liveCount;
        p.liveStartSum -= t0;
        ++p.reqCount;
        p.totalTicks += t - t0;
    }

    /** Roll up the window ending at @p now. */
    FabricSnapshot snapshot(Tick now) const;

  private:
    struct PortBoard
    {
        std::array<AccountedStation, numFabricStations> st{};
        std::uint64_t reqCount = 0;
        std::uint64_t totalTicks = 0;
        std::uint64_t liveCount = 0;
        std::uint64_t liveStartSum = 0;
    };

    std::vector<PortBoard> ports_;
    Tick windowStart_ = 0;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_FABRIC_ATTRIB_HH
