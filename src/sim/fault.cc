#include "sim/fault.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "sim/logging.hh"

namespace cxlmemo
{

namespace
{

bool
parseRate(const std::string &v, double &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    if (end != v.c_str() + v.size())
        return false;
    out = d;
    return true;
}

bool
parseU64(const std::string &v, std::uint64_t &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    const unsigned long long u = std::strtoull(v.c_str(), &end, 10);
    if (end != v.c_str() + v.size())
        return false;
    out = u;
    return true;
}

void
requireRate(double v, const char *what)
{
    if (!(v >= 0.0 && v <= 1.0)) {
        throw std::invalid_argument(
            std::string("FaultSpec: ") + what
            + " must be a probability in [0,1]");
    }
}

} // namespace

void
FaultSpec::validate() const
{
    requireRate(crcPerFlit, "crc rate");
    requireRate(readPoisonRate, "poison rate");
    requireRate(timeoutRate, "timeout rate");
    requireRate(drainStallRate, "drain-stall rate");
    requireRate(dramStallRate, "dram-stall rate");
    if (maxHostRetries == 0 || maxHostRetries > 16)
        throw std::invalid_argument(
            "FaultSpec: retries must be in [1,16]");
    if (requestTimeout == 0)
        throw std::invalid_argument(
            "FaultSpec: timeout-ns must be positive");
    if (backoffBase == 0)
        throw std::invalid_argument(
            "FaultSpec: backoff-ns must be positive");
    if (degradeWindow == 0)
        throw std::invalid_argument(
            "FaultSpec: degrade-window-ns must be positive");
    // Legal but almost certainly not what the user wants: past ~10%
    // per-event rates, recovery (replays, retries, stalls) dominates
    // run time and the run measures the recovery machinery, not the
    // memory system. Warn once, not per validation call.
    if (crcPerFlit > 0.1 || readPoisonRate > 0.1 || timeoutRate > 0.1
        || drainStallRate > 0.1 || dramStallRate > 0.1) {
        CXLMEMO_WARN_ONCE(
            "fault-spec rate above 0.1: recovery traffic will dominate "
            "the run (%s)", toString().c_str());
    }
}

std::string
FaultSpec::toString() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "crc=%g,poison=%g,timeout=%g,drain=%g,dram=%g,seed=%llu",
                  crcPerFlit, readPoisonRate, timeoutRate, drainStallRate,
                  dramStallRate, static_cast<unsigned long long>(seed));
    return buf;
}

std::optional<FaultSpec>
FaultSpec::parse(const std::string &text, std::string &error)
{
    FaultSpec spec;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string item = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            error = "fault-spec item needs key=value: " + item;
            return std::nullopt;
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        double rate = 0.0;
        std::uint64_t num = 0;
        if (key == "crc" && parseRate(value, rate)) {
            spec.crcPerFlit = rate;
        } else if (key == "poison" && parseRate(value, rate)) {
            spec.readPoisonRate = rate;
        } else if (key == "timeout" && parseRate(value, rate)) {
            spec.timeoutRate = rate;
        } else if (key == "drain" && parseRate(value, rate)) {
            spec.drainStallRate = rate;
        } else if (key == "dram" && parseRate(value, rate)) {
            spec.dramStallRate = rate;
        } else if (key == "stall-ns" && parseRate(value, rate)
                   && rate >= 0.0) {
            spec.drainStallTicks = ticksFromNs(rate);
            spec.dramStallTicks = ticksFromNs(rate);
        } else if (key == "timeout-ns" && parseRate(value, rate)
                   && rate > 0.0) {
            spec.requestTimeout = ticksFromNs(rate);
        } else if (key == "backoff-ns" && parseRate(value, rate)
                   && rate > 0.0) {
            spec.backoffBase = ticksFromNs(rate);
        } else if (key == "retries" && parseU64(value, num)) {
            spec.maxHostRetries = static_cast<std::uint32_t>(num);
        } else if (key == "degrade" && parseU64(value, num)) {
            spec.degradeBurst = static_cast<std::uint32_t>(num);
        } else if (key == "degrade-window-ns" && parseRate(value, rate)
                   && rate > 0.0) {
            spec.degradeWindow = ticksFromNs(rate);
        } else if (key == "seed" && parseU64(value, num)) {
            spec.seed = num;
        } else {
            error = "bad fault-spec item: " + item;
            return std::nullopt;
        }
    }
    try {
        spec.validate();
    } catch (const std::invalid_argument &e) {
        error = e.what();
        return std::nullopt;
    }
    return spec;
}

void
RasStats::merge(const RasStats &o)
{
    crcErrors += o.crcErrors;
    linkRetries += o.linkRetries;
    flitsReplayed += o.flitsReplayed;
    replayBytes += o.replayBytes;
    retryTicks += o.retryTicks;
    timeouts += o.timeouts;
    hostRetries += o.hostRetries;
    backoffTicks += o.backoffTicks;
    drainStalls += o.drainStalls;
    dramStalls += o.dramStalls;
    poisonInjected += o.poisonInjected;
    poisonConsumed += o.poisonConsumed;
    poisonDelivered += o.poisonDelivered;
    poisonContained += o.poisonContained;
    linkDegradations += o.linkDegradations;
}

std::string
RasStats::summary() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "crc-errors=%llu link-retries=%llu replay-bytes=%llu "
        "timeouts=%llu host-retries=%llu drain-stalls=%llu "
        "dram-stalls=%llu poison-injected=%llu poison-consumed=%llu "
        "poison-delivered=%llu poison-contained=%llu degradations=%llu",
        static_cast<unsigned long long>(crcErrors),
        static_cast<unsigned long long>(linkRetries),
        static_cast<unsigned long long>(replayBytes),
        static_cast<unsigned long long>(timeouts),
        static_cast<unsigned long long>(hostRetries),
        static_cast<unsigned long long>(drainStalls),
        static_cast<unsigned long long>(dramStalls),
        static_cast<unsigned long long>(poisonInjected),
        static_cast<unsigned long long>(poisonConsumed),
        static_cast<unsigned long long>(poisonDelivered),
        static_cast<unsigned long long>(poisonContained),
        static_cast<unsigned long long>(linkDegradations));
    return buf;
}

} // namespace cxlmemo
