/**
 * @file
 * Deterministic random number generation for workload generators.
 *
 * All stochastic behaviour in cxlmemo flows through Rng so that every
 * experiment is reproducible bit-for-bit from its seed. The engine is
 * xoshiro256** seeded via SplitMix64, the combination recommended by
 * the xoshiro authors; it is much faster than std::mt19937_64 and has
 * no observable bias at the scales used here.
 *
 * ZipfianGenerator implements the Gray et al. "quickly generating
 * billion-record synthetic databases" algorithm that YCSB uses,
 * including the scrambled variant that decorrelates popularity from
 * key order.
 */

#ifndef CXLMEMO_SIM_RNG_HH
#define CXLMEMO_SIM_RNG_HH

#include <cmath>
#include <cstdint>

#include "sim/logging.hh"

namespace cxlmemo
{

/** SplitMix64 step, used for seeding and key scrambling. */
constexpr std::uint64_t
splitMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** xoshiro256** PRNG with convenience distributions. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

    /** Re-seed the engine deterministically from a single value. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x = splitMix64(x);
            word = x;
        }
        // Guard against the all-zero state, which is a fixed point.
        if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
            state_[0] = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    below(std::uint64_t bound)
    {
        CXLMEMO_ASSERT(bound > 0, "below() with zero bound");
        // Lemire's nearly-divisionless bounded generation (the small
        // modulo bias of the simple multiply-shift is unacceptable for
        // address generation over power-of-two ranges).
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = (-bound) % bound;
            while (lo < threshold) {
                m = static_cast<__uint128_t>(next()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        CXLMEMO_ASSERT(hi >= lo, "between() with inverted range");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Exponentially distributed value with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        // uniform() can return exactly 0; avoid log(0).
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(u);
    }

    /** Bernoulli trial. */
    bool chance(double p) { return uniform() < p; }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Zipfian item generator over [0, n) with skew @p theta (YCSB default
 * 0.99). Popularity rank equals item index: item 0 is the hottest.
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double theta = 0.99)
        : items_(n), theta_(theta)
    {
        CXLMEMO_ASSERT(n > 0, "zipfian over empty domain");
        zeta_ = zetaStatic(n, theta);
        alpha_ = 1.0 / (1.0 - theta_);
        zeta2_ = zetaStatic(2, theta);
        eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta_))
               / (1.0 - zeta2_ / zeta_);
    }

    /** Draw the next item using randomness from @p rng. */
    std::uint64_t
    next(Rng &rng)
    {
        const double u = rng.uniform();
        const double uz = u * zeta_;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta_))
            return 1;
        auto idx = static_cast<std::uint64_t>(
            static_cast<double>(items_)
            * std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return idx >= items_ ? items_ - 1 : idx;
    }

    std::uint64_t items() const { return items_; }

  private:
    static double
    zetaStatic(std::uint64_t n, double theta)
    {
        // Exact summation is O(n); for the multi-million-key domains
        // used by the YCSB driver we use the standard Euler-Maclaurin
        // style approximation above a cutoff, which matches the exact
        // sum to < 0.1% for theta = 0.99.
        constexpr std::uint64_t exactCutoff = 1'000'000;
        if (n <= exactCutoff) {
            double sum = 0.0;
            for (std::uint64_t i = 1; i <= n; ++i)
                sum += 1.0 / std::pow(static_cast<double>(i), theta);
            return sum;
        }
        double sum = zetaStatic(exactCutoff, theta);
        // Integral approximation of the tail.
        const double a = static_cast<double>(exactCutoff);
        const double b = static_cast<double>(n);
        sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta))
               / (1.0 - theta);
        return sum;
    }

    std::uint64_t items_;
    double theta_;
    double zeta_;
    double zeta2_;
    double alpha_;
    double eta_;
};

/**
 * Scrambled zipfian: zipfian popularity, but the popular items are
 * scattered uniformly over the key space (YCSB's default request
 * distribution for workloads A-C/F).
 */
class ScrambledZipfianGenerator
{
  public:
    explicit ScrambledZipfianGenerator(std::uint64_t n, double theta = 0.99)
        : base_(n, theta), items_(n)
    {}

    std::uint64_t
    next(Rng &rng)
    {
        return splitMix64(base_.next(rng)) % items_;
    }

  private:
    ZipfianGenerator base_;
    std::uint64_t items_;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_RNG_HH
