#include "sim/fabric_attrib.hh"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "sim/statmerge.hh"

namespace cxlmemo
{

namespace
{

const char *const fabricNames[numFabricStations] = {
    "sw.credit_wait", "sw.voq_wait", "sw.arb", "sw.wire",
    "sw.dev_service",
};

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return buf;
}

FabricStation
idAt(std::size_t i)
{
    return static_cast<FabricStation>(i);
}

} // namespace

const char *
fabricStationName(FabricStation id)
{
    return fabricNames[static_cast<std::size_t>(id)];
}

std::string
fabricStationColumn(FabricStation id)
{
    std::string s = fabricStationName(id);
    std::replace(s.begin(), s.end(), '.', '_');
    return s;
}

void
FabricPortSnap::merge(const FabricPortSnap &o)
{
    mergeCounters(*this, o, &FabricPortSnap::reqCount,
                  &FabricPortSnap::totalTicks);
    for (std::size_t i = 0; i < numFabricStations; ++i)
        st[i].merge(o.st[i]);
}

std::uint64_t
FabricPortSnap::stackTicks() const
{
    std::uint64_t sum = 0;
    for (const auto &s : st)
        sum += s.stackQueueTicks + s.stackServiceTicks;
    return sum;
}

std::uint64_t
FabricPortSnap::otherTicks() const
{
    const std::uint64_t stack = stackTicks();
    return totalTicks >= stack ? totalTicks - stack : 0;
}

bool
FabricPortSnap::decompositionExact() const
{
    return stackTicks() <= totalTicks;
}

double
FabricPortSnap::avgTotalNs() const
{
    if (reqCount == 0)
        return 0.0;
    return nsFromTicks(totalTicks) / static_cast<double>(reqCount);
}

double
FabricPortSnap::componentQueueNs(FabricStation id) const
{
    if (reqCount == 0)
        return 0.0;
    return nsFromTicks(at(id).stackQueueTicks)
           / static_cast<double>(reqCount);
}

double
FabricPortSnap::componentServiceNs(FabricStation id) const
{
    if (reqCount == 0)
        return 0.0;
    return nsFromTicks(at(id).stackServiceTicks)
           / static_cast<double>(reqCount);
}

double
FabricPortSnap::otherNs() const
{
    if (reqCount == 0)
        return 0.0;
    return nsFromTicks(otherTicks()) / static_cast<double>(reqCount);
}

double
FabricPortSnap::util(FabricStation id, Tick elapsed) const
{
    const StationSnap &s = at(id);
    if (elapsed == 0 || s.servers == 0)
        return 0.0;
    const std::uint64_t numer = s.buffer ? s.occIntegral : s.busyTicks;
    const double u = static_cast<double>(numer)
                     / (static_cast<double>(elapsed)
                        * static_cast<double>(s.servers));
    return std::min(u, 1.0);
}

double
FabricPortSnap::avgOccupancy(FabricStation id, Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(at(id).occIntegral)
           / static_cast<double>(elapsed);
}

double
FabricPortSnap::throughputPerNs(FabricStation id, Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(at(id).exits) / nsFromTicks(elapsed);
}

double
FabricPortSnap::avgResidencyNs(FabricStation id) const
{
    const StationSnap &s = at(id);
    if (s.exits == 0)
        return 0.0;
    return nsFromTicks(s.queueTicks + s.serviceTicks)
           / static_cast<double>(s.exits);
}

double
FabricPortSnap::littleDeviation(FabricStation id, Tick elapsed) const
{
    const StationSnap &s = at(id);
    if (s.exits == 0 || elapsed == 0)
        return 0.0;
    const double l = avgOccupancy(id, elapsed);
    const double lw =
        throughputPerNs(id, elapsed) * avgResidencyNs(id);
    const double ref = std::max(l, lw);
    if (ref <= 0.0)
        return 0.0;
    return std::abs(l - lw) / ref;
}

bool
FabricPortSnap::littleOk(Tick elapsed, double tol) const
{
    for (std::size_t i = 0; i < numFabricStations; ++i)
        if (littleDeviation(idAt(i), elapsed) > tol)
            return false;
    return true;
}

void
FabricSnapshot::merge(const FabricSnapshot &o)
{
    elapsed += o.elapsed;
    if (ports.size() < o.ports.size())
        ports.resize(o.ports.size());
    for (std::size_t i = 0; i < o.ports.size(); ++i)
        ports[i].merge(o.ports[i]);
}

FabricPortSnap
FabricSnapshot::cluster() const
{
    FabricPortSnap all;
    for (const auto &p : ports)
        all.merge(p);
    return all;
}

bool
FabricSnapshot::decompositionExact() const
{
    for (const auto &p : ports)
        if (!p.decompositionExact())
            return false;
    return true;
}

bool
FabricSnapshot::littleOk(double tol) const
{
    for (const auto &p : ports)
        if (!p.littleOk(elapsed, tol))
            return false;
    return cluster().littleOk(elapsed, tol);
}

std::uint32_t
FabricSnapshot::hotPort() const
{
    // The same measure the regime test saturates on: per-port wire /
    // arb serialization demand (busy ticks). Waiting time is excluded
    // deliberately -- dev_service occupancy is the shared backend's,
    // and queueing charges the *victim's* port (its requests wait
    // longest) rather than the flooding aggressor's.
    std::uint32_t hot = 0;
    std::uint64_t best = 0;
    for (std::size_t p = 0; p < ports.size(); ++p) {
        const std::uint64_t work =
            std::max(ports[p].at(FabricStation::Arb).busyTicks,
                     ports[p].at(FabricStation::Wire).busyTicks);
        if (work > best) {
            best = work;
            hot = static_cast<std::uint32_t>(p);
        }
    }
    return hot;
}

std::string
FabricSnapshot::verdict() const
{
    const FabricPortSnap cw = cluster();
    const double devUtil = cw.util(FabricStation::DevService, elapsed);
    double portUtil = 0.0;
    for (const auto &p : ports)
        portUtil = std::max(
            portUtil, std::max(p.util(FabricStation::Wire, elapsed),
                               p.util(FabricStation::Arb, elapsed)));
    const std::uint32_t hot = hotPort();
    // A saturated port wire outranks the device pool in a near-tie:
    // the wire backs the pool up, not the other way around.
    const char *regime = "host-local";
    double u = std::max(devUtil, portUtil);
    if (portUtil >= 0.5 && portUtil >= devUtil - 0.02) {
        regime = "congested-port";
        u = portUtil;
    } else if (devUtil >= 0.5) {
        regime = "pooled-device-backend";
        u = devUtil;
    }
    return fmt("fabric=%s hot=port%u fabric_util=%.2f", regime, hot, u);
}

std::string
FabricSnapshot::table() const
{
    std::string out;
    out += fmt("  %-5s %-15s %6s %9s %10s %10s %10s\n", "port",
               "station", "util", "avg_occ", "queue_ns", "svc_ns",
               "little_dev");
    for (std::size_t p = 0; p < ports.size(); ++p) {
        const FabricPortSnap &ps = ports[p];
        if (ps.reqCount == 0)
            continue;
        for (std::size_t i = 0; i < numFabricStations; ++i) {
            const FabricStation id = idAt(i);
            out += fmt("  %-5zu %-15s %6.3f %9.2f %10.1f %10.1f %10.4f\n",
                       p, fabricStationName(id), ps.util(id, elapsed),
                       ps.avgOccupancy(id, elapsed),
                       ps.componentQueueNs(id), ps.componentServiceNs(id),
                       ps.littleDeviation(id, elapsed));
        }
        out += fmt("  %-5zu %-15s avg %.1f ns over %llu reqs  "
                   "other %.1f ns  (stack %s)\n",
                   p, "total", ps.avgTotalNs(),
                   static_cast<unsigned long long>(ps.reqCount),
                   ps.otherNs(),
                   ps.decompositionExact() ? "exact" : "VIOLATED");
    }
    out += "  " + verdict()
           + fmt("  (little's law %s)\n", littleOk() ? "ok" : "VIOLATED");
    return out;
}

std::string
FabricSnapshot::postMortem() const
{
    std::string out = "fabric attribution at trip time:\n";
    for (std::size_t p = 0; p < ports.size(); ++p) {
        const FabricPortSnap &ps = ports[p];
        if (ps.reqCount == 0)
            continue;
        std::string stuck;
        for (std::size_t i = 0; i < numFabricStations; ++i) {
            const StationSnap &s = ps.st[i];
            const long long in = static_cast<long long>(s.enters)
                                 - static_cast<long long>(s.exits);
            if (in > 0)
                stuck += fmt(" %s=%lld", fabricStationName(idAt(i)), in);
        }
        out += fmt("  port%zu: %llu reqs  wire_util %.3f  "
                   "dev_util %.3f  in-station:%s\n",
                   p, static_cast<unsigned long long>(ps.reqCount),
                   ps.util(FabricStation::Wire, elapsed),
                   ps.util(FabricStation::DevService, elapsed),
                   stuck.empty() ? " none" : stuck.c_str());
    }
    out += "  " + verdict() + "\n";
    return out;
}

FabricBoard::FabricBoard(std::uint32_t ports, std::uint32_t devices,
                         Tick now)
    : ports_(ports), windowStart_(now)
{
    for (auto &p : ports_) {
        for (auto &s : p.st)
            s.lastOcc = now;
        auto &credit =
            p.st[static_cast<std::size_t>(FabricStation::CreditWait)];
        credit.buffer = true;
        auto &voq =
            p.st[static_cast<std::size_t>(FabricStation::VoqWait)];
        voq.buffer = true;
        // The device pool is shared: its utilization denominator is
        // the device count, so the cluster roll-up reads as pool
        // occupancy rather than per-port line rate.
        auto &dev =
            p.st[static_cast<std::size_t>(FabricStation::DevService)];
        dev.servers = std::max<std::uint32_t>(devices, 1);
    }
}

FabricSnapshot
FabricBoard::snapshot(Tick now) const
{
    FabricSnapshot snap;
    snap.elapsed = now >= windowStart_ ? now - windowStart_ : 0;
    snap.ports.resize(ports_.size());
    for (std::size_t p = 0; p < ports_.size(); ++p) {
        const PortBoard &b = ports_[p];
        FabricPortSnap &o = snap.ports[p];
        o.reqCount = b.reqCount;
        o.totalTicks = b.totalTicks;
        if (b.liveCount > 0) {
            // Same horizon rule as AttributionBoard::snapshot():
            // in-flight brackets are charged up to the latest end of
            // any accounted interval, so stack <= total mid-flight.
            Tick horizon = now;
            for (const auto &s : b.st)
                horizon = std::max(horizon, s.intervalEnd);
            o.reqCount += b.liveCount;
            o.totalTicks += b.liveCount * horizon - b.liveStartSum;
        }
        for (std::size_t i = 0; i < numFabricStations; ++i) {
            const AccountedStation &s = b.st[i];
            StationSnap &t = o.st[i];
            t.servers = s.servers;
            t.buffer = s.buffer;
            t.enters = s.enters;
            t.exits = s.exits;
            t.queueTicks = s.queueTicks;
            t.serviceTicks = s.serviceTicks;
            t.busyTicks = s.busyTicks;
            t.occIntegral = s.occIntegral;
            if (now > s.lastOcc)
                t.occIntegral +=
                    std::uint64_t(s.occupancy) * (now - s.lastOcc);
            t.stackQueueTicks = s.stackQueueTicks;
            t.stackServiceTicks = s.stackServiceTicks;
        }
    }
    return snap;
}

} // namespace cxlmemo
