/**
 * @file
 * Free-list pools for hot-path one-shot allocations.
 *
 * The event kernel retires millions of short-lived callbacks per
 * figure. Most captures fit InlineCallback's inline buffer, but the
 * ones that carry a whole MemRequest (device dispatches, completion
 * chains, far-heap event nodes) spill to a heap cell -- previously a
 * global new/delete pair per event, which serializes on the allocator
 * lock under the parallel engine and costs ~5% of single-thread time.
 *
 * poolAlloc/poolFree replace that pair with per-thread size-class
 * free lists:
 *
 *  - cells come in 64 B classes up to 1 KiB; larger requests fall
 *    through to operator new (they are cold: sweep setup, reports);
 *  - a freed cell goes onto the *freeing* thread's list, so no
 *    cross-thread bookkeeping exists and the structure is trivially
 *    thread-safe. Under the parallel engine a cell allocated in one
 *    domain and freed in another simply migrates; list lengths are
 *    capped, so migration cannot accumulate unbounded memory;
 *  - each list is drained back to operator delete when its thread
 *    exits.
 *
 * Accounting: every allocation bumps process-wide counters (relaxed
 * atomics -- exact totals, no ordering needed) that MetricsRegistry
 * exposes as `sim.pool.*`, giving sweeps an alloc-rate signal.
 */

#ifndef CXLMEMO_SIM_POOL_HH
#define CXLMEMO_SIM_POOL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace cxlmemo
{

namespace pool_detail
{

constexpr std::size_t classBytes = 64;
constexpr std::size_t numClasses = 16; //!< up to 1 KiB
constexpr std::size_t maxCached = 4096; //!< cells kept per class/thread

struct Counters
{
    std::atomic<std::uint64_t> allocs{0};   //!< poolAlloc calls
    std::atomic<std::uint64_t> reuses{0};   //!< served from a free list
    std::atomic<std::uint64_t> fallbacks{0}; //!< too large for a class
};

inline Counters &
counters()
{
    static Counters c;
    return c;
}

/** Intrusive singly linked free list; the link lives in the cell. */
struct FreeCell
{
    FreeCell *next;
};

struct ThreadCache
{
    FreeCell *head[numClasses] = {};
    std::size_t count[numClasses] = {};

    ~ThreadCache()
    {
        for (std::size_t c = 0; c < numClasses; ++c) {
            FreeCell *cell = head[c];
            while (cell) {
                FreeCell *next = cell->next;
                ::operator delete(cell);
                cell = next;
            }
        }
    }
};

inline ThreadCache &
cache()
{
    thread_local ThreadCache tc;
    return tc;
}

constexpr std::size_t
classOf(std::size_t bytes)
{
    return (bytes + classBytes - 1) / classBytes - 1;
}

} // namespace pool_detail

/**
 * Allocate @p bytes from the calling thread's pool. Alignment is
 * max_align_t (like operator new); over-aligned types must not use
 * the pool.
 */
inline void *
poolAlloc(std::size_t bytes)
{
    using namespace pool_detail;
    auto &ctr = counters();
    ctr.allocs.fetch_add(1, std::memory_order_relaxed);
    if (bytes == 0)
        bytes = 1;
    const std::size_t cls = classOf(bytes);
    if (cls >= numClasses) {
        ctr.fallbacks.fetch_add(1, std::memory_order_relaxed);
        return ::operator new(bytes);
    }
    ThreadCache &tc = cache();
    if (FreeCell *cell = tc.head[cls]) {
        tc.head[cls] = cell->next;
        --tc.count[cls];
        ctr.reuses.fetch_add(1, std::memory_order_relaxed);
        return cell;
    }
    return ::operator new((cls + 1) * classBytes);
}

/** Return a poolAlloc'd cell of @p bytes to the calling thread. */
inline void
poolFree(void *p, std::size_t bytes)
{
    using namespace pool_detail;
    if (!p)
        return;
    if (bytes == 0)
        bytes = 1;
    const std::size_t cls = classOf(bytes);
    if (cls >= numClasses) {
        ::operator delete(p);
        return;
    }
    ThreadCache &tc = cache();
    if (tc.count[cls] >= maxCached) {
        ::operator delete(p);
        return;
    }
    auto *cell = static_cast<FreeCell *>(p);
    cell->next = tc.head[cls];
    tc.head[cls] = cell;
    ++tc.count[cls];
}

/** Process-wide pool traffic counters (for MetricsRegistry). */
inline std::uint64_t
poolAllocCount()
{
    return pool_detail::counters().allocs.load(std::memory_order_relaxed);
}

inline std::uint64_t
poolReuseCount()
{
    return pool_detail::counters().reuses.load(std::memory_order_relaxed);
}

inline std::uint64_t
poolFallbackCount()
{
    return pool_detail::counters().fallbacks.load(
        std::memory_order_relaxed);
}

} // namespace cxlmemo

#endif // CXLMEMO_SIM_POOL_HH
