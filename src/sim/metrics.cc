#include "sim/metrics.hh"

#include <charconv>
#include <cstdio>

namespace cxlmemo
{

void
MetricsRegistry::appendRow(Tick now, const std::string &name,
                           const char *kind, std::uint64_t value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f,", nsFromTicks(now));
    rows_ += buf;
    rows_ += name;
    rows_ += ',';
    rows_ += kind;
    std::snprintf(buf, sizeof(buf), ",%llu\n",
                  static_cast<unsigned long long>(value));
    rows_ += buf;
}

void
MetricsRegistry::appendRow(Tick now, const std::string &name,
                           const char *kind, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f,", nsFromTicks(now));
    rows_ += buf;
    rows_ += name;
    rows_ += ',';
    rows_ += kind;
    std::snprintf(buf, sizeof(buf), ",%.6g\n", value);
    rows_ += buf;
}

void
MetricsRegistry::addHistogram(std::string name,
                              std::function<const LatencyHistogram *()>
                                  read,
                              double scale)
{
    Hist h;
    h.name = std::move(name);
    h.read = std::move(read);
    h.scale = scale;
    // The percentile rows ride on a plain counter of window samples,
    // so the histogram stream participates in the timeline's
    // conservation property (sum of <name>.n deltas == final total).
    addCounter(h.name + ".n", [r = h.read] {
        const LatencyHistogram *src = r();
        return src ? src->count() : 0;
    });
    hists_.push_back(std::move(h));
}

void
MetricsRegistry::snapshotHists(Tick now)
{
    static constexpr double kQs[] = {50.0, 95.0, 99.0, 99.9};
    static constexpr const char *kQNames[] = {".p50", ".p95", ".p99",
                                              ".p999"};
    for (Hist &h : hists_) {
        const LatencyHistogram *src = h.read();
        if (!src)
            continue;
        const auto &cur = src->bucketCounts();
        const std::uint64_t cnt = src->count();
        const std::uint64_t win = cnt - h.lastCount;
        if (win > 0) {
            std::array<std::uint64_t, LatencyHistogram::kBuckets> delta;
            for (std::uint32_t b = 0; b < LatencyHistogram::kBuckets;
                 ++b)
                delta[b] = cur[b] - h.last[b];
            double out[4];
            LatencyHistogram::quantilesFromBuckets(delta, win, kQs, out,
                                                   4);
            for (std::size_t q = 0; q < 4; ++q)
                appendRow(now, h.name + kQNames[q], "pctl",
                          out[q] * h.scale);
        }
        h.last = cur;
        h.lastCount = cnt;
    }
}

void
MetricsRegistry::snapshot(Tick now)
{
    ++snapshots_;
    // All rows of one snapshot share the time column; format it once
    // (and counter values with to_chars below): at pool scale the
    // sampler emits thousands of rows, and per-row snprintf was the
    // measurable part of the metrics overhead.
    char tbuf[32];
    std::snprintf(tbuf, sizeof(tbuf), "%.1f,", nsFromTicks(now));
    for (Counter &c : counters_) {
        const std::uint64_t total = c.read();
        // Monotonicity is the source's contract; a reset between
        // snapshots would make the delta wrap. Clamp defensively so a
        // misbehaving source corrupts one row, not the whole timeline.
        const std::uint64_t delta = total >= c.last ? total - c.last : 0;
        // The timeline is a change log: a zero delta carries no
        // information (sum(deltas) == total holds with or without
        // it), and skipping it keeps a fleet of mostly-idle fabric
        // counters from dominating the sampling cost.
        if (delta != 0) {
            rows_ += tbuf;
            rows_ += c.name;
            rows_ += ",delta,";
            char vbuf[24];
            const auto r = std::to_chars(vbuf, vbuf + sizeof(vbuf),
                                         delta);
            rows_.append(vbuf, r.ptr);
            rows_ += '\n';
        }
        c.last = total;
    }
    for (Gauge &g : gauges_) {
        const double v = g.read();
        // Same rule for gauges: the level is emitted when it moves
        // (and once at the first sample, so every gauge appears);
        // readers hold the last value across silent intervals.
        if (!g.emitted || v != g.last) {
            appendRow(now, g.name, "gauge", v);
            g.emitted = true;
            g.last = v;
        }
    }
    snapshotHists(now);
}

void
MetricsRegistry::flush(Tick now)
{
    if (flushed_)
        return;
    flushed_ = true;
    snapshot(now);
    for (const Counter &c : counters_)
        appendRow(now, c.name, "total", c.read());
}

void
MetricsRegistry::reset()
{
    rows_.clear();
    snapshots_ = 0;
    flushed_ = false;
    for (Counter &c : counters_)
        c.last = c.read();
    for (Gauge &g : gauges_)
        g.emitted = false;
    for (Hist &h : hists_) {
        if (const LatencyHistogram *src = h.read()) {
            h.last = src->bucketCounts();
            h.lastCount = src->count();
        } else {
            h.last.fill(0);
            h.lastCount = 0;
        }
    }
}

} // namespace cxlmemo
