#include "sim/metrics.hh"

#include <cstdio>

namespace cxlmemo
{

void
MetricsRegistry::appendRow(Tick now, const std::string &name,
                           const char *kind, std::uint64_t value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f,", nsFromTicks(now));
    rows_ += buf;
    rows_ += name;
    rows_ += ',';
    rows_ += kind;
    std::snprintf(buf, sizeof(buf), ",%llu\n",
                  static_cast<unsigned long long>(value));
    rows_ += buf;
}

void
MetricsRegistry::appendRow(Tick now, const std::string &name,
                           const char *kind, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f,", nsFromTicks(now));
    rows_ += buf;
    rows_ += name;
    rows_ += ',';
    rows_ += kind;
    std::snprintf(buf, sizeof(buf), ",%.6g\n", value);
    rows_ += buf;
}

void
MetricsRegistry::snapshot(Tick now)
{
    ++snapshots_;
    for (Counter &c : counters_) {
        const std::uint64_t total = c.read();
        // Monotonicity is the source's contract; a reset between
        // snapshots would make the delta wrap. Clamp defensively so a
        // misbehaving source corrupts one row, not the whole timeline.
        const std::uint64_t delta = total >= c.last ? total - c.last : 0;
        appendRow(now, c.name, "delta", delta);
        c.last = total;
    }
    for (const Gauge &g : gauges_)
        appendRow(now, g.name, "gauge", g.read());
}

void
MetricsRegistry::flush(Tick now)
{
    if (flushed_)
        return;
    flushed_ = true;
    snapshot(now);
    for (const Counter &c : counters_)
        appendRow(now, c.name, "total", c.read());
}

void
MetricsRegistry::reset()
{
    rows_.clear();
    snapshots_ = 0;
    flushed_ = false;
    for (Counter &c : counters_)
        c.last = c.read();
}

} // namespace cxlmemo
