/**
 * @file
 * Request-lifecycle tracing: sampled per-request spans that timestamp
 * each pipeline stage a MemRequest passes through, from core issue to
 * response delivery.
 *
 * The flight-recorder model:
 *
 *  - A RequestTracer decides at issue time (deterministic 1-in-N
 *    counter, no RNG -- tracing must not perturb seeded streams)
 *    whether a request gets a span. Unsampled requests carry a null
 *    span pointer and pay a single pointer test per stage.
 *  - Components mark stage *entry* with RequestTracer::mark(span,
 *    stage, tick); marks are ordered, so a stage's duration is the
 *    gap to the next mark (or to span end for the last stage).
 *  - Completed spans accumulate for Chrome trace-event JSON export
 *    (Perfetto-loadable) and feed a bounded ring of the last N
 *    completions that the watchdog post-mortem dumps, together with
 *    still-open spans and the stage each one is stuck in.
 *
 * Disabled (sampleEvery == 0, the default), maybeStart() returns
 * nullptr unconditionally, no span is ever allocated, and simulated
 * behaviour is bit-identical to a build without this subsystem:
 * tracing only observes ticks, never schedules or delays anything.
 */

#ifndef CXLMEMO_SIM_TRACE_HH
#define CXLMEMO_SIM_TRACE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "mem/request.hh"
#include "sim/types.hh"

namespace cxlmemo
{

/**
 * Pipeline stages a request can enter, in rough path order. One
 * request touches a subset: a local-DRAM read sees Issue/Cache/Dram;
 * a CXL read adds the link, controller and (under overload) credit
 * stages; a remote-socket read sees Upi instead.
 */
enum class TraceStage : std::uint8_t
{
    Issue,      //!< core issued (left the thread's issue gate)
    LfbWait,    //!< stalled for a fill buffer / WC buffer / store entry
    Cache,      //!< L1-L2-LLC lookup pipeline
    Dram,       //!< DRAM channel (local, remote or device back-end)
    Upi,        //!< cross-socket UPI hop
    CxlM2s,     //!< M2S flit serialization + propagation (host->device)
    CxlCredit,  //!< waiting for an M2S message-class credit
    CxlIngress, //!< device controller ingress pipe + tracker/buffer wait
    CxlEgress,  //!< device controller egress pipe
    CxlS2m,     //!< S2M response flit (device->host)
    // Fabric stages: the pooled-memory switch path (Cluster mode).
    SwM2s,        //!< host -> switch ingress flit (port latency)
    SwCredit,     //!< waiting for a port rd/wr credit
    SwVoq,        //!< queued in the port's virtual output queue
    SwXbar,       //!< crossbar grant + request serialization
    SwDev,        //!< pooled device service (behind the switch)
    SwEgress,     //!< response waiting for / crossing the egress wire
    SwS2m,        //!< switch -> host response flit (port latency)
    SwFenceAbort, //!< aborted by port fencing (blast-radius path)
};

/** First stage of the fabric (switch-path) range, for track routing:
 *  exporters place stages >= this on the fabric track. */
constexpr bool
isFabricStage(TraceStage s)
{
    return s >= TraceStage::SwM2s;
}

/** Human/trace-viewer name of a stage. */
const char *traceStageName(TraceStage s);

/** One timestamped stage entry within a span. */
struct StageMark
{
    TraceStage stage;
    Tick at;
};

/** The recorded lifecycle of one sampled request. */
struct TraceSpan
{
    std::uint64_t id = 0;
    std::uint16_t source = 0;
    MemCmd cmd = MemCmd::Read;
    Addr addr = 0;
    Tick start = 0;
    Tick end = 0;
    std::vector<StageMark> marks;
    /** 1-in-N sampled (exported + ringed); tail-only spans are
     *  considered for worst-K capture and then recycled. */
    bool sampled = true;
    /** Slot in the tracer's open set, kept current so finish() is
     *  O(1) -- with tail capture armed every demand read has a span
     *  and a linear scan would be hot. */
    std::uint32_t openIdx = 0;
};

class TailCapture;

class RequestTracer
{
  public:
    /**
     * @param sampleEvery trace every Nth request (0 disables);
     * @param ringCap completed spans kept for the post-mortem ring.
     */
    explicit RequestTracer(std::uint64_t sampleEvery,
                           std::size_t ringCap = 32);

    /**
     * Called at every request issue. Returns a stable span pointer for
     * the 1-in-N sampled requests, nullptr otherwise. The pointer
     * stays valid until finish().
     */
    TraceSpan *maybeStart(std::uint16_t source, MemCmd cmd, Addr addr,
                          Tick at);

    /** Record stage entry; null-safe so call sites need no tracer. */
    static void
    mark(TraceSpan *span, TraceStage stage, Tick at)
    {
        if (span)
            span->marks.push_back({stage, at});
    }

    /** Complete the span: moves it to the export set and the ring. */
    void finish(TraceSpan *span, Tick at);

    /**
     * Arm worst-K tail mode: maybeStart() returns a span for *every*
     * demand read (not just the sampled 1-in-N), and finish() offers
     * each completed read to @p tc. Tail-only spans never reach the
     * export set or the ring; they are recycled through a free list,
     * so steady state allocates nothing.
     */
    void setTailCapture(TailCapture *tc) { tail_ = tc; }

    TailCapture *tailCapture() const { return tail_; }

    std::uint64_t sampleEvery() const { return sampleEvery_; }
    std::uint64_t seen() const { return seen_; }
    std::size_t openCount() const { return open_.size(); }
    std::size_t completedCount() const { return completed_.size(); }
    std::uint64_t dropped() const { return dropped_; }

    const std::deque<TraceSpan> &ring() const { return ring_; }

    /** Completed spans retained for export, in completion order.
     *  Custom exporters (the Cluster's per-host + fabric-track JSON)
     *  walk this instead of appendTraceEvents(). */
    const std::vector<TraceSpan> &completed() const { return completed_; }

    /**
     * Append this tracer's completed spans as Chrome trace-event JSON
     * objects (comma-separated; no surrounding array) to @p out. Each
     * span becomes a parent "X" slice plus one child slice per stage;
     * ts/dur are microseconds, tid is the issuing source, @p pid
     * distinguishes machines (sweep points) in a merged trace.
     * @p first tracks whether a comma is needed before the next event.
     */
    void appendTraceEvents(std::string &out, int pid, bool &first) const;

    /**
     * Flight-recorder dump for the watchdog: the last-N completed
     * spans and every still-open span with the stage it is stuck in.
     */
    std::string postMortem(Tick now) const;

  private:
    std::uint64_t sampleEvery_;
    std::size_t ringCap_;
    std::uint64_t seen_ = 0;
    /** Requests until the next sample (1 == sample the next one). */
    std::uint64_t countdown_ = 1;
    std::uint64_t nextId_ = 0;
    std::uint64_t dropped_ = 0;

    /** Worst-K tail capture (null = sampled tracing only). */
    TailCapture *tail_ = nullptr;

    /** Spans in flight; unique_ptr keeps addresses stable. */
    std::vector<std::unique_ptr<TraceSpan>> open_;
    /** Recycled span shells (marks keep their capacity, so tail mode
     *  stops allocating once the open set has seen its high-water
     *  mark). */
    std::vector<std::unique_ptr<TraceSpan>> free_;
    /** Completed spans retained for JSON export (bounded). */
    std::vector<TraceSpan> completed_;
    /** Last-N completed spans for the post-mortem. */
    std::deque<TraceSpan> ring_;

    /** Export-set bound: past this, spans still feed the ring but are
     *  dropped from the JSON (counted in dropped_). */
    static constexpr std::size_t maxCompleted_ = 1u << 20;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_TRACE_HH
