/**
 * @file
 * Fundamental simulation types: simulated time (ticks), data sizes and
 * conversion helpers shared by every cxlmemo module.
 *
 * The simulator counts time in integer picoseconds. Picosecond
 * resolution keeps every timing constant exactly representable (DDR
 * device timings are sub-nanosecond multiples) while a 64-bit counter
 * still covers ~106 days of simulated time, far beyond any experiment
 * in this repository.
 */

#ifndef CXLMEMO_SIM_TYPES_HH
#define CXLMEMO_SIM_TYPES_HH

#include <cstdint>

namespace cxlmemo
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Physical or virtual byte address inside the simulated machine. */
using Addr = std::uint64_t;

/** One simulated nanosecond expressed in ticks. */
constexpr Tick tickPerNs = 1000;

/** Sentinel for "no time" / "never". */
constexpr Tick maxTick = ~Tick(0);

/** Convert nanoseconds (possibly fractional) to ticks. */
constexpr Tick
ticksFromNs(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(tickPerNs) + 0.5);
}

/** Convert microseconds to ticks. */
constexpr Tick
ticksFromUs(double us)
{
    return ticksFromNs(us * 1e3);
}

/** Convert milliseconds to ticks. */
constexpr Tick
ticksFromMs(double ms)
{
    return ticksFromNs(ms * 1e6);
}

/** Convert seconds to ticks. */
constexpr Tick
ticksFromSec(double sec)
{
    return ticksFromNs(sec * 1e9);
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
nsFromTicks(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerNs);
}

/** Convert ticks to (fractional) microseconds. */
constexpr double
usFromTicks(Tick t)
{
    return nsFromTicks(t) / 1e3;
}

/** Convert ticks to (fractional) seconds. */
constexpr double
secFromTicks(Tick t)
{
    return nsFromTicks(t) / 1e9;
}

/** Size literals. */
constexpr std::uint64_t kiB = 1024;
constexpr std::uint64_t miB = 1024 * kiB;
constexpr std::uint64_t giB = 1024 * miB;

/** Cache line size used throughout the simulated machine. */
constexpr std::uint32_t cachelineBytes = 64;

/** OS page size used by the NUMA allocation policies. */
constexpr std::uint64_t pageBytes = 4 * kiB;

/**
 * Bandwidth helper: bytes moved over a duration, reported in GB/s
 * (decimal gigabytes, matching how the paper reports bandwidth).
 */
constexpr double
gbPerSec(std::uint64_t bytes, Tick duration)
{
    if (duration == 0)
        return 0.0;
    return static_cast<double>(bytes) / secFromTicks(duration) / 1e9;
}

/**
 * Convert a GB/s figure (decimal) into bytes per tick, the unit link
 * and channel models use internally.
 */
constexpr double
bytesPerTickFromGBps(double gbps)
{
    return gbps * 1e9 / 1e12; // bytes per second -> bytes per picosecond
}

/** Serialization delay in ticks for @p bytes at @p gbps GB/s. */
constexpr Tick
serializationTicks(std::uint64_t bytes, double gbps)
{
    return static_cast<Tick>(
        static_cast<double>(bytes) / bytesPerTickFromGBps(gbps) + 0.5);
}

} // namespace cxlmemo

#endif // CXLMEMO_SIM_TYPES_HH
