/**
 * @file
 * Status / error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something is off but the simulation can continue.
 * inform() - plain status output.
 */

#ifndef CXLMEMO_SIM_LOGGING_HH
#define CXLMEMO_SIM_LOGGING_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace cxlmemo
{

namespace logging_detail
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void assertFailImpl(const char *file, int line,
                                 const char *cond, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace logging_detail

#define CXLMEMO_PANIC(...)                                                   \
    ::cxlmemo::logging_detail::panicImpl(                                    \
        __FILE__, __LINE__, ::cxlmemo::logging_detail::format(__VA_ARGS__))

#define CXLMEMO_FATAL(...)                                                   \
    ::cxlmemo::logging_detail::fatalImpl(                                    \
        __FILE__, __LINE__, ::cxlmemo::logging_detail::format(__VA_ARGS__))

#define CXLMEMO_WARN(...)                                                    \
    ::cxlmemo::logging_detail::warnImpl(                                     \
        ::cxlmemo::logging_detail::format(__VA_ARGS__))

#define CXLMEMO_INFORM(...)                                                  \
    ::cxlmemo::logging_detail::informImpl(                                   \
        ::cxlmemo::logging_detail::format(__VA_ARGS__))

/**
 * Warn at most once per call site for the process lifetime. Per-request
 * conditions (retry budget exhausted, poison delivered uncached) can
 * fire millions of times in a sweep; the first occurrence carries all
 * the signal. Atomic because SweepRunner executes machines on several
 * host threads that may share a call site.
 */
#define CXLMEMO_WARN_ONCE(...)                                               \
    do {                                                                     \
        static ::std::atomic<bool> cxlmemo_warned_{false};                   \
        if (!cxlmemo_warned_.exchange(true, ::std::memory_order_relaxed)) {  \
            CXLMEMO_WARN(__VA_ARGS__);                                       \
        }                                                                    \
    } while (0)

/**
 * Warn for the first @p limit occurrences per call site, then announce
 * suppression once and stay silent. Use where a handful of instances
 * are diagnostic (which requests hit the condition) but an unbounded
 * stream would flood a multi-million-request sweep.
 */
#define CXLMEMO_WARN_RATELIMITED(limit, ...)                                 \
    do {                                                                     \
        static ::std::atomic<std::uint64_t> cxlmemo_warn_count_{0};          \
        const std::uint64_t cxlmemo_n_ = cxlmemo_warn_count_.fetch_add(      \
            1, ::std::memory_order_relaxed);                                 \
        if (cxlmemo_n_ < (limit)) {                                          \
            CXLMEMO_WARN(__VA_ARGS__);                                       \
            if (cxlmemo_n_ + 1 == (limit)) {                                 \
                CXLMEMO_WARN("further warnings from %s:%d suppressed",      \
                             __FILE__, __LINE__);                            \
            }                                                                \
        }                                                                    \
    } while (0)

/**
 * Assert an internal invariant; compiled in all build types. The
 * stringified condition is passed as *data*, never as a format string
 * (conditions routinely contain '%').
 */
#define CXLMEMO_ASSERT(cond, ...)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::cxlmemo::logging_detail::assertFailImpl(                       \
                __FILE__, __LINE__, #cond,                                   \
                ::cxlmemo::logging_detail::format("" __VA_ARGS__));          \
        }                                                                    \
    } while (0)

} // namespace cxlmemo

#endif // CXLMEMO_SIM_LOGGING_HH
