/**
 * @file
 * Conservative parallel discrete-event execution across domain
 * event queues.
 *
 * A Machine partitions its components into *domains* -- host socket,
 * each local DRAM channel, the CXL device, the remote socket -- each
 * owning a private EventQueue. ParallelExecutor drives all domains in
 * lock-step *windows* of width L, the lookahead, chosen as the
 * minimum genuine cross-domain latency (the local controller
 * front-end; the CXL link one-way propagation and the UPI hop are
 * larger). Within a window [W, W+L) no domain can causally affect
 * another, because any event one domain creates for another carries
 * at least L of latency -- the classic null-message-free conservative
 * PDES argument. Each window, every domain drains its own queue
 * independently on a worker thread; events crossing domains are
 * staged in per-source outboxes and exchanged at the window barrier.
 *
 * Determinism -- the contract is byte-identical simulation output at
 * any worker count, including one -- rests on three properties:
 *
 *  1. The window schedule depends only on event ticks and L: the next
 *     window start is the global minimum pending tick (which also
 *     skips idle stretches in one step), never on thread timing.
 *  2. Staged events are merged at the barrier in (source-rank,
 *     post-order), so destination (tick, seq) assignment is a pure
 *     function of the simulation, not of the interleaving.
 *  3. Deliveries are floored at the window end (max(when, windowEnd)),
 *     so a path shorter than L -- which would be a causality leak --
 *     degrades into a deterministic quantization instead of a race.
 *     Genuine paths are >= L and never hit the floor; the clamp
 *     counter makes violations observable.
 *
 * Cross-domain *reads* (metrics samplers, the watchdog, attribution
 * snapshots) cannot be staged: they must observe a globally quiesced
 * state. Components register those ticks as *fences*; the executor
 * ends the window early at a fence and executes the fence tick
 * sequentially, domain by domain in rank order, on the coordinator
 * thread -- race-free and in a fixed order.
 */

#ifndef CXLMEMO_SIM_PARALLEL_HH
#define CXLMEMO_SIM_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "sim/callback.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace cxlmemo
{

class ParallelExecutor
{
  public:
    /** Cross-domain event: invoked with its actual delivery tick
     *  (== the requested tick unless the window floor clamped it). */
    using CrossCallback = InlineCallback<void(Tick), 48>;

    /**
     * @param domains rank-ordered domain queues; rank is the merge
     *        tie-break order and must be stable across runs
     * @param lookahead window width L (>= 1 tick)
     * @param threads worker count; 1 runs the identical window
     *        algorithm without spawning threads
     */
    ParallelExecutor(std::vector<EventQueue *> domains, Tick lookahead,
                     std::uint32_t threads);
    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    std::uint32_t numDomains() const
    {
        return static_cast<std::uint32_t>(domains_.size());
    }

    Tick lookahead() const { return lookahead_; }
    std::uint32_t threads() const { return threads_; }

    /**
     * Stage @p cb from domain @p src for execution in domain @p dst at
     * @p when (floored at the current window end for cross-domain
     * posts). Must be called from @p src's execution context -- its
     * window callbacks or the sequential fence step. src == dst
     * schedules directly, with no floor.
     */
    void post(std::uint32_t src, std::uint32_t dst, Tick when,
              CrossCallback cb);

    /**
     * Request that tick @p when execute sequentially across all
     * domains (coordinator thread, rank order). Call from setup or
     * from a callback running at a previous fence; self-rearming
     * samplers do exactly that.
     */
    void addFence(Tick when) { fences_.insert(when); }

    /**
     * Drive all domains until every queue drains or @p limit is
     * reached; events exactly at @p limit execute (runUntil
     * semantics). On return all domains share one current tick.
     * @return true if drained, false if the limit stopped execution.
     */
    bool run(Tick limit = maxTick);

    /** Common current tick after run() (max over domains). */
    Tick curTick() const;

    /** Total events pending over all domains. */
    std::size_t pending() const;

    /** Windows executed (including sequential fence steps). */
    std::uint64_t windows() const { return windows_; }

    /** Cross-domain posts staged so far. */
    std::uint64_t crossPosts() const { return crossPosts_; }

    /** Posts whose delivery was floored at the window end; nonzero
     *  means some wired path is shorter than the lookahead. */
    std::uint64_t clampedPosts() const { return clampedPosts_; }

  private:
    struct Staged
    {
        std::uint32_t dst;
        Tick when;
        CrossCallback cb;
    };

    /** Per-worker handshake line, padded against false sharing. */
    struct alignas(64) WorkerSync
    {
        std::atomic<std::uint64_t> go{0};
        std::atomic<std::uint64_t> done{0};
    };

    void workerLoop(std::uint32_t worker);
    void runDomainsOf(std::uint32_t worker, Tick target);
    /** Deliver all outboxes in (src-rank, post-order); floor @p floor. */
    void mergeOutboxes(Tick floor);
    Tick minPeek() const;

    std::vector<EventQueue *> domains_;
    Tick lookahead_;
    std::uint32_t threads_;

    std::vector<std::vector<Staged>> outbox_; //!< [src rank]
    std::set<Tick> fences_;

    // Window barrier: the coordinator publishes a generation+target,
    // workers run their domains and report the generation back.
    std::vector<std::unique_ptr<WorkerSync>> sync_;
    std::vector<std::thread> workers_;
    std::atomic<Tick> target_{0};
    std::atomic<bool> stop_{false};
    std::uint64_t generation_ = 0;
    bool running_ = false;

    std::uint64_t windows_ = 0;
    std::uint64_t crossPosts_ = 0;
    std::uint64_t clampedPosts_ = 0;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_PARALLEL_HH
