/**
 * @file
 * ChaosSpec parsing/validation and ChaosStats merge/summary.
 */

#include "sim/chaos.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "sim/statmerge.hh"

namespace cxlmemo
{

namespace
{

bool
parseF(const std::string &v, double &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(v.c_str(), &end);
    return end == v.c_str() + v.size();
}

bool
parseU(const std::string &v, std::uint64_t &out)
{
    if (v.empty() || v[0] == '-')
        return false;
    char *end = nullptr;
    out = std::strtoull(v.c_str(), &end, 10);
    return end == v.c_str() + v.size();
}

} // namespace

const char *
containPolicyName(ContainPolicy p)
{
    switch (p) {
    case ContainPolicy::Poison:
        return "poison";
    case ContainPolicy::Abort:
        return "abort";
    }
    return "?";
}

void
ChaosSpec::validate() const
{
    if (!(retrainNs > 0.0))
        throw std::invalid_argument(
            "ChaosSpec: retrain-ns must be positive");
    if (!(stepUpNs > 0.0))
        throw std::invalid_argument(
            "ChaosSpec: step-up-ns must be positive");
    if (!(abortNs > 0.0))
        throw std::invalid_argument(
            "ChaosSpec: abort-ns must be positive");
    if (readdAtNs > 0 && removeAtNs == 0)
        throw std::invalid_argument(
            "ChaosSpec: readd-at-ns needs remove-at-ns");
    if (readdAtNs > 0 && readdAtNs <= removeAtNs)
        throw std::invalid_argument(
            "ChaosSpec: readd-at-ns must be after remove-at-ns");
    if (maxOfflinePages == 0 || maxOfflinePages > 4096)
        throw std::invalid_argument(
            "ChaosSpec: max-offline-pages must be in [1,4096]");
}

std::string
ChaosSpec::toString() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "link-down-at-ns=%llu,retrain-ns=%g,step-up-ns=%g,"
                  "crc-burst=%u,remove-at-ns=%llu,readd-at-ns=%llu,"
                  "contain=%s,offline-threshold=%u",
                  static_cast<unsigned long long>(linkDownAtNs),
                  retrainNs, stepUpNs, crcBurstTrigger,
                  static_cast<unsigned long long>(removeAtNs),
                  static_cast<unsigned long long>(readdAtNs),
                  containPolicyName(contain), offlineThreshold);
    return buf;
}

std::optional<ChaosSpec>
ChaosSpec::parse(const std::string &text, std::string &error)
{
    ChaosSpec spec;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string item = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            error = "chaos-spec item needs key=value: " + item;
            return std::nullopt;
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        double f = 0.0;
        std::uint64_t n = 0;
        if (key == "link-down-at-ns" && parseU(value, n)) {
            spec.linkDownAtNs = n;
        } else if (key == "retrain-ns" && parseF(value, f)) {
            spec.retrainNs = f;
        } else if (key == "step-up-ns" && parseF(value, f)) {
            spec.stepUpNs = f;
        } else if (key == "crc-burst" && parseU(value, n)) {
            spec.crcBurstTrigger = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(n, 0xffffffffu));
        } else if (key == "remove-at-ns" && parseU(value, n)) {
            spec.removeAtNs = n;
        } else if (key == "readd-at-ns" && parseU(value, n)) {
            spec.readdAtNs = n;
        } else if (key == "contain") {
            if (value == "poison") {
                spec.contain = ContainPolicy::Poison;
            } else if (value == "abort") {
                spec.contain = ContainPolicy::Abort;
            } else {
                error = "bad contain policy (poison|abort): " + value;
                return std::nullopt;
            }
        } else if (key == "abort-ns" && parseF(value, f)) {
            spec.abortNs = f;
        } else if (key == "offline-threshold" && parseU(value, n)) {
            spec.offlineThreshold = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(n, 0xffffffffu));
        } else if (key == "max-offline-pages" && parseU(value, n)) {
            spec.maxOfflinePages = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(n, 0xffffffffu));
        } else if (key == "seed" && parseU(value, n)) {
            spec.seed = n;
        } else {
            error = "bad chaos-spec item: " + item;
            return std::nullopt;
        }
    }
    try {
        spec.validate();
    } catch (const std::invalid_argument &e) {
        error = e.what();
        return std::nullopt;
    }
    return spec;
}

void
ChaosStats::merge(const ChaosStats &o)
{
    mergeCounters(*this, o, &ChaosStats::linkDowns, &ChaosStats::retrains,
                  &ChaosStats::widthStepUps, &ChaosStats::blockedMsgs,
                  &ChaosStats::removals, &ChaosStats::readds,
                  &ChaosStats::abortedReads, &ChaosStats::abortedWrites,
                  &ChaosStats::abortedBytes, &ChaosStats::poisonEvents,
                  &ChaosStats::pagesOfflined, &ChaosStats::offlinedBytes,
                  &ChaosStats::migratedBytes,
                  &ChaosStats::dataAtRiskBytes);
    // Timestamps: each side owns its own (device: link/removal, host:
    // ledger), so a nonzero value wins; concurrent nonzeros take max.
    mergeTimestamps(*this, o, &ChaosStats::linkDownAt,
                    &ChaosStats::linkDetectAt, &ChaosStats::linkUpAt,
                    &ChaosStats::linkFullWidthAt, &ChaosStats::removeAt,
                    &ChaosStats::removeDetectAt, &ChaosStats::readdAt);
}

std::string
ChaosStats::summary() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "link-downs=%llu retrains=%llu step-ups=%llu blocked=%llu "
        "removals=%llu readds=%llu aborted=%llu/%llu "
        "aborted-bytes=%llu pages-offlined=%llu offlined-bytes=%llu "
        "migrated-bytes=%llu data-at-risk=%llu",
        static_cast<unsigned long long>(linkDowns),
        static_cast<unsigned long long>(retrains),
        static_cast<unsigned long long>(widthStepUps),
        static_cast<unsigned long long>(blockedMsgs),
        static_cast<unsigned long long>(removals),
        static_cast<unsigned long long>(readds),
        static_cast<unsigned long long>(abortedReads),
        static_cast<unsigned long long>(abortedWrites),
        static_cast<unsigned long long>(abortedBytes),
        static_cast<unsigned long long>(pagesOfflined),
        static_cast<unsigned long long>(offlinedBytes),
        static_cast<unsigned long long>(migratedBytes),
        static_cast<unsigned long long>(dataAtRiskBytes));
    return buf;
}

} // namespace cxlmemo
