/**
 * @file
 * Shared merge primitives for mergeable stats structs.
 *
 * Every observability layer carries plain counter structs that must
 * merge associatively across `--jobs` shards and `--sim-threads`
 * domains: monotone counters add, one-shot timestamps take the max
 * (each side owns its own events, so at most one side holds a nonzero
 * value; concurrent nonzeros take the later one). Before this header
 * each struct hand-rolled its own merge() and the audit lived in the
 * reviewer's head; now the two rules are single fold-expressions and
 * a struct's merge() is a member list, which test_observability can
 * exercise for associativity per struct.
 */

#ifndef CXLMEMO_SIM_STATMERGE_HH
#define CXLMEMO_SIM_STATMERGE_HH

#include <algorithm>

namespace cxlmemo
{

/** Monotone counters: element-wise `into += from`. */
template <typename S, typename... M>
void
mergeCounters(S &into, const S &from, M S::*...members)
{
    ((into.*members += from.*members), ...);
}

/** One-shot timestamps: element-wise `into = max(into, from)`.
 *  A zero means "never happened", so the nonzero side wins and two
 *  nonzero sides resolve to the later event -- both associative. */
template <typename S, typename... M>
void
mergeTimestamps(S &into, const S &from, M S::*...members)
{
    ((into.*members = std::max(into.*members, from.*members)), ...);
}

} // namespace cxlmemo

#endif // CXLMEMO_SIM_STATMERGE_HH
